(** MinineXt-style intradomain emulation (paper §3 and §4.2).

    Builds an emulated AS out of lightweight "containers": one
    {!Peering_router.Router} per PoP, joined by weighted intradomain
    links. The builder wires an iBGP full mesh (with next-hop-self),
    runs an SPF IGP over the link topology, and installs the combined
    routing state into per-PoP dataplane FIBs, so both routes and
    traffic flow between the emulated AS and whatever it is connected
    to — e.g. a PEERING server at an IXP, as in the paper's Hurricane
    Electric experiment. *)

open Peering_net
open Peering_router
open Peering_dataplane

type t
type pop

val create :
  Peering_sim.Engine.t ->
  Forwarder.t ->
  name:string ->
  asn:Asn.t ->
  unit ->
  t
(** An empty emulation sharing the given dataplane. *)

val add_pop : t -> ?country:Country.t -> string -> pop
(** Add a PoP: allocates a loopback, creates its router "container"
    and its forwarder node. Raises [Invalid_argument] on duplicate
    names or after {!start}. *)

val link : t -> string -> string -> ?weight:int -> ?latency:float -> unit -> unit
(** Connect two PoPs with an intradomain link (default IGP weight 1,
    latency 5 ms). *)

val of_topology :
  Peering_sim.Engine.t ->
  Forwarder.t ->
  asn:Asn.t ->
  Peering_topo.Topology_zoo.t ->
  t
(** Instantiate a Topology Zoo backbone: one PoP per zoo node (named
    by city), one link per zoo edge. *)

val start : t -> unit
(** Build the iBGP full mesh between all PoPs and start the sessions.
    Drive the engine afterwards to let sessions establish and routes
    propagate, then call {!sync_fibs}. Idempotent. *)

val started : t -> bool

val pop : t -> string -> pop option
val pop_exn : t -> string -> pop
val pops : t -> pop list
val pop_name : pop -> string
val router : pop -> Router.t
val loopback : pop -> Ipv4.t
val node_id : pop -> Forwarder.node_id
(** The PoP's dataplane node. *)

val originate_at : t -> string -> Prefix.t -> unit
(** Originate a prefix from the named PoP: a local BGP route that
    propagates through the mesh (and out of any external sessions the
    caller attached to the PoP routers), plus a Local FIB entry. *)

val external_gateway :
  t -> pop:string -> peer_addr:Ipv4.t -> node:Forwarder.node_id -> unit
(** Declare that external BGP next hop [peer_addr] seen at [pop] is
    reached through the given forwarder node (e.g. a PEERING server's
    tunnel endpoint). Needed by {!sync_fibs} to resolve
    externally-learned routes at the border PoP. *)

val sync_fibs : t -> unit
(** Recompute every PoP's FIB from the IGP (loopback /32s) and the
    BGP Loc-RIBs (best routes, next hops resolved through the IGP or
    external gateways). Call after the control plane settles or after
    topology changes. *)

val igp : t -> Igp.t

val n_pops : t -> int
val n_ibgp_sessions : t -> int

val ibgp_sessions : t -> (string * string * Peering_bgp.Session.t) list
(** The mesh's sessions as [(pop_a, pop_b, session)], in mesh build
    order — the handles a fault injector registers to partition or
    impair the emulated backbone. Empty before {!start}. *)

val routes_at : t -> string -> int
(** Loc-RIB size of the PoP's router. *)

val memory_words : t -> int
(** Sum of [Obj.reachable_words] over all PoP routers' RIBs — the
    emulation-scaling measurement of §4.2. *)

val container_model_bytes : t -> int
(** Modelled resident memory: MinineXt container overhead plus router
    table model, per PoP. *)
