open Peering_net
open Peering_bgp
open Peering_router
open Peering_dataplane
module Engine = Peering_sim.Engine
module Topology_zoo = Peering_topo.Topology_zoo

type pop = {
  name : string;
  index : int;
  loopback : Ipv4.t;
  router : Router.t;
  node : Forwarder.node_id;
  country : Country.t;
}

type t = {
  engine : Engine.t;
  fwd : Forwarder.t;
  emu_name : string;
  asn : Asn.t;
  emu_id : int;
  mutable pop_list : pop list;  (* reverse order of addition *)
  igp : Igp.t;
  mutable links : (string * string * float) list;
  mutable gateways : (string * Ipv4.t * Forwarder.node_id) list;
  mutable sessions : int;
  mutable session_list : (string * string * Session.t) list;
  mutable is_started : bool;
}

let emu_counter = ref 0

let create engine fwd ~name ~asn () =
  incr emu_counter;
  { engine;
    fwd;
    emu_name = name;
    asn;
    emu_id = !emu_counter;
    pop_list = [];
    igp = Igp.create ();
    links = [];
    gateways = [];
    sessions = 0;
    session_list = [];
    is_started = false
  }

let pops t = List.rev t.pop_list
let pop t name = List.find_opt (fun p -> p.name = name) t.pop_list

let pop_exn t name =
  match pop t name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Mininext: unknown PoP %s" name)

let pop_name p = p.name
let router p = p.router
let loopback p = p.loopback
let node_id p = p.node

let add_pop t ?(country = Country.nl) name =
  if t.is_started then invalid_arg "Mininext.add_pop: already started";
  if pop t name <> None then invalid_arg "Mininext.add_pop: duplicate PoP";
  let index = List.length t.pop_list in
  if index > 253 then invalid_arg "Mininext.add_pop: too many PoPs";
  let lb = Ipv4.of_octets 10 (100 + (t.emu_id mod 100)) index 1 in
  let r = Router.create t.engine ~asn:t.asn ~router_id:lb () in
  let node = Printf.sprintf "%s:%s" t.emu_name name in
  Forwarder.add_node t.fwd node;
  Forwarder.add_address t.fwd node lb;
  Igp.add_node t.igp name;
  let p = { name; index; loopback = lb; router = r; node; country } in
  t.pop_list <- p :: t.pop_list;
  p

let link t a b ?(weight = 1) ?(latency = 0.005) () =
  let pa = pop_exn t a and pb = pop_exn t b in
  Igp.add_link t.igp a b ~weight;
  t.links <- (a, b, latency) :: t.links;
  Forwarder.set_link_latency t.fwd pa.node pb.node latency

let of_topology engine fwd ~asn (zoo : Topology_zoo.t) =
  let t = create engine fwd ~name:zoo.Topology_zoo.name ~asn () in
  Array.iter
    (fun (p : Topology_zoo.pop) ->
      ignore (add_pop t ~country:p.Topology_zoo.country p.Topology_zoo.city))
    zoo.Topology_zoo.pops;
  List.iter
    (fun (i, j) ->
      link t zoo.Topology_zoo.pops.(i).Topology_zoo.city
        zoo.Topology_zoo.pops.(j).Topology_zoo.city ())
    zoo.Topology_zoo.links;
  t

(* Next-hop-self: every iBGP export rewrites the next hop to the
   exporting PoP's loopback so other PoPs can resolve it via the IGP. *)
let next_hop_self_policy lb =
  Policy.of_entries
    [ { Policy.seq = 10;
        decision = Policy.Permit;
        conds = [];
        actions = [ Policy.Set_next_hop lb ]
      } ]

let start t =
  if not t.is_started then begin
    t.is_started <- true;
    let ps = pops t in
    let rec mesh = function
      | [] -> ()
      | p :: rest ->
        List.iter
          (fun q ->
            let session =
              Router.connect t.engine
                (p.router, p.loopback)
                (q.router, q.loopback)
            in
            Router.set_export_policy p.router q.loopback
              (next_hop_self_policy p.loopback);
            Router.set_export_policy q.router p.loopback
              (next_hop_self_policy q.loopback);
            t.sessions <- t.sessions + 1;
            t.session_list <- (p.name, q.name, session) :: t.session_list)
          rest;
        mesh rest
    in
    mesh ps
  end

let started t = t.is_started

let originate_at t name prefix =
  let p = pop_exn t name in
  Router.originate p.router prefix;
  Forwarder.set_route t.fwd p.node prefix Fib.Local

let external_gateway t ~pop:name ~peer_addr ~node =
  let _ = pop_exn t name in
  t.gateways <- (name, peer_addr, node) :: t.gateways

let igp t = t.igp

let find_pop_by_loopback t addr =
  List.find_opt (fun p -> Ipv4.equal p.loopback addr) t.pop_list

let sync_fibs t =
  let ps = pops t in
  List.iter
    (fun p ->
      (* Loopbacks via IGP. *)
      Forwarder.set_route t.fwd p.node (Prefix.make p.loopback 32) Fib.Local;
      List.iter
        (fun q ->
          if q.name <> p.name then
            match Igp.next_hop t.igp ~src:p.name ~dst:q.name with
            | Some hop ->
              Forwarder.set_route t.fwd p.node
                (Prefix.make q.loopback 32)
                (Fib.Via (pop_exn t hop).node)
            | None -> ())
        ps;
      (* BGP best routes. *)
      Rib.fold_best
        (fun prefix route () ->
          let nh = route.Route.attrs.Attrs.next_hop in
          if Ipv4.equal nh p.loopback then
            (* Locally originated (or self next hop): deliver here. *)
            Forwarder.set_route t.fwd p.node prefix Fib.Local
          else
            match find_pop_by_loopback t nh with
            | Some q -> (
              match Igp.next_hop t.igp ~src:p.name ~dst:q.name with
              | Some hop ->
                Forwarder.set_route t.fwd p.node prefix
                  (Fib.Via (pop_exn t hop).node)
              | None -> ())
            | None -> (
              (* External next hop: resolvable only at a PoP with a
                 registered gateway for it. *)
              match
                List.find_opt
                  (fun (pname, addr, _) ->
                    pname = p.name && Ipv4.equal addr nh)
                  t.gateways
              with
              | Some (_, _, gw_node) ->
                Forwarder.set_route t.fwd p.node prefix (Fib.Via gw_node)
              | None -> ()))
        (Router.rib p.router) ())
    ps

let n_pops t = List.length t.pop_list
let n_ibgp_sessions t = t.sessions
let ibgp_sessions t = List.rev t.session_list

let routes_at t name = Router.table_size (pop_exn t name).router

let memory_words t =
  List.fold_left
    (fun acc p -> acc + Memory.measured_words (Router.rib p.router))
    0 t.pop_list

(* MinineXt keeps per-container overhead low (shared kernel, no VM):
   model ~6 MiB of process baseline per Quagga container plus table
   costs. *)
let container_model_bytes t =
  List.fold_left
    (fun acc p ->
      acc
      + Memory.model_bytes
          ~peers:(List.length (Router.neighbors p.router))
          ~prefixes_per_peer:(Router.table_size p.router)
          ())
    0 t.pop_list
