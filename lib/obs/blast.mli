(** Blast-radius queries over completed spans.

    A fault injected into a running testbed roots a causal trace
    ({!Span}): everything it triggers — mux restart re-exports, wire
    retransmits, recovery events — finishes as spans sharing the
    root's trace id, each carrying structured attributes ([site],
    [client], [prefix], …). This module turns a flight-recorder dump
    ({!Sink.flight_spans}) into blast-radius accounting: {e which}
    entities a fault touched and {e for how long}.

    Everything here is a pure function of the span list, so reports
    built from it inherit the recorder's determinism: two
    identically-seeded runs roll up byte-identical blast radii. *)

type entity = {
  value : string;  (** the attribute value, e.g. a site or prefix name *)
  first : float;  (** earliest virtual start time of a span touching it *)
  last : float;  (** latest virtual end time of a span touching it *)
  spans : int;  (** how many spans carried the attribute *)
}
(** One impacted entity with its impact window. *)

val roots : Span.completed list -> name:string -> Span.completed list
(** Spans with the given name that root their own trace (their span id
    equals their trace id) — e.g. [~name:"fault.inject"] finds every
    fault that entered an otherwise-idle system. Returned in
    completion order. *)

val in_traces : Span.completed list -> Span.completed list -> Span.completed list
(** [in_traces spans roots] keeps the spans belonging to any of the
    root spans' traces (the roots themselves included). This is the
    causal closure of the roots: everything the faults set in motion,
    and nothing else. Order is preserved; a span is returned once even
    when several roots share a trace. *)

val rollup : Span.completed list -> key:string -> entity list
(** [rollup spans ~key] groups the spans carrying attribute [key] by
    the attribute's value: one {!entity} per distinct value, sorted by
    value, with the impact window spanning the earliest start and
    latest end among its spans. Spans without the attribute are
    ignored; a span listing the key twice counts once, under the first
    value. *)
