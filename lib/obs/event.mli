(** The typed trace-event vocabulary.

    Every subsystem on the control- and data-plane hot paths reports
    what happened as one of these constructors instead of a formatted
    string, so tests and experiment harnesses can pattern-match on
    events ("the route server filtered two deliveries of this prefix")
    rather than grep rendered text. [Ad_hoc] keeps the old free-form
    string escape hatch for one-off instrumentation. *)

open Peering_net

type level = Debug | Info | Warn
(** Severity, mirrored by {!Peering_sim.Trace}. *)

type verdict =
  | Accepted
  | Rejected of string  (** the safety layer's reason, rendered *)

(** What a live monitoring-station detector fired on
    (see {!Peering_measure.Monitor}). *)
type alert_kind =
  | Moas  (** a watched prefix announced from an unexpected origin AS *)
  | Out_of_cone_leak
      (** a peer announced a prefix outside its allowed-export cone *)
  | Flap_churn  (** announce/withdraw churn past the flap limit *)
  | Reach_dip  (** a watched prefix's reach fell below its floor *)

val alert_kind_to_string : alert_kind -> string
(** ["moas"], ["out_of_cone_leak"], ["flap_churn"] or ["reach_dip"] —
    the stable label used in alert rows and metric labels. *)

type t =
  | Session_transition of {
      peer : string;  (** remote identity, once known; ["?"] before OPEN *)
      from_state : string;
      to_state : string;
    }  (** A BGP session FSM moved between RFC 4271 states. *)
  | Update_rx of { peer : string; announced : int; withdrawn : int }
      (** An UPDATE arrived on an established session. *)
  | Update_tx of { peer : string; announced : int; withdrawn : int }
      (** An UPDATE was encoded and put on the wire. *)
  | Decision_run of { prefix : Prefix.t; candidates : int }
      (** The decision process ranked the candidate set for a prefix. *)
  | Safety_verdict of { client : string; prefix : Prefix.t; verdict : verdict }
      (** The PEERING safety layer ruled on a client announcement. *)
  | Route_server_pass of {
      member : string;
      prefix : Prefix.t;
      delivered : int;
      filtered : int;  (** deliveries withheld by control communities *)
    }  (** A route-server announcement fanned out to the membership. *)
  | Dampening_penalty of {
      peer : string;
      prefix : Prefix.t;
      penalty : float;
      suppressed : bool;
    }  (** RFC 2439 accounting after a flap. *)
  | Tunnel_forward of { tunnel : string; bytes : int }
      (** A packet crossed an OpenVPN-style tunnel. *)
  | Fault_injected of { target : string; fault : string }
      (** {!Peering_fault} injected a fault (rendered fault class) on a
          named target — a link, mux or tunnel. *)
  | Recovered of { target : string; after_s : float }
      (** A faulted target returned to its converged state, [after_s]
          virtual seconds after the fault cleared. *)
  | Monitor_alert of {
      kind : alert_kind;
      mux : string;  (** the mux whose BMP feed triggered the detector *)
      prefix : Prefix.t;
      detail : string;  (** rendered specifics (origins, peer, counts) *)
    }  (** A live detector on the monitoring station fired. *)
  | Ad_hoc of string  (** free-form fallback; the old string events *)

val to_string : t -> string
(** A stable one-line rendering (used by substring search over traces
    and by {!Peering_sim.Trace}'s pretty-printer). *)

val label : t -> string
(** The constructor's short name, e.g. ["session_transition"]; handy
    for grouping events without matching payloads. *)

val level_to_string : level -> string
(** ["debug"], ["info"] or ["warn"]. *)

val pp : Format.formatter -> t -> unit
(** Formatter equivalent of {!to_string}. *)
