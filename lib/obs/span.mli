(** Causal span tracing.

    A {e span} is an interval of virtual time with a name, structured
    attributes and a causal parent: the paper's operational question —
    "what happened to {e this} client announcement at {e this} site" —
    is answered by minting a root span when work enters the system (a
    client announcement, a wire UPDATE, an injected fault) and opening
    child spans at each stage it passes through (safety verdict, mux
    export, route-server fan-out, tunnel forward). Completed spans are
    pushed to a recorder (normally {!Sink}'s flight recorder) and
    {!Sink.emit} stamps every trace event with the ambient context, so
    a flat event stream regains its causal tree.

    Ids are minted from a deterministic process-wide counter — never
    from a clock or RNG — so two identically-seeded runs produce
    byte-identical trace artifacts ({!reset} rewinds the counter
    between runs). Virtual time stands still inside synchronous code,
    so a span only acquires duration when its work crosses the engine's
    event queue (wire latency, tunnel latency); zero-duration spans are
    normal and meaningful (see DESIGN.md §10).

    When tracing is disabled (the default) every entry point here is a
    load-and-branch: instrumented hot paths pay nothing. *)

type id = int
(** Span and trace identifiers. Minted sequentially from 1; a root
    span's trace id equals its own span id. *)

type context = {
  trace : id;  (** the root span's id — the whole causal tree's name *)
  span : id;  (** this span *)
  parent : id option;  (** the causally preceding span, if any *)
}
(** What gets threaded through the system and stamped onto events. *)

type completed = {
  ctx : context;
  name : string;  (** dot-separated stage name, e.g. ["core.safety.check"] *)
  started : float;  (** virtual time the span opened *)
  ended : float;  (** virtual time the span closed *)
  attrs : (string * string) list;  (** structured attributes, in order added *)
}
(** An immutable record of a finished span, as retained by the flight
    recorder. *)

type t
(** An open (in-progress) span. *)

val enabled : unit -> bool
(** Whether spans are being collected. All instrumentation guards on
    this, so a disabled process allocates nothing. *)

val set_enabled : bool -> unit
(** Turn collection on or off. Normally driven by
    {!Sink.start_flight_recorder} / {!Sink.stop_flight_recorder}
    rather than called directly. *)

val reset : unit -> unit
(** Rewind the id counter to 1 and clear the ambient context. Call at
    the start of a seeded run so span ids — and therefore rendered
    trace artifacts — are identical across identically-seeded runs. *)

val start :
  ?parent:context option ->
  ?attrs:(string * string) list ->
  time:float ->
  string ->
  t
(** [start ~time name] opens a span beginning at virtual time [time].
    [parent] defaults to the ambient {!current} context: with a parent
    the span joins that trace; without one it roots a new trace.
    Returns a dummy that {!finish} ignores when collection is
    disabled. *)

val context : t -> context
(** The span's threadable context. *)

val add_attr : t -> string -> string -> unit
(** Append one structured attribute (kept in insertion order). *)

val finish : ?attrs:(string * string) list -> time:float -> t -> unit
(** Close the span at virtual time [time], appending [attrs], and push
    the {!completed} record to the recorder. Idempotent: only the
    first [finish] records (a duplicated wire delivery cannot
    double-count its span). *)

val current : unit -> context option
(** The ambient context — what {!Sink.emit} stamps onto events and
    what {!start} adopts as the default parent. Always [None] while
    collection is disabled. *)

val with_current : context option -> (unit -> 'a) -> 'a
(** Run a thunk with the ambient context replaced, restoring the
    previous context afterwards (exception-safe). The simulation
    engine uses this to carry causality across the event queue: a
    callback runs under the context that was ambient when it was
    scheduled. *)

val with_span :
  ?attrs:(string * string) list ->
  ?time:(unit -> float) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] brackets [f] in a child span of the ambient
    context: opens at [time ()], makes the new span ambient for the
    duration of [f], closes at [time ()] again afterwards
    (exception-safe). [time] defaults to the clock installed with
    {!set_clock} — what subsystems with no engine handle (the route
    server) rely on. When collection is disabled it just runs [f]. *)

val set_clock : (unit -> float) -> unit
(** Install the virtual clock {!with_span} falls back on.
    [Peering_sim.Trace.attach] installs the engine clock here, the
    same one it gives the event sink; the default clock reads 0. *)

val set_recorder : (completed -> unit) -> unit
(** Install the completed-span consumer. {!Sink} installs its flight
    recorder here at initialisation; tests may substitute their own. *)
