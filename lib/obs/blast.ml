(* Pure queries over flight-recorder span dumps; see blast.mli. *)

type entity = {
  value : string;
  first : float;
  last : float;
  spans : int;
}

let roots spans ~name =
  List.filter
    (fun (sp : Span.completed) ->
      sp.Span.name = name && sp.Span.ctx.Span.span = sp.Span.ctx.Span.trace)
    spans

let in_traces spans root_spans =
  let traces = Hashtbl.create 8 in
  List.iter
    (fun (sp : Span.completed) ->
      Hashtbl.replace traces sp.Span.ctx.Span.trace ())
    root_spans;
  List.filter
    (fun (sp : Span.completed) -> Hashtbl.mem traces sp.Span.ctx.Span.trace)
    spans

let rollup spans ~key =
  let tbl : (string, float * float * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (sp : Span.completed) ->
      match List.assoc_opt key sp.Span.attrs with
      | None -> ()
      | Some value ->
        let first, last, n =
          match Hashtbl.find_opt tbl value with
          | None -> (sp.Span.started, sp.Span.ended, 1)
          | Some (f, l, n) ->
            (Float.min f sp.Span.started, Float.max l sp.Span.ended, n + 1)
        in
        Hashtbl.replace tbl value (first, last, n))
    spans;
  Hashtbl.fold
    (fun value (first, last, spans) acc -> { value; first; last; spans } :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.value b.value)
