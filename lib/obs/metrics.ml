module Counter = struct
  type t = { mutable count : int }

  let inc c = c.count <- c.count + 1
  let add c n = c.count <- c.count + n
  let value c = c.count
end

module Gauge = struct
  type t = { mutable level : float; mutable high : float }

  let set g v =
    g.level <- v;
    if v > g.high then g.high <- v

  let value g = g.level
  let hwm g = g.high
end

module Histogram = struct
  type t = {
    cap : int;
    mutable n : int;
    mutable total : float;
    mutable kept : float list;  (* newest first *)
    mutable n_kept : int;
  }

  let observe h v =
    h.n <- h.n + 1;
    h.total <- h.total +. v;
    if h.n_kept < h.cap then begin
      h.kept <- v :: h.kept;
      h.n_kept <- h.n_kept + 1
    end

  let count h = h.n
  let sum h = h.total
  let samples h = List.rev h.kept
  let dropped h = h.n - h.n_kept
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type entry = {
  e_name : string;
  e_labels : (string * string) list;
  e_help : string;
  e_volatile : bool;
  e_instrument : instrument;
}

type t = { table : (string * (string * string) list, entry) Hashtbl.t }

type registry = t

let create () = { table = Hashtbl.create 64 }
let default = create ()

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ e ->
      match e.e_instrument with
      | C c -> c.Counter.count <- 0
      | G g ->
        g.Gauge.level <- 0.0;
        g.Gauge.high <- 0.0
      | H h ->
        h.Histogram.n <- 0;
        h.Histogram.total <- 0.0;
        h.Histogram.kept <- [];
        h.Histogram.n_kept <- 0)
    registry.table

let canonical_labels labels =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if String.equal a b then
        invalid_arg
          (Printf.sprintf "Metrics: duplicate label key %S in label set" a)
      else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let kind_name = function
  | C _ -> "counter"
  | G _ -> "gauge"
  | H _ -> "histogram"

let register registry ~labels ~volatile ~help name fresh matching =
  let labels = canonical_labels labels in
  let key = (name, labels) in
  match Hashtbl.find_opt registry.table key with
  | Some e -> (
    match matching e.e_instrument with
    | Some i -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name
           (kind_name e.e_instrument)))
  | None ->
    let instrument, witness = fresh () in
    Hashtbl.replace registry.table key
      { e_name = name;
        e_labels = labels;
        e_help = help;
        e_volatile = volatile;
        e_instrument = instrument
      };
    witness

let counter ?(registry = default) ?(labels = []) ?(volatile = false) ~help name
    =
  register registry ~labels ~volatile ~help name
    (fun () ->
      let c = { Counter.count = 0 } in
      (C c, c))
    (function C c -> Some c | G _ | H _ -> None)

let gauge ?(registry = default) ?(labels = []) ?(volatile = false) ~help name =
  register registry ~labels ~volatile ~help name
    (fun () ->
      let g = { Gauge.level = 0.0; high = 0.0 } in
      (G g, g))
    (function G g -> Some g | C _ | H _ -> None)

let histogram ?(registry = default) ?(labels = []) ?(volatile = false)
    ?(sample_cap = 4096) ~help name =
  register registry ~labels ~volatile ~help name
    (fun () ->
      let h =
        { Histogram.cap = max 1 sample_cap;
          n = 0;
          total = 0.0;
          kept = [];
          n_kept = 0
        }
      in
      (H h, h))
    (function H h -> Some h | C _ | G _ -> None)

module Family = struct
  (* One metric name shared by many label sets. [get] funnels through
     the registry's memoised registration, then caches the instrument
     per canonical label set so steady-state lookups do no
     registration work; call sites hold the returned instrument, which
     keeps the increment hot path a single unboxed store. *)
  type 'a t = {
    f_get : (string * string) list -> 'a;
    f_cache : ((string * string) list, 'a) Hashtbl.t;
  }

  let make f = { f_get = f; f_cache = Hashtbl.create 8 }

  let counter ?registry ?volatile ~help name =
    make (fun labels -> counter ?registry ~labels ?volatile ~help name)

  let gauge ?registry ?volatile ~help name =
    make (fun labels -> gauge ?registry ~labels ?volatile ~help name)

  let histogram ?registry ?volatile ?sample_cap ~help name =
    make (fun labels ->
        histogram ?registry ~labels ?volatile ?sample_cap ~help name)

  let get fam labels =
    let labels = canonical_labels labels in
    match Hashtbl.find_opt fam.f_cache labels with
    | Some i -> i
    | None ->
      let i = fam.f_get labels in
      Hashtbl.replace fam.f_cache labels i;
      i
end

type value =
  | Counter_v of int
  | Gauge_v of { value : float; hwm : float }
  | Histogram_v of {
      count : int;
      sum : float;
      samples : float list;
      dropped : int;
    }

type row = {
  name : string;
  labels : (string * string) list;
  help : string;
  volatile : bool;
  value : value;
}

let row_of_entry e =
  let value =
    match e.e_instrument with
    | C c -> Counter_v (Counter.value c)
    | G g -> Gauge_v { value = Gauge.value g; hwm = Gauge.hwm g }
    | H h ->
      Histogram_v
        { count = Histogram.count h;
          sum = Histogram.sum h;
          samples = Histogram.samples h;
          dropped = Histogram.dropped h
        }
  in
  { name = e.e_name;
    labels = e.e_labels;
    help = e.e_help;
    volatile = e.e_volatile;
    value
  }

let compare_rows a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot ?(include_volatile = false) ?(registry = default) () =
  Hashtbl.fold
    (fun _ e acc ->
      if e.e_volatile && not include_volatile then acc
      else row_of_entry e :: acc)
    registry.table []
  |> List.sort compare_rows

let counter_value ?(registry = default) ?(labels = []) name =
  match Hashtbl.find_opt registry.table (name, canonical_labels labels) with
  | Some { e_instrument = C c; _ } -> Counter.value c
  | Some _ | None -> 0

let row_name r =
  match r.labels with
  | [] -> r.name
  | labels ->
    Printf.sprintf "%s{%s}" r.name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
