(** The metrics registry: counters, gauges and histograms.

    Subsystems register a metric once (at module initialisation or
    first use) and then mutate it directly, so the hot path — a session
    counting UPDATEs, the engine counting executed events — is a single
    unboxed store with no hashing, no allocation and no branching.
    Registration is memoised: asking for the same (name, labels) pair
    twice returns the same instrument.

    Names are dot-separated, [subsystem.entity.quantity]
    (e.g. ["bgp.session.updates_rx"]); labels carry instance
    dimensions (site, peer class) when one name covers several
    entities. {!snapshot} returns rows in sorted order so rendered
    output and JSON artifacts are deterministic; metrics whose values
    depend on host wall-clock time are registered [~volatile:true] and
    excluded from snapshots by default, which is what keeps two
    identically-seeded runs byte-identical (see DESIGN.md §7). *)

type t
(** A registry. *)

type registry = t
(** Alias so {!Family} can name the registry type alongside its own
    [t]. *)

val create : unit -> t

val default : t
(** The process-wide registry all built-in instrumentation uses. *)

val reset : ?registry:t -> unit -> unit
(** Zero every registered metric in place (registrations and the
    instruments callers hold remain valid). Use between measurement
    runs; [registry] defaults to {!default}. *)

(** {1 Instruments} *)

module Counter : sig
  type t

  val inc : t -> unit
  (** Add one. O(1), allocation-free. *)

  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  (** Record the current level; the high-water mark updates itself. *)

  val value : t -> float

  val hwm : t -> float
  (** Highest value since creation or the last {!reset}. *)
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Record one sample. Past the sample cap the summary fields keep
      accumulating but the sample is not retained. *)

  val count : t -> int
  val sum : t -> float

  val samples : t -> float list
  (** Retained samples in observation order (at most the cap given at
      registration). Percentiles are computed by the consumer — by
      convention with [Peering_measure.Stats] — not here, so the
      registry stays dependency-free. *)

  val dropped : t -> int
  (** Samples not retained because the cap was reached. *)
end

(** {1 Registration} *)

val counter :
  ?registry:t ->
  ?labels:(string * string) list ->
  ?volatile:bool ->
  help:string ->
  string ->
  Counter.t
(** [counter ~help name] finds or creates the counter [name] in
    [registry] (default {!default}). Raises [Invalid_argument] if the
    name is already registered as a different instrument kind, or if
    [labels] repeats a key (a silent duplicate would make {!row_name}
    ambiguous and snapshots unstable). *)

val gauge :
  ?registry:t ->
  ?labels:(string * string) list ->
  ?volatile:bool ->
  help:string ->
  string ->
  Gauge.t

val histogram :
  ?registry:t ->
  ?labels:(string * string) list ->
  ?volatile:bool ->
  ?sample_cap:int ->
  help:string ->
  string ->
  Histogram.t
(** [sample_cap] (default 4096) bounds retained samples; see
    {!Histogram.samples}. *)

(** {1 Label-set families}

    A family is one metric name split across many label sets —
    per-site counters like ["core.server.routes_learned"{site=…}] —
    behind a label-set → instrument cache. {!Family.get} resolves a
    label set to its instrument (registering on first sight, memoised
    thereafter); call sites resolve once per entity and then hold the
    instrument, so the increment hot path stays the same O(1)
    allocation-free store as an unlabeled metric. *)

module Family : sig
  type 'a t
  (** A named metric family whose members differ only in labels;
      ['a] is the instrument type. *)

  val counter :
    ?registry:registry -> ?volatile:bool -> help:string -> string -> Counter.t t
  (** Declare a counter family. No instrument is registered until
      {!get} sees a label set, so a family with no members leaves no
      row in snapshots. *)

  val gauge :
    ?registry:registry -> ?volatile:bool -> help:string -> string -> Gauge.t t
  (** Gauge variant of {!counter}. *)

  val histogram :
    ?registry:registry ->
    ?volatile:bool ->
    ?sample_cap:int ->
    help:string ->
    string ->
    Histogram.t t
  (** Histogram variant of {!counter}; [sample_cap] as in
      {!histogram}. *)

  val get : 'a t -> (string * string) list -> 'a
  (** The member for this label set: the same (name, labels) pair
      always yields the physically same instrument, whichever family
      value or direct registration call asked first. Raises
      [Invalid_argument] on duplicate label keys. *)
end

(** {1 Reading} *)

type value =
  | Counter_v of int
  | Gauge_v of { value : float; hwm : float }
  | Histogram_v of {
      count : int;
      sum : float;
      samples : float list;
      dropped : int;
    }

type row = {
  name : string;
  labels : (string * string) list;
  help : string;
  volatile : bool;
  value : value;
}
(** One registered metric as read by {!snapshot}. *)

val snapshot : ?include_volatile:bool -> ?registry:t -> unit -> row list
(** All registered metrics, sorted by (name, labels). Volatile rows
    (host-time dependent) are excluded unless [include_volatile] is
    true, so the default snapshot of a seeded run is deterministic. *)

val counter_value : ?registry:t -> ?labels:(string * string) list -> string -> int
(** The current value of a registered counter; 0 if never registered
    (a scenario that exercised nothing is indistinguishable from an
    unregistered metric, which is what reporting code wants). *)

val row_name : row -> string
(** [name] with labels inlined, e.g. ["core.safety.rejected{site=ams}"]
    — the stable key used by rendered output and JSON artifacts. *)
