module Series = struct
  type t = {
    capacity : int;
    times : float array;
    values : float array;
    mutable head : int;  (* index of the oldest sample *)
    mutable len : int;
    mutable dropped : int;
  }

  let create ?(capacity = 4096) () =
    if capacity < 1 then invalid_arg "Window.Series.create: capacity < 1";
    { capacity;
      times = Array.make capacity 0.0;
      values = Array.make capacity 0.0;
      head = 0;
      len = 0;
      dropped = 0
    }

  let push t ~time v =
    if t.len = t.capacity then begin
      (* overwrite the oldest slot and advance the head *)
      t.times.(t.head) <- time;
      t.values.(t.head) <- v;
      t.head <- (t.head + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
    else begin
      let i = (t.head + t.len) mod t.capacity in
      t.times.(i) <- time;
      t.values.(i) <- v;
      t.len <- t.len + 1
    end

  let length t = t.len
  let dropped t = t.dropped
  let total t = t.len + t.dropped

  let nth t i =
    let j = (t.head + i) mod t.capacity in
    (t.times.(j), t.values.(j))

  let last t = if t.len = 0 then None else Some (nth t (t.len - 1))

  let span_s t =
    if t.len < 2 then 0.0
    else fst (nth t (t.len - 1)) -. fst (nth t 0)

  let fold t ~init ~f =
    let acc = ref init in
    for i = 0 to t.len - 1 do
      let time, v = nth t i in
      acc := f !acc ~time v
    done;
    !acc

  let sum t = fold t ~init:0.0 ~f:(fun acc ~time:_ v -> acc +. v)

  let rate ?(horizon_s = 60.0) t =
    if t.len = 0 || horizon_s <= 0.0 then 0.0
    else
      let newest = fst (nth t (t.len - 1)) in
      let floor = newest -. horizon_s in
      let s =
        fold t ~init:0.0 ~f:(fun acc ~time v ->
            if time > floor then acc +. v else acc)
      in
      s /. horizon_s

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc ~time v -> (time, v) :: acc))

  let window t ~horizon_s =
    if t.len = 0 then []
    else
      let newest = fst (nth t (t.len - 1)) in
      let floor = newest -. horizon_s in
      List.rev
        (fold t ~init:[] ~f:(fun acc ~time v ->
             if time > floor then v :: acc else acc))
end

module Quantiles = struct
  (* A sorted list plus its length: exact, persistent, and with a
     canonical representation, so [merge] is associative/commutative
     by structural equality, not just up to reordering. *)
  type t = { n : int; xs : float list }

  let empty = { n = 0; xs = [] }

  let add v t =
    let rec ins = function
      | [] -> [ v ]
      | x :: rest -> if v <= x then v :: x :: rest else x :: ins rest
    in
    { n = t.n + 1; xs = ins t.xs }

  let of_list vs =
    { n = List.length vs; xs = List.sort compare vs }

  let merge a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | x :: xr, y :: yr ->
        if x <= y then x :: go xr ys else y :: go xs yr
    in
    { n = a.n + b.n; xs = go a.xs b.xs }

  let count t = t.n

  let quantile t q =
    if t.n = 0 then nan
    else
      let q = Float.max 0.0 (Float.min 1.0 q) in
      (* nearest rank: the ceil(q*n)-th smallest, 1-indexed *)
      let rank = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      let idx = max 0 (min (t.n - 1) (rank - 1)) in
      List.nth t.xs idx

  let min_value t = quantile t 0.0
  let max_value t = quantile t 1.0
  let to_sorted_list t = t.xs
end

module Slo = struct
  type verdict = {
    slo_name : string;
    budget_s : float;
    p99_s : float;
    samples : int;
    burn : float;
    met : bool;
  }

  let evaluate ~name ~budget_s q =
    let samples = Quantiles.count q in
    let p99_s = if samples = 0 then 0.0 else Quantiles.quantile q 0.99 in
    let burn = if budget_s > 0.0 then p99_s /. budget_s else 0.0 in
    { slo_name = name; budget_s; p99_s; samples; burn;
      met = samples = 0 || p99_s <= budget_s
    }
end
