(** Windowed health tracking: bounded time-series, mergeable
    sliding-window quantiles, and SLO burn-rate evaluation.

    The monitoring station ({!Peering_measure.Monitor}) and the
    [peering_cli monitor] report are built on these three small
    structures.  Everything is driven by virtual timestamps supplied
    by the caller — nothing here reads the wall clock — so two
    identically-seeded runs produce byte-identical health reports. *)

(** A fixed-capacity ring buffer of [(time, value)] samples.  Pushing
    past capacity evicts the oldest sample and counts it as dropped,
    so the window always holds the newest [capacity] observations. *)
module Series : sig
  type t
  (** A mutable bounded time-series. *)

  val create : ?capacity:int -> unit -> t
  (** [create ()] is an empty series retaining the newest [capacity]
      samples (default 4096).  Raises [Invalid_argument] when
      [capacity < 1]. *)

  val push : t -> time:float -> float -> unit
  (** Append a sample.  Times are expected non-decreasing (virtual
      clock); this is not enforced, but {!rate} and {!window} assume
      it. *)

  val length : t -> int
  (** Samples currently retained. *)

  val dropped : t -> int
  (** Samples evicted because the ring was full. *)

  val total : t -> int
  (** Samples ever pushed, retained or not. *)

  val last : t -> (float * float) option
  (** Newest [(time, value)], if any. *)

  val span_s : t -> float
  (** Newest time minus oldest retained time; [0.] with < 2 samples. *)

  val sum : t -> float
  (** Sum of the retained values. *)

  val rate : ?horizon_s:float -> t -> float
  (** [rate ~horizon_s t] is the sum of values newer than
      [newest - horizon_s], divided by [horizon_s] — a rolling
      per-second rate (default horizon 60 s).  [0.] when empty. *)

  val fold : t -> init:'a -> f:('a -> time:float -> float -> 'a) -> 'a
  (** Left fold over retained samples, oldest first. *)

  val to_list : t -> (float * float) list
  (** Retained samples, oldest first. *)

  val window : t -> horizon_s:float -> float list
  (** Values of the samples newer than [newest - horizon_s], oldest
      first — the input handed to {!Quantiles.of_list} for
      sliding-window quantiles. *)
end

(** Exact mergeable quantiles: a persistent sorted multiset of
    samples.  Kept exact (not a sketch) so the QCheck laws are crisp:
    [quantile] is monotone in [q], and {!merge} is associative and
    commutative on the nose. *)
module Quantiles : sig
  type t
  (** A persistent multiset of float samples. *)

  val empty : t

  val add : float -> t -> t
  (** Insert one sample. *)

  val of_list : float list -> t
  (** Build from unordered samples. *)

  val merge : t -> t -> t
  (** Union of two multisets; associative and commutative. *)

  val count : t -> int
  (** Number of samples. *)

  val quantile : t -> float -> float
  (** [quantile t q] is the nearest-rank [q]-quantile ([q] clamped to
      [\[0, 1\]]); [nan] when empty.  Monotone in [q]. *)

  val min_value : t -> float
  (** Smallest sample; [nan] when empty. *)

  val max_value : t -> float
  (** Largest sample; [nan] when empty. *)

  val to_sorted_list : t -> float list
  (** All samples, ascending — the canonical form {!merge}'s
      associativity law is stated over. *)
end

(** Burn-rate evaluation of a p99 SLO over a quantile window: how much
    of the recovery budget the observed tail consumes. *)
module Slo : sig
  type verdict = {
    slo_name : string;  (** the budget's class, e.g. ["mux_crash"] *)
    budget_s : float;  (** the p99 budget, virtual seconds *)
    p99_s : float;  (** observed p99; [0.] when no samples *)
    samples : int;  (** samples the verdict is based on *)
    burn : float;  (** [p99_s /. budget_s]; > 1 means the SLO burned *)
    met : bool;  (** [true] iff no samples or [p99_s <= budget_s] *)
  }

  val evaluate : name:string -> budget_s:float -> Quantiles.t -> verdict
  (** Judge one budget against a window of observed samples.  An empty
      window is vacuously met with zero burn (a clean run reports
      exactly that). *)
end
