(** A minimal JSON tree, emitter and parser.

    Benchmark results, metric snapshots and CLI output all flow through
    this one representation so that every machine-readable artifact the
    repository produces has the same, deterministic shape (REPETITA's
    argument: reproducible evaluation needs standard formats plus
    re-runnable measurement). No external JSON library is used; the
    emitter is canonical — same value, same bytes — which is what lets
    two identically-seeded bench runs diff as byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Members are emitted in the order given; callers that want
          canonical output sort their keys (snapshots already do). *)

val to_string : ?indent:int -> t -> string
(** Serialize. With [indent] (spaces per level, default compact)
    the output is pretty-printed; either form is deterministic.
    Floats are printed with ["%.12g"], so values that round-trip
    through 12 significant digits re-parse exactly; non-finite floats
    are emitted as [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Numbers without [.], [e] or [E]
    become [Int]; everything else becomes [Float]. The error string
    carries a byte offset. Trailing garbage after the document is an
    error. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k], if any; [None] on
    non-objects. *)

val to_list : t -> t list
(** The elements of a [List]; [] on any other constructor. *)

val string_value : t -> string option
(** The payload of a [String]; [None] otherwise. *)

val number_value : t -> float option
(** The numeric payload of an [Int] or [Float]; [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)

type json = t
(** Alias so {!Writer} can name the tree type alongside its own [t]. *)

(** Incremental emitter: stream a large document row by row instead of
    accumulating the whole tree in memory first (the bench driver's
    [--json] mode writes one result row per experiment as it
    finishes). Output is byte-identical to {!to_string} on the
    equivalent tree, compact or pretty, so consumers cannot tell the
    difference. Misuse (a value where a key is required, unbalanced
    ends) raises [Invalid_argument]. *)
module Writer : sig
  type t
  (** An in-progress document attached to an output sink. *)

  val to_buffer : ?indent:int -> Buffer.t -> t
  (** Write into a [Buffer] (same [indent] semantics as
      {!to_string}). *)

  val to_channel : ?indent:int -> out_channel -> t
  (** Write to a channel; the caller flushes/closes the channel. *)

  val begin_obj : t -> unit
  (** Open an object, as the root or as the next value. *)

  val begin_arr : t -> unit
  (** Open an array, as the root or as the next value. *)

  val key : t -> string -> unit
  (** Emit a member key inside an open object; the next [value] /
      [begin_*] supplies its value. *)

  val value : t -> json -> unit
  (** Emit a complete subtree (scalar or container) as the next value,
      rendered at the writer's current depth. *)

  val end_obj : t -> unit
  (** Close the innermost open object. *)

  val end_arr : t -> unit
  (** Close the innermost open array. *)

  val close : t -> unit
  (** Assert the document is complete (every container closed). *)
end
