(** A minimal JSON tree, emitter and parser.

    Benchmark results, metric snapshots and CLI output all flow through
    this one representation so that every machine-readable artifact the
    repository produces has the same, deterministic shape (REPETITA's
    argument: reproducible evaluation needs standard formats plus
    re-runnable measurement). No external JSON library is used; the
    emitter is canonical — same value, same bytes — which is what lets
    two identically-seeded bench runs diff as byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Members are emitted in the order given; callers that want
          canonical output sort their keys (snapshots already do). *)

val to_string : ?indent:int -> t -> string
(** Serialize. With [indent] (spaces per level, default compact)
    the output is pretty-printed; either form is deterministic.
    Floats are printed with ["%.12g"], so values that round-trip
    through 12 significant digits re-parse exactly; non-finite floats
    are emitted as [null] (JSON has no representation for them). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document. Numbers without [.], [e] or [E]
    become [Int]; everything else becomes [Float]. The error string
    carries a byte offset. Trailing garbage after the document is an
    error. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the first binding of [k], if any; [None] on
    non-objects. *)

val to_list : t -> t list
(** The elements of a [List]; [] on any other constructor. *)

val string_value : t -> string option
(** The payload of a [String]; [None] otherwise. *)

val number_value : t -> float option
(** The numeric payload of an [Int] or [Float]; [None] otherwise. *)

val equal : t -> t -> bool
(** Structural equality ([Int 1] and [Float 1.] are distinct). *)
