open Peering_net

type level = Debug | Info | Warn

type verdict = Accepted | Rejected of string

type alert_kind = Moas | Out_of_cone_leak | Flap_churn | Reach_dip

let alert_kind_to_string = function
  | Moas -> "moas"
  | Out_of_cone_leak -> "out_of_cone_leak"
  | Flap_churn -> "flap_churn"
  | Reach_dip -> "reach_dip"

type t =
  | Session_transition of {
      peer : string;
      from_state : string;
      to_state : string;
    }
  | Update_rx of { peer : string; announced : int; withdrawn : int }
  | Update_tx of { peer : string; announced : int; withdrawn : int }
  | Decision_run of { prefix : Prefix.t; candidates : int }
  | Safety_verdict of { client : string; prefix : Prefix.t; verdict : verdict }
  | Route_server_pass of {
      member : string;
      prefix : Prefix.t;
      delivered : int;
      filtered : int;
    }
  | Dampening_penalty of {
      peer : string;
      prefix : Prefix.t;
      penalty : float;
      suppressed : bool;
    }
  | Tunnel_forward of { tunnel : string; bytes : int }
  | Fault_injected of { target : string; fault : string }
  | Recovered of { target : string; after_s : float }
  | Monitor_alert of {
      kind : alert_kind;
      mux : string;
      prefix : Prefix.t;
      detail : string;
    }
  | Ad_hoc of string

let label = function
  | Session_transition _ -> "session_transition"
  | Update_rx _ -> "update_rx"
  | Update_tx _ -> "update_tx"
  | Decision_run _ -> "decision_run"
  | Safety_verdict _ -> "safety_verdict"
  | Route_server_pass _ -> "route_server_pass"
  | Dampening_penalty _ -> "dampening_penalty"
  | Tunnel_forward _ -> "tunnel_forward"
  | Fault_injected _ -> "fault_injected"
  | Recovered _ -> "recovered"
  | Monitor_alert _ -> "monitor_alert"
  | Ad_hoc _ -> "ad_hoc"

let to_string = function
  | Session_transition { peer; from_state; to_state } ->
    Printf.sprintf "session %s: %s -> %s" peer from_state to_state
  | Update_rx { peer; announced; withdrawn } ->
    Printf.sprintf "update rx from %s: %d announced, %d withdrawn" peer
      announced withdrawn
  | Update_tx { peer; announced; withdrawn } ->
    Printf.sprintf "update tx to %s: %d announced, %d withdrawn" peer
      announced withdrawn
  | Decision_run { prefix; candidates } ->
    Printf.sprintf "decision over %s: %d candidates"
      (Prefix.to_string prefix) candidates
  | Safety_verdict { client; prefix; verdict } -> (
    match verdict with
    | Accepted ->
      Printf.sprintf "safety: %s may announce %s" client
        (Prefix.to_string prefix)
    | Rejected reason ->
      Printf.sprintf "safety: %s refused %s (%s)" client
        (Prefix.to_string prefix) reason)
  | Route_server_pass { member; prefix; delivered; filtered } ->
    Printf.sprintf "route server: %s from %s delivered to %d, filtered for %d"
      (Prefix.to_string prefix) member delivered filtered
  | Dampening_penalty { peer; prefix; penalty; suppressed } ->
    Printf.sprintf "dampening: %s/%s penalty %.0f%s" peer
      (Prefix.to_string prefix) penalty
      (if suppressed then " (suppressed)" else "")
  | Tunnel_forward { tunnel; bytes } ->
    Printf.sprintf "tunnel %s forwarded %d bytes" tunnel bytes
  | Fault_injected { target; fault } ->
    Printf.sprintf "fault on %s: %s" target fault
  | Recovered { target; after_s } ->
    Printf.sprintf "%s recovered after %.3fs" target after_s
  | Monitor_alert { kind; mux; prefix; detail } ->
    Printf.sprintf "monitor alert [%s] %s at %s: %s"
      (alert_kind_to_string kind)
      (Prefix.to_string prefix) mux detail
  | Ad_hoc s -> s

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let pp ppf e = Format.pp_print_string ppf (to_string e)
