let sink :
    (time:float option ->
    Event.level ->
    span:Span.context option ->
    subsystem:string ->
    Event.t ->
    unit)
    option
    ref =
  ref None

let set f = sink := Some f
let clear () = sink := None
let active () = !sink <> None

let emit ?time ?(level = Event.Info) ?span ~subsystem ev =
  match !sink with
  | None -> ()
  | Some f ->
    let span = match span with Some _ as s -> s | None -> Span.current () in
    f ~time level ~span ~subsystem ev

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

(* Drops are also a metric row so `peering_cli stats` surfaces them
   without callers having to poll [flight_dropped]. *)
let m_flight_dropped =
  Metrics.counter ~help:"flight-recorder spans dropped at capacity"
    "obs.flight.dropped"

let default_capacity = 65_536

type flight = {
  mutable capacity : int;
  buf : Span.completed Queue.t;
  mutable dropped : int;
}

let flight = { capacity = default_capacity; buf = Queue.create (); dropped = 0 }

let record_completed sp =
  if Span.enabled () then begin
    Queue.push sp flight.buf;
    if Queue.length flight.buf > flight.capacity then begin
      ignore (Queue.pop flight.buf);
      flight.dropped <- flight.dropped + 1;
      Metrics.Counter.inc m_flight_dropped
    end
  end

let () = Span.set_recorder record_completed

let clear_flight_recorder () =
  Queue.clear flight.buf;
  flight.dropped <- 0

let start_flight_recorder ?(capacity = default_capacity) () =
  flight.capacity <- max 1 capacity;
  clear_flight_recorder ();
  Span.set_enabled true

let stop_flight_recorder () = Span.set_enabled false

let flight_spans () = List.of_seq (Queue.to_seq flight.buf)
let flight_count () = Queue.length flight.buf
let flight_dropped () = flight.dropped
