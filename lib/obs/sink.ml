let sink :
    (time:float option -> Event.level -> subsystem:string -> Event.t -> unit)
    option
    ref =
  ref None

let set f = sink := Some f
let clear () = sink := None
let active () = !sink <> None

let emit ?time ?(level = Event.Info) ~subsystem ev =
  match !sink with
  | None -> ()
  | Some f -> f ~time level ~subsystem ev
