type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* Guarantee the token re-parses as a float, not an int. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

(* Serialize [v] into [b] as if it sat at nesting depth [depth] of a
   pretty-printed document — the piece the incremental writer reuses. *)
let render_into b ?indent ~depth v =
  let pad depth =
    match indent with
    | None -> ()
    | Some n ->
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (n * depth) ' ')
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          go (depth + 1) item)
        items;
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj members ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          pad (depth + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if indent <> None then Buffer.add_char b ' ';
          go (depth + 1) item)
        members;
      pad depth;
      Buffer.add_char b '}'
  in
  go depth v

let to_string ?indent v =
  let b = Buffer.create 256 in
  render_into b ?indent ~depth:0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Incremental writer *)

type json = t

module Writer = struct
  type frame = { is_obj : bool; mutable count : int; mutable pending_key : bool }

  type t = {
    emit : string -> unit;
    indent : int option;
    mutable stack : frame list;
  }

  let make ?indent emit = { emit; indent; stack = [] }
  let to_buffer ?indent buf = make ?indent (Buffer.add_string buf)
  let to_channel ?indent oc = make ?indent (output_string oc)

  let pad w depth =
    match w.indent with
    | None -> ()
    | Some n ->
      w.emit "\n";
      w.emit (String.make (n * depth) ' ')

  (* Comma/newline bookkeeping before a value starts in the current
     container; items sit one level deeper than their container, i.e.
     at the current stack depth. *)
  let start_value w =
    match w.stack with
    | [] -> ()
    | f :: _ when f.is_obj ->
      if not f.pending_key then
        invalid_arg "Json.Writer: value inside an object requires a key";
      f.pending_key <- false
    | f :: _ ->
      if f.count > 0 then w.emit ",";
      f.count <- f.count + 1;
      pad w (List.length w.stack)

  let key w k =
    match w.stack with
    | f :: _ when f.is_obj && not f.pending_key ->
      if f.count > 0 then w.emit ",";
      f.count <- f.count + 1;
      pad w (List.length w.stack);
      let b = Buffer.create (String.length k + 2) in
      escape_string b k;
      w.emit (Buffer.contents b);
      w.emit ":";
      if w.indent <> None then w.emit " ";
      f.pending_key <- true
    | _ -> invalid_arg "Json.Writer.key: not at an object member position"

  let value w v =
    start_value w;
    let b = Buffer.create 64 in
    render_into b ?indent:w.indent ~depth:(List.length w.stack) v;
    w.emit (Buffer.contents b)

  let begin_obj w =
    start_value w;
    w.emit "{";
    w.stack <- { is_obj = true; count = 0; pending_key = false } :: w.stack

  let begin_arr w =
    start_value w;
    w.emit "[";
    w.stack <- { is_obj = false; count = 0; pending_key = false } :: w.stack

  let end_arr w =
    match w.stack with
    | f :: rest when not f.is_obj ->
      w.stack <- rest;
      if f.count > 0 then pad w (List.length rest);
      w.emit "]"
    | _ -> invalid_arg "Json.Writer.end_arr: no open array"

  let end_obj w =
    match w.stack with
    | f :: rest when f.is_obj ->
      if f.pending_key then
        invalid_arg "Json.Writer.end_obj: key without value";
      w.stack <- rest;
      if f.count > 0 then pad w (List.length rest);
      w.emit "}"
    | _ -> invalid_arg "Json.Writer.end_obj: no open object"

  let close w =
    if w.stack <> [] then
      invalid_arg "Json.Writer.close: unclosed containers remain"
end

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the byte string. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, got %c" c got)
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "bad literal (wanted %s)" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            (* Code points above one byte are re-encoded as UTF-8. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while
      match peek () with Some c when is_num_char c -> true | _ -> false
    do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let members = ref [ parse_member () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          members := parse_member () :: !members;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !members)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function Obj members -> List.assoc_opt k members | _ -> None
let to_list = function List l -> l | _ -> []
let string_value = function String s -> Some s | _ -> None

let number_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         x y
  | _ -> false
