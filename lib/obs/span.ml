type id = int

type context = { trace : id; span : id; parent : id option }

type completed = {
  ctx : context;
  name : string;
  started : float;
  ended : float;
  attrs : (string * string) list;
}

type t = {
  s_ctx : context;
  s_name : string;
  s_started : float;
  (* reversed: attrs are appended rarely, read once at finish *)
  mutable s_attrs : (string * string) list;
  mutable s_open : bool;
}

let collecting = ref false
let enabled () = !collecting

let next_id = ref 1
let ambient : context option ref = ref None
let recorder : (completed -> unit) ref = ref (fun _ -> ())

let set_recorder f = recorder := f

let set_enabled on =
  collecting := on;
  if not on then ambient := None

let reset () =
  next_id := 1;
  ambient := None

let mint () =
  let i = !next_id in
  incr next_id;
  i

let null_context = { trace = 0; span = 0; parent = None }

let null_span =
  { s_ctx = null_context; s_name = ""; s_started = 0.0; s_attrs = [];
    s_open = false }

let current () = !ambient

let start ?parent ?(attrs = []) ~time name =
  if not !collecting then null_span
  else
    let parent = match parent with Some p -> p | None -> !ambient in
    let span = mint () in
    let ctx =
      match parent with
      | Some p -> { trace = p.trace; span; parent = Some p.span }
      | None -> { trace = span; span; parent = None }
    in
    { s_ctx = ctx;
      s_name = name;
      s_started = time;
      s_attrs = List.rev attrs;
      s_open = true
    }

let context t = t.s_ctx

let add_attr t k v = if t.s_open then t.s_attrs <- (k, v) :: t.s_attrs

let finish ?(attrs = []) ~time t =
  if t.s_open then begin
    t.s_open <- false;
    !recorder
      { ctx = t.s_ctx;
        name = t.s_name;
        started = t.s_started;
        ended = time;
        attrs = List.rev_append t.s_attrs attrs
      }
  end

let with_current ctx f =
  let saved = !ambient in
  ambient := ctx;
  Fun.protect ~finally:(fun () -> ambient := saved) f

let clock = ref (fun () -> 0.0)
let set_clock f = clock := f

let with_span ?attrs ?time name f =
  if not !collecting then f ()
  else begin
    let time = Option.value time ~default:!clock in
    let sp = start ?attrs ~time:(time ()) name in
    Fun.protect
      ~finally:(fun () -> finish ~time:(time ()) sp)
      (fun () -> with_current (Some sp.s_ctx) f)
  end
