(** The process-wide event sink.

    Instrumented code calls {!emit} unconditionally; when no sink is
    installed the call is a single load-and-branch, so hot paths pay
    nothing for tracing that nobody is collecting. A trace buffer
    (normally {!Peering_sim.Trace}, which also supplies the virtual
    clock) installs itself with {!set} for the duration of a run.

    There is deliberately one sink, not a registry of them: the
    simulator is single-threaded and deterministic, and a single
    process hosts a single testbed run. *)

val set : (time:float option -> Event.level -> subsystem:string -> Event.t -> unit) -> unit
(** Install the sink, replacing any previous one. *)

val clear : unit -> unit
(** Remove the sink; subsequent {!emit} calls are no-ops. *)

val active : unit -> bool
(** Whether a sink is installed. Hot paths that must build an event
    payload guard on this to skip the allocation entirely. *)

val emit : ?time:float -> ?level:Event.level -> subsystem:string -> Event.t -> unit
(** Report an event. [time] is the virtual timestamp when the caller
    knows it (e.g. the safety layer's [~now]); otherwise the sink
    falls back to its own clock. [level] defaults to [Info]. *)
