(** The process-wide event sink and span flight recorder.

    Instrumented code calls {!emit} unconditionally; when no sink is
    installed the call is a single load-and-branch, so hot paths pay
    nothing for tracing that nobody is collecting. A trace buffer
    (normally {!Peering_sim.Trace}, which also supplies the virtual
    clock) installs itself with {!set} for the duration of a run.

    There is deliberately one sink, not a registry of them: the
    simulator is single-threaded and deterministic, and a single
    process hosts a single testbed run.

    The sink also owns the {e flight recorder}: a bounded buffer of
    completed {!Span.completed} records with drop accounting, fed by
    {!Span.finish} while recording is on. Events and spans meet in the
    consumer ([peering_cli trace]): events carry the span context that
    caused them, spans carry the interval tree. *)

val set :
  (time:float option ->
  Event.level ->
  span:Span.context option ->
  subsystem:string ->
  Event.t ->
  unit) ->
  unit
(** Install the sink, replacing any previous one. The sink receives
    the causal span context the event was emitted under, if any. *)

val clear : unit -> unit
(** Remove the sink; subsequent {!emit} calls are no-ops. *)

val active : unit -> bool
(** Whether a sink is installed. Hot paths that must build an event
    payload guard on this to skip the allocation entirely. *)

val emit :
  ?time:float ->
  ?level:Event.level ->
  ?span:Span.context ->
  subsystem:string ->
  Event.t ->
  unit
(** Report an event. [time] is the virtual timestamp when the caller
    knows it (e.g. the safety layer's [~now]); otherwise the sink
    falls back to its own clock. [level] defaults to [Info]. [span]
    defaults to the ambient {!Span.current} context, so instrumented
    code stamped by a causal trace needs no changes at all. *)

(** {1 Flight recorder} *)

val start_flight_recorder : ?capacity:int -> unit -> unit
(** Begin collecting completed spans: clears the buffer, zeroes the
    drop counter, and turns {!Span.enabled} on. [capacity] (default
    65536) bounds retained spans; beyond it the {e oldest} completed
    span is discarded and accounted in {!flight_dropped}. *)

val stop_flight_recorder : unit -> unit
(** Stop collecting (turns {!Span.enabled} off). Retained spans stay
    readable until the next {!start_flight_recorder} or
    {!clear_flight_recorder}. *)

val flight_spans : unit -> Span.completed list
(** Retained completed spans, in completion order. *)

val flight_count : unit -> int
(** Number of retained completed spans. *)

val flight_dropped : unit -> int
(** Completed spans discarded because the capacity bound was hit. The
    total ever recorded is [flight_count () + flight_dropped ()]. *)

val clear_flight_recorder : unit -> unit
(** Drop all retained spans and zero the drop counter without changing
    whether recording is on. *)
