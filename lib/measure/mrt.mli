(** MRT routing-information export (RFC 6396): the standard format
    RouteViews and RIPE RIS use for RIB dumps and update traces — the
    feeds a real PEERING mux drinks from.

    Supported records: TABLE_DUMP_V2 [PEER_INDEX_TABLE],
    [RIB_IPV4_UNICAST] and [RIB_IPV6_UNICAST] (type 13, subtypes
    1/2/4) and BGP4MP [BGP4MP_MESSAGE] / [BGP4MP_MESSAGE_AS4]
    (type 16, subtypes 1/4).  The writer is canonical — 4-byte-AS peer
    entries, attribute sections in ascending code order via
    {!Peering_bgp.Wire.encode_attrs} — so for dumps this module
    produced, decode ∘ encode is the identity byte-for-byte; the
    [@mrt-roundtrip] alias enforces that over seeded worlds.  The
    reader additionally accepts the 2-byte-AS forms RFC 6396 allows.

    Generators build RouteViews-style dumps from synthetic {!Gen}
    worlds (deterministic in the seed), and {!load} replays a dump
    into a mux-style {!Peering_bgp.Rib}. *)

open Peering_net
open Peering_bgp
open Peering_topo

(** Everything that can go wrong reading a dump. *)
type error =
  | Truncated  (** record header or body ran off the buffer *)
  | Bad_record of string  (** unsupported type/subtype or malformed body *)
  | Bad_message of Wire.error  (** an embedded BGP payload or attribute
                                   section failed to parse *)

val error_to_string : error -> string
(** Human-readable rendering for CLI errors and logs. *)

(** A peer address in a [PEER_INDEX_TABLE] entry or BGP4MP header. *)
type peer_addr =
  | V4 of Ipv4.t  (** an IPv4 peer *)
  | V6 of Ipv6.t  (** an IPv6 peer *)

(** One [PEER_INDEX_TABLE] entry; RIB entries refer to peers by index
    into this table. *)
type peer = {
  bgp_id : Ipv4.t;  (** the peer's BGP identifier *)
  addr : peer_addr;  (** the peer's session address *)
  asn : Asn.t;  (** the peer's AS number *)
}

(** One route in a RIB record: who advertised it, when, with what
    attributes. *)
type rib_entry = {
  peer_index : int;  (** index into the peer table *)
  originated : int;  (** UNIX time the route was first learned *)
  attrs : Attrs.t;  (** path attributes, decoded with 4-byte ASNs *)
  next_hop6 : Ipv6.t option;
      (** v6 next hop from the abbreviated MP_REACH_NLRI
          (RFC 6396 §4.3.4); [None] for v4 entries, whose next hop is
          in [attrs] *)
}

(** The supported MRT record bodies. *)
type record =
  | Peer_index_table of {
      collector_id : Ipv4.t;  (** the collector's BGP identifier *)
      view_name : string;  (** optional view name, often empty *)
      peers : peer array;  (** the peer table RIB entries index into *)
    }  (** TABLE_DUMP_V2 subtype 1 — must precede RIB records *)
  | Rib_v4 of {
      seq : int;  (** record sequence number *)
      prefix : Prefix.t;  (** the announced v4 prefix *)
      entries : rib_entry list;  (** one entry per advertising peer *)
    }  (** TABLE_DUMP_V2 subtype 2, [RIB_IPV4_UNICAST] *)
  | Rib_v6 of {
      seq : int;  (** record sequence number *)
      prefix : Prefix6.t;  (** the announced v6 prefix *)
      entries : rib_entry list;  (** one entry per advertising peer *)
    }  (** TABLE_DUMP_V2 subtype 4, [RIB_IPV6_UNICAST] *)
  | Bgp4mp of {
      peer_asn : Asn.t;  (** the peer that sent the message *)
      local_asn : Asn.t;  (** the collector's AS *)
      ifindex : int;  (** interface index, 0 when unknown *)
      peer_ip : peer_addr;  (** peer session address *)
      local_ip : peer_addr;  (** collector session address (same
                                 family as [peer_ip]) *)
      as4 : bool;  (** [true] for [BGP4MP_MESSAGE_AS4]: 4-byte ASNs in
                       this header and in the payload's attributes *)
      payload : bytes;  (** the verbatim BGP message, 19-byte header
                            included *)
    }  (** BGP4MP subtypes 1/4 — one captured BGP message *)

(** One timestamped MRT record. *)
type t = {
  timestamp : int;  (** UNIX seconds from the record header *)
  record : record;  (** the decoded body *)
}

(** {1 Wire codec} *)

val encode_record : Buffer.t -> t -> unit
(** Append one record (header + body) to a buffer. *)

val encode : t list -> bytes
(** Serialise a whole dump. *)

val decode : bytes -> pos:int -> (t * int, error) result
(** [decode buf ~pos] parses one record starting at [pos]; returns it
    and the position one past its end.  Strict: the body must parse
    exactly to the header's length. *)

val fold : bytes -> init:'a -> f:('a -> t -> 'a) -> ('a, error) result
(** Stream every record in the buffer through [f] without retaining
    them — the 1M-prefix bench path. *)

val iter : bytes -> (t -> unit) -> (int, error) result
(** [iter buf f] applies [f] to every record; returns the count. *)

val read_all : bytes -> (t list, error) result
(** Materialize every record in order. *)

(** {1 Summary} *)

(** Per-dump record and entry counts, as printed by [mrt info]. *)
type summary = {
  n_records : int;  (** total records *)
  n_peer_index : int;  (** peer index tables *)
  n_rib4 : int;  (** RIB_IPV4_UNICAST records *)
  n_rib6 : int;  (** RIB_IPV6_UNICAST records *)
  n_bgp4mp : int;  (** BGP4MP message records *)
  n_peers : int;  (** peer-table entries *)
  n_entries : int;  (** RIB entries across all records *)
  n_bytes : int;  (** size of the dump *)
}

val summarize : bytes -> (summary, error) result
(** One full decoding pass over a dump, counting as it goes. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render a summary as an aligned table. *)

(** {1 Generators} *)

val base_time : int
(** The fixed timestamp every generated record carries
    (2014-09-01T00:00:00Z — the paper's era).  Dumps never read the
    host clock, which is what makes them byte-identical across runs. *)

val make_peers : n:int -> peer array
(** [n] synthetic v4 collector peers on ASNs 64500+, for benches that
    need a peer table without a world. *)

val peers_of_world : ?n:int -> Gen.world -> peer array
(** The first [n] (default 8) transit ASes of the world as collector
    peers; the last one is v6-addressed so dumps exercise that peer
    encoding. *)

val table_of_world :
  ?seed:int -> ?peers:int -> ?entries_per_prefix:int -> Gen.world -> t list
(** A full RIB dump of the world: a peer index table, one
    [RIB_IPV4_UNICAST] record per prefix in the graph (ascending AS
    order), and one [RIB_IPV6_UNICAST] /48 per tier-1.  Each prefix
    gets [entries_per_prefix] (default 2) entries from rotating peers
    with synthetic-but-plausible AS paths drawn from [seed]'s RNG
    stream. *)

val updates_of_world : ?seed:int -> ?peer:int -> ?limit:int -> Gen.world -> t list
(** A BGP4MP update stream from one collector peer: an announcement
    per prefix, with every 16th prefix flapping (announce then
    withdraw).  [limit] caps the prefix count. *)

val iter_synthetic_rib :
  ?entries_per_prefix:int -> peers:peer array -> n_prefixes:int ->
  (t -> unit) -> unit
(** Stream a synthetic [n_prefixes]-prefix RIB dump (peer table first)
    through a callback without materializing it — the generator behind
    the 1M-prefix bench.  Fully deterministic, no RNG. *)

(** {1 Replay} *)

(** The result of replaying a dump into a mux-style table. *)
type load = {
  rib : Rib.t;  (** the filled table: per-peer Adj-RIBs-In + Loc-RIB *)
  peers : peer array;  (** the dump's peer table *)
  records : int;  (** records processed *)
  routes4 : int;  (** v4 RIB entries installed *)
  entries6 : int;  (** v6 RIB entries parsed (the mux RIB is v4-only) *)
  updates : int;  (** BGP4MP messages decoded and applied *)
}

val load : bytes -> (load, error) result
(** Replay a dump: RIB entries become Adj-RIB-In routes keyed by peer
    index, BGP4MP UPDATE payloads are decoded through the zero-copy
    {!Wire.view} path and applied as announces/withdraws.  Fails on a
    RIB entry whose peer index is outside the peer table. *)
