(** The testbed-wide monitoring station: consumes the muxes' BMP feeds
    and rebuilds their state live.

    One station ingests any number of byte feeds (one per mux; see
    [Peering_core.Server.set_bmp_sink]), reassembles BMP frames from
    arbitrarily-fragmented byte pushes, and maintains a per-(mux,
    peer) Adj-RIB-In mirror that must stay {e byte-identical} (Marshal
    digest over the canonical dump) to the live mux table — the
    [@bmp-diff] harness holds that across propagation, scheduler churn
    and chaos drills.  Every Route Monitoring message also lands in an
    optional {!Collector}, so the passive archive fills from the
    stream instead of ad-hoc call sites.

    On top of reconstruction the station runs four live detectors,
    each armed explicitly so clean runs stay alert-free: MOAS
    ({!watch_moas}), out-of-cone leaks ({!allow_export}), per-prefix
    flap churn ({!watch_flaps}) and reachability dips
    ({!watch_reach}).  Alerts are deduplicated (a given incident fires
    exactly once), recorded here, emitted as typed
    [Peering_obs.Event.Monitor_alert] trace events, and counted in the
    ["measure.monitor.alerts"] metric family. *)

open Peering_net
module Bmp = Peering_bgp.Bmp
module Route = Peering_bgp.Route

type t
(** A monitoring station. *)

val create : ?collector:Collector.t -> unit -> t
(** A station with no feeds; [collector] receives every announce and
    withdraw reconstructed from Route Monitoring messages. *)

(** {1 Feeds} *)

val attach : t -> mux:string -> bytes -> unit
(** [attach t ~mux] used partially — [Server.set_bmp_sink srv (Some
    (Monitor.attach t ~mux:(Server.name srv)))] — is the standard
    wiring.  Bytes may arrive in any fragmentation: partial frames are
    buffered until complete, concatenated frames are all processed. *)

val feed : t -> mux:string -> bytes -> unit
(** Same as {!attach} (explicit form). *)

val muxes : t -> string list
(** Muxes that have fed at least one byte, sorted. *)

val messages : t -> int
(** BMP messages successfully ingested across all feeds. *)

val bytes_ingested : t -> int

val parse_errors : t -> int
(** Undecodable frames dropped (the rest of that feed's buffer is
    discarded to resync). *)

val buffered : t -> mux:string -> int
(** Bytes held for [mux] awaiting the rest of a partial frame. *)

val series : t -> Peering_obs.Window.Series.t
(** Ingestion time-series: one sample per ingested message at its
    feed timestamp (virtual time) — rolling rates and sliding-window
    quantiles for the health report come from here. *)

(** {1 Reconstruction} *)

val mux_up : t -> mux:string -> bool
(** False between a Termination and the next Initiation. *)

val peer_up : t -> mux:string -> peer:Asn.t -> bool
(** Session state per the Peer Up/Down stream; [false] if never up. *)

val adj_rib : t -> mux:string -> peer:Asn.t -> Route.t Prefix.Map.t
(** The reconstructed Adj-RIB-In for one (mux, peer); empty if
    unknown. *)

val route_count : t -> mux:string -> int
(** Reconstructed routes across all of the mux's peers. *)

val reported_routes : t -> mux:string -> peer:Asn.t -> int option
(** The last Stats Report's stat-7 value (routes in Adj-RIB-In), if
    one arrived — cross-checkable against {!adj_rib}'s cardinality. *)

val adj_rib_dump : t -> mux:string -> (int * (Prefix.t * Route.t) list) list
(** Canonical dump in exactly [Peering_core.Server.adj_rib_dump]'s
    shape and order (timestamps are already at wire precision). *)

val rib_digest : t -> mux:string -> string
(** Hex Marshal digest of {!adj_rib_dump} — must equal the live mux's
    [Server.rib_digest] whenever the feed is fully consumed. *)

(** {1 Detectors}

    All detectors are armed per prefix (or per (mux, peer) cone), so
    ordinary churn — scheduler admits and evictions, chaos recovery —
    never alerts unless a watched invariant actually breaks. *)

val watch_moas : t -> Prefix.t -> origin:Asn.t -> unit
(** Alert ([Moas]) when the prefix is announced with an origin AS
    other than [origin]. *)

val allow_export : t -> mux:string -> peer:Asn.t -> (Prefix.t -> bool) -> unit
(** Register the peer's export cone at a mux.  An announcement of a
    prefix outside the predicate raises [Out_of_cone_leak] (once per
    (mux, peer, prefix)). *)

val watch_flaps : t -> ?window_s:float -> ?limit:int -> Prefix.t -> unit
(** Alert ([Flap_churn]) when the prefix sees [limit] or more
    announce/withdraw events within [window_s] virtual seconds
    (defaults: 8 events in 60 s). *)

val watch_reach : t -> Prefix.t -> floor:int -> unit
(** Alert ([Reach_dip]) when the number of (mux, peer) tables holding
    the prefix, having first reached [floor], falls below it. *)

type alert = {
  a_time : float;  (** feed (virtual) time the detector fired *)
  a_kind : Peering_obs.Event.alert_kind;
  a_mux : string;
  a_prefix : Prefix.t;
  a_detail : string;
}

val alerts : t -> alert list
(** Alerts raised, oldest first. *)
