(** Rendering of {!Peering_obs.Metrics} snapshots.

    [Peering_obs] stores raw histogram samples and leaves summary
    statistics to the consumer; this module is that consumer — it joins
    the registry snapshot with {!Stats} percentiles and renders the
    result as aligned text (for [peering_cli stats]) or JSON (for
    [bench --json] artifacts). *)

val render :
  ?include_volatile:bool -> ?registry:Peering_obs.Metrics.t -> unit -> string
(** A human-readable table of every registered metric, one per line:
    counters as integers, gauges as [value (hwm …)], histograms as
    [n/sum/p50/p90/p99]. Volatile rows are excluded unless
    [include_volatile] is true, matching
    {!Peering_obs.Metrics.snapshot}. *)

val to_json :
  ?include_volatile:bool ->
  ?registry:Peering_obs.Metrics.t ->
  unit ->
  Peering_obs.Json.t
(** The same snapshot as a JSON object keyed by
    {!Peering_obs.Metrics.row_name}. Counters map to integers; gauges
    to [{"value", "hwm"}]; histograms to
    [{"count", "sum", "p50", "p90", "p99"}] (percentiles [null] when no
    samples were retained). Deterministic for a seeded run when
    volatile rows are excluded (the default). *)

val row_json : Peering_obs.Metrics.row -> Peering_obs.Json.t
(** The JSON value for a single snapshot row, as embedded by
    {!to_json}. *)
