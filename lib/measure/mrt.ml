open Peering_net
module Wire = Peering_bgp.Wire
module Cursor = Peering_bgp.Wire.Cursor
module Mp = Peering_bgp.Mp
module Attrs = Peering_bgp.Attrs
module As_path = Peering_bgp.As_path
module Community = Peering_bgp.Community
module Message = Peering_bgp.Message
module Rib = Peering_bgp.Rib
module Route = Peering_bgp.Route
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph
module Rng = Peering_sim.Rng

(* ------------------------------------------------------------------ *)
(* Types *)

type error =
  | Truncated
  | Bad_record of string
  | Bad_message of Wire.error

let error_to_string = function
  | Truncated -> "truncated MRT record"
  | Bad_record s -> Printf.sprintf "bad MRT record: %s" s
  | Bad_message e -> Printf.sprintf "bad BGP payload: %s" (Wire.error_to_string e)

exception Error of error

type peer_addr = V4 of Ipv4.t | V6 of Ipv6.t

type peer = { bgp_id : Ipv4.t; addr : peer_addr; asn : Asn.t }

type rib_entry = {
  peer_index : int;
  originated : int;
  attrs : Attrs.t;
  next_hop6 : Ipv6.t option;
}

type record =
  | Peer_index_table of {
      collector_id : Ipv4.t;
      view_name : string;
      peers : peer array;
    }
  | Rib_v4 of { seq : int; prefix : Prefix.t; entries : rib_entry list }
  | Rib_v6 of { seq : int; prefix : Prefix6.t; entries : rib_entry list }
  | Bgp4mp of {
      peer_asn : Asn.t;
      local_asn : Asn.t;
      ifindex : int;
      peer_ip : peer_addr;
      local_ip : peer_addr;
      as4 : bool;
      payload : bytes;
    }

type t = { timestamp : int; record : record }

(* MRT type / subtype codes (RFC 6396 §4) *)
let type_table_dump_v2 = 13
let subtype_peer_index_table = 1
let subtype_rib_ipv4_unicast = 2
let subtype_rib_ipv6_unicast = 4
let type_bgp4mp = 16
let subtype_bgp4mp_message = 1
let subtype_bgp4mp_message_as4 = 4

(* TABLE_DUMP_V2 attribute sections always use 4-byte ASNs
   (RFC 6396 §4.3.4), regardless of what the original session spoke. *)
let attr_opts = Wire.{ four_octet_asn = true; add_path = false }

let session_opts_of_as4 as4 = Wire.{ four_octet_asn = as4; add_path = false }

(* ------------------------------------------------------------------ *)
(* Writer.  Output is canonical: peers and BGP4MP records always use
   4-byte ASN forms, attribute sections come from [Wire.encode_attrs]
   (ascending code order), so encode ∘ decode is the identity on our
   own dumps. *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_ipv4 b a = put_u32 b (Ipv4.to_int a)

let put_peer b p =
  let ty = (match p.addr with V4 _ -> 0 | V6 _ -> 1) lor 2 in
  put_u8 b ty;
  put_ipv4 b p.bgp_id;
  (match p.addr with V4 a -> put_ipv4 b a | V6 a -> Mp.put_ipv6 b a);
  put_u32 b (Asn.to_int p.asn)

(* RFC 6396 §4.3.4: inside a RIB_IPV6 entry the MP_REACH_NLRI
   attribute is abbreviated to next-hop length + next-hop address. *)
let put_mp_reach_next_hop b nh =
  put_u8 b 0x80 (* optional *);
  put_u8 b 14 (* MP_REACH_NLRI *);
  put_u8 b 17 (* 1 length byte + 16 address bytes *);
  put_u8 b 16;
  Mp.put_ipv6 b nh

let put_rib_entry ~v6 b e =
  put_u16 b e.peer_index;
  put_u32 b e.originated;
  let attrs = Wire.encode_attrs ~with_next_hop:(not v6) attr_opts e.attrs in
  if v6 then begin
    put_u16 b (Bytes.length attrs + 20);
    Buffer.add_bytes b attrs;
    let nh = Option.value e.next_hop6 ~default:(Ipv6.make 0L 0L) in
    put_mp_reach_next_hop b nh
  end
  else begin
    put_u16 b (Bytes.length attrs);
    Buffer.add_bytes b attrs
  end

let put_peer_addr b = function
  | V4 a -> put_ipv4 b a
  | V6 a -> Mp.put_ipv6 b a

let body_of_record b = function
  | Peer_index_table { collector_id; view_name; peers } ->
    put_ipv4 b collector_id;
    put_u16 b (String.length view_name);
    Buffer.add_string b view_name;
    put_u16 b (Array.length peers);
    Array.iter (put_peer b) peers
  | Rib_v4 { seq; prefix; entries } ->
    put_u32 b seq;
    Wire.encode_prefix b prefix;
    put_u16 b (List.length entries);
    List.iter (put_rib_entry ~v6:false b) entries
  | Rib_v6 { seq; prefix; entries } ->
    put_u32 b seq;
    Mp.put_prefix6 b prefix;
    put_u16 b (List.length entries);
    List.iter (put_rib_entry ~v6:true b) entries
  | Bgp4mp { peer_asn; local_asn; ifindex; peer_ip; local_ip; as4; payload }
    ->
    let afi =
      match (peer_ip, local_ip) with
      | V4 _, V4 _ -> 1
      | V6 _, V6 _ -> 2
      | _ -> invalid_arg "Mrt: BGP4MP peer/local address families differ"
    in
    if as4 then begin
      put_u32 b (Asn.to_int peer_asn);
      put_u32 b (Asn.to_int local_asn)
    end
    else begin
      put_u16 b (Asn.to_int peer_asn);
      put_u16 b (Asn.to_int local_asn)
    end;
    put_u16 b ifindex;
    put_u16 b afi;
    put_peer_addr b peer_ip;
    put_peer_addr b local_ip;
    Buffer.add_bytes b payload

let type_subtype = function
  | Peer_index_table _ -> (type_table_dump_v2, subtype_peer_index_table)
  | Rib_v4 _ -> (type_table_dump_v2, subtype_rib_ipv4_unicast)
  | Rib_v6 _ -> (type_table_dump_v2, subtype_rib_ipv6_unicast)
  | Bgp4mp { as4; _ } ->
    ( type_bgp4mp,
      if as4 then subtype_bgp4mp_message_as4 else subtype_bgp4mp_message )

let encode_record b t =
  let body = Buffer.create 64 in
  body_of_record body t.record;
  let ty, sub = type_subtype t.record in
  put_u32 b t.timestamp;
  put_u16 b ty;
  put_u16 b sub;
  put_u32 b (Buffer.length body);
  Buffer.add_buffer b body

let encode records =
  let b = Buffer.create 4096 in
  List.iter (encode_record b) records;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Reader.  Liberal where RFC 6396 allows senders to vary (2-byte-AS
   peers, BGP4MP_MESSAGE vs _AS4), strict about structure: every
   record body must parse exactly to its header length. *)

let read_peer c =
  let ty = Cursor.u8 c in
  let bgp_id = Ipv4.of_int (Cursor.u32 c) in
  let addr =
    if ty land 1 = 0 then V4 (Ipv4.of_int (Cursor.u32 c))
    else V6 (Mp.read_ipv6 c)
  in
  let asn = if ty land 2 <> 0 then Cursor.u32 c else Cursor.u16 c in
  { bgp_id; addr; asn = Asn.of_int asn }

let decode_peer_index c =
  let collector_id = Ipv4.of_int (Cursor.u32 c) in
  let vlen = Cursor.u16 c in
  let view_name = Bytes.to_string (Cursor.rest (Cursor.slice c vlen)) in
  let n = Cursor.u16 c in
  let peers = Array.init n (fun _ -> read_peer c) in
  Peer_index_table { collector_id; view_name; peers }

(* Scan a raw attribute section for the abbreviated MP_REACH next hop
   of a RIB_IPV6 entry. *)
let scan_mp_next_hop araw =
  let c = Cursor.of_bytes araw in
  let found = ref None in
  while Cursor.remaining c > 0 do
    let flags = Cursor.u8 c in
    let code = Cursor.u8 c in
    let len = if flags land 0x10 <> 0 then Cursor.u16 c else Cursor.u8 c in
    let sub = Cursor.slice c len in
    if code = 14 then begin
      let nh_len = Cursor.u8 sub in
      if nh_len <> 16 && nh_len <> 32 then
        raise (Error (Bad_record "bad MP_REACH next-hop length"));
      found := Some (Mp.read_ipv6 sub)
    end
  done;
  !found

let read_rib_entry ~v6 c =
  let peer_index = Cursor.u16 c in
  let originated = Cursor.u32 c in
  let alen = Cursor.u16 c in
  let araw = Cursor.rest (Cursor.slice c alen) in
  let attrs =
    match
      Wire.decode_attrs ~require_next_hop:(not v6) attr_opts
        (Cursor.of_bytes araw)
    with
    | Result.Error e -> raise (Error (Bad_message e))
    | Ok None -> raise (Error (Bad_record "RIB entry without attributes"))
    | Ok (Some a) -> a
  in
  let next_hop6 = if v6 then scan_mp_next_hop araw else None in
  if v6 && next_hop6 = None then
    raise (Error (Bad_record "RIB_IPV6 entry without MP_REACH next hop"));
  { peer_index; originated; attrs; next_hop6 }

let decode_rib ~v6 c =
  let seq = Cursor.u32 c in
  if v6 then begin
    let prefix = Mp.read_prefix6 c in
    let n = Cursor.u16 c in
    let entries = List.init n (fun _ -> read_rib_entry ~v6 c) in
    Rib_v6 { seq; prefix; entries }
  end
  else begin
    let prefix = Wire.read_prefix c in
    let n = Cursor.u16 c in
    let entries = List.init n (fun _ -> read_rib_entry ~v6 c) in
    Rib_v4 { seq; prefix; entries }
  end

let read_addr ~afi c =
  match afi with
  | 1 -> V4 (Ipv4.of_int (Cursor.u32 c))
  | 2 -> V6 (Mp.read_ipv6 c)
  | n -> raise (Error (Bad_record (Printf.sprintf "BGP4MP AFI %d" n)))

let decode_bgp4mp ~as4 c =
  let read_asn c =
    Asn.of_int (if as4 then Cursor.u32 c else Cursor.u16 c)
  in
  let peer_asn = read_asn c in
  let local_asn = read_asn c in
  let ifindex = Cursor.u16 c in
  let afi = Cursor.u16 c in
  let peer_ip = read_addr ~afi c in
  let local_ip = read_addr ~afi c in
  let payload = Cursor.rest c in
  Cursor.skip c (Cursor.remaining c);
  Bgp4mp { peer_asn; local_asn; ifindex; peer_ip; local_ip; as4; payload }

let decode buf ~pos =
  try
    let c = Cursor.of_bytes ~pos buf in
    if Cursor.remaining c < 12 then raise (Error Truncated);
    let timestamp = Cursor.u32 c in
    let ty = Cursor.u16 c in
    let sub = Cursor.u16 c in
    let len = Cursor.u32 c in
    let body =
      try Cursor.slice c len with Wire.Error _ -> raise (Error Truncated)
    in
    let record =
      if ty = type_table_dump_v2 then
        if sub = subtype_peer_index_table then decode_peer_index body
        else if sub = subtype_rib_ipv4_unicast then decode_rib ~v6:false body
        else if sub = subtype_rib_ipv6_unicast then decode_rib ~v6:true body
        else
          raise
            (Error (Bad_record (Printf.sprintf "TABLE_DUMP_V2 subtype %d" sub)))
      else if ty = type_bgp4mp then
        if sub = subtype_bgp4mp_message || sub = subtype_bgp4mp_message_as4
        then decode_bgp4mp ~as4:(sub = subtype_bgp4mp_message_as4) body
        else raise (Error (Bad_record (Printf.sprintf "BGP4MP subtype %d" sub)))
      else raise (Error (Bad_record (Printf.sprintf "MRT type %d" ty)))
    in
    if Cursor.remaining body > 0 then
      raise (Error (Bad_record "trailing bytes in record body"));
    Ok ({ timestamp; record }, Cursor.pos c)
  with
  | Error e -> Result.Error e
  | Wire.Error Wire.Truncated -> Result.Error Truncated
  | Wire.Error e -> Result.Error (Bad_message e)

let fold buf ~init ~f =
  let total = Bytes.length buf in
  let rec go acc pos =
    if pos >= total then Ok acc
    else
      match decode buf ~pos with
      | Result.Error e -> Result.Error e
      | Ok (t, next) -> go (f acc t) next
  in
  go init 0

let iter buf f = fold buf ~init:0 ~f:(fun n t -> f t; n + 1)

let read_all buf =
  match fold buf ~init:[] ~f:(fun acc t -> t :: acc) with
  | Ok l -> Ok (List.rev l)
  | Result.Error e -> Result.Error e

(* ------------------------------------------------------------------ *)
(* Summary *)

type summary = {
  n_records : int;
  n_peer_index : int;
  n_rib4 : int;
  n_rib6 : int;
  n_bgp4mp : int;
  n_peers : int;
  n_entries : int;
  n_bytes : int;
}

let summarize buf =
  let init =
    { n_records = 0;
      n_peer_index = 0;
      n_rib4 = 0;
      n_rib6 = 0;
      n_bgp4mp = 0;
      n_peers = 0;
      n_entries = 0;
      n_bytes = Bytes.length buf
    }
  in
  fold buf ~init ~f:(fun s t ->
      let s = { s with n_records = s.n_records + 1 } in
      match t.record with
      | Peer_index_table { peers; _ } ->
        { s with
          n_peer_index = s.n_peer_index + 1;
          n_peers = s.n_peers + Array.length peers
        }
      | Rib_v4 { entries; _ } ->
        { s with
          n_rib4 = s.n_rib4 + 1;
          n_entries = s.n_entries + List.length entries
        }
      | Rib_v6 { entries; _ } ->
        { s with
          n_rib6 = s.n_rib6 + 1;
          n_entries = s.n_entries + List.length entries
        }
      | Bgp4mp _ -> { s with n_bgp4mp = s.n_bgp4mp + 1 })

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>records            %d@,\
     peer index tables  %d (%d peers)@,\
     RIB_IPV4_UNICAST   %d@,\
     RIB_IPV6_UNICAST   %d@,\
     BGP4MP messages    %d@,\
     RIB entries        %d@,\
     bytes              %d@]"
    s.n_records s.n_peer_index s.n_peers s.n_rib4 s.n_rib6 s.n_bgp4mp
    s.n_entries s.n_bytes

(* ------------------------------------------------------------------ *)
(* Generators.  Everything below is deterministic in its seed: the RNG
   is an explicit splitmix stream and iteration orders are ascending,
   which is what makes `mrt dump` byte-identical across runs. *)

(* 2014-09-01T00:00:00Z, the paper's era; MRT timestamps are absolute
   seconds and we never read the host clock. *)
let base_time = 1409529600

let rec dedup_adjacent = function
  | a :: (b :: _ as rest) when Asn.equal a b -> dedup_adjacent rest
  | a :: rest -> a :: dedup_adjacent rest
  | [] -> []

let v4_peer i asn =
  { bgp_id = Ipv4.of_int (0xC0000001 + i);
    addr = V4 (Ipv4.of_int (0x0A010001 + i));
    asn
  }

let make_peers ~n =
  Array.init n (fun i -> v4_peer i (Asn.of_int (64500 + i)))

let peers_of_world ?(n = 8) world =
  let transit = Gen.all_transit world in
  let take =
    List.filteri (fun i _ -> i < n) transit |> Array.of_list
  in
  Array.mapi
    (fun i asn ->
      if i = Array.length take - 1 && i > 0 then
        (* last peer is v6-addressed so dumps exercise that peer form *)
        { bgp_id = Ipv4.of_int (0xC0000001 + i);
          addr = V6 (Ipv6.make 0x2001_0db8_0000_0000L (Int64.of_int (i + 1)));
          asn
        }
      else v4_peer i asn)
    take

let peer_v4_addr p =
  match p.addr with V4 a -> a | V6 _ -> Ipv4.of_int 0

let peer_v6_addr i p =
  match p.addr with
  | V6 a -> a
  | V4 _ -> Ipv6.make 0x2001_0db8_0000_ffffL (Int64.of_int (i + 1))

(* Synthetic-but-plausible path attributes for [prefix] as seen from
   [peer]: peer AS, a transit hop drawn from the RNG, the origin. *)
let entry_attrs rng ~vias ~peer ~origin ~next_hop =
  let via = Rng.choice rng vias in
  let as_path =
    [ As_path.Seq (dedup_adjacent [ peer.asn; via; origin ]) ]
  in
  let med = if Rng.bool rng then Some (Rng.int rng 200) else None in
  let communities =
    if Rng.int rng 4 = 0 then
      [ Community.of_int32 ((Asn.to_int peer.asn land 0xFFFF) lsl 16 lor 100) ]
    else []
  in
  Attrs.make ~origin:Attrs.IGP ~as_path ?med ~communities ~next_hop ()

let index_table ?(view_name = "peering-gen") peers =
  { timestamp = base_time;
    record =
      Peer_index_table
        { collector_id = Ipv4.of_int 0xC0A80001; view_name; peers }
  }

let table_of_world ?(seed = 0) ?(peers = 8) ?(entries_per_prefix = 2)
    world =
  let parr = peers_of_world ~n:peers world in
  let n_peers = Array.length parr in
  let rng = Rng.create (0x6D72_7400 lxor seed) in
  let vias = Array.of_list world.Gen.tier1 in
  let seq = ref 0 in
  let records = ref [] in
  let emit r = records := r :: !records in
  (* v4 RIB: one record per prefix in the graph, ascending AS order *)
  List.iter
    (fun asn ->
      List.iter
        (fun prefix ->
          let k = min entries_per_prefix n_peers in
          let entries =
            List.init k (fun j ->
                let i = (!seq + j) mod n_peers in
                let peer = parr.(i) in
                { peer_index = i;
                  originated = base_time - Rng.int rng 86400;
                  attrs =
                    entry_attrs rng ~vias ~peer ~origin:asn
                      ~next_hop:(peer_v4_addr peer);
                  next_hop6 = None
                })
          in
          emit
            { timestamp = base_time;
              record = Rib_v4 { seq = !seq; prefix; entries }
            };
          incr seq)
        (As_graph.prefixes_of world.Gen.graph asn))
    (As_graph.ases world.Gen.graph);
  (* v6 RIB: one /48 per tier-1, so dumps always carry the v6 record
     form even though the synthetic world's prefixes are v4 *)
  List.iteri
    (fun i asn ->
      let prefix =
        Prefix6.make
          (Ipv6.make
             (Int64.logor 0x2001_0db8_0000_0000L (Int64.of_int (i lsl 16)))
             0L)
          48
      in
      let k = min entries_per_prefix n_peers in
      let entries =
        List.init k (fun j ->
            let pi = (i + j) mod n_peers in
            let peer = parr.(pi) in
            { peer_index = pi;
              originated = base_time - Rng.int rng 86400;
              attrs =
                entry_attrs rng ~vias ~peer ~origin:asn
                  ~next_hop:(Ipv4.of_int 0);
              next_hop6 = Some (peer_v6_addr pi peer)
            })
      in
      emit
        { timestamp = base_time;
          record = Rib_v6 { seq = !seq; prefix; entries }
        };
      incr seq)
    world.Gen.tier1;
  index_table parr :: List.rev !records

let collector_asn = Asn.of_int 47065 (* the real PEERING ASN *)

let updates_of_world ?(seed = 0) ?(peer = 0) ?limit world =
  let parr = peers_of_world world in
  let p = parr.(peer mod Array.length parr) in
  let rng = Rng.create (0x6D72_7475 lxor seed) in
  let vias = Array.of_list world.Gen.tier1 in
  let local_ip = V4 (Ipv4.of_int 0x0A01_00FE) in
  let peer_ip =
    match p.addr with V4 _ -> p.addr | V6 _ -> V4 (peer_v4_addr p)
  in
  let records = ref [] in
  let count = ref 0 in
  let emit ~at msg =
    let payload = Wire.encode attr_opts msg in
    records :=
      { timestamp = at;
        record =
          Bgp4mp
            { peer_asn = p.asn;
              local_asn = collector_asn;
              ifindex = 0;
              peer_ip;
              local_ip;
              as4 = true;
              payload
            }
      }
      :: !records
  in
  (try
     List.iter
       (fun asn ->
         List.iter
           (fun prefix ->
             (match limit with
             | Some l when !count >= l -> raise Exit
             | _ -> ());
             let at = base_time + !count in
             let attrs =
               entry_attrs rng ~vias ~peer:p ~origin:asn
                 ~next_hop:(peer_v4_addr p)
             in
             emit ~at
               (Message.Update
                  { withdrawn = []; attrs = Some attrs; nlri = [ (0, prefix) ] });
             (* every 16th prefix also flaps: announce then withdraw *)
             if !count mod 16 = 7 then
               emit ~at:(at + 1)
                 (Message.Update
                    { withdrawn = [ (0, prefix) ]; attrs = None; nlri = [] });
             incr count)
           (As_graph.prefixes_of world.Gen.graph asn))
       (As_graph.ases world.Gen.graph)
   with Exit -> ());
  List.rev !records

let iter_synthetic_rib ?(entries_per_prefix = 1) ~peers ~n_prefixes f =
  let n_peers = Array.length peers in
  if n_peers = 0 then invalid_arg "Mrt.iter_synthetic_rib: no peers";
  f (index_table ~view_name:"peering-synth" peers);
  for i = 0 to n_prefixes - 1 do
    let prefix = Prefix.make (Ipv4.of_int (0x0400_0000 lor (i lsl 10))) 22 in
    let origin = Asn.of_int (65000 + (i mod 997)) in
    let via = Asn.of_int (64000 + (i mod 37)) in
    let k = min entries_per_prefix n_peers in
    let entries =
      List.init k (fun j ->
          let pi = (i + j) mod n_peers in
          let peer = peers.(pi) in
          let attrs =
            Attrs.make ~origin:Attrs.IGP
              ~as_path:[ As_path.Seq (dedup_adjacent [ peer.asn; via; origin ]) ]
              ?med:(if i land 1 = 0 then Some (i mod 200) else None)
              ~communities:
                (if i mod 4 = 0 then
                   [ Community.of_int32
                       ((Asn.to_int peer.asn land 0xFFFF) lsl 16 lor 200)
                   ]
                 else [])
              ~next_hop:(peer_v4_addr peer) ()
          in
          { peer_index = pi;
            originated = base_time - (i mod 86400);
            attrs;
            next_hop6 = None
          })
    in
    f { timestamp = base_time; record = Rib_v4 { seq = i; prefix; entries } }
  done

(* ------------------------------------------------------------------ *)
(* Replay *)

type load = {
  rib : Rib.t;
  peers : peer array;
  records : int;
  routes4 : int;
  entries6 : int;
  updates : int;
}

let peer_key i = Printf.sprintf "peer%03d" i

let load buf =
  let rib = Rib.create () in
  let peers = ref [||] in
  let routes4 = ref 0 in
  let entries6 = ref 0 in
  let updates = ref 0 in
  let source_of i =
    if i >= Array.length !peers then
      raise (Error (Bad_record (Printf.sprintf "peer index %d out of range" i)));
    let p = (!peers).(i) in
    Route.
      { peer_asn = p.asn;
        peer_addr = peer_v4_addr p;
        peer_router_id = p.bgp_id;
        ebgp = true
      }
  in
  let apply t =
    match t.record with
    | Peer_index_table { peers = parr; _ } -> peers := parr
    | Rib_v4 { prefix; entries; _ } ->
      List.iter
        (fun e ->
          let source = source_of e.peer_index in
          ignore
            (Rib.announce rib ~peer:(peer_key e.peer_index)
               (Route.make ~source prefix e.attrs));
          incr routes4)
        entries
    | Rib_v6 { entries; _ } ->
      (* the mux RIB is v4-only; v6 entries are parsed and counted *)
      List.iter (fun e -> ignore (source_of e.peer_index); incr entries6)
        entries
    | Bgp4mp { payload; peer_asn; as4; _ } -> (
      let opts = session_opts_of_as4 as4 in
      match Wire.view opts payload ~pos:0 with
      | Result.Error e -> raise (Error (Bad_message e))
      | Ok (v, _) -> (
        match Wire.to_message v with
        | Result.Error e -> raise (Error (Bad_message e))
        | Ok (Message.Update u) ->
          incr updates;
          let key = "upd/" ^ Asn.to_string peer_asn in
          List.iter
            (fun (path_id, prefix) ->
              ignore (Rib.withdraw rib ~peer:key ~path_id prefix))
            u.Message.withdrawn;
          (match u.Message.attrs with
          | Some attrs ->
            List.iter
              (fun (path_id, prefix) ->
                ignore
                  (Rib.announce rib ~peer:key
                     (Route.make ~path_id prefix attrs)))
              u.Message.nlri
          | None -> ())
        | Ok _ -> incr updates))
  in
  try
    match fold buf ~init:0 ~f:(fun n t -> apply t; n + 1) with
    | Result.Error e -> Result.Error e
    | Ok records ->
      Ok
        { rib;
          peers = !peers;
          records;
          routes4 = !routes4;
          entries6 = !entries6;
          updates = !updates
        }
  with Error e -> Result.Error e
