module Metrics = Peering_obs.Metrics
module Json = Peering_obs.Json

let percentile_opt p samples =
  match samples with [] -> None | l -> Some (Stats.percentile p l)

let row_json (r : Metrics.row) =
  match r.Metrics.value with
  | Metrics.Counter_v n -> Json.Int n
  | Metrics.Gauge_v { value; hwm } ->
    Json.Obj [ ("value", Json.Float value); ("hwm", Json.Float hwm) ]
  | Metrics.Histogram_v { count; sum; samples; dropped } ->
    let pct p =
      match percentile_opt p samples with
      | Some v -> Json.Float v
      | None -> Json.Null
    in
    Json.Obj
      [ ("count", Json.Int count);
        ("sum", Json.Float sum);
        ("p50", pct 50.0);
        ("p90", pct 90.0);
        ("p99", pct 99.0);
        ("dropped_samples", Json.Int dropped)
      ]

let to_json ?include_volatile ?registry () =
  let rows = Metrics.snapshot ?include_volatile ?registry () in
  Json.Obj (List.map (fun r -> (Metrics.row_name r, row_json r)) rows)

let render ?include_volatile ?registry () =
  let rows = Metrics.snapshot ?include_volatile ?registry () in
  let key_width =
    List.fold_left
      (fun acc r -> max acc (String.length (Metrics.row_name r)))
      0 rows
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Metrics.row) ->
      let rendered =
        match r.Metrics.value with
        | Metrics.Counter_v n -> string_of_int n
        | Metrics.Gauge_v { value; hwm } ->
          Printf.sprintf "%g (hwm %g)" value hwm
        | Metrics.Histogram_v { count; sum; samples; dropped = _ } ->
          let pct p =
            match percentile_opt p samples with
            | Some v -> Printf.sprintf "%g" v
            | None -> "-"
          in
          Printf.sprintf "n=%d sum=%g p50=%s p90=%s p99=%s" count sum
            (pct 50.0) (pct 90.0) (pct 99.0)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s\n" key_width (Metrics.row_name r) rendered))
    rows;
  Buffer.contents buf
