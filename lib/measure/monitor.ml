open Peering_net
module Bmp = Peering_bgp.Bmp
module Message = Peering_bgp.Message
module Route = Peering_bgp.Route
module As_path = Peering_bgp.As_path
module Attrs = Peering_bgp.Attrs
module Event = Peering_obs.Event
module Sink = Peering_obs.Sink
module Metrics = Peering_obs.Metrics
module Window = Peering_obs.Window

let fam_alerts =
  Metrics.Family.counter ~help:"monitoring-station detector alerts raised"
    "measure.monitor.alerts"

let m_msgs =
  Metrics.counter ~help:"BMP messages ingested by the monitoring station"
    "measure.monitor.msgs"

let m_parse_errors =
  Metrics.counter ~help:"undecodable BMP frames dropped by the station"
    "measure.monitor.parse_errors"

type peer_state = {
  mutable p_up : bool;
  mutable p_table : Route.t Prefix.Map.t;
  mutable p_reported : int option;
}

type mux_state = {
  peers : (int, peer_state) Hashtbl.t;
  mutable mx_up : bool;
  mutable pending : bytes;  (* unconsumed feed bytes (partial frame) *)
  mutable mx_msgs : int;
}

type watch = {
  mutable w_origin : Asn.t option;  (* expected origin; MOAS otherwise *)
  mutable w_flap_window : float;
  mutable w_flap_limit : int;  (* 0 = flap detector off *)
  mutable w_events : float list;  (* recent event times, newest first *)
  mutable w_floor : int;  (* 0 = reach detector off *)
  mutable w_armed : bool;  (* reach ever hit the floor *)
}

type alert = {
  a_time : float;
  a_kind : Event.alert_kind;
  a_mux : string;
  a_prefix : Prefix.t;
  a_detail : string;
}

type t = {
  collector : Collector.t option;
  muxes : (string, mux_state) Hashtbl.t;
  watches : (Prefix.t, watch) Hashtbl.t;
  (* (mux, peer asn) -> allowed-export predicate *)
  cones : (string * int, Prefix.t -> bool) Hashtbl.t;
  mutable alerts : alert list;  (* newest first *)
  alerted : (string, unit) Hashtbl.t;  (* dedup keys *)
  series : Window.Series.t;
  mutable messages : int;
  mutable bytes_in : int;
  mutable parse_errors : int;
}

let create ?collector () =
  { collector;
    muxes = Hashtbl.create 8;
    watches = Hashtbl.create 8;
    cones = Hashtbl.create 16;
    alerts = [];
    alerted = Hashtbl.create 8;
    series = Window.Series.create ~capacity:8192 ();
    messages = 0;
    bytes_in = 0;
    parse_errors = 0
  }

let mux_state t mux =
  match Hashtbl.find_opt t.muxes mux with
  | Some m -> m
  | None ->
    let m =
      { peers = Hashtbl.create 8; mx_up = false; pending = Bytes.empty;
        mx_msgs = 0
      }
    in
    Hashtbl.replace t.muxes mux m;
    m

let peer_state mx asn =
  let key = Asn.to_int asn in
  match Hashtbl.find_opt mx.peers key with
  | Some p -> p
  | None ->
    let p = { p_up = false; p_table = Prefix.Map.empty; p_reported = None } in
    Hashtbl.replace mx.peers key p;
    p

(* ------------------------------------------------------------------ *)
(* Watches and alerts *)

let watch t prefix =
  match Hashtbl.find_opt t.watches prefix with
  | Some w -> w
  | None ->
    let w =
      { w_origin = None; w_flap_window = 60.0; w_flap_limit = 0;
        w_events = []; w_floor = 0; w_armed = false
      }
    in
    Hashtbl.replace t.watches prefix w;
    w

let watch_moas t prefix ~origin = (watch t prefix).w_origin <- Some origin

let watch_flaps t ?(window_s = 60.0) ?(limit = 8) prefix =
  let w = watch t prefix in
  w.w_flap_window <- window_s;
  w.w_flap_limit <- max 1 limit

let watch_reach t prefix ~floor = (watch t prefix).w_floor <- max 1 floor

let allow_export t ~mux ~peer pred =
  Hashtbl.replace t.cones (mux, Asn.to_int peer) pred

let raise_alert t ~key ~time ~kind ~mux ~prefix ~detail =
  if not (Hashtbl.mem t.alerted key) then begin
    Hashtbl.replace t.alerted key ();
    t.alerts <-
      { a_time = time; a_kind = kind; a_mux = mux; a_prefix = prefix;
        a_detail = detail
      }
      :: t.alerts;
    Metrics.Counter.inc
      (Metrics.Family.get fam_alerts
         [ ("kind", Event.alert_kind_to_string kind) ]);
    Sink.emit ~time ~level:Event.Warn ~subsystem:"measure.monitor"
      (Event.Monitor_alert { kind; mux; prefix; detail })
  end

(* Reach of a prefix: how many (mux, peer) Adj-RIB-In mirrors hold
   it.  Only consulted for watched prefixes, so the scan is rare. *)
let reach t prefix =
  Hashtbl.fold
    (fun _ mx acc ->
      Hashtbl.fold
        (fun _ ps acc ->
          if Prefix.Map.mem prefix ps.p_table then acc + 1 else acc)
        mx.peers acc)
    t.muxes 0

let check_reach t ~time ~mux prefix w =
  if w.w_floor > 0 then begin
    let r = reach t prefix in
    if r >= w.w_floor then w.w_armed <- true
    else if w.w_armed then
      raise_alert t
        ~key:(Printf.sprintf "dip|%s" (Prefix.to_string prefix))
        ~time ~kind:Event.Reach_dip ~mux ~prefix
        ~detail:(Printf.sprintf "reach %d below floor %d" r w.w_floor)
  end

let note_churn t ~time ~mux prefix =
  match Hashtbl.find_opt t.watches prefix with
  | None -> ()
  | Some w ->
    if w.w_flap_limit > 0 then begin
      let floor_t = time -. w.w_flap_window in
      w.w_events <- time :: List.filter (fun e -> e > floor_t) w.w_events;
      let n = List.length w.w_events in
      if n >= w.w_flap_limit then
        raise_alert t
          ~key:(Printf.sprintf "flap|%s" (Prefix.to_string prefix))
          ~time ~kind:Event.Flap_churn ~mux ~prefix
          ~detail:
            (Printf.sprintf "%d events in %.0fs (limit %d)" n w.w_flap_window
               w.w_flap_limit)
    end;
    check_reach t ~time ~mux prefix w

(* ------------------------------------------------------------------ *)
(* Message processing *)

let collect t ~time ~peer ~prefix ~path kind =
  match t.collector with
  | None -> ()
  | Some c -> Collector.record c ~time ~peer ~prefix ~path kind

let on_announce t ~mux mx (hdr : Bmp.peer_header) attrs (path_id, prefix) =
  let time = Bmp.time hdr in
  let ps = peer_state mx hdr.Bmp.peer_asn in
  let source =
    { Route.peer_asn = hdr.Bmp.peer_asn;
      peer_addr = hdr.Bmp.peer_addr;
      peer_router_id = hdr.Bmp.peer_bgp_id;
      ebgp = true
    }
  in
  let route = Route.make ~source ~path_id ~learned_at:time prefix attrs in
  ps.p_table <- Prefix.Map.add prefix route ps.p_table;
  let path = As_path.to_asns attrs.Attrs.as_path in
  collect t ~time ~peer:hdr.Bmp.peer_asn ~prefix ~path Collector.Announce;
  (* MOAS: watched prefix announced from an unexpected origin *)
  (match Hashtbl.find_opt t.watches prefix with
  | Some { w_origin = Some expect; _ } -> (
    match As_path.origin_asn attrs.Attrs.as_path with
    | Some org when not (Asn.equal org expect) ->
      raise_alert t
        ~key:(Printf.sprintf "moas|%s" (Prefix.to_string prefix))
        ~time ~kind:Event.Moas ~mux ~prefix
        ~detail:
          (Printf.sprintf "origin %s, expected %s" (Asn.to_string org)
             (Asn.to_string expect))
    | _ -> ())
  | _ -> ());
  (* out-of-cone leak: this (mux, peer) announced outside its cone *)
  (match Hashtbl.find_opt t.cones (mux, Asn.to_int hdr.Bmp.peer_asn) with
  | Some pred when not (pred prefix) ->
    raise_alert t
      ~key:
        (Printf.sprintf "leak|%s|%s|%s" mux
           (Asn.to_string hdr.Bmp.peer_asn)
           (Prefix.to_string prefix))
      ~time ~kind:Event.Out_of_cone_leak ~mux ~prefix
      ~detail:
        (Printf.sprintf "announced by peer %s outside its cone"
           (Asn.to_string hdr.Bmp.peer_asn))
  | _ -> ());
  note_churn t ~time ~mux prefix

let on_withdraw t ~mux mx (hdr : Bmp.peer_header) (_path_id, prefix) =
  let time = Bmp.time hdr in
  let ps = peer_state mx hdr.Bmp.peer_asn in
  ps.p_table <- Prefix.Map.remove prefix ps.p_table;
  collect t ~time ~peer:hdr.Bmp.peer_asn ~prefix ~path:[] Collector.Withdraw;
  note_churn t ~time ~mux prefix

let clear_peer t ~time ~mux ps =
  ps.p_up <- false;
  let gone = ps.p_table in
  ps.p_table <- Prefix.Map.empty;
  ps.p_reported <- None;
  (* A session loss can dip a watched prefix's reach without any
     withdraw on the wire; re-check them. *)
  Prefix.Map.iter
    (fun prefix _ ->
      match Hashtbl.find_opt t.watches prefix with
      | Some w -> check_reach t ~time ~mux prefix w
      | None -> ())
    gone

let process t ~mux mx msg =
  t.messages <- t.messages + 1;
  mx.mx_msgs <- mx.mx_msgs + 1;
  Metrics.Counter.inc m_msgs;
  (match Bmp.peer_of msg with
  | Some hdr -> Window.Series.push t.series ~time:(Bmp.time hdr) 1.0
  | None -> (
    (* session-scoped messages carry no timestamp; reuse the newest *)
    match Window.Series.last t.series with
    | Some (time, _) -> Window.Series.push t.series ~time 1.0
    | None -> Window.Series.push t.series ~time:0.0 1.0));
  match msg with
  | Bmp.Initiation _ -> mx.mx_up <- true
  | Bmp.Termination _ ->
    mx.mx_up <- false;
    let time =
      match Window.Series.last t.series with Some (tm, _) -> tm | None -> 0.0
    in
    Hashtbl.iter (fun _ ps -> clear_peer t ~time ~mux ps) mx.peers
  | Bmp.Peer_up { peer = hdr; _ } ->
    mx.mx_up <- true;
    (peer_state mx hdr.Bmp.peer_asn).p_up <- true
  | Bmp.Peer_down { peer = hdr; _ } ->
    clear_peer t ~time:(Bmp.time hdr) ~mux (peer_state mx hdr.Bmp.peer_asn)
  | Bmp.Stats_report { peer = hdr; stats } ->
    let ps = peer_state mx hdr.Bmp.peer_asn in
    List.iter
      (fun s ->
        if s.Bmp.stat_type = Bmp.stat_routes_adj_rib_in then
          ps.p_reported <- Some s.Bmp.stat_value)
      stats
  | Bmp.Route_monitoring { peer = hdr; update } ->
    List.iter (fun wd -> on_withdraw t ~mux mx hdr wd) update.Message.withdrawn;
    (match (update.Message.nlri, update.Message.attrs) with
    | [], _ -> ()
    | nlri, Some attrs ->
      List.iter (fun ann -> on_announce t ~mux mx hdr attrs ann) nlri
    | _ :: _, None ->
      (* NLRI with no attributes cannot build a route; count it as a
         semantically bad frame rather than guessing. *)
      t.parse_errors <- t.parse_errors + 1;
      Metrics.Counter.inc m_parse_errors)

(* ------------------------------------------------------------------ *)
(* Feed reassembly *)

let feed t ~mux data =
  t.bytes_in <- t.bytes_in + Bytes.length data;
  let mx = mux_state t mux in
  let buf =
    if Bytes.length mx.pending = 0 then data
    else Bytes.cat mx.pending data
  in
  let len = Bytes.length buf in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop && !pos < len do
    match Bmp.decode buf ~pos:!pos with
    | Ok (msg, next) ->
      process t ~mux mx msg;
      pos := next
    | Error Bmp.Truncated ->
      (* partial frame: keep the tail for the next push *)
      stop := true
    | Error _ ->
      (* corrupt frame: drop the rest of the buffer to resync *)
      t.parse_errors <- t.parse_errors + 1;
      Metrics.Counter.inc m_parse_errors;
      pos := len;
      stop := true
  done;
  mx.pending <-
    (if !pos >= len then Bytes.empty else Bytes.sub buf !pos (len - !pos))

let attach t ~mux data = feed t ~mux data

(* ------------------------------------------------------------------ *)
(* Reads *)

let muxes t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.muxes [] |> List.sort compare

let messages t = t.messages
let bytes_ingested t = t.bytes_in
let parse_errors t = t.parse_errors

let buffered t ~mux =
  match Hashtbl.find_opt t.muxes mux with
  | None -> 0
  | Some mx -> Bytes.length mx.pending

let series t = t.series

let mux_up t ~mux =
  match Hashtbl.find_opt t.muxes mux with
  | None -> false
  | Some mx -> mx.mx_up

let peer_up t ~mux ~peer =
  match Hashtbl.find_opt t.muxes mux with
  | None -> false
  | Some mx -> (
    match Hashtbl.find_opt mx.peers (Asn.to_int peer) with
    | None -> false
    | Some ps -> ps.p_up)

let adj_rib t ~mux ~peer =
  match Hashtbl.find_opt t.muxes mux with
  | None -> Prefix.Map.empty
  | Some mx -> (
    match Hashtbl.find_opt mx.peers (Asn.to_int peer) with
    | None -> Prefix.Map.empty
    | Some ps -> ps.p_table)

let route_count t ~mux =
  match Hashtbl.find_opt t.muxes mux with
  | None -> 0
  | Some mx ->
    Hashtbl.fold
      (fun _ ps acc -> acc + Prefix.Map.cardinal ps.p_table)
      mx.peers 0

let reported_routes t ~mux ~peer =
  match Hashtbl.find_opt t.muxes mux with
  | None -> None
  | Some mx -> (
    match Hashtbl.find_opt mx.peers (Asn.to_int peer) with
    | None -> None
    | Some ps -> ps.p_reported)

(* Must match [Peering_core.Server.adj_rib_dump] structurally: the
   feed's timestamps are already at wire precision, but [canon_time]
   is applied anyway so both sides share the same code path. *)
let adj_rib_dump t ~mux =
  match Hashtbl.find_opt t.muxes mux with
  | None -> []
  | Some mx ->
    Hashtbl.fold (fun asn ps acc -> (asn, ps.p_table) :: acc) mx.peers []
    |> List.filter (fun (_, m) -> not (Prefix.Map.is_empty m))
    |> List.map (fun (asn, m) ->
           ( asn,
             List.map
               (fun (pfx, r) ->
                 ( pfx,
                   { r with
                     Route.learned_at = Bmp.canon_time r.Route.learned_at
                   } ))
               (Prefix.Map.bindings m) ))
    |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let rib_digest t ~mux =
  Digest.to_hex (Digest.string (Marshal.to_string (adj_rib_dump t ~mux) [ Marshal.No_sharing ]))

let alerts t = List.rev t.alerts
