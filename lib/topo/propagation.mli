(** Valley-free BGP route propagation over an AS graph.

    Computes, for one prefix announced by one or more origins (anycast
    and hijack scenarios announce from several), the route every AS
    selects under the Gao–Rexford model: prefer customer routes over
    peer routes over provider routes, then shortest AS path, then
    lowest next-hop ASN. Propagation follows the classic three phases —
    customer routes climb provider links, cross one peer link, then
    descend to customers.

    Two engines compute the same fixpoint. {!propagate} restructures
    the phase-1/phase-3 work-queue into synchronized rounds whose
    frontier is sharded across OCaml 5 domains; candidates are merged
    in a stable total order (ascending target ASN, then {!better}), so
    the adopted table is byte-identical for every domain count —
    including one — and to the sequential reference {!propagate_seq},
    which is kept as the oracle for the differential test harness
    ([test/test_propagation_diff.ml]).

    This engine is what stands in for "the live Internet" reacting to
    PEERING announcements: route injection, selective announcements,
    AS-path poisoning (LIFEGUARD), prefix hijacks, and anycast
    catchments are all expressed as [announcement]s. *)

open Peering_net

type announcement = {
  origin : Asn.t;  (** the AS injecting the route *)
  prefix : Prefix.t;
  path_suffix : Asn.t list;
      (** fake path appended after the origin; poisoning inserts ASNs
          here so they self-loop-reject the route *)
  export_to : Asn.Set.t option;
      (** when [Some s], the origin announces only to neighbors in
          [s] — PEERING's selective-announcement control. [None] =
          export to all neighbors (subject to Gao–Rexford). *)
}

val announce :
  ?path_suffix:Asn.t list ->
  ?export_to:Asn.Set.t ->
  Asn.t ->
  Prefix.t ->
  announcement

type route = {
  learned_over : Relationship.t option;
      (** relationship class the route was imported over;
          [None] = this AS originates it *)
  path : Asn.t list;
      (** AS path excluding self: next hop first, then onwards to the
          origin, then any poisoned suffix *)
  ann_index : int;  (** which announcement this route derives from *)
}

val class_pref : Relationship.t option -> int
(** Gao–Rexford preference class: origin 3 > customer 2 > peer 1 >
    provider 0. Exposed so tests can check the total-order laws the
    parallel merge depends on. *)

val better : route -> route -> bool
(** [better a b] iff [a] is strictly preferred over [b]: higher
    {!class_pref}, then shorter path, then lexicographically lowest
    AS path (which subsumes "lowest next-hop ASN"), then lower
    announcement index. A strict total order on route content — any
    two distinct candidates compare strictly one way. Comparing the
    full path before the announcement index makes a neighbor's
    re-exported candidates monotonically improving, so stale imports
    are always displaced and the fixpoint both engines converge to is
    unique. *)

type result

val propagate :
  ?deny:(Asn.t -> announcement -> bool) ->
  ?down:Asn.Set.t ->
  ?domains:int ->
  As_graph.t ->
  announcement list ->
  result
(** Run propagation with the round-synchronized parallel engine.
    [deny asn ann] lets an AS refuse a specific announcement on import
    (modelling filters); ASes in [down] neither import nor export
    anything (modelling failures). Announcements must all carry the
    same prefix or covering/covered prefixes; each is propagated
    independently and ASes pick their single best.

    [domains] (default [Domain.recommended_domain_count ()], min 1)
    bounds the worker domains used per round; the resulting table is
    identical for every value. Candidate generation runs on worker
    domains and only reads the graph and the round-start table; the
    [deny] closure is invoked exclusively on the calling domain, so it
    needs no synchronization. Records [topo.propagation.*] metrics
    (rounds, offers, adoptions, frontier histogram) whose values are
    also independent of [domains]. *)

val propagate_seq :
  ?deny:(Asn.t -> announcement -> bool) ->
  ?down:Asn.Set.t ->
  ?visit:(Asn.t -> unit) ->
  As_graph.t ->
  announcement list ->
  result
(** The sequential three-phase work-queue reference engine. Same
    semantics and same result table as {!propagate}; kept as the oracle
    for differential testing and records no metrics. Work queues are
    seeded in ascending ASN order so the visit order is a function of
    the inputs alone, not of hash-table layout. [visit] is a test hook
    called on every AS dequeued in phases 1 and 3, in order. *)

val propagate_general :
  ?deny:(Asn.t -> announcement -> bool) ->
  ?down:Asn.Set.t ->
  ?leak:(Asn.t -> Asn.t -> bool) ->
  ?export_filter:(Asn.t -> Asn.t -> announcement -> route -> bool) ->
  ?import_filter:(Asn.t -> from:Asn.t -> route -> bool) ->
  As_graph.t ->
  announcement list ->
  result
(** A single work-queue fixpoint with no phase structure, for worlds
    that are {e not} valley-free. [leak u v] marks the directed edge
    [u -> v] as leaking: [u] exports its route to [v] regardless of
    Gao–Rexford export discipline (RFC 7908 route leaks), while [v]
    still imports it over the real relationship — a leaked route
    arriving at a provider classifies as a customer route and
    re-exports everywhere, which is exactly why leaks spread.
    [export_filter u v ann r] refines exports further (return [false]
    to suppress — prefix-windowed export policies); [import_filter v
    ~from r] lets the importer reject a candidate (Peerlock-style
    filters; [r.path] starts with [from]). On valley-free inputs (no
    [leak]/filters) the fixpoint equals {!propagate_seq}'s table.
    Terminates because adoption is strictly improving under {!better}.
    Deterministic: the work queue is seeded in ascending ASN order and
    neighbors are visited in ascending ASN order. This engine is the
    dynamic oracle the static leak analysis is differentially tested
    against ([test/test_check_diff.ml], alias [@check-diff]). *)

val route_at : result -> Asn.t -> route option
(** The route the AS selected, [None] if unreachable. *)

val path_at : result -> Asn.t -> Asn.t list option

val full_path : result -> Asn.t -> Asn.t list option
(** [full_path r asn] is [asn :: path], i.e. the forwarding AS-level
    path starting at [asn], for ASes with a route. *)

val table : result -> (Asn.t * route) list
(** The full adopted table, ascending by ASN — the unit of comparison
    for the differential harness and the bench's byte-identity check. *)

val reachable : result -> Asn.t list
(** ASes holding a route, ascending. *)

val reachable_count : result -> int

val catchment : result -> (int * int) list
(** For multi-origin announcements: [(ann_index, count)] pairs giving
    how many ASes selected a route derived from each announcement
    (anycast catchment / hijack impact), ascending by index. ASes with
    no route are not counted. *)

val routes_via : result -> Asn.t -> Asn.t list
(** ASes whose selected path traverses the given AS (inclusive of
    next-hop position, exclusive of themselves). Useful for
    interception experiments. *)

val polluted : As_graph.t -> result -> Asn.t list
(** ASes whose selected route crossed a Gao–Rexford-violating export —
    the class word of the full path read self→origin leaves the legal
    shape Provider* Peer? Customer*. Empty on tables produced by the
    valley-free engines; after {!propagate_general} with [leak] edges
    it is the leak's blast radius, the ground truth the static
    analysis' taint set must cover. Ascending. Unlabelled adjacencies
    (poisoned suffixes) end each walk. *)
