open Peering_net
open Peering_bgp
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink
module Span = Peering_obs.Span

let m_announces =
  Metrics.counter ~help:"member announcements processed by the route server"
    "ixp.route_server.announces"

let m_withdraws =
  Metrics.counter ~help:"member withdrawals processed by the route server"
    "ixp.route_server.withdraws"

let m_delivered =
  Metrics.counter ~help:"routes delivered to members after export filtering"
    "ixp.route_server.delivered"

let m_filtered =
  Metrics.counter ~help:"deliveries blocked by BGP-community export policy"
    "ixp.route_server.filtered"

let m_fanout =
  Metrics.histogram
    ~help:"members reached per announcement after export filtering"
    "ixp.route_server.fanout"

module Imap = Map.Make (Int)

type t = {
  asn : Asn.t;
  mutable connected : Asn.Set.t;
  (* member -> prefix -> (origin member, route): what each member has
     been sent and still holds *)
  delivered : (int, Route.t Prefix.Map.t ref) Hashtbl.t;
  (* origin member -> its announced routes *)
  announced : (int, Route.t Prefix.Map.t ref) Hashtbl.t;
}

let create ?(asn = Asn.of_int 6777) () =
  { asn;
    connected = Asn.Set.empty;
    delivered = Hashtbl.create 64;
    announced = Hashtbl.create 64
  }

let asn t = t.asn

let table tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref Prefix.Map.empty in
    Hashtbl.replace tbl key r;
    r

let connect t m = t.connected <- Asn.Set.add m t.connected

let members t = Asn.Set.elements t.connected
let n_members t = Asn.Set.cardinal t.connected

(* Does the announcing member's community set allow export to [target]? *)
let allows_export t (r : Route.t) target =
  let cs = r.attrs.Attrs.communities in
  let tgt = Asn.to_int target land 0xFFFF in
  let blocked_all = Community.mem (Community.make 0 0) cs in
  let blocked = Community.mem (Community.make 0 tgt) cs in
  let whitelisted =
    Community.mem (Community.make (Asn.to_int t.asn land 0xFFFF) tgt) cs
  in
  if blocked then false
  else if blocked_all then whitelisted
  else true

let scrub t (r : Route.t) =
  let rs_asn = Asn.to_int t.asn land 0xFFFF in
  let keep c = Community.asn_part c <> 0 && Community.asn_part c <> rs_asn in
  let attrs =
    Attrs.with_communities
      (List.filter keep r.attrs.Attrs.communities)
      r.attrs
  in
  { r with Route.attrs }

let announce t ~from (route : Route.t) =
  if not (Asn.Set.mem from t.connected) then
    invalid_arg "Route_server.announce: member not connected";
  (* The route server has no clock of its own; the span leans on the
     clock Trace.attach installs, and parents itself on whatever span
     carried the route here (wire UPDATE, mux export). *)
  Span.with_span "ixp.route_server.fanout"
    ~attrs:
      [ ("member", Asn.to_string from);
        ("prefix", Prefix.to_string route.Route.prefix) ]
  @@ fun () ->
  Metrics.Counter.inc m_announces;
  let ann = table t.announced (Asn.to_int from) in
  ann := Prefix.Map.add route.Route.prefix route !ann;
  let deliveries = ref [] in
  let filtered = ref 0 in
  Asn.Set.iter
    (fun m ->
      if not (Asn.equal m from) then
        if allows_export t route m then begin
          let out = scrub t route in
          let d = table t.delivered (Asn.to_int m) in
          d := Prefix.Map.add out.Route.prefix out !d;
          deliveries := (m, out) :: !deliveries
        end
        else incr filtered)
    t.connected;
  let deliveries = List.rev !deliveries in
  Metrics.Counter.add m_delivered (List.length deliveries);
  Metrics.Counter.add m_filtered !filtered;
  Metrics.Histogram.observe m_fanout (float_of_int (List.length deliveries));
  if Sink.active () then
    Sink.emit ~subsystem:"ixp.route_server"
      (Peering_obs.Event.Route_server_pass
         { member = Asn.to_string from;
           prefix = route.Route.prefix;
           delivered = List.length deliveries;
           filtered = !filtered
         });
  deliveries

let withdraw t ~from prefix =
  if not (Asn.Set.mem from t.connected) then
    invalid_arg "Route_server.withdraw: member not connected";
  let ann = table t.announced (Asn.to_int from) in
  match Prefix.Map.find_opt prefix !ann with
  | None -> []
  | Some _route ->
    Metrics.Counter.inc m_withdraws;
    ann := Prefix.Map.remove prefix !ann;
    let withdrawals = ref [] in
    Asn.Set.iter
      (fun m ->
        if not (Asn.equal m from) then begin
          let d = table t.delivered (Asn.to_int m) in
          if Prefix.Map.mem prefix !d then begin
            d := Prefix.Map.remove prefix !d;
            withdrawals := (m, prefix) :: !withdrawals
          end
        end)
      t.connected;
    List.rev !withdrawals

let disconnect t m =
  if not (Asn.Set.mem m t.connected) then []
  else begin
    let ann = table t.announced (Asn.to_int m) in
    let prefixes = List.map fst (Prefix.Map.bindings !ann) in
    let all =
      List.concat_map (fun p -> withdraw t ~from:m p) prefixes
    in
    t.connected <- Asn.Set.remove m t.connected;
    Hashtbl.remove t.announced (Asn.to_int m);
    Hashtbl.remove t.delivered (Asn.to_int m);
    all
  end

let routes_for t m =
  match Hashtbl.find_opt t.delivered (Asn.to_int m) with
  | None -> []
  | Some d -> List.map snd (Prefix.Map.bindings !d)

let route_count t =
  Hashtbl.fold
    (fun _ d acc -> acc + Prefix.Map.cardinal !d)
    t.delivered 0
