(** BGP session finite-state machine (RFC 4271 §8, condensed).

    One [Fsm.t] is one side of a session. It is transport-agnostic: the
    owner supplies [send] (we call it with messages to emit) and feeds
    received messages to {!handle}. Timers (hold, keepalive,
    connect-retry) run on the shared simulation {!Peering_sim.Engine}. *)

open Peering_net

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

val state_to_string : state -> string

type config = {
  local_asn : Asn.t;
  router_id : Ipv4.t;
  hold_time : int;  (** proposed hold time, seconds *)
  connect_retry : float;
      (** initial seconds between connection attempts; with
          [auto_restart] this is the IdleHoldTime base, doubled (with
          jitter from the engine RNG) on every failed attempt up to a
          cap, and reset on reaching Established *)
  auto_restart : bool;
      (** if true, non-administrative closes schedule a reconnect with
          exponential backoff; {!stop} never auto-restarts *)
  capabilities : Capability.t list;
  passive : bool;  (** if true, wait for the peer's OPEN before sending ours *)
}

val default_config : local_asn:Asn.t -> router_id:Ipv4.t -> config
(** hold 90 s, retry 5 s, no auto-restart, 4-octet-ASN capability,
    active mode. *)

type callbacks = {
  send : Message.t -> unit;
  on_established : Wire.session_opts -> unit;
      (** fired on transition to Established with negotiated options *)
  on_update : Message.update -> unit;
  on_close : string -> unit;  (** session dropped, with reason *)
}

type t

val create : Peering_sim.Engine.t -> config -> callbacks -> t

val start : t -> unit
(** Begin session establishment (ManualStart event). *)

val stop : t -> reason:string -> unit
(** Administratively close (sends CEASE if established). Suppresses
    [auto_restart] until the next explicit {!start}. *)

val kill : t -> reason:string -> unit
(** Transport loss: close without sending a NOTIFICATION (the peer
    discovers the failure through its own timers). Auto-restarts when
    the config asks for it. *)

val handle_garbage : t -> reason:string -> unit
(** The wire delivered undecodable bytes (corruption fault): counts an
    FSM error, sends a message-header NOTIFICATION and closes. *)

val handle : t -> Message.t -> unit
(** Deliver a message received from the peer. *)

val state : t -> state
val negotiated : t -> Wire.session_opts option
(** Session options once Established. *)

val peer_open : t -> Message.open_msg option
(** The peer's OPEN, once received. *)

val peer_label : t -> string
(** The remote peer's ASN as a string once its OPEN has arrived,
    ["?"] before that — the identity used in trace events. *)

val established_count : t -> int
(** Number of times this FSM has reached Established (flap counting). *)

val graceful_restart_time : t -> int option
(** The peer's RFC 4724 restart time, once both sides negotiated the
    capability. Deliberately survives a close: the helper needs it
    exactly when the session is down. *)
