(** A point-to-point BGP session: two {!Fsm.t}s joined by a simulated
    wire with latency.

    Every message physically crosses the wire as RFC 4271 bytes —
    encoded with the sender's negotiated options and decoded with the
    receiver's (negotiation is symmetric, so they agree) — so the
    codec is exercised on every control-plane exchange in the
    testbed. *)

open Peering_net

type endpoint = {
  fsm : Fsm.t;
  addr : Ipv4.t;  (** this side's session address *)
}

(** What a fault hook may do to one in-flight message. *)
type wire_fault =
  | Drop  (** the message never arrives *)
  | Duplicate  (** the message arrives twice *)
  | Corrupt  (** the marker is smashed so decoding fails at the receiver *)
  | Delay of float  (** extra seconds added to the wire latency *)

type t

val create :
  Peering_sim.Engine.t ->
  ?latency:float ->
  a:Fsm.config * Ipv4.t ->
  b:Fsm.config * Ipv4.t ->
  ?on_update_a:(Message.update -> unit) ->
  ?on_update_b:(Message.update -> unit) ->
  ?on_established_a:(Wire.session_opts -> unit) ->
  ?on_established_b:(Wire.session_opts -> unit) ->
  ?on_close_a:(string -> unit) ->
  ?on_close_b:(string -> unit) ->
  unit ->
  t
(** Build both FSMs and wire them together with the given latency
    (default 0.01 s). Side [a] is active, side [b] passive (the
    [passive] flag in the supplied configs is overridden accordingly).
    [on_update_a] fires when side [a] {e receives} an update. Call
    {!start} then run the engine to establish. *)

val start : t -> unit

val a : t -> endpoint
val b : t -> endpoint

val established : t -> bool
(** Both sides in Established state. *)

val send_from_a : t -> Message.t -> unit
(** Inject an application message (normally an UPDATE) from side [a];
    it crosses the wire and reaches [b]'s FSM. *)

val send_from_b : t -> Message.t -> unit

val bytes_on_wire : t -> int
(** Total encoded bytes that have crossed the wire in both
    directions — used by the session-multiplexing ablation. *)

val messages_on_wire : t -> int

val drop : t -> reason:string -> unit
(** Tear the session down from side [a]. *)

val reset : t -> reason:string -> unit
(** Transport reset: both FSMs close at once without NOTIFICATIONs, as
    if the TCP connection was torn down underneath them. Each side
    auto-restarts if its config asks for it. *)

val set_fault_hook : t -> (Message.t -> wire_fault option) option -> unit
(** Install (or clear, with [None]) a hook consulted for every message
    placed on the wire; returning [Some fault] impairs that delivery.
    Used by the fault-injection layer — the hook decides, the session
    obeys. *)
