(** BGP path attributes carried with a route. *)

open Peering_net

type origin = IGP | EGP | INCOMPLETE
(** The ORIGIN attribute (RFC 4271 §5.1.1): how the route entered
    BGP. *)

val origin_rank : origin -> int
(** Decision-process rank: IGP (0) < EGP (1) < INCOMPLETE (2), lower
    preferred. *)

val origin_to_string : origin -> string

type t = {
  origin : origin;
  as_path : As_path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  atomic_aggregate : bool;
  aggregator : (Asn.t * Ipv4.t) option;
  communities : Community.t list;  (** kept sorted, duplicate-free *)
}

val make :
  ?origin:origin ->
  ?as_path:As_path.t ->
  ?med:int ->
  ?local_pref:int ->
  ?atomic_aggregate:bool ->
  ?aggregator:Asn.t * Ipv4.t ->
  ?communities:Community.t list ->
  next_hop:Ipv4.t ->
  unit ->
  t
(** Defaults: origin [IGP], empty path, no MED/local-pref, no
    communities. *)

val with_communities : Community.t list -> t -> t
(** Replace the community list (sorted and deduplicated). *)

val add_community : Community.t -> t -> t
(** Add one community, keeping the list sorted and duplicate-free. *)

val has_community : Community.t -> t -> bool
(** Membership test against the sorted community list. *)

val prepend_asn : Asn.t -> t -> t
(** Prepend an ASN to the AS path, as export across an eBGP edge
    does. *)

val with_next_hop : Ipv4.t -> t -> t
(** Replace the next hop (e.g. next-hop-self at the mux). *)

val with_local_pref : int option -> t -> t
(** Set or clear LOCAL_PREF. *)

val with_med : int option -> t -> t
(** Set or clear the MULTI_EXIT_DISC. *)

val equal : t -> t -> bool
(** Structural equality over every field. *)

val compare : t -> t -> int
(** Total order (used for deterministic RIB iteration). *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering. *)
