open Peering_net

let version = 3
let hdr_len = 6

(* Generous but finite: a mux Route Monitoring frame is one UPDATE,
   far below this; anything larger is a corrupt length field. *)
let max_len = 1 lsl 20

let pdu_opts = Wire.{ four_octet_asn = true; add_path = false }

type peer_header = {
  peer_addr : Ipv4.t;
  peer_asn : Asn.t;
  peer_bgp_id : Ipv4.t;
  stamp_s : int;
  stamp_us : int;
}

let split_time t =
  let t = if t < 0.0 then 0.0 else t in
  let s = Float.floor t in
  let us = int_of_float (Float.round ((t -. s) *. 1e6)) in
  if us >= 1_000_000 then (int_of_float s + 1, 0) else (int_of_float s, us)

let make_peer_header ~addr ~asn ?bgp_id ~time () =
  let stamp_s, stamp_us = split_time time in
  { peer_addr = addr;
    peer_asn = asn;
    peer_bgp_id = Option.value bgp_id ~default:addr;
    stamp_s;
    stamp_us
  }

let time h = float_of_int h.stamp_s +. (float_of_int h.stamp_us /. 1e6)

let canon_time t =
  let s, us = split_time t in
  float_of_int s +. (float_of_int us /. 1e6)

type stat = { stat_type : int; stat_value : int }

let stat_routes_adj_rib_in = 7
let stat_loc_rib = 8

(* Stat types 7 and 8 are 64-bit gauges on the wire; everything else
   in RFC 7854 §4.8 is a 32-bit counter. *)
let stat_is_u64 ty = ty = stat_routes_adj_rib_in || ty = stat_loc_rib

type msg =
  | Route_monitoring of { peer : peer_header; update : Message.update }
  | Stats_report of { peer : peer_header; stats : stat list }
  | Peer_down of { peer : peer_header; reason : int }
  | Peer_up of {
      peer : peer_header;
      local_addr : Ipv4.t;
      local_port : int;
      remote_port : int;
      sent_open : Message.open_msg;
      recv_open : Message.open_msg;
    }
  | Initiation of { info : (int * string) list }
  | Termination of { info : (int * string) list }

let msg_type = function
  | Route_monitoring _ -> 0
  | Stats_report _ -> 1
  | Peer_down _ -> 2
  | Peer_up _ -> 3
  | Initiation _ -> 4
  | Termination _ -> 5

let msg_type_name = function
  | 0 -> "route_monitoring"
  | 1 -> "stats_report"
  | 2 -> "peer_down"
  | 3 -> "peer_up"
  | 4 -> "initiation"
  | 5 -> "termination"
  | _ -> "unknown"

let peer_of = function
  | Route_monitoring { peer; _ }
  | Stats_report { peer; _ }
  | Peer_down { peer; _ }
  | Peer_up { peer; _ } ->
    Some peer
  | Initiation _ | Termination _ -> None

type error =
  | Truncated
  | Bad_version of int
  | Bad_type of int
  | Bad_length of int
  | Bad_peer_header of string
  | Bad_msg of string
  | Bad_payload of Wire.error

let error_to_string = function
  | Truncated -> "truncated BMP message"
  | Bad_version v -> Printf.sprintf "bad BMP version %d" v
  | Bad_type t -> Printf.sprintf "bad BMP message type %d" t
  | Bad_length l -> Printf.sprintf "bad BMP message length %d" l
  | Bad_peer_header s -> Printf.sprintf "bad per-peer header: %s" s
  | Bad_msg s -> Printf.sprintf "bad BMP message body: %s" s
  | Bad_payload e ->
    Printf.sprintf "bad embedded BGP PDU: %s" (Wire.error_to_string e)

exception Fail of error

let fail e = raise (Fail e)

(* ------------------------------------------------------------------ *)
(* Encoder *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_u64 b v =
  put_u32 b (v lsr 32);
  put_u32 b (v land 0xFFFFFFFF)

let put_ipv4 b a = put_u32 b (Ipv4.to_int a)

(* 16-byte address field with an IPv4 address in the low 4 bytes
   (flags V bit clear). *)
let put_addr16 b a =
  put_u32 b 0;
  put_u32 b 0;
  put_u32 b 0;
  put_ipv4 b a

let put_peer_header b h =
  put_u8 b 0 (* peer type: global instance *);
  put_u8 b 0 (* flags: IPv4, post-policy bits clear *);
  put_u32 b 0 (* distinguisher, high *);
  put_u32 b 0 (* distinguisher, low *);
  put_addr16 b h.peer_addr;
  put_u32 b (Asn.to_int h.peer_asn);
  put_ipv4 b h.peer_bgp_id;
  put_u32 b h.stamp_s;
  put_u32 b h.stamp_us

let put_info_tlvs b info =
  List.iter
    (fun (ty, v) ->
      put_u16 b ty;
      put_u16 b (String.length v);
      Buffer.add_string b v)
    info

let encode m =
  let body = Buffer.create 64 in
  (match m with
  | Route_monitoring { peer; update } ->
    put_peer_header body peer;
    Buffer.add_bytes body (Wire.encode pdu_opts (Message.Update update))
  | Stats_report { peer; stats } ->
    put_peer_header body peer;
    put_u32 body (List.length stats);
    List.iter
      (fun s ->
        put_u16 body s.stat_type;
        if stat_is_u64 s.stat_type then begin
          put_u16 body 8;
          put_u64 body s.stat_value
        end
        else begin
          put_u16 body 4;
          put_u32 body s.stat_value
        end)
      stats
  | Peer_down { peer; reason } ->
    put_peer_header body peer;
    put_u8 body reason
  | Peer_up { peer; local_addr; local_port; remote_port; sent_open; recv_open }
    ->
    put_peer_header body peer;
    put_addr16 body local_addr;
    put_u16 body local_port;
    put_u16 body remote_port;
    Buffer.add_bytes body (Wire.encode pdu_opts (Message.Open sent_open));
    Buffer.add_bytes body (Wire.encode pdu_opts (Message.Open recv_open))
  | Initiation { info } -> put_info_tlvs body info
  | Termination { info } -> put_info_tlvs body info);
  let out = Buffer.create (Buffer.length body + hdr_len) in
  put_u8 out version;
  put_u32 out (Buffer.length body + hdr_len);
  put_u8 out (msg_type m);
  Buffer.add_buffer out body;
  Buffer.to_bytes out

let encode_all msgs =
  let b = Buffer.create 256 in
  List.iter (fun m -> Buffer.add_bytes b (encode m)) msgs;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Shared body logic.  Each decoder supplies its own reads; the check
   sequence below is written out twice, once per path, and must stay
   in lockstep — the corruption corpus in @mrt-roundtrip diffs the two
   on every truncation and byte flip. *)

let check_peer_flags ~ptype ~flags ~d_hi ~d_lo =
  if ptype <> 0 then
    fail (Bad_peer_header (Printf.sprintf "peer type %d" ptype));
  if flags land 0x80 <> 0 then fail (Bad_peer_header "IPv6 peer unsupported");
  if flags land 0x7F <> 0 then
    fail (Bad_peer_header (Printf.sprintf "flags 0x%02x" flags));
  if d_hi <> 0 || d_lo <> 0 then
    fail (Bad_peer_header "nonzero peer distinguisher")

let check_addr16 ~what ~a ~b ~c =
  if a <> 0 || b <> 0 || c <> 0 then
    fail (Bad_msg (Printf.sprintf "%s not IPv4-mapped" what))

let check_stamp_us us =
  if us >= 1_000_000 then fail (Bad_peer_header "microseconds out of range")

let check_peer_down_reason r =
  if r < 1 || r > 6 then
    fail (Bad_msg (Printf.sprintf "peer-down reason %d" r))

let stat_value_len ty len =
  if stat_is_u64 ty then begin
    if len <> 8 then fail (Bad_msg (Printf.sprintf "stat %d length %d" ty len))
  end
  else if len <> 4 then
    fail (Bad_msg (Printf.sprintf "stat %d length %d" ty len))

(* An embedded PDU decoded by [wire_decode] must land exactly on
   [want_end] when [exact], and never beyond it. *)
let check_pdu_end ~exact ~want_end got_end =
  if got_end > want_end then fail (Bad_msg "embedded PDU overruns message");
  if exact && got_end < want_end then fail (Bad_msg "trailing bytes")

(* ------------------------------------------------------------------ *)
(* Cursor-path decoder *)

let decode buf ~pos =
  let total = Bytes.length buf in
  if pos < 0 || pos > total then invalid_arg "Bmp.decode: bad position";
  if total - pos < hdr_len then Error Truncated
  else begin
    let hc = Wire.Cursor.of_bytes ~pos ~len:hdr_len buf in
    let v = Wire.Cursor.u8 hc in
    if v <> version then Error (Bad_version v)
    else
      let len = Wire.Cursor.u32 hc in
      if len < hdr_len || len > max_len then Error (Bad_length len)
      else
        let ty = Wire.Cursor.u8 hc in
        if ty > 5 then Error (Bad_type ty)
        else if total - pos < len then Error Truncated
        else begin
          let body_end = pos + len in
          let c = Wire.Cursor.of_bytes ~pos:(pos + hdr_len) ~len:(len - hdr_len) buf in
          let peer_header () =
            let ptype = Wire.Cursor.u8 c in
            let flags = Wire.Cursor.u8 c in
            let d_hi = Wire.Cursor.u32 c in
            let d_lo = Wire.Cursor.u32 c in
            check_peer_flags ~ptype ~flags ~d_hi ~d_lo;
            let a = Wire.Cursor.u32 c in
            let b = Wire.Cursor.u32 c in
            let c3 = Wire.Cursor.u32 c in
            if a <> 0 || b <> 0 || c3 <> 0 then
              fail (Bad_peer_header "peer address not IPv4-mapped");
            let addr = Ipv4.of_int (Wire.Cursor.u32 c) in
            let asn = Asn.of_int (Wire.Cursor.u32 c) in
            let bgp_id = Ipv4.of_int (Wire.Cursor.u32 c) in
            let stamp_s = Wire.Cursor.u32 c in
            let stamp_us = Wire.Cursor.u32 c in
            check_stamp_us stamp_us;
            { peer_addr = addr; peer_asn = asn; peer_bgp_id = bgp_id;
              stamp_s; stamp_us
            }
          in
          let embedded_pdu ~exact =
            let at = Wire.Cursor.pos c in
            match Wire.decode pdu_opts buf ~pos:at with
            | Error e -> fail (Bad_payload e)
            | Ok (m, pdu_end) ->
              check_pdu_end ~exact ~want_end:body_end pdu_end;
              Wire.Cursor.skip c (pdu_end - at);
              m
          in
          let strict_end () =
            if Wire.Cursor.remaining c <> 0 then fail (Bad_msg "trailing bytes")
          in
          let info_tlvs () =
            let rec go acc =
              if Wire.Cursor.remaining c = 0 then List.rev acc
              else
                let ty = Wire.Cursor.u16 c in
                let l = Wire.Cursor.u16 c in
                let v = Bytes.to_string (Wire.Cursor.rest (Wire.Cursor.slice c l)) in
                go ((ty, v) :: acc)
            in
            go []
          in
          try
            let m =
              match ty with
              | 0 ->
                let peer = peer_header () in
                (match embedded_pdu ~exact:true with
                | Message.Update u -> Route_monitoring { peer; update = u }
                | _ -> fail (Bad_msg "embedded PDU is not an UPDATE"))
              | 1 ->
                let peer = peer_header () in
                let n = Wire.Cursor.u32 c in
                if n > 0xFFFF then fail (Bad_msg "stat count");
                let stats = ref [] in
                for _ = 1 to n do
                  let sty = Wire.Cursor.u16 c in
                  let slen = Wire.Cursor.u16 c in
                  stat_value_len sty slen;
                  let v =
                    if slen = 8 then
                      let hi = Wire.Cursor.u32 c in
                      let lo = Wire.Cursor.u32 c in
                      (hi lsl 32) lor lo
                    else Wire.Cursor.u32 c
                  in
                  stats := { stat_type = sty; stat_value = v } :: !stats
                done;
                strict_end ();
                Stats_report { peer; stats = List.rev !stats }
              | 2 ->
                let peer = peer_header () in
                let reason = Wire.Cursor.u8 c in
                check_peer_down_reason reason;
                strict_end ();
                Peer_down { peer; reason }
              | 3 ->
                let peer = peer_header () in
                let a = Wire.Cursor.u32 c in
                let b = Wire.Cursor.u32 c in
                let c3 = Wire.Cursor.u32 c in
                check_addr16 ~what:"local address" ~a ~b ~c:c3;
                let local_addr = Ipv4.of_int (Wire.Cursor.u32 c) in
                let local_port = Wire.Cursor.u16 c in
                let remote_port = Wire.Cursor.u16 c in
                let open1 =
                  match embedded_pdu ~exact:false with
                  | Message.Open o -> o
                  | _ -> fail (Bad_msg "embedded PDU is not an OPEN")
                in
                let open2 =
                  match embedded_pdu ~exact:true with
                  | Message.Open o -> o
                  | _ -> fail (Bad_msg "embedded PDU is not an OPEN")
                in
                Peer_up
                  { peer; local_addr; local_port; remote_port;
                    sent_open = open1; recv_open = open2
                  }
              | 4 -> Initiation { info = info_tlvs () }
              | 5 -> Termination { info = info_tlvs () }
              | _ -> assert false
            in
            Ok (m, body_end)
          with
          | Fail e -> Error e
          | Wire.Error Wire.Truncated -> Error (Bad_msg "body overrun")
        end
  end

(* ------------------------------------------------------------------ *)
(* Eager-path decoder: direct byte indexing, embedded PDUs through
   [Wire.decode_eager].  Independent of [Cursor] on purpose. *)

exception Overrun

type rd = { rbuf : bytes; mutable rp : int; rlimit : int }

let r8 r =
  if r.rlimit - r.rp < 1 then raise Overrun;
  let v = Char.code (Bytes.get r.rbuf r.rp) in
  r.rp <- r.rp + 1;
  v

let r16 r =
  let a = r8 r in
  let b = r8 r in
  (a lsl 8) lor b

let r32 r =
  let a = r16 r in
  let b = r16 r in
  (a lsl 16) lor b

let rstr r n =
  if n < 0 || r.rlimit - r.rp < n then raise Overrun;
  let s = Bytes.sub_string r.rbuf r.rp n in
  r.rp <- r.rp + n;
  s

let decode_eager buf ~pos =
  let total = Bytes.length buf in
  if pos < 0 || pos > total then invalid_arg "Bmp.decode_eager: bad position";
  if total - pos < hdr_len then Error Truncated
  else begin
    let v = Char.code (Bytes.get buf pos) in
    if v <> version then Error (Bad_version v)
    else
      let len =
        let g i = Char.code (Bytes.get buf (pos + i)) in
        (g 1 lsl 24) lor (g 2 lsl 16) lor (g 3 lsl 8) lor g 4
      in
      if len < hdr_len || len > max_len then Error (Bad_length len)
      else
        let ty = Char.code (Bytes.get buf (pos + 5)) in
        if ty > 5 then Error (Bad_type ty)
        else if total - pos < len then Error Truncated
        else begin
          let body_end = pos + len in
          let r = { rbuf = buf; rp = pos + hdr_len; rlimit = body_end } in
          let peer_header () =
            let ptype = r8 r in
            let flags = r8 r in
            let d_hi = r32 r in
            let d_lo = r32 r in
            check_peer_flags ~ptype ~flags ~d_hi ~d_lo;
            let a = r32 r in
            let b = r32 r in
            let c3 = r32 r in
            if a <> 0 || b <> 0 || c3 <> 0 then
              fail (Bad_peer_header "peer address not IPv4-mapped");
            let addr = Ipv4.of_int (r32 r) in
            let asn = Asn.of_int (r32 r) in
            let bgp_id = Ipv4.of_int (r32 r) in
            let stamp_s = r32 r in
            let stamp_us = r32 r in
            check_stamp_us stamp_us;
            { peer_addr = addr; peer_asn = asn; peer_bgp_id = bgp_id;
              stamp_s; stamp_us
            }
          in
          let embedded_pdu ~exact =
            match Wire.decode_eager pdu_opts buf ~pos:r.rp with
            | Error e -> fail (Bad_payload e)
            | Ok (m, pdu_end) ->
              check_pdu_end ~exact ~want_end:body_end pdu_end;
              r.rp <- pdu_end;
              m
          in
          let strict_end () =
            if r.rp <> body_end then fail (Bad_msg "trailing bytes")
          in
          let info_tlvs () =
            let rec go acc =
              if r.rp = body_end then List.rev acc
              else
                let ty = r16 r in
                let l = r16 r in
                let v = rstr r l in
                go ((ty, v) :: acc)
            in
            go []
          in
          try
            let m =
              match ty with
              | 0 ->
                let peer = peer_header () in
                (match embedded_pdu ~exact:true with
                | Message.Update u -> Route_monitoring { peer; update = u }
                | _ -> fail (Bad_msg "embedded PDU is not an UPDATE"))
              | 1 ->
                let peer = peer_header () in
                let n = r32 r in
                if n > 0xFFFF then fail (Bad_msg "stat count");
                let stats = ref [] in
                for _ = 1 to n do
                  let sty = r16 r in
                  let slen = r16 r in
                  stat_value_len sty slen;
                  let v =
                    if slen = 8 then
                      let hi = r32 r in
                      let lo = r32 r in
                      (hi lsl 32) lor lo
                    else r32 r
                  in
                  stats := { stat_type = sty; stat_value = v } :: !stats
                done;
                strict_end ();
                Stats_report { peer; stats = List.rev !stats }
              | 2 ->
                let peer = peer_header () in
                let reason = r8 r in
                check_peer_down_reason reason;
                strict_end ();
                Peer_down { peer; reason }
              | 3 ->
                let peer = peer_header () in
                let a = r32 r in
                let b = r32 r in
                let c3 = r32 r in
                check_addr16 ~what:"local address" ~a ~b ~c:c3;
                let local_addr = Ipv4.of_int (r32 r) in
                let local_port = r16 r in
                let remote_port = r16 r in
                let open1 =
                  match embedded_pdu ~exact:false with
                  | Message.Open o -> o
                  | _ -> fail (Bad_msg "embedded PDU is not an OPEN")
                in
                let open2 =
                  match embedded_pdu ~exact:true with
                  | Message.Open o -> o
                  | _ -> fail (Bad_msg "embedded PDU is not an OPEN")
                in
                Peer_up
                  { peer; local_addr; local_port; remote_port;
                    sent_open = open1; recv_open = open2
                  }
              | 4 -> Initiation { info = info_tlvs () }
              | 5 -> Termination { info = info_tlvs () }
              | _ -> assert false
            in
            Ok (m, body_end)
          with
          | Fail e -> Error e
          | Overrun -> Error (Bad_msg "body overrun")
        end
  end
