(** BGP-4 messages (RFC 4271 §4). *)

open Peering_net

type open_msg = {
  version : int;  (** always 4 *)
  asn : Asn.t;
  hold_time : int;  (** seconds; 0 disables keepalives *)
  router_id : Ipv4.t;
  capabilities : Capability.t list;
}

type path_id = int
(** RFC 7911 ADD-PATH identifier; 0 when the session does not
    negotiate add-path. *)

type update = {
  withdrawn : (path_id * Prefix.t) list;
  attrs : Attrs.t option;  (** [None] iff [nlri] is empty *)
  nlri : (path_id * Prefix.t) list;
}

(** A NOTIFICATION body: error code, subcode, and optional data
    rendered as text (RFC 4271 §4.5). *)
type notification = {
  code : int;
  subcode : int;
  reason : string;
}

(** The four BGP-4 message kinds. *)
type t =
  | Open of open_msg  (** session establishment (§4.2) *)
  | Update of update  (** route advertisement/withdrawal (§4.3) *)
  | Keepalive  (** hold-timer refresh (§4.4) *)
  | Notification of notification  (** error + session teardown (§4.5) *)

(** Standard notification error codes (RFC 4271 §4.5). *)
module Error : sig
  val message_header : int
  val open_message : int
  val update_message : int
  val hold_timer_expired : int
  val fsm : int
  val cease : int
end

val update_of_announce : ?path_id:path_id -> Prefix.t -> Attrs.t -> t
(** A single-prefix announcement UPDATE. *)

val update_of_withdraw : ?path_id:path_id -> Prefix.t -> t
(** A single-prefix withdrawal UPDATE (no attributes). *)

val pp : Format.formatter -> t -> unit
(** One-line human rendering for logs and test failures. *)
