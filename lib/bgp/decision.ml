open Peering_net
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink

let m_runs =
  Metrics.counter ~help:"decision-process runs (candidate sets ranked)"
    "bgp.decision.runs"

(* Wall-clock latency is inherently nondeterministic, so this histogram
   is volatile: excluded from default snapshots to keep same-seed runs
   byte-identical. *)
let m_latency =
  Metrics.histogram ~volatile:true
    ~help:"decision-process wall-clock latency per run (s)"
    "bgp.decision.latency_s"

let default_local_pref = 100

let local_pref (r : Route.t) =
  Option.value r.attrs.Attrs.local_pref ~default:default_local_pref

let is_local (r : Route.t) = r.source = None

let neighbor (r : Route.t) = As_path.neighbor_asn r.attrs.Attrs.as_path

let med_comparable a b =
  match (neighbor a, neighbor b) with
  | Some x, Some y -> Asn.equal x y
  | _ -> false

let med (r : Route.t) = Option.value r.attrs.Attrs.med ~default:0

let source_router_id (r : Route.t) =
  match r.source with
  | Some s -> Ipv4.to_int s.peer_router_id
  | None -> 0

let source_addr (r : Route.t) =
  match r.source with Some s -> Ipv4.to_int s.peer_addr | None -> 0

type step =
  | Local_origin
  | Local_pref
  | Path_length
  | Origin
  | Med
  | Ebgp
  | Router_id
  | Peer_addr
  | Path_id
  | Tie

let step_compare step a b =
  match step with
  | Local_origin -> Bool.compare (is_local b) (is_local a)
  | Local_pref -> Int.compare (local_pref b) (local_pref a)
  | Path_length ->
    Int.compare
      (As_path.length a.Route.attrs.Attrs.as_path)
      (As_path.length b.Route.attrs.Attrs.as_path)
  | Origin ->
    Int.compare
      (Attrs.origin_rank a.Route.attrs.Attrs.origin)
      (Attrs.origin_rank b.Route.attrs.Attrs.origin)
  | Med -> if med_comparable a b then Int.compare (med a) (med b) else 0
  | Ebgp -> Bool.compare (Route.is_ebgp b) (Route.is_ebgp a)
  | Router_id -> Int.compare (source_router_id a) (source_router_id b)
  | Peer_addr -> Int.compare (source_addr a) (source_addr b)
  | Path_id -> Int.compare a.Route.path_id b.Route.path_id
  | Tie -> 0

let steps =
  [ Local_origin; Local_pref; Path_length; Origin; Med; Ebgp; Router_id;
    Peer_addr; Path_id ]

let deciding_step a b =
  let rec go = function
    | [] -> (Tie, 0)
    | s :: rest -> (
      match step_compare s a b with 0 -> go rest | c -> (s, c))
  in
  go steps

let compare a b = snd (deciding_step a b)

let best = function
  | [] -> None
  | r :: rest ->
    Metrics.Counter.inc m_runs;
    if Sink.active () then
      Sink.emit ~level:Peering_obs.Event.Debug ~subsystem:"bgp.decision"
        (Peering_obs.Event.Decision_run
           { prefix = r.Route.prefix; candidates = 1 + List.length rest });
    let t0 = Sys.time () in
    let winner =
      List.fold_left (fun acc c -> if compare c acc < 0 then c else acc) r rest
    in
    Metrics.Histogram.observe m_latency (Sys.time () -. t0);
    Some winner

let sort l = List.stable_sort compare l

let step_name = function
  | Local_origin -> "locally originated"
  | Local_pref -> "higher local-pref"
  | Path_length -> "shorter AS path"
  | Origin -> "lower origin"
  | Med -> "lower MED"
  | Ebgp -> "eBGP over iBGP"
  | Router_id -> "lower router-id"
  | Peer_addr -> "lower peer address"
  | Path_id -> "lower path-id"
  | Tie -> "tie"

let explain a b =
  let step, c = deciding_step a b in
  if c = 0 then "routes are equally preferred"
  else
    let winner, loser = if c < 0 then (a, b) else (b, a) in
    Format.asprintf "%a beats %a: %s" Route.pp winner Route.pp loser
      (step_name step)
