(** BGP capabilities (RFC 5492) relevant to PEERING.

    ADD-PATH (RFC 7911) is the one the paper singles out: BIRD-style
    session multiplexing uses it to carry every peer's route over a
    single client session instead of one session per upstream peer. *)

type add_path_mode = Receive | Send | Send_receive

type t =
  | Four_octet_asn of int  (** RFC 6793, carries the speaker's ASN *)
  | Add_path of add_path_mode  (** RFC 7911, IPv4 unicast *)
  | Route_refresh  (** RFC 2918 *)
  | Graceful_restart of int  (** RFC 4724, restart time seconds *)

val code : t -> int
(** IANA capability code. *)

val negotiated_add_path : t list -> t list -> bool
(** [negotiated_add_path local remote] is [true] when both sides'
    capability lists allow ADD-PATH in compatible directions (local can
    send and remote can receive, or vice versa). *)

val negotiated_four_octet : t list -> t list -> bool

val negotiated_graceful_restart : t list -> t list -> int option
(** [negotiated_graceful_restart local remote] is the peer's advertised
    RFC 4724 restart time when both sides advertise the capability:
    the local speaker should then act as a helper and retain the
    peer's routes that long after the session drops. [None] if either
    side lacks the capability. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
