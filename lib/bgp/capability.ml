type add_path_mode = Receive | Send | Send_receive

type t =
  | Four_octet_asn of int
  | Add_path of add_path_mode
  | Route_refresh
  | Graceful_restart of int

let code = function
  | Route_refresh -> 2
  | Graceful_restart _ -> 64
  | Four_octet_asn _ -> 65
  | Add_path _ -> 69

let can_send = function Send | Send_receive -> true | Receive -> false
let can_receive = function Receive | Send_receive -> true | Send -> false

let add_path_mode caps =
  List.find_map (function Add_path m -> Some m | _ -> None) caps

let negotiated_add_path local remote =
  match (add_path_mode local, add_path_mode remote) with
  | Some l, Some r ->
    (can_send l && can_receive r) || (can_send r && can_receive l)
  | _ -> false

let negotiated_four_octet local remote =
  let has = List.exists (function Four_octet_asn _ -> true | _ -> false) in
  has local && has remote

let negotiated_graceful_restart local remote =
  let has = List.exists (function Graceful_restart _ -> true | _ -> false) in
  if has local then
    List.find_map
      (function Graceful_restart t -> Some t | _ -> None)
      remote
  else None

let equal a b =
  match (a, b) with
  | Four_octet_asn x, Four_octet_asn y -> x = y
  | Add_path x, Add_path y -> x = y
  | Route_refresh, Route_refresh -> true
  | Graceful_restart x, Graceful_restart y -> x = y
  | (Four_octet_asn _ | Add_path _ | Route_refresh | Graceful_restart _), _ ->
    false

let pp ppf = function
  | Four_octet_asn a -> Format.fprintf ppf "4-octet-asn(%d)" a
  | Add_path Receive -> Format.fprintf ppf "add-path(rx)"
  | Add_path Send -> Format.fprintf ppf "add-path(tx)"
  | Add_path Send_receive -> Format.fprintf ppf "add-path(rx/tx)"
  | Route_refresh -> Format.fprintf ppf "route-refresh"
  | Graceful_restart t -> Format.fprintf ppf "graceful-restart(%ds)" t
