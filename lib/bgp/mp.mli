(** Multiprotocol BGP (RFC 4760) for IPv6 unicast — the control-plane
    side of PEERING's planned IPv6 support.

    IPv6 reachability rides in ordinary BGP UPDATE messages whose
    path attributes carry MP_REACH_NLRI (type 14: AFI 2, SAFI 1, a
    16-byte next hop, and v6 NLRI) or MP_UNREACH_NLRI (type 15).
    Because both attributes are optional, speakers without this module
    skip them cleanly ({!Wire.decode} ignores unknown optional
    attributes), which is exactly the incremental-deployment story the
    paper cares about. *)

open Peering_net

type reach = {
  attrs : Attrs.t;
      (** shared attributes (origin, AS path, communities); the v4
          next-hop field inside is ignored on the wire *)
  next_hop : Ipv6.t;
  nlri : Prefix6.t list;
}

(** A v6 routing change: reachability via MP_REACH_NLRI or withdrawal
    via MP_UNREACH_NLRI. *)
type update6 =
  | Reach of reach  (** announce [nlri] with a v6 next hop *)
  | Unreach of Prefix6.t list  (** withdraw these prefixes *)

val encode : Wire.session_opts -> update6 -> bytes
(** Serialise as a complete BGP UPDATE message (19-byte header
    included). *)

val decode : Wire.session_opts -> bytes -> (update6, Wire.error) result
(** Parse a BGP UPDATE containing MP attributes. Returns
    [Error (Bad_attribute _)] when the message holds no MP_REACH or
    MP_UNREACH attribute. *)

val announce : ?attrs:Attrs.t -> next_hop:Ipv6.t -> Prefix6.t list -> update6
(** Convenience constructor; default attributes are IGP origin with an
    empty AS path. *)

val withdraw : Prefix6.t list -> update6
(** [withdraw prefixes] is [Unreach prefixes]. *)

(** {1 IPv6 byte helpers}

    Shared with the MRT codec, which encodes v6 prefixes and next hops
    in exactly the NLRI shapes used here. *)

val put_ipv6 : Buffer.t -> Ipv6.t -> unit
(** Append the 16 bytes of a v6 address, network order. *)

val put_prefix6 : Buffer.t -> Prefix6.t -> unit
(** Append one NLRI-encoded v6 prefix (length byte + minimal address
    bytes). *)

val read_ipv6 : Wire.Cursor.t -> Ipv6.t
(** Read a 16-byte v6 address; raises {!Wire.Error}. *)

val read_prefix6 : Wire.Cursor.t -> Prefix6.t
(** Read one NLRI-encoded v6 prefix; raises {!Wire.Error}.  Inverse of
    {!put_prefix6}. *)
