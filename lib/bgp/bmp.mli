(** BGP Monitoring Protocol (RFC 7854) framing, the mux export side of
    the live telemetry plane.

    The subset implemented is what a PEERING mux emits: Route
    Monitoring (type 0) carrying one embedded BGP UPDATE PDU, Stats
    Reports (type 1), Peer Down (type 2, reason code only), Peer Up
    (type 3, two embedded OPEN PDUs), and Initiation / Termination
    (types 4 / 5) information TLVs.  All peers are global-instance
    IPv4 peers with a zero distinguisher; embedded PDUs always use
    4-octet ASNs and no ADD-PATH ({!pdu_opts}).

    The codec follows {!Wire}'s discipline: one canonical encoder, and
    two independent decoders — {!decode} on {!Wire.Cursor} (embedded
    PDUs via [Wire.decode]) and {!decode_eager} on direct byte indexing
    (embedded PDUs via [Wire.decode_eager]) — that must agree on every
    input, including the [error] value for corrupt frames; the
    [@mrt-roundtrip] alias's BMP corruption corpus enforces this. *)

open Peering_net

val version : int
(** BMP version 3 (RFC 7854). *)

val pdu_opts : Wire.session_opts
(** Session options for embedded BGP PDUs: 4-octet ASNs, no
    ADD-PATH. *)

(** The 42-byte per-peer header carried by peer-scoped messages.
    Timestamps are seconds + microseconds on the wire, so arbitrary
    virtual-clock floats are truncated to µs precision; {!canon_time}
    applies the same truncation to a raw float, which is how RIB
    digests on the live and reconstructed sides are compared. *)
type peer_header = {
  peer_addr : Ipv4.t;  (** IPv4-mapped into the 16-byte address field *)
  peer_asn : Asn.t;
  peer_bgp_id : Ipv4.t;
  stamp_s : int;  (** timestamp, whole seconds *)
  stamp_us : int;  (** timestamp, microseconds, [0 .. 999_999] *)
}

val make_peer_header :
  addr:Ipv4.t -> asn:Asn.t -> ?bgp_id:Ipv4.t -> time:float -> unit ->
  peer_header
(** Build a header; [time] (virtual seconds) is split into
    [stamp_s]/[stamp_us], rounding to the nearest microsecond.
    [bgp_id] defaults to [addr]. *)

val time : peer_header -> float
(** The header's timestamp as seconds, [stamp_s + stamp_us / 1e6]. *)

val canon_time : float -> float
(** [time (make_peer_header ~time …)]: a float timestamp truncated to
    what the wire can carry.  Idempotent. *)

type stat = { stat_type : int; stat_value : int }
(** One Stats Report TLV.  Types 7 and 8 (Adj-RIB-In / Loc-RIB route
    counts) are 64-bit gauges on the wire; every other type is a
    32-bit counter (RFC 7854 §4.8). *)

val stat_routes_adj_rib_in : int
(** Stat type 7: routes in Adj-RIB-In. *)

(** One BMP message.  Constructor order follows the wire type codes
    0–5. *)
type msg =
  | Route_monitoring of { peer : peer_header; update : Message.update }
      (** type 0: a route change, as an embedded BGP UPDATE PDU *)
  | Stats_report of { peer : peer_header; stats : stat list }
      (** type 1 *)
  | Peer_down of { peer : peer_header; reason : int }
      (** type 2; this subset carries the reason code only, never a
          trailing NOTIFICATION PDU or FSM code *)
  | Peer_up of {
      peer : peer_header;
      local_addr : Ipv4.t;
      local_port : int;
      remote_port : int;
      sent_open : Message.open_msg;
      recv_open : Message.open_msg;
    }  (** type 3: session came up, with both OPEN PDUs *)
  | Initiation of { info : (int * string) list }
      (** type 4: (TLV type, value) pairs; 2 = sysName, 1 = sysDescr,
          0 = free-form string *)
  | Termination of { info : (int * string) list }
      (** type 5: same TLV shape as {!Initiation} *)

val msg_type : msg -> int
(** The wire type code, 0–5. *)

val msg_type_name : int -> string
(** Stable lowercase name for a type code (["route_monitoring"], …);
    ["unknown"] for codes outside 0–5. *)

val peer_of : msg -> peer_header option
(** The per-peer header, for the four peer-scoped message types. *)

(** Decode errors, mirrored exactly by both decode paths. *)
type error =
  | Truncated  (** buffer ends before the header-declared length *)
  | Bad_version of int  (** first byte is not 3 *)
  | Bad_type of int  (** message type outside 0–5 *)
  | Bad_length of int  (** header length below 6 or above the cap *)
  | Bad_peer_header of string  (** malformed 42-byte per-peer header *)
  | Bad_msg of string  (** malformed body (bad TLV, trailing bytes, …) *)
  | Bad_payload of Wire.error  (** embedded BGP PDU failed to parse *)

val error_to_string : error -> string
(** Human-readable rendering for logs and test failures. *)

val encode : msg -> bytes
(** Serialise one message, 6-byte common header included.  Output is
    canonical: [decode] of an [encode] returns the same [msg], and
    re-encoding is byte-identical. *)

val encode_all : msg list -> bytes
(** Concatenated {!encode}s — a feed fragment. *)

val decode : bytes -> pos:int -> (msg * int, error) result
(** [decode buf ~pos] parses one message starting at [pos]; returns
    the message and the position one past its end.  This is the
    {!Wire.Cursor}-based path.  [Error Truncated] is returned both for
    a short common header and for a body the buffer cannot satisfy, so
    feed reassembly can treat it as "wait for more bytes". *)

val decode_eager : bytes -> pos:int -> (msg * int, error) result
(** The independent direct-indexing reference decoder; same contract
    as {!decode}, and must agree with it on every input. *)
