(** Route-flap dampening (RFC 2439).

    PEERING applies dampening to client announcements so experiments
    cannot destabilise the Internet's control plane (paper §3,
    "Enforcing safety"). Each (peer, prefix) accumulates a penalty per
    flap; the penalty decays exponentially; routes whose penalty
    exceeds the suppress threshold are held down until it decays below
    the reuse threshold.

    Observability: flaps, suppressions and releases land in the
    [bgp.dampening.flaps] / [suppressions] / [reuses] counters, and
    each release records the time the route spent held down in the
    [bgp.dampening.suppressed_s] histogram — the readout the chaos
    campaign's dampening parameter sweep renders. *)

open Peering_net

type params = {
  penalty_per_flap : float;  (** default 1000 *)
  suppress_threshold : float;  (** default 2000 *)
  reuse_threshold : float;  (** default 750 *)
  half_life : float;  (** seconds, default 900 *)
  max_suppress : float;  (** cap on hold-down, seconds, default 3600 *)
}

val default_params : params

type t

val create : ?params:params -> unit -> t

val flap : t -> now:float -> peer:string -> Prefix.t -> unit
(** Record a flap (withdrawal or attribute change) at virtual time
    [now]. *)

val penalty : t -> now:float -> peer:string -> Prefix.t -> float
(** Current decayed penalty. *)

val is_suppressed : t -> now:float -> peer:string -> Prefix.t -> bool
(** Whether announcements for this (peer, prefix) must be held down at
    [now]. Accounts for both reuse threshold and the max-suppress
    cap. *)

val reuse_time : t -> now:float -> peer:string -> Prefix.t -> float option
(** If suppressed, the virtual time at which the route becomes usable
    again. *)

val suppressed_count : t -> now:float -> int
(** Number of currently-suppressed (peer, prefix) entries. *)

val params : t -> params
