open Peering_net

type reach = {
  attrs : Attrs.t;
  next_hop : Ipv6.t;
  nlri : Prefix6.t list;
}

type update6 = Reach of reach | Unreach of Prefix6.t list

let afi_ipv6 = 2
let safi_unicast = 1
let mp_reach_code = 14
let mp_unreach_code = 15

(* ------------------------------------------------------------------ *)
(* Byte helpers.  Reads go through the shared Wire.Cursor; the Buffer
   writers stay local (the v4 codec keeps its own too). *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u64 b v =
  for i = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let put_ipv6 b (a : Ipv6.t) =
  put_u64 b a.Ipv6.hi;
  put_u64 b a.Ipv6.lo

let prefix6_wire_bytes p = (Prefix6.len p + 7) / 8

let put_prefix6 b p =
  put_u8 b (Prefix6.len p);
  let a = Prefix6.addr p in
  let nbytes = prefix6_wire_bytes p in
  for i = 0 to nbytes - 1 do
    let byte =
      if i < 8 then
        Int64.to_int (Int64.shift_right_logical a.Ipv6.hi (56 - (8 * i)))
        land 0xFF
      else
        Int64.to_int (Int64.shift_right_logical a.Ipv6.lo (56 - (8 * (i - 8))))
        land 0xFF
    in
    put_u8 b byte
  done

module Cursor = Wire.Cursor

let u64 c =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Cursor.u8 c))
  done;
  !v

let read_ipv6 c =
  let hi = u64 c in
  let lo = u64 c in
  Ipv6.make hi lo

let read_prefix6 c =
  let len = Cursor.u8 c in
  if len > 128 then
    raise (Wire.Error (Wire.Bad_attribute "v6 prefix length > 128"));
  let nbytes = (len + 7) / 8 in
  let hi = ref 0L and lo = ref 0L in
  for i = 0 to nbytes - 1 do
    let byte = Int64.of_int (Cursor.u8 c) in
    if i < 8 then hi := Int64.logor !hi (Int64.shift_left byte (56 - (8 * i)))
    else lo := Int64.logor !lo (Int64.shift_left byte (56 - (8 * (i - 8))))
  done;
  Prefix6.make (Ipv6.make !hi !lo) len

(* ------------------------------------------------------------------ *)
(* Encode: build the MP attribute body, wrap it with the shared
   attributes through the v4 codec's machinery. *)

let mp_reach_body reach =
  let b = Buffer.create 64 in
  put_u16 b afi_ipv6;
  put_u8 b safi_unicast;
  put_u8 b 16 (* next-hop length *);
  put_ipv6 b reach.next_hop;
  put_u8 b 0 (* reserved / SNPA count *);
  List.iter (put_prefix6 b) reach.nlri;
  b

let mp_unreach_body prefixes =
  let b = Buffer.create 32 in
  put_u16 b afi_ipv6;
  put_u8 b safi_unicast;
  List.iter (put_prefix6 b) prefixes;
  b

(* Splice an extra optional attribute into an encoded UPDATE: we
   re-encode from scratch instead, building the full attribute section
   by hand so the message stays canonical. *)
let put_attribute b ~flags ~code body =
  let len = Buffer.length body in
  let flags = if len > 255 then flags lor 0x10 else flags in
  put_u8 b flags;
  put_u8 b code;
  if flags land 0x10 <> 0 then put_u16 b len else put_u8 b len;
  Buffer.add_buffer b body

let encode opts update =
  (* Serialise the shared attributes by encoding an empty v4 UPDATE
     with them, then stripping its framing. *)
  let shared_attrs =
    match update with
    | Reach r -> Some r.attrs
    | Unreach _ -> None
  in
  let base =
    Wire.encode opts
      (Message.Update { withdrawn = []; attrs = shared_attrs; nlri = [] })
  in
  (* layout of [base]: 16 marker + 2 len + 1 type + 2 withdrawn-len(0)
     + 2 attr-len + attrs *)
  let base_attrs_len =
    (Char.code (Bytes.get base 21) lsl 8) lor Char.code (Bytes.get base 22)
  in
  let shared = Bytes.sub base 23 base_attrs_len in
  let attrs_buf = Buffer.create 128 in
  Buffer.add_bytes attrs_buf shared;
  (match update with
  | Reach r -> put_attribute attrs_buf ~flags:0x80 ~code:mp_reach_code
      (mp_reach_body r)
  | Unreach ps ->
    put_attribute attrs_buf ~flags:0x80 ~code:mp_unreach_code
      (mp_unreach_body ps));
  let out = Buffer.create 256 in
  for _ = 1 to 16 do
    Buffer.add_char out '\xFF'
  done;
  let total = 19 + 2 + 2 + Buffer.length attrs_buf in
  put_u16 out total;
  put_u8 out 2 (* UPDATE *);
  put_u16 out 0 (* no withdrawn routes *);
  put_u16 out (Buffer.length attrs_buf);
  Buffer.add_buffer out attrs_buf;
  Buffer.to_bytes out

(* ------------------------------------------------------------------ *)
(* Decode *)

let decode opts buf =
  (* First pass: the v4 codec validates framing and recovers the
     shared attributes (it skips the MP attributes as unknown
     optional). *)
  match Wire.decode opts buf ~pos:0 with
  | Error e -> Error e
  | Ok (Message.Open _, _) | Ok (Message.Keepalive, _)
  | Ok (Message.Notification _, _) ->
    Error (Wire.Bad_attribute "not an UPDATE")
  | Ok (Message.Update u, _) -> (
    (* Second pass: scan the raw attribute section for MP attributes. *)
    try
      let wlen =
        (Char.code (Bytes.get buf 19) lsl 8) lor Char.code (Bytes.get buf 20)
      in
      let attrs_at = 21 + wlen in
      let attrs_len =
        (Char.code (Bytes.get buf attrs_at) lsl 8)
        lor Char.code (Bytes.get buf (attrs_at + 1))
      in
      let r = Cursor.of_bytes ~pos:(attrs_at + 2) ~len:attrs_len buf in
      let found = ref None in
      while Cursor.remaining r > 0 do
        let flags = Cursor.u8 r in
        let code = Cursor.u8 r in
        let len = if flags land 0x10 <> 0 then Cursor.u16 r else Cursor.u8 r in
        let sub = Cursor.slice r len in
        if code = mp_reach_code then begin
          let afi = Cursor.u16 sub in
          let safi = Cursor.u8 sub in
          if afi <> afi_ipv6 || safi <> safi_unicast then
            raise (Wire.Error (Wire.Bad_attribute "unsupported AFI/SAFI"));
          let nh_len = Cursor.u8 sub in
          if nh_len <> 16 then
            raise (Wire.Error (Wire.Bad_attribute "bad v6 next-hop length"));
          let next_hop = read_ipv6 sub in
          let _reserved = Cursor.u8 sub in
          let nlri = ref [] in
          while Cursor.remaining sub > 0 do
            nlri := read_prefix6 sub :: !nlri
          done;
          let attrs =
            Option.value u.Message.attrs
              ~default:(Attrs.make ~next_hop:(Ipv4.of_int 0) ())
          in
          found := Some (Reach { attrs; next_hop; nlri = List.rev !nlri })
        end
        else if code = mp_unreach_code then begin
          let afi = Cursor.u16 sub in
          let safi = Cursor.u8 sub in
          if afi <> afi_ipv6 || safi <> safi_unicast then
            raise (Wire.Error (Wire.Bad_attribute "unsupported AFI/SAFI"));
          let prefixes = ref [] in
          while Cursor.remaining sub > 0 do
            prefixes := read_prefix6 sub :: !prefixes
          done;
          found := Some (Unreach (List.rev !prefixes))
        end
      done;
      match !found with
      | Some m -> Ok m
      | None -> Error (Wire.Bad_attribute "no MP attribute present")
    with Wire.Error e -> Error e)

let announce ?attrs ~next_hop nlri =
  let attrs =
    Option.value attrs ~default:(Attrs.make ~next_hop:(Ipv4.of_int 0) ())
  in
  Reach { attrs; next_hop; nlri }

let withdraw prefixes = Unreach prefixes
