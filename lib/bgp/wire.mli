(** Binary encoding of BGP messages (RFC 4271), with 4-octet ASNs
    (RFC 6793) and ADD-PATH prefixes (RFC 7911).

    Whether ASNs occupy 2 or 4 bytes and whether NLRI carry path
    identifiers is session state negotiated via OPEN capabilities, so
    both directions of the codec take explicit {!session_opts}.

    The codec has two decode paths over one set of shared sub-parsers:

    - {!decode_eager} — the linear reference decoder, which
      materializes a {!Message.t} in one pass;
    - {!view} / {!Update_view} — a zero-copy path that validates only
      the 19-byte header up front and hands back a cursor-backed
      window; UPDATE sections (withdrawn routes, path attributes,
      NLRI) are parsed on first access and memoized.

    {!decode} is the {!view}-based wrapper and must agree with
    {!decode_eager} on every input, including the [error] value
    produced for corrupt frames — the [@mrt-roundtrip] differential
    alias enforces this over seeded corpora. *)

open Peering_net

type session_opts = {
  four_octet_asn : bool;  (** encode ASNs on 4 bytes in AS_PATH etc. *)
  add_path : bool;  (** prefixes carry a 4-byte path identifier *)
}

val default_opts : session_opts
(** 2-byte ASNs, no ADD-PATH — what a pre-negotiation decoder assumes
    (OPEN messages themselves never depend on the options). *)

(** Everything that can go wrong decoding a frame.  The fault
    injector's corrupt-frame path relies on these exact values; see
    [docs/WIRE.md] for the spec-side map. *)
type error =
  | Truncated  (** ran off the end of the buffer or a length field *)
  | Bad_marker  (** the 16-byte marker is not all [0xFF] *)
  | Bad_length of int  (** header length outside [19, 4096], or a
                           KEEPALIVE that is not exactly 19 bytes *)
  | Bad_type of int  (** unknown message type code *)
  | Bad_version of int  (** OPEN with a version other than 4 *)
  | Bad_attribute of string  (** malformed path-attribute section *)
  | Bad_capability of string  (** malformed OPEN capability *)

val error_to_string : error -> string
(** Human-readable rendering used in NOTIFICATION reasons and logs. *)

exception Error of error
(** Raised by {!Cursor} reads that run out of bounds and by the
    internal parsers; caught at every public [result]-returning
    boundary. *)

(** Bounds-checked read window over a shared byte buffer.  A cursor
    never copies: slices alias the parent buffer, and every read is
    checked against the window's limit, raising {!Error}[ Truncated]
    on overrun.  This is the only way both decode paths touch bytes,
    which is what makes their error behavior coincide. *)
module Cursor : sig
  type t
  (** A mutable position within a fixed window of a byte buffer. *)

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t
  (** [of_bytes ?pos ?len buf] is a cursor over [buf.[pos .. pos+len)];
      [pos] defaults to 0 and [len] to the rest of the buffer.  Raises
      [Invalid_argument] if the window lies outside [buf]. *)

  val pos : t -> int
  (** Current absolute offset in the underlying buffer. *)

  val remaining : t -> int
  (** Bytes left before the window's limit. *)

  val u8 : t -> int
  (** Read one byte, big-endian like all BGP fields. *)

  val u16 : t -> int
  (** Read a 2-byte big-endian unsigned integer. *)

  val u32 : t -> int
  (** Read a 4-byte big-endian unsigned integer. *)

  val skip : t -> int -> unit
  (** Advance past [n] bytes without reading them. *)

  val slice : t -> int -> t
  (** [slice c n] is a sub-cursor over the next [n] bytes, sharing the
      buffer (no copy); [c] advances past them. *)

  val rest : t -> bytes
  (** Copy of the bytes from the current position to the limit — the
      one copying escape hatch, for callers that need to retain data
      beyond the buffer's lifetime. *)
end

(** {1 Encoding} *)

val encode : session_opts -> Message.t -> bytes
(** Serialise a message, including the 19-byte header. *)

val encode_attrs : ?with_next_hop:bool -> session_opts -> Attrs.t -> bytes
(** Serialise just a path-attribute section (no framing), in canonical
    ascending attribute-code order.  [~with_next_hop:false] omits the
    NEXT_HOP attribute — MRT [RIB_IPV6_UNICAST] entries carry
    reachability in an abbreviated MP_REACH_NLRI instead
    (RFC 6396 §4.3.4). *)

val encode_prefix : Buffer.t -> Prefix.t -> unit
(** Append one NLRI-encoded prefix (length byte + minimal address
    bytes), without an ADD-PATH identifier — the shape MRT RIB records
    use. *)

(** {1 Decoding} *)

val decode : session_opts -> bytes -> pos:int -> (Message.t * int, error) result
(** [decode opts buf ~pos] parses one message starting at [pos];
    returns the message and the position one past its end.  This is
    the {!view}-based cursor path; it agrees with {!decode_eager} on
    every input. *)

val decode_eager :
  session_opts -> bytes -> pos:int -> (Message.t * int, error) result
(** The retained single-pass reference decoder.  Kept as the oracle
    for the cursor path's differential tests; same contract as
    {!decode}. *)

val decode_exn : session_opts -> bytes -> Message.t
(** Decode a buffer holding exactly one message; raises [Failure] on
    any error or trailing bytes. Convenience for tests. *)

val decode_attrs :
  ?require_next_hop:bool ->
  session_opts ->
  Cursor.t ->
  (Attrs.t option, error) result
(** Parse a bare path-attribute section from a cursor (the MRT entry
    point).  Returns [None] when the section contains only optional
    attributes (legal for MP-only UPDATEs).  With
    [~require_next_hop:false], a section with ORIGIN and AS_PATH but
    no NEXT_HOP decodes with next hop [0.0.0.0] instead of failing —
    the MRT [RIB_IPV6_UNICAST] case. *)

val read_prefix : Cursor.t -> Prefix.t
(** Read one NLRI-encoded prefix (no ADD-PATH identifier); raises
    {!Error}.  Inverse of {!encode_prefix}. *)

(** {1 Lazy views} *)

type update_view
(** A zero-copy window onto one UPDATE message: only the section
    offsets are computed eagerly; withdrawn routes, path attributes,
    and NLRI are each decoded on first access and memoized. *)

(** A validated message header plus its body.  OPEN, NOTIFICATION and
    KEEPALIVE are small and parsed immediately; UPDATE — the hot path
    — stays lazy. *)
type view =
  | Open_v of Message.open_msg  (** an OPEN, fully parsed *)
  | Update_v of update_view  (** an UPDATE, sections parsed on demand *)
  | Notification_v of Message.notification  (** a NOTIFICATION *)
  | Keepalive_v  (** a KEEPALIVE *)

val view : session_opts -> bytes -> pos:int -> (view * int, error) result
(** [view opts buf ~pos] validates the marker, length, and type of the
    message at [pos] and returns a view plus the position one past the
    message.  For UPDATEs no body bytes are parsed yet, so [view] can
    succeed on a frame whose body {!to_message} later rejects. *)

val to_message : view -> (Message.t, error) result
(** Force a view into a materialized message, decoding UPDATE sections
    in the eager decoder's order (withdrawn, attributes, NLRI) so the
    first error reported is identical to {!decode_eager}'s. *)

(** On-demand accessors for one UPDATE's sections.  Each returns the
    memoized parse of its span; errors are stable across repeated
    calls. *)
module Update_view : sig
  val withdrawn :
    update_view -> ((Message.path_id * Prefix.t) list, error) result
  (** Withdrawn routes, parsed on first call. *)

  val attrs : update_view -> (Attrs.t option, error) result
  (** Path attributes, parsed on first call; [None] if the section is
      empty or holds only optional attributes. *)

  val nlri : update_view -> ((Message.path_id * Prefix.t) list, error) result
  (** Announced prefixes, parsed on first call. *)

  val attr_raw : update_view -> code:int -> (bytes option, error) result
  (** [attr_raw v ~code] is a copy of the body of the first attribute
      TLV with type [code], or [None] if absent.  Builds (and
      memoizes) the TLV offset index without decoding any attribute
      bodies — how MRT readers reach e.g. MP_REACH_NLRI without paying
      for a full attribute parse. *)
end
