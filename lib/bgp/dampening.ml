open Peering_net
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink

let m_flaps =
  Metrics.counter ~help:"route flaps charged with a penalty"
    "bgp.dampening.flaps"

let m_suppressions =
  Metrics.counter ~help:"routes entering the suppressed state"
    "bgp.dampening.suppressions"

let m_reuses =
  Metrics.counter ~help:"suppressed routes released for reuse"
    "bgp.dampening.reuses"

let m_suppressed_s =
  Metrics.histogram
    ~help:"time a route spent suppressed before release (virtual s)"
    "bgp.dampening.suppressed_s"

type params = {
  penalty_per_flap : float;
  suppress_threshold : float;
  reuse_threshold : float;
  half_life : float;
  max_suppress : float;
}

let default_params =
  { penalty_per_flap = 1000.0;
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    half_life = 900.0;
    max_suppress = 3600.0
  }

type entry = {
  mutable penalty : float;  (** as of [updated] *)
  mutable updated : float;
  mutable suppressed_since : float option;
}

type t = { params : params; table : (string * Prefix.t, entry) Hashtbl.t }

let create ?(params = default_params) () =
  { params; table = Hashtbl.create 64 }

let params t = t.params

let decayed t (e : entry) ~now =
  let dt = now -. e.updated in
  if dt <= 0.0 then e.penalty
  else e.penalty *. Float.pow 0.5 (dt /. t.params.half_life)

let refresh t e ~now =
  e.penalty <- decayed t e ~now;
  e.updated <- now;
  (match e.suppressed_since with
  | Some since ->
    if
      e.penalty < t.params.reuse_threshold
      || now -. since >= t.params.max_suppress
    then begin
      e.suppressed_since <- None;
      Metrics.Counter.inc m_reuses;
      Metrics.Histogram.observe m_suppressed_s (now -. since);
      (* After the max-suppress cap fires, clamp the penalty so the
         route does not instantly re-suppress on the next tiny flap. *)
      if now -. since >= t.params.max_suppress then
        e.penalty <- min e.penalty t.params.reuse_threshold
    end
  | None ->
    if e.penalty >= t.params.suppress_threshold then begin
      e.suppressed_since <- Some now;
      Metrics.Counter.inc m_suppressions
    end)

let get t ~peer prefix = Hashtbl.find_opt t.table (peer, prefix)

let flap t ~now ~peer prefix =
  let e =
    match get t ~peer prefix with
    | Some e -> e
    | None ->
      let e = { penalty = 0.0; updated = now; suppressed_since = None } in
      Hashtbl.replace t.table (peer, prefix) e;
      e
  in
  refresh t e ~now;
  e.penalty <- e.penalty +. t.params.penalty_per_flap;
  refresh t e ~now;
  Metrics.Counter.inc m_flaps;
  if Sink.active () then
    Sink.emit ~time:now ~level:Peering_obs.Event.Debug
      ~subsystem:"bgp.dampening"
      (Peering_obs.Event.Dampening_penalty
         { peer;
           prefix;
           penalty = e.penalty;
           suppressed = e.suppressed_since <> None
         })

let penalty t ~now ~peer prefix =
  match get t ~peer prefix with
  | None -> 0.0
  | Some e -> decayed t e ~now

let is_suppressed t ~now ~peer prefix =
  match get t ~peer prefix with
  | None -> false
  | Some e ->
    refresh t e ~now;
    e.suppressed_since <> None

let reuse_time t ~now ~peer prefix =
  match get t ~peer prefix with
  | None -> None
  | Some e ->
    refresh t e ~now;
    (match e.suppressed_since with
    | None -> None
    | Some since ->
      (* Time for penalty to decay to the reuse threshold. *)
      let p = e.penalty in
      let decay_t =
        if p <= t.params.reuse_threshold then now
        else
          now
          +. t.params.half_life
             *. (Float.log (p /. t.params.reuse_threshold) /. Float.log 2.0)
      in
      Some (min decay_t (since +. t.params.max_suppress)))

let suppressed_count t ~now =
  Hashtbl.fold
    (fun _ e acc ->
      refresh t e ~now;
      if e.suppressed_since <> None then acc + 1 else acc)
    t.table 0
