(** Routing information bases: per-peer Adj-RIB-In tables feeding a
    Loc-RIB through the decision process.

    The structure is mutable; every mutation reports the set of
    best-route changes so a router can push deltas to its
    Adj-RIBs-Out. Peers are identified by opaque string keys chosen by
    the owner (a router uses peer addresses; the PEERING mux uses
    "client/peer" composite keys, one logical table per upstream). *)

open Peering_net

type change = {
  prefix : Prefix.t;
  previous : Route.t option;
  current : Route.t option;
}
(** A best-route transition for one prefix. [previous = None] means the
    prefix is newly reachable, [current = None] newly unreachable. *)

type t

val create : unit -> t

val announce : t -> peer:string -> Route.t -> change option
(** Install (or replace, keyed by path-id) a route from [peer] into its
    Adj-RIB-In, recompute the best route for that prefix, and report
    the change if the Loc-RIB best moved. *)

val withdraw : t -> peer:string -> ?path_id:int -> Prefix.t -> change option
(** Remove the peer's route (with the given path-id, default 0). *)

val drop_peer : t -> peer:string -> change list
(** Remove every route learned from [peer] (session teardown),
    reporting all resulting best-route changes. Clears any stale
    marks for the peer. *)

val mark_stale : t -> peer:string -> int
(** RFC 4724 helper entry: mark every route currently learned from
    [peer] as stale — the routes stay installed and keep forwarding —
    and return how many were marked. A subsequent {!announce} or
    {!withdraw} for a (path, prefix) refreshes it (clears the mark). *)

val sweep_stale : t -> peer:string -> change list
(** RFC 4724 helper exit: withdraw every route still marked stale for
    [peer] (the restarting speaker never re-announced them), reporting
    the resulting best-route changes. *)

val stale_count : t -> peer:string -> int
(** Routes currently marked stale for [peer]. *)

val peers : t -> string list
(** Peers with at least one route, sorted. *)

val best : t -> Prefix.t -> Route.t option
(** Current Loc-RIB entry for an exact prefix. *)

val candidates : t -> Prefix.t -> Route.t list
(** All Adj-RIB-In routes for the prefix, best first. *)

val lookup : t -> Ipv4.t -> Route.t option
(** Longest-prefix match against the Loc-RIB. *)

val fold_best : (Prefix.t -> Route.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over the Loc-RIB in address order. *)

val best_routes : t -> (Prefix.t * Route.t) list

val prefix_count : t -> int
(** Number of prefixes in the Loc-RIB. *)

val route_count : t -> int
(** Total routes across all Adj-RIBs-In. *)

val peer_route_count : t -> peer:string -> int
