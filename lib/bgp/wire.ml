open Peering_net

type session_opts = { four_octet_asn : bool; add_path : bool }

let default_opts = { four_octet_asn = false; add_path = false }

type error =
  | Truncated
  | Bad_marker
  | Bad_length of int
  | Bad_type of int
  | Bad_version of int
  | Bad_attribute of string
  | Bad_capability of string

let error_to_string = function
  | Truncated -> "truncated message"
  | Bad_marker -> "bad marker"
  | Bad_length n -> Printf.sprintf "bad length %d" n
  | Bad_type n -> Printf.sprintf "bad message type %d" n
  | Bad_version n -> Printf.sprintf "bad version %d" n
  | Bad_attribute s -> Printf.sprintf "bad attribute: %s" s
  | Bad_capability s -> Printf.sprintf "bad capability: %s" s

exception Error of error

let as_trans = 23456

(* ------------------------------------------------------------------ *)
(* Encoding *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  put_u8 b (v lsr 8);
  put_u8 b v

let put_u32 b v =
  put_u16 b (v lsr 16);
  put_u16 b (v land 0xFFFF)

let put_asn opts b asn =
  let a = Asn.to_int asn in
  if opts.four_octet_asn then put_u32 b a
  else put_u16 b (if a > 0xFFFF then as_trans else a)

let prefix_byte_len l = (l + 7) / 8

let put_prefix opts b (path_id, p) =
  if opts.add_path then put_u32 b path_id;
  let l = Prefix.len p in
  put_u8 b l;
  let a = Ipv4.to_int (Prefix.addr p) in
  for i = 0 to prefix_byte_len l - 1 do
    put_u8 b ((a lsr (24 - (8 * i))) land 0xFF)
  done

let encode_prefix b p = put_prefix default_opts b (0, p)

let put_as_path opts b path =
  List.iter
    (fun seg ->
      let ty, asns =
        match seg with
        | As_path.Set l -> (1, l)
        | As_path.Seq l -> (2, l)
      in
      put_u8 b ty;
      put_u8 b (List.length asns);
      List.iter (put_asn opts b) asns)
    path

(* flags, type code, and body writer *)
let put_attribute b ~flags ~code body =
  let len = Buffer.length body in
  let flags = if len > 255 then flags lor 0x10 else flags in
  put_u8 b flags;
  put_u8 b code;
  if flags land 0x10 <> 0 then put_u16 b len else put_u8 b len;
  Buffer.add_buffer b body

let attrs_buffer ?(with_next_hop = true) opts (a : Attrs.t) =
  let b = Buffer.create 64 in
  (* ORIGIN, well-known mandatory *)
  let body = Buffer.create 1 in
  put_u8 body (Attrs.origin_rank a.origin);
  put_attribute b ~flags:0x40 ~code:1 body;
  (* AS_PATH *)
  let body = Buffer.create 16 in
  put_as_path opts body a.as_path;
  put_attribute b ~flags:0x40 ~code:2 body;
  (* NEXT_HOP — omitted for MRT RIB_IPV6 entries, where reachability
     lives in an abbreviated MP_REACH_NLRI instead (RFC 6396 §4.3.4) *)
  if with_next_hop then begin
    let body = Buffer.create 4 in
    put_u32 body (Ipv4.to_int a.next_hop);
    put_attribute b ~flags:0x40 ~code:3 body
  end;
  (* MED, optional non-transitive *)
  Option.iter
    (fun med ->
      let body = Buffer.create 4 in
      put_u32 body med;
      put_attribute b ~flags:0x80 ~code:4 body)
    a.med;
  (* LOCAL_PREF *)
  Option.iter
    (fun lp ->
      let body = Buffer.create 4 in
      put_u32 body lp;
      put_attribute b ~flags:0x40 ~code:5 body)
    a.local_pref;
  if a.atomic_aggregate then
    put_attribute b ~flags:0x40 ~code:6 (Buffer.create 0);
  Option.iter
    (fun (asn, addr) ->
      let body = Buffer.create 8 in
      put_asn opts body asn;
      put_u32 body (Ipv4.to_int addr);
      put_attribute b ~flags:0xC0 ~code:7 body)
    a.aggregator;
  if a.communities <> [] then begin
    let body = Buffer.create (4 * List.length a.communities) in
    List.iter (fun c -> put_u32 body (Community.to_int32 c)) a.communities;
    put_attribute b ~flags:0xC0 ~code:8 body
  end;
  b

let encode_attrs ?with_next_hop opts a =
  Buffer.to_bytes (attrs_buffer ?with_next_hop opts a)

let encode_capability b (cap : Capability.t) =
  match cap with
  | Capability.Route_refresh ->
    put_u8 b 2;
    put_u8 b 0
  | Capability.Graceful_restart secs ->
    put_u8 b 64;
    put_u8 b 2;
    put_u16 b (secs land 0x0FFF)
  | Capability.Four_octet_asn asn ->
    put_u8 b 65;
    put_u8 b 4;
    put_u32 b asn
  | Capability.Add_path mode ->
    put_u8 b 69;
    put_u8 b 4;
    put_u16 b 1 (* AFI IPv4 *);
    put_u8 b 1 (* SAFI unicast *);
    put_u8 b
      (match mode with
      | Capability.Receive -> 1
      | Capability.Send -> 2
      | Capability.Send_receive -> 3)

let encode_open (o : Message.open_msg) =
  let b = Buffer.create 64 in
  put_u8 b o.version;
  let a = Asn.to_int o.asn in
  put_u16 b (if a > 0xFFFF then as_trans else a);
  put_u16 b o.hold_time;
  put_u32 b (Ipv4.to_int o.router_id);
  let caps = Buffer.create 32 in
  List.iter (encode_capability caps) o.capabilities;
  if Buffer.length caps = 0 then put_u8 b 0
  else begin
    (* one optional parameter of type 2 (capabilities) *)
    put_u8 b (Buffer.length caps + 2);
    put_u8 b 2;
    put_u8 b (Buffer.length caps);
    Buffer.add_buffer b caps
  end;
  b

let encode_update opts (u : Message.update) =
  let b = Buffer.create 128 in
  let withdrawn = Buffer.create 32 in
  List.iter (put_prefix opts withdrawn) u.withdrawn;
  put_u16 b (Buffer.length withdrawn);
  Buffer.add_buffer b withdrawn;
  let attrs =
    match u.attrs with
    | Some a -> attrs_buffer opts a
    | None -> Buffer.create 0
  in
  put_u16 b (Buffer.length attrs);
  Buffer.add_buffer b attrs;
  List.iter (put_prefix opts b) u.nlri;
  b

let encode_notification (n : Message.notification) =
  let b = Buffer.create 32 in
  put_u8 b n.code;
  put_u8 b n.subcode;
  Buffer.add_string b n.reason;
  b

let encode opts msg =
  let ty, body =
    match msg with
    | Message.Open o -> (1, encode_open o)
    | Message.Update u -> (2, encode_update opts u)
    | Message.Notification n -> (3, encode_notification n)
    | Message.Keepalive -> (4, Buffer.create 0)
  in
  let b = Buffer.create (19 + Buffer.length body) in
  for _ = 1 to 16 do
    Buffer.add_char b '\xFF'
  done;
  put_u16 b (19 + Buffer.length body);
  put_u8 b ty;
  Buffer.add_buffer b body;
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Cursor: the shared bounds-checked window both decoders read through. *)

module Cursor = struct
  type t = { buf : bytes; mutable pos : int; limit : int }

  let of_bytes ?(pos = 0) ?len buf =
    let total = Bytes.length buf in
    let limit = match len with None -> total | Some n -> pos + n in
    if pos < 0 || pos > limit || limit > total then
      invalid_arg "Wire.Cursor.of_bytes";
    { buf; pos; limit }

  let pos c = c.pos
  let remaining c = c.limit - c.pos
  let need c n = if c.pos + n > c.limit then raise (Error Truncated)

  let u8 c =
    need c 1;
    let v = Char.code (Bytes.get c.buf c.pos) in
    c.pos <- c.pos + 1;
    v

  let u16 c =
    let hi = u8 c in
    let lo = u8 c in
    (hi lsl 8) lor lo

  let u32 c =
    let hi = u16 c in
    let lo = u16 c in
    (hi lsl 16) lor lo

  let skip c n =
    need c n;
    c.pos <- c.pos + n

  let slice c n =
    need c n;
    let sub = { buf = c.buf; pos = c.pos; limit = c.pos + n } in
    c.pos <- c.pos + n;
    sub

  let rest c = Bytes.sub c.buf c.pos (remaining c)
  let rest_string c = Bytes.sub_string c.buf c.pos (remaining c)
end

(* ------------------------------------------------------------------ *)
(* Shared sub-parsers: both the eager decoder and the lazy views call
   exactly these, so a given byte span maps to one (value | error). *)

let get_asn opts c =
  Asn.of_int (if opts.four_octet_asn then Cursor.u32 c else Cursor.u16 c)

let get_prefix opts c =
  let path_id = if opts.add_path then Cursor.u32 c else 0 in
  let l = Cursor.u8 c in
  if l > 32 then raise (Error (Bad_attribute "prefix length > 32"));
  let nbytes = prefix_byte_len l in
  let a = ref 0 in
  for i = 0 to nbytes - 1 do
    a := !a lor (Cursor.u8 c lsl (24 - (8 * i)))
  done;
  (path_id, Prefix.make (Ipv4.of_int !a) l)

let read_prefix c = snd (get_prefix default_opts c)

let get_prefixes opts c =
  let acc = ref [] in
  while Cursor.remaining c > 0 do
    acc := get_prefix opts c :: !acc
  done;
  List.rev !acc

let get_as_path opts c =
  let segs = ref [] in
  while Cursor.remaining c > 0 do
    let ty = Cursor.u8 c in
    let n = Cursor.u8 c in
    let asns = List.init n (fun _ -> get_asn opts c) in
    let seg =
      match ty with
      | 1 -> As_path.Set asns
      | 2 -> As_path.Seq asns
      | t -> raise (Error (Bad_attribute (Printf.sprintf "segment type %d" t)))
    in
    segs := seg :: !segs
  done;
  List.rev !segs

type partial_attrs = {
  mutable p_origin : Attrs.origin option;
  mutable p_as_path : As_path.t option;
  mutable p_next_hop : Ipv4.t option;
  mutable p_med : int option;
  mutable p_local_pref : int option;
  mutable p_atomic : bool;
  mutable p_aggregator : (Asn.t * Ipv4.t) option;
  mutable p_communities : Community.t list;
}

let get_attrs ?(require_next_hop = true) opts c =
  let p =
    { p_origin = None;
      p_as_path = None;
      p_next_hop = None;
      p_med = None;
      p_local_pref = None;
      p_atomic = false;
      p_aggregator = None;
      p_communities = []
    }
  in
  while Cursor.remaining c > 0 do
    let flags = Cursor.u8 c in
    let code = Cursor.u8 c in
    let len = if flags land 0x10 <> 0 then Cursor.u16 c else Cursor.u8 c in
    let sub = Cursor.slice c len in
    match code with
    | 1 ->
      p.p_origin <-
        Some
          (match Cursor.u8 sub with
          | 0 -> Attrs.IGP
          | 1 -> Attrs.EGP
          | 2 -> Attrs.INCOMPLETE
          | o -> raise (Error (Bad_attribute (Printf.sprintf "origin %d" o))))
    | 2 -> p.p_as_path <- Some (get_as_path opts sub)
    | 3 -> p.p_next_hop <- Some (Ipv4.of_int (Cursor.u32 sub))
    | 4 -> p.p_med <- Some (Cursor.u32 sub)
    | 5 -> p.p_local_pref <- Some (Cursor.u32 sub)
    | 6 -> p.p_atomic <- true
    | 7 ->
      let asn = get_asn opts sub in
      let addr = Ipv4.of_int (Cursor.u32 sub) in
      p.p_aggregator <- Some (asn, addr)
    | 8 ->
      let cs = ref [] in
      while Cursor.remaining sub > 0 do
        cs := Community.of_int32 (Cursor.u32 sub) :: !cs
      done;
      p.p_communities <- List.rev !cs
    | _ when flags land 0x80 <> 0 -> () (* skip unknown optional *)
    | c -> raise (Error (Bad_attribute (Printf.sprintf "unknown mandatory %d" c)))
  done;
  let build ~next_hop origin as_path =
    Some
      (Attrs.make ~origin ~as_path ?med:p.p_med ?local_pref:p.p_local_pref
         ~atomic_aggregate:p.p_atomic ?aggregator:p.p_aggregator
         ~communities:p.p_communities ~next_hop ())
  in
  match (p.p_origin, p.p_as_path, p.p_next_hop) with
  | Some origin, Some as_path, Some next_hop -> build ~next_hop origin as_path
  | Some origin, Some as_path, None when not require_next_hop ->
    (* MRT RIB_IPV6 entries: reachability is in MP_REACH_NLRI, not a
       NEXT_HOP attribute; the v4 slot is filled with 0.0.0.0. *)
    build ~next_hop:(Ipv4.of_int 0) origin as_path
  | None, None, None ->
    (* Only optional attributes (e.g. MP_REACH/MP_UNREACH, RFC 4760):
       legal for an UPDATE without v4 NLRI. *)
    None
  | None, _, _ -> raise (Error (Bad_attribute "missing ORIGIN"))
  | _, None, _ -> raise (Error (Bad_attribute "missing AS_PATH"))
  | _, _, None -> raise (Error (Bad_attribute "missing NEXT_HOP"))

let decode_attrs ?require_next_hop opts c =
  try Ok (get_attrs ?require_next_hop opts c) with Error e -> Result.Error e

let decode_capability c =
  let code = Cursor.u8 c in
  let len = Cursor.u8 c in
  let sub = Cursor.slice c len in
  match code with
  | 2 -> Some Capability.Route_refresh
  | 64 -> Some (Capability.Graceful_restart (Cursor.u16 sub land 0x0FFF))
  | 65 -> Some (Capability.Four_octet_asn (Cursor.u32 sub))
  | 69 ->
    let _afi = Cursor.u16 sub in
    let _safi = Cursor.u8 sub in
    let mode =
      match Cursor.u8 sub with
      | 1 -> Capability.Receive
      | 2 -> Capability.Send
      | 3 -> Capability.Send_receive
      | m -> raise (Error (Bad_capability (Printf.sprintf "add-path mode %d" m)))
    in
    Some (Capability.Add_path mode)
  | _ -> None (* ignore unknown capabilities *)

let decode_open c : Message.open_msg =
  let version = Cursor.u8 c in
  if version <> 4 then raise (Error (Bad_version version));
  let asn16 = Cursor.u16 c in
  let hold_time = Cursor.u16 c in
  let router_id = Ipv4.of_int (Cursor.u32 c) in
  let opt_len = Cursor.u8 c in
  let params = Cursor.slice c opt_len in
  let caps = ref [] in
  while Cursor.remaining params > 0 do
    let pty = Cursor.u8 params in
    let plen = Cursor.u8 params in
    let sub = Cursor.slice params plen in
    if pty = 2 then
      while Cursor.remaining sub > 0 do
        match decode_capability sub with
        | Some cap -> caps := cap :: !caps
        | None -> ()
      done
  done;
  let capabilities = List.rev !caps in
  (* If a 4-octet capability is present it carries the true ASN. *)
  let asn =
    match
      List.find_map
        (function Capability.Four_octet_asn a -> Some a | _ -> None)
        capabilities
    with
    | Some a -> Asn.of_int a
    | None -> Asn.of_int asn16
  in
  { version; asn; hold_time; router_id; capabilities }

let decode_notification c : Message.notification =
  let code = Cursor.u8 c in
  let subcode = Cursor.u8 c in
  let reason = Cursor.rest_string c in
  Message.{ code; subcode; reason }

(* ------------------------------------------------------------------ *)
(* Eager decoding: the retained linear reference implementation. *)

let decode_update_eager opts c =
  let wlen = Cursor.u16 c in
  let wsub = Cursor.slice c wlen in
  let withdrawn = get_prefixes opts wsub in
  let alen = Cursor.u16 c in
  let asub = Cursor.slice c alen in
  let attrs = if alen = 0 then None else get_attrs opts asub in
  let nlri = get_prefixes opts c in
  if nlri <> [] && attrs = None then
    raise (Error (Bad_attribute "NLRI without path attributes"));
  Message.Update { withdrawn; attrs; nlri }

(* Header validation shared by both decode paths: returns the message
   type and a cursor over the body, or raises. *)
let check_header buf ~pos =
  let total = Bytes.length buf in
  if pos + 19 > total then raise (Error Truncated);
  for i = pos to pos + 15 do
    if Bytes.get buf i <> '\xFF' then raise (Error Bad_marker)
  done;
  let hdr = Cursor.of_bytes ~pos:(pos + 16) buf in
  let len = Cursor.u16 hdr in
  if len < 19 || len > 4096 then raise (Error (Bad_length len));
  if pos + len > total then raise (Error Truncated);
  let ty = Cursor.u8 hdr in
  (ty, len)

let decode_eager opts buf ~pos =
  try
    let ty, len = check_header buf ~pos in
    let c = Cursor.of_bytes ~pos:(pos + 19) ~len:(len - 19) buf in
    let msg =
      match ty with
      | 1 -> Message.Open (decode_open c)
      | 2 -> decode_update_eager opts c
      | 3 -> Message.Notification (decode_notification c)
      | 4 ->
        if len <> 19 then raise (Error (Bad_length len));
        Message.Keepalive
      | t -> raise (Error (Bad_type t))
    in
    Ok (msg, pos + len)
  with Error e -> Result.Error e

(* ------------------------------------------------------------------ *)
(* Lazy views: zero-copy message windows over a shared buffer.  An
   UPDATE view keeps only (buffer, offset, length); each section is
   parsed on first access and memoized.  Forcing replays the same
   cursor reads, in the same order, over the same spans as the eager
   decoder, so the two paths agree on every input — including the
   error produced for corrupt frames. *)

type span = { s_buf : bytes; s_pos : int; s_len : int }

let cursor_of_span s = Cursor.of_bytes ~pos:s.s_pos ~len:s.s_len s.s_buf

type update_view = {
  u_opts : session_opts;
  u_body : span;
  mutable u_withdrawn : ((Message.path_id * Prefix.t) list, error) result option;
  mutable u_attrs : (Attrs.t option, error) result option;
  mutable u_nlri : ((Message.path_id * Prefix.t) list, error) result option;
  mutable u_index : ((int * int * span) list, error) result option;
}

type view =
  | Open_v of Message.open_msg
  | Update_v of update_view
  | Notification_v of Message.notification
  | Keepalive_v

let run f = try Ok (f ()) with Error e -> Result.Error e

module Update_view = struct
  let withdrawn v =
    match v.u_withdrawn with
    | Some r -> r
    | None ->
      let r =
        run (fun () ->
            let c = cursor_of_span v.u_body in
            let wlen = Cursor.u16 c in
            get_prefixes v.u_opts (Cursor.slice c wlen))
      in
      v.u_withdrawn <- Some r;
      r

  (* Skip to and slice the attribute section; raises on truncation. *)
  let attrs_cursor v =
    let c = cursor_of_span v.u_body in
    let wlen = Cursor.u16 c in
    Cursor.skip c wlen;
    let alen = Cursor.u16 c in
    Cursor.slice c alen

  let attrs v =
    match v.u_attrs with
    | Some r -> r
    | None ->
      let r =
        run (fun () ->
            let a = attrs_cursor v in
            if Cursor.remaining a = 0 then None else get_attrs v.u_opts a)
      in
      v.u_attrs <- Some r;
      r

  let nlri v =
    match v.u_nlri with
    | Some r -> r
    | None ->
      let r =
        run (fun () ->
            let c = cursor_of_span v.u_body in
            let wlen = Cursor.u16 c in
            Cursor.skip c wlen;
            let alen = Cursor.u16 c in
            Cursor.skip c alen;
            get_prefixes v.u_opts c)
      in
      v.u_nlri <- Some r;
      r

  (* Attribute TLV index: offsets only, no body decoding. *)
  let index v =
    match v.u_index with
    | Some r -> r
    | None ->
      let r =
        run (fun () ->
            let a = attrs_cursor v in
            let acc = ref [] in
            while Cursor.remaining a > 0 do
              let flags = Cursor.u8 a in
              let code = Cursor.u8 a in
              let len =
                if flags land 0x10 <> 0 then Cursor.u16 a else Cursor.u8 a
              in
              let body = Cursor.slice a len in
              acc :=
                ( flags,
                  code,
                  { s_buf = body.Cursor.buf;
                    s_pos = body.Cursor.pos;
                    s_len = len
                  } )
                :: !acc
            done;
            List.rev !acc)
      in
      v.u_index <- Some r;
      r

  let attr_raw v ~code =
    match index v with
    | Result.Error e -> Result.Error e
    | Ok tlvs -> (
      match List.find_opt (fun (_, c, _) -> c = code) tlvs with
      | None -> Ok None
      | Some (_, _, s) -> Ok (Some (Bytes.sub s.s_buf s.s_pos s.s_len)))
end

let view opts buf ~pos =
  try
    let ty, len = check_header buf ~pos in
    let body = { s_buf = buf; s_pos = pos + 19; s_len = len - 19 } in
    let v =
      match ty with
      | 1 -> Open_v (decode_open (cursor_of_span body))
      | 2 ->
        Update_v
          { u_opts = opts;
            u_body = body;
            u_withdrawn = None;
            u_attrs = None;
            u_nlri = None;
            u_index = None
          }
      | 3 -> Notification_v (decode_notification (cursor_of_span body))
      | 4 ->
        if len <> 19 then raise (Error (Bad_length len));
        Keepalive_v
      | t -> raise (Error (Bad_type t))
    in
    Ok (v, pos + len)
  with Error e -> Result.Error e

let to_message = function
  | Open_v o -> Ok (Message.Open o)
  | Keepalive_v -> Ok Message.Keepalive
  | Notification_v n -> Ok (Message.Notification n)
  | Update_v v -> (
    (* Force sections in the eager decoder's order so the first error
       reported matches it exactly. *)
    match Update_view.withdrawn v with
    | Result.Error e -> Result.Error e
    | Ok withdrawn -> (
      match Update_view.attrs v with
      | Result.Error e -> Result.Error e
      | Ok attrs -> (
        match Update_view.nlri v with
        | Result.Error e -> Result.Error e
        | Ok nlri ->
          if nlri <> [] && attrs = None then
            Result.Error (Bad_attribute "NLRI without path attributes")
          else Ok (Message.Update { withdrawn; attrs; nlri }))))

let decode opts buf ~pos =
  match view opts buf ~pos with
  | Result.Error e -> Result.Error e
  | Ok (v, next) -> (
    match to_message v with
    | Ok msg -> Ok (msg, next)
    | Result.Error e -> Result.Error e)

let decode_exn opts buf =
  match decode opts buf ~pos:0 with
  | Ok (msg, n) when n = Bytes.length buf -> msg
  | Ok _ -> failwith "Wire.decode_exn: trailing bytes"
  | Result.Error e -> failwith ("Wire.decode_exn: " ^ error_to_string e)
