open Peering_net
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink

let m_transitions =
  Metrics.counter ~help:"BGP session FSM state transitions"
    "bgp.fsm.transitions"

let m_established =
  Metrics.counter ~help:"sessions that reached Established"
    "bgp.session.established"

let m_closed =
  Metrics.counter ~help:"sessions closed (any reason)" "bgp.session.closed"

let m_updates_rx =
  Metrics.counter ~help:"UPDATE messages received on established sessions"
    "bgp.session.updates_rx"

let m_keepalives_rx =
  Metrics.counter ~help:"KEEPALIVE messages received" "bgp.session.keepalives_rx"

let m_notifications_rx =
  Metrics.counter ~help:"NOTIFICATION messages received"
    "bgp.session.notifications_rx"

let m_fsm_errors =
  Metrics.counter ~help:"messages rejected as FSM errors" "bgp.fsm.errors"

let m_auto_restarts =
  Metrics.counter ~help:"automatic session restarts scheduled after a close"
    "bgp.fsm.auto_restarts"

(* Per-peer state gauge (RFC 4271 state ordinal, Established = 5) so
   the registry can be cross-checked against the BMP Peer Up/Down feed
   — the mux exporter publishes the same family keyed (site, peer). *)
let fam_session_state =
  Metrics.Family.gauge
    ~help:"BGP session FSM state ordinal (0 Idle .. 5 Established)"
    "bgp.session.state"

type state = Idle | Connect | Active | Open_sent | Open_confirm | Established

let state_ordinal = function
  | Idle -> 0
  | Connect -> 1
  | Active -> 2
  | Open_sent -> 3
  | Open_confirm -> 4
  | Established -> 5

let state_to_string = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

type config = {
  local_asn : Asn.t;
  router_id : Ipv4.t;
  hold_time : int;
  connect_retry : float;
  auto_restart : bool;
  capabilities : Capability.t list;
  passive : bool;
}

let default_config ~local_asn ~router_id =
  { local_asn;
    router_id;
    hold_time = 90;
    connect_retry = 5.0;
    auto_restart = false;
    capabilities = [ Capability.Four_octet_asn (Asn.to_int local_asn) ];
    passive = false
  }

type callbacks = {
  send : Message.t -> unit;
  on_established : Wire.session_opts -> unit;
  on_update : Message.update -> unit;
  on_close : string -> unit;
}

type t = {
  engine : Engine.t;
  config : config;
  cb : callbacks;
  mutable state : state;
  mutable peer_open : Message.open_msg option;
  mutable negotiated : Wire.session_opts option;
  mutable hold_deadline : float;
  mutable hold_interval : float;  (** negotiated hold time; 0 = disabled *)
  mutable timer_generation : int;  (** invalidates stale timer events *)
  mutable established_count : int;
  mutable retry_backoff : float;  (** current IdleHoldTime base, seconds *)
  mutable admin_down : bool;  (** administratively stopped; no auto-restart *)
  mutable gr_time : int option;
      (** peer's RFC 4724 restart time, once negotiated; survives close *)
}

let create engine config cb =
  { engine;
    config;
    cb;
    state = Idle;
    peer_open = None;
    negotiated = None;
    hold_deadline = infinity;
    hold_interval = 0.0;
    timer_generation = 0;
    established_count = 0;
    retry_backoff = config.connect_retry;
    admin_down = false;
    gr_time = None
  }

let state t = t.state
let negotiated t = t.negotiated
let peer_open t = t.peer_open
let established_count t = t.established_count
let graceful_restart_time t = t.gr_time

let peer_label t =
  match t.peer_open with
  | Some o -> Asn.to_string o.Message.asn
  | None -> "?"

(* All state changes funnel through here so the transition counter and
   the typed trace stay complete. *)
let set_state t next =
  if t.state <> next then begin
    Metrics.Counter.inc m_transitions;
    Metrics.Gauge.set
      (Metrics.Family.get fam_session_state [ ("peer", peer_label t) ])
      (float_of_int (state_ordinal next));
    if Sink.active () then
      Sink.emit ~time:(Engine.now t.engine) ~subsystem:"bgp.fsm"
        (Peering_obs.Event.Session_transition
           { peer = peer_label t;
             from_state = state_to_string t.state;
             to_state = state_to_string next
           });
    t.state <- next
  end

let my_open t =
  Message.Open
    { version = 4;
      asn = t.config.local_asn;
      hold_time = t.config.hold_time;
      router_id = t.config.router_id;
      capabilities = t.config.capabilities
    }

let bump_timers t = t.timer_generation <- t.timer_generation + 1

(* Reconnect backoff: each failed attempt doubles the IdleHoldTime up
   to a cap; the actual delay is jittered from the engine RNG so
   synchronized flaps desynchronize, yet identical seeds replay the
   same timeline (RFC 4271 §8.2.1's DampPeerOscillations, condensed). *)
let max_retry_backoff = 120.0

let rec schedule_restart t =
  let jitter = 0.75 +. Peering_sim.Rng.float (Engine.rng t.engine) 0.5 in
  let delay = t.retry_backoff *. jitter in
  t.retry_backoff <- Float.min (t.retry_backoff *. 2.0) max_retry_backoff;
  Metrics.Counter.inc m_auto_restarts;
  let generation = t.timer_generation in
  Engine.schedule t.engine ~delay (fun () ->
      if generation = t.timer_generation && t.state = Idle && not t.admin_down
      then start t)

and start t =
  match t.state with
  | Idle ->
    t.admin_down <- false;
    if t.config.passive then set_state t Active
    else begin
      set_state t Open_sent;
      t.cb.send (my_open t);
      if t.config.auto_restart then begin
        let generation = t.timer_generation in
        Engine.schedule t.engine ~delay:t.retry_backoff
          (connect_check t generation)
      end
    end
  | Connect | Active | Open_sent | Open_confirm | Established -> ()

and connect_check t generation () =
  (* The OPEN we sent got no answer inside the retry window (lost on a
     lossy link, or the peer is partitioned away): give up on this
     attempt and go back to Idle, from where the backed-off restart
     timer tries again. *)
  if
    generation = t.timer_generation
    &&
    match t.state with
    | Open_sent | Open_confirm -> true
    | Idle | Connect | Active | Established -> false
  then close t "connect retry expired"

and close ?(restart = true) t reason =
  if t.state <> Idle then begin
    bump_timers t;
    Metrics.Counter.inc m_closed;
    set_state t Idle;
    t.peer_open <- None;
    t.negotiated <- None;
    t.cb.on_close reason;
    if restart && t.config.auto_restart && not t.admin_down then
      schedule_restart t
  end

let rec keepalive_tick t generation () =
  if generation = t.timer_generation && t.state = Established then begin
    t.cb.send Message.Keepalive;
    if t.hold_interval > 0.0 then
      Engine.schedule t.engine ~delay:(t.hold_interval /. 3.0)
        (keepalive_tick t generation)
  end

let rec hold_check t generation () =
  if generation = t.timer_generation && t.state = Established then
    if Engine.now t.engine >= t.hold_deadline then begin
      t.cb.send
        (Message.Notification
           { code = Message.Error.hold_timer_expired;
             subcode = 0;
             reason = "hold timer expired"
           });
      close t "hold timer expired"
    end
    else
      Engine.schedule_at t.engine ~time:t.hold_deadline (hold_check t generation)

let enter_established t =
  let peer =
    match t.peer_open with
    | Some o -> o
    | None -> assert false
  in
  let opts =
    { Wire.four_octet_asn =
        Capability.negotiated_four_octet t.config.capabilities
          peer.capabilities;
      add_path =
        Capability.negotiated_add_path t.config.capabilities peer.capabilities
    }
  in
  t.negotiated <- Some opts;
  t.gr_time <-
    Capability.negotiated_graceful_restart t.config.capabilities
      peer.capabilities;
  t.retry_backoff <- t.config.connect_retry;
  set_state t Established;
  Metrics.Counter.inc m_established;
  t.established_count <- t.established_count + 1;
  t.hold_interval <- float_of_int (min t.config.hold_time peer.hold_time);
  bump_timers t;
  let generation = t.timer_generation in
  if t.hold_interval > 0.0 then begin
    t.hold_deadline <- Engine.now t.engine +. t.hold_interval;
    Engine.schedule t.engine ~delay:(t.hold_interval /. 3.0)
      (keepalive_tick t generation);
    Engine.schedule_at t.engine ~time:t.hold_deadline (hold_check t generation)
  end;
  t.cb.on_established opts

let touch_hold t =
  if t.hold_interval > 0.0 then
    t.hold_deadline <- Engine.now t.engine +. t.hold_interval

let stop t ~reason =
  t.admin_down <- true;
  if t.state = Established || t.state = Open_confirm || t.state = Open_sent
  then
    t.cb.send
      (Message.Notification
         { code = Message.Error.cease; subcode = 0; reason });
  close ~restart:false t reason

let kill t ~reason =
  (* Transport loss (crash, RST, fault injection): no NOTIFICATION
     makes it onto the wire; the peer finds out via its own timers. *)
  close t reason

let handle_garbage t ~reason =
  if t.state <> Idle then begin
    Metrics.Counter.inc m_fsm_errors;
    t.cb.send
      (Message.Notification
         { code = Message.Error.message_header; subcode = 0; reason });
    close t reason
  end

let fsm_error t got =
  Metrics.Counter.inc m_fsm_errors;
  t.cb.send
    (Message.Notification
       { code = Message.Error.fsm;
         subcode = 0;
         reason = Printf.sprintf "unexpected %s in %s" got
             (state_to_string t.state)
       });
  close t "FSM error"

let validate_open t (o : Message.open_msg) =
  if o.version <> 4 then Error "bad version"
  else if o.hold_time = 1 || o.hold_time = 2 then Error "unacceptable hold time"
  else if Asn.equal o.asn t.config.local_asn && not (Ipv4.equal o.router_id t.config.router_id)
  then Ok `Ibgp
  else if Asn.equal o.asn t.config.local_asn then Error "router-id collision"
  else Ok `Ebgp

let handle t msg =
  match (t.state, msg) with
  | Idle, _ -> () (* discard; transport should be down *)
  | (Connect | Active), Message.Open o -> (
    (* Passive side: respond with our OPEN then confirm. *)
    match validate_open t o with
    | Error e ->
      t.cb.send
        (Message.Notification
           { code = Message.Error.open_message; subcode = 0; reason = e });
      close t e
    | Ok _ ->
      t.peer_open <- Some o;
      t.cb.send (my_open t);
      t.cb.send Message.Keepalive;
      set_state t Open_confirm)
  | (Connect | Active), _ -> fsm_error t "message before OPEN"
  | Open_sent, Message.Open o -> (
    match validate_open t o with
    | Error e ->
      t.cb.send
        (Message.Notification
           { code = Message.Error.open_message; subcode = 0; reason = e });
      close t e
    | Ok _ ->
      t.peer_open <- Some o;
      t.cb.send Message.Keepalive;
      set_state t Open_confirm)
  | Open_sent, Message.Notification n -> close t n.reason
  | Open_sent, (Message.Update _ | Message.Keepalive) ->
    fsm_error t "update/keepalive"
  | Open_confirm, Message.Keepalive -> enter_established t
  | Open_confirm, Message.Notification n -> close t n.reason
  | Open_confirm, Message.Open _ -> fsm_error t "second OPEN"
  | Open_confirm, Message.Update _ -> fsm_error t "early UPDATE"
  | Established, Message.Update u ->
    touch_hold t;
    Metrics.Counter.inc m_updates_rx;
    if Sink.active () then
      Sink.emit ~time:(Engine.now t.engine) ~subsystem:"bgp.session"
        (Peering_obs.Event.Update_rx
           { peer = peer_label t;
             announced = List.length u.Message.nlri;
             withdrawn = List.length u.Message.withdrawn
           });
    t.cb.on_update u
  | Established, Message.Keepalive ->
    Metrics.Counter.inc m_keepalives_rx;
    touch_hold t
  | Established, Message.Notification n ->
    Metrics.Counter.inc m_notifications_rx;
    close t n.reason
  | Established, Message.Open _ -> fsm_error t "OPEN while established"
