open Peering_net
module Metrics = Peering_obs.Metrics

let m_announces =
  Metrics.counter ~help:"routes offered to Adj-RIB-In" "bgp.rib.announces"

let m_withdraws =
  Metrics.counter ~help:"withdrawals applied to Adj-RIB-In" "bgp.rib.withdraws"

let m_loc_changes =
  Metrics.counter ~help:"Loc-RIB best-route changes" "bgp.rib.loc_changes"

let m_stale_marked =
  Metrics.counter ~help:"routes marked stale on graceful-restart entry"
    "bgp.rib.stale_marked"

let m_stale_swept =
  Metrics.counter ~help:"stale routes withdrawn after graceful-restart sweep"
    "bgp.rib.stale_swept"

type change = {
  prefix : Prefix.t;
  previous : Route.t option;
  current : Route.t option;
}

module Smap = Map.Make (String)

(* Stale entries are keyed (path_id, prefix-string): RFC 4724 retention
   operates per announced path, and a re-announce of the same path
   refreshes exactly that entry. *)
module Stale_set = Set.Make (struct
  type t = int * string

  let compare = compare
end)

type t = {
  mutable adj_in : Route.t list Prefix_trie.t Smap.t;
  mutable loc : Route.t Prefix_trie.t;
  mutable stale : Stale_set.t Smap.t;
}

let create () =
  { adj_in = Smap.empty; loc = Prefix_trie.empty; stale = Smap.empty }

let stale_key (path_id : int) prefix = (path_id, Prefix.to_string prefix)

let peer_stale t peer =
  Option.value (Smap.find_opt peer t.stale) ~default:Stale_set.empty

let set_peer_stale t peer set =
  if Stale_set.is_empty set then t.stale <- Smap.remove peer t.stale
  else t.stale <- Smap.add peer set t.stale

let clear_stale t ~peer ~path_id prefix =
  let set = peer_stale t peer in
  let key = stale_key path_id prefix in
  if Stale_set.mem key set then set_peer_stale t peer (Stale_set.remove key set)

let stale_count t ~peer = Stale_set.cardinal (peer_stale t peer)

let peer_table t peer =
  match Smap.find_opt peer t.adj_in with
  | Some tbl -> tbl
  | None -> Prefix_trie.empty

let set_peer_table t peer tbl =
  if Prefix_trie.is_empty tbl then t.adj_in <- Smap.remove peer t.adj_in
  else t.adj_in <- Smap.add peer tbl t.adj_in

let all_candidates t prefix =
  Smap.fold
    (fun _peer tbl acc ->
      match Prefix_trie.find prefix tbl with
      | Some routes -> List.rev_append routes acc
      | None -> acc)
    t.adj_in []

let recompute t prefix =
  let previous = Prefix_trie.find prefix t.loc in
  let current = Decision.best (all_candidates t prefix) in
  let changed =
    match (previous, current) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a b)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    Metrics.Counter.inc m_loc_changes;
    (match current with
    | Some r -> t.loc <- Prefix_trie.add prefix r t.loc
    | None -> t.loc <- Prefix_trie.remove prefix t.loc);
    Some { prefix; previous; current }
  end
  else None

let announce t ~peer (route : Route.t) =
  Metrics.Counter.inc m_announces;
  let tbl = peer_table t peer in
  let prefix = route.Route.prefix in
  let existing = Option.value (Prefix_trie.find prefix tbl) ~default:[] in
  let without =
    List.filter (fun (r : Route.t) -> r.path_id <> route.path_id) existing
  in
  set_peer_table t peer (Prefix_trie.add prefix (route :: without) tbl);
  (* A fresh announcement refreshes any stale entry for this path. *)
  clear_stale t ~peer ~path_id:route.Route.path_id prefix;
  recompute t prefix

let withdraw t ~peer ?(path_id = 0) prefix =
  Metrics.Counter.inc m_withdraws;
  clear_stale t ~peer ~path_id prefix;
  let tbl = peer_table t peer in
  match Prefix_trie.find prefix tbl with
  | None -> None
  | Some routes ->
    let remaining =
      List.filter (fun (r : Route.t) -> r.path_id <> path_id) routes
    in
    let tbl =
      if remaining = [] then Prefix_trie.remove prefix tbl
      else Prefix_trie.add prefix remaining tbl
    in
    set_peer_table t peer tbl;
    recompute t prefix

let drop_peer t ~peer =
  let tbl = peer_table t peer in
  let prefixes = List.map fst (Prefix_trie.to_list tbl) in
  set_peer_table t peer Prefix_trie.empty;
  set_peer_stale t peer Stale_set.empty;
  List.filter_map (recompute t) prefixes

let mark_stale t ~peer =
  let tbl = peer_table t peer in
  let set =
    Prefix_trie.fold
      (fun prefix routes acc ->
        List.fold_left
          (fun acc (r : Route.t) ->
            Stale_set.add (stale_key r.path_id prefix) acc)
          acc routes)
      tbl Stale_set.empty
  in
  set_peer_stale t peer set;
  let n = Stale_set.cardinal set in
  Metrics.Counter.add m_stale_marked n;
  n

let sweep_stale t ~peer =
  let set = peer_stale t peer in
  set_peer_stale t peer Stale_set.empty;
  Metrics.Counter.add m_stale_swept (Stale_set.cardinal set);
  (* Remove every still-stale (path, prefix) from the Adj-RIB-In, then
     recompute each affected prefix once, in address order. *)
  let entries = Prefix_trie.to_list (peer_table t peer) in
  let tbl, touched =
    List.fold_left
      (fun (tbl_acc, touched) (prefix, routes) ->
        let keep =
          List.filter
            (fun (r : Route.t) ->
              not (Stale_set.mem (stale_key r.path_id prefix) set))
            routes
        in
        if List.length keep = List.length routes then (tbl_acc, touched)
        else
          let tbl_acc =
            if keep = [] then Prefix_trie.remove prefix tbl_acc
            else Prefix_trie.add prefix keep tbl_acc
          in
          (tbl_acc, prefix :: touched))
      (peer_table t peer, [])
      entries
  in
  set_peer_table t peer tbl;
  List.filter_map (recompute t) (List.rev touched)

let peers t = List.map fst (Smap.bindings t.adj_in)
let best t prefix = Prefix_trie.find prefix t.loc
let candidates t prefix = Decision.sort (all_candidates t prefix)

let lookup t addr =
  Option.map snd (Prefix_trie.longest_match addr t.loc)

let fold_best f t acc = Prefix_trie.fold f t.loc acc
let best_routes t = Prefix_trie.to_list t.loc
let prefix_count t = Prefix_trie.cardinal t.loc

let route_count t =
  Smap.fold
    (fun _ tbl acc ->
      Prefix_trie.fold (fun _ routes n -> n + List.length routes) tbl acc)
    t.adj_in 0

let peer_route_count t ~peer =
  Prefix_trie.fold
    (fun _ routes n -> n + List.length routes)
    (peer_table t peer) 0
