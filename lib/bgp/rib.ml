open Peering_net
module Metrics = Peering_obs.Metrics

let m_announces =
  Metrics.counter ~help:"routes offered to Adj-RIB-In" "bgp.rib.announces"

let m_withdraws =
  Metrics.counter ~help:"withdrawals applied to Adj-RIB-In" "bgp.rib.withdraws"

let m_loc_changes =
  Metrics.counter ~help:"Loc-RIB best-route changes" "bgp.rib.loc_changes"

type change = {
  prefix : Prefix.t;
  previous : Route.t option;
  current : Route.t option;
}

module Smap = Map.Make (String)

type t = {
  mutable adj_in : Route.t list Prefix_trie.t Smap.t;
  mutable loc : Route.t Prefix_trie.t;
}

let create () = { adj_in = Smap.empty; loc = Prefix_trie.empty }

let peer_table t peer =
  match Smap.find_opt peer t.adj_in with
  | Some tbl -> tbl
  | None -> Prefix_trie.empty

let set_peer_table t peer tbl =
  if Prefix_trie.is_empty tbl then t.adj_in <- Smap.remove peer t.adj_in
  else t.adj_in <- Smap.add peer tbl t.adj_in

let all_candidates t prefix =
  Smap.fold
    (fun _peer tbl acc ->
      match Prefix_trie.find prefix tbl with
      | Some routes -> List.rev_append routes acc
      | None -> acc)
    t.adj_in []

let recompute t prefix =
  let previous = Prefix_trie.find prefix t.loc in
  let current = Decision.best (all_candidates t prefix) in
  let changed =
    match (previous, current) with
    | None, None -> false
    | Some a, Some b -> not (Route.equal a b)
    | None, Some _ | Some _, None -> true
  in
  if changed then begin
    Metrics.Counter.inc m_loc_changes;
    (match current with
    | Some r -> t.loc <- Prefix_trie.add prefix r t.loc
    | None -> t.loc <- Prefix_trie.remove prefix t.loc);
    Some { prefix; previous; current }
  end
  else None

let announce t ~peer (route : Route.t) =
  Metrics.Counter.inc m_announces;
  let tbl = peer_table t peer in
  let prefix = route.Route.prefix in
  let existing = Option.value (Prefix_trie.find prefix tbl) ~default:[] in
  let without =
    List.filter (fun (r : Route.t) -> r.path_id <> route.path_id) existing
  in
  set_peer_table t peer (Prefix_trie.add prefix (route :: without) tbl);
  recompute t prefix

let withdraw t ~peer ?(path_id = 0) prefix =
  Metrics.Counter.inc m_withdraws;
  let tbl = peer_table t peer in
  match Prefix_trie.find prefix tbl with
  | None -> None
  | Some routes ->
    let remaining =
      List.filter (fun (r : Route.t) -> r.path_id <> path_id) routes
    in
    let tbl =
      if remaining = [] then Prefix_trie.remove prefix tbl
      else Prefix_trie.add prefix remaining tbl
    in
    set_peer_table t peer tbl;
    recompute t prefix

let drop_peer t ~peer =
  let tbl = peer_table t peer in
  let prefixes = List.map fst (Prefix_trie.to_list tbl) in
  set_peer_table t peer Prefix_trie.empty;
  List.filter_map (recompute t) prefixes

let peers t = List.map fst (Smap.bindings t.adj_in)
let best t prefix = Prefix_trie.find prefix t.loc
let candidates t prefix = Decision.sort (all_candidates t prefix)

let lookup t addr =
  Option.map snd (Prefix_trie.longest_match addr t.loc)

let fold_best f t acc = Prefix_trie.fold f t.loc acc
let best_routes t = Prefix_trie.to_list t.loc
let prefix_count t = Prefix_trie.cardinal t.loc

let route_count t =
  Smap.fold
    (fun _ tbl acc ->
      Prefix_trie.fold (fun _ routes n -> n + List.length routes) tbl acc)
    t.adj_in 0

let peer_route_count t ~peer =
  Prefix_trie.fold
    (fun _ routes n -> n + List.length routes)
    (peer_table t peer) 0
