open Peering_net
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink
module Span = Peering_obs.Span

let m_wire_messages =
  Metrics.counter ~help:"BGP messages placed on the wire" "bgp.wire.messages"

let m_wire_bytes =
  Metrics.counter ~help:"BGP message bytes placed on the wire" "bgp.wire.bytes"

let m_updates_tx =
  Metrics.counter ~help:"UPDATE messages transmitted" "bgp.session.updates_tx"

let m_decode_errors =
  Metrics.counter ~help:"messages that failed wire decoding at the receiver"
    "bgp.wire.decode_errors"

type wire_fault = Drop | Duplicate | Corrupt | Delay of float

type endpoint = { fsm : Fsm.t; addr : Ipv4.t }

type t = {
  engine : Engine.t;
  latency : float;
  mutable a : endpoint;
  mutable b : endpoint;
  mutable bytes : int;
  mutable messages : int;
  mutable fault_hook : (Message.t -> wire_fault option) option;
}

let set_fault_hook t hook = t.fault_hook <- hook

(* Encode with the sender's negotiated options (default before
   negotiation), deliver the bytes after [latency], decode with the
   receiver's options. *)
let transmit t ~(sender : unit -> Fsm.t) ~(receiver : unit -> Fsm.t) msg =
  let opts =
    Option.value (Fsm.negotiated (sender ())) ~default:Wire.default_opts
  in
  let bytes = Wire.encode opts msg in
  t.bytes <- t.bytes + Bytes.length bytes;
  t.messages <- t.messages + 1;
  Metrics.Counter.inc m_wire_messages;
  Metrics.Counter.add m_wire_bytes (Bytes.length bytes);
  (* A wire UPDATE is one of the traced entry points: a fresh root span
     when nothing caused it, a child when an announcement export (or
     another ambient span) did. The span stays open across the wire and
     is finished when the receiver consumes the bytes, so its duration
     is the wire latency in virtual time. *)
  let sp =
    match msg with
    | Message.Update _ when Span.enabled () ->
      Some
        (Span.start ~time:(Engine.now t.engine) "bgp.session.update"
           ~attrs:[ ("peer", Fsm.peer_label (sender ())) ])
    | _ -> None
  in
  let finish_sp fate =
    match sp with
    | None -> ()
    | Some s ->
      Span.finish s ~time:(Engine.now t.engine) ~attrs:[ ("fate", fate) ]
  in
  (match msg with
  | Message.Update u ->
    Metrics.Counter.inc m_updates_tx;
    if Sink.active () then
      Sink.emit
        ?span:(Option.map Span.context sp)
        ~time:(Engine.now t.engine) ~subsystem:"bgp.session"
        (Peering_obs.Event.Update_tx
           { peer = Fsm.peer_label (sender ());
             announced = List.length u.Message.nlri;
             withdrawn = List.length u.Message.withdrawn
           })
  | Message.Open _ | Message.Keepalive | Message.Notification _ -> ());
  let deliver ?(extra = 0.0) bytes =
    let schedule () =
      Engine.schedule t.engine ~delay:(t.latency +. extra) (fun () ->
          let rx = receiver () in
          let opts =
            Option.value (Fsm.negotiated rx) ~default:Wire.default_opts
          in
          (match Wire.decode opts bytes ~pos:0 with
          | Ok (msg, _) -> Fsm.handle rx msg
          | Error e ->
            Metrics.Counter.inc m_decode_errors;
            Fsm.handle_garbage rx
              ~reason:("wire decode failed: " ^ Wire.error_to_string e));
          (* Idempotent: a duplicated UPDATE finishes on its first
             delivery and the second is a no-op. *)
          finish_sp "delivered")
    in
    (* Run the scheduling under the UPDATE's span so the engine captures
       it and the receive-side processing stays on this causal path. *)
    match sp with
    | None -> schedule ()
    | Some s -> Span.with_current (Some (Span.context s)) schedule
  in
  match t.fault_hook with
  | None -> deliver bytes
  | Some hook -> (
    match hook msg with
    | None -> deliver bytes
    | Some Drop -> finish_sp "dropped"
    | Some Duplicate ->
      deliver bytes;
      deliver bytes
    | Some (Delay extra) -> deliver ~extra bytes
    | Some Corrupt ->
      (* Smash the marker so the receiver sees unparseable bytes no
         matter which message type was in flight. *)
      let corrupted = Bytes.copy bytes in
      if Bytes.length corrupted > 0 then
        Bytes.set corrupted 0
          (Char.chr (Char.code (Bytes.get corrupted 0) lxor 0xFF));
      deliver corrupted)

let nop_established (_ : Wire.session_opts) = ()
let nop_update (_ : Message.update) = ()
let nop_close (_ : string) = ()

let create engine ?(latency = 0.01) ~a:(cfg_a, addr_a) ~b:(cfg_b, addr_b)
    ?(on_update_a = nop_update) ?(on_update_b = nop_update)
    ?(on_established_a = nop_established) ?(on_established_b = nop_established)
    ?(on_close_a = nop_close) ?(on_close_b = nop_close) () =
  (* The wire callbacks read [session.a]/[session.b] at transmit time,
     so we can seed the record with a placeholder FSM and patch the
     real ones in before anything runs. *)
  let placeholder =
    Fsm.create engine cfg_a
      { Fsm.send = (fun _ -> ());
        on_established = nop_established;
        on_update = nop_update;
        on_close = nop_close
      }
  in
  let session =
    { engine;
      latency;
      a = { fsm = placeholder; addr = addr_a };
      b = { fsm = placeholder; addr = addr_b };
      bytes = 0;
      messages = 0;
      fault_hook = None
    }
  in
  let fsm_a =
    Fsm.create engine
      { cfg_a with Fsm.passive = false }
      { Fsm.send =
          (fun m ->
            transmit session
              ~sender:(fun () -> session.a.fsm)
              ~receiver:(fun () -> session.b.fsm)
              m);
        on_established = on_established_a;
        on_update = on_update_a;
        on_close = on_close_a
      }
  in
  let fsm_b =
    Fsm.create engine
      { cfg_b with Fsm.passive = true }
      { Fsm.send =
          (fun m ->
            transmit session
              ~sender:(fun () -> session.b.fsm)
              ~receiver:(fun () -> session.a.fsm)
              m);
        on_established = on_established_b;
        on_update = on_update_b;
        on_close = on_close_b
      }
  in
  session.a <- { fsm = fsm_a; addr = addr_a };
  session.b <- { fsm = fsm_b; addr = addr_b };
  session

let start t =
  Fsm.start t.b.fsm;
  Fsm.start t.a.fsm

let a t = t.a
let b t = t.b

let established t =
  Fsm.state t.a.fsm = Fsm.Established && Fsm.state t.b.fsm = Fsm.Established

let send_from_a t msg =
  transmit t ~sender:(fun () -> t.a.fsm) ~receiver:(fun () -> t.b.fsm) msg

let send_from_b t msg =
  transmit t ~sender:(fun () -> t.b.fsm) ~receiver:(fun () -> t.a.fsm) msg

let bytes_on_wire t = t.bytes
let messages_on_wire t = t.messages
let drop t ~reason = Fsm.stop t.a.fsm ~reason

let reset t ~reason =
  (* Transport-level reset: both FSMs lose the connection at once and
     neither gets a NOTIFICATION on the wire. *)
  Fsm.kill t.a.fsm ~reason;
  Fsm.kill t.b.fsm ~reason
