open Peering_net
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink
module Span = Peering_obs.Span

let m_packets =
  Metrics.counter ~help:"packets carried through tunnels"
    "dataplane.tunnel.packets"

let m_bytes =
  Metrics.counter ~help:"bytes carried through tunnels" "dataplane.tunnel.bytes"

let m_blackholed =
  Metrics.counter ~help:"packets silently dropped by blackholed tunnels"
    "dataplane.tunnel.blackholed_packets"

(* Round-trip estimate per forwarded packet: twice the one-way transit
   the packet actually experienced in virtual time. Rendered with
   p50/p90/p99 by [peering_cli stats] like every histogram. *)
let m_rtt =
  Metrics.histogram ~help:"tunnel round-trip time estimate (virtual s)"
    "dataplane.tunnel.rtt_s"

type t = {
  fwd : Forwarder.t;
  engine : Engine.t;
  latency : float;
  a : Forwarder.node_id;
  b : Forwarder.node_id;
  via_a : Forwarder.node_id;  (* virtual node: entrance at [a] *)
  via_b : Forwarder.node_id;
  mutable up : bool;
  mutable blackhole : bool;
  mutable bytes : int;
  mutable packets : int;
}

let counter = ref 0

let establish fwd engine ?(latency = 0.02) ~a ~b () =
  incr counter;
  let tag = Printf.sprintf "tun%d" !counter in
  let via_a = Printf.sprintf "%s@%s" tag a in
  let via_b = Printf.sprintf "%s@%s" tag b in
  let t =
    { fwd; engine; latency; a; b; via_a; via_b; up = true; blackhole = false;
      bytes = 0; packets = 0 }
  in
  (* The virtual entrance nodes deliver everything locally, then we
     re-inject at the far end. *)
  let make_entrance entrance far =
    Forwarder.add_node fwd entrance;
    Forwarder.set_route fwd entrance (Prefix.make (Ipv4.of_int 0) 0) Fib.Local;
    Forwarder.on_deliver fwd entrance (fun pkt ->
        if t.blackhole then
          (* Blackhole fault: the FIB still points into the tunnel, so
             packets keep arriving — and vanish. That silent loss is
             exactly what the fault models. *)
          Metrics.Counter.inc m_blackholed
        else if t.up then begin
          let entered = Engine.now engine in
          t.bytes <- t.bytes + pkt.Packet.size;
          t.packets <- t.packets + 1;
          Metrics.Counter.inc m_packets;
          Metrics.Counter.add m_bytes pkt.Packet.size;
          (* The forward span stays open across the scheduled transit,
             so its duration is the tunnel latency in virtual time. *)
          let sp =
            if Span.enabled () then
              Some
                (Span.start ~time:entered "dataplane.tunnel.forward"
                   ~attrs:
                     [ ("tunnel", tag);
                       ("bytes", string_of_int pkt.Packet.size) ])
            else None
          in
          if Sink.active () then
            Sink.emit
              ?span:(Option.map Span.context sp)
              ~time:entered ~level:Peering_obs.Event.Debug
              ~subsystem:"dataplane.tunnel"
              (Peering_obs.Event.Tunnel_forward
                 { tunnel = tag; bytes = pkt.Packet.size });
          let deliver () =
            Engine.schedule engine ~delay:t.latency (fun () ->
                Forwarder.inject fwd ~at:far pkt;
                let now = Engine.now engine in
                Metrics.Histogram.observe m_rtt ((now -. entered) *. 2.0);
                match sp with
                | None -> ()
                | Some s -> Span.finish s ~time:now)
          in
          match sp with
          | None -> deliver ()
          | Some s -> Span.with_current (Some (Span.context s)) deliver
        end)
  in
  make_entrance via_a b;
  make_entrance via_b a;
  t

let a t = t.a
let b t = t.b

let send t ~from pkt =
  if not t.up then invalid_arg "Tunnel.send: tunnel is down";
  let entrance =
    if from = t.a then t.via_a
    else if from = t.b then t.via_b
    else invalid_arg "Tunnel.send: not an endpoint"
  in
  Forwarder.inject t.fwd ~at:entrance pkt

let route_via t ~at prefix =
  let entrance =
    if at = t.a then t.via_a
    else if at = t.b then t.via_b
    else invalid_arg "Tunnel.route_via: not an endpoint"
  in
  Forwarder.set_route t.fwd at prefix (Fib.Via entrance);
  (* Tunnel entry is instantaneous (same host). *)
  Forwarder.set_link_latency t.fwd at entrance 0.0

let tear_down t = t.up <- false
let is_up t = t.up
let set_blackhole t on = t.blackhole <- on
let blackholed t = t.blackhole
let bytes_carried t = t.bytes
let packets_carried t = t.packets
