(** OpenVPN-style tunnels.

    PEERING servers forward traffic to and from clients through
    tunnels (paper §3, "Controlling traffic"). A tunnel joins two
    forwarder nodes across arbitrary topology distance, with its own
    latency and byte accounting; packets entering one end pop out at
    the other without consuming TTL (encapsulation). *)

open Peering_net

type t

val establish :
  Forwarder.t ->
  Peering_sim.Engine.t ->
  ?latency:float ->
  a:Forwarder.node_id ->
  b:Forwarder.node_id ->
  unit ->
  t
(** Create a tunnel between nodes [a] and [b] (default latency
    0.02 s). Use {!route_via} to steer prefixes into it. *)

val a : t -> Forwarder.node_id
val b : t -> Forwarder.node_id

val send : t -> from:Forwarder.node_id -> Packet.t -> unit
(** Encapsulate a packet at one end; it is re-processed by the
    forwarder at the far end after the tunnel latency. Raises
    [Invalid_argument] if [from] is neither endpoint, or the tunnel is
    down. *)

val route_via : t -> at:Forwarder.node_id -> Prefix.t -> unit
(** Install a FIB entry at endpoint [at] that sends the prefix into
    the tunnel. (Implemented with a per-tunnel virtual node, so the
    forwarding path stays uniform.) *)

val tear_down : t -> unit

val set_blackhole : t -> bool -> unit
(** Fault injection: while set, packets entering the tunnel are
    silently dropped (and counted) instead of delivered — the FIB
    still steers traffic in, which is what makes the loss silent. *)

val blackholed : t -> bool

val is_up : t -> bool
val bytes_carried : t -> int
val packets_carried : t -> int
