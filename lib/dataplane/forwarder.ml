open Peering_net
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics

let m_delivered =
  Metrics.counter ~help:"packets delivered to their destination node"
    "dataplane.forwarder.delivered"

let m_dropped =
  Metrics.counter ~help:"packets dropped (TTL, no-route, filter, blackhole)"
    "dataplane.forwarder.dropped"

let m_hops =
  Metrics.counter ~help:"router-to-router hops traversed"
    "dataplane.forwarder.hops"

type node_id = string

type node = {
  id : node_id;
  mutable addresses : Ipv4.t list;
  mutable fib : node_id Fib.t;
  mutable ingress : (Packet.t -> bool) option;
  mutable deliver : (Packet.t -> unit) option;
}

type t = {
  engine : Engine.t;
  nodes : (node_id, node) Hashtbl.t;
  mutable addr_index : node_id Prefix.Map.t;  (* host /32s -> node *)
  latencies : (node_id * node_id, float) Hashtbl.t;
  mutable delivered : int;
  mutable dropped_ttl : int;
  mutable dropped_no_route : int;
  mutable dropped_filtered : int;
  mutable dropped_blackhole : int;
  mutable hops : int;
}

let default_latency = 0.005

let create engine =
  { engine;
    nodes = Hashtbl.create 64;
    addr_index = Prefix.Map.empty;
    latencies = Hashtbl.create 64;
    delivered = 0;
    dropped_ttl = 0;
    dropped_no_route = 0;
    dropped_filtered = 0;
    dropped_blackhole = 0;
    hops = 0
  }

let add_node t id =
  if not (Hashtbl.mem t.nodes id) then
    Hashtbl.replace t.nodes id
      { id; addresses = []; fib = Fib.empty; ingress = None; deliver = None }

let node_exn t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Forwarder: unknown node %s" id)

let add_address t id addr =
  let n = node_exn t id in
  n.addresses <- n.addresses @ [ addr ];
  t.addr_index <- Prefix.Map.add (Prefix.make addr 32) id t.addr_index

let node_of_address t addr =
  Prefix.Map.find_opt (Prefix.make addr 32) t.addr_index

let addresses t id = (node_exn t id).addresses

let primary_address_of_node n =
  match n.addresses with a :: _ -> Some a | [] -> None

let primary_address t id = primary_address_of_node (node_exn t id)

let get_deliver t id = (node_exn t id).deliver

let set_link_latency t a b latency =
  Hashtbl.replace t.latencies (a, b) latency;
  Hashtbl.replace t.latencies (b, a) latency

let latency t a b =
  Option.value (Hashtbl.find_opt t.latencies (a, b)) ~default:default_latency

let set_route t id prefix action =
  let n = node_exn t id in
  n.fib <- Fib.add prefix action n.fib

let del_route t id prefix =
  let n = node_exn t id in
  n.fib <- Fib.remove prefix n.fib

let fib t id = (node_exn t id).fib

let set_ingress_filter t id f = (node_exn t id).ingress <- Some f
let on_deliver t id f = (node_exn t id).deliver <- Some f

(* [router] is false only when the node originated the packet itself
   (hosts do not decrement their own TTL); a transiting node
   decrements before forwarding, and local delivery never expires. *)
let rec process t (node : node) ~router (pkt : Packet.t) =
  match Fib.lookup pkt.Packet.dst node.fib with
  | None ->
    t.dropped_no_route <- t.dropped_no_route + 1;
    Metrics.Counter.inc m_dropped
  | Some Fib.Blackhole ->
    t.dropped_blackhole <- t.dropped_blackhole + 1;
    Metrics.Counter.inc m_dropped
  | Some Fib.Unreachable -> begin
    t.dropped_no_route <- t.dropped_no_route + 1;
    Metrics.Counter.inc m_dropped;
    icmp_back t node pkt
      (Packet.Dest_unreachable
         { original_dst = pkt.Packet.dst; original_id = pkt.Packet.id })
  end
  | Some Fib.Local -> begin
    t.delivered <- t.delivered + 1;
    Metrics.Counter.inc m_delivered;
    match node.deliver with Some f -> f pkt | None -> ()
  end
  | Some (Fib.Via next) -> (
    let forwarded = if router then Packet.decrement_ttl pkt else Some pkt in
    match forwarded with
    | None ->
      t.dropped_ttl <- t.dropped_ttl + 1;
      Metrics.Counter.inc m_dropped;
      icmp_back t node pkt
        (Packet.Ttl_exceeded
           { original_dst = pkt.Packet.dst; original_id = pkt.Packet.id })
    | Some pkt ->
      t.hops <- t.hops + 1;
      Metrics.Counter.inc m_hops;
      let next_node = node_exn t next in
      let delay = latency t node.id next in
      Engine.schedule t.engine ~delay (fun () -> arrive t next_node pkt))

and arrive t node pkt =
  match node.ingress with
  | Some f when not (f pkt) ->
    t.dropped_filtered <- t.dropped_filtered + 1;
    Metrics.Counter.inc m_dropped
  | Some _ | None -> process t node ~router:true pkt

and icmp_back t (node : node) (orig : Packet.t) icmp =
  (* ICMP about ICMP errors is never generated (RFC 1122). *)
  match orig.Packet.proto with
  | Packet.Icmp (Packet.Ttl_exceeded _ | Packet.Dest_unreachable _) -> ()
  | Packet.Icmp (Packet.Echo_request _ | Packet.Echo_reply _)
  | Packet.Udp _ | Packet.Tcp _ -> (
    match primary_address_of_node node with
    | None -> ()
    | Some src ->
      let reply =
        Packet.make ~src ~dst:orig.Packet.src ~proto:(Packet.Icmp icmp) ()
      in
      process t node ~router:false reply)

let inject t ~at pkt = process t (node_exn t at) ~router:false pkt

let send_and_reply t ~at pkt =
  (match pkt.Packet.proto with
  | Packet.Icmp (Packet.Echo_request seq) -> (
    (* Arm an automatic responder at the destination if it is ours and
       has no handler already. *)
    match node_of_address t pkt.Packet.dst with
    | Some dst_id ->
      let dst_node = node_exn t dst_id in
      if dst_node.deliver = None then
        dst_node.deliver <-
          Some
            (fun (p : Packet.t) ->
              match p.Packet.proto with
              | Packet.Icmp (Packet.Echo_request s) when s = seq ->
                let reply =
                  Packet.make ~src:p.Packet.dst ~dst:p.Packet.src
                    ~proto:(Packet.Icmp (Packet.Echo_reply s)) ()
                in
                process t dst_node ~router:false reply
              | _ -> ())
    | None -> ())
  | _ -> ());
  inject t ~at pkt

let delivered t = t.delivered
let dropped_ttl t = t.dropped_ttl
let dropped_no_route t = t.dropped_no_route
let dropped_filtered t = t.dropped_filtered
let dropped_blackhole t = t.dropped_blackhole
let hops_forwarded t = t.hops
