(** A PEERING server ("mux").

    The server holds the real BGP sessions with upstream transit
    providers and IXP peers, but deliberately runs {e no} route
    selection: every route from every peer is relayed to every hosted
    client, and each client independently decides what to announce,
    to which peers, and which routes to use (paper §3). The server's
    jobs are relaying, bookkeeping, and safety.

    Two session-multiplexing models are supported, matching the
    paper's Quagga-vs-BIRD discussion: [Per_peer_sessions] gives each
    client one BGP session per upstream peer (Quagga, current
    deployment), while [Add_path_mux] multiplexes all peers' routes
    over a single ADD-PATH session per client (planned BIRD
    deployment). The relayed state is identical; {!session_stats}
    exposes the cost difference (ablation A2). *)

open Peering_net
open Peering_bgp

type mux_mode = Per_peer_sessions | Add_path_mux

type peer_kind =
  | Transit  (** a university-site upstream provider *)
  | Ixp_peer  (** bilateral peer at an IXP *)
  | Route_server_peer  (** reached via an IXP route server *)

type peer = {
  peer_asn : Asn.t;
  kind : peer_kind;
  addr : Ipv4.t;
}

(** What the server asks the outside world to do — the testbed wires
    this into the simulated Internet. *)
type export_event =
  | Export_announce of {
      client : string;
      prefix : Prefix.t;
      path_suffix : Asn.t list;  (** sanitized; after the PEERING ASN *)
      peers : Asn.Set.t;  (** which upstream peers receive it *)
    }
  | Export_withdraw of { client : string; prefix : Prefix.t }

type client_callbacks = {
  route_update : peer:Asn.t -> Route.t -> unit;
  route_withdraw : peer:Asn.t -> Prefix.t -> unit;
}

type t

val create :
  Peering_sim.Engine.t ->
  name:string ->
  asn:Asn.t ->
  safety:Safety.t ->
  ?mux:mux_mode ->
  export:(export_event -> unit) ->
  unit ->
  t

val name : t -> string
val asn : t -> Asn.t
val mux_mode : t -> mux_mode

val add_peer : t -> kind:peer_kind -> ?addr:Ipv4.t -> Asn.t -> unit
(** Register an upstream peer (default address derived from the ASN).
    Duplicates raise [Invalid_argument]. *)

val peers : t -> peer list
val peer_asns : t -> Asn.t list
val n_peers : t -> int

val connect_client :
  t -> experiment:Experiment.t -> ?callbacks:client_callbacks -> string -> unit
(** Attach a client by id. Current peer-learned routes are replayed to
    it immediately. *)

val disconnect_client : t -> string -> unit
(** Withdraw everything the client announced and drop it. *)

val clients : t -> string list
val n_clients : t -> int

val announce :
  t ->
  client:string ->
  ?peers:Asn.t list ->
  ?path_suffix:Asn.t list ->
  Prefix.t ->
  (unit, Safety.reason) result
(** Announce a prefix on behalf of the client. [peers] restricts which
    upstream peers hear it (default: all); [path_suffix] carries
    prepending/poisoning/emulated-domain ASNs (private ASNs are
    stripped before export). Everything passes through {!Safety}. *)

val withdraw : t -> client:string -> Prefix.t -> unit

val announced_prefixes : t -> client:string -> Prefix.t list

val learn_route : t -> peer:Asn.t -> path:Asn.t list -> Prefix.t -> unit
(** The testbed feeds routes the server hears from an upstream peer;
    they are relayed (per-peer, unselected) to every client. *)

val withdraw_learned : t -> peer:Asn.t -> Prefix.t -> unit

val learned_route_count : t -> int
val routes_from_peer : t -> Asn.t -> int

val is_up : t -> bool
(** False between {!crash} and {!restart}. *)

val crash : t -> unit
(** Fault injection: the mux's BGP process dies. Learned routes are
    lost, {!announce} returns [Mux_down], and learn/withdraw traffic is
    ignored until {!restart}. Client registrations and the safety
    registry survive (they live in the controller). *)

val restart : t -> unit
(** Bring a crashed mux back: records the downtime histogram and
    re-issues every client's surviving announcements (failover) so
    upstream Adj-RIBs-Out resynchronize without client involvement.
    Re-exports run under [core.server.export] spans (site, client and
    prefix attributes), so when a fault injector crashes the mux the
    recovery traffic lands in the fault's causal trace. Peer-learned
    routes must be re-fed by the testbed. *)

val set_status_hook : t -> (bool -> unit) option -> unit
(** Install an observer called with [false] on {!crash} and [true] on
    {!restart} (before failover re-exports). The testbed uses it to
    mark the mux's site unreachable in the simulated Internet while
    the BGP process is down. *)

val set_bmp_sink : t -> (bytes -> unit) option -> unit
(** Attach (or detach) the live telemetry feed: every session and
    Adj-RIB-In change is pushed to the sink as one encoded
    {!Peering_bgp.Bmp} message.  On attach the server state-syncs like
    a BMP speaker greeting a station (RFC 7854 §3.3) — Initiation,
    Peer Up per peer, the current Adj-RIB-In as Route Monitoring, a
    Stats Report per peer — so attachment order doesn't affect what
    the station reconstructs.  Thereafter: {!learn_route} emits a
    Route Monitoring announce stamped with the route's [learned_at],
    {!withdraw_learned} a withdraw, {!crash} a Peer Down (reason 2)
    per peer plus Termination, {!restart} a fresh Initiation and Peer
    Ups, and every 100th table change a Stats Report.  The sink takes
    bytes, not messages, so consumers (lib/measure) need no dependency
    on this module. *)

val emit_bmp_stats : t -> unit
(** Push one Stats Report per peer (stat 7, routes in Adj-RIB-In) to
    the BMP sink now.  No-op while crashed or with no sink. *)

val adj_rib_dump : t -> (int * (Prefix.t * Peering_bgp.Route.t) list) list
(** Canonical Adj-RIB-In snapshot: [(peer ASN, sorted bindings)]
    sorted by ASN, empty per-peer tables dropped, [learned_at]
    truncated to the microsecond precision the BMP wire carries
    ({!Peering_bgp.Bmp.canon_time}).  {!Peering_measure.Monitor}
    produces the identical structure from the feed alone. *)

val rib_digest : t -> string
(** Hex Marshal digest of {!adj_rib_dump} — the live side of the
    [@bmp-diff] byte-identity check. *)

type session_stats = {
  mode : mux_mode;
  n_peers : int;
  n_clients : int;
  peer_sessions : int;  (** server <-> upstream sessions *)
  client_sessions : int;  (** server <-> client sessions *)
  total_sessions : int;
  est_memory_bytes : int;  (** session state, modelled *)
  keepalives_per_hour : int;
}

val session_stats : t -> session_stats
(** The A2 ablation's measurement: session counts and their cost under
    the current {!mux_mode}. *)
