open Peering_net
open Peering_topo
open Peering_ixp
module Engine = Peering_sim.Engine
module Rng = Peering_sim.Rng
module Collector = Peering_measure.Collector

let peering_asn = Asn.of_int 47065
let peering_supply = Prefix.of_string_exn "184.164.224.0/19"

type params = {
  world : Gen.params;
  seed : int;
  university_sites : (string * int) list;
  with_amsix : bool;
  with_phoenix : bool;
  bilateral_requests : bool;
  domains : int option;
}

let default_params =
  { world = Gen.default_params;
    seed = 7;
    university_sites = [ ("gatech01", 2); ("usc01", 2); ("ufmg01", 2) ];
    with_amsix = true;
    with_phoenix = true;
    bilateral_requests = true;
    domains = None
  }

type site = {
  s_name : string;
  s_asn : Asn.t;  (* this site's node in the AS graph *)
  s_server : Server.t;
  s_fabric : Fabric.t option;
}

let site_name s = s.s_name
let site_server s = s.s_server
let site_asn s = s.s_asn
let site_fabric s = s.s_fabric

(* One announcement source: a (site, client) export or an external
   injection. *)
type source =
  | From_site of { site : string; client : string }
  | External of Asn.t

type active_ann = {
  src : source;
  ann : Propagation.announcement;
}

type t = {
  eng : Engine.t;
  w : Gen.world;
  ctl : Controller.t;
  saf : Safety.t;
  col : Collector.t;
  mutable site_list : site list;
  mutable active : active_ann list Prefix.Map.t;
  mutable results : Propagation.result Prefix.Map.t;
  mutable down : Asn.Set.t;
  mutable leaks : (Asn.t * Asn.t) list;
  mutable rov : (Peering_bgp.Rpki.t * Asn.Set.t) option;
  mutable monitor_rounds : int;
  domains : int option;
}

let engine t = t.eng
let world t = t.w
let graph t = t.w.Gen.graph
let controller t = t.ctl
let safety t = t.saf
let collector t = t.col
let sites t = t.site_list

let site t name = List.find_opt (fun s -> s.s_name = name) t.site_list

let site_exn t name =
  match site t name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Testbed: unknown site %s" name)

let peers_at t name = Server.peer_asns (site_exn t name).s_server

let all_peers t =
  List.concat_map (fun s -> Server.peer_asns s.s_server) t.site_list
  |> List.sort_uniq Asn.compare

(* ------------------------------------------------------------------ *)
(* Propagation plumbing *)

(* The BGP-visible origin of an announcement: the tail of any fake
   path suffix, else the announcing node (site nodes fold to the
   public PEERING ASN). *)
let perceived_origin t (ann : Propagation.announcement) =
  match List.rev ann.Propagation.path_suffix with
  | last :: _ -> last
  | [] ->
    if List.exists (fun s -> Asn.equal s.s_asn ann.Propagation.origin) t.site_list
    then peering_asn
    else ann.Propagation.origin

let rov_deny t =
  match t.rov with
  | None -> None
  | Some (roas, adopters) ->
    Some
      (fun asn (ann : Propagation.announcement) ->
        Asn.Set.mem asn adopters
        && Peering_bgp.Rpki.validate roas ~prefix:ann.Propagation.prefix
             ~origin:(Some (perceived_origin t ann))
           = Peering_bgp.Rpki.Invalid)

let repropagate t prefix =
  match Prefix.Map.find_opt prefix t.active with
  | None | Some [] ->
    t.results <- Prefix.Map.remove prefix t.results;
    t.active <- Prefix.Map.remove prefix t.active
  | Some anns ->
    let anns = List.map (fun a -> a.ann) anns in
    let result =
      match t.leaks with
      | [] ->
        Propagation.propagate ?deny:(rov_deny t) ~down:t.down
          ?domains:t.domains (graph t) anns
      | leaks ->
        (* Active route leaks break valley-freeness, so the general
           fixpoint engine takes over until the leaks are cleared. *)
        let leak u v =
          List.exists
            (fun (a, b) -> Asn.equal a u && Asn.equal b v)
            leaks
        in
        Propagation.propagate_general ?deny:(rov_deny t) ~down:t.down ~leak
          (graph t) anns
    in
    t.results <- Prefix.Map.add prefix result t.results

let repropagate_all t =
  Prefix.Map.iter (fun prefix _ -> repropagate t prefix) t.active

let set_down t asn down =
  t.down <-
    (if down then Asn.Set.add asn t.down else Asn.Set.remove asn t.down);
  repropagate_all t

let set_leak_edges t edges =
  t.leaks <- edges;
  repropagate_all t

let leak_edges t = t.leaks

let result_for t prefix = Prefix.Map.find_opt prefix t.results

let route_from t asn prefix =
  match result_for t prefix with
  | None -> None
  | Some r -> Propagation.route_at r asn

let reach_count t prefix =
  match result_for t prefix with
  | None -> 0
  | Some r -> Propagation.reachable_count r

let canonical_path t path =
  let is_site a = List.exists (fun s -> Asn.equal s.s_asn a) t.site_list in
  let rec dedup = function
    | a :: b :: rest when Asn.equal a b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup (List.map (fun a -> if is_site a then peering_asn else a) path)

let path_from t asn prefix =
  match result_for t prefix with
  | None -> None
  | Some r ->
    Option.map (canonical_path t) (Propagation.full_path r asn)

(* ------------------------------------------------------------------ *)
(* Server export wiring *)

let source_matches a b =
  match (a, b) with
  | From_site x, From_site y -> x.site = y.site && x.client = y.client
  | External x, External y -> Asn.equal x y
  | From_site _, External _ | External _, From_site _ -> false

let remove_active t prefix src =
  let anns = Option.value (Prefix.Map.find_opt prefix t.active) ~default:[] in
  let anns = List.filter (fun a -> not (source_matches a.src src)) anns in
  t.active <-
    (if anns = [] then Prefix.Map.remove prefix t.active
     else Prefix.Map.add prefix anns t.active);
  repropagate t prefix

let add_active t prefix src ann =
  let anns = Option.value (Prefix.Map.find_opt prefix t.active) ~default:[] in
  let anns =
    List.filter (fun a -> not (source_matches a.src src)) anns
    @ [ { src; ann } ]
  in
  t.active <- Prefix.Map.add prefix anns t.active;
  repropagate t prefix

let handle_export t site_name site_asn event =
  match event with
  | Server.Export_announce { client; prefix; path_suffix; peers } ->
    let ann =
      Propagation.announce ~path_suffix ~export_to:peers site_asn prefix
    in
    add_active t prefix (From_site { site = site_name; client }) ann;
    Asn.Set.iter
      (fun peer ->
        Collector.record t.col ~time:(Engine.now t.eng) ~peer ~prefix
          ~path:(peering_asn :: path_suffix)
          Collector.Announce)
      peers
  | Server.Export_withdraw { client; prefix } ->
    remove_active t prefix (From_site { site = site_name; client });
    Collector.record t.col ~time:(Engine.now t.eng) ~peer:peering_asn ~prefix
      ~path:[] Collector.Withdraw

(* ------------------------------------------------------------------ *)
(* Build *)

let phoenix_calibration =
  { Amsix.n_members = 150;
    n_route_server = 110;
    n_open = 20;
    n_closed = 4;
    n_case_by_case = 10;
    n_unlisted = 6
  }

let build ?(params = default_params) () =
  let eng = Engine.create ~seed:params.seed () in
  let rng = Engine.rng eng in
  let w = Gen.generate { params.world with Gen.seed = params.seed } in
  let g = w.Gen.graph in
  let ctl =
    Controller.create eng ~supply:[ peering_supply ] ~alloc_len:24 ()
  in
  let saf =
    Safety.create ~peering_asn ~owns:(fun p -> Controller.owns ctl p) ()
  in
  let col = Collector.create () in
  let t =
    { eng;
      w;
      ctl;
      saf;
      col;
      site_list = [];
      active = Prefix.Map.empty;
      results = Prefix.Map.empty;
      down = Asn.Set.empty;
      leaks = [];
      rov = None;
      monitor_rounds = 0;
      domains = params.domains
    }
  in
  let next_site_idx = ref 0 in
  let add_site name ~fabric ~mk_peers =
    let idx = !next_site_idx in
    incr next_site_idx;
    (* First site uses the public ASN; later sites use per-site nodes
       folded back by [canonical_path]. *)
    let s_asn =
      if idx = 0 then peering_asn else Asn.of_int (4706500 + idx)
    in
    As_graph.add_as g ~name:(Printf.sprintf "PEERING-%s" name)
      ~kind:As_graph.Enterprise s_asn;
    let server =
      Server.create eng ~name ~asn:peering_asn ~safety:saf
        ~export:(fun ev ->
          (* resolved lazily so the handler sees the final record *)
          handle_export t name s_asn ev)
        ()
    in
    let site = { s_name = name; s_asn; s_server = server; s_fabric = fabric } in
    (* A crashed mux takes its site's graph node down with it: nothing
       propagates through a PoP whose BGP process is dead. *)
    Server.set_status_hook server (Some (fun up -> set_down t s_asn (not up)));
    t.site_list <- t.site_list @ [ site ];
    mk_peers site;
    site
  in
  (* AMS-IX site. *)
  if params.with_amsix then begin
    let fabric = Amsix.build ~rng:(Rng.split rng) w in
    ignore
      (add_site "amsterdam01" ~fabric:(Some fabric) ~mk_peers:(fun site ->
           (* Multilateral peers via the route server. *)
           List.iter
             (fun m ->
               Server.add_peer site.s_server ~kind:Server.Route_server_peer m;
               As_graph.add_edge g site.s_asn Relationship.Peer m)
             (Fabric.route_server_users fabric);
           (* Bilateral requests to the non-RS members. *)
           if params.bilateral_requests then
             List.iter
               (fun (m : Fabric.member) ->
                 match Fabric.request_peering fabric ~target:m.Fabric.asn with
                 | Fabric.Accepted ->
                   Server.add_peer site.s_server ~kind:Server.Ixp_peer
                     m.Fabric.asn;
                   As_graph.add_edge g site.s_asn Relationship.Peer
                     m.Fabric.asn
                 | Fabric.Declined | Fabric.No_response
                 | Fabric.Replied_with_questions ->
                   ())
               (Fabric.non_route_server_members fabric)))
  end;
  (* University sites: transit providers drawn from the world. *)
  let transit_pool = Array.of_list (Gen.all_transit w) in
  List.iter
    (fun (name, n_providers) ->
      ignore
        (add_site name ~fabric:None ~mk_peers:(fun site ->
             let chosen = Hashtbl.create 4 in
             while Hashtbl.length chosen < n_providers do
               let p = Rng.choice rng transit_pool in
               if not (Hashtbl.mem chosen (Asn.to_int p)) then
                 Hashtbl.replace chosen (Asn.to_int p) p
             done;
             Hashtbl.iter
               (fun _ p ->
                 Server.add_peer site.s_server ~kind:Server.Transit p;
                 (* The university upstream is PEERING's provider. *)
                 As_graph.add_edge g p Relationship.Customer site.s_asn)
               chosen)))
    params.university_sites;
  (* Phoenix-IX (added September 2014). *)
  if params.with_phoenix then begin
    let fabric =
      Amsix.build ~calibration:phoenix_calibration ~rng:(Rng.split rng) w
    in
    ignore
      (add_site "phoenix01" ~fabric:(Some fabric) ~mk_peers:(fun site ->
           List.iter
             (fun m ->
               if not (List.exists (Asn.equal m) (Server.peer_asns site.s_server))
               then begin
                 Server.add_peer site.s_server ~kind:Server.Route_server_peer m;
                 As_graph.add_edge g site.s_asn Relationship.Peer m
               end)
             (Fabric.route_server_users fabric)))
  end;
  t

(* ------------------------------------------------------------------ *)
(* Experiments and clients *)

let experiment_counter = ref 0

let new_experiment t ~id ?(owner = "researcher") ?description ?(n_prefixes = 1)
    ?(may_poison = false) () =
  incr experiment_counter;
  let description =
    Option.value description
      ~default:
        (Printf.sprintf
           "experiment %s: interdomain routing study with controlled announcements"
           id)
  in
  match
    Controller.propose t.ctl ~id ~owner ~description ~n_prefixes ~may_poison ()
  with
  | Error e -> Error e
  | Ok e ->
    Controller.activate t.ctl e;
    Ok e

let connect_client t client ~sites:names =
  List.iter
    (fun name -> Client.connect client (site_exn t name).s_server)
    names

(* ------------------------------------------------------------------ *)
(* External injections and failures *)

let inject_external t ~origin ?(path_suffix = []) prefix =
  let ann = Propagation.announce ~path_suffix origin prefix in
  add_active t prefix (External origin) ann

let retract_external t ~origin prefix =
  remove_active t prefix (External origin)

let set_rov t ~roas ~adopters =
  t.rov <- Some (roas, adopters);
  repropagate_all t

let clear_rov t =
  t.rov <- None;
  repropagate_all t

(* ------------------------------------------------------------------ *)
(* Traffic questions *)

let site_of_graph_asn t asn =
  List.find_opt (fun s -> Asn.equal s.s_asn asn) t.site_list

let ingress_info t ~from_asn prefix =
  match result_for t prefix with
  | None -> None
  | Some r -> (
    match Propagation.full_path r from_asn with
    | None -> None
    | Some path -> (
      (* Walk to the terminal AS; if it is a PEERING site node, the
         hop before it is the ingress peer. *)
      match List.rev path with
      | last :: prev :: _ ->
        (match site_of_graph_asn t last with
        | Some site -> Some (site, Some prev)
        | None -> None)
      | [ last ] ->
        (match site_of_graph_asn t last with
        | Some site -> Some (site, None)
        | None -> None)
      | [] -> None))

let ingress_site t ~from_asn prefix =
  Option.map (fun (s, _) -> s.s_name) (ingress_info t ~from_asn prefix)

let ingress_peer t ~from_asn prefix =
  Option.bind (ingress_info t ~from_asn prefix) snd

(* ------------------------------------------------------------------ *)
(* Automatic measurement collection *)

let default_vantages t =
  let stubs = Array.of_list t.w.Gen.stubs in
  let n = Array.length stubs in
  if n = 0 then []
  else List.init (min 16 n) (fun i -> stubs.(i * (n / min 16 n)))

let start_monitoring t ?vantages ~interval ~rounds () =
  let vantages = Option.value vantages ~default:(default_vantages t) in
  let rec round remaining () =
    if remaining > 0 then begin
      Prefix.Map.iter
        (fun prefix result ->
          List.iter
            (fun vantage ->
              match Propagation.full_path result vantage with
              | Some path ->
                Collector.record t.col ~time:(Engine.now t.eng) ~peer:vantage
                  ~prefix ~path:(canonical_path t path) Collector.Announce
              | None ->
                Collector.record t.col ~time:(Engine.now t.eng) ~peer:vantage
                  ~prefix ~path:[] Collector.Withdraw)
            vantages)
        t.results;
      t.monitor_rounds <- t.monitor_rounds + 1;
      Engine.schedule t.eng ~delay:interval (round (remaining - 1))
    end
  in
  Engine.schedule t.eng ~delay:interval (round rounds)

let monitoring_rounds_completed t = t.monitor_rounds

(* ------------------------------------------------------------------ *)
(* Remote peering *)

let small_ixp_calibration =
  { Amsix.n_members = 120;
    n_route_server = 90;
    n_open = 15;
    n_closed = 3;
    n_case_by_case = 8;
    n_unlisted = 4
  }

let add_remote_ixp t ~via ~name ?(calibration = small_ixp_calibration) () =
  let s = site_exn t via in
  let fabric =
    Fabric.create ~name ~country:Country.nl
      ~rng:(Rng.split (Engine.rng t.eng))
      ()
  in
  (* Populate with the same member model as a real IXP build, but at
     the smaller calibration, then peer over the virtual L2. *)
  let tmp = Amsix.build ~calibration ~rng:(Rng.split (Engine.rng t.eng)) t.w in
  List.iter
    (fun (m : Fabric.member) ->
      Fabric.add_member fabric ~uses_route_server:m.Fabric.uses_route_server
        ~policy:m.Fabric.policy m.Fabric.asn)
    (Fabric.members tmp);
  let existing = Asn.Set.of_list (Server.peer_asns s.s_server) in
  List.iter
    (fun peer ->
      if
        (not (Asn.Set.mem peer existing))
        && not (Asn.equal peer s.s_asn)
      then begin
        Server.add_peer s.s_server ~kind:Server.Route_server_peer peer;
        As_graph.add_edge (graph t) s.s_asn Relationship.Peer peer
      end)
    (Fabric.route_server_users fabric);
  fabric

(* ------------------------------------------------------------------ *)
(* Feeding peer routes to clients *)

let feed_peer_routes t ~site:name ?(max_per_peer = 200) () =
  let s = site_exn t name in
  let fed = ref 0 in
  List.iter
    (fun (p : Server.peer) ->
      let peer = p.Server.peer_asn in
      let cone = Customer_cone.cone (graph t) peer in
      let budget = ref max_per_peer in
      (try
         Asn.Set.iter
           (fun origin ->
             List.iter
               (fun prefix ->
                 if !budget <= 0 then raise Exit;
                 let path =
                   if Asn.equal origin peer then [ peer ] else [ peer; origin ]
                 in
                 Server.learn_route s.s_server ~peer ~path prefix;
                 incr fed;
                 decr budget)
               (As_graph.prefixes_of (graph t) origin))
           cone
       with Exit -> ()))
    (Server.peers s.s_server);
  !fed
