open Peering_net
module Engine = Peering_sim.Engine
module Update_group = Peering_bgp.Update_group
module Attrs = Peering_bgp.Attrs
module As_path = Peering_bgp.As_path
module Metrics = Peering_obs.Metrics
module Span = Peering_obs.Span
module Json = Peering_obs.Json

(* ------------------------------------------------------------------ *)
(* Metrics *)

let m_admitted =
  Metrics.counter ~help:"proposals admitted by the scheduler"
    "core.sched.admitted"

let m_rejected =
  Metrics.counter ~help:"proposals rejected at admission control"
    "core.sched.rejected"

let m_evicted =
  Metrics.counter ~help:"tenants evicted (lease expiry or revocation)"
    "core.sched.evicted"

let m_completed =
  Metrics.counter ~help:"tenants that completed voluntarily"
    "core.sched.completed"

let m_conflicts =
  Metrics.counter ~help:"admission-control conflict issues raised"
    "core.sched.conflicts"

let m_ops_enqueued =
  Metrics.counter ~help:"update requests queued by tenants"
    "core.sched.ops_enqueued"

let m_ops_applied =
  Metrics.counter ~help:"update operations applied by batching rounds"
    "core.sched.ops_applied"

let m_ops_dropped =
  Metrics.counter ~help:"queued update requests dropped by eviction"
    "core.sched.ops_dropped"

let m_op_failures =
  Metrics.counter ~help:"per-site apply failures (safety refusals, mux down)"
    "core.sched.op_failures"

let m_rounds =
  Metrics.counter ~help:"fair-share batching rounds executed"
    "core.sched.rounds"

let m_update_msgs =
  Metrics.counter
    ~help:"RFC 4271 UPDATE messages the granted operations pack into"
    "core.sched.update_msgs"

let m_policy_accepted =
  Metrics.counter ~help:"policy rules accepted by the composition pass"
    "core.sched.policy_rules_accepted"

let m_policy_rejected =
  Metrics.counter ~help:"policy rules rejected by the composition pass"
    "core.sched.policy_rules_rejected"

let m_occupancy =
  Metrics.gauge ~help:"prefix blocks currently out on lease"
    "core.sched.lease_occupancy"

let m_tenant_slots =
  Metrics.Family.histogram
    ~help:"update slots granted to the tenant per batching round"
    "core.sched.tenant_slots"

let m_convergence =
  Metrics.histogram
    ~help:"virtual s from update request to its granted application"
    "core.sched.convergence_s"

(* ------------------------------------------------------------------ *)
(* Fair-share batcher *)

module Batcher = struct
  type 'a tenant_q = { tq_id : string; tq_ops : 'a Queue.t }

  type 'a t = {
    b_quota : int;
    mutable b_order : 'a tenant_q list;  (* first-seen order *)
    mutable b_pending : int;
  }

  let create ~quota =
    if quota <= 0 then invalid_arg "Scheduler.Batcher.create: quota must be > 0";
    { b_quota = quota; b_order = []; b_pending = 0 }

  let quota b = b.b_quota

  let find b tenant = List.find_opt (fun q -> q.tq_id = tenant) b.b_order

  let enqueue b ~tenant op =
    let q =
      match find b tenant with
      | Some q -> q
      | None ->
        let q = { tq_id = tenant; tq_ops = Queue.create () } in
        b.b_order <- b.b_order @ [ q ];
        q
    in
    Queue.add op q.tq_ops;
    b.b_pending <- b.b_pending + 1

  let pending b = b.b_pending

  let pending_for b tenant =
    match find b tenant with Some q -> Queue.length q.tq_ops | None -> 0

  let tenants b = List.map (fun q -> q.tq_id) b.b_order

  let drop_tenant b tenant =
    match find b tenant with
    | None -> 0
    | Some q ->
      let n = Queue.length q.tq_ops in
      b.b_order <- List.filter (fun q' -> q' != q) b.b_order;
      b.b_pending <- b.b_pending - n;
      n

  let drain_round b =
    List.filter_map
      (fun q ->
        let n = min b.b_quota (Queue.length q.tq_ops) in
        if n = 0 then None
        else begin
          let ops = List.init n (fun _ -> Queue.pop q.tq_ops) in
          b.b_pending <- b.b_pending - n;
          Some (q.tq_id, ops)
        end)
      b.b_order

  let drain_all b =
    let rec go acc =
      match drain_round b with [] -> List.rev acc | r -> go (r :: acc)
    in
    go []
end

(* ------------------------------------------------------------------ *)
(* Proposals, issues, verdicts *)

type proposal = {
  p_tenant : string;
  p_owner : string;
  p_description : string;
  p_n_prefixes : int;
  p_may_poison : bool;
  p_poison_targets : Asn.t list;
  p_sites : string list;
  p_lease_s : float option;
}

let proposal ?(owner = "scheduler") ?description ?(n_prefixes = 1)
    ?(may_poison = false) ?(poison_targets = []) ?(sites = []) ?lease_s tenant =
  let description =
    match description with
    | Some d -> d
    | None ->
      Printf.sprintf "scheduled multi-tenant experiment %s (admission test)"
        tenant
  in
  { p_tenant = tenant;
    p_owner = owner;
    p_description = description;
    p_n_prefixes = n_prefixes;
    p_may_poison = may_poison;
    p_poison_targets = poison_targets;
    p_sites = sites;
    p_lease_s = lease_s
  }

type issue = {
  issue_code : string;
  issue_severity : [ `Error | `Warning ];
  issue_message : string;
}

type candidate = {
  cand_tenant : string;
  cand_experiment : Experiment.t;
  cand_poison_targets : Asn.t list;
}

type vet = candidate list -> issue list

type verdict = Admitted of { lease_until : float } | Rejected of issue list

let verdict_to_string = function
  | Admitted { lease_until } ->
    Printf.sprintf "admitted until t=%.1f" lease_until
  | Rejected issues ->
    Printf.sprintf "rejected: %s"
      (String.concat ", "
         (List.map (fun i -> i.issue_code) issues))

let error code fmt =
  Printf.ksprintf
    (fun m -> { issue_code = code; issue_severity = `Error; issue_message = m })
    fmt

(* ------------------------------------------------------------------ *)
(* Update operations *)

type op_kind =
  | Op_announce of { path_suffix : Asn.t list }
  | Op_withdraw

type op = {
  op_prefix : Prefix.t;
  op_kind : op_kind;
  op_sites : string list;
  op_enqueued : float;
}

type tenant_state = {
  ten_id : string;
  ten_experiment : Experiment.t;
  ten_client : Client.t;
  ten_sites : string list;
  ten_poison : Asn.t list;  (* declared poison targets *)
  mutable ten_lease_until : float;
  mutable ten_lease_gen : int;  (* renewal invalidates scheduled expiry *)
  mutable ten_policy : (Prefix.t * [ `Deliver_via of string | `Drop ]) list;
  mutable ten_granted : int;  (* update slots granted so far *)
}

type t = {
  tb : Testbed.t;
  eng : Engine.t;
  vet : vet option;
  default_lease_s : float;
  round_interval : float;
  batcher : op Batcher.t;
  mutable running : tenant_state list;  (* admission order *)
  mutable finished : (string * string) list;  (* tenant, disposition; newest first *)
  mutable round_scheduled : bool;
  mutable rounds : int;
  mutable applied : int;
  mutable log_rev : string list;
}

let all_site_names tb = List.map Testbed.site_name (Testbed.sites tb)

let logf t fmt =
  Printf.ksprintf (fun s -> t.log_rev <- s :: t.log_rev) fmt

let now t = Engine.now t.eng

let create ?vet ?(quota = 4) ?(default_lease_s = 3600.0)
    ?(round_interval = 1.0) ?(extra_supply = []) tb =
  let ctl = Testbed.controller tb in
  List.iter (Controller.donate_supply ctl) extra_supply;
  { tb;
    eng = Testbed.engine tb;
    vet;
    default_lease_s;
    round_interval;
    batcher = Batcher.create ~quota;
    running = [];
    finished = [];
    round_scheduled = false;
    rounds = 0;
    applied = 0;
    log_rev = []
  }

let find_tenant t id = List.find_opt (fun s -> s.ten_id = id) t.running
let is_running t id = find_tenant t id <> None
let tenants t = List.map (fun s -> s.ten_id) t.running

let leased_prefixes t id =
  match find_tenant t id with
  | Some s -> s.ten_experiment.Experiment.prefixes
  | None -> []

let lease_until t id =
  match find_tenant t id with Some s -> Some s.ten_lease_until | None -> None

let client t id =
  match find_tenant t id with Some s -> Some s.ten_client | None -> None

let occupancy t =
  List.fold_left
    (fun acc s -> acc + List.length s.ten_experiment.Experiment.prefixes)
    0 t.running

let set_occupancy t =
  Metrics.Gauge.set m_occupancy (float_of_int (occupancy t))

(* ------------------------------------------------------------------ *)
(* Admission control *)

(* Structural conflict checks against every running tenant: the same
   ground the XEXP passes cover, restated here so admission is safe
   even without a [Peering_check.Admission.vet] hook installed (the
   check library depends on this one, so the full spec passes arrive
   by injection, not by a direct call). *)
let native_conflicts t (cand : candidate) =
  let issues = ref [] in
  let emit i = issues := i :: !issues in
  let cand_prefixes = cand.cand_experiment.Experiment.prefixes in
  (* Declared poison targets must be poisonable at all. *)
  if
    (not cand.cand_experiment.Experiment.may_poison)
    && List.exists (fun a -> not (Asn.is_private a)) cand.cand_poison_targets
  then
    emit
      (error "SCHED-POISON"
         "tenant %s declares public poison targets without poisoning approval"
         cand.cand_tenant);
  List.iter
    (fun other ->
      let oexp = other.ten_experiment in
      (* Overlapping leases: should be impossible while leases come
         from one pool, but a donated-supply mistake must not slip
         through to the muxes. *)
      List.iter
        (fun p ->
          List.iter
            (fun q ->
              if Prefix.overlaps p q then
                emit
                  (error "SCHED-XOVERLAP"
                     "tenant %s prefix %s overlaps %s leased by tenant %s"
                     cand.cand_tenant (Prefix.to_string p) (Prefix.to_string q)
                     other.ten_id))
            oexp.Experiment.prefixes)
        cand_prefixes;
      (* Poisoning a live tenant's origin ASN withdraws its routes
         from the poisoned AS's viewpoint — sabotage, even if the
         poisoning itself was vetted (XEXP-POISON, hardened to an
         admission error). *)
      List.iter
        (fun a ->
          if List.exists (Asn.equal a) oexp.Experiment.private_asns then
            emit
              (error "SCHED-XPOISON"
                 "tenant %s poison target %s is tenant %s's origin ASN"
                 cand.cand_tenant (Asn.to_string a) other.ten_id))
        cand.cand_poison_targets;
      (* ... and symmetrically: an incoming tenant whose origin ASN a
         running tenant already poisons would be born sabotaged. *)
      List.iter
        (fun a ->
          if
            List.exists (Asn.equal a)
              cand.cand_experiment.Experiment.private_asns
          then
            emit
              (error "SCHED-XPOISON"
                 "tenant %s's origin ASN %s is a poison target of tenant %s"
                 cand.cand_tenant (Asn.to_string a) other.ten_id))
        other.ten_poison)
    t.running;
  List.rev !issues

let candidates_of t (cand : candidate) =
  List.map
    (fun s ->
      { cand_tenant = s.ten_id;
        cand_experiment = s.ten_experiment;
        cand_poison_targets = s.ten_poison
      })
    t.running
  @ [ cand ]

let rec ensure_round_scheduled t =
  if (not t.round_scheduled) && Batcher.pending t.batcher > 0 then begin
    t.round_scheduled <- true;
    Engine.schedule t.eng ~delay:t.round_interval (fun () ->
        t.round_scheduled <- false;
        run_round t;
        ensure_round_scheduled t)
  end

and run_round t =
  let at = now t in
  let grants = Batcher.drain_round t.batcher in
  if grants <> [] then begin
    t.rounds <- t.rounds + 1;
    Metrics.Counter.inc m_rounds;
    let msgs = ref 0 in
    let summaries =
      List.map
        (fun (tenant, ops) ->
          let n = List.length ops in
          (match find_tenant t tenant with
          | None ->
            (* Evicted between enqueue and grant: requests die with
               the lease. *)
            Metrics.Counter.add m_ops_dropped n
          | Some s ->
            s.ten_granted <- s.ten_granted + n;
            Metrics.Histogram.observe
              (Metrics.Family.get m_tenant_slots [ ("tenant", tenant) ])
              (float_of_int n);
            let announces = ref [] in
            let withdraws = ref [] in
            List.iter
              (fun op ->
                Metrics.Histogram.observe m_convergence (at -. op.op_enqueued);
                (match op.op_kind with
                | Op_announce { path_suffix } ->
                  announces :=
                    (op.op_prefix, path_suffix) :: !announces;
                  List.iter
                    (fun (_site, r) ->
                      match r with
                      | Ok () -> ()
                      | Error _ -> Metrics.Counter.inc m_op_failures)
                    (Client.announce s.ten_client ~servers:op.op_sites
                       ~path_suffix op.op_prefix)
                | Op_withdraw ->
                  withdraws := op.op_prefix :: !withdraws;
                  Client.withdraw s.ten_client ~servers:op.op_sites
                    op.op_prefix);
                t.applied <- t.applied + 1;
                Metrics.Counter.inc m_ops_applied)
              ops;
            (* How many RFC 4271 UPDATEs the tenant's grant packs
               into: prefixes sharing a path suffix share attributes
               and therefore a message (Update_group). *)
            let next_hop = Ipv4.of_octets 10 0 0 1 in
            let attrs_of suffix =
              Attrs.make
                ~as_path:
                  (As_path.of_asns (Testbed.peering_asn :: suffix))
                ~next_hop ()
            in
            let nlri =
              List.rev_map (fun (p, sfx) -> (p, attrs_of sfx)) !announces
            in
            msgs := !msgs + Update_group.message_count nlri;
            if !withdraws <> [] then
              msgs :=
                !msgs
                + List.length
                    (Update_group.group_withdrawals (List.rev !withdraws)));
          Printf.sprintf "%s=%d" tenant n)
        grants
    in
    Metrics.Counter.add m_update_msgs !msgs;
    logf t "t=%.1f round %d: %s (%d msgs)" at t.rounds
      (String.concat " " summaries)
      !msgs
  end

(* ------------------------------------------------------------------ *)

let teardown t s ~disposition ~reason =
  let at = now t in
  let dropped = Batcher.drop_tenant t.batcher s.ten_id in
  if dropped > 0 then Metrics.Counter.add m_ops_dropped dropped;
  let prefixes = s.ten_experiment.Experiment.prefixes in
  (* Disconnecting withdraws everything the client announced (the
     server releases the claims); release the rest of the lease
     explicitly in case a prefix was never announced. *)
  List.iter
    (fun site ->
      match Testbed.site t.tb site with
      | Some st -> Client.disconnect s.ten_client (Testbed.site_server st)
      | None -> ())
    s.ten_sites;
  let safety = Testbed.safety t.tb in
  List.iter
    (fun p -> ignore (Safety.release safety ~client:s.ten_id ~prefix:p))
    prefixes;
  Controller.stop (Testbed.controller t.tb) s.ten_experiment;
  t.running <- List.filter (fun s' -> s' != s) t.running;
  t.finished <- (s.ten_id, disposition) :: t.finished;
  set_occupancy t;
  logf t "t=%.1f %s %s: %s (%d blocks back to pool, %d queued ops dropped)"
    at disposition s.ten_id reason (List.length prefixes) dropped

let evict t ~tenant ~reason =
  match find_tenant t tenant with
  | None -> false
  | Some s ->
    Metrics.Counter.inc m_evicted;
    teardown t s ~disposition:"evict" ~reason;
    true

let complete t ~tenant =
  match find_tenant t tenant with
  | None -> false
  | Some s ->
    Metrics.Counter.inc m_completed;
    teardown t s ~disposition:"complete" ~reason:"experiment finished";
    true

let schedule_expiry t s =
  let gen = s.ten_lease_gen in
  let delay = s.ten_lease_until -. now t in
  Engine.schedule t.eng ~delay:(Float.max 0.0 delay) (fun () ->
      match find_tenant t s.ten_id with
      | Some s' when s' == s && s.ten_lease_gen = gen ->
        ignore (evict t ~tenant:s.ten_id ~reason:"lease expired")
      | Some _ | None -> ())

let renew t ~tenant ~lease_s =
  match find_tenant t tenant with
  | None -> Error (Printf.sprintf "tenant %s is not running" tenant)
  | Some s ->
    s.ten_lease_until <- now t +. lease_s;
    s.ten_lease_gen <- s.ten_lease_gen + 1;
    schedule_expiry t s;
    logf t "t=%.1f renew %s: lease until t=%.1f" (now t) tenant
      s.ten_lease_until;
    Ok s.ten_lease_until

let admit_inner t p =
  let sites = if p.p_sites = [] then all_site_names t.tb else p.p_sites in
  let unknown =
    List.filter (fun s -> Testbed.site t.tb s = None) sites
  in
  if unknown <> [] then
    Rejected
      [ error "SCHED-SITE" "unknown site(s): %s" (String.concat ", " unknown) ]
  else if is_running t p.p_tenant then
    Rejected [ error "SCHED-DUP" "tenant %s is already running" p.p_tenant ]
  else
    match
      Testbed.new_experiment t.tb ~id:p.p_tenant ~owner:p.p_owner
        ~description:p.p_description ~n_prefixes:p.p_n_prefixes
        ~may_poison:p.p_may_poison ()
    with
    | Error msg -> Rejected [ error "SCHED-PROPOSE" "%s" msg ]
    | Ok exp -> (
      let cand =
        { cand_tenant = p.p_tenant;
          cand_experiment = exp;
          cand_poison_targets = p.p_poison_targets
        }
      in
      let issues =
        native_conflicts t cand
        @
        match t.vet with
        | None -> []
        | Some vet -> vet (candidates_of t cand)
      in
      let errors = List.filter (fun i -> i.issue_severity = `Error) issues in
      if issues <> [] then
        Metrics.Counter.add m_conflicts (List.length issues);
      if errors <> [] then begin
        (* Give the allocation back: a rejected proposal must leave
           no trace in the pool. *)
        Controller.stop (Testbed.controller t.tb) exp;
        Rejected issues
      end
      else begin
        let lease_s =
          Option.value p.p_lease_s ~default:t.default_lease_s
        in
        let cl = Client.create ~id:p.p_tenant ~experiment:exp () in
        Testbed.connect_client t.tb cl ~sites;
        let s =
          { ten_id = p.p_tenant;
            ten_experiment = exp;
            ten_client = cl;
            ten_sites = sites;
            ten_poison = p.p_poison_targets;
            ten_lease_until = now t +. lease_s;
            ten_lease_gen = 0;
            ten_policy = [];
            ten_granted = 0
          }
        in
        t.running <- t.running @ [ s ];
        set_occupancy t;
        schedule_expiry t s;
        Admitted { lease_until = s.ten_lease_until }
      end)

let admit t p =
  let at = now t in
  let run () =
    let verdict = admit_inner t p in
    (match verdict with
    | Admitted _ -> Metrics.Counter.inc m_admitted
    | Rejected _ -> Metrics.Counter.inc m_rejected);
    logf t "t=%.1f admit %s [%d pfx%s%s]: %s" at p.p_tenant p.p_n_prefixes
      (if p.p_may_poison then ", may-poison" else "")
      (match p.p_poison_targets with
      | [] -> ""
      | l ->
        Printf.sprintf ", poisons %s"
          (String.concat "+" (List.map Asn.to_string l)))
      (verdict_to_string verdict);
    verdict
  in
  if not (Span.enabled ()) then run ()
  else begin
    let sp =
      Span.start ~time:at "core.sched.admit"
        ~attrs:[ ("tenant", p.p_tenant) ]
    in
    let verdict = Span.with_current (Some (Span.context sp)) run in
    Span.finish sp ~time:(now t)
      ~attrs:[ ("verdict", verdict_to_string verdict) ];
    verdict
  end

(* ------------------------------------------------------------------ *)
(* Update requests *)

let request t ~tenant ?sites kind prefix =
  match find_tenant t tenant with
  | None -> Error (Printf.sprintf "tenant %s is not running" tenant)
  | Some s ->
    if not (Experiment.owns_prefix s.ten_experiment prefix) then
      Error
        (Printf.sprintf "prefix %s is outside tenant %s's lease"
           (Prefix.to_string prefix) tenant)
    else begin
      let sites = Option.value sites ~default:s.ten_sites in
      Batcher.enqueue t.batcher ~tenant
        { op_prefix = prefix;
          op_kind = kind;
          op_sites = sites;
          op_enqueued = now t
        };
      Metrics.Counter.inc m_ops_enqueued;
      ensure_round_scheduled t;
      Ok ()
    end

let request_announce t ~tenant ?sites ?(path_suffix = []) prefix =
  request t ~tenant ?sites (Op_announce { path_suffix }) prefix

let request_withdraw t ~tenant ?sites prefix =
  request t ~tenant ?sites Op_withdraw prefix

let pending t = Batcher.pending t.batcher

let pump t =
  let before = t.applied in
  while Batcher.pending t.batcher > 0 do
    run_round t
  done;
  t.applied - before

let rounds_run t = t.rounds
let ops_applied t = t.applied

(* ------------------------------------------------------------------ *)
(* SDX-style policy composition *)

type policy_action = Deliver_via of string | Drop_traffic

type policy_rule = { pol_dst : Prefix.t; pol_action : policy_action }

let set_policy t ~tenant rules =
  match find_tenant t tenant with
  | None ->
    Error [ error "SCHED-POLICY-TENANT" "tenant %s is not running" tenant ]
  | Some s ->
    let lease = s.ten_experiment.Experiment.prefixes in
    let issues =
      List.concat_map
        (fun r ->
          let scope =
            if List.exists (fun p -> Prefix.subsumes p r.pol_dst) lease then []
            else
              match
                List.find_map
                  (fun other ->
                    if other == s then None
                    else if
                      List.exists
                        (fun q -> Prefix.overlaps r.pol_dst q)
                        other.ten_experiment.Experiment.prefixes
                    then Some other.ten_id
                    else None)
                  t.running
              with
              | Some victim ->
                [ error "SCHED-POLICY-ISOLATION"
                    "rule for %s would match traffic of tenant %s"
                    (Prefix.to_string r.pol_dst) victim
                ]
              | None ->
                [ error "SCHED-POLICY-SCOPE"
                    "rule for %s is outside tenant %s's lease"
                    (Prefix.to_string r.pol_dst) tenant
                ]
          in
          let site =
            match r.pol_action with
            | Drop_traffic -> []
            | Deliver_via site ->
              if List.mem site s.ten_sites then []
              else
                [ error "SCHED-POLICY-SITE"
                    "rule for %s delivers via %s, which tenant %s is not \
                     connected to"
                    (Prefix.to_string r.pol_dst) site tenant
                ]
          in
          scope @ site)
        rules
    in
    let at = now t in
    if issues <> [] then begin
      Metrics.Counter.add m_policy_rejected (List.length rules);
      logf t "t=%.1f policy %s: rejected (%s)" at tenant
        (String.concat ", "
           (List.sort_uniq String.compare
              (List.map (fun i -> i.issue_code) issues)));
      Error issues
    end
    else begin
      s.ten_policy <-
        List.map
          (fun r ->
            ( r.pol_dst,
              match r.pol_action with
              | Deliver_via site -> `Deliver_via site
              | Drop_traffic -> `Drop ))
          rules;
      Metrics.Counter.add m_policy_accepted (List.length rules);
      logf t "t=%.1f policy %s: %d rule(s) installed" at tenant
        (List.length rules);
      Ok ()
    end

let policy t tenant =
  match find_tenant t tenant with
  | None -> []
  | Some s ->
    List.map
      (fun (dst, act) ->
        { pol_dst = dst;
          pol_action =
            (match act with
            | `Deliver_via site -> Deliver_via site
            | `Drop -> Drop_traffic)
        })
      s.ten_policy

(* ------------------------------------------------------------------ *)
(* Oracles, logs, reports *)

let isolation_violations t =
  let safety = Testbed.safety t.tb in
  let overlap_pairs = ref 0 in
  let rec pairs = function
    | [] -> ()
    | s :: rest ->
      List.iter
        (fun s' ->
          if
            List.exists
              (fun p ->
                List.exists
                  (fun q -> Prefix.overlaps p q)
                  s'.ten_experiment.Experiment.prefixes)
              s.ten_experiment.Experiment.prefixes
          then incr overlap_pairs)
        rest;
      pairs rest
  in
  pairs t.running;
  let foreign_claims =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc p ->
            match Safety.announced_by safety p with
            | Some c when c <> s.ten_id -> acc + 1
            | Some _ | None -> acc)
          acc s.ten_experiment.Experiment.prefixes)
      0 t.running
  in
  !overlap_pairs + foreign_claims

let log t = List.rev t.log_rev

let to_json t =
  let tenant_json s =
    Json.Obj
      [ ("tenant", Json.String s.ten_id);
        ( "prefixes",
          Json.List
            (List.map
               (fun p -> Json.String (Prefix.to_string p))
               s.ten_experiment.Experiment.prefixes) );
        ("lease_until", Json.Float s.ten_lease_until);
        ("slots_granted", Json.Int s.ten_granted);
        ("pending", Json.Int (Batcher.pending_for t.batcher s.ten_id));
        ("policy_rules", Json.Int (List.length s.ten_policy));
        ( "sites",
          Json.List (List.map (fun x -> Json.String x) s.ten_sites) )
      ]
  in
  Json.Obj
    [ ("schema", Json.String "peering-sched/1");
      ("running", Json.List (List.map tenant_json t.running));
      ( "finished",
        Json.List
          (List.rev_map
             (fun (id, disposition) ->
               Json.Obj
                 [ ("tenant", Json.String id);
                   ("disposition", Json.String disposition)
                 ])
             t.finished) );
      ("rounds", Json.Int t.rounds);
      ("ops_applied", Json.Int t.applied);
      ("pending", Json.Int (Batcher.pending t.batcher));
      ("lease_occupancy", Json.Int (occupancy t));
      ("isolation_violations", Json.Int (isolation_violations t));
      ("log", Json.List (List.map (fun l -> Json.String l) (log t)))
    ]
