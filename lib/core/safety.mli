(** The PEERING safety layer (paper §3, "Enforcing safety").

    Servers interpose on everything clients do, so this is where the
    testbed guarantees it cannot harm the Internet: no hijacks (only
    allocated prefixes may be announced), no leaks (only PEERING's
    public ASN reaches peers unless poisoning was vetted), isolation
    between experiments, and route-flap dampening so flapping clients
    cannot destabilise upstream routing. *)

open Peering_net
open Peering_bgp

type reason =
  | Experiment_not_active
  | Prefix_not_owned  (** outside PEERING's address supply — a hijack *)
  | Prefix_not_allocated
      (** inside PEERING space but not this experiment's — isolation *)
  | Foreign_origin of Asn.t
      (** the announced origin ASN is neither PEERING's nor one of the
          experiment's private ASNs *)
  | Poisoning_not_permitted of Asn.t
      (** public ASN in the path suffix without vetting *)
  | Dampened of float  (** suppressed until the given virtual time *)
  | Announced_by_other_experiment
  | Mux_down
      (** the serving mux has crashed and not yet restarted; retry
          after failover *)

val reason_to_string : reason -> string

type t
(** One safety filter, shared by every server of a testbed: the
    announcement registry (prefix → claiming client), the dampening
    state and the supply test. *)

val create :
  ?dampening:Dampening.params ->
  peering_asn:Asn.t ->
  owns:(Prefix.t -> bool) ->
  unit ->
  t
(** [owns] is the testbed's supply test ({!Peering_net.Prefix_pool.mem_supply}). *)

val check_announce :
  t ->
  now:float ->
  client:string ->
  experiment:Experiment.t ->
  prefix:Prefix.t ->
  path_suffix:Asn.t list ->
  (unit, reason) result
(** Validate (and on success register) a client announcement. A prefix
    whose withdrawals have accumulated too much dampening penalty gets
    [Dampened]. *)

val note_withdraw : t -> now:float -> client:string -> prefix:Prefix.t -> unit
(** Withdrawals count as flaps. *)

type release_outcome =
  | Released  (** the (client, prefix) claim existed and is now gone *)
  | Not_claimed
      (** nothing was registered for the prefix — a double release or
          a release of something never claimed; a no-op *)
  | Claimed_by_other of string
      (** the prefix is registered to the named {e other} client; the
          registration is left untouched (releasing someone else's
          claim would break isolation) *)

val release : t -> client:string -> prefix:Prefix.t -> release_outcome
(** Forget the registration (client disconnect), keeping the
    dampening history. Releases are claim-keyed per (client, prefix):
    only the registering client can release, and the outcome says
    explicitly whether anything was released — double releases and
    releases of unclaimed prefixes return {!Not_claimed} rather than
    silently succeeding. *)

val announced_by : t -> Prefix.t -> string option
(** Which client currently has the prefix announced, if any. *)

val sanitize_suffix : t -> Experiment.t -> Asn.t list -> Asn.t list
(** The path suffix as the Internet will see it: private ASNs
    stripped; with poisoning vetted, public ASNs retained. *)

val suppressed_until : t -> now:float -> client:string -> Prefix.t -> float option
