(** The multi-tenant experiment scheduler (paper §3: "PEERING can
    support multiple simultaneous experiments").

    The scheduler is the admission-controlled path from a
    portal-approved proposal to a running experiment on the shared
    muxes. It layers four guarantees on top of the runtime
    {!Safety} filters:

    - {b Prefix leases}: every admitted tenant holds its allocated
      prefixes on a lease drawn from the controller's pool. Leases
      expire on the virtual clock (revoking the tenant: announcements
      withdrawn, safety claims released, prefixes returned to the
      pool) and can be renewed or revoked early.
    - {b Static admission control}: before a tenant touches a mux,
      its allocation and declared poison targets are checked against
      every running tenant — overlapping prefixes, colliding origin
      ASNs and cross-tenant poisoning are rejected at admission time,
      not at announce time. An optional {!vet} hook lets callers run
      the full [Peering_check.Check.check_specs] XEXP passes over the
      batch (see [Peering_check.Admission]); a built-in structural
      check covers the same conflicts when no hook is installed.
    - {b Fair-share update batching}: announce/withdraw requests are
      queued per tenant and drained in deficit rounds of at most
      [quota] operations each, so a chatty tenant cannot starve
      others of update slots. Within a tenant, requests apply in
      FIFO order; granted operations are packed into RFC 4271 UPDATE
      messages with {!Peering_bgp.Update_group}.
    - {b Policy composition}: SDX-style per-tenant inbound policies
      are admitted only when their composition cannot touch another
      tenant's traffic — every match must stay inside the tenant's
      own lease.

    Admission decisions are span-traced ([core.sched.admit]) and the
    whole lifecycle is counted under [core.sched.*] metrics. Every
    decision also lands in an append-only {!log} whose content is a
    pure function of the seed, which is what the [@sched-isolation]
    harness's byte-identity oracle compares. *)

open Peering_net

(** {1 Fair-share batching}

    The batcher is generic so its fairness laws can be tested in
    isolation (see the QCheck laws in [test_core.ml]): per-tenant
    granted slots never deviate from fair share by more than one
    round's quota, and each tenant's operations drain in FIFO
    order. *)

module Batcher : sig
  type 'a t
  (** A set of per-tenant FIFO queues drained in deficit rounds. *)

  val create : quota:int -> 'a t
  (** [create ~quota] makes an empty batcher granting at most [quota]
      operations per tenant per round. [quota] must be positive. *)

  val quota : 'a t -> int
  (** The per-tenant per-round grant bound. *)

  val enqueue : 'a t -> tenant:string -> 'a -> unit
  (** Append an operation to the tenant's queue. Tenants keep their
      first-seen order across rounds, so draining is deterministic. *)

  val pending : 'a t -> int
  (** Total queued operations across all tenants. *)

  val pending_for : 'a t -> string -> int
  (** Queued operations for one tenant (0 if unknown). *)

  val tenants : 'a t -> string list
  (** Tenants in first-seen order (including ones drained empty). *)

  val drop_tenant : 'a t -> string -> int
  (** Discard a tenant's queue (lease revocation), returning the
      number of operations dropped. *)

  val drain_round : 'a t -> (string * 'a list) list
  (** One deficit round: every tenant with queued work is granted
      [min quota pending] operations, FIFO within the tenant, tenants
      in first-seen order. [[]] iff nothing is pending. *)

  val drain_all : 'a t -> (string * 'a list) list list
  (** Rounds until all queues are empty. *)
end

(** {1 Proposals and verdicts} *)

type proposal = {
  p_tenant : string;  (** tenant id: experiment id and client id *)
  p_owner : string;  (** researcher account, as on the portal *)
  p_description : string;  (** vetted by the controller (≥ 20 chars) *)
  p_n_prefixes : int;  (** prefix blocks to lease from the pool *)
  p_may_poison : bool;  (** AS-path poisoning approved by the board *)
  p_poison_targets : Asn.t list;
      (** public ASNs the experiment plans to poison; checked against
          every other tenant's origin ASNs at admission *)
  p_sites : string list;  (** sites to connect to; [[]] = all sites *)
  p_lease_s : float option;
      (** lease duration in virtual seconds; [None] = the scheduler's
          default *)
}
(** A portal-approved experiment proposal, ready for admission. *)

val proposal :
  ?owner:string ->
  ?description:string ->
  ?n_prefixes:int ->
  ?may_poison:bool ->
  ?poison_targets:Asn.t list ->
  ?sites:string list ->
  ?lease_s:float ->
  string ->
  proposal
(** [proposal tenant] with sensible defaults: 1 prefix, no poisoning,
    all sites, default lease, a description that passes vetting. *)

type issue = {
  issue_code : string;
      (** stable conflict code, e.g. ["SCHED-XOVERLAP"] or an XEXP
          code relayed from the vet hook *)
  issue_severity : [ `Error | `Warning ];
      (** only [`Error] issues reject; warnings ride along in the
          verdict *)
  issue_message : string;  (** human-readable explanation *)
}
(** One admission-control finding. *)

type candidate = {
  cand_tenant : string;  (** tenant id *)
  cand_experiment : Experiment.t;  (** with allocations filled in *)
  cand_poison_targets : Asn.t list;  (** declared poison targets *)
}
(** What a {!vet} hook sees per tenant: running tenants in admission
    order, the candidate last. *)

type vet = candidate list -> issue list
(** A pluggable batch admission check. [Peering_check.Admission.vet]
    adapts {!Peering_check.Check.check_specs} (the XEXP cross-spec
    passes) to this signature; the dependency points that way because
    [peering_check] links against [peering_core]. *)

type verdict =
  | Admitted of { lease_until : float }
      (** running; the lease expires at the given virtual time *)
  | Rejected of issue list
      (** refused; every [`Error] issue is a reason *)
      (** The admission decision for one proposal. *)

val verdict_to_string : verdict -> string
(** One-line rendering, stable across runs ("admitted until t=…" or
    "rejected: CODE, …"). *)

(** {1 The scheduler} *)

type t
(** A scheduler bound to one testbed. *)

val create :
  ?vet:vet ->
  ?quota:int ->
  ?default_lease_s:float ->
  ?round_interval:float ->
  ?extra_supply:Prefix.t list ->
  Testbed.t ->
  t
(** [create tb] binds a scheduler to the testbed. [quota] (default 4)
    is the per-tenant per-round update-slot grant; [default_lease_s]
    (default 3600) the lease for proposals that do not name one;
    [round_interval] (default 1.0) the virtual seconds between
    batching rounds when requests are pending; [extra_supply] donates
    additional address blocks to the controller's pool first (the
    paper's §3 donated prefixes — the default /19 holds only 32 /24
    leases, not enough for 100+ concurrent tenants). *)

val admit : t -> proposal -> verdict
(** Run admission control and, on success, start the tenant: allocate
    its lease from the pool, connect its client to the proposal's
    sites, and schedule lease expiry. Span-traced as
    [core.sched.admit]; counted in [core.sched.admitted] /
    [core.sched.rejected]. A rejected proposal leaves no allocation
    behind. *)

val tenants : t -> string list
(** Running tenants in admission order. *)

val is_running : t -> string -> bool
(** Whether the tenant is currently admitted and not evicted. *)

val leased_prefixes : t -> string -> Prefix.t list
(** The tenant's leased blocks ([[]] if not running). *)

val lease_until : t -> string -> float option
(** Lease expiry time for a running tenant. *)

val client : t -> string -> Client.t option
(** The tenant's client handle, for direct RIB inspection. *)

val renew : t -> tenant:string -> lease_s:float -> (float, string) result
(** Extend a running tenant's lease by [lease_s] from now, returning
    the new expiry. *)

val evict : t -> tenant:string -> reason:string -> bool
(** Revoke the lease now: pending requests are dropped, announcements
    withdrawn, safety claims released, prefixes returned to the pool.
    Returns false if the tenant is not running. Counted in
    [core.sched.evicted]. *)

val complete : t -> tenant:string -> bool
(** Voluntary teardown: same cleanup as {!evict} but counted in
    [core.sched.completed]. *)

(** {1 Update requests and batching rounds} *)

val request_announce :
  t ->
  tenant:string ->
  ?sites:string list ->
  ?path_suffix:Asn.t list ->
  Prefix.t ->
  (unit, string) result
(** Queue an announcement (applied at the tenant's next granted
    slots). Refused immediately if the tenant is not running or the
    prefix is outside its lease; per-site safety verdicts happen at
    apply time. While requests are pending, batching rounds
    self-schedule on the engine every [round_interval]. *)

val request_withdraw :
  t -> tenant:string -> ?sites:string list -> Prefix.t -> (unit, string) result
(** Queue a withdrawal. *)

val pending : t -> int
(** Update requests queued and not yet granted. *)

val pump : t -> int
(** Drain all queues synchronously (no virtual-time delay between
    rounds), returning the number of operations applied. Tests use
    this; live runs let the engine fire the rounds instead. *)

val rounds_run : t -> int
(** Batching rounds executed so far. *)

val ops_applied : t -> int
(** Update operations applied so far (announce + withdraw). *)

(** {1 SDX-style per-tenant policies} *)

type policy_action =
  | Deliver_via of string  (** steer matching traffic to this site *)
  | Drop_traffic  (** drop matching traffic at the mux *)
      (** What a policy rule does with matching inbound traffic. *)

type policy_rule = {
  pol_dst : Prefix.t;  (** destination match, must sit inside the lease *)
  pol_action : policy_action;  (** the action *)
}
(** One inbound-policy rule, in the SDX participant style. *)

val set_policy : t -> tenant:string -> policy_rule list -> (unit, issue list) result
(** Install the tenant's policy after the composition pass: every
    rule's destination must lie inside the tenant's own lease (a rule
    that overlaps another tenant's lease is an isolation violation,
    [SCHED-POLICY-ISOLATION]; one outside PEERING space entirely is
    [SCHED-POLICY-SCOPE]) and [Deliver_via] must name a site the
    tenant is connected to ([SCHED-POLICY-SITE]). Rejection installs
    nothing. *)

val policy : t -> string -> policy_rule list
(** The tenant's installed policy ([[]] if none). *)

(** {1 Oracles, logs, reports} *)

val isolation_violations : t -> int
(** Paranoid runtime oracle, counted over the current state: pairs of
    running tenants with overlapping leases, plus leased prefixes
    whose safety-registry claim belongs to some other tenant. Always
    0 unless admission control is broken — the bench asserts this at
    100+ tenants. *)

val log : t -> string list
(** The append-only decision log (admissions, rejections, rounds,
    evictions, policy verdicts) in chronological order. Deterministic
    for a given seed: the [@sched-isolation] harness compares two
    same-seed runs byte for byte. *)

val to_json : t -> Peering_obs.Json.t
(** The schedule as a [peering-sched/1] document: per-tenant status,
    leases, grant counts, the decision log and summary counters.
    Deterministic for a given seed (feeds the [sched-determinism]
    cmp rule). *)
