open Peering_net
open Peering_bgp
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics
module Span = Peering_obs.Span

(* Every mux counter is split by site (ROADMAP: per-site labeled
   metrics, so the A5 remote-peering economics read straight off a
   snapshot). Each server resolves its instruments once at creation
   through the family's label-set cache; increments stay O(1) and
   allocation-free. *)
let fam_client_connects =
  Metrics.Family.counter ~help:"experiment clients connected to a mux"
    "core.server.client_connects"

let fam_routes_learned =
  Metrics.Family.counter ~help:"routes learned from upstream peers"
    "core.server.routes_learned"

let fam_updates_to_clients =
  Metrics.Family.counter ~help:"route updates relayed to experiment clients"
    "core.server.updates_to_clients"

let fam_announces_exported =
  Metrics.Family.counter ~help:"client announcements exported to peers"
    "core.server.announces_exported"

let fam_withdraws_exported =
  Metrics.Family.counter ~help:"client withdrawals exported to peers"
    "core.server.withdraws_exported"

let fam_crashes =
  Metrics.Family.counter ~help:"mux crashes injected" "core.server.crashes"

let fam_restarts =
  Metrics.Family.counter ~help:"mux restarts after a crash"
    "core.server.restarts"

let fam_failovers =
  Metrics.Family.counter
    ~help:"client sessions re-synchronized after a mux restart"
    "core.server.client_failovers"

let fam_downtime =
  Metrics.Family.histogram
    ~help:"mux downtime per crash/restart cycle (virtual s)"
    "core.server.downtime_s"

(* Same family name (and ordinal convention) as the FSM's per-peer
   gauge, here keyed (peer, site): the mux's upstream sessions don't
   run a full FSM, so the exporter publishes 5 (Established) on Peer
   Up and 0 (Idle) on Peer Down — the registry-vs-BMP-feed
   cross-check in the telemetry harness reads exactly this row. *)
let fam_session_state =
  Metrics.Family.gauge
    ~help:"BGP session FSM state ordinal (0 Idle .. 5 Established)"
    "bgp.session.state"

let fam_bmp_msgs =
  Metrics.Family.counter ~help:"BMP messages exported to the monitoring feed"
    "core.server.bmp_msgs"

type site_metrics = {
  m_client_connects : Metrics.Counter.t;
  m_routes_learned : Metrics.Counter.t;
  m_updates_to_clients : Metrics.Counter.t;
  m_announces_exported : Metrics.Counter.t;
  m_withdraws_exported : Metrics.Counter.t;
  m_crashes : Metrics.Counter.t;
  m_restarts : Metrics.Counter.t;
  m_failovers : Metrics.Counter.t;
  m_downtime : Metrics.Histogram.t;
  m_bmp_msgs : Metrics.Counter.t;
}

let site_metrics site =
  let labels = [ ("site", site) ] in
  { m_client_connects = Metrics.Family.get fam_client_connects labels;
    m_routes_learned = Metrics.Family.get fam_routes_learned labels;
    m_updates_to_clients = Metrics.Family.get fam_updates_to_clients labels;
    m_announces_exported = Metrics.Family.get fam_announces_exported labels;
    m_withdraws_exported = Metrics.Family.get fam_withdraws_exported labels;
    m_crashes = Metrics.Family.get fam_crashes labels;
    m_restarts = Metrics.Family.get fam_restarts labels;
    m_failovers = Metrics.Family.get fam_failovers labels;
    m_downtime = Metrics.Family.get fam_downtime labels;
    m_bmp_msgs = Metrics.Family.get fam_bmp_msgs labels
  }

type mux_mode = Per_peer_sessions | Add_path_mux

type peer_kind = Transit | Ixp_peer | Route_server_peer

type peer = {
  peer_asn : Asn.t;
  kind : peer_kind;
  addr : Ipv4.t;
}

type export_event =
  | Export_announce of {
      client : string;
      prefix : Prefix.t;
      path_suffix : Asn.t list;
      peers : Asn.Set.t;
    }
  | Export_withdraw of { client : string; prefix : Prefix.t }

type client_callbacks = {
  route_update : peer:Asn.t -> Route.t -> unit;
  route_withdraw : peer:Asn.t -> Prefix.t -> unit;
}

type client_conn = {
  id : string;
  experiment : Experiment.t;
  callbacks : client_callbacks option;
  (* prefix -> (target peers, sanitized path suffix): enough state to
     re-issue the export after a mux restart *)
  mutable announced : (Asn.Set.t * Asn.t list) Prefix.Map.t;
}

type t = {
  engine : Engine.t;
  server_name : string;
  m : site_metrics;
  asn : Asn.t;
  safety : Safety.t;
  mux : mux_mode;
  export : export_event -> unit;
  mutable peer_list : peer list;
  (* peer asn -> (prefix -> route as learned) *)
  learned : (int, Route.t Prefix.Map.t ref) Hashtbl.t;
  mutable conns : client_conn list;
  mutable up : bool;
  mutable crashed_at : float option;
  (* testbed injection hook: observe crash/restart transitions so the
     simulated Internet can route around a dead mux *)
  mutable status_hook : (bool -> unit) option;
  (* live telemetry: encoded BMP messages are pushed here (the
     monitoring station's feed).  Byte-level so lib/measure can consume
     without a dependency on this module. *)
  mutable bmp_sink : (bytes -> unit) option;
  (* Adj-RIB-In changes since creation; every 100th also emits a
     Stats Report for the changing peer, so stations track table sizes
     live without a per-change report. *)
  mutable bmp_changes : int;
}

let create engine ~name ~asn ~safety ?(mux = Per_peer_sessions) ~export () =
  { engine;
    server_name = name;
    m = site_metrics name;
    asn;
    safety;
    mux;
    export;
    peer_list = [];
    learned = Hashtbl.create 64;
    conns = [];
    up = true;
    crashed_at = None;
    status_hook = None;
    bmp_sink = None;
    bmp_changes = 0
  }

let set_status_hook t hook = t.status_hook <- hook

let name t = t.server_name
let asn t = t.asn
let mux_mode t = t.mux

(* ------------------------------------------------------------------ *)
(* BMP export (RFC 7854).  Every session and Adj-RIB-In change is
   mirrored onto the byte sink as an encoded BMP message; the
   monitoring station reconstructs the mux's per-peer tables from
   nothing but this stream. *)

let bmp_emit t m =
  match t.bmp_sink with
  | None -> ()
  | Some f ->
    Metrics.Counter.inc t.m.m_bmp_msgs;
    f (Bmp.encode m)

(* The mux side of every monitored session, a stable synthetic
   address (100.64.0.1, RFC 6598 space). *)
let bmp_local_addr = Ipv4.of_octets 100 64 0 1

let bmp_open ~asn ~router_id =
  { Message.version = 4;
    asn;
    hold_time = 90;
    router_id;
    capabilities = [ Capability.Four_octet_asn (Asn.to_int asn) ]
  }

let bmp_peer_hdr ?time t p =
  Bmp.make_peer_header ~addr:p.addr ~asn:p.peer_asn ~bgp_id:p.addr
    ~time:(Option.value time ~default:(Engine.now t.engine))
    ()

let session_gauge t p =
  Metrics.Family.get fam_session_state
    [ ("peer", Asn.to_string p.peer_asn); ("site", t.server_name) ]

let bmp_peer_up t p =
  Metrics.Gauge.set (session_gauge t p) 5.0;
  bmp_emit t
    (Bmp.Peer_up
       { peer = bmp_peer_hdr t p;
         local_addr = bmp_local_addr;
         local_port = 179;
         remote_port = 179;
         sent_open = bmp_open ~asn:t.asn ~router_id:bmp_local_addr;
         recv_open = bmp_open ~asn:p.peer_asn ~router_id:p.addr
       })

let bmp_peer_down t p ~reason =
  Metrics.Gauge.set (session_gauge t p) 0.0;
  bmp_emit t (Bmp.Peer_down { peer = bmp_peer_hdr t p; reason })

(* Route Monitoring frames carry the route's own [learned_at] in the
   per-peer header, so the reconstructed table's timestamps equal the
   live table's (at the wire's µs precision). *)
let bmp_route t p (route : Route.t) =
  let update =
    { Message.withdrawn = [];
      attrs = Some route.Route.attrs;
      nlri = [ (route.Route.path_id, route.Route.prefix) ]
    }
  in
  bmp_emit t
    (Bmp.Route_monitoring
       { peer = bmp_peer_hdr ~time:route.Route.learned_at t p; update })

let bmp_withdraw t p prefix =
  let update =
    { Message.withdrawn = [ (0, prefix) ]; attrs = None; nlri = [] }
  in
  bmp_emit t (Bmp.Route_monitoring { peer = bmp_peer_hdr t p; update })

let default_peer_addr asn =
  (* A stable synthetic session address per peer ASN. *)
  let a = Asn.to_int asn in
  Ipv4.of_octets 172 (16 + (a lsr 16 land 0x0F)) (a lsr 8 land 0xFF)
    (a land 0xFF)

let add_peer t ~kind ?addr peer_asn =
  if List.exists (fun p -> Asn.equal p.peer_asn peer_asn) t.peer_list then
    invalid_arg "Server.add_peer: duplicate peer";
  let addr = Option.value addr ~default:(default_peer_addr peer_asn) in
  let p = { peer_asn; kind; addr } in
  t.peer_list <- t.peer_list @ [ p ];
  if t.up then bmp_peer_up t p

let peers t = t.peer_list
let peer_asns t = List.map (fun p -> p.peer_asn) t.peer_list
let n_peers t = List.length t.peer_list

let find_conn t id = List.find_opt (fun c -> c.id = id) t.conns

let find_conn_exn t id =
  match find_conn t id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Server %s: unknown client %s" t.server_name id)

let peer_table t peer_asn =
  match Hashtbl.find_opt t.learned (Asn.to_int peer_asn) with
  | Some r -> r
  | None ->
    let r = ref Prefix.Map.empty in
    Hashtbl.replace t.learned (Asn.to_int peer_asn) r;
    r

let bmp_stats_peer t p =
  let n = Prefix.Map.cardinal !(peer_table t p.peer_asn) in
  bmp_emit t
    (Bmp.Stats_report
       { peer = bmp_peer_hdr t p;
         stats =
           [ { Bmp.stat_type = Bmp.stat_routes_adj_rib_in; stat_value = n } ]
       })

let emit_bmp_stats t =
  if t.up then List.iter (fun p -> bmp_stats_peer t p) t.peer_list

(* State-sync on attach, mirroring what a BMP speaker sends a station
   that connects mid-flight (RFC 7854 §3.3): Initiation, a Peer Up per
   established session, the current Adj-RIB-In as Route Monitoring,
   then a Stats Report per peer.  This is what makes attachment
   order-independent: a monitor attached after routes were learned
   reconstructs the same table as one attached before. *)
let bmp_sync t =
  bmp_emit t
    (Bmp.Initiation { info = [ (1, "peering mux"); (2, t.server_name) ] });
  List.iter
    (fun p ->
      bmp_peer_up t p;
      Prefix.Map.iter (fun _ route -> bmp_route t p route) !(peer_table t p.peer_asn);
      bmp_stats_peer t p)
    t.peer_list

let set_bmp_sink t sink =
  t.bmp_sink <- sink;
  if Option.is_some sink && t.up then bmp_sync t

let replay_to conn t =
  match conn.callbacks with
  | None -> ()
  | Some cb ->
    List.iter
      (fun p ->
        let table = peer_table t p.peer_asn in
        Prefix.Map.iter
          (fun _ route -> cb.route_update ~peer:p.peer_asn route)
          !table)
      t.peer_list

let connect_client t ~experiment ?callbacks id =
  if find_conn t id <> None then
    invalid_arg "Server.connect_client: duplicate client id";
  let conn = { id; experiment; callbacks; announced = Prefix.Map.empty } in
  t.conns <- t.conns @ [ conn ];
  Metrics.Counter.inc t.m.m_client_connects;
  replay_to conn t

let clients t = List.map (fun c -> c.id) t.conns
let n_clients t = List.length t.conns

let engine_clock t () = Engine.now t.engine

(* The export callback runs under its own child span so downstream
   work it triggers (BGP transmits, route-server fan-out, scheduled
   wire deliveries) hangs off the announcement that caused it. *)
let export_spanned ?(attrs = []) t ev =
  Span.with_span ~time:(engine_clock t)
    ~attrs:(("site", t.server_name) :: attrs)
    "core.server.export"
    (fun () -> t.export ev)

let announce t ~client ?peers ?(path_suffix = []) prefix =
  let run () =
    let conn = find_conn_exn t client in
    if not t.up then Error Safety.Mux_down
    else
      let now = Engine.now t.engine in
      match
        Safety.check_announce t.safety ~now ~client ~experiment:conn.experiment
          ~prefix ~path_suffix
      with
      | Error e -> Error e
      | Ok () ->
        let sanitized =
          Safety.sanitize_suffix t.safety conn.experiment path_suffix
        in
        let all_peers = Asn.Set.of_list (peer_asns t) in
        let targets =
          match peers with
          | None -> all_peers
          | Some l -> Asn.Set.inter all_peers (Asn.Set.of_list l)
        in
        conn.announced <-
          Prefix.Map.add prefix (targets, sanitized) conn.announced;
        Metrics.Counter.inc t.m.m_announces_exported;
        export_spanned t
          (Export_announce
             { client; prefix; path_suffix = sanitized; peers = targets });
        Ok ()
  in
  if not (Span.enabled ()) then run ()
  else begin
    (* Root of the causal tree when the announcement enters here (the
       client API is one of the system's entry points); a child if the
       caller already opened one. *)
    let sp =
      Span.start ~time:(Engine.now t.engine) "core.server.announce"
        ~attrs:
          [ ("site", t.server_name); ("client", client);
            ("prefix", Prefix.to_string prefix) ]
    in
    let result = Span.with_current (Some (Span.context sp)) run in
    Span.finish sp ~time:(Engine.now t.engine)
      ~attrs:
        [ ( "outcome",
            match result with
            | Ok () -> "exported"
            | Error r -> Safety.reason_to_string r )
        ];
    result
  end

let withdraw t ~client prefix =
  let run () =
    let conn = find_conn_exn t client in
    if t.up && Prefix.Map.mem prefix conn.announced then begin
      conn.announced <- Prefix.Map.remove prefix conn.announced;
      Safety.note_withdraw t.safety ~now:(Engine.now t.engine) ~client ~prefix;
      Metrics.Counter.inc t.m.m_withdraws_exported;
      export_spanned t (Export_withdraw { client; prefix })
    end
  in
  Span.with_span ~time:(engine_clock t)
    ~attrs:
      [ ("site", t.server_name); ("client", client);
        ("prefix", Prefix.to_string prefix) ]
    "core.server.withdraw" run

let announced_prefixes t ~client =
  let conn = find_conn_exn t client in
  List.map fst (Prefix.Map.bindings conn.announced)

let disconnect_client t id =
  match find_conn t id with
  | None -> ()
  | Some conn ->
    List.iter (fun (p, _) -> withdraw t ~client:id p)
      (Prefix.Map.bindings conn.announced);
    List.iter
      (fun (p, _) -> ignore (Safety.release t.safety ~client:id ~prefix:p))
      (Prefix.Map.bindings conn.announced);
    t.conns <- List.filter (fun c -> c.id <> id) t.conns

let peer_of_asn t peer_asn =
  List.find_opt (fun p -> Asn.equal p.peer_asn peer_asn) t.peer_list

let learn_route t ~peer ~path prefix =
  match peer_of_asn t peer with
  | None -> invalid_arg "Server.learn_route: unknown peer"
  | Some _ when not t.up -> ()  (* crashed mux hears nothing *)
  | Some p ->
    let attrs =
      Attrs.make ~as_path:(As_path.of_asns path) ~next_hop:p.addr ()
    in
    let source =
      { Route.peer_asn = peer; peer_addr = p.addr; peer_router_id = p.addr;
        ebgp = true }
    in
    let route =
      Route.make ~source ~learned_at:(Engine.now t.engine) prefix attrs
    in
    let table = peer_table t peer in
    table := Prefix.Map.add prefix route !table;
    Metrics.Counter.inc t.m.m_routes_learned;
    bmp_route t p route;
    t.bmp_changes <- t.bmp_changes + 1;
    if t.bmp_changes mod 100 = 0 then bmp_stats_peer t p;
    List.iter
      (fun conn ->
        match conn.callbacks with
        | Some cb ->
          Metrics.Counter.inc t.m.m_updates_to_clients;
          cb.route_update ~peer route
        | None -> ())
      t.conns

let withdraw_learned t ~peer prefix =
  let table = peer_table t peer in
  if t.up && Prefix.Map.mem prefix !table then begin
    table := Prefix.Map.remove prefix !table;
    (match peer_of_asn t peer with
    | Some p ->
      bmp_withdraw t p prefix;
      t.bmp_changes <- t.bmp_changes + 1;
      if t.bmp_changes mod 100 = 0 then bmp_stats_peer t p
    | None -> ());
    List.iter
      (fun conn ->
        match conn.callbacks with
        | Some cb -> cb.route_withdraw ~peer prefix
        | None -> ())
      t.conns
  end

(* ------------------------------------------------------------------ *)
(* Crash / restart (fault injection) *)

let is_up t = t.up

let crash t =
  if t.up then begin
    t.up <- false;
    t.crashed_at <- Some (Engine.now t.engine);
    (* The BGP process dies with its Adj-RIBs-In; upstream routes must
       be re-learned after restart. Client registrations (and the
       safety registry) live in the controller and survive. *)
    Hashtbl.reset t.learned;
    Metrics.Counter.inc t.m.m_crashes;
    (* Every monitored session dies with the process: Peer Down per
       peer (reason 2, local system closed), then Termination. *)
    List.iter (fun p -> bmp_peer_down t p ~reason:2) t.peer_list;
    bmp_emit t (Bmp.Termination { info = [ (0, "bgp process down") ] });
    match t.status_hook with Some f -> f false | None -> ()
  end

let restart t =
  if not t.up then begin
    t.up <- true;
    Metrics.Counter.inc t.m.m_restarts;
    (match t.crashed_at with
    | Some at -> Metrics.Histogram.observe t.m.m_downtime (Engine.now t.engine -. at)
    | None -> ());
    t.crashed_at <- None;
    (* The restarted process re-initiates its monitoring feed; the
       Adj-RIBs-In are empty until the testbed re-feeds them, so no
       Route Monitoring is replayed here. *)
    if Option.is_some t.bmp_sink then begin
      bmp_emit t
        (Bmp.Initiation { info = [ (1, "peering mux"); (2, t.server_name) ] })
    end;
    List.iter (fun p -> bmp_peer_up t p) t.peer_list;
    (match t.status_hook with Some f -> f true | None -> ());
    (* Failover: re-issue every client's surviving announcements so
       Adj-RIBs-Out resynchronize without client involvement. Each
       re-export runs spanned so blast-radius accounting attributes
       the recovery traffic to the fault that caused it. *)
    List.iter
      (fun conn ->
        if not (Prefix.Map.is_empty conn.announced) then
          Metrics.Counter.inc t.m.m_failovers;
        Prefix.Map.iter
          (fun prefix (targets, sanitized) ->
            export_spanned t
              ~attrs:
                [ ("client", conn.id); ("prefix", Prefix.to_string prefix) ]
              (Export_announce
                 { client = conn.id;
                   prefix;
                   path_suffix = sanitized;
                   peers = targets
                 }))
          conn.announced)
      t.conns
  end

let learned_route_count t =
  Hashtbl.fold (fun _ r acc -> acc + Prefix.Map.cardinal !r) t.learned 0

let routes_from_peer t peer =
  Prefix.Map.cardinal !(peer_table t peer)

(* Canonical Adj-RIB-In dump: per-peer bindings sorted by peer ASN,
   empty tables dropped (a withdraw-only peer leaves an empty map
   behind), [learned_at] truncated to the µs the BMP wire can carry.
   The monitoring station produces the identical structure from the
   feed alone, and the @bmp-diff harness compares Marshal digests. *)
let adj_rib_dump t =
  Hashtbl.fold (fun asn table acc -> (asn, !table) :: acc) t.learned []
  |> List.filter (fun (_, m) -> not (Prefix.Map.is_empty m))
  |> List.map (fun (asn, m) ->
         ( asn,
           List.map
             (fun (pfx, r) ->
               (pfx, { r with Route.learned_at = Bmp.canon_time r.Route.learned_at }))
             (Prefix.Map.bindings m) ))
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let rib_digest t =
  Digest.to_hex (Digest.string (Marshal.to_string (adj_rib_dump t) [ Marshal.No_sharing ]))

type session_stats = {
  mode : mux_mode;
  n_peers : int;
  n_clients : int;
  peer_sessions : int;
  client_sessions : int;
  total_sessions : int;
  est_memory_bytes : int;
  keepalives_per_hour : int;
}

(* Session-state model: Quagga's struct peer plus I/O buffers is on
   the order of 64 KiB per configured session. Keepalives default to
   one per 30 s per live session. *)
let session_memory_bytes = 64 * 1024
let keepalives_per_session_hour = 120

let session_stats t =
  let n_peers = n_peers t and n_clients = n_clients t in
  let client_sessions =
    match t.mux with
    | Per_peer_sessions -> n_clients * n_peers
    | Add_path_mux -> n_clients
  in
  let peer_sessions = n_peers in
  let total_sessions = peer_sessions + client_sessions in
  { mode = t.mux;
    n_peers;
    n_clients;
    peer_sessions;
    client_sessions;
    total_sessions;
    est_memory_bytes = total_sessions * session_memory_bytes;
    keepalives_per_hour = total_sessions * keepalives_per_session_hour
  }
