open Peering_net
open Peering_bgp
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink
module Span = Peering_obs.Span

let m_accepted =
  Metrics.counter ~help:"announcements accepted by the safety filter"
    "core.safety.accepted"

let m_rejected =
  Metrics.counter ~help:"announcements rejected by the safety filter"
    "core.safety.rejected"

let m_withdraw_flaps =
  Metrics.counter ~help:"withdrawals charged to the dampening state"
    "core.safety.withdraw_flaps"

type reason =
  | Experiment_not_active
  | Prefix_not_owned
  | Prefix_not_allocated
  | Foreign_origin of Asn.t
  | Poisoning_not_permitted of Asn.t
  | Dampened of float
  | Announced_by_other_experiment
  | Mux_down

let reason_to_string = function
  | Mux_down -> "mux is down (crashed, awaiting restart)"
  | Experiment_not_active -> "experiment is not active"
  | Prefix_not_owned -> "prefix is not PEERING address space (hijack)"
  | Prefix_not_allocated -> "prefix is not allocated to this experiment"
  | Foreign_origin a ->
    Printf.sprintf "origin %s is not an experiment ASN" (Asn.to_string a)
  | Poisoning_not_permitted a ->
    Printf.sprintf "public ASN %s in path requires poisoning approval"
      (Asn.to_string a)
  | Dampened t -> Printf.sprintf "dampened until t=%.1f" t
  | Announced_by_other_experiment ->
    "prefix is currently announced by another experiment"

type t = {
  peering_asn : Asn.t;
  owns : Prefix.t -> bool;
  dampening : Dampening.t;
  mutable registry : string Prefix.Map.t;  (* prefix -> client id *)
}

let create ?dampening ~peering_asn ~owns () =
  { peering_asn;
    owns;
    dampening = Dampening.create ?params:dampening ();
    registry = Prefix.Map.empty
  }

let check_path t experiment suffix =
  let rec go = function
    | [] -> Ok ()
    | a :: rest ->
      if Asn.is_private a || Asn.equal a t.peering_asn
         || Experiment.owns_asn experiment a
      then go rest
      else if experiment.Experiment.may_poison then go rest
      else Error (Poisoning_not_permitted a)
  in
  go suffix

let check_announce_inner t ~now ~client ~experiment ~prefix ~path_suffix =
  if not (Experiment.is_active experiment) then Error Experiment_not_active
  else if not (t.owns prefix) then Error Prefix_not_owned
  else if not (Experiment.owns_prefix experiment prefix) then
    Error Prefix_not_allocated
  else
    match Prefix.Map.find_opt prefix t.registry with
    | Some other when other <> client -> Error Announced_by_other_experiment
    | Some _ | None -> (
      match check_path t experiment path_suffix with
      | Error e -> Error e
      | Ok () ->
        (* Withdrawals accumulate the penalty (RFC 2439 counts flaps,
           not initial announcements); announcing while suppressed is
           refused. *)
        if Dampening.is_suppressed t.dampening ~now ~peer:client prefix then
          let until =
            Option.value
              (Dampening.reuse_time t.dampening ~now ~peer:client prefix)
              ~default:(now +. 3600.0)
          in
          Error (Dampened until)
        else begin
          t.registry <- Prefix.Map.add prefix client t.registry;
          Ok ()
        end)

let check_announce t ~now ~client ~experiment ~prefix ~path_suffix =
  let run () =
    let result =
      check_announce_inner t ~now ~client ~experiment ~prefix ~path_suffix
    in
    (match result with
    | Ok () -> Metrics.Counter.inc m_accepted
    | Error _ -> Metrics.Counter.inc m_rejected);
    if Sink.active () then begin
      let verdict =
        match result with
        | Ok () -> Peering_obs.Event.Accepted
        | Error r -> Peering_obs.Event.Rejected (reason_to_string r)
      in
      let level =
        match result with
        | Ok () -> Peering_obs.Event.Info
        | Error _ -> Peering_obs.Event.Warn
      in
      Sink.emit ~time:now ~level ~subsystem:"core.safety"
        (Peering_obs.Event.Safety_verdict { client; prefix; verdict })
    end;
    result
  in
  if not (Span.enabled ()) then run ()
  else begin
    let sp =
      Span.start ~time:now "core.safety.check"
        ~attrs:[ ("client", client); ("prefix", Prefix.to_string prefix) ]
    in
    let result = Span.with_current (Some (Span.context sp)) run in
    Span.finish sp ~time:now
      ~attrs:
        [ ( "verdict",
            match result with
            | Ok () -> "accepted"
            | Error r -> reason_to_string r )
        ];
    result
  end

let note_withdraw t ~now ~client ~prefix =
  Metrics.Counter.inc m_withdraw_flaps;
  Dampening.flap t.dampening ~now ~peer:client prefix;
  (match Prefix.Map.find_opt prefix t.registry with
  | Some c when c = client -> t.registry <- Prefix.Map.remove prefix t.registry
  | Some _ | None -> ())

type release_outcome = Released | Not_claimed | Claimed_by_other of string

let release t ~client ~prefix =
  match Prefix.Map.find_opt prefix t.registry with
  | Some c when c = client ->
    t.registry <- Prefix.Map.remove prefix t.registry;
    Released
  | Some other -> Claimed_by_other other
  | None -> Not_claimed

let announced_by t prefix = Prefix.Map.find_opt prefix t.registry

let sanitize_suffix t experiment suffix =
  List.filter
    (fun a ->
      if Asn.is_private a then false
      else
        Asn.equal a t.peering_asn
        || experiment.Experiment.may_poison
        || Experiment.owns_asn experiment a)
    suffix

let suppressed_until t ~now ~client prefix =
  if Dampening.is_suppressed t.dampening ~now ~peer:client prefix then
    Dampening.reuse_time t.dampening ~now ~peer:client prefix
  else None
