(** The whole PEERING testbed in one value: a generated Internet, the
    PEERING AS deployed at IXP and university sites, servers, the
    controller, safety, and a route collector.

    Each site is modelled as its own node in the AS graph (muxes are
    topologically distinct even though they share AS 47065), so
    anycast catchments and per-site announcements behave correctly;
    {!canonical_path} folds the per-site ASNs back into the public
    one for display. *)

open Peering_net
open Peering_topo
open Peering_ixp

val peering_asn : Asn.t
(** AS 47065. *)

val peering_supply : Prefix.t
(** 184.164.224.0/19 — the testbed's address space. *)

type params = {
  world : Gen.params;
  seed : int;
  university_sites : (string * int) list;
      (** (site name, #upstream transit providers) — the paper's
          "dozens of indirect providers through universities" *)
  with_amsix : bool;
  with_phoenix : bool;
  bilateral_requests : bool;
      (** send peering requests to all open non-RS AMS-IX members *)
  domains : int option;
      (** worker-domain bound handed to {!Propagation.propagate} on
          every repropagation; [None] = the engine's default. The
          propagation result is identical for every value. *)
}

val default_params : params
(** Default world, sites gatech01/usc01/ufmg01 with 2 providers each,
    AMS-IX and Phoenix-IX enabled, bilateral requests on. *)

type site

val site_name : site -> string
val site_server : site -> Server.t
val site_asn : site -> Asn.t
(** The per-site graph node's ASN. *)

val site_fabric : site -> Fabric.t option
(** The IXP fabric for IXP sites. *)

type t

val build : ?params:params -> unit -> t

val engine : t -> Peering_sim.Engine.t
val world : t -> Gen.world
val graph : t -> As_graph.t
val controller : t -> Controller.t
val safety : t -> Safety.t
val collector : t -> Peering_measure.Collector.t
val sites : t -> site list
val site : t -> string -> site option
val site_exn : t -> string -> site

val all_peers : t -> Asn.t list
(** Union of all sites' upstream peer/provider ASNs (deduplicated). *)

val peers_at : t -> string -> Asn.t list

val new_experiment :
  t ->
  id:string ->
  ?owner:string ->
  ?description:string ->
  ?n_prefixes:int ->
  ?may_poison:bool ->
  unit ->
  (Experiment.t, string) result
(** Propose + activate in one step. *)

val connect_client : t -> Client.t -> sites:string list -> unit

(** {2 Control plane} *)

val result_for : t -> Prefix.t -> Propagation.result option
(** Latest propagation result for an announced prefix. *)

val route_from : t -> Asn.t -> Prefix.t -> Propagation.route option
val reach_count : t -> Prefix.t -> int

val canonical_path : t -> Asn.t list -> Asn.t list
(** Fold per-site ASNs into the public PEERING ASN. *)

val path_from : t -> Asn.t -> Prefix.t -> Asn.t list option
(** Canonicalised full AS path from the given AS to the prefix. *)

val inject_external :
  t ->
  origin:Asn.t ->
  ?path_suffix:Asn.t list ->
  Prefix.t ->
  unit
(** Inject an announcement from an arbitrary AS of the simulated
    Internet — a hijacker, a MOAS sibling, an ARROW-style helper.
    Bypasses safety (it is not a PEERING client). *)

val retract_external : t -> origin:Asn.t -> Prefix.t -> unit

val set_down : t -> Asn.t -> bool -> unit
(** Fail / restore an AS; all active prefixes re-propagate. Site nodes
    are toggled automatically by each mux's status hook ({!Server.crash}
    / {!Server.restart}), so a dead PoP really disappears from the
    simulated Internet. *)

val set_leak_edges : t -> (Asn.t * Asn.t) list -> unit
(** Inject (or, with [[]], clear) RFC 7908 route leaks: each [(u, v)]
    makes [u] export its selected routes to [v] regardless of
    Gao–Rexford discipline. While any leak is active, repropagation
    switches to {!Propagation.propagate_general}, whose
    {!Propagation.polluted} readout gives the leak's blast radius —
    the substrate of the chaos campaign's leak-storm drill. All active
    prefixes re-propagate. *)

val leak_edges : t -> (Asn.t * Asn.t) list
(** Currently-injected leak edges, in injection order. *)

val set_rov :
  t -> roas:Peering_bgp.Rpki.t -> adopters:Asn.Set.t -> unit
(** Enable RPKI route-origin validation at the [adopters]: they refuse
    announcements whose origin is [Invalid] against the ROA table.
    All active prefixes re-propagate — the substrate for the secure-
    BGP partial-deployment study of §2. *)

val clear_rov : t -> unit

val ingress_site : t -> from_asn:Asn.t -> Prefix.t -> string option
(** Which PEERING site traffic from the AS enters for this prefix —
    the anycast-catchment question. [None] when the AS routes to a
    non-PEERING origin (e.g. a hijacker) or has no route. *)

val ingress_peer : t -> from_asn:Asn.t -> Prefix.t -> Asn.t option
(** The upstream peer AS through which that traffic arrives. *)

val add_remote_ixp :
  t ->
  via:string ->
  name:string ->
  ?calibration:Amsix.calibration ->
  unit ->
  Fabric.t
(** Remote peering (paper §3: "Hibernia Networks offered us virtualized
    layer 2 connectivity from our AMS-IX server to tens of IXPs around
    the world"): build a new IXP fabric and peer the existing [via]
    site's server with its route-server users over the virtual L2 —
    more peers with no new physical deployment. Members already peered
    with that server are skipped. Returns the new fabric. *)

val feed_peer_routes : t -> site:string -> ?max_per_peer:int -> unit -> int

val start_monitoring :
  t ->
  ?vantages:Asn.t list ->
  interval:float ->
  rounds:int ->
  unit ->
  unit
(** Automatic measurement collection (§3: "we also automatically
    collect regular control and data plane measurements towards
    PEERING prefixes"): every [interval] virtual seconds, for [rounds]
    rounds, record the AS path each vantage AS currently uses toward
    every active prefix into the {!collector}. Default vantages: 16
    stubs sampled deterministically. Drive the engine to execute. *)

val monitoring_rounds_completed : t -> int
(** Make the site's server "learn" its peers' routes (each peer
    exports its customer cone, truncated to [max_per_peer], default
    200) and relay them to connected clients. Returns the number of
    routes fed. *)
