(** Structured event tracing.

    Subsystems record typed events ({!Peering_obs.Event.t}) into a
    shared trace; tests and benches query it. Keeping tracing separate
    from [logs] output lets experiments make assertions about what
    happened on the control plane (e.g. "the upstream saw no
    announcement for a hijacked prefix") — and with the typed
    vocabulary those assertions pattern-match on payloads instead of
    substring-searching rendered text. The plain-string [record] entry
    point remains for ad-hoc use. *)

type level = Peering_obs.Event.level = Debug | Info | Warn

type event = {
  time : float;  (** virtual time of the occurrence *)
  level : level;
  subsystem : string;
  span : Peering_obs.Span.context option;
      (** the causal span the event was emitted under, when a trace
          was being collected — what lets [peering_cli trace] hang a
          flat event stream off its span tree *)
  ev : Peering_obs.Event.t;
}
(** One recorded occurrence; render with {!message} or {!pp_event}. *)

type t
(** A bounded in-memory buffer of {!event}s. *)

val create : ?capacity:int -> unit -> t
(** A trace buffer. [capacity] (default 100_000) bounds memory; older
    events are dropped beyond it and accounted in {!dropped}. *)

val record_ev :
  t ->
  ?span:Peering_obs.Span.context ->
  time:float ->
  level:level ->
  subsystem:string ->
  Peering_obs.Event.t ->
  unit
(** Append a typed event, optionally stamped with its causal span. *)

val record : t -> time:float -> level:level -> subsystem:string -> string -> unit
(** The string fallback: [record t … msg] is
    [record_ev t … (Ad_hoc msg)]. *)

val attach : t -> clock:(unit -> float) -> unit
(** Install this buffer as the process-wide {!Peering_obs.Sink}, so
    instrumented subsystems that only call [Peering_obs.Sink.emit]
    land here. Events emitted without an explicit time are stamped
    with [clock ()] (normally the engine's virtual clock), and the
    same clock is handed to {!Peering_obs.Span.set_clock} so spans
    opened by clock-less subsystems share it. Replaces any previously
    attached buffer. *)

val detach : unit -> unit
(** Clear the process-wide sink (whether or not it was this buffer). *)

val events : t -> event list
(** All retained events, oldest first. *)

val count : t -> int
(** Number of retained events. *)

val dropped : t -> int
(** Number of events discarded due to the capacity bound. The total
    ever recorded is [count t + dropped t]. *)

val message : event -> string
(** The event's rendered one-line message. *)

val find : t -> ?subsystem:string -> ?contains:string -> unit -> event list
(** Filter retained events by subsystem and/or a substring of the
    rendered message. *)

val count_by_subsystem : t -> (string * int) list
(** Retained-event totals per subsystem, sorted by subsystem name. *)

val clear : t -> unit
(** Drop all events and zero the {!dropped} counter. *)

val pp_event : Format.formatter -> event -> unit
