module Event = Peering_obs.Event
module Sink = Peering_obs.Sink
module Metrics = Peering_obs.Metrics

(* Buffer evictions are counted per instance ([dropped]) and as a
   process-wide metric row, so `peering_cli stats` shows when the
   trace window was too small for what the run produced. *)
let m_dropped =
  Metrics.counter ~help:"trace-buffer events dropped at capacity"
    "sim.trace.dropped"

type level = Event.level = Debug | Info | Warn

type event = {
  time : float;
  level : level;
  subsystem : string;
  span : Peering_obs.Span.context option;
  ev : Event.t;
}

type t = {
  capacity : int;
  buf : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 100_000) () =
  { capacity; buf = Queue.create (); dropped = 0 }

let record_ev t ?span ~time ~level ~subsystem ev =
  Queue.push { time; level; subsystem; span; ev } t.buf;
  if Queue.length t.buf > t.capacity then begin
    ignore (Queue.pop t.buf);
    t.dropped <- t.dropped + 1;
    Metrics.Counter.inc m_dropped
  end

let record t ~time ~level ~subsystem message =
  record_ev t ~time ~level ~subsystem (Event.Ad_hoc message)

let attach t ~clock =
  Peering_obs.Span.set_clock clock;
  Sink.set (fun ~time level ~span ~subsystem ev ->
      let time = Option.value time ~default:(clock ()) in
      record_ev t ?span ~time ~level ~subsystem ev)

let detach () = Sink.clear ()

let events t = List.of_seq (Queue.to_seq t.buf)
let count t = Queue.length t.buf
let dropped t = t.dropped
let message e = Event.to_string e.ev

let find t ?subsystem ?contains () =
  let matches e =
    (match subsystem with None -> true | Some s -> String.equal s e.subsystem)
    &&
    match contains with
    | None -> true
    | Some needle ->
      let haystack = message e in
      let hlen = String.length haystack and nlen = String.length needle in
      let rec at i =
        i + nlen <= hlen
        && (String.equal (String.sub haystack i nlen) needle || at (i + 1))
      in
      nlen = 0 || at 0
  in
  List.filter matches (events t)

let count_by_subsystem t =
  let tbl = Hashtbl.create 16 in
  Queue.iter
    (fun e ->
      Hashtbl.replace tbl e.subsystem
        (1 + Option.value (Hashtbl.find_opt tbl e.subsystem) ~default:0))
    t.buf;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear t =
  Queue.clear t.buf;
  t.dropped <- 0

let pp_event ppf e =
  Format.fprintf ppf "[%10.3f] %-5s %-12s %s" e.time
    (Event.level_to_string e.level)
    e.subsystem (message e)
