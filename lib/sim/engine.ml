module Metrics = Peering_obs.Metrics
module Span = Peering_obs.Span

(* Process-wide instrumentation (all engines share these; a test that
   wants per-run numbers resets the default registry first). The
   wall-clock pacing histogram is volatile: its samples depend on host
   speed, so it is excluded from deterministic snapshots. *)
let m_events =
  Metrics.counter ~help:"simulation events executed" "engine.events_executed"

let m_scheduled =
  Metrics.counter ~help:"events pushed onto the queue" "engine.events_scheduled"

let m_queue =
  Metrics.gauge ~help:"event-queue depth (hwm = high-water mark)"
    "engine.queue_depth"

let m_wall =
  Metrics.histogram ~volatile:true ~sample_cap:1024
    ~help:"host seconds spent per virtual second inside run_for"
    "engine.wall_s_per_vsec"

type t = {
  mutable clock : float;
  queue : (unit -> unit) Event_queue.t;
  rng : Rng.t;
}

let create ?(seed = 42) () =
  { clock = 0.0; queue = Event_queue.create (); rng = Rng.create seed }

let now t = t.clock
let rng t = t.rng

let note_scheduled t =
  Metrics.Counter.inc m_scheduled;
  Metrics.Gauge.set m_queue (float_of_int (Event_queue.length t.queue))

(* Causal tracing across virtual time: a callback runs under the span
   context that was ambient when it was scheduled, so a wire delivery
   or tunnel hop stays attached to the announcement that caused it.
   When tracing is off this is a single load-and-branch. *)
let capture_span f =
  if Span.enabled () then
    match Span.current () with
    | None -> f
    | Some _ as ctx -> fun () -> Span.with_current ctx f
  else f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time (capture_span f);
  note_scheduled t

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) (capture_span f);
  note_scheduled t

let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- max t.clock time;
    Metrics.Counter.inc m_events;
    f ();
    true

let run ?until ?max_events t =
  let budget = ref (Option.value max_events ~default:max_int) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time -> (
      match until with
      | Some horizon when time > horizon -> continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done

let run_for t d =
  let horizon = t.clock +. d in
  let wall_start = Sys.time () in
  run ~until:horizon t;
  t.clock <- max t.clock horizon;
  if d > 0.0 then
    Metrics.Histogram.observe m_wall ((Sys.time () -. wall_start) /. d)
