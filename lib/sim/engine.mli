(** Discrete-event simulation engine.

    An engine owns a virtual clock and an event queue of thunks. All
    protocol machinery in the testbed (BGP timers, message delivery
    over links, scheduled announcements) runs as events on one engine,
    which makes whole-testbed runs deterministic and fast. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh engine at time 0. [seed] (default 42) seeds {!rng}. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The engine's root RNG stream. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative. While causal tracing is on ({!Peering_obs.Span}),
    the ambient span context at the call is captured and restored
    around [f], so causality survives the trip through the queue. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant. The time must not be in the past. *)

val pending : t -> int
(** Number of queued events. *)

val step : t -> bool
(** Execute the earliest event. Returns [false] if the queue was
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue, advancing the clock, until it is empty, the clock
    would pass [until], or [max_events] events have run. Events later
    than [until] remain queued. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run ~until:(now t +. d) t], then advances the
    clock to exactly [now + d] even if the queue drained early. *)
