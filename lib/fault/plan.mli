(** Declarative fault plans.

    A plan is a timeline of faults against named targets (links, muxes,
    tunnels) registered with an {!Injector}. Plans carry no randomness
    of their own: probabilistic impairments are resolved per message by
    the injector, drawing from the simulation engine's RNG, so
    identical seeds replay identical failure timelines. *)

type link_profile = {
  loss : float;  (** per-message drop probability, [0,1] *)
  duplicate : float;  (** per-message duplication probability *)
  corrupt : float;  (** per-message corruption probability *)
  reorder : float;  (** per-message extra-delay (reordering) probability *)
  reorder_max_delay : float;  (** max extra seconds for a reordered message *)
}

val pristine : link_profile
(** All rates zero. *)

val lossy :
  ?loss:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_max_delay:float ->
  unit ->
  link_profile
(** Build a profile (defaults: all rates 0, [reorder_max_delay] 0.2 s).
    Raises [Invalid_argument] on rates outside [0,1]. *)

(** One fault against one named target. *)
type fault =
  | Impair of { link : string; profile : link_profile; duration : float }
      (** probabilistic message loss/duplication/corruption/reordering
          on a link for [duration] seconds *)
  | Partition of { link : string; duration : float }
      (** total message loss on a link for [duration] seconds *)
  | Session_reset of { link : string }
      (** instantaneous transport reset: both FSMs drop without
          NOTIFICATIONs *)
  | Mux_crash of { mux : string; downtime : float }
      (** the mux's BGP process dies and restarts after [downtime] *)
  | Tunnel_blackhole of { tunnel : string; duration : float }
      (** packets entering the tunnel silently vanish for [duration] *)
  | Fate_group of { group : string; faults : fault list }
      (** correlated failure: every member fault fires at the same
          instant, modelling shared fate (one conduit cut, one
          hypervisor death) — the testbed-scale analogue of a PoP's
          tunnels all dying together. Members must be atomic faults:
          nesting groups is a validation error and the injector
          refuses it. *)

type step = { at : float; fault : fault }
(** A fault scheduled at virtual time [at] (relative to arming). *)

type t = step list
(** A timeline, sorted by time. Build with {!of_steps}. *)

val of_steps : step list -> t
(** Sort steps by time. Raises [Invalid_argument] on negative times. *)

val fault_class : fault -> string
(** Stable class tag: ["impair"], ["partition"], ["session_reset"],
    ["mux_crash"], ["tunnel_blackhole"] or ["fate_group"] — the key
    used for per-class recovery metrics. *)

val target : fault -> string
(** The registered name the fault acts on (the group name for
    {!Fate_group}). *)

val describe : fault -> string
(** Human-readable one-liner for traces and logs. *)

(** {2 Static validation}

    A plan is data; campaigns validate it against the injector's
    target registry before arming so typos and malformed windows fail
    fast instead of silently doing nothing at virtual time 300. *)

type targets = {
  links : string list;
  muxes : string list;
  tunnels : string list;
}
(** The names an injector can act on (see [Injector.targets]). *)

type severity =
  | Error  (** the plan cannot mean what it says; refuse to arm *)
  | Warning  (** legal but suspicious; arm it, but say so *)

type issue = {
  severity : severity;
  at : float;  (** the step time the issue anchors to *)
  message : string;
}

val validate : ?targets:targets -> t -> issue list
(** Check a plan, sorted by time then severity. Errors: targets not in
    the registry (only when [targets] is given), impairment rates
    outside [0,1], negative reorder delay, non-positive durations,
    empty or nested fate groups. Warnings: overlapping same-class
    windows on one target, where the injector's generation guard lets
    the later window silently supersede the earlier. An empty list
    means the plan is clean. *)

val errors : issue list -> issue list
(** Just the [Error]-severity issues. *)

val issue_to_string : issue -> string
