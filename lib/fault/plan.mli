(** Declarative fault plans.

    A plan is a timeline of faults against named targets (links, muxes,
    tunnels) registered with an {!Injector}. Plans carry no randomness
    of their own: probabilistic impairments are resolved per message by
    the injector, drawing from the simulation engine's RNG, so
    identical seeds replay identical failure timelines. *)

type link_profile = {
  loss : float;  (** per-message drop probability, [0,1] *)
  duplicate : float;  (** per-message duplication probability *)
  corrupt : float;  (** per-message corruption probability *)
  reorder : float;  (** per-message extra-delay (reordering) probability *)
  reorder_max_delay : float;  (** max extra seconds for a reordered message *)
}

val pristine : link_profile
(** All rates zero. *)

val lossy :
  ?loss:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_max_delay:float ->
  unit ->
  link_profile
(** Build a profile (defaults: all rates 0, [reorder_max_delay] 0.2 s).
    Raises [Invalid_argument] on rates outside [0,1]. *)

(** One fault against one named target. *)
type fault =
  | Impair of { link : string; profile : link_profile; duration : float }
      (** probabilistic message loss/duplication/corruption/reordering
          on a link for [duration] seconds *)
  | Partition of { link : string; duration : float }
      (** total message loss on a link for [duration] seconds *)
  | Session_reset of { link : string }
      (** instantaneous transport reset: both FSMs drop without
          NOTIFICATIONs *)
  | Mux_crash of { mux : string; downtime : float }
      (** the mux's BGP process dies and restarts after [downtime] *)
  | Tunnel_blackhole of { tunnel : string; duration : float }
      (** packets entering the tunnel silently vanish for [duration] *)

type step = { at : float; fault : fault }
(** A fault scheduled at virtual time [at] (relative to arming). *)

type t = step list
(** A timeline, sorted by time. Build with {!of_steps}. *)

val of_steps : step list -> t
(** Sort steps by time. Raises [Invalid_argument] on negative times. *)

val fault_class : fault -> string
(** Stable class tag: ["impair"], ["partition"], ["session_reset"],
    ["mux_crash"] or ["tunnel_blackhole"] — the key used for
    per-class recovery metrics. *)

val target : fault -> string
(** The registered name the fault acts on. *)

val describe : fault -> string
(** Human-readable one-liner for traces and logs. *)
