open Peering_net
open Peering_bgp
open Peering_core
module Engine = Peering_sim.Engine
module Rng = Peering_sim.Rng
module Router = Peering_router.Router
module Metrics = Peering_obs.Metrics
module Json = Peering_obs.Json

let recovery_hist cls =
  Metrics.histogram
    ~labels:[ ("class", cls) ]
    ~help:"time from fault injection to reconvergence (virtual s)"
    "fault.recovery_s"

type outcome = {
  scenario : string;
  fault_class : string;
  reconverged : bool;
  recovery_s : float;
  routes_lost : int;
  detail : string;
}

(* ------------------------------------------------------------------ *)
(* Harness: two routers exchanging full tables over one fault target *)

let addr1 = Ipv4.of_octets 192 168 0 1
let addr2 = Ipv4.of_octets 192 168 0 2

type pair = {
  engine : Engine.t;
  r1 : Router.t;
  r2 : Router.t;
  session : Session.t;
  injector : Injector.t;
  n_prefixes : int;
}

let make_pair ~seed ?(hold_time = 90) ?graceful_restart ?(n_prefixes = 8) () =
  let engine = Engine.create ~seed () in
  let mk asn router_id =
    Router.create engine ~asn:(Asn.of_int asn) ~router_id ~hold_time
      ?graceful_restart ()
  in
  let r1 = mk 65001 addr1 and r2 = mk 65002 addr2 in
  for i = 0 to n_prefixes - 1 do
    Router.originate r1 (Prefix.make (Ipv4.of_octets 10 0 i 0) 24);
    Router.originate r2 (Prefix.make (Ipv4.of_octets 10 1 i 0) 24)
  done;
  let session =
    Router.connect engine ~auto_restart:true (r1, addr1) (r2, addr2)
  in
  let injector = Injector.create engine in
  Injector.add_link injector ~name:"link" session;
  { engine; r1; r2; session; injector; n_prefixes }

let converged p =
  let full = 2 * p.n_prefixes in
  Session.established p.session
  && Router.table_size p.r1 = full
  && Router.table_size p.r2 = full

(* Advance in small slices until [pred] holds; the slice size bounds
   the measurement granularity, not the protocol timing. *)
let wait_until engine pred ~timeout =
  let deadline = Engine.now engine +. timeout in
  let rec go () =
    if pred () then Some (Engine.now engine)
    else if Engine.now engine >= deadline then None
    else begin
      Engine.run_for engine 0.25;
      go ()
    end
  in
  go ()

let routes_lost p =
  let full = 2 * p.n_prefixes in
  max 0 (full - Router.table_size p.r1)
  + max 0 (full - Router.table_size p.r2)

(* A scenario that impairs the single router-router link with [plan]
   (relative times), then waits for the world to look exactly as it
   did before the fault. *)
let link_scenario ~name ~fault_class ~seed ?(hold_time = 90) ?graceful_restart
    ~plan ~fault_horizon () =
  let p = make_pair ~seed ~hold_time ?graceful_restart () in
  match wait_until p.engine (fun () -> converged p) ~timeout:60.0 with
  | None ->
    { scenario = name;
      fault_class;
      reconverged = false;
      recovery_s = Float.nan;
      routes_lost = routes_lost p;
      detail = "never converged before fault injection"
    }
  | Some _ ->
    let fault_start = Engine.now p.engine in
    Injector.arm p.injector plan;
    let settled =
      wait_until p.engine
        (fun () ->
          Engine.now p.engine >= fault_start +. fault_horizon && converged p)
        ~timeout:(fault_horizon +. 600.0)
    in
    let recovery_s =
      match settled with
      | Some at -> at -. fault_start
      | None -> Float.nan
    in
    let reconverged = settled <> None in
    if reconverged then
      Metrics.Histogram.observe (recovery_hist fault_class) recovery_s;
    { scenario = name;
      fault_class;
      reconverged;
      recovery_s;
      routes_lost = routes_lost p;
      detail =
        Printf.sprintf "sessions established %d times"
          (Fsm.established_count (Session.a p.session).Session.fsm)
    }

let loss_scenario ~seed =
  link_scenario ~name:"loss" ~fault_class:"impair" ~seed ~hold_time:9
    ~plan:
      (Plan.of_steps
         [ { Plan.at = 0.5;
             fault =
               Plan.Impair
                 { link = "link";
                   profile = Plan.lossy ~loss:0.30 ();
                   duration = 30.0
                 }
           } ])
    ~fault_horizon:30.5 ()

let duplicate_scenario ~seed =
  link_scenario ~name:"duplicate" ~fault_class:"impair" ~seed
    ~plan:
      (Plan.of_steps
         [ { Plan.at = 0.5;
             fault =
               Plan.Impair
                 { link = "link";
                   profile = Plan.lossy ~duplicate:0.50 ();
                   duration = 20.0
                 }
           } ])
    ~fault_horizon:20.5 ()

let corrupt_scenario ~seed =
  link_scenario ~name:"corrupt" ~fault_class:"impair" ~seed ~hold_time:9
    ~plan:
      (Plan.of_steps
         [ { Plan.at = 0.5;
             fault =
               Plan.Impair
                 { link = "link";
                   profile = Plan.lossy ~corrupt:0.05 ();
                   duration = 20.0
                 }
           } ])
    ~fault_horizon:20.5 ()

let reorder_scenario ~seed =
  link_scenario ~name:"reorder" ~fault_class:"impair" ~seed
    ~plan:
      (Plan.of_steps
         [ { Plan.at = 0.5;
             fault =
               Plan.Impair
                 { link = "link";
                   profile =
                     Plan.lossy ~reorder:0.50 ~reorder_max_delay:0.4 ();
                   duration = 20.0
                 }
           } ])
    ~fault_horizon:20.5 ()

(* Session reset under graceful restart: the interesting assertion is
   that routes are *retained* while the session is down. *)
let reset_scenario ~seed =
  let p = make_pair ~seed ~graceful_restart:60 () in
  match wait_until p.engine (fun () -> converged p) ~timeout:60.0 with
  | None ->
    { scenario = "reset";
      fault_class = "session_reset";
      reconverged = false;
      recovery_s = Float.nan;
      routes_lost = routes_lost p;
      detail = "never converged before fault injection"
    }
  | Some _ ->
    let fault_start = Engine.now p.engine in
    Injector.arm p.injector
      (Plan.of_steps
         [ { Plan.at = 0.0; fault = Plan.Session_reset { link = "link" } } ]);
    (* Watch retention while the session is down. *)
    let retained = ref true in
    let min_table = ref (2 * p.n_prefixes) in
    let settled =
      wait_until p.engine
        (fun () ->
          let sz = min (Router.table_size p.r1) (Router.table_size p.r2) in
          if sz < !min_table then min_table := sz;
          if sz < 2 * p.n_prefixes then retained := false;
          Engine.now p.engine > fault_start +. 0.5 && converged p)
        ~timeout:120.0
    in
    let recovery_s =
      match settled with Some at -> at -. fault_start | None -> Float.nan
    in
    if settled <> None then
      Metrics.Histogram.observe (recovery_hist "session_reset") recovery_s;
    { scenario = "reset";
      fault_class = "session_reset";
      reconverged = settled <> None;
      recovery_s;
      routes_lost = routes_lost p;
      detail =
        (if !retained then "routes retained throughout outage (RFC 4724)"
         else
           Printf.sprintf "retention failed: table dipped to %d" !min_table)
    }

let partition_scenario ~seed =
  let p = make_pair ~seed ~hold_time:9 ~graceful_restart:120 () in
  match wait_until p.engine (fun () -> converged p) ~timeout:60.0 with
  | None ->
    { scenario = "partition";
      fault_class = "partition";
      reconverged = false;
      recovery_s = Float.nan;
      routes_lost = routes_lost p;
      detail = "never converged before fault injection"
    }
  | Some _ ->
    let fault_start = Engine.now p.engine in
    let duration = 25.0 in
    Injector.arm p.injector
      (Plan.of_steps
         [ { Plan.at = 0.0; fault = Plan.Partition { link = "link"; duration } }
         ]);
    let retained = ref true in
    let settled =
      wait_until p.engine
        (fun () ->
          if min (Router.table_size p.r1) (Router.table_size p.r2)
             < 2 * p.n_prefixes
          then retained := false;
          Engine.now p.engine >= fault_start +. duration && converged p)
        ~timeout:(duration +. 600.0)
    in
    let recovery_s =
      match settled with Some at -> at -. fault_start | None -> Float.nan
    in
    if settled <> None then
      Metrics.Histogram.observe (recovery_hist "partition") recovery_s;
    { scenario = "partition";
      fault_class = "partition";
      reconverged = settled <> None;
      recovery_s;
      routes_lost = routes_lost p;
      detail =
        (if !retained then
           "hold timer expired but routes retained across partition"
         else "routes withdrawn during partition")
    }

(* ------------------------------------------------------------------ *)
(* Flap: seeded announce/withdraw oscillation against the safety
   layer's RFC 2439 dampening, suppression then release. *)

let flap_scenario ~seed =
  let engine = Engine.create ~seed () in
  let rng = Rng.split (Engine.rng engine) in
  let pfx = Prefix.of_string_exn "184.164.224.0/24" in
  let safety =
    Safety.create ~peering_asn:(Asn.of_int 47065)
      ~owns:(Prefix.subsumes (Prefix.of_string_exn "184.164.224.0/19"))
      ()
  in
  let exp =
    Experiment.make ~id:"chaos-flap" ~owner:"chaos"
      ~description:"seeded flap plan driving dampening suppression" ()
  in
  exp.Experiment.prefixes <- [ pfx ];
  exp.Experiment.status <- Experiment.Active;
  let announce () =
    Safety.check_announce safety ~now:(Engine.now engine) ~client:"chaos-flap"
      ~experiment:exp ~prefix:pfx ~path_suffix:[]
  in
  let withdraw () =
    Safety.note_withdraw safety ~now:(Engine.now engine) ~client:"chaos-flap"
      ~prefix:pfx
  in
  let suppressions0 = Metrics.counter_value "bgp.dampening.suppressions" in
  let reuses0 = Metrics.counter_value "bgp.dampening.reuses" in
  (match announce () with
  | Ok () -> ()
  | Error _ -> ());
  (* Flap until suppressed (the default params need 3 flaps), with
     seeded jittered gaps between flaps. *)
  let fault_start = Engine.now engine in
  let flaps = ref 0 in
  let rec flap_until_suppressed () =
    if !flaps >= 10 then None
    else begin
      withdraw ();
      incr flaps;
      Engine.run_for engine (0.5 +. Rng.float rng 1.0);
      match announce () with
      | Error (Safety.Dampened until) -> Some until
      | Ok () | Error _ -> flap_until_suppressed ()
    end
  in
  match flap_until_suppressed () with
  | None ->
    { scenario = "flap";
      fault_class = "flap";
      reconverged = false;
      recovery_s = Float.nan;
      routes_lost = 1;
      detail = "dampening never suppressed the flapping prefix"
    }
  | Some until ->
    (* Advance past the predicted reuse time; the announcement must
       then be accepted again. *)
    Engine.run_for engine (until -. Engine.now engine +. 1.0);
    let released = match announce () with Ok () -> true | Error _ -> false in
    let recovery_s = Engine.now engine -. fault_start in
    if released then
      Metrics.Histogram.observe (recovery_hist "flap") recovery_s;
    let suppressions =
      Metrics.counter_value "bgp.dampening.suppressions" - suppressions0
    in
    let reuses = Metrics.counter_value "bgp.dampening.reuses" - reuses0 in
    { scenario = "flap";
      fault_class = "flap";
      reconverged = released;
      recovery_s;
      routes_lost = (if released then 0 else 1);
      detail =
        Printf.sprintf
          "%d flaps to suppression; %d suppression(s), %d release(s)" !flaps
          suppressions reuses
    }

(* ------------------------------------------------------------------ *)
(* Mux crash: client announcements survive in the controller, the
   restart re-exports them (failover) and the testbed refeeds learned
   routes. *)

let mux_crash_scenario ~seed =
  let engine = Engine.create ~seed () in
  let safety =
    Safety.create ~peering_asn:(Asn.of_int 47065)
      ~owns:(Prefix.subsumes (Prefix.of_string_exn "184.164.224.0/19"))
      ()
  in
  let exports = ref [] in
  let server =
    Server.create engine ~name:"chaos-mux" ~asn:(Asn.of_int 47065) ~safety
      ~export:(fun e -> exports := e :: !exports)
      ()
  in
  Server.add_peer server ~kind:Server.Transit (Asn.of_int 3356);
  Server.add_peer server ~kind:Server.Transit (Asn.of_int 174);
  let exp =
    Experiment.make ~id:"chaos-mux-client" ~owner:"chaos"
      ~description:"mux crash and failover resynchronization drill" ()
  in
  let p1 = Prefix.of_string_exn "184.164.224.0/24" in
  let p2 = Prefix.of_string_exn "184.164.225.0/24" in
  exp.Experiment.prefixes <- [ p1; p2 ];
  exp.Experiment.status <- Experiment.Active;
  Server.connect_client server ~experiment:exp "chaos-mux-client";
  let feed () =
    Server.learn_route server ~peer:(Asn.of_int 3356)
      ~path:[ Asn.of_int 3356; Asn.of_int 15169 ]
      (Prefix.of_string_exn "8.8.8.0/24")
  in
  feed ();
  let ok r = match r with Ok () -> true | Error _ -> false in
  let announced =
    ok (Server.announce server ~client:"chaos-mux-client" p1)
    && ok (Server.announce server ~client:"chaos-mux-client" p2)
  in
  let exports_before = List.length !exports in
  let injector = Injector.create engine in
  Injector.add_mux injector ~name:"mux" server;
  let downtime = 5.0 in
  Injector.arm injector
    (Plan.of_steps
       [ { Plan.at = 1.0; fault = Plan.Mux_crash { mux = "mux"; downtime } } ]);
  let refused_during_crash = ref false in
  Engine.schedule engine ~delay:2.0 (fun () ->
      match Server.announce server ~client:"chaos-mux-client" p1 with
      | Error Safety.Mux_down -> refused_during_crash := true
      | Ok () | Error _ -> ());
  (* The testbed's upstream feed retries once the mux is back. *)
  Engine.schedule engine ~delay:(1.0 +. downtime +. 0.1) feed;
  Engine.run ~until:20.0 engine;
  let fresh_exports = List.length !exports - exports_before in
  let resynced =
    Server.is_up server
    && fresh_exports >= 2 (* both prefixes re-exported on restart *)
    && Server.learned_route_count server = 1
    && List.length (Server.announced_prefixes server ~client:"chaos-mux-client")
       = 2
  in
  let reconverged = announced && !refused_during_crash && resynced in
  if reconverged then
    Metrics.Histogram.observe (recovery_hist "mux_crash") downtime;
  { scenario = "mux_crash";
    fault_class = "mux_crash";
    reconverged;
    recovery_s = (if reconverged then downtime else Float.nan);
    routes_lost =
      2
      - List.length (Server.announced_prefixes server ~client:"chaos-mux-client");
    detail =
      Printf.sprintf
        "refused during crash: %b; %d exports re-issued on restart"
        !refused_during_crash fresh_exports
  }

(* ------------------------------------------------------------------ *)
(* Tunnel blackhole: the FIB keeps steering packets into the tunnel
   while they silently vanish; delivery resumes once it clears. *)

let blackhole_scenario ~seed =
  let engine = Engine.create ~seed () in
  let fwd = Peering_dataplane.Forwarder.create engine in
  let module F = Peering_dataplane.Forwarder in
  let module Pkt = Peering_dataplane.Packet in
  let client = "client" and mux = "mux" in
  F.add_node fwd client;
  F.add_node fwd mux;
  let client_addr = Ipv4.of_octets 10 9 0 1 in
  let mux_addr = Ipv4.of_octets 184 164 224 1 in
  F.add_address fwd client client_addr;
  F.add_address fwd mux mux_addr;
  let tun = Peering_dataplane.Tunnel.establish fwd engine ~a:client ~b:mux () in
  Peering_dataplane.Tunnel.route_via tun ~at:client
    (Prefix.make mux_addr 32);
  F.set_route fwd mux (Prefix.make mux_addr 32) Peering_dataplane.Fib.Local;
  let delivered = ref 0 in
  F.on_deliver fwd mux (fun _ -> incr delivered);
  let injector = Injector.create engine in
  Injector.add_tunnel injector ~name:"tunnel" tun;
  let duration = 10.0 in
  Injector.arm injector
    (Plan.of_steps
       [ { Plan.at = 5.0;
           fault = Plan.Tunnel_blackhole { tunnel = "tunnel"; duration }
         } ]);
  (* One probe packet every half second for 30 s. *)
  let sent = ref 0 in
  for i = 0 to 59 do
    Engine.schedule engine ~delay:(0.5 *. float_of_int i) (fun () ->
        incr sent;
        F.inject fwd ~at:client
          (Pkt.make ~src:client_addr ~dst:mux_addr ()))
  done;
  Engine.run ~until:40.0 engine;
  let lost = !sent - !delivered in
  (* 10 s of 2 Hz probes vanish; everything outside the window lands. *)
  let reconverged = !delivered > 0 && lost > 0 && lost <= 21 in
  if reconverged then
    Metrics.Histogram.observe (recovery_hist "tunnel_blackhole") duration;
  { scenario = "blackhole";
    fault_class = "tunnel_blackhole";
    reconverged;
    recovery_s = (if reconverged then duration else Float.nan);
    routes_lost = 0;
    detail =
      Printf.sprintf "%d/%d probes blackholed, delivery resumed" lost !sent
  }

(* ------------------------------------------------------------------ *)
(* Driver *)

let scenarios =
  [ "loss"; "duplicate"; "corrupt"; "reorder"; "reset"; "partition"; "flap";
    "mux_crash"; "blackhole" ]

let run_one ~seed = function
  | "loss" -> loss_scenario ~seed
  | "duplicate" -> duplicate_scenario ~seed
  | "corrupt" -> corrupt_scenario ~seed
  | "reorder" -> reorder_scenario ~seed
  | "reset" -> reset_scenario ~seed
  | "partition" -> partition_scenario ~seed
  | "flap" -> flap_scenario ~seed
  | "mux_crash" -> mux_crash_scenario ~seed
  | "blackhole" -> blackhole_scenario ~seed
  | s -> invalid_arg (Printf.sprintf "Chaos.run_one: unknown scenario %S" s)

let run_all ?(seed = 42) () =
  (* Each scenario gets its own engine with a seed derived from the
     run seed, so scenarios are independent and the full suite replays
     bit-for-bit. *)
  List.mapi (fun i name -> run_one ~seed:(seed + (101 * i)) name) scenarios

let outcome_json o =
  Json.Obj
    [ ("scenario", Json.String o.scenario);
      ("fault_class", Json.String o.fault_class);
      ("reconverged", Json.Bool o.reconverged);
      ("recovery_s", Json.Float o.recovery_s);
      ("routes_lost", Json.Int o.routes_lost);
      ("detail", Json.String o.detail)
    ]

let to_json ~seed outcomes =
  Json.Obj
    [ ("schema", Json.String "peering-chaos/1");
      ("seed", Json.Int seed);
      ("scenarios", Json.List (List.map outcome_json outcomes));
      ("metrics", Peering_measure.Obs_report.to_json ())
    ]
