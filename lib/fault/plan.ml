type link_profile = {
  loss : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_max_delay : float;
}

let pristine =
  { loss = 0.0;
    duplicate = 0.0;
    corrupt = 0.0;
    reorder = 0.0;
    reorder_max_delay = 0.0
  }

let lossy ?(loss = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0)
    ?(reorder_max_delay = 0.2) () =
  let check name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Plan.lossy: %s=%g outside [0,1]" name p)
  in
  check "loss" loss;
  check "duplicate" duplicate;
  check "corrupt" corrupt;
  check "reorder" reorder;
  if reorder_max_delay < 0.0 then
    invalid_arg "Plan.lossy: negative reorder_max_delay";
  { loss; duplicate; corrupt; reorder; reorder_max_delay }

type fault =
  | Impair of { link : string; profile : link_profile; duration : float }
  | Partition of { link : string; duration : float }
  | Session_reset of { link : string }
  | Mux_crash of { mux : string; downtime : float }
  | Tunnel_blackhole of { tunnel : string; duration : float }
  | Fate_group of { group : string; faults : fault list }

type step = { at : float; fault : fault }

type t = step list

let of_steps steps =
  List.iter
    (fun s -> if s.at < 0.0 then invalid_arg "Plan.of_steps: negative time")
    steps;
  List.stable_sort (fun a b -> Float.compare a.at b.at) steps

let fault_class = function
  | Impair _ -> "impair"
  | Partition _ -> "partition"
  | Session_reset _ -> "session_reset"
  | Mux_crash _ -> "mux_crash"
  | Tunnel_blackhole _ -> "tunnel_blackhole"
  | Fate_group _ -> "fate_group"

let target = function
  | Impair { link; _ } | Partition { link; _ } | Session_reset { link } -> link
  | Mux_crash { mux; _ } -> mux
  | Tunnel_blackhole { tunnel; _ } -> tunnel
  | Fate_group { group; _ } -> group

let rec describe = function
  | Impair { link; profile = p; duration } ->
    Printf.sprintf
      "impair %s for %.1fs (loss %.0f%%, dup %.0f%%, corrupt %.0f%%, reorder \
       %.0f%%)"
      link duration (100.0 *. p.loss) (100.0 *. p.duplicate)
      (100.0 *. p.corrupt) (100.0 *. p.reorder)
  | Partition { link; duration } ->
    Printf.sprintf "partition %s for %.1fs" link duration
  | Session_reset { link } -> Printf.sprintf "reset session on %s" link
  | Mux_crash { mux; downtime } ->
    Printf.sprintf "crash mux %s for %.1fs" mux downtime
  | Tunnel_blackhole { tunnel; duration } ->
    Printf.sprintf "blackhole tunnel %s for %.1fs" tunnel duration
  | Fate_group { group; faults } ->
    Printf.sprintf "fate group %s {%s}" group
      (String.concat "; " (List.map describe faults))

(* ------------------------------------------------------------------ *)
(* Static validation *)

type targets = {
  links : string list;
  muxes : string list;
  tunnels : string list;
}

type severity = Error | Warning

type issue = {
  severity : severity;
  at : float;
  message : string;
}

let issue_to_string i =
  Printf.sprintf "%s at t=%.1f: %s"
    (match i.severity with Error -> "error" | Warning -> "warning")
    i.at i.message

let duration_of = function
  | Impair { duration; _ }
  | Partition { duration; _ }
  | Tunnel_blackhole { duration; _ } ->
    Some duration
  | Mux_crash { downtime; _ } -> Some downtime
  | Session_reset _ | Fate_group _ -> None

let validate ?targets plan =
  let issues = ref [] in
  let add severity at fmt =
    Printf.ksprintf
      (fun message -> issues := { severity; at; message } :: !issues)
      fmt
  in
  let check_target ~at kind registry name =
    match (registry, targets) with
    | _, None -> ()
    | reg, Some _ ->
      if not (List.mem name reg) then
        add Error at "unknown %s target %s" kind name
  in
  let links = match targets with Some t -> t.links | None -> [] in
  let muxes = match targets with Some t -> t.muxes | None -> [] in
  let tunnels = match targets with Some t -> t.tunnels | None -> [] in
  (* Per-fault checks; fate groups recurse with [depth] so nesting and
     emptiness (both refused by the injector) surface statically. *)
  let rec check ~at ~depth fault =
    (match fault with
    | Impair { link; profile = p; _ } ->
      check_target ~at "link" links link;
      List.iter
        (fun (name, rate) ->
          if rate < 0.0 || rate > 1.0 then
            add Error at "impair %s: %s=%g outside [0,1]" link name rate)
        [ ("loss", p.loss); ("duplicate", p.duplicate);
          ("corrupt", p.corrupt); ("reorder", p.reorder) ];
      if p.reorder_max_delay < 0.0 then
        add Error at "impair %s: negative reorder_max_delay" link
    | Partition { link; _ } | Session_reset { link } ->
      check_target ~at "link" links link
    | Mux_crash { mux; _ } -> check_target ~at "mux" muxes mux
    | Tunnel_blackhole { tunnel; _ } ->
      check_target ~at "tunnel" tunnels tunnel
    | Fate_group { group; faults } ->
      if depth > 0 then
        add Error at "fate group %s is nested inside another group" group;
      if faults = [] then add Error at "fate group %s is empty" group;
      List.iter (check ~at ~depth:(depth + 1)) faults);
    match duration_of fault with
    | Some d when d <= 0.0 ->
      add Error at "%s: non-positive duration %g" (describe fault) d
    | Some _ | None -> ()
  in
  List.iter (fun (s : step) -> check ~at:s.at ~depth:0 s.fault) plan;
  (* Overlapping same-class windows on one target are a plan smell: the
     injector's generation guard lets the later window supersede the
     earlier one, silently reshaping both. *)
  let windows = ref [] in
  let rec collect ~at fault =
    match fault with
    | Fate_group { faults; _ } -> List.iter (collect ~at) faults
    | f ->
      (match duration_of f with
      | Some d when d > 0.0 ->
        windows := (fault_class f, target f, at, at +. d) :: !windows
      | Some _ | None -> ())
  in
  List.iter (fun (s : step) -> collect ~at:s.at s.fault) plan;
  let rec overlap_pairs = function
    | [] -> ()
    | (c1, t1, a1, b1) :: rest ->
      List.iter
        (fun (c2, t2, a2, b2) ->
          if c1 = c2 && t1 = t2 && a2 < b1 && a1 < b2 then
            add Warning (Float.max a1 a2)
              "overlapping %s windows on %s ([%.1f,%.1f] and [%.1f,%.1f])" c1
              t1 a1 b1 a2 b2)
        rest;
      overlap_pairs rest
  in
  overlap_pairs (List.rev !windows);
  List.stable_sort
    (fun a b ->
      match Float.compare a.at b.at with
      | 0 ->
        compare
          (match a.severity with Error -> 0 | Warning -> 1)
          (match b.severity with Error -> 0 | Warning -> 1)
      | c -> c)
    (List.rev !issues)

let errors issues = List.filter (fun i -> i.severity = Error) issues
