type link_profile = {
  loss : float;
  duplicate : float;
  corrupt : float;
  reorder : float;
  reorder_max_delay : float;
}

let pristine =
  { loss = 0.0;
    duplicate = 0.0;
    corrupt = 0.0;
    reorder = 0.0;
    reorder_max_delay = 0.0
  }

let lossy ?(loss = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0)
    ?(reorder_max_delay = 0.2) () =
  let check name p =
    if p < 0.0 || p > 1.0 then
      invalid_arg (Printf.sprintf "Plan.lossy: %s=%g outside [0,1]" name p)
  in
  check "loss" loss;
  check "duplicate" duplicate;
  check "corrupt" corrupt;
  check "reorder" reorder;
  if reorder_max_delay < 0.0 then
    invalid_arg "Plan.lossy: negative reorder_max_delay";
  { loss; duplicate; corrupt; reorder; reorder_max_delay }

type fault =
  | Impair of { link : string; profile : link_profile; duration : float }
  | Partition of { link : string; duration : float }
  | Session_reset of { link : string }
  | Mux_crash of { mux : string; downtime : float }
  | Tunnel_blackhole of { tunnel : string; duration : float }

type step = { at : float; fault : fault }

type t = step list

let of_steps steps =
  List.iter
    (fun s -> if s.at < 0.0 then invalid_arg "Plan.of_steps: negative time")
    steps;
  List.stable_sort (fun a b -> Float.compare a.at b.at) steps

let fault_class = function
  | Impair _ -> "impair"
  | Partition _ -> "partition"
  | Session_reset _ -> "session_reset"
  | Mux_crash _ -> "mux_crash"
  | Tunnel_blackhole _ -> "tunnel_blackhole"

let target = function
  | Impair { link; _ } | Partition { link; _ } | Session_reset { link } -> link
  | Mux_crash { mux; _ } -> mux
  | Tunnel_blackhole { tunnel; _ } -> tunnel

let describe = function
  | Impair { link; profile = p; duration } ->
    Printf.sprintf
      "impair %s for %.1fs (loss %.0f%%, dup %.0f%%, corrupt %.0f%%, reorder \
       %.0f%%)"
      link duration (100.0 *. p.loss) (100.0 *. p.duplicate)
      (100.0 *. p.corrupt) (100.0 *. p.reorder)
  | Partition { link; duration } ->
    Printf.sprintf "partition %s for %.1fs" link duration
  | Session_reset { link } -> Printf.sprintf "reset session on %s" link
  | Mux_crash { mux; downtime } ->
    Printf.sprintf "crash mux %s for %.1fs" mux downtime
  | Tunnel_blackhole { tunnel; duration } ->
    Printf.sprintf "blackhole tunnel %s for %.1fs" tunnel duration
