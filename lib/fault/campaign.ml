open Peering_net
open Peering_core
module Engine = Peering_sim.Engine
module Router = Peering_router.Router
module Session = Peering_bgp.Session
module Forwarder = Peering_dataplane.Forwarder
module Tunnel = Peering_dataplane.Tunnel
module Packet = Peering_dataplane.Packet
module Fib = Peering_dataplane.Fib
module Mininext = Peering_emu.Mininext
module Propagation = Peering_topo.Propagation
module As_graph = Peering_topo.As_graph
module Metrics = Peering_obs.Metrics
module Span = Peering_obs.Span
module Sink = Peering_obs.Sink
module Json = Peering_obs.Json
module Blast = Peering_obs.Blast
module Stats = Peering_measure.Stats

let recovery_hist cls =
  Metrics.histogram
    ~labels:[ ("class", cls) ]
    ~help:"time from fault injection to reconvergence (virtual s)"
    "fault.recovery_s"

(* ------------------------------------------------------------------ *)
(* Blast-radius accounting *)

type reach_dip = {
  dip_prefix : string;
  baseline_reach : int;
  min_reach : int;
  dip_from : float;  (** virtual time reach first dipped below baseline *)
  dip_until : float;  (** virtual time reach last sat below baseline *)
}

type blast = {
  by_target : Blast.entity list;
  by_site : Blast.entity list;
  by_client : Blast.entity list;
  by_prefix : Blast.entity list;
  impacted_sites : string list;
  reach_dips : reach_dip list;
  trace_spans : int;  (** spans in the faults' causal closure *)
}

type outcome = {
  drill : string;
  slo_class : string;
  injected : string list;  (** Plan.describe of everything injected *)
  reconverged : bool;
  recovery_s : float;
  routes_lost : int;
  tenant_reaches : (string * int * int) list;
      (* (tenant, baseline reach, final reach) for drills running
         scheduled experiments; [] elsewhere *)
  blast : blast;
  detail : string;
}

(* ------------------------------------------------------------------ *)
(* SLOs *)

type slo = { slo_class : string; p99_budget_s : float }

(* Budgets per drill class, in virtual seconds. They are deliberately
   tight around observed behaviour (see EXPERIMENTS.md): compound and
   cascade drills are dominated by the longest mux downtime plus wire
   re-establishment; the fate-group drill by the blackhole window; the
   leak storm by the explicit pollution window; the dampening sweep by
   RFC 2439 decay at the largest half-life x suppress combination. *)
let default_slos =
  [ { slo_class = "compound"; p99_budget_s = 90.0 };
    { slo_class = "fate_group"; p99_budget_s = 30.0 };
    { slo_class = "cascade"; p99_budget_s = 120.0 };
    { slo_class = "leak_storm"; p99_budget_s = 30.0 };
    { slo_class = "dampening"; p99_budget_s = 4000.0 };
    { slo_class = "multi_tenant"; p99_budget_s = 90.0 }
  ]

type slo_verdict = {
  verdict_class : string;
  budget_s : float;
  p99_s : float;
  samples : int;
  met : bool;
}

(* ------------------------------------------------------------------ *)
(* Dampening parameter sweep *)

type sweep_row = {
  half_life : float;
  suppress_threshold : float;
  reuse_threshold : float;
  flaps_to_suppression : int;
  suppressed_s : float;  (** time the route spent held down *)
  released : bool;
}

(* ------------------------------------------------------------------ *)
(* Campaign world: the default multi-site testbed plus the injectable
   periphery (wire sessions, tunnels, the HE-style emulation) *)

type wire = {
  wire_site : string;
  wr1 : Router.t;
  wr2 : Router.t;
  wire_session : Session.t;
  wire_full : int;  (** table size when converged *)
}

type ann = {
  ann_client : Client.t;
  ann_sites : string list;  (** sites the announcement goes out of *)
  ann_prefix : Prefix.t;
}

type world = {
  tb : Testbed.t;
  eng : Engine.t;
  inj : Injector.t;
  fwd : Forwarder.t;
  emu : Mininext.t;
  wires : wire list;
  tunnels : (string * Tunnel.t) list;  (* site, tunnel *)
  anns : ann list;
  baseline : (Prefix.t * int) list;  (* baseline reach per prefix *)
}

let university_sites = [ "gatech01"; "usc01"; "ufmg01" ]

let wait_until engine pred ~timeout =
  let deadline = Engine.now engine +. timeout in
  let rec go () =
    if pred () then Some (Engine.now engine)
    else if Engine.now engine >= deadline then None
    else begin
      Engine.run_for engine 0.25;
      go ()
    end
  in
  go ()

let wire_converged w =
  Session.established w.wire_session
  && Router.table_size w.wr1 = w.wire_full
  && Router.table_size w.wr2 = w.wire_full

let emu_converged emu =
  List.for_all
    (fun (_, _, s) -> Session.established s)
    (Mininext.ibgp_sessions emu)

let client_node = "cl:probe"
let mux_node site = "mx:" ^ site

let make_world ?(on_world = fun _ -> ()) ~seed () =
  let tb = Testbed.build ~params:{ Testbed.default_params with seed } () in
  on_world tb;
  let eng = Testbed.engine tb in
  let inj = Injector.create eng in
  (* Every mux is a crash target. *)
  List.iter
    (fun s ->
      Injector.add_mux inj
        ~name:("mux:" ^ Testbed.site_name s)
        (Testbed.site_server s))
    (Testbed.sites tb);
  (* One upstream wire session per university site: a live BGP pair
     whose transport the injector can impair or partition. Aggressive
     hold time so partitions are detected inside drill windows. *)
  let wires =
    List.mapi
      (fun i site ->
        let mk asn router_id =
          Router.create eng ~asn:(Asn.of_int asn) ~router_id ~hold_time:9
            ~graceful_restart:120 ()
        in
        let a1 = Ipv4.of_octets 192 168 (40 + i) 1 in
        let a2 = Ipv4.of_octets 192 168 (40 + i) 2 in
        let r1 = mk (65100 + (2 * i)) a1 in
        let r2 = mk (65101 + (2 * i)) a2 in
        let n = 4 in
        for j = 0 to n - 1 do
          Router.originate r1 (Prefix.make (Ipv4.of_octets 10 (60 + i) j 0) 24);
          Router.originate r2 (Prefix.make (Ipv4.of_octets 10 (70 + i) j 0) 24)
        done;
        let session =
          Router.connect eng ~auto_restart:true (r1, a1) (r2, a2)
        in
        Injector.add_link inj ~name:("link:" ^ site) session;
        { wire_site = site; wr1 = r1; wr2 = r2; wire_session = session;
          wire_full = 2 * n
        })
      university_sites
  in
  (* Dataplane: one tunnel from a probe client to each university
     site's mux node — the fate-group drill blackholes them together. *)
  let fwd = Forwarder.create eng in
  Forwarder.add_node fwd client_node;
  let client_addr = Ipv4.of_octets 10 9 9 1 in
  Forwarder.add_address fwd client_node client_addr;
  let tunnels =
    List.mapi
      (fun i site ->
        let node = mux_node site in
        Forwarder.add_node fwd node;
        let addr = Ipv4.of_octets 184 164 (224 + i) 1 in
        Forwarder.add_address fwd node addr;
        let tun = Tunnel.establish fwd eng ~a:client_node ~b:node () in
        Tunnel.route_via tun ~at:client_node (Prefix.make addr 32);
        Forwarder.set_route fwd node (Prefix.make addr 32) Fib.Local;
        Injector.add_tunnel inj ~name:("tun:" ^ site) tun;
        (site, tun))
      university_sites
  in
  (* The Hurricane-Electric-style emulation: a small MinineXt backbone
     whose iBGP mesh is injectable like any other link. *)
  let emu = Mininext.create eng fwd ~name:"he" ~asn:(Asn.of_int 6939) () in
  List.iter (fun p -> ignore (Mininext.add_pop emu p)) [ "fra"; "ams"; "par" ];
  Mininext.link emu "fra" "ams" ();
  Mininext.link emu "ams" "par" ();
  Mininext.link emu "fra" "par" ();
  Mininext.originate_at emu "fra" (Prefix.of_string_exn "10.80.0.0/24");
  Mininext.start emu;
  List.iter
    (fun (a, b, s) ->
      Injector.add_link inj ~name:(Printf.sprintf "link:emu:%s-%s" a b) s)
    (Mininext.ibgp_sessions emu);
  (* Let wire sessions and the emu mesh establish. *)
  ignore
    (wait_until eng
       (fun () -> List.for_all wire_converged wires && emu_converged emu)
       ~timeout:60.0);
  (* Clients and announcements on the testbed proper. *)
  let get_exn = function
    | Ok e -> e
    | Error m -> invalid_arg ("Campaign: experiment rejected: " ^ m)
  in
  let mk_ann id sites =
    let exp = get_exn (Testbed.new_experiment tb ~id ~n_prefixes:1 ()) in
    let prefix = List.hd exp.Experiment.prefixes in
    let client = Client.create ~id ~experiment:exp () in
    Testbed.connect_client tb client ~sites:university_sites;
    List.iter
      (fun (site, r) ->
        match r with
        | Ok () -> ()
        | Error reason ->
          invalid_arg
            (Printf.sprintf "Campaign: baseline announce refused at %s: %s"
               site
               (Safety.reason_to_string reason)))
      (Client.announce client ~servers:sites prefix);
    { ann_client = client; ann_sites = sites; ann_prefix = prefix }
  in
  let anns =
    [ mk_ann "cl:gatech01" [ "gatech01" ];
      mk_ann "cl:usc01" [ "usc01" ];
      mk_ann "cl:anycast" [ "gatech01"; "usc01"; "ufmg01" ]
    ]
  in
  let baseline =
    List.map
      (fun a -> (a.ann_prefix, Testbed.reach_count tb a.ann_prefix))
      anns
  in
  { tb; eng; inj; fwd; emu; wires; tunnels; anns; baseline }

(* ------------------------------------------------------------------ *)
(* Recovery predicates and reach-dip tracking *)

let world_recovered w =
  List.for_all (fun s -> Server.is_up (Testbed.site_server s))
    (Testbed.sites w.tb)
  && List.for_all wire_converged w.wires
  && emu_converged w.emu
  && List.for_all (fun (_, tun) -> not (Tunnel.blackholed tun)) w.tunnels
  && List.for_all
       (fun (prefix, reach) -> Testbed.reach_count w.tb prefix = reach)
       w.baseline

type dip_state = {
  mutable seen_min : int;
  mutable from_t : float option;
  mutable until_t : float;
}

let make_dip_tracker w =
  let states =
    List.map
      (fun (prefix, base) ->
        (prefix, base, { seen_min = base; from_t = None; until_t = 0.0 }))
      w.baseline
  in
  let sample () =
    List.iter
      (fun (prefix, base, st) ->
        let r = Testbed.reach_count w.tb prefix in
        if r < st.seen_min then st.seen_min <- r;
        if r < base then begin
          if st.from_t = None then st.from_t <- Some (Engine.now w.eng);
          st.until_t <- Engine.now w.eng
        end)
      states
  in
  let dips () =
    List.filter_map
      (fun (prefix, base, st) ->
        match st.from_t with
        | None -> None
        | Some from_t ->
          Some
            { dip_prefix = Prefix.to_string prefix;
              baseline_reach = base;
              min_reach = st.seen_min;
              dip_from = from_t;
              dip_until = st.until_t
            })
      states
  in
  (sample, dips)

let routes_lost w =
  List.fold_left
    (fun acc (prefix, base) ->
      acc + max 0 (base - Testbed.reach_count w.tb prefix))
    0 w.baseline

(* Map an injector target name to the site it hurts, for targets whose
   spans carry no site attribute of their own. *)
let site_of_target name =
  match String.split_on_char ':' name with
  | [ ("mux" | "link" | "tun"); site ] -> Some site
  | "link" :: "emu" :: _ -> Some "emu"
  | _ -> None

(* Atomic targets a plan touches, fate-group members included — the
   spans only name the group, but the members' sites are impacted. *)
let plan_targets plan =
  let rec go acc = function
    | Plan.Fate_group { faults; _ } -> List.fold_left go acc faults
    | f -> Plan.target f :: acc
  in
  List.fold_left
    (fun acc (s : Plan.step) -> go acc s.fault)
    [] plan
  |> List.rev

let collect_blast ?(plan = []) ~dips () =
  let spans = Sink.flight_spans () in
  let roots = Blast.roots spans ~name:"fault.inject" in
  let closure = Blast.in_traces spans roots in
  let by_target = Blast.rollup closure ~key:"target" in
  let by_site = Blast.rollup closure ~key:"site" in
  let by_client = Blast.rollup closure ~key:"client" in
  let by_prefix = Blast.rollup closure ~key:"prefix" in
  let impacted =
    List.filter_map
      (fun (e : Blast.entity) -> site_of_target e.Blast.value)
      by_target
    @ List.filter_map site_of_target (plan_targets plan)
    @ List.map (fun (e : Blast.entity) -> e.Blast.value) by_site
  in
  { by_target;
    by_site;
    by_client;
    by_prefix;
    impacted_sites = List.sort_uniq String.compare impacted;
    reach_dips = dips;
    trace_spans = List.length closure
  }

(* Run [body] (which arms faults and drives the engine) under a fresh
   flight recorder, measuring recovery against [world_recovered]. *)
let drill_harness ~drill ~slo_class ~plan ~fault_horizon ?(extra_timeout = 600.)
    ?(body = fun _ -> ()) ?on_world ~seed () =
  Span.reset ();
  Sink.start_flight_recorder ();
  let w = make_world ?on_world ~seed () in
  let sample, dips = make_dip_tracker w in
  let fault_start = Engine.now w.eng in
  Injector.arm w.inj plan;
  body w;
  let settled =
    wait_until w.eng
      (fun () ->
        sample ();
        Engine.now w.eng >= fault_start +. fault_horizon && world_recovered w)
      ~timeout:(fault_horizon +. extra_timeout)
  in
  Sink.stop_flight_recorder ();
  let recovery_s =
    match settled with Some at -> at -. fault_start | None -> Float.nan
  in
  let reconverged = settled <> None in
  if reconverged then
    Metrics.Histogram.observe (recovery_hist slo_class) recovery_s;
  let injected =
    List.map (fun (s : Plan.step) -> Plan.describe s.fault) plan
  in
  let blast = collect_blast ~plan ~dips:(dips ()) () in
  let outcome =
    { drill;
      slo_class;
      injected;
      reconverged;
      recovery_s;
      routes_lost = routes_lost w;
      tenant_reaches = [];
      blast;
      detail = ""
    }
  in
  (w, outcome)

(* ------------------------------------------------------------------ *)
(* Drills *)

(* Compound: a mux restart with a wire partition opening mid-downtime
   and a short emulation partition nested inside that window. *)
let compound_drill ?on_world ~seed () =
  let plan =
    Plan.of_steps
      [ { Plan.at = 1.0;
          fault = Plan.Mux_crash { mux = "mux:gatech01"; downtime = 20.0 }
        };
        { Plan.at = 8.0;
          fault = Plan.Partition { link = "link:usc01"; duration = 25.0 }
        };
        { Plan.at = 10.0;
          fault =
            Plan.Partition { link = "link:emu:fra-ams"; duration = 5.0 }
        }
      ]
  in
  let w, o =
    drill_harness ~drill:"compound" ~slo_class:"compound" ~plan
      ~fault_horizon:34.0 ?on_world ~seed ()
  in
  let gatech_reach =
    match w.baseline with (p, _) :: _ -> Testbed.reach_count w.tb p | [] -> 0
  in
  { o with
    detail =
      Printf.sprintf
        "mux restart overlapped 2 partitions; gatech prefix reaches %d ASes \
         again"
        gatech_reach
  }

(* Fate group: every site tunnel blackholes at the same instant (one
   conduit cut), watched by a 2 Hz probe stream per tunnel. *)
let fate_group_drill ?on_world ~seed () =
  let duration = 12.0 in
  let plan =
    Plan.of_steps
      [ { Plan.at = 5.0;
          fault =
            Plan.Fate_group
              { group = "conduit";
                faults =
                  List.map
                    (fun site ->
                      Plan.Tunnel_blackhole
                        { tunnel = "tun:" ^ site; duration })
                    university_sites
              }
        }
      ]
  in
  let sent = ref 0 in
  let delivered = Hashtbl.create 4 in
  let body w =
    List.iter
      (fun site ->
        Hashtbl.replace delivered site 0;
        Forwarder.on_deliver w.fwd (mux_node site) (fun _ ->
            Hashtbl.replace delivered site
              (1 + Hashtbl.find delivered site)))
      university_sites;
    let client_addr = Ipv4.of_octets 10 9 9 1 in
    for i = 0 to 59 do
      Engine.schedule w.eng
        ~delay:(0.5 *. float_of_int i)
        (fun () ->
          List.iteri
            (fun j _site ->
              incr sent;
              Forwarder.inject w.fwd ~at:client_node
                (Packet.make ~src:client_addr
                   ~dst:(Ipv4.of_octets 184 164 (224 + j) 1)
                   ()))
            university_sites)
    done
  in
  let _w, o =
    drill_harness ~drill:"fate_group" ~slo_class:"fate_group" ~plan
      ~fault_horizon:(5.0 +. duration) ~body ?on_world ~seed ()
  in
  let total_delivered =
    Hashtbl.fold (fun _ n acc -> acc + n) delivered 0
  in
  let lost = !sent - total_delivered in
  (* Each tunnel loses ~2 Hz x 12 s of probes; everything outside the
     shared window must land. *)
  let expected_max = 3 * 26 in
  let plausible = total_delivered > 0 && lost > 0 && lost <= expected_max in
  { o with
    reconverged = o.reconverged && plausible;
    detail =
      Printf.sprintf "%d/%d probes blackholed across %d tunnels in one group"
        lost !sent (List.length university_sites)
  }

(* Cascade: two mux crashes overlap; mid-partition the gatech client
   fails over by re-exporting its prefix at a surviving site, then
   withdraws the failover after recovery so the baseline is restored
   exactly. *)
let cascade_drill ?on_world ~seed () =
  let plan =
    Plan.of_steps
      [ { Plan.at = 1.0;
          fault = Plan.Mux_crash { mux = "mux:gatech01"; downtime = 15.0 }
        };
        { Plan.at = 6.0;
          fault = Plan.Mux_crash { mux = "mux:usc01"; downtime = 15.0 }
        }
      ]
  in
  let refused_down = ref false in
  let failover_ok = ref false in
  let body w =
    let a = List.hd w.anns in
    Engine.schedule w.eng ~delay:8.0 (fun () ->
        (* The crashed mux refuses; the surviving site accepts. *)
        (match
           Client.announce a.ann_client ~servers:[ "gatech01" ] a.ann_prefix
         with
        | [ (_, Error Safety.Mux_down) ] -> refused_down := true
        | _ -> ());
        match
          Client.announce a.ann_client ~servers:[ "ufmg01" ] a.ann_prefix
        with
        | [ (_, Ok ()) ] -> failover_ok := true
        | _ -> ());
    (* Once both muxes are back, retract the failover announcement so
       recovery means "exactly the pre-fault world". *)
    Engine.schedule w.eng ~delay:25.0 (fun () ->
        Client.withdraw a.ann_client ~servers:[ "ufmg01" ] a.ann_prefix)
  in
  let _w, o =
    drill_harness ~drill:"cascade" ~slo_class:"cascade" ~plan
      ~fault_horizon:26.0 ~body ?on_world ~seed ()
  in
  { o with
    reconverged = o.reconverged && !refused_down && !failover_ok;
    detail =
      Printf.sprintf
        "refused at crashed mux: %b; failover export at ufmg01: %b"
        !refused_down !failover_ok
  }

(* Leak storm: mid-run, a handful of edges start leaking (RFC 7908),
   repropagation switches to the general engine, and the pollution set
   is the measured blast radius; clearing the leaks must restore the
   valley-free baseline exactly. *)
let leak_storm_drill ?on_world ~seed () =
  Span.reset ();
  Sink.start_flight_recorder ();
  let w = make_world ?on_world ~seed () in
  let sample, dips = make_dip_tracker w in
  let g = Testbed.graph w.tb in
  (* Deterministic leakers: the first ASes (ascending) with at least
     two providers each leak to their second provider. *)
  let leak_edges =
    let rec pick acc n = function
      | [] -> List.rev acc
      | _ when n = 0 -> List.rev acc
      | asn :: rest -> (
        match As_graph.providers g asn with
        | _ :: second :: _ -> pick ((asn, second) :: acc) (n - 1) rest
        | _ -> pick acc n rest)
    in
    pick [] 3 (As_graph.ases g)
  in
  let fault_start = Engine.now w.eng in
  let polluted = ref 0 in
  (* The storm is not an injector fault (it rewires propagation, not a
     registered target), so the drill roots the span itself, exactly
     like Injector.apply does. *)
  Span.with_span
    ~time:(fun () -> Engine.now w.eng)
    ~attrs:
      [ ("target", "leak-edges");
        ( "fault",
          Printf.sprintf "route-leak storm on %d edges"
            (List.length leak_edges) )
      ]
    "fault.inject"
    (fun () ->
      Testbed.set_leak_edges w.tb leak_edges;
      polluted :=
        List.fold_left
          (fun acc (prefix, _) ->
            match Testbed.result_for w.tb prefix with
            | Some r -> acc + List.length (Propagation.polluted g r)
            | None -> acc)
          0 w.baseline);
  sample ();
  Engine.run_for w.eng 10.0;
  Testbed.set_leak_edges w.tb [];
  let residual =
    List.fold_left
      (fun acc (prefix, _) ->
        match Testbed.result_for w.tb prefix with
        | Some r -> acc + List.length (Propagation.polluted g r)
        | None -> acc)
      0 w.baseline
  in
  let settled = wait_until w.eng (fun () -> world_recovered w) ~timeout:60.0 in
  Sink.stop_flight_recorder ();
  let recovery_s =
    match settled with Some at -> at -. fault_start | None -> Float.nan
  in
  let reconverged = settled <> None && residual = 0 in
  if reconverged then
    Metrics.Histogram.observe (recovery_hist "leak_storm") recovery_s;
  { drill = "leak_storm";
    slo_class = "leak_storm";
    injected =
      [ Printf.sprintf "route-leak storm on %d edges" (List.length leak_edges)
      ];
    reconverged;
    recovery_s;
    routes_lost = routes_lost w;
    tenant_reaches = [];
    blast = collect_blast ~dips:(dips ()) ();
    detail =
      Printf.sprintf
        "%d polluted AS-routes at storm peak; %d after clearing" !polluted
        residual
  }

(* Multi-tenant compound: the compound fault plan fired under 20
   concurrent scheduler-admitted experiments, each holding a leased
   /24 announced from every site. Recovery requires the usual world
   predicate AND every tenant's per-prefix reach back at its own
   baseline — the per-tenant zero-routes-lost SLO. *)
let multi_tenant_drill ?on_world ~seed () =
  Span.reset ();
  Sink.start_flight_recorder ();
  let w = make_world ?on_world ~seed () in
  let n_tenants = 20 in
  let sched = Scheduler.create ~quota:4 ~round_interval:0.5 w.tb in
  for i = 0 to n_tenants - 1 do
    let tenant = Printf.sprintf "exp-%02d" i in
    match Scheduler.admit sched (Scheduler.proposal tenant) with
    | Scheduler.Admitted _ -> ()
    | Scheduler.Rejected issues ->
      invalid_arg
        (Printf.sprintf "Campaign: tenant %s rejected: %s" tenant
           (String.concat "; "
              (List.map (fun i -> i.Scheduler.issue_message) issues)))
  done;
  List.iter
    (fun tenant ->
      List.iter
        (fun p ->
          match Scheduler.request_announce sched ~tenant p with
          | Ok () -> ()
          | Error e -> invalid_arg ("Campaign: " ^ e))
        (Scheduler.leased_prefixes sched tenant))
    (Scheduler.tenants sched);
  ignore (Scheduler.pump sched);
  let tenant_baseline =
    List.map
      (fun tenant ->
        let p = List.hd (Scheduler.leased_prefixes sched tenant) in
        (tenant, p, Testbed.reach_count w.tb p))
      (Scheduler.tenants sched)
  in
  let tenants_recovered () =
    List.for_all
      (fun (_, p, base) -> Testbed.reach_count w.tb p = base)
      tenant_baseline
  in
  let sample, dips = make_dip_tracker w in
  let fault_horizon = 34.0 in
  let plan =
    Plan.of_steps
      [ { Plan.at = 1.0;
          fault = Plan.Mux_crash { mux = "mux:gatech01"; downtime = 20.0 }
        };
        { Plan.at = 8.0;
          fault = Plan.Partition { link = "link:usc01"; duration = 25.0 }
        };
        { Plan.at = 10.0;
          fault = Plan.Partition { link = "link:emu:fra-ams"; duration = 5.0 }
        }
      ]
  in
  let fault_start = Engine.now w.eng in
  Injector.arm w.inj plan;
  let settled =
    wait_until w.eng
      (fun () ->
        sample ();
        Engine.now w.eng >= fault_start +. fault_horizon
        && world_recovered w && tenants_recovered ())
      ~timeout:(fault_horizon +. 600.0)
  in
  Sink.stop_flight_recorder ();
  let recovery_s =
    match settled with Some at -> at -. fault_start | None -> Float.nan
  in
  let reconverged = settled <> None in
  if reconverged then
    Metrics.Histogram.observe (recovery_hist "multi_tenant") recovery_s;
  let tenant_reaches =
    List.map
      (fun (tenant, p, base) -> (tenant, base, Testbed.reach_count w.tb p))
      tenant_baseline
  in
  let tenant_lost =
    List.fold_left
      (fun acc (_, base, final) -> acc + max 0 (base - final))
      0 tenant_reaches
  in
  { drill = "multi_tenant";
    slo_class = "multi_tenant";
    injected = List.map (fun (s : Plan.step) -> Plan.describe s.fault) plan;
    reconverged;
    recovery_s;
    routes_lost = routes_lost w + tenant_lost;
    tenant_reaches;
    blast = collect_blast ~plan ~dips:(dips ()) ();
    detail =
      Printf.sprintf
        "%d concurrent scheduled experiments; per-tenant reach restored: %b"
        (List.length tenant_reaches) (tenant_lost = 0)
  }

(* Dampening sweep: the same seeded flap workload against a grid of
   RFC 2439 parameters, reading the bgp.dampening.* instruments. *)
let sweep_grid =
  [ (300.0, 2000.0, 750.0);
    (300.0, 3000.0, 1500.0);
    (900.0, 2000.0, 750.0);
    (900.0, 3000.0, 1500.0)
  ]

let sweep_combo ~seed (half_life, suppress_threshold, reuse_threshold) =
  let eng = Engine.create ~seed () in
  let params =
    { Peering_bgp.Dampening.default_params with
      half_life;
      suppress_threshold;
      reuse_threshold
    }
  in
  let safety =
    Safety.create ~dampening:params ~peering_asn:(Asn.of_int 47065)
      ~owns:(Prefix.subsumes (Prefix.of_string_exn "184.164.224.0/19"))
      ()
  in
  let exp =
    Experiment.make ~id:"campaign-sweep" ~owner:"campaign"
      ~description:"dampening parameter sweep flap workload" ()
  in
  let pfx = Prefix.of_string_exn "184.164.230.0/24" in
  exp.Experiment.prefixes <- [ pfx ];
  exp.Experiment.status <- Experiment.Active;
  let announce () =
    Safety.check_announce safety ~now:(Engine.now eng)
      ~client:"campaign-sweep" ~experiment:exp ~prefix:pfx ~path_suffix:[]
  in
  let withdraw () =
    Safety.note_withdraw safety ~now:(Engine.now eng) ~client:"campaign-sweep"
      ~prefix:pfx
  in
  let suppressed_hist =
    Metrics.histogram
      ~help:"time a route spent suppressed before release (virtual s)"
      "bgp.dampening.suppressed_s"
  in
  let samples0 = List.length (Metrics.Histogram.samples suppressed_hist) in
  (match announce () with Ok () -> () | Error _ -> ());
  let flaps = ref 0 in
  let rec flap_until_suppressed () =
    if !flaps >= 10 then None
    else begin
      withdraw ();
      incr flaps;
      Engine.run_for eng 1.0;
      match announce () with
      | Error (Safety.Dampened until) -> Some until
      | Ok () | Error _ -> flap_until_suppressed ()
    end
  in
  match flap_until_suppressed () with
  | None ->
    { half_life;
      suppress_threshold;
      reuse_threshold;
      flaps_to_suppression = !flaps;
      suppressed_s = Float.nan;
      released = false
    }
  | Some until ->
    Engine.run_for eng (until -. Engine.now eng +. 1.0);
    let released = match announce () with Ok () -> true | Error _ -> false in
    let suppressed_s =
      (* The release just recorded lands at the tail of the shared
         histogram; take everything new since this combo started. *)
      match
        List.filteri
          (fun i _ -> i >= samples0)
          (Metrics.Histogram.samples suppressed_hist)
      with
      | [] -> Float.nan
      | samples -> List.fold_left Float.max neg_infinity samples
    in
    { half_life;
      suppress_threshold;
      reuse_threshold;
      flaps_to_suppression = !flaps;
      suppressed_s;
      released
    }

let dampening_drill ~seed =
  let rows = List.map (sweep_combo ~seed) sweep_grid in
  let all_released = List.for_all (fun r -> r.released) rows in
  let worst =
    List.fold_left
      (fun acc r ->
        if Float.is_nan r.suppressed_s then acc else Float.max acc r.suppressed_s)
      0.0 rows
  in
  if all_released then
    Metrics.Histogram.observe (recovery_hist "dampening") worst;
  ( { drill = "dampening";
      slo_class = "dampening";
      injected =
        List.map
          (fun (hl, s, r) ->
            Printf.sprintf
              "flap workload vs dampening hl=%.0fs suppress=%.0f reuse=%.0f"
              hl s r)
          sweep_grid;
      reconverged = all_released;
      recovery_s = (if all_released then worst else Float.nan);
      routes_lost = 0;
      tenant_reaches = [];
      blast =
        { by_target = [];
          by_site = [];
          by_client = [];
          by_prefix = [];
          impacted_sites = [];
          reach_dips = [];
          trace_spans = 0
        };
      detail =
        Printf.sprintf "%d parameter combinations, all released: %b"
          (List.length rows) all_released
    },
    rows )

(* ------------------------------------------------------------------ *)
(* Driver *)

let drills =
  [ "compound"; "fate_group"; "cascade"; "leak_storm"; "dampening";
    "multi_tenant" ]

let drill_index name =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Campaign: unknown drill %S" name)
    | d :: _ when d = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 drills

type report = {
  seed : int;
  outcomes : outcome list;
  slos : slo_verdict list;
  sweep : sweep_row list;
  zero_routes_lost : bool;
  passed : bool;
}

let run_drill ?on_world ~seed name =
  match name with
  | "compound" -> (compound_drill ?on_world ~seed (), [])
  | "fate_group" -> (fate_group_drill ?on_world ~seed (), [])
  | "cascade" -> (cascade_drill ?on_world ~seed (), [])
  | "leak_storm" -> (leak_storm_drill ?on_world ~seed (), [])
  | "dampening" -> dampening_drill ~seed
  | "multi_tenant" -> (multi_tenant_drill ?on_world ~seed (), [])
  | s -> invalid_arg (Printf.sprintf "Campaign: unknown drill %S" s)

let slo_verdicts slos =
  List.filter_map
    (fun { slo_class; p99_budget_s } ->
      let samples =
        Metrics.Histogram.samples
          (recovery_hist slo_class)
      in
      match samples with
      | [] -> None
      | _ ->
        let p99 = Stats.percentile 99.0 samples in
        Some
          { verdict_class = slo_class;
            budget_s = p99_budget_s;
            p99_s = p99;
            samples = List.length samples;
            met = p99 <= p99_budget_s
          })
    slos

let run ?(seed = 42) ?(drills = drills) ?(slos = default_slos) () =
  (* Drill seeds derive from the position in the canonical drill list,
     so a single-drill run replays the very same world as the full
     campaign. *)
  let results =
    List.map
      (fun name -> run_drill ~seed:(seed + (101 * drill_index name)) name)
      drills
  in
  let outcomes = List.map fst results in
  let sweep = List.concat_map snd results in
  let slos = slo_verdicts slos in
  let zero_routes_lost =
    List.for_all (fun o -> o.routes_lost = 0) outcomes
  in
  let passed =
    zero_routes_lost
    && List.for_all (fun o -> o.reconverged) outcomes
    && List.for_all (fun v -> v.met) slos
  in
  { seed; outcomes; slos; sweep; zero_routes_lost; passed }

(* ------------------------------------------------------------------ *)
(* Reports *)

let entity_json (e : Blast.entity) =
  Json.Obj
    [ ("value", Json.String e.Blast.value);
      ("first", Json.Float e.Blast.first);
      ("last", Json.Float e.Blast.last);
      ("spans", Json.Int e.Blast.spans)
    ]

let dip_json d =
  Json.Obj
    [ ("prefix", Json.String d.dip_prefix);
      ("baseline_reach", Json.Int d.baseline_reach);
      ("min_reach", Json.Int d.min_reach);
      ("from", Json.Float d.dip_from);
      ("until", Json.Float d.dip_until)
    ]

let blast_json b =
  Json.Obj
    [ ("targets", Json.List (List.map entity_json b.by_target));
      ("sites", Json.List (List.map entity_json b.by_site));
      ("clients", Json.List (List.map entity_json b.by_client));
      ("prefixes", Json.List (List.map entity_json b.by_prefix));
      ( "impacted_sites",
        Json.List (List.map (fun s -> Json.String s) b.impacted_sites) );
      ("reach_dips", Json.List (List.map dip_json b.reach_dips));
      ("trace_spans", Json.Int b.trace_spans)
    ]

let outcome_json o =
  Json.Obj
    [ ("drill", Json.String o.drill);
      ("class", Json.String o.slo_class);
      ( "injected",
        Json.List (List.map (fun s -> Json.String s) o.injected) );
      ("reconverged", Json.Bool o.reconverged);
      ("recovery_s", Json.Float o.recovery_s);
      ("routes_lost", Json.Int o.routes_lost);
      ( "tenants",
        Json.List
          (List.map
             (fun (tenant, base, final) ->
               Json.Obj
                 [ ("tenant", Json.String tenant);
                   ("baseline_reach", Json.Int base);
                   ("final_reach", Json.Int final)
                 ])
             o.tenant_reaches) );
      ("blast", blast_json o.blast);
      ("detail", Json.String o.detail)
    ]

let verdict_json v =
  Json.Obj
    [ ("class", Json.String v.verdict_class);
      ("p99_s", Json.Float v.p99_s);
      ("budget_s", Json.Float v.budget_s);
      ("samples", Json.Int v.samples);
      ("met", Json.Bool v.met)
    ]

let sweep_json r =
  Json.Obj
    [ ("half_life_s", Json.Float r.half_life);
      ("suppress_threshold", Json.Float r.suppress_threshold);
      ("reuse_threshold", Json.Float r.reuse_threshold);
      ("flaps_to_suppression", Json.Int r.flaps_to_suppression);
      ("suppressed_s", Json.Float r.suppressed_s);
      ("released", Json.Bool r.released)
    ]

let to_json report =
  Json.Obj
    [ ("schema", Json.String "peering-chaos-campaign/1");
      ("seed", Json.Int report.seed);
      ("drills", Json.List (List.map outcome_json report.outcomes));
      ("slos", Json.List (List.map verdict_json report.slos));
      ("dampening_sweep", Json.List (List.map sweep_json report.sweep));
      ("zero_routes_lost", Json.Bool report.zero_routes_lost);
      ("passed", Json.Bool report.passed);
      ("metrics", Peering_measure.Obs_report.to_json ())
    ]
