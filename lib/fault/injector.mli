(** Seed-driven fault injection over a running simulation.

    The injector holds a registry of named targets — BGP links
    ({!Peering_bgp.Session}), muxes ({!Peering_core.Server}) and
    tunnels ({!Peering_dataplane.Tunnel}) — and applies a {!Plan.t}
    against them on the shared engine. All probabilistic decisions draw
    from a stream split off the engine RNG at {!create}, so a given
    seed yields a bit-identical failure timeline; [fault.*] counters
    and [Fault_injected]/[Recovered] trace events record what
    happened. *)

type t

val create : Peering_sim.Engine.t -> t
(** A fresh injector on the engine; splits its RNG stream off the
    engine's root stream at this point. *)

val add_link : t -> name:string -> Peering_bgp.Session.t -> unit
(** Register a BGP session as an impairable link. Duplicate names
    raise [Invalid_argument]. *)

val add_mux : t -> name:string -> Peering_core.Server.t -> unit
(** Register a mux as a crash/restart target. *)

val add_tunnel : t -> name:string -> Peering_dataplane.Tunnel.t -> unit
(** Register a tunnel as a blackhole target. *)

val targets : t -> Plan.targets
(** Everything registered so far, each list sorted by name — feed it
    to {!Plan.validate} to vet a plan against this injector before
    arming. *)

val apply : t -> Plan.fault -> unit
(** Apply one fault right now (timed expiry still scheduled on the
    engine). Unknown target names raise [Invalid_argument], as does a
    nested {!Plan.Fate_group}. A fate group applies every member at
    the current instant under one [fault.inject] span. *)

val arm : t -> Plan.t -> unit
(** Schedule every step of the plan relative to the current virtual
    time. Overlapping impairments on one link — and overlapping
    blackhole windows on one tunnel — supersede each other: the newest
    hook wins and the superseded expiry is cancelled. *)

val rng : t -> Peering_sim.Rng.t
(** The injector's private RNG stream (exposed so harnesses can make
    auxiliary seeded choices that do not disturb the engine). *)
