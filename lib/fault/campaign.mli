(** Testbed-scale compound chaos campaigns.

    Where {!Chaos} drills one fault class against a two-router
    micro-world, a campaign drills {e correlated} and {e overlapping}
    faults against the real default testbed ({!Peering_core.Testbed}):
    every mux, a live upstream wire session per university site, a
    tunnel per site, and a MinineXt-style emulated backbone are all
    registered with one {!Injector}, and each drill holds the world to
    two bars — a per-class recovery SLO (p99 of
    [fault.recovery_s{class=…}] against a budget) and {e zero routes
    lost} (every prefix's propagation reach returns exactly to its
    pre-fault baseline).

    Each drill runs under the span flight recorder: the injected
    faults root [fault.inject] traces, and the blast radius — which
    sites, clients and prefixes the fault actually touched, and for
    how long — is rolled up from the causal closure of those traces
    ({!Peering_obs.Blast}) plus per-prefix reach-dip windows sampled
    while the drill runs.

    Determinism: drill [i] of the canonical {!drills} list seeds its
    world with [campaign_seed + 101*i], spans are reset per drill, and
    no wall-clock value enters the report, so two same-seed runs (and
    a single-drill rerun of any campaign member) produce byte-identical
    blast accounting. *)

(** {1 Blast-radius accounting} *)

type reach_dip = {
  dip_prefix : string;
  baseline_reach : int;
  min_reach : int;  (** lowest reach observed during the drill *)
  dip_from : float;  (** virtual time reach first dipped below baseline *)
  dip_until : float;  (** virtual time reach last sat below baseline *)
}

type blast = {
  by_target : Peering_obs.Blast.entity list;
      (** injected targets, from the [fault.inject] root spans *)
  by_site : Peering_obs.Blast.entity list;
      (** sites whose spans joined a fault's causal trace *)
  by_client : Peering_obs.Blast.entity list;
  by_prefix : Peering_obs.Blast.entity list;
  impacted_sites : string list;
      (** union of span-derived sites and the injected targets' own
          sites, sorted and deduplicated *)
  reach_dips : reach_dip list;
  trace_spans : int;  (** spans in the faults' causal closure *)
}

type outcome = {
  drill : string;
  slo_class : string;  (** the [fault.recovery_s] class label *)
  injected : string list;  (** {!Plan.describe} of everything injected *)
  reconverged : bool;
  recovery_s : float;  (** NaN when the drill never settled *)
  routes_lost : int;
      (** summed baseline-reach shortfall at drill end (scheduled
          tenants included); 0 required *)
  tenant_reaches : (string * int * int) list;
      (** [(tenant, baseline reach, final reach)] per scheduled
          experiment, for drills that run the multi-tenant scheduler
          (["multi_tenant"]); [[]] elsewhere. The per-tenant
          zero-routes-lost SLO is [final = baseline] for every row. *)
  blast : blast;
  detail : string;
}

(** {1 Recovery SLOs} *)

type slo = { slo_class : string; p99_budget_s : float }

val default_slos : slo list
(** One budget per drill class; see EXPERIMENTS.md for the calibration
    rationale. *)

type slo_verdict = {
  verdict_class : string;
  budget_s : float;
  p99_s : float;
  samples : int;
  met : bool;
}

(** {1 Dampening parameter sweep} *)

type sweep_row = {
  half_life : float;
  suppress_threshold : float;
  reuse_threshold : float;
  flaps_to_suppression : int;
  suppressed_s : float;  (** hold-down time until release; NaN if never *)
  released : bool;
}

(** {1 Running campaigns} *)

val drills : string list
(** The canonical drill names, in seed order: ["compound"] (mux
    restart overlapping two partitions), ["fate_group"] (all site
    tunnels blackholed as one correlated group), ["cascade"]
    (overlapping mux crashes with a mid-outage client failover
    re-export), ["leak_storm"] (RFC 7908 leak edges injected mid-run,
    blast radius = the pollution set), ["dampening"] (the RFC 2439
    parameter sweep), ["multi_tenant"] (the compound plan fired under
    20 concurrent {!Peering_core.Scheduler}-admitted experiments;
    recovery additionally requires every tenant's per-prefix reach
    back at its own baseline). *)

val run_drill :
  ?on_world:(Peering_core.Testbed.t -> unit) ->
  seed:int ->
  string ->
  outcome * sweep_row list
(** Run one drill on a fresh world. [on_world] is called with the
    drill's testbed right after it is built and before any fault is
    armed — the BMP differential harness uses it to attach a
    {!Peering_measure.Monitor} to every mux inside the drill
    (["dampening"] builds no testbed and ignores it). The sweep rows
    are non-empty only for ["dampening"]. Raises [Invalid_argument] on
    unknown names. *)

type report = {
  seed : int;
  outcomes : outcome list;
  slos : slo_verdict list;
  sweep : sweep_row list;
  zero_routes_lost : bool;
  passed : bool;
      (** all drills reconverged, zero routes lost, every SLO met *)
}

val run : ?seed:int -> ?drills:string list -> ?slos:slo list -> unit -> report
(** Run the named drills (default: all of {!drills}) and judge the
    SLOs. Each drill derives its seed from its position in the
    canonical list, so subsets replay the same worlds the full
    campaign uses. The caller owns {!Peering_obs.Metrics.reset} — the
    CLI resets the registry first so same-seed reports are
    byte-identical regardless of process history. *)

val to_json : report -> Peering_obs.Json.t
(** Schema ["peering-chaos-campaign/1"], embedding the metrics
    snapshot. Deterministic for a given seed and drill list. *)
