open Peering_bgp
module Engine = Peering_sim.Engine
module Rng = Peering_sim.Rng
module Metrics = Peering_obs.Metrics
module Sink = Peering_obs.Sink
module Span = Peering_obs.Span

let m_injected =
  Metrics.counter ~help:"fault-plan steps applied" "fault.injected"

let m_dropped =
  Metrics.counter ~help:"messages dropped by fault injection"
    "fault.msg_dropped"

let m_duplicated =
  Metrics.counter ~help:"messages duplicated by fault injection"
    "fault.msg_duplicated"

let m_corrupted =
  Metrics.counter ~help:"messages corrupted by fault injection"
    "fault.msg_corrupted"

let m_delayed =
  Metrics.counter ~help:"messages delayed (reordered) by fault injection"
    "fault.msg_delayed"

let m_session_resets =
  Metrics.counter ~help:"session resets injected" "fault.session_resets"

let m_partitions =
  Metrics.counter ~help:"link partitions injected" "fault.partitions"

let m_mux_crashes =
  Metrics.counter ~help:"mux crashes injected" "fault.mux_crashes"

let m_blackholes =
  Metrics.counter ~help:"tunnel blackholes injected" "fault.tunnel_blackholes"

let m_fate_groups =
  Metrics.counter ~help:"correlated fate-group failures injected"
    "fault.fate_groups"

type link = {
  session : Session.t;
  mutable generation : int;  (* invalidates expiry of replaced impairments *)
}

type tun = {
  tunnel : Peering_dataplane.Tunnel.t;
  mutable t_generation : int;  (* same trick for overlapping blackholes *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  links : (string, link) Hashtbl.t;
  muxes : (string, Peering_core.Server.t) Hashtbl.t;
  tunnels : (string, tun) Hashtbl.t;
}

let create engine =
  { engine;
    (* A split stream: fault decisions interleave with protocol
       machinery without perturbing its draws. *)
    rng = Rng.split (Engine.rng engine);
    links = Hashtbl.create 8;
    muxes = Hashtbl.create 4;
    tunnels = Hashtbl.create 4
  }

let add_link t ~name session =
  if Hashtbl.mem t.links name then
    invalid_arg "Injector.add_link: duplicate name";
  Hashtbl.replace t.links name { session; generation = 0 }

let add_mux t ~name server =
  if Hashtbl.mem t.muxes name then invalid_arg "Injector.add_mux: duplicate name";
  Hashtbl.replace t.muxes name server

let add_tunnel t ~name tunnel =
  if Hashtbl.mem t.tunnels name then
    invalid_arg "Injector.add_tunnel: duplicate name";
  Hashtbl.replace t.tunnels name { tunnel; t_generation = 0 }

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let targets t =
  { Plan.links = sorted_keys t.links;
    muxes = sorted_keys t.muxes;
    tunnels = sorted_keys t.tunnels
  }

let find tbl what name =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None -> invalid_arg (Printf.sprintf "Injector: unknown %s %S" what name)

let emit_fault t fault =
  Metrics.Counter.inc m_injected;
  if Sink.active () then
    Sink.emit ~time:(Engine.now t.engine) ~level:Peering_obs.Event.Warn
      ~subsystem:"fault"
      (Peering_obs.Event.Fault_injected
         { target = Plan.target fault; fault = Plan.describe fault })

let emit_recovered t ~target ~after_s =
  if Sink.active () then
    Sink.emit ~time:(Engine.now t.engine) ~subsystem:"fault"
      (Peering_obs.Event.Recovered { target; after_s })

(* Install [hook] on the link for [duration]; a newer hook on the same
   link supersedes the pending expiry via the generation counter. *)
let impair_for t ~name ~duration hook =
  let link = find t.links "link" name in
  link.generation <- link.generation + 1;
  let generation = link.generation in
  Session.set_fault_hook link.session (Some hook);
  Engine.schedule t.engine ~delay:duration (fun () ->
      if generation = link.generation then begin
        Session.set_fault_hook link.session None;
        emit_recovered t ~target:name ~after_s:duration
      end)

let profile_hook t (p : Plan.link_profile) _msg =
  if p.Plan.loss > 0.0 && Rng.bernoulli t.rng p.Plan.loss then begin
    Metrics.Counter.inc m_dropped;
    Some Session.Drop
  end
  else if p.Plan.duplicate > 0.0 && Rng.bernoulli t.rng p.Plan.duplicate
  then begin
    Metrics.Counter.inc m_duplicated;
    Some Session.Duplicate
  end
  else if p.Plan.corrupt > 0.0 && Rng.bernoulli t.rng p.Plan.corrupt then begin
    Metrics.Counter.inc m_corrupted;
    Some Session.Corrupt
  end
  else if p.Plan.reorder > 0.0 && Rng.bernoulli t.rng p.Plan.reorder then begin
    Metrics.Counter.inc m_delayed;
    Some (Session.Delay (Rng.float t.rng p.Plan.reorder_max_delay))
  end
  else None

let rec apply_fault t fault =
  emit_fault t fault;
  match fault with
  | Plan.Impair { link; profile; duration } ->
    impair_for t ~name:link ~duration (profile_hook t profile)
  | Plan.Partition { link; duration } ->
    Metrics.Counter.inc m_partitions;
    impair_for t ~name:link ~duration (fun _ ->
        Metrics.Counter.inc m_dropped;
        Some Session.Drop)
  | Plan.Session_reset { link } ->
    Metrics.Counter.inc m_session_resets;
    let l = find t.links "link" link in
    Session.reset l.session ~reason:"fault: session reset"
  | Plan.Mux_crash { mux; downtime } ->
    Metrics.Counter.inc m_mux_crashes;
    let server = find t.muxes "mux" mux in
    Peering_core.Server.crash server;
    Engine.schedule t.engine ~delay:downtime (fun () ->
        Peering_core.Server.restart server;
        emit_recovered t ~target:mux ~after_s:downtime)
  | Plan.Tunnel_blackhole { tunnel; duration } ->
    Metrics.Counter.inc m_blackholes;
    let tun = find t.tunnels "tunnel" tunnel in
    tun.t_generation <- tun.t_generation + 1;
    let generation = tun.t_generation in
    Peering_dataplane.Tunnel.set_blackhole tun.tunnel true;
    Engine.schedule t.engine ~delay:duration (fun () ->
        (* A newer blackhole window on the same tunnel owns the expiry
           now — same generation trick as link impairments. *)
        if generation = tun.t_generation then begin
          Peering_dataplane.Tunnel.set_blackhole tun.tunnel false;
          emit_recovered t ~target:tunnel ~after_s:duration
        end)
  | Plan.Fate_group { group; faults } ->
    if
      List.exists
        (function Plan.Fate_group _ -> true | _ -> false)
        faults
    then invalid_arg (Printf.sprintf "Injector: nested fate group %S" group);
    Metrics.Counter.inc m_fate_groups;
    (* Correlated failure: every member fires at this same instant,
       each emitting its own Fault_injected event so the timeline
       shows the shared-fate cluster. *)
    List.iter (apply_fault t) faults

(* A chaos fault is one of the traced entry points: each applied step
   roots its own span, so everything the fault triggers (drops, mux
   restart exports, recovery) hangs off it in [peering_cli trace]. *)
let apply t fault =
  Span.with_span
    ~time:(fun () -> Engine.now t.engine)
    ~attrs:[ ("target", Plan.target fault); ("fault", Plan.describe fault) ]
    "fault.inject"
    (fun () -> apply_fault t fault)

let arm t plan =
  List.iter
    (fun { Plan.at; fault } ->
      Engine.schedule t.engine ~delay:at (fun () -> apply t fault))
    plan

let rng t = t.rng
