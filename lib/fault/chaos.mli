(** Chaos scenarios: one curated fault drill per fault class.

    Each scenario builds a small self-contained world on a fresh
    engine (seeded deterministically from the run seed), injects a
    fault plan through {!Injector}, and measures time-to-reconverge
    and routes lost. Recovery latencies land in the
    [fault.recovery_s] histogram, labelled by fault class; the whole
    suite is byte-reproducible for a given seed. *)

type outcome = {
  scenario : string;  (** scenario name, one of {!scenarios} *)
  fault_class : string;  (** {!Plan.fault_class}-style tag *)
  reconverged : bool;
      (** the world returned to its pre-fault state (no stuck sessions,
          no leaked or missing routes) *)
  recovery_s : float;
      (** virtual seconds from fault injection to reconvergence;
          [nan] when the scenario never reconverged *)
  routes_lost : int;  (** routes missing at the end of the scenario *)
  detail : string;  (** scenario-specific human-readable summary *)
}

val scenarios : string list
(** Names accepted by {!run_one}, in execution order: loss, duplicate,
    corrupt, reorder, reset, partition, flap, mux_crash, blackhole. *)

val run_one : seed:int -> string -> outcome
(** Run one scenario on a fresh engine seeded with [seed]. Raises
    [Invalid_argument] on an unknown name. *)

val run_all : ?seed:int -> unit -> outcome list
(** Run every scenario, each on its own engine with a seed derived
    from [seed] (default 42). Identical seeds produce identical
    outcome lists. *)

val outcome_json : outcome -> Peering_obs.Json.t
(** One outcome as a JSON object row. *)

val to_json : seed:int -> outcome list -> Peering_obs.Json.t
(** The full chaos report (schema ["peering-chaos/1"]): seed, scenario
    rows, and the deterministic metrics snapshot. *)
