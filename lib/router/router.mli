(** A software BGP router in the style of Quagga's bgpd: named
    neighbors with import/export policies, locally originated
    networks, a full RIB, and correct eBGP/iBGP export behaviour.

    Routers are the workhorse of the testbed: emulated intradomain
    PoPs (§4.2), PEERING clients, and the memory benchmark (Fig. 2)
    all instantiate this module. Two routers are joined with
    {!connect}, which runs a real {!Peering_bgp.Session} (RFC 4271
    bytes on the wire) between them. *)

open Peering_net
open Peering_bgp

type t

val create :
  Peering_sim.Engine.t ->
  asn:Asn.t ->
  router_id:Ipv4.t ->
  ?hold_time:int ->
  ?mrai:float ->
  ?graceful_restart:int ->
  unit ->
  t
(** [mrai] (seconds, default 0 = disabled) enforces a minimum
    route-advertisement interval per neighbor: best-route changes
    inside the window are held and flushed together when it expires —
    the batching behind BGP's delayed-convergence dynamics (RFC 4271
    §9.2.1.1).

    [graceful_restart] (seconds) advertises the RFC 4724 capability on
    every session this router initiates. When both sides advertise it,
    each acts as a helper for the other: on session loss the peer's
    routes are retained (marked stale) for the peer's advertised
    restart time, and withdrawn only if the session does not come back
    and resynchronize in time. *)

val asn : t -> Asn.t
val router_id : t -> Ipv4.t
val rib : t -> Rib.t

val originate : t -> ?communities:Community.t list -> Prefix.t -> unit
(** Originate a network: install a local route and advertise it to all
    established neighbors. The next hop is the router id. *)

val withdraw_network : t -> Prefix.t -> unit

val networks : t -> Prefix.t list

type neighbor

val neighbor_addr : neighbor -> Ipv4.t
val neighbor_asn : neighbor -> Asn.t
val neighbor_established : neighbor -> bool

val neighbors : t -> neighbor list

val set_import_policy : t -> Ipv4.t -> Policy.t -> unit
(** Set the import route-map for the neighbor at this address.
    Default: permit all. *)

val set_export_policy : t -> Ipv4.t -> Policy.t -> unit

val connect :
  Peering_sim.Engine.t ->
  ?latency:float ->
  ?auto_restart:bool ->
  t * Ipv4.t ->
  t * Ipv4.t ->
  Session.t
(** [connect engine (r1, addr1) (r2, addr2)] registers each router as
    the other's neighbor (eBGP if ASNs differ, iBGP otherwise), builds
    the session, and starts it. Run the engine to establish; on
    establishment each side sends its full table subject to export
    policy. [auto_restart] (default false) makes both FSMs reconnect
    after non-administrative closes with jittered exponential
    backoff. *)

val best_route : t -> Prefix.t -> Route.t option
val lookup : t -> Ipv4.t -> Route.t option
val table_size : t -> int
(** Loc-RIB prefix count. *)

val advertised_to : t -> Ipv4.t -> Prefix.t list
(** Adj-RIB-Out contents for the neighbor, address order. *)

val updates_received : t -> int
val updates_sent : t -> int
