(** A Quagga-flavoured configuration language.

    PEERING ships clients a bgpd configuration; this module parses the
    dialect we support and instantiates routers from it. Supported
    statements (one per line, two-space indentation optional, [!] and
    [#] start comments):

    {v
router bgp <asn>
 bgp router-id <ip>
 network <prefix>
 neighbor <ip> remote-as <asn>
 neighbor <ip> route-map <name> in|out
 neighbor <ip> timers <keepalive> <holdtime>
 neighbor <ip> timers connect <seconds>
ip prefix-list <name> seq <n> permit|deny <prefix> [ge <n>] [le <n>]
route-map <name> permit|deny <seq>
 match ip address prefix-list <name>
 match community <asn>:<value>
 match as-path-contains <asn>
 set local-preference <n>
 set metric <n>
 set community <asn>:<value> [additive]
 set as-path prepend <asn> <count>
 set next-hop <ip>
    v}

    The parsed representation keeps source line numbers so static
    analysis ({!Peering_check}) can report locations. *)

open Peering_net
open Peering_bgp

type neighbor_config = {
  addr : Ipv4.t;
  remote_as : Asn.t;
  route_map_in : string option;
  route_map_out : string option;
  keepalive : int option;  (** [timers <k> <h>]: keepalive interval, s *)
  holdtime : int option;  (** [timers <k> <h>]: hold time, s *)
  connect_retry_s : int option;  (** [timers connect <n>]: retry base, s *)
  timers_line : int option;
      (** line of the last [timers] statement, for diagnostics *)
  nbr_line : int;  (** line of the [remote-as] declaration *)
}

type bgp_config = {
  asn : Asn.t;
  router_id : Ipv4.t option;
  networks : Prefix.t list;
  network_lines : (Prefix.t * int) list;
      (** [networks] paired with their declaration lines *)
  neighbors : neighbor_config list;
}

type prefix_rule = {
  pl_seq : int;
  pl_permit : bool;
  pl_prefix : Prefix.t;
  pl_ge : int option;
  pl_le : int option;
  pl_line : int;
}

type map_match =
  | M_prefix_list of string
  | M_community of Community.t
  | M_as_path_contains of Asn.t

type map_set =
  | S_local_pref of int
  | S_metric of int
  | S_community of Community.t * bool
      (** [S_community (c, additive)]: non-additive replaces the
          community list, additive appends *)
  | S_prepend of Asn.t * int
  | S_next_hop of Ipv4.t

type map_entry = {
  rm_seq : int;
  rm_permit : bool;
  rm_line : int;
  mutable rm_matches : map_match list;
  mutable rm_sets : map_set list;
}

type t

val parse : string -> (t, string) result
(** Parse a configuration text. The error includes a line number. *)

val parse_exn : string -> t

val bgp : t -> bgp_config option

val route_map_names : t -> string list
val prefix_list_names : t -> string list

val route_map : t -> string -> map_entry list option
(** Entries in source order. *)

val prefix_list : t -> string -> prefix_rule list option
(** Rules in source order. *)

val route_maps : t -> (string * map_entry list) list
(** All route-maps, sorted by name. *)

val prefix_lists : t -> (string * prefix_rule list) list
(** All prefix-lists, sorted by name. *)

val compile_route_map : t -> string -> (Policy.t, string) result
(** Compile the named route-map (resolving prefix-list references)
    into a {!Peering_bgp.Policy.t}. An undefined route-map or a
    reference to an undefined prefix-list is an error. *)

val instantiate :
  Peering_sim.Engine.t -> t -> (Router.t, string) result
(** Build a router from the [router bgp] block: creates the router and
    originates its networks. Neighbor sessions are wired separately
    with {!Router.connect}; the per-neighbor route-maps named in the
    config are applied to the router after connection with
    {!apply_neighbor_policies}. *)

val apply_neighbor_policies : t -> Router.t -> (unit, string) result
(** For each configured neighbor with route-maps, set the compiled
    import/export policies on the (already connected) router. *)
