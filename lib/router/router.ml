open Peering_net
open Peering_bgp
module Engine = Peering_sim.Engine

type neighbor = {
  remote_asn : Asn.t;
  remote_addr : Ipv4.t;
  local_addr : Ipv4.t;
  ebgp : bool;
  mutable import : Policy.t;
  mutable export : Policy.t;
  mutable send : Message.t -> unit;
  mutable up : bool;
  mutable adj_out : Route.t Prefix.Map.t;
  mutable mrai_until : float;  (** no advertisements before this time *)
  mutable pending : Rib.change Prefix.Map.t;  (** held by the MRAI timer *)
  mutable gr_time : int option;
      (** peer's negotiated RFC 4724 restart time, captured on establish *)
  mutable stale_generation : int;
      (** invalidates scheduled stale sweeps across up/down transitions *)
}

type t = {
  engine : Engine.t;
  asn : Asn.t;
  router_id : Ipv4.t;
  hold_time : int;
  mrai : float;
  graceful_restart : int option;
  rib : Rib.t;
  mutable nbrs : neighbor list;
  mutable networks : (Prefix.t * Attrs.t) list;
  mutable rx_updates : int;
  mutable tx_updates : int;
}

let local_peer_key = "<local>"

(* After a helper's session re-establishes, the restarting peer resends
   its table; routes it no longer has must then be swept. With MRAI
   disabled the resync completes within a few wire latencies, so a
   one-second deferral is a comfortable End-of-RIB surrogate. *)
let resync_deferral = 1.0

let create engine ~asn ~router_id ?(hold_time = 90) ?(mrai = 0.0)
    ?graceful_restart () =
  { engine;
    asn;
    router_id;
    hold_time;
    mrai;
    graceful_restart;
    rib = Rib.create ();
    nbrs = [];
    networks = [];
    rx_updates = 0;
    tx_updates = 0
  }

let asn t = t.asn
let router_id t = t.router_id
let rib t = t.rib

let neighbor_addr n = n.remote_addr
let neighbor_asn n = n.remote_asn
let neighbor_established n = n.up
let neighbors t = t.nbrs

let find_neighbor t addr =
  List.find_opt (fun n -> Ipv4.equal n.remote_addr addr) t.nbrs

let find_neighbor_exn t addr =
  match find_neighbor t addr with
  | Some n -> n
  | None -> invalid_arg "Router: unknown neighbor"

let set_import_policy t addr p = (find_neighbor_exn t addr).import <- p
let set_export_policy t addr p = (find_neighbor_exn t addr).export <- p

(* ------------------------------------------------------------------ *)
(* Export path *)

(* Transform a Loc-RIB route for export to [nbr]; [None] = filtered. *)
let export_route t (nbr : neighbor) (route : Route.t) =
  (* Split horizon: never send a route back to the peer it came from. *)
  let from_this_peer =
    match route.Route.source with
    | Some s -> Ipv4.equal s.Route.peer_addr nbr.remote_addr
    | None -> false
  in
  if from_this_peer then None
  else if
    (* iBGP rule: routes learned over iBGP are not re-exported to iBGP
       peers (full-mesh assumption). *)
    (not (Route.is_ebgp route))
    && route.Route.source <> None
    && not nbr.ebgp
  then None
  else if nbr.ebgp && Attrs.has_community Community.no_export route.Route.attrs
  then None
  else if Attrs.has_community Community.no_advertise route.Route.attrs then None
  else
    match Policy.apply nbr.export route with
    | None -> None
    | Some r ->
      let attrs = r.Route.attrs in
      let attrs =
        if nbr.ebgp then
          attrs
          |> Attrs.prepend_asn t.asn
          |> Attrs.with_next_hop nbr.local_addr
          |> Attrs.with_local_pref None
        else attrs
      in
      Some { r with Route.attrs }

let send_update t (nbr : neighbor) msg =
  t.tx_updates <- t.tx_updates + 1;
  nbr.send msg

let emit_change t (nbr : neighbor) (change : Rib.change) =
  let prefix = change.Rib.prefix in
  match Option.map (export_route t nbr) change.Rib.current with
  | Some (Some out) ->
    nbr.adj_out <- Prefix.Map.add prefix out nbr.adj_out;
    send_update t nbr (Message.update_of_announce prefix out.Route.attrs)
  | Some None | None ->
    (* Current best is unexportable or gone: withdraw if advertised. *)
    if Prefix.Map.mem prefix nbr.adj_out then begin
      nbr.adj_out <- Prefix.Map.remove prefix nbr.adj_out;
      send_update t nbr (Message.update_of_withdraw prefix)
    end

let rec flush_pending t (nbr : neighbor) () =
  if nbr.up && not (Prefix.Map.is_empty nbr.pending) then begin
    let batch = nbr.pending in
    nbr.pending <- Prefix.Map.empty;
    nbr.mrai_until <- Engine.now t.engine +. t.mrai;
    Prefix.Map.iter (fun _ change -> emit_change t nbr change) batch;
    Engine.schedule t.engine ~delay:t.mrai (flush_pending t nbr)
  end

let advertise_change t (nbr : neighbor) (change : Rib.change) =
  if nbr.up then
    if t.mrai <= 0.0 then emit_change t nbr change
    else begin
      let now = Engine.now t.engine in
      if now >= nbr.mrai_until && Prefix.Map.is_empty nbr.pending then begin
        nbr.mrai_until <- now +. t.mrai;
        emit_change t nbr change;
        Engine.schedule t.engine ~delay:t.mrai (flush_pending t nbr)
      end
      else
        (* Inside the window: hold the latest change per prefix; the
           timer scheduled at window start flushes it. *)
        nbr.pending <- Prefix.Map.add change.Rib.prefix change nbr.pending
    end

let propagate t changes =
  List.iter
    (fun change -> List.iter (fun nbr -> advertise_change t nbr change) t.nbrs)
    changes

(* Initial table dump: pack prefixes sharing attributes into combined
   UPDATEs instead of one message per prefix. *)
let full_table_to t (nbr : neighbor) =
  if nbr.up then begin
    let exports =
      Rib.fold_best
        (fun prefix route acc ->
          match export_route t nbr route with
          | Some out -> (prefix, out) :: acc
          | None -> acc)
        t.rib []
      |> List.rev
    in
    List.iter
      (fun (prefix, out) ->
        nbr.adj_out <- Prefix.Map.add prefix out nbr.adj_out)
      exports;
    let announcements =
      List.map (fun (p, (out : Route.t)) -> (p, out.Route.attrs)) exports
    in
    List.iter
      (fun u -> send_update t nbr (Message.Update u))
      (Update_group.group announcements)
  end

(* ------------------------------------------------------------------ *)
(* Import path *)

let import_route t (nbr : neighbor) prefix path_id (attrs : Attrs.t) =
  (* eBGP loop detection. *)
  if nbr.ebgp && As_path.mem t.asn attrs.Attrs.as_path then None
  else
    let source =
      { Route.peer_asn = nbr.remote_asn;
        peer_addr = nbr.remote_addr;
        peer_router_id = nbr.remote_addr;
        ebgp = nbr.ebgp
      }
    in
    let attrs =
      if nbr.ebgp then Attrs.with_local_pref None attrs else attrs
    in
    let route =
      Route.make ~source ~path_id ~learned_at:(Engine.now t.engine) prefix attrs
    in
    Policy.apply nbr.import route

let peer_key (nbr : neighbor) = Ipv4.to_string nbr.remote_addr

let on_update t (nbr : neighbor) (u : Message.update) =
  t.rx_updates <- t.rx_updates + 1;
  let changes = ref [] in
  List.iter
    (fun (path_id, prefix) ->
      match Rib.withdraw t.rib ~peer:(peer_key nbr) ~path_id prefix with
      | Some c -> changes := c :: !changes
      | None -> ())
    u.Message.withdrawn;
  (match u.Message.attrs with
  | Some attrs ->
    List.iter
      (fun (path_id, prefix) ->
        match import_route t nbr prefix path_id attrs with
        | Some route -> (
          match Rib.announce t.rib ~peer:(peer_key nbr) route with
          | Some c -> changes := c :: !changes
          | None -> ())
        | None -> (
          (* Filtered on import: ensure no stale route remains. *)
          match Rib.withdraw t.rib ~peer:(peer_key nbr) ~path_id prefix with
          | Some c -> changes := c :: !changes
          | None -> ()))
      u.Message.nlri
  | None -> ());
  propagate t (List.rev !changes)

let sweep_peer t (nbr : neighbor) generation () =
  if generation = nbr.stale_generation then begin
    let changes = Rib.sweep_stale t.rib ~peer:(peer_key nbr) in
    propagate t changes
  end

let on_established t (nbr : neighbor) peer_gr_time (_ : Wire.session_opts) =
  nbr.up <- true;
  nbr.stale_generation <- nbr.stale_generation + 1;
  nbr.gr_time <- peer_gr_time ();
  (* If we were helping across a restart, re-announcements now refresh
     the stale marks; whatever is still stale after the deferral was
     lost in the restart and must go. *)
  if Rib.stale_count t.rib ~peer:(peer_key nbr) > 0 then
    Engine.schedule t.engine ~delay:resync_deferral
      (sweep_peer t nbr nbr.stale_generation);
  full_table_to t nbr

let on_close t (nbr : neighbor) (_reason : string) =
  nbr.up <- false;
  nbr.adj_out <- Prefix.Map.empty;
  nbr.pending <- Prefix.Map.empty;
  nbr.stale_generation <- nbr.stale_generation + 1;
  match nbr.gr_time with
  | Some rt when rt > 0 ->
    (* RFC 4724 helper: keep the peer's routes installed and forwarding
       for its advertised restart time; only withdraw if it stays down. *)
    ignore (Rib.mark_stale t.rib ~peer:(peer_key nbr) : int);
    Engine.schedule t.engine ~delay:(float_of_int rt)
      (sweep_peer t nbr nbr.stale_generation)
  | Some _ | None ->
    let changes = Rib.drop_peer t.rib ~peer:(peer_key nbr) in
    propagate t changes

(* ------------------------------------------------------------------ *)
(* Origination *)

let originate t ?(communities = []) prefix =
  let attrs =
    Attrs.make ~origin:Attrs.IGP ~next_hop:t.router_id ~communities ()
  in
  t.networks <- (prefix, attrs) :: t.networks;
  let route = Route.local prefix attrs in
  match Rib.announce t.rib ~peer:local_peer_key route with
  | Some c -> propagate t [ c ]
  | None -> ()

let withdraw_network t prefix =
  t.networks <- List.filter (fun (p, _) -> not (Prefix.equal p prefix)) t.networks;
  match Rib.withdraw t.rib ~peer:local_peer_key prefix with
  | Some c -> propagate t [ c ]
  | None -> ()

let networks t = List.map fst t.networks |> List.sort Prefix.compare

(* ------------------------------------------------------------------ *)
(* Wiring *)

let add_neighbor t ~remote_asn ~remote_addr ~local_addr =
  if find_neighbor t remote_addr <> None then
    invalid_arg "Router.connect: duplicate neighbor";
  let nbr =
    { remote_asn;
      remote_addr;
      local_addr;
      ebgp = not (Asn.equal remote_asn t.asn);
      import = Policy.permit_all;
      export = Policy.permit_all;
      send = (fun _ -> ());
      up = false;
      adj_out = Prefix.Map.empty;
      mrai_until = 0.0;
      pending = Prefix.Map.empty;
      gr_time = None;
      stale_generation = 0
    }
  in
  t.nbrs <- t.nbrs @ [ nbr ];
  nbr

let connect engine ?(latency = 0.01) ?(auto_restart = false) (r1, addr1)
    (r2, addr2) =
  let n1 =
    add_neighbor r1 ~remote_asn:r2.asn ~remote_addr:addr2 ~local_addr:addr1
  in
  let n2 =
    add_neighbor r2 ~remote_asn:r1.asn ~remote_addr:addr1 ~local_addr:addr2
  in
  let cfg r =
    let base = Fsm.default_config ~local_asn:r.asn ~router_id:r.router_id in
    let capabilities =
      match r.graceful_restart with
      | Some rt -> base.Fsm.capabilities @ [ Capability.Graceful_restart rt ]
      | None -> base.Fsm.capabilities
    in
    { base with Fsm.hold_time = r.hold_time; auto_restart; capabilities }
  in
  (* The peer's negotiated restart time lives in the FSM, which does not
     exist until the session is built; callbacks only fire once the
     engine runs, so reading through this ref is safe. *)
  let session_ref = ref None in
  let gr_of side () =
    match !session_ref with
    | None -> None
    | Some s -> Fsm.graceful_restart_time (side s).Session.fsm
  in
  let session =
    Session.create engine ~latency
      ~a:(cfg r1, addr1)
      ~b:(cfg r2, addr2)
      ~on_update_a:(fun u -> on_update r1 n1 u)
      ~on_update_b:(fun u -> on_update r2 n2 u)
      ~on_established_a:(fun opts ->
        on_established r1 n1 (gr_of Session.a) opts)
      ~on_established_b:(fun opts ->
        on_established r2 n2 (gr_of Session.b) opts)
      ~on_close_a:(fun reason -> on_close r1 n1 reason)
      ~on_close_b:(fun reason -> on_close r2 n2 reason)
      ()
  in
  session_ref := Some session;
  n1.send <- (fun m -> Session.send_from_a session m);
  n2.send <- (fun m -> Session.send_from_b session m);
  Session.start session;
  session

(* ------------------------------------------------------------------ *)
(* Queries *)

let best_route t prefix = Rib.best t.rib prefix
let lookup t addr = Rib.lookup t.rib addr
let table_size t = Rib.prefix_count t.rib

let advertised_to t addr =
  let nbr = find_neighbor_exn t addr in
  List.map fst (Prefix.Map.bindings nbr.adj_out)

let updates_received t = t.rx_updates
let updates_sent t = t.tx_updates
