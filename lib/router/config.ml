open Peering_net
open Peering_bgp

type neighbor_config = {
  addr : Ipv4.t;
  remote_as : Asn.t;
  route_map_in : string option;
  route_map_out : string option;
  keepalive : int option;
  holdtime : int option;
  connect_retry_s : int option;
  timers_line : int option;
  nbr_line : int;
}

type bgp_config = {
  asn : Asn.t;
  router_id : Ipv4.t option;
  networks : Prefix.t list;
  network_lines : (Prefix.t * int) list;
  neighbors : neighbor_config list;
}

type prefix_rule = {
  pl_seq : int;
  pl_permit : bool;
  pl_prefix : Prefix.t;
  pl_ge : int option;
  pl_le : int option;
  pl_line : int;
}

type map_match =
  | M_prefix_list of string
  | M_community of Community.t
  | M_as_path_contains of Asn.t

type map_set =
  | S_local_pref of int
  | S_metric of int
  | S_community of Community.t * bool  (* additive? *)
  | S_prepend of Asn.t * int
  | S_next_hop of Ipv4.t

type map_entry = {
  rm_seq : int;
  rm_permit : bool;
  rm_line : int;
  mutable rm_matches : map_match list;
  mutable rm_sets : map_set list;
}

type t = {
  bgp : bgp_config option;
  prefix_lists : (string, prefix_rule list) Hashtbl.t;
  route_maps : (string, map_entry list) Hashtbl.t;
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let tokens line =
  String.split_on_char ' ' line
  |> List.filter (fun s -> s <> "")

let parse_prefix line s =
  match Prefix.of_string s with
  | Some p -> p
  | None -> fail line (Printf.sprintf "bad prefix %S" s)

let parse_ip line s =
  match Ipv4.of_string s with
  | Some a -> a
  | None -> fail line (Printf.sprintf "bad address %S" s)

let parse_int line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line (Printf.sprintf "bad number %S" s)

let parse_asn line s = Asn.of_int (parse_int line s)

let parse_community line s =
  match Community.of_string s with
  | Some c -> c
  | None -> fail line (Printf.sprintf "bad community %S" s)

type context =
  | Top
  | In_bgp
  | In_route_map of string * map_entry

(* Lists in the builder are accumulated newest-first (cons) and
   reversed once at the end of the parse, keeping the builder O(n). *)
type builder = {
  mutable ctx : context;
  mutable b_asn : Asn.t option;
  mutable b_router_id : Ipv4.t option;
  mutable b_networks : (Prefix.t * int) list;  (* reversed *)
  mutable b_neighbors : neighbor_config list;  (* reversed *)
  b_prefix_lists : (string, prefix_rule list) Hashtbl.t;  (* reversed *)
  b_route_maps : (string, map_entry list) Hashtbl.t;  (* reversed *)
}

let update_neighbor b line addr f =
  let found = ref false in
  b.b_neighbors <-
    List.map
      (fun n ->
        if Ipv4.equal n.addr addr then begin
          found := true;
          f n
        end
        else n)
      b.b_neighbors;
  if not !found then fail line "neighbor not declared with remote-as"

let handle_bgp_line b lineno toks =
  match toks with
  | [ "bgp"; "router-id"; ip ] -> b.b_router_id <- Some (parse_ip lineno ip)
  | [ "network"; pfx ] ->
    b.b_networks <- (parse_prefix lineno pfx, lineno) :: b.b_networks
  | [ "neighbor"; ip; "remote-as"; asn ] ->
    let addr = parse_ip lineno ip in
    if List.exists (fun n -> Ipv4.equal n.addr addr) b.b_neighbors then
      fail lineno "duplicate neighbor";
    b.b_neighbors <-
      { addr;
        remote_as = parse_asn lineno asn;
        route_map_in = None;
        route_map_out = None;
        keepalive = None;
        holdtime = None;
        connect_retry_s = None;
        timers_line = None;
        nbr_line = lineno
      }
      :: b.b_neighbors
  | [ "neighbor"; ip; "timers"; "connect"; n ] ->
    let addr = parse_ip lineno ip in
    let v = parse_int lineno n in
    if v < 0 then fail lineno "connect-retry must be non-negative";
    update_neighbor b lineno addr (fun nb ->
        { nb with connect_retry_s = Some v; timers_line = Some lineno })
  | [ "neighbor"; ip; "timers"; k; h ] ->
    let addr = parse_ip lineno ip in
    let k = parse_int lineno k and h = parse_int lineno h in
    if k < 0 || h < 0 then fail lineno "timers must be non-negative";
    update_neighbor b lineno addr (fun nb ->
        { nb with keepalive = Some k; holdtime = Some h;
          timers_line = Some lineno })
  | [ "neighbor"; ip; "route-map"; name; dir ] ->
    let addr = parse_ip lineno ip in
    (match dir with
    | "in" ->
      update_neighbor b lineno addr (fun n -> { n with route_map_in = Some name })
    | "out" ->
      update_neighbor b lineno addr (fun n -> { n with route_map_out = Some name })
    | _ -> fail lineno "route-map direction must be in|out")
  | _ -> fail lineno "unknown statement in router bgp block"

let handle_map_line entry lineno toks =
  match toks with
  | [ "match"; "ip"; "address"; "prefix-list"; name ] ->
    entry.rm_matches <- M_prefix_list name :: entry.rm_matches
  | [ "match"; "community"; c ] ->
    entry.rm_matches <- M_community (parse_community lineno c) :: entry.rm_matches
  | [ "match"; "as-path-contains"; a ] ->
    entry.rm_matches <-
      M_as_path_contains (parse_asn lineno a) :: entry.rm_matches
  | [ "set"; "local-preference"; n ] ->
    entry.rm_sets <- S_local_pref (parse_int lineno n) :: entry.rm_sets
  | [ "set"; "metric"; n ] ->
    entry.rm_sets <- S_metric (parse_int lineno n) :: entry.rm_sets
  | [ "set"; "community"; c ] ->
    entry.rm_sets <- S_community (parse_community lineno c, false) :: entry.rm_sets
  | [ "set"; "community"; c; "additive" ] ->
    entry.rm_sets <- S_community (parse_community lineno c, true) :: entry.rm_sets
  | [ "set"; "as-path"; "prepend"; a; n ] ->
    entry.rm_sets <-
      S_prepend (parse_asn lineno a, parse_int lineno n) :: entry.rm_sets
  | [ "set"; "next-hop"; ip ] ->
    entry.rm_sets <- S_next_hop (parse_ip lineno ip) :: entry.rm_sets
  | _ -> fail lineno "unknown statement in route-map block"

let handle_top_line b lineno toks =
  match toks with
  | "router" :: "bgp" :: asn :: [] ->
    if b.b_asn <> None then fail lineno "second router bgp block";
    b.b_asn <- Some (parse_asn lineno asn);
    b.ctx <- In_bgp
  | "ip" :: "prefix-list" :: name :: "seq" :: seq :: action :: pfx :: rest ->
    let pl_permit =
      match action with
      | "permit" -> true
      | "deny" -> false
      | _ -> fail lineno "prefix-list action must be permit|deny"
    in
    let rec opts ge le = function
      | [] -> (ge, le)
      | "ge" :: n :: rest -> opts (Some (parse_int lineno n)) le rest
      | "le" :: n :: rest -> opts ge (Some (parse_int lineno n)) rest
      | _ -> fail lineno "bad prefix-list options"
    in
    let pl_ge, pl_le = opts None None rest in
    let rule =
      { pl_seq = parse_int lineno seq;
        pl_permit;
        pl_prefix = parse_prefix lineno pfx;
        pl_ge;
        pl_le;
        pl_line = lineno
      }
    in
    let existing =
      Option.value (Hashtbl.find_opt b.b_prefix_lists name) ~default:[]
    in
    Hashtbl.replace b.b_prefix_lists name (rule :: existing)
  | [ "route-map"; name; action; seq ] ->
    let rm_permit =
      match action with
      | "permit" -> true
      | "deny" -> false
      | _ -> fail lineno "route-map action must be permit|deny"
    in
    let entry =
      { rm_seq = parse_int lineno seq;
        rm_permit;
        rm_line = lineno;
        rm_matches = [];
        rm_sets = []
      }
    in
    let existing =
      Option.value (Hashtbl.find_opt b.b_route_maps name) ~default:[]
    in
    if List.exists (fun e -> e.rm_seq = entry.rm_seq) existing then
      fail lineno "duplicate route-map sequence";
    Hashtbl.replace b.b_route_maps name (entry :: existing);
    b.ctx <- In_route_map (name, entry)
  | _ -> fail lineno "unknown top-level statement"

let parse text =
  let b =
    { ctx = Top;
      b_asn = None;
      b_router_id = None;
      b_networks = [];
      b_neighbors = [];
      b_prefix_lists = Hashtbl.create 8;
      b_route_maps = Hashtbl.create 8
    }
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let trimmed = String.trim line in
        if trimmed = "" then ()
        else if trimmed.[0] = '!' then b.ctx <- Top
        else
          let indented =
            String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t')
          in
          let toks = tokens trimmed in
          match b.ctx with
          | In_bgp when indented -> handle_bgp_line b lineno toks
          | In_route_map (_, entry) when indented ->
            handle_map_line entry lineno toks
          | Top | In_bgp | In_route_map _ ->
            b.ctx <- Top;
            handle_top_line b lineno toks)
      (String.split_on_char '\n' text);
    (* Un-reverse every accumulated list back into source order. *)
    Hashtbl.filter_map_inplace
      (fun _ rules -> Some (List.rev rules))
      b.b_prefix_lists;
    Hashtbl.filter_map_inplace
      (fun _ entries ->
        List.iter
          (fun e ->
            e.rm_matches <- List.rev e.rm_matches;
            e.rm_sets <- List.rev e.rm_sets)
          entries;
        Some (List.rev entries))
      b.b_route_maps;
    let bgp =
      Option.map
        (fun asn ->
          let network_lines = List.rev b.b_networks in
          { asn;
            router_id = b.b_router_id;
            networks = List.map fst network_lines;
            network_lines;
            neighbors = List.rev b.b_neighbors
          })
        b.b_asn
    in
    Ok { bgp; prefix_lists = b.b_prefix_lists; route_maps = b.b_route_maps }
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn text =
  match parse text with
  | Ok t -> t
  | Error e -> invalid_arg ("Config.parse_exn: " ^ e)

let bgp t = t.bgp

let route_map_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.route_maps []
  |> List.sort String.compare

let prefix_list_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.prefix_lists []
  |> List.sort String.compare

let route_map t name = Hashtbl.find_opt t.route_maps name
let prefix_list t name = Hashtbl.find_opt t.prefix_lists name

let route_maps t =
  List.map (fun n -> (n, Hashtbl.find t.route_maps n)) (route_map_names t)

let prefix_lists t =
  List.map (fun n -> (n, Hashtbl.find t.prefix_lists n)) (prefix_list_names t)

let compile_cond t = function
  | M_prefix_list name -> (
    match Hashtbl.find_opt t.prefix_lists name with
    | None -> Error (Printf.sprintf "undefined prefix-list %s" name)
    | Some rules ->
      (* Quagga semantics: first matching seq decides; no match denies.
         The encoding below is exact: a permit rule becomes
         [Any [here; rest]] (match now, or fall through) and a deny
         rule becomes [All [Not here; rest]] (must not match now, and
         must match a later permit). *)
      let sorted = List.sort (fun a b -> Int.compare a.pl_seq b.pl_seq) rules in
      let to_triple r =
        (* Quagga defaults: no ge/le is an exact-length match; ge alone
           opens the window up to /32. *)
        let ge = Option.value r.pl_ge ~default:(Prefix.len r.pl_prefix) in
        let le =
          match (r.pl_le, r.pl_ge) with
          | Some l, _ -> l
          | None, Some _ -> 32
          | None, None -> Prefix.len r.pl_prefix
        in
        (r.pl_prefix, ge, le)
      in
      let rec build = function
        | [] -> Policy.Any []
        | r :: rest ->
          let here = Policy.Prefix_in [ to_triple r ] in
          if r.pl_permit then Policy.Any [ here; build rest ]
          else Policy.All [ Policy.Not here; build rest ]
      in
      Ok (build sorted))
  | M_community c -> Ok (Policy.Has_community c)
  | M_as_path_contains a -> Ok (Policy.Path_contains a)

let compile_set = function
  | S_local_pref n -> [ Policy.Set_local_pref n ]
  | S_metric n -> [ Policy.Set_med (Some n) ]
  | S_community (c, true) -> [ Policy.Add_community c ]
  | S_community (c, false) ->
    (* Non-additive set replaces the attribute outright. *)
    [ Policy.Clear_communities; Policy.Add_community c ]
  | S_prepend (a, n) -> [ Policy.Prepend (a, n) ]
  | S_next_hop ip -> [ Policy.Set_next_hop ip ]

let compile_route_map t name =
  match Hashtbl.find_opt t.route_maps name with
  | None -> Error (Printf.sprintf "undefined route-map %s" name)
  | Some entries ->
    let rec build acc = function
      | [] -> Ok (Policy.of_entries (List.rev acc))
      | e :: rest ->
        let conds =
          List.fold_left
            (fun acc m ->
              match (acc, compile_cond t m) with
              | Error _, _ -> acc
              | _, (Error _ as err) -> err
              | Ok cs, Ok c -> Ok (c :: cs))
            (Ok []) e.rm_matches
        in
        (match conds with
        | Error err -> Error err
        | Ok conds ->
          let entry =
            { Policy.seq = e.rm_seq;
              decision = (if e.rm_permit then Policy.Permit else Policy.Deny);
              conds = List.rev conds;
              actions = List.concat_map compile_set e.rm_sets
            }
          in
          build (entry :: acc) rest)
    in
    build [] entries

let instantiate engine t =
  match t.bgp with
  | None -> Error "no router bgp block"
  | Some conf ->
    let router_id =
      Option.value conf.router_id ~default:(Ipv4.of_octets 10 255 255 1)
    in
    let r = Router.create engine ~asn:conf.asn ~router_id () in
    List.iter (fun p -> Router.originate r p) conf.networks;
    Ok r

let apply_neighbor_policies t router =
  match t.bgp with
  | None -> Error "no router bgp block"
  | Some conf ->
    let rec go = function
      | [] -> Ok ()
      | (n : neighbor_config) :: rest -> (
        let apply name setter =
          match compile_route_map t name with
          | Error e -> Error e
          | Ok policy ->
            setter router n.addr policy;
            Ok ()
        in
        let r_in =
          match n.route_map_in with
          | Some name -> apply name Router.set_import_policy
          | None -> Ok ()
        in
        match r_in with
        | Error e -> Error e
        | Ok () -> (
          let r_out =
            match n.route_map_out with
            | Some name -> apply name Router.set_export_policy
            | None -> Ok ()
          in
          match r_out with Error e -> Error e | Ok () -> go rest))
    in
    go conf.neighbors
