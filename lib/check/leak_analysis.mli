(** Static leak reachability: an abstract-interpretation fixpoint over
    the per-edge export abstractions of a {!World}.

    The analysis answers, without running propagation: {e which ASes
    can a route reach — and which can it pollute — given the world's
    export overrides?} Per AS it tracks a MAY set of Gao–Rexford
    import classes (union join), a MUST set of Peerlock-tracked ASes
    present on every path (intersection join — Peerlock may only be
    modelled with must-information), and a taint bit set when a
    transfer crosses an edge its learned class is not allowed to cross
    (the RFC 7908 leak moment) and carried with the route thereafter.

    Every abstract transfer over-approximates the concrete oracle
    ({!Peering_topo.Propagation.propagate_general} driven by
    {!World.dynamic_leak}/{!World.dynamic_export}/
    {!World.dynamic_import}): soundness — zero false negatives — is
    the differential property the [@check-diff] harness checks on
    seeded worlds; the false-positive rate is measured there
    (DESIGN.md §11).

    Codes emitted here:
    - [LEAK-EDGE] (error): a directed edge may export beyond
      Gao–Rexford discipline towards a provider or peer, witnessed by
      a prefix outside the exporter's customer cone that its windows
      admit
    - [LEAK-REACH] (warning): per leak-prone edge, the blast radius —
      how many ASes a route leaked there can pollute *)

open Peering_net
open Peering_topo

val codes : string list
(** Diagnostic codes this module can emit. *)

type verdict = {
  reachable : Asn.Set.t;
      (** ASes that may hold a route for the announcement *)
  tainted : Asn.Set.t;
      (** ASes that may hold it via a Gao–Rexford-violating export —
          a superset of the oracle's {!Peering_topo.Propagation.polluted} *)
  iterations : int;  (** work-queue pops until the fixpoint *)
}

val analyze : World.t -> Propagation.announcement -> verdict
(** Run the fixpoint for one announcement. Deterministic (sorted seeds
    and neighbor order); records [check.leak.fixpoint_iterations]. *)

val edges : World.t -> Diagnostic.t list
(** The [LEAK-EDGE] pass. *)

val reach : World.t -> Diagnostic.t list
(** The [LEAK-REACH] pass: one {!analyze} per leak-prone edge. *)
