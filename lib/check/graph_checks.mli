(** Whole-topology structural passes and cross-experiment conflict
    detection.

    Topology codes:
    - [GRAPH-PARTITION] (warning): the AS graph splits into several
      connected components.
    - [GRAPH-RELCYCLE] (error): the customer->provider digraph has a
      cycle — some AS transitively buys transit from itself; with
      prefer-customer preferences this also voids the Gao–Rexford
      convergence guarantee.
    - [GRAPH-MOAS] (warning): a prefix originated by more than one AS.

    Cross-experiment codes (over a batch of {!Spec}s):
    - [XEXP-OVERLAP] (error): two experiments' allocated or announced
      prefixes overlap.
    - [XEXP-ASN] (error): two experiments share an origin ASN — their
      BGP sessions on a shared mux collide.
    - [XEXP-POISON] (warning): an experiment poisons an ASN allocated
      to another experiment in the batch. *)

val codes : string list
(** Diagnostic codes this module can emit. *)

val partition : World.t -> Diagnostic.t list
val provider_cycle : World.t -> Diagnostic.t list
val moas : World.t -> Diagnostic.t list

val spec_conflicts : (string option * Spec.t) list -> Diagnostic.t list
(** Pairwise conflicts over a batch of [(file, spec)] pairs.
    Diagnostics are stamped with the first spec's file (and the
    poisoning event's line for [XEXP-POISON]). *)
