type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  code : string;
  severity : severity;
  file : string option;
  line : int option;
  message : string;
  hint : string option;
}

let make severity ?file ?line ?hint ~code message =
  { code; severity; file; line; message; hint }

let error ?file ?line ?hint ~code message =
  make Error ?file ?line ?hint ~code message

let warning ?file ?line ?hint ~code message =
  make Warning ?file ?line ?hint ~code message

let info ?file ?line ?hint ~code message =
  make Info ?file ?line ?hint ~code message

let with_file file t =
  match t.file with Some _ -> t | None -> { t with file = Some file }

let compare a b =
  let c =
    Option.compare String.compare a.file b.file
  in
  if c <> 0 then c
  else
    let c = Option.compare Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c else String.compare a.code b.code

let sort l = List.sort compare l

let has_errors l = List.exists (fun d -> d.severity = Error) l
let count sev l = List.length (List.filter (fun d -> d.severity = sev) l)

let to_string t =
  let loc =
    match (t.file, t.line) with
    | Some f, Some l -> Printf.sprintf "%s:%d: " f l
    | Some f, None -> Printf.sprintf "%s: " f
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  let hint =
    match t.hint with None -> "" | Some h -> Printf.sprintf "\n  hint: %s" h
  in
  Printf.sprintf "%s%s: [%s] %s%s" loc
    (severity_to_string t.severity)
    t.code t.message hint

let pp ppf t = Format.pp_print_string ppf (to_string t)
