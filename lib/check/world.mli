(** A whole-testbed verification world: the input to
    {!Check.check_world}.

    A world bundles everything the semantic passes reason over at
    once — an {!Peering_topo.As_graph} topology with business
    relationships and originated prefixes, per-directed-edge {e export
    abstractions} (the abstract domain of the static leak analysis),
    per-session import preferences (stability analysis), Peerlock
    configuration and a batch of experiment {!Spec}s (conflict
    detection).

    {2 Export abstractions}

    Every directed edge [u -> v] carries an {!export_abs} describing
    what [u] may export to [v]. The default — no override — is
    Gao–Rexford discipline over all prefixes. Overrides come from
    three places: an explicit [export]/[leak] statement in a [.world]
    file, {!set_export}/{!inject_leak}, or a compiled per-session
    {!Peering_bgp.Policy} lowered through {!abstract_of_policy}. The
    abstraction always {e over}-approximates the concrete export
    behaviour, which is what makes the leak analysis sound (DESIGN.md
    §11).

    {2 The .world file format}

    One statement per line; [#] and [!] start comments:

    {v
as <asn> [kind]               # kind: tier1|large-transit|small-transit|
                              #       stub|content|enterprise (default stub)
edge <a> <rel> <b>            # <b> is <a>'s customer|provider|peer
originate <asn> <cidr>
export <u> <v> permit-all     # u exports everything to v (leak-prone)
export <u> <v> none           # u exports nothing to v
export <u> <v> prefix <cidr> [<ge> <le>]   # window; repeatable (union)
leak <u> <v>                  # u ignores export discipline towards v
local-pref <v> <u> <n>        # v's import preference for routes from u
peerlock <v> <t>              # v drops routes carrying t unless from t
peerlock-lite <v>             # v drops customer/peer routes carrying
                              # any tier-1 it is not hearing them from
    v} *)

open Peering_net
open Peering_bgp
open Peering_topo

type export_classes =
  | Gr_only  (** only what Gao–Rexford discipline allows *)
  | Any_class  (** exports regardless of learned class (leak-prone) *)

type export_prefixes =
  | Any_prefix
  | Windows of (Prefix.t * int * int) list
      (** prefix-list style [(p, ge, le)] windows, unioned *)
  | No_prefix  (** exports nothing *)

type export_abs = { classes : export_classes; prefixes : export_prefixes }
(** What a directed edge may export: a route passes iff its class
    passes [classes] {e and} its prefix passes [prefixes]. *)

val default_export : export_abs
(** [{ classes = Gr_only; prefixes = Any_prefix }] — plain
    Gao–Rexford. *)

val permit_all_export : export_abs

type t

val of_graph : ?af:Policy_checks.af -> As_graph.t -> t
(** Wrap an existing topology (shared, not copied) with no overrides.
    [af] (default {!Policy_checks.V4}) is used when lowering policies
    and matching prefix windows. *)

val graph : t -> As_graph.t
val af : t -> Policy_checks.af

val export_at : t -> Asn.t -> Asn.t -> export_abs
(** The abstraction on the directed edge [u -> v];
    {!default_export} when never overridden. *)

val set_export : t -> from:Asn.t -> to_:Asn.t -> export_abs -> unit
val inject_leak : t -> from:Asn.t -> to_:Asn.t -> unit
(** Mark the directed edge as leaking: classes become {!Any_class},
    the prefix component is kept. *)

val add_export_window : t -> from:Asn.t -> to_:Asn.t -> Prefix.t * int * int -> unit
(** Narrow the edge to prefix windows (union with any existing
    windows). *)

val fold_exports : (Asn.t -> Asn.t -> export_abs -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every overridden directed edge, ascending by (from,
    to). *)

val abstract_of_policy : ?af:Policy_checks.af -> Policy.t -> export_abs
(** Soundly lower a compiled export policy: classes are always
    {!Any_class} (a route-map does not test the Gao–Rexford class);
    prefixes union each live permit entry's provable prefix
    constraint, with an unconstrained entry forcing {!Any_prefix}. *)

val set_export_policy : ?af:Policy_checks.af -> t -> from:Asn.t -> to_:Asn.t -> Policy.t -> unit

val admits : t -> export_abs -> Prefix.t -> bool
(** Does the prefix component admit a route carrying exactly this
    prefix? *)

val default_local_pref : Relationship.t -> int
(** Customer 300, peer 200, provider 100 — prefer-customer defaults
    consistent with {!Peering_topo.Relationship.import_preference}. *)

val local_pref : t -> at:Asn.t -> from:Asn.t -> int option
(** The (possibly overridden) import preference [at] assigns routes
    learned from [from]; [None] if not adjacent. *)

val set_local_pref : t -> at:Asn.t -> from:Asn.t -> int -> unit

val set_import_policy : ?af:Policy_checks.af -> t -> at:Asn.t -> from:Asn.t -> Policy.t -> unit
(** Record the highest local-pref the session's import policy may
    assign (its [Set_local_pref] actions, or the class default) —
    an over-approximation for the stability analysis. *)

val add_peerlock : t -> at:Asn.t -> protect:Asn.t -> unit
(** [at] filters routes whose path carries [protect] unless learned
    directly from [protect] (NTT Peerlock). *)

val peerlock_protected : t -> Asn.t -> Asn.Set.t

val peerlock_all : t -> Asn.Set.t
(** The union of every protected set — the ASes whose presence on a
    path the analysis must track. *)

val add_peerlock_lite : t -> Asn.t -> unit
val peerlock_lite_at : t -> Asn.t -> bool
val any_peerlock_lite : t -> bool

val tier1s : t -> Asn.Set.t
(** ASes declared with kind [Tier1] — the set Peerlock-lite guards. *)

val add_spec : ?file:string -> t -> Spec.t -> unit
val specs : t -> (string option * Spec.t) list
(** In attachment order. *)

(** {2 Dynamic hooks}

    Adapters plugging the same world into
    {!Peering_topo.Propagation.propagate_general}, so the static
    verdicts can be differentially tested against the concrete oracle
    ([@check-diff]): {!dynamic_leak} is the [?leak] hook
    (class-override edges), {!dynamic_export} the [?export_filter]
    (prefix windows), {!dynamic_import} the [?import_filter] (Peerlock
    and Peerlock-lite). *)

val dynamic_leak : t -> Asn.t -> Asn.t -> bool
val dynamic_export : t -> Asn.t -> Asn.t -> Propagation.announcement -> Propagation.route -> bool
val dynamic_import : t -> Asn.t -> from:Asn.t -> Propagation.route -> bool

val parse : ?af:Policy_checks.af -> string -> (t, string) result
(** Parse a [.world] file. The error includes a line number. *)

val parse_exn : ?af:Policy_checks.af -> string -> t
