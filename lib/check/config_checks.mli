(** Static analysis passes over {!Peering_router.Config} values (rcc
    style: catch misconfigurations before they reach a router).

    Per-config passes return diagnostics whose [file] field is unset;
    the driver ({!Check.check_config}) fills it in. The cross-config
    pass ({!sessions}) sets files itself since it spans inputs.

    Codes emitted here:
    - [RTR-NOBGP] (error): no [router bgp] block, cannot instantiate
    - [RTMAP-UNDEF] (error): neighbor references an undefined route-map
    - [RTMAP-UNUSED] (warning): route-map defined but never attached
    - [RTMAP-SHADOW] (warning): route-map entry unreachable
    - [PFXLIST-UNDEF] (error): match references an undefined prefix-list
    - [PFXLIST-UNUSED] (warning): prefix-list defined but never matched
    - [PFXLIST-SHADOW] (warning): prefix-list rule unreachable
    - [PFXLIST-BOUNDS] (error): ge/le bounds that can never match
    - [NET-DUP] (warning): the same network declared twice
    - [NBR-NOPOLICY] (warning): neighbor with no route-map attached
    - [TIMER-DEGEN] (error/warning): hold time below the keepalive
      interval, or a zero connect-retry that busy-loops
    - [SESSION-MISMATCH] (error): paired configs disagree on
      remote-as/addresses *)

open Peering_router

val codes : string list
(** Diagnostic codes this module can emit. *)

val no_bgp : Config.t -> Diagnostic.t list
val undefined_route_maps : Config.t -> Diagnostic.t list
val unused_route_maps : Config.t -> Diagnostic.t list
val shadowed_map_entries : Config.t -> Diagnostic.t list
val undefined_prefix_lists : Config.t -> Diagnostic.t list
val unused_prefix_lists : Config.t -> Diagnostic.t list
val shadowed_prefix_rules : Config.t -> Diagnostic.t list
val impossible_bounds : Config.t -> Diagnostic.t list
val duplicate_networks : Config.t -> Diagnostic.t list
val neighbors_without_policy : Config.t -> Diagnostic.t list
val degenerate_timers : Config.t -> Diagnostic.t list

val sessions : (string option * Config.t) list -> Diagnostic.t list
(** Cross-config consistency: for every pair of configs whose ASNs
    name each other as neighbors, the session must be mutual and the
    neighbor addresses must agree with the remote router-id. *)

val effective_bounds : Config.prefix_rule -> int * int
(** The [lo, hi] prefix-length window a rule can match, after applying
    defaults (no ge/le: exact; ge alone: [ge, 32]; le alone:
    [len, le]) and clamping to [len p, 32]. Empty iff [lo > hi]. *)
