open Peering_net
open Peering_bgp

let c_hijack = "EXP-HIJACK"
let c_poison = "EXP-POISON"
let c_dampen = "EXP-DAMPEN"
let codes = [ c_hijack; c_poison; c_dampen ]

let default_peering_asn = Asn.of_int 47065

let announces (spec : Spec.t) =
  List.filter_map
    (fun (e : Spec.event) ->
      match e.Spec.ev_kind with
      | Spec.Announce path -> Some (e, path)
      | Spec.Withdraw -> None)
    spec.Spec.events

let hijacks (spec : Spec.t) =
  List.filter_map
    (fun ((e : Spec.event), _) ->
      if
        List.exists
          (fun alloc -> Prefix.subsumes alloc e.Spec.ev_prefix)
          spec.Spec.prefixes
      then None
      else
        Some
          (Diagnostic.error ~code:c_hijack ~line:e.Spec.ev_line
             ~hint:
               "announce only subprefixes of the experiment's allocated \
                space"
             (Printf.sprintf
                "announcing %s would be an origin hijack: the prefix is \
                 outside experiment %s's allocation"
                (Prefix.to_string e.Spec.ev_prefix)
                spec.Spec.id)))
    (announces spec)

let poisonings ?(peering_asn = default_peering_asn) (spec : Spec.t) =
  if spec.Spec.may_poison then []
  else
    List.concat_map
      (fun ((e : Spec.event), path) ->
        List.filter_map
          (fun a ->
            if
              Asn.is_private a
              || Asn.equal a peering_asn
              || List.exists (Asn.equal a) spec.Spec.asns
            then None
            else
              Some
                (Diagnostic.error ~code:c_poison ~line:e.Spec.ev_line
                   ~hint:
                     "request poisoning approval ('may-poison') or drop the \
                      public ASN from the path"
                   (Printf.sprintf
                      "path suffix for %s contains public ASN %s but \
                       experiment %s has no poisoning approval"
                      (Prefix.to_string e.Spec.ev_prefix)
                      (Asn.to_string a) spec.Spec.id)))
          path)
      (announces spec)

let dampening ?params (spec : Spec.t) =
  let d = Dampening.create ?params () in
  let peer = spec.Spec.id in
  let ordered =
    List.stable_sort
      (fun (a : Spec.event) b -> Float.compare a.Spec.ev_time b.Spec.ev_time)
      spec.Spec.events
  in
  List.filter_map
    (fun (e : Spec.event) ->
      let now = e.Spec.ev_time in
      match e.Spec.ev_kind with
      | Spec.Withdraw ->
        Dampening.flap d ~now ~peer e.Spec.ev_prefix;
        None
      | Spec.Announce _ ->
        if Dampening.is_suppressed d ~now ~peer e.Spec.ev_prefix then
          let until =
            Option.value
              (Dampening.reuse_time d ~now ~peer e.Spec.ev_prefix)
              ~default:(now +. (Dampening.params d).Dampening.max_suppress)
          in
          Some
            (Diagnostic.error ~code:c_dampen ~line:e.Spec.ev_line
               ~hint:
                 (Printf.sprintf
                    "space the flaps out; the route is reusable from \
                     t=%.0f"
                    until)
               (Printf.sprintf
                  "announcement of %s at t=%.0f would be refused: the \
                   schedule trips RFC 2439 dampening (suppressed until \
                   t=%.0f)"
                  (Prefix.to_string e.Spec.ev_prefix)
                  now until))
        else None)
    ordered
