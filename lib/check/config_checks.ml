open Peering_net
open Peering_router

let c_no_bgp = "RTR-NOBGP"
let c_rtmap_undef = "RTMAP-UNDEF"
let c_rtmap_unused = "RTMAP-UNUSED"
let c_rtmap_shadow = "RTMAP-SHADOW"
let c_pfxlist_undef = "PFXLIST-UNDEF"
let c_pfxlist_unused = "PFXLIST-UNUSED"
let c_pfxlist_shadow = "PFXLIST-SHADOW"
let c_pfxlist_bounds = "PFXLIST-BOUNDS"
let c_net_dup = "NET-DUP"
let c_nbr_nopolicy = "NBR-NOPOLICY"
let c_timer_degen = "TIMER-DEGEN"
let c_session_mismatch = "SESSION-MISMATCH"

let codes =
  [ c_no_bgp; c_rtmap_undef; c_rtmap_unused; c_rtmap_shadow;
    c_pfxlist_undef; c_pfxlist_unused; c_pfxlist_shadow; c_pfxlist_bounds;
    c_net_dup; c_nbr_nopolicy; c_timer_degen; c_session_mismatch
  ]

let neighbors cfg =
  match Config.bgp cfg with None -> [] | Some b -> b.Config.neighbors

(* Route-maps referenced from neighbor statements, with the line of the
   referencing neighbor. *)
let referenced_route_maps cfg =
  List.concat_map
    (fun (n : Config.neighbor_config) ->
      let r dir = function
        | Some name -> [ (name, dir, n) ]
        | None -> []
      in
      r "in" n.Config.route_map_in @ r "out" n.Config.route_map_out)
    (neighbors cfg)

(* Prefix-lists referenced from route-map match clauses. *)
let referenced_prefix_lists cfg =
  List.concat_map
    (fun (map_name, entries) ->
      List.concat_map
        (fun (e : Config.map_entry) ->
          List.filter_map
            (function
              | Config.M_prefix_list pl -> Some (pl, map_name, e)
              | Config.M_community _ | Config.M_as_path_contains _ -> None)
            e.Config.rm_matches)
        entries)
    (Config.route_maps cfg)

(* ------------------------------------------------------------------ *)

let no_bgp cfg =
  match Config.bgp cfg with
  | Some _ -> []
  | None ->
    [ Diagnostic.error ~code:c_no_bgp
        ~hint:"add a 'router bgp <asn>' block"
        "configuration has no router bgp block and cannot instantiate a \
         router"
    ]

let undefined_route_maps cfg =
  List.filter_map
    (fun (name, dir, (n : Config.neighbor_config)) ->
      match Config.route_map cfg name with
      | Some _ -> None
      | None ->
        Some
          (Diagnostic.error ~code:c_rtmap_undef ~line:n.Config.nbr_line
             ~hint:(Printf.sprintf "define 'route-map %s permit <seq>'" name)
             (Printf.sprintf
                "neighbor %s references undefined route-map %s (%s)"
                (Ipv4.to_string n.Config.addr)
                name dir)))
    (referenced_route_maps cfg)

let unused_route_maps cfg =
  let used = List.map (fun (name, _, _) -> name) (referenced_route_maps cfg) in
  List.filter_map
    (fun (name, entries) ->
      if List.mem name used then None
      else
        let line =
          match entries with
          | (e : Config.map_entry) :: _ -> Some e.Config.rm_line
          | [] -> None
        in
        Some
          (Diagnostic.warning ~code:c_rtmap_unused ?line
             ~hint:
               (Printf.sprintf
                  "attach it with 'neighbor <ip> route-map %s in|out' or \
                   delete it"
                  name)
             (Printf.sprintf "route-map %s is defined but never used" name)))
    (Config.route_maps cfg)

let undefined_prefix_lists cfg =
  List.filter_map
    (fun (pl, map_name, (e : Config.map_entry)) ->
      match Config.prefix_list cfg pl with
      | Some _ -> None
      | None ->
        Some
          (Diagnostic.error ~code:c_pfxlist_undef ~line:e.Config.rm_line
             ~hint:
               (Printf.sprintf "define 'ip prefix-list %s seq 5 permit ...'"
                  pl)
             (Printf.sprintf
                "route-map %s seq %d matches undefined prefix-list %s"
                map_name e.Config.rm_seq pl)))
    (referenced_prefix_lists cfg)

let unused_prefix_lists cfg =
  let used = List.map (fun (pl, _, _) -> pl) (referenced_prefix_lists cfg) in
  List.filter_map
    (fun (name, rules) ->
      if List.mem name used then None
      else
        let line =
          match rules with
          | (r : Config.prefix_rule) :: _ -> Some r.Config.pl_line
          | [] -> None
        in
        Some
          (Diagnostic.warning ~code:c_pfxlist_unused ?line
             ~hint:
               (Printf.sprintf
                  "reference it with 'match ip address prefix-list %s' or \
                   delete it"
                  name)
             (Printf.sprintf "prefix-list %s is defined but never used" name)))
    (Config.prefix_lists cfg)

(* ------------------------------------------------------------------ *)
(* Route-map entry shadowing: entries are evaluated in seq order and
   the first whose matches all hold decides. An entry whose match set
   is a superset of an earlier entry's match set can never fire. *)

let match_subset a b =
  List.for_all (fun m -> List.mem m b) a

let shadowed_map_entries cfg =
  List.concat_map
    (fun (name, entries) ->
      let sorted =
        List.sort
          (fun (a : Config.map_entry) b -> Int.compare a.Config.rm_seq b.rm_seq)
          entries
      in
      let rec go earlier acc = function
        | [] -> List.rev acc
        | (e : Config.map_entry) :: rest ->
          let shadow =
            List.find_opt
              (fun (prev : Config.map_entry) ->
                match_subset prev.Config.rm_matches e.Config.rm_matches)
              (List.rev earlier)
          in
          let acc =
            match shadow with
            | None -> acc
            | Some prev ->
              Diagnostic.warning ~code:c_rtmap_shadow ~line:e.Config.rm_line
                ~hint:
                  (Printf.sprintf
                     "reorder the entries or tighten seq %d's matches"
                     prev.Config.rm_seq)
                (Printf.sprintf
                   "route-map %s seq %d is unreachable: every route it \
                    matches is already matched by seq %d"
                   name e.Config.rm_seq prev.Config.rm_seq)
              :: acc
          in
          go (e :: earlier) acc rest
      in
      go [] [] sorted)
    (Config.route_maps cfg)

(* ------------------------------------------------------------------ *)
(* Prefix-list rule analysis. *)

let effective_bounds (r : Config.prefix_rule) =
  let len = Prefix.len r.Config.pl_prefix in
  let ge = Option.value r.Config.pl_ge ~default:len in
  let le =
    match (r.Config.pl_le, r.Config.pl_ge) with
    | Some l, _ -> l
    | None, Some _ -> 32
    | None, None -> len
  in
  (max ge len, min le 32)

let impossible_bounds cfg =
  List.concat_map
    (fun (name, rules) ->
      List.filter_map
        (fun (r : Config.prefix_rule) ->
          let lo, hi = effective_bounds r in
          if lo <= hi then None
          else
            Some
              (Diagnostic.error ~code:c_pfxlist_bounds ~line:r.Config.pl_line
                 ~hint:
                   (Printf.sprintf
                      "lengths must satisfy %d <= ge <= le <= 32 for a /%d \
                       prefix"
                      (Prefix.len r.Config.pl_prefix)
                      (Prefix.len r.Config.pl_prefix))
                 (Printf.sprintf
                    "prefix-list %s seq %d can never match: effective \
                     length window [%d, %d] is empty"
                    name r.Config.pl_seq lo hi)))
        rules)
    (Config.prefix_lists cfg)

(* Rule j is shadowed when an earlier rule i matches a superset: i's
   prefix contains j's and i's length window contains j's. The first
   match decides regardless of permit/deny, so the later rule is dead
   either way. *)
let shadowed_prefix_rules cfg =
  List.concat_map
    (fun (name, rules) ->
      let sorted =
        List.sort
          (fun (a : Config.prefix_rule) b ->
            Int.compare a.Config.pl_seq b.Config.pl_seq)
          rules
      in
      let covers (a : Config.prefix_rule) (b : Config.prefix_rule) =
        let alo, ahi = effective_bounds a and blo, bhi = effective_bounds b in
        blo <= bhi
        && Prefix.subsumes a.Config.pl_prefix b.Config.pl_prefix
        && alo <= blo && ahi >= bhi
      in
      let rec go earlier acc = function
        | [] -> List.rev acc
        | (r : Config.prefix_rule) :: rest ->
          let acc =
            match List.find_opt (fun p -> covers p r) (List.rev earlier) with
            | None -> acc
            | Some prev ->
              Diagnostic.warning ~code:c_pfxlist_shadow ~line:r.Config.pl_line
                ~hint:
                  (Printf.sprintf "delete seq %d or move it before seq %d"
                     r.Config.pl_seq prev.Config.pl_seq)
                (Printf.sprintf
                   "prefix-list %s seq %d is unreachable: seq %d already \
                    matches everything it matches"
                   name r.Config.pl_seq prev.Config.pl_seq)
              :: acc
          in
          go (r :: earlier) acc rest
      in
      go [] [] sorted)
    (Config.prefix_lists cfg)

(* ------------------------------------------------------------------ *)

let duplicate_networks cfg =
  match Config.bgp cfg with
  | None -> []
  | Some b ->
    let rec go seen acc = function
      | [] -> List.rev acc
      | (p, line) :: rest ->
        let acc =
          match List.assoc_opt (Prefix.to_string p) seen with
          | None -> acc
          | Some first_line ->
            Diagnostic.warning ~code:c_net_dup ~line
              ~hint:"remove the duplicate statement"
              (Printf.sprintf
                 "network %s already declared at line %d"
                 (Prefix.to_string p) first_line)
            :: acc
        in
        go ((Prefix.to_string p, line) :: seen) acc rest
    in
    go [] [] b.Config.network_lines

let neighbors_without_policy cfg =
  List.filter_map
    (fun (n : Config.neighbor_config) ->
      match (n.Config.route_map_in, n.Config.route_map_out) with
      | None, None ->
        Some
          (Diagnostic.warning ~code:c_nbr_nopolicy ~line:n.Config.nbr_line
             ~hint:
               "attach 'neighbor <ip> route-map <name> in' and 'out'; \
                unfiltered sessions accept and send everything"
             (Printf.sprintf
                "neighbor %s (%s) has no route-map in either direction"
                (Ipv4.to_string n.Config.addr)
                (Asn.to_string n.Config.remote_as)))
      | _ -> None)
    (neighbors cfg)

(* Degenerate BGP timers. A hold time below the keepalive interval
   expires before the first keepalive can possibly arrive, so the
   session flaps on its own schedule (hold time 0 disables the timer
   and is fine, RFC 4271 section 4.2). A zero connect-retry spins the
   FSM through Connect as fast as the event loop allows. *)
let degenerate_timers cfg =
  List.concat_map
    (fun (n : Config.neighbor_config) ->
      let line = Option.value n.Config.timers_line ~default:n.Config.nbr_line in
      let who =
        Printf.sprintf "neighbor %s (%s)"
          (Ipv4.to_string n.Config.addr)
          (Asn.to_string n.Config.remote_as)
      in
      let hold_vs_keepalive =
        match n.Config.holdtime with
        | Some h when h > 0 ->
          (* With no explicit keepalive, routers derive one as hold/3;
             only an explicit larger keepalive can contradict the hold
             time. *)
          (match n.Config.keepalive with
          | Some k when h < k ->
            [ Diagnostic.error ~code:c_timer_degen ~line
                ~hint:
                  (Printf.sprintf
                     "set the hold time to at least 3x the keepalive \
                      interval (e.g. 'timers %d %d')"
                     k (3 * k))
                (Printf.sprintf
                   "%s: hold time %ds is below the keepalive interval %ds; \
                    the session expires before the first keepalive arrives"
                   who h k)
            ]
          | Some _ | None -> [])
        | Some _ | None -> []
      in
      let zero_retry =
        match n.Config.connect_retry_s with
        | Some 0 ->
          [ Diagnostic.warning ~code:c_timer_degen ~line
              ~hint:"use a connect-retry of a few seconds so failed \
                     connects back off instead of busy-looping"
              (Printf.sprintf
                 "%s: connect-retry of 0s retries failed connects without \
                  any backoff"
                 who)
          ]
        | Some _ | None -> []
      in
      hold_vs_keepalive @ zero_retry)
    (neighbors cfg)

(* ------------------------------------------------------------------ *)
(* Cross-config session consistency. *)

let sessions configs =
  let with_bgp =
    List.filter_map
      (fun (file, cfg) ->
        Option.map (fun b -> (file, b)) (Config.bgp cfg))
      configs
  in
  let find_by_asn asn =
    List.find_opt
      (fun (_, (b : Config.bgp_config)) -> Asn.equal b.Config.asn asn)
      with_bgp
  in
  List.concat_map
    (fun (file, (b : Config.bgp_config)) ->
      List.concat_map
        (fun (n : Config.neighbor_config) ->
          match find_by_asn n.Config.remote_as with
          | None -> []  (* remote config not under analysis *)
          | Some (rfile, remote) ->
            let rname = Option.value rfile ~default:"<remote config>" in
            let reverse =
              List.find_opt
                (fun (m : Config.neighbor_config) ->
                  Asn.equal m.Config.remote_as b.Config.asn)
                remote.Config.neighbors
            in
            (match reverse with
            | None ->
              [ Diagnostic.error ~code:c_session_mismatch ?file
                  ~line:n.Config.nbr_line
                  ~hint:
                    (Printf.sprintf
                       "add 'neighbor <ip> remote-as %d' to %s"
                       (Asn.to_int b.Config.asn)
                       rname)
                  (Printf.sprintf
                     "session to %s is half-open: %s has no neighbor with \
                      remote-as %d"
                     (Asn.to_string n.Config.remote_as)
                     rname
                     (Asn.to_int b.Config.asn))
              ]
            | Some _ -> [])
            @
            (match remote.Config.router_id with
            | Some rid when not (Ipv4.equal rid n.Config.addr) ->
              [ Diagnostic.error ~code:c_session_mismatch ?file
                  ~line:n.Config.nbr_line
                  ~hint:
                    (Printf.sprintf
                       "point the neighbor statement at %s or fix %s's \
                        router-id"
                       (Ipv4.to_string rid) rname)
                  (Printf.sprintf
                     "neighbor %s (%s) does not match %s's router-id %s"
                     (Ipv4.to_string n.Config.addr)
                     (Asn.to_string n.Config.remote_as)
                     rname (Ipv4.to_string rid))
              ]
            | Some _ | None -> []))
        b.Config.neighbors)
    with_bgp
