(** Structured analyzer diagnostics.

    Every finding the static analyzer ({!Peering_check}) produces is a
    [Diagnostic.t]: a stable code (e.g. ["RTMAP-UNDEF"]), a severity, an
    optional source location, a human message, and an optional fix
    hint. The CLI renders these as [file:line: severity [CODE] message]
    and exits non-zero iff any {!Error}-severity diagnostic fired. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

type t = {
  code : string;  (** stable, grep-able identifier, e.g. ["PFXLIST-BOUNDS"] *)
  severity : severity;
  file : string option;
  line : int option;
  message : string;
  hint : string option;  (** suggested fix, if we have one *)
}

val error : ?file:string -> ?line:int -> ?hint:string -> code:string -> string -> t
val warning : ?file:string -> ?line:int -> ?hint:string -> code:string -> string -> t
val info : ?file:string -> ?line:int -> ?hint:string -> code:string -> string -> t

val with_file : string -> t -> t
(** Set [file] if the diagnostic does not already carry one. *)

val compare : t -> t -> int
(** Order by file, then line, then severity (errors first), then code. *)

val sort : t list -> t list

val has_errors : t list -> bool
val count : severity -> t list -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
