open Peering_net
open Peering_topo
module Metrics = Peering_obs.Metrics

let c_edge = "LEAK-EDGE"
let c_reach = "LEAK-REACH"
let codes = [ c_edge; c_reach ]

let m_iterations =
  Metrics.counter ~help:"Work-queue pops in the static leak fixpoint"
    "check.leak.fixpoint_iterations"

(* ------------------------------------------------------------------ *)
(* The abstract fixpoint. Per-AS state:

   - [classes]: a MAY bit-set of import classes the AS can hold the
     route under (origin / customer / peer / provider) — union join.
   - [must]: the MUST set of tracked ASes (Peerlock-protected plus,
     when anyone runs Peerlock-lite, the tier-1s) present on *every*
     abstract path reaching this AS — intersection join. Peerlock can
     only be modelled with must-information: blocking on a
     may-traversed AS would prune paths the concrete world still has
     (a false negative).
   - [taint]: MAY the AS hold a route that crossed a Gao–Rexford-
     violating export — set when a transfer's class is admitted by an
     [Any_class] override but not by [Relationship.exports_to], and
     propagated with the route thereafter.

   Every abstract transfer over-approximates the concrete engine
   ([Propagation.propagate_general] driven by [World.dynamic_*]
   hooks): loops and [deny] are ignored, prefix windows are evaluated
   on the same announcement prefix, and import filters block only on
   must-information. Hence concretely-reachable ⊆ [reachable] and
   concretely-polluted ⊆ [tainted] — zero false negatives, the
   property [@check-diff] tests. The false-positive rate (mostly from
   ignoring loop suppression and path-length selection) is measured
   there, not bounded here. *)

type verdict = {
  reachable : Asn.Set.t;
  tainted : Asn.Set.t;
  iterations : int;
}

type state = {
  mutable classes : int;
  mutable must : Asn.Set.t;
  mutable taint : bool;
}

let bit_of_class = function
  | None -> 1
  | Some Relationship.Customer -> 2
  | Some Relationship.Peer -> 4
  | Some Relationship.Provider -> 8

let all_classes =
  [ None;
    Some Relationship.Customer;
    Some Relationship.Peer;
    Some Relationship.Provider
  ]

let analyze w (ann : Propagation.announcement) =
  let g = World.graph w in
  let origin = ann.Propagation.origin in
  if not (As_graph.mem g origin) then
    { reachable = Asn.Set.empty; tainted = Asn.Set.empty; iterations = 0 }
  else begin
    let tier1 = World.tier1s w in
    let relevant =
      let base = World.peerlock_all w in
      if World.any_peerlock_lite w then Asn.Set.union base tier1 else base
    in
    let states : (int, state) Hashtbl.t = Hashtbl.create 256 in
    let state asn =
      match Hashtbl.find_opt states (Asn.to_int asn) with
      | Some s -> s
      | None ->
        let s = { classes = 0; must = Asn.Set.empty; taint = false } in
        Hashtbl.replace states (Asn.to_int asn) s;
        s
    in
    let iterations = ref 0 in
    let queue = Queue.create () in
    let s0 = state origin in
    s0.classes <- bit_of_class None;
    s0.must <-
      Asn.Set.inter relevant
        (Asn.Set.of_list (origin :: ann.Propagation.path_suffix));
    Queue.push origin queue;
    while not (Queue.is_empty queue) do
      incr iterations;
      let u = Queue.pop queue in
      let su = state u in
      List.iter
        (fun (v, rel_uv) ->
          let abs = World.export_at w u v in
          if World.admits w abs ann.Propagation.prefix then begin
            let sv = state v in
            let first = sv.classes = 0 in
            let changed = ref false in
            (* u's full path excluding the next hop [u] itself, as the
               importer's "unless learned directly from" carve-out
               sees it. *)
            let path_must = Asn.Set.remove u su.must in
            let import_class = Relationship.invert rel_uv in
            let blocked_by_peerlock =
              not
                (Asn.Set.is_empty
                   (Asn.Set.inter (World.peerlock_protected w v) path_must))
            in
            let blocked_by_lite =
              World.peerlock_lite_at w v
              && (import_class = Relationship.Customer
                 || import_class = Relationship.Peer)
              && not (Asn.Set.is_empty (Asn.Set.inter tier1 path_must))
            in
            if not (blocked_by_peerlock || blocked_by_lite) then
              List.iter
                (fun cls ->
                  if su.classes land bit_of_class cls <> 0 then begin
                    let gr =
                      Relationship.exports_to ~learned_from:cls rel_uv
                    in
                    let class_ok =
                      gr || abs.World.classes = World.Any_class
                    in
                    let blocked_by_selective =
                      cls = None
                      &&
                      match ann.Propagation.export_to with
                      | Some allowed -> not (Asn.Set.mem v allowed)
                      | None -> false
                    in
                    if class_ok && not blocked_by_selective then begin
                      let ibit = bit_of_class (Some import_class) in
                      if sv.classes land ibit = 0 then begin
                        sv.classes <- sv.classes lor ibit;
                        changed := true
                      end;
                      if (su.taint || not gr) && not sv.taint then begin
                        sv.taint <- true;
                        changed := true
                      end;
                      let cand_must =
                        Asn.Set.inter relevant (Asn.Set.add v su.must)
                      in
                      let new_must =
                        if first then cand_must
                        else Asn.Set.inter sv.must cand_must
                      in
                      if not (Asn.Set.equal new_must sv.must) then begin
                        sv.must <- new_must;
                        changed := true
                      end
                    end
                  end)
                all_classes;
            if !changed then Queue.push v queue
          end)
        (As_graph.neighbors g u)
    done;
    Metrics.Counter.add m_iterations !iterations;
    let reachable, tainted =
      Hashtbl.fold
        (fun asn s (r, t) ->
          if s.classes = 0 then (r, t)
          else
            let a = Asn.of_int asn in
            (Asn.Set.add a r, if s.taint then Asn.Set.add a t else t))
        states
        (Asn.Set.empty, Asn.Set.empty)
    in
    { reachable; tainted; iterations = !iterations }
  end

(* ------------------------------------------------------------------ *)
(* Passes. A directed edge is leak-prone when its override admits
   classes beyond Gao–Rexford towards a provider or peer AND its
   prefix window admits some prefix originated outside the exporter's
   customer cone — own and cone routes are legitimate exports, so a
   permit-all edge whose windows stay inside the cone is safe. The
   witness is the first such prefix in prefix order. *)

let leak_prone w =
  let g = World.graph w in
  World.fold_exports
    (fun u v abs acc ->
      if abs.World.classes <> World.Any_class then acc
      else
        match As_graph.relationship g u v with
        | Some ((Relationship.Provider | Relationship.Peer) as rel) ->
          let cone = Customer_cone.cone g u in
          let witness = ref None in
          As_graph.iter_prefixes
            (fun o p ->
              if
                !witness = None
                && (not (Asn.Set.mem o cone))
                && World.admits w abs p
              then witness := Some (o, p))
            g;
          (match !witness with
          | Some (o, p) -> (u, v, rel, o, p) :: acc
          | None -> acc)
        | _ -> acc)
    w []
  |> List.rev

let edges w =
  List.map
    (fun (u, v, rel, o, p) ->
      Diagnostic.error ~code:c_edge
        ~hint:
          "window the export to the AS's customer cone or drop the \
           permit-all override"
        (Printf.sprintf
           "%s may export beyond Gao-Rexford discipline to its %s %s: \
            e.g. %s (originated by %s, outside its customer cone) would \
            leak"
           (Asn.to_string u)
           (Relationship.to_string rel)
           (Asn.to_string v) (Prefix.to_string p) (Asn.to_string o)))
    (leak_prone w)

let reach w =
  let total = As_graph.n_ases (World.graph w) in
  List.map
    (fun (u, v, _rel, o, p) ->
      let verdict = analyze w (Propagation.announce o p) in
      let n = Asn.Set.cardinal verdict.tainted in
      Diagnostic.warning ~code:c_reach
        ~hint:
          "deploy Peerlock on the transit path or window the export to \
           contain the blast radius"
        (Printf.sprintf
           "a route for %s leaked across %s -> %s can pollute %d of %d ASes \
            (%.1f%%)"
           (Prefix.to_string p) (Asn.to_string u) (Asn.to_string v) n total
           (if total = 0 then 0.0
            else 100.0 *. float_of_int n /. float_of_int total)))
    (leak_prone w)
