open Peering_net

type event_kind =
  | Announce of Asn.t list
  | Withdraw

type event = {
  ev_time : float;
  ev_line : int;
  ev_prefix : Prefix.t;
  ev_kind : event_kind;
}

type t = {
  id : string;
  prefixes : Prefix.t list;
  asns : Asn.t list;
  may_poison : bool;
  events : event list;
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse_prefix line s =
  match Prefix.of_string s with
  | Some p -> p
  | None -> fail line (Printf.sprintf "bad prefix %S" s)

let parse_float line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail line (Printf.sprintf "bad time %S" s)

let parse_asn line s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Asn.of_int n
  | _ -> fail line (Printf.sprintf "bad asn %S" s)

type builder = {
  mutable b_id : string option;
  mutable b_prefixes : Prefix.t list;  (* reversed *)
  mutable b_asns : Asn.t list;  (* reversed *)
  mutable b_may_poison : bool;
  mutable b_events : event list;  (* reversed *)
}

let parse_schedule_tail b lineno prefix kind_of = function
  | "at" :: t :: rest ->
    let ev_time = parse_float lineno t in
    let kind = kind_of rest in
    b.b_events <-
      { ev_time; ev_line = lineno; ev_prefix = prefix; ev_kind = kind }
      :: b.b_events
  | _ -> fail lineno "expected 'at <time>'"

let handle_line b lineno toks =
  match toks with
  | [ "experiment"; id ] ->
    if b.b_id <> None then fail lineno "second experiment statement";
    b.b_id <- Some id
  | [ "prefix"; p ] ->
    b.b_prefixes <- parse_prefix lineno p :: b.b_prefixes
  | [ "asn"; a ] -> b.b_asns <- parse_asn lineno a :: b.b_asns
  | [ "may-poison" ] -> b.b_may_poison <- true
  | "announce" :: p :: rest ->
    let prefix = parse_prefix lineno p in
    parse_schedule_tail b lineno prefix
      (function
        | [] -> Announce []
        | "path" :: asns when asns <> [] ->
          Announce (List.map (parse_asn lineno) asns)
        | _ -> fail lineno "expected 'path <asn> ...' after the time")
      rest
  | "withdraw" :: p :: rest ->
    let prefix = parse_prefix lineno p in
    parse_schedule_tail b lineno prefix
      (function
        | [] -> Withdraw
        | _ -> fail lineno "unexpected tokens after withdraw time")
      rest
  | [] -> ()
  | kw :: _ -> fail lineno (Printf.sprintf "unknown statement %S" kw)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse text =
  let b =
    { b_id = None;
      b_prefixes = [];
      b_asns = [];
      b_may_poison = false;
      b_events = []
    }
  in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '!' then ()
        else handle_line b lineno (tokens trimmed))
      (String.split_on_char '\n' text);
    match b.b_id with
    | None -> Error "missing 'experiment <id>' statement"
    | Some id ->
      Ok
        { id;
          prefixes = List.rev b.b_prefixes;
          asns = List.rev b.b_asns;
          may_poison = b.b_may_poison;
          events = List.rev b.b_events
        }
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn text =
  match parse text with
  | Ok t -> t
  | Error e -> invalid_arg ("Spec.parse_exn: " ^ e)

let make ~id ?(prefixes = []) ?(asns = []) ?(may_poison = false) events =
  { id; prefixes; asns; may_poison; events }

let of_experiment (e : Peering_core.Experiment.t) events =
  { id = e.Peering_core.Experiment.id;
    prefixes = e.Peering_core.Experiment.prefixes;
    asns = e.Peering_core.Experiment.private_asns;
    may_poison = e.Peering_core.Experiment.may_poison;
    events
  }
