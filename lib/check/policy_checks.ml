open Peering_net
open Peering_bgp
open Peering_topo

let c_unsat = "POLICY-UNSAT"
let c_dead = "POLICY-DEAD"
let c_leak = "POLICY-LEAK"

type input = {
  pol_name : string option;
  pol_relationship : Relationship.t option;
  policy : Policy.t;
}

let input ?name ?relationship policy =
  { pol_name = name; pol_relationship = relationship; policy }

let label i =
  match i.pol_name with None -> "policy" | Some n -> "policy " ^ n

(* ------------------------------------------------------------------ *)
(* Satisfiability. All verdicts are conservative: [triple_window]
   under-approximates nothing; [cond_unsat c = true] implies no route
   satisfies [c]; [cond_taut c = true] implies every route does. *)

(* The set of route-prefix lengths a (p, ge, le) triple can match. *)
let triple_window (p, ge, le) =
  (max ge (Prefix.len p), min le 32)

let triple_empty t =
  let lo, hi = triple_window t in
  lo > hi

(* Can triples from two Prefix_in conditions match a common route? *)
let triples_compatible ((p1, _, _) as t1) ((p2, _, _) as t2) =
  let lo1, hi1 = triple_window t1 and lo2, hi2 = triple_window t2 in
  Prefix.overlaps p1 p2 && max lo1 lo2 <= min hi1 hi2

let exact_in_triple p ((q, _, _) as t) =
  let lo, hi = triple_window t in
  Prefix.subsumes q p && Prefix.len p >= lo && Prefix.len p <= hi

let rec cond_unsat (c : Policy.cond) =
  match c with
  | Policy.Prefix_in l -> List.for_all triple_empty l
  | Policy.Prefix_exact [] -> true
  | Policy.Any cs -> List.for_all cond_unsat cs
  | Policy.All cs -> List.exists cond_unsat cs || contradiction cs
  | Policy.Not c -> cond_taut c
  | Policy.Prefix_exact _ | Policy.Path_contains _ | Policy.Originated_by _
  | Policy.Neighbor_is _ | Policy.Has_community _ | Policy.Path_length_le _
  | Policy.Has_private_asn ->
    false

and cond_taut (c : Policy.cond) =
  match c with
  | Policy.All cs -> List.for_all cond_taut cs
  | Policy.Any cs -> List.exists cond_taut cs
  | Policy.Not c -> cond_unsat c
  | Policy.Prefix_in l ->
    List.exists
      (fun ((p, _, _) as t) ->
        let lo, hi = triple_window t in
        Prefix.len p = 0 && lo = 0 && hi = 32)
      l
  | Policy.Path_length_le _ | Policy.Prefix_exact _ | Policy.Path_contains _
  | Policy.Originated_by _ | Policy.Neighbor_is _ | Policy.Has_community _
  | Policy.Has_private_asn ->
    false

(* A conjunction is contradictory if it contains [c] and [Not c]
   structurally, or two prefix constraints with disjoint route sets. *)
and contradiction cs =
  let rec flatten acc = function
    | Policy.All cs' :: rest -> flatten (flatten acc cs') rest
    | c :: rest -> flatten (c :: acc) rest
    | [] -> acc
  in
  let members = flatten [] cs in
  let negated =
    List.exists
      (fun c ->
        match c with
        | Policy.Not inner -> List.exists (fun d -> d = inner) members
        | _ -> false)
      members
  in
  negated
  ||
  let prefix_sets =
    List.filter_map
      (fun c ->
        match c with
        | Policy.Prefix_in l -> Some (`In l)
        | Policy.Prefix_exact l -> Some (`Exact l)
        | _ -> None)
      members
  in
  let disjoint a b =
    match (a, b) with
    | `In l1, `In l2 ->
      not
        (List.exists (fun t1 -> List.exists (triples_compatible t1) l2) l1)
    | `In l, `Exact e | `Exact e, `In l ->
      not (List.exists (fun p -> List.exists (exact_in_triple p) l) e)
    | `Exact e1, `Exact e2 ->
      not (List.exists (fun p -> List.exists (Prefix.equal p) e2) e1)
  in
  let rec pairs = function
    | [] -> false
    | a :: rest -> List.exists (disjoint a) rest || pairs rest
  in
  pairs prefix_sets

let conds_unsat conds = cond_unsat (Policy.All conds)
let conds_taut conds = List.for_all cond_taut conds

(* ------------------------------------------------------------------ *)

let unsatisfiable_entries i =
  List.filter_map
    (fun (e : Policy.entry) ->
      if conds_unsat e.Policy.conds then
        Some
          (Diagnostic.warning ~code:c_unsat
             ~hint:"delete the entry or fix the contradictory conditions"
             (Printf.sprintf
                "%s entry seq %d can never match: its condition set is \
                 unsatisfiable"
                (label i) e.Policy.seq))
      else None)
    (Policy.entries i.policy)

let dead_entries i =
  (* Entries whose conditions are unsatisfiable never shadow anything
     and are reported by [unsatisfiable_entries] instead. *)
  let live =
    List.filter
      (fun (e : Policy.entry) -> not (conds_unsat e.Policy.conds))
      (Policy.entries i.policy)
  in
  let rec go earlier acc = function
    | [] -> List.rev acc
    | (e : Policy.entry) :: rest ->
      let shadow =
        List.find_opt
          (fun (prev : Policy.entry) ->
            conds_taut prev.Policy.conds
            || prev.Policy.conds = e.Policy.conds)
          (List.rev earlier)
      in
      let acc =
        match shadow with
        | None -> acc
        | Some prev ->
          Diagnostic.warning ~code:c_dead
            ~hint:
              (Printf.sprintf "remove entry seq %d or reorder it before seq %d"
                 e.Policy.seq prev.Policy.seq)
            (Printf.sprintf
               "%s entry seq %d is dead: entry seq %d already decides every \
                route it matches"
               (label i) e.Policy.seq prev.Policy.seq)
          :: acc
      in
      go (e :: earlier) acc rest
  in
  go [] [] live

(* A policy "permits all" when, after dropping unsatisfiable entries,
   the first entry is a Permit whose conditions hold for every
   route. *)
let permits_all policy =
  let live =
    List.filter
      (fun (e : Policy.entry) -> not (conds_unsat e.Policy.conds))
      (Policy.entries policy)
  in
  match live with
  | (e : Policy.entry) :: _ ->
    e.Policy.decision = Policy.Permit && conds_taut e.Policy.conds
  | [] -> false

let export_leaks i =
  match i.pol_relationship with
  | Some (Relationship.Provider | Relationship.Peer)
    when permits_all i.policy ->
    let rel =
      match i.pol_relationship with
      | Some r -> Relationship.to_string r
      | None -> assert false
    in
    [ Diagnostic.error ~code:c_leak
        ~hint:
          "export only own and customer routes on provider/peer sessions \
           (match on a prefix-list or community)"
        (Printf.sprintf
           "%s permits every route towards a %s: provider/peer-learned \
            routes would leak (Gao-Rexford violation)"
           (label i) rel)
    ]
  | _ -> []
