open Peering_net
open Peering_bgp
open Peering_topo

let c_unsat = "POLICY-UNSAT"
let c_dead = "POLICY-DEAD"
let c_leak = "POLICY-LEAK"

let codes = [ c_unsat; c_dead; c_leak ]

type af = V4 | V6

let max_prefix_len = function V4 -> 32 | V6 -> 128

type input = {
  pol_name : string option;
  pol_relationship : Relationship.t option;
  pol_af : af;
  policy : Policy.t;
}

let input ?name ?relationship ?(af = V4) policy =
  { pol_name = name; pol_relationship = relationship; pol_af = af; policy }

let label i =
  match i.pol_name with None -> "policy" | Some n -> "policy " ^ n

(* ------------------------------------------------------------------ *)
(* Satisfiability. All verdicts are conservative: [triple_window]
   under-approximates nothing; [cond_unsat c = true] implies no route
   satisfies [c]; [cond_taut c = true] implies every route does. The
   address family decides the maximum route-prefix length a ge/le
   window is clamped to (32 for IPv4, 128 for MP-BGP IPv6). *)

(* The set of route-prefix lengths a (p, ge, le) triple can match. *)
let window af (p, ge, le) =
  (max ge (Prefix.len p), min le (max_prefix_len af))

let empty_triple af t =
  let lo, hi = window af t in
  lo > hi

(* Can triples from two Prefix_in conditions match a common route? *)
let compatible_triples af ((p1, _, _) as t1) ((p2, _, _) as t2) =
  let lo1, hi1 = window af t1 and lo2, hi2 = window af t2 in
  Prefix.overlaps p1 p2 && max lo1 lo2 <= min hi1 hi2

let exact_in af p ((q, _, _) as t) =
  let lo, hi = window af t in
  Prefix.subsumes q p && Prefix.len p >= lo && Prefix.len p <= hi

let rec unsat af (c : Policy.cond) =
  match c with
  | Policy.Prefix_in l -> List.for_all (empty_triple af) l
  | Policy.Prefix_exact [] -> true
  | Policy.Any cs -> List.for_all (unsat af) cs
  | Policy.All cs -> List.exists (unsat af) cs || contradiction af cs
  | Policy.Not c -> taut af c
  | Policy.Prefix_exact _ | Policy.Path_contains _ | Policy.Originated_by _
  | Policy.Neighbor_is _ | Policy.Has_community _ | Policy.Path_length_le _
  | Policy.Has_private_asn ->
    false

and taut af (c : Policy.cond) =
  match c with
  | Policy.All cs -> List.for_all (taut af) cs
  | Policy.Any cs -> List.exists (taut af) cs
  | Policy.Not c -> unsat af c
  | Policy.Prefix_in l ->
    List.exists
      (fun ((p, _, _) as t) ->
        let lo, hi = window af t in
        Prefix.len p = 0 && lo = 0 && hi = max_prefix_len af)
      l
  | Policy.Path_length_le _ | Policy.Prefix_exact _ | Policy.Path_contains _
  | Policy.Originated_by _ | Policy.Neighbor_is _ | Policy.Has_community _
  | Policy.Has_private_asn ->
    false

(* A conjunction is contradictory if it contains [c] and [Not c]
   structurally, or two prefix constraints with disjoint route sets. *)
and contradiction af cs =
  let rec flatten acc = function
    | Policy.All cs' :: rest -> flatten (flatten acc cs') rest
    | c :: rest -> flatten (c :: acc) rest
    | [] -> acc
  in
  let members = flatten [] cs in
  let negated =
    List.exists
      (fun c ->
        match c with
        | Policy.Not inner -> List.exists (fun d -> d = inner) members
        | _ -> false)
      members
  in
  negated
  ||
  let prefix_sets =
    List.filter_map
      (fun c ->
        match c with
        | Policy.Prefix_in l -> Some (`In l)
        | Policy.Prefix_exact l -> Some (`Exact l)
        | _ -> None)
      members
  in
  let disjoint a b =
    match (a, b) with
    | `In l1, `In l2 ->
      not
        (List.exists
           (fun t1 -> List.exists (compatible_triples af t1) l2)
           l1)
    | `In l, `Exact e | `Exact e, `In l ->
      not (List.exists (fun p -> List.exists (exact_in af p) l) e)
    | `Exact e1, `Exact e2 ->
      not (List.exists (fun p -> List.exists (Prefix.equal p) e2) e1)
  in
  let rec pairs = function
    | [] -> false
    | a :: rest -> List.exists (disjoint a) rest || pairs rest
  in
  pairs prefix_sets

let triple_window ?(af = V4) t = window af t
let exact_in_triple ?(af = V4) p t = exact_in af p t
let cond_unsat ?(af = V4) c = unsat af c
let cond_taut ?(af = V4) c = taut af c
let conds_unsat ?(af = V4) conds = unsat af (Policy.All conds)
let conds_taut ?(af = V4) conds = List.for_all (taut af) conds

(* ------------------------------------------------------------------ *)

let unsatisfiable_entries i =
  let af = i.pol_af in
  List.filter_map
    (fun (e : Policy.entry) ->
      if conds_unsat ~af e.Policy.conds then
        Some
          (Diagnostic.warning ~code:c_unsat
             ~hint:"delete the entry or fix the contradictory conditions"
             (Printf.sprintf
                "%s entry seq %d can never match: its condition set is \
                 unsatisfiable"
                (label i) e.Policy.seq))
      else None)
    (Policy.entries i.policy)

let dead_entries i =
  let af = i.pol_af in
  (* Entries whose conditions are unsatisfiable never shadow anything
     and are reported by [unsatisfiable_entries] instead. *)
  let live =
    List.filter
      (fun (e : Policy.entry) -> not (conds_unsat ~af e.Policy.conds))
      (Policy.entries i.policy)
  in
  let rec go earlier acc = function
    | [] -> List.rev acc
    | (e : Policy.entry) :: rest ->
      let shadow =
        List.find_opt
          (fun (prev : Policy.entry) ->
            conds_taut ~af prev.Policy.conds
            || prev.Policy.conds = e.Policy.conds)
          (List.rev earlier)
      in
      let acc =
        match shadow with
        | None -> acc
        | Some prev ->
          Diagnostic.warning ~code:c_dead
            ~hint:
              (Printf.sprintf "remove entry seq %d or reorder it before seq %d"
                 e.Policy.seq prev.Policy.seq)
            (Printf.sprintf
               "%s entry seq %d is dead: entry seq %d already decides every \
                route it matches"
               (label i) e.Policy.seq prev.Policy.seq)
          :: acc
      in
      go (e :: earlier) acc rest
  in
  go [] [] live

(* A policy "permits all" when, after dropping unsatisfiable entries,
   the first entry is a Permit whose conditions hold for every
   route. *)
let permits_all ?(af = V4) policy =
  let live =
    List.filter
      (fun (e : Policy.entry) -> not (conds_unsat ~af e.Policy.conds))
      (Policy.entries policy)
  in
  match live with
  | (e : Policy.entry) :: _ ->
    e.Policy.decision = Policy.Permit && conds_taut ~af e.Policy.conds
  | [] -> false

let export_leaks i =
  match i.pol_relationship with
  | Some (Relationship.Provider | Relationship.Peer)
    when permits_all ~af:i.pol_af i.policy ->
    let rel =
      match i.pol_relationship with
      | Some r -> Relationship.to_string r
      | None -> assert false
    in
    [ Diagnostic.error ~code:c_leak
        ~hint:
          "export only own and customer routes on provider/peer sessions \
           (match on a prefix-list or community)"
        (Printf.sprintf
           "%s permits every route towards a %s: provider/peer-learned \
            routes would leak (Gao-Rexford violation)"
           (label i) rel)
    ]
  | _ -> []
