(** The analyzer driver: default pass registries and one-call entry
    points.

    [Peering_check] is an rcc-style static analyzer (Feamster &
    Balakrishnan, NSDI'05) for the PEERING testbed: it vets router
    configurations, compiled policies and experiment schedules before
    they touch the mux, so a config that passes [check] instantiates
    without error and an experiment that passes [check] is not refused
    by the runtime {!Peering_core.Safety} filters for a statically
    predictable reason.

    The registries are pluggable: call {!Registry.register} on them to
    add project-specific passes; every entry point below consults the
    registry at call time. *)

open Peering_bgp
open Peering_router
open Peering_topo

val config_registry : Config.t Registry.t
val cross_config_registry : (string option * Config.t) list Registry.t
val policy_registry : Policy_checks.input Registry.t
val spec_registry : Spec.t Registry.t

val world_registry : World.t Registry.t
(** Whole-world semantic passes: topology structure
    ({!Graph_checks}), static leak analysis ({!Leak_analysis}) and
    stability ({!Stability}). *)

val cross_spec_registry : (string option * Spec.t) list Registry.t
(** Passes over a batch of experiment specs
    ({!Graph_checks.spec_conflicts}). *)

val check_config : ?file:string -> Config.t -> Diagnostic.t list
(** Run every per-config pass. [file] is stamped onto the
    diagnostics. *)

val check_configs : (string option * Config.t) list -> Diagnostic.t list
(** Per-config passes on each input plus cross-config passes (session
    consistency) over the whole set. *)

val check_policy :
  ?name:string -> ?relationship:Relationship.t -> Policy.t -> Diagnostic.t list

val check_spec : ?file:string -> Spec.t -> Diagnostic.t list

val check_experiment :
  Peering_core.Experiment.t -> Spec.event list -> Diagnostic.t list
(** Vet a programmatic experiment plus its planned schedule. *)

val check_specs : (string option * Spec.t) list -> Diagnostic.t list
(** Per-spec passes on each input plus cross-spec conflict passes
    (prefix overlap, ASN collisions, cross-experiment poisoning) over
    the whole batch. *)

val check_world : World.t -> Diagnostic.t list
(** The semantic verifier: every world pass (topology structure,
    static leak reachability, stability) plus per-spec and cross-spec
    passes over the world's attached specs. Diagnostics are sorted
    with {!Diagnostic.sort}. *)

val codes : (string * Diagnostic.severity * string) list
(** The diagnostic catalog: code, default severity, one-line
    description. *)
