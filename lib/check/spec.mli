(** Experiment specifications: a small declarative format describing an
    experiment's allocation and its announcement schedule, so the whole
    experiment can be vetted statically before it touches the testbed.

    Format (one statement per line, [#] and [!] start comments):

    {v
experiment <id>
prefix <cidr>              # allocated prefix
asn <n>                    # allocated (private) origin ASN
may-poison                 # experiment was vetted for AS-path poisoning
announce <cidr> at <t> [path <asn> ...]
withdraw <cidr> at <t>
    v}

    Times are seconds (floats) from experiment start; [path] is the
    AS-path suffix appended behind the PEERING mux ASN, as in
    {!Peering_core.Safety.check_announce}. *)

open Peering_net

type event_kind =
  | Announce of Asn.t list  (** path suffix *)
  | Withdraw

type event = {
  ev_time : float;
  ev_line : int;
  ev_prefix : Prefix.t;
  ev_kind : event_kind;
}

type t = {
  id : string;
  prefixes : Prefix.t list;  (** allocation *)
  asns : Asn.t list;  (** allocated origin ASNs *)
  may_poison : bool;
  events : event list;  (** in declaration order *)
}

val parse : string -> (t, string) result
(** The error includes a line number. *)

val parse_exn : string -> t

val make :
  id:string ->
  ?prefixes:Prefix.t list ->
  ?asns:Asn.t list ->
  ?may_poison:bool ->
  event list ->
  t

val of_experiment : Peering_core.Experiment.t -> event list -> t
(** Vet a programmatic {!Peering_core.Experiment} plus a planned
    schedule with the same passes that vet spec files. *)
