(** Admission-control glue for the multi-tenant scheduler.

    {!Peering_core.Scheduler} cannot call the analyzer directly —
    [peering_check] links against [peering_core], not the other way
    around — so the scheduler takes a pluggable
    {!Peering_core.Scheduler.vet} hook and this module supplies the
    canonical one: each tenant batch is converted to {!Spec} views
    ({!Spec.of_experiment} plus synthetic announce events carrying the
    declared poison targets) and run through {!Check.check_specs},
    whose per-spec passes (EXP-HIJACK / EXP-POISON / EXP-DAMPEN) and
    cross-spec XEXP passes (XEXP-OVERLAP / XEXP-ASN / XEXP-POISON)
    become admission issues. *)

val vet : Peering_core.Scheduler.vet
(** The {!Check.check_specs}-backed batch admission check. Diagnostic
    severities map directly ([Error] rejects, [Warning] rides along in
    the verdict; [Info] is dropped). Install with
    [Scheduler.create ~vet:Admission.vet tb]. *)

val issues_of_diagnostics :
  Diagnostic.t list -> Peering_core.Scheduler.issue list
(** The severity/code/message mapping used by {!vet}, exposed for
    tests and for callers composing their own batch checks. *)
