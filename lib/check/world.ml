open Peering_net
open Peering_bgp
open Peering_topo

type export_classes = Gr_only | Any_class

type export_prefixes =
  | Any_prefix
  | Windows of (Prefix.t * int * int) list
  | No_prefix

type export_abs = { classes : export_classes; prefixes : export_prefixes }

let default_export = { classes = Gr_only; prefixes = Any_prefix }
let permit_all_export = { classes = Any_class; prefixes = Any_prefix }

type t = {
  graph : As_graph.t;
  af : Policy_checks.af;
  mutable exports : export_abs Asn.Map.t Asn.Map.t;  (* u -> v -> abs *)
  mutable local_prefs : int Asn.Map.t Asn.Map.t;  (* at -> from -> pref *)
  mutable peerlock : Asn.Set.t Asn.Map.t;  (* at -> protected ASes *)
  mutable peerlock_lite : Asn.Set.t;
  mutable specs : (string option * Spec.t) list;  (* reversed *)
}

let of_graph ?(af = Policy_checks.V4) graph =
  { graph;
    af;
    exports = Asn.Map.empty;
    local_prefs = Asn.Map.empty;
    peerlock = Asn.Map.empty;
    peerlock_lite = Asn.Set.empty;
    specs = []
  }

let graph w = w.graph
let af w = w.af

(* ------------------------------------------------------------------ *)
(* Export abstractions. *)

let export_at w u v =
  match Asn.Map.find_opt u w.exports with
  | None -> default_export
  | Some m -> Option.value (Asn.Map.find_opt v m) ~default:default_export

let set_export w ~from ~to_ abs =
  let m = Option.value (Asn.Map.find_opt from w.exports) ~default:Asn.Map.empty in
  w.exports <- Asn.Map.add from (Asn.Map.add to_ abs m) w.exports

let inject_leak w ~from ~to_ =
  let cur = export_at w from to_ in
  set_export w ~from ~to_ { cur with classes = Any_class }

let add_export_window w ~from ~to_ window =
  let cur = export_at w from to_ in
  let prefixes =
    match cur.prefixes with
    | Any_prefix | No_prefix -> Windows [ window ]
    | Windows ws -> Windows (ws @ [ window ])
  in
  set_export w ~from ~to_ { cur with prefixes }

let fold_exports f w acc =
  Asn.Map.fold
    (fun u m acc -> Asn.Map.fold (fun v abs acc -> f u v abs acc) m acc)
    w.exports acc

(* Lower a compiled export policy into the abstract domain, soundly:
   the abstraction must admit every route the policy can permit.
   Classes are always [Any_class] — a route-map does not test the
   Gao–Rexford class, and entries guarded only by communities, paths
   or neighbors may pass any route. The prefix component unions, per
   live permit entry, the prefix constraint its conjunction provably
   imposes; an entry with no prefix constraint forces [Any_prefix]. *)
let abstract_of_policy ?(af = Policy_checks.V4) policy =
  let live =
    List.filter
      (fun (e : Policy.entry) ->
        e.Policy.decision = Policy.Permit
        && not (Policy_checks.conds_unsat ~af e.Policy.conds))
      (Policy.entries policy)
  in
  let entry_windows (e : Policy.entry) =
    (* The windows of the first prefix constraint in the (flattened)
       conjunction, if any: the matched set is contained in it. *)
    let rec flatten acc = function
      | Policy.All cs :: rest -> flatten (flatten acc cs) rest
      | c :: rest -> flatten (c :: acc) rest
      | [] -> acc
    in
    let members = flatten [] e.Policy.conds in
    let rec first = function
      | [] -> None
      | Policy.Prefix_in l :: _ -> Some l
      | Policy.Prefix_exact l :: _ ->
        Some (List.map (fun p -> (p, Prefix.len p, Prefix.len p)) l)
      | _ :: rest -> first rest
    in
    first (List.rev members)
  in
  let prefixes =
    List.fold_left
      (fun acc e ->
        match acc with
        | Any_prefix -> Any_prefix
        | _ -> (
          match entry_windows e with
          | None -> Any_prefix
          | Some ws -> (
            match acc with
            | No_prefix -> Windows ws
            | Windows cur -> Windows (cur @ ws)
            | Any_prefix -> Any_prefix)))
      No_prefix live
  in
  { classes = Any_class; prefixes }

let set_export_policy ?af w ~from ~to_ policy =
  let af = Option.value af ~default:w.af in
  set_export w ~from ~to_ (abstract_of_policy ~af policy)

(* Does the prefix component admit a route carrying exactly [p]? *)
let admits w abs p =
  match abs.prefixes with
  | Any_prefix -> true
  | No_prefix -> false
  | Windows ws ->
    List.exists (fun t -> Policy_checks.exact_in_triple ~af:w.af p t) ws

(* ------------------------------------------------------------------ *)
(* Import preferences (stability analysis input). *)

let default_local_pref = function
  | Relationship.Customer -> 300
  | Relationship.Peer -> 200
  | Relationship.Provider -> 100

let local_pref w ~at ~from =
  match
    Option.bind (Asn.Map.find_opt at w.local_prefs) (Asn.Map.find_opt from)
  with
  | Some lp -> Some lp
  | None ->
    Option.map default_local_pref (As_graph.relationship w.graph at from)

let set_local_pref w ~at ~from pref =
  let m =
    Option.value (Asn.Map.find_opt at w.local_prefs) ~default:Asn.Map.empty
  in
  w.local_prefs <- Asn.Map.add at (Asn.Map.add from pref m) w.local_prefs

(* The highest local-pref the policy may assign an imported route:
   the default for the session class, or any [Set_local_pref] a permit
   entry applies, whichever is larger (over-approximation). *)
let set_import_policy ?af w ~at ~from policy =
  let af = Option.value af ~default:w.af in
  let base =
    match As_graph.relationship w.graph at from with
    | Some rel -> default_local_pref rel
    | None -> invalid_arg "World.set_import_policy: not adjacent"
  in
  let lp =
    List.fold_left
      (fun acc (e : Policy.entry) ->
        if
          e.Policy.decision = Policy.Permit
          && not (Policy_checks.conds_unsat ~af e.Policy.conds)
        then
          List.fold_left
            (fun acc a ->
              match a with Policy.Set_local_pref n -> max acc n | _ -> acc)
            acc e.Policy.actions
        else acc)
      base (Policy.entries policy)
  in
  set_local_pref w ~at ~from lp

(* ------------------------------------------------------------------ *)
(* Peerlock. *)

let add_peerlock w ~at ~protect =
  let cur = Option.value (Asn.Map.find_opt at w.peerlock) ~default:Asn.Set.empty in
  w.peerlock <- Asn.Map.add at (Asn.Set.add protect cur) w.peerlock

let peerlock_protected w at =
  Option.value (Asn.Map.find_opt at w.peerlock) ~default:Asn.Set.empty

let peerlock_all w =
  Asn.Map.fold (fun _ s acc -> Asn.Set.union s acc) w.peerlock Asn.Set.empty

let add_peerlock_lite w at = w.peerlock_lite <- Asn.Set.add at w.peerlock_lite
let peerlock_lite_at w at = Asn.Set.mem at w.peerlock_lite
let any_peerlock_lite w = not (Asn.Set.is_empty w.peerlock_lite)

let tier1s w =
  List.fold_left
    (fun acc asn ->
      match As_graph.node w.graph asn with
      | Some n when n.As_graph.kind = As_graph.Tier1 -> Asn.Set.add asn acc
      | _ -> acc)
    Asn.Set.empty (As_graph.ases w.graph)

(* ------------------------------------------------------------------ *)
(* Specs. *)

let add_spec ?file w spec = w.specs <- (file, spec) :: w.specs
let specs w = List.rev w.specs

(* ------------------------------------------------------------------ *)
(* Dynamic hooks: the same world driving [Propagation.propagate_general]
   so static verdicts are differentially testable against the concrete
   oracle. *)

let dynamic_leak w u v = (export_at w u v).classes = Any_class

let dynamic_export w u v (ann : Propagation.announcement)
    (_ : Propagation.route) =
  admits w (export_at w u v) ann.Propagation.prefix

let dynamic_import w v ~from (r : Propagation.route) =
  let path = r.Propagation.path in
  let blocked_by_peerlock =
    Asn.Set.exists
      (fun t -> (not (Asn.equal t from)) && List.exists (Asn.equal t) path)
      (peerlock_protected w v)
  in
  let blocked_by_lite =
    peerlock_lite_at w v
    && (match r.Propagation.learned_over with
       | Some (Relationship.Customer | Relationship.Peer) -> true
       | _ -> false)
    && Asn.Set.exists
         (fun t -> (not (Asn.equal t from)) && List.exists (Asn.equal t) path)
         (tier1s w)
  in
  not (blocked_by_peerlock || blocked_by_lite)

(* ------------------------------------------------------------------ *)
(* The .world file format (see the .mli for the grammar). *)

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse_asn line s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Asn.of_int n
  | _ -> fail line (Printf.sprintf "bad asn %S" s)

let parse_prefix line s =
  match Prefix.of_string s with
  | Some p -> p
  | None -> fail line (Printf.sprintf "bad prefix %S" s)

let parse_int line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line (Printf.sprintf "bad integer %S" s)

let parse_kind line = function
  | "tier1" -> As_graph.Tier1
  | "large-transit" -> As_graph.Large_transit
  | "small-transit" -> As_graph.Small_transit
  | "stub" -> As_graph.Stub
  | "content" -> As_graph.Content
  | "enterprise" -> As_graph.Enterprise
  | s -> fail line (Printf.sprintf "unknown kind %S" s)

let parse_rel line = function
  | "customer" -> Relationship.Customer
  | "provider" -> Relationship.Provider
  | "peer" -> Relationship.Peer
  | s -> fail line (Printf.sprintf "unknown relationship %S" s)

let known w line asn =
  if not (As_graph.mem w.graph asn) then
    fail line (Printf.sprintf "undeclared %s" (Asn.to_string asn));
  asn

let adjacent w line u v =
  match As_graph.relationship w.graph u v with
  | Some _ -> ()
  | None ->
    fail line
      (Printf.sprintf "no edge between %s and %s" (Asn.to_string u)
         (Asn.to_string v))

let handle_line w lineno toks =
  match toks with
  | "as" :: a :: rest ->
    let asn = parse_asn lineno a in
    if As_graph.mem w.graph asn then
      fail lineno (Printf.sprintf "duplicate %s" (Asn.to_string asn));
    let kind =
      match rest with
      | [] -> As_graph.Stub
      | [ k ] -> parse_kind lineno k
      | _ -> fail lineno "expected 'as <asn> [kind]'"
    in
    As_graph.add_as w.graph ~kind asn
  | [ "edge"; a; rel; b ] ->
    let a = known w lineno (parse_asn lineno a) in
    let b = known w lineno (parse_asn lineno b) in
    if Asn.equal a b then fail lineno "self edge";
    if As_graph.relationship w.graph a b <> None then
      fail lineno "duplicate edge";
    As_graph.add_edge w.graph a (parse_rel lineno rel) b
  | [ "originate"; a; p ] ->
    let asn = known w lineno (parse_asn lineno a) in
    As_graph.originate w.graph asn (parse_prefix lineno p)
  | "export" :: u :: v :: rest -> (
    let u = known w lineno (parse_asn lineno u) in
    let v = known w lineno (parse_asn lineno v) in
    adjacent w lineno u v;
    match rest with
    | [ "permit-all" ] -> set_export w ~from:u ~to_:v permit_all_export
    | [ "none" ] ->
      set_export w ~from:u ~to_:v
        { (export_at w u v) with prefixes = No_prefix }
    | [ "prefix"; p ] ->
      let p = parse_prefix lineno p in
      add_export_window w ~from:u ~to_:v (p, Prefix.len p, Prefix.len p)
    | [ "prefix"; p; ge; le ] ->
      let p = parse_prefix lineno p in
      add_export_window w ~from:u ~to_:v
        (p, parse_int lineno ge, parse_int lineno le)
    | _ ->
      fail lineno
        "expected 'permit-all', 'none' or 'prefix <cidr> [<ge> <le>]'")
  | [ "leak"; u; v ] ->
    let u = known w lineno (parse_asn lineno u) in
    let v = known w lineno (parse_asn lineno v) in
    adjacent w lineno u v;
    inject_leak w ~from:u ~to_:v
  | [ "local-pref"; at; from; n ] ->
    let at = known w lineno (parse_asn lineno at) in
    let from = known w lineno (parse_asn lineno from) in
    adjacent w lineno at from;
    set_local_pref w ~at ~from (parse_int lineno n)
  | [ "peerlock"; at; t ] ->
    let at = known w lineno (parse_asn lineno at) in
    let t = known w lineno (parse_asn lineno t) in
    add_peerlock w ~at ~protect:t
  | [ "peerlock-lite"; at ] ->
    add_peerlock_lite w (known w lineno (parse_asn lineno at))
  | [] -> ()
  | kw :: _ -> fail lineno (Printf.sprintf "unknown statement %S" kw)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse ?af text =
  let w = of_graph ?af (As_graph.create ()) in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line =
          match String.index_opt line '#' with
          | Some j -> String.sub line 0 j
          | None -> line
        in
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '!' then ()
        else handle_line w lineno (tokens trimmed))
      (String.split_on_char '\n' text);
    Ok w
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let parse_exn ?af text =
  match parse ?af text with
  | Ok w -> w
  | Error e -> invalid_arg ("World.parse_exn: " ^ e)
