module Metrics = Peering_obs.Metrics

type 'a pass = {
  name : string;
  about : string;
  run : 'a -> Diagnostic.t list;
}

type 'a t = { mutable passes : 'a pass list (* reversed *) }

let m_passes =
  Metrics.counter ~help:"Analyzer passes executed" "check.passes_run"

let m_diags =
  Metrics.Family.counter ~help:"Diagnostics emitted by analyzer passes"
    "check.diagnostics"

let create () = { passes = [] }

let register t ~name ~about run =
  let p = { name; about; run } in
  if List.exists (fun q -> q.name = name) t.passes then
    t.passes <-
      List.map (fun q -> if q.name = name then p else q) t.passes
  else t.passes <- p :: t.passes

let in_order t = List.rev t.passes

let passes t = List.map (fun p -> (p.name, p.about)) (in_order t)

let run ?only ?exclude t x =
  let selected p =
    (match only with None -> true | Some l -> List.mem p.name l)
    && match exclude with None -> true | Some l -> not (List.mem p.name l)
  in
  List.concat_map
    (fun p ->
      if selected p then begin
        Metrics.Counter.inc m_passes;
        let ds = p.run x in
        List.iter
          (fun d ->
            Metrics.Counter.inc
              (Metrics.Family.get m_diags
                 [ ( "severity",
                     Diagnostic.severity_to_string d.Diagnostic.severity )
                 ]))
          ds;
        ds
      end
      else [])
    (in_order t)
