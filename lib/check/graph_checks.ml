open Peering_net
open Peering_topo

let c_partition = "GRAPH-PARTITION"
let c_relcycle = "GRAPH-RELCYCLE"
let c_moas = "GRAPH-MOAS"
let c_overlap = "XEXP-OVERLAP"
let c_asn = "XEXP-ASN"
let c_poison = "XEXP-POISON"

let codes = [ c_partition; c_relcycle; c_moas; c_overlap; c_asn; c_poison ]

(* ------------------------------------------------------------------ *)
(* Connectivity: a world whose topology splits into several components
   cannot carry any experiment across the split. One diagnostic naming
   the smallest component keeps the report short on badly broken
   inputs. *)

let components g =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  List.filter_map
    (fun root ->
      if Hashtbl.mem seen (Asn.to_int root) then None
      else begin
        let comp = ref [] in
        let stack = ref [ root ] in
        Hashtbl.replace seen (Asn.to_int root) ();
        while !stack <> [] do
          match !stack with
          | [] -> ()
          | v :: rest ->
            stack := rest;
            comp := v :: !comp;
            List.iter
              (fun (u, _) ->
                if not (Hashtbl.mem seen (Asn.to_int u)) then begin
                  Hashtbl.replace seen (Asn.to_int u) ();
                  stack := u :: !stack
                end)
              (As_graph.neighbors g v)
        done;
        Some (List.sort Asn.compare !comp)
      end)
    (As_graph.ases g)

let partition w =
  let g = World.graph w in
  match components g with
  | [] | [ _ ] -> []
  | comps ->
    let smallest =
      List.fold_left
        (fun best c ->
          match best with
          | Some b when List.length b <= List.length c -> best
          | _ -> Some c)
        None comps
      |> Option.get
    in
    [ Diagnostic.warning ~code:c_partition
        ~hint:"add edges to connect the components or split the world"
        (Printf.sprintf
           "topology splits into %d connected components; routes cannot \
            cross the split (smallest component: %s)"
           (List.length comps)
           (String.concat ", " (List.map Asn.to_string smallest)))
    ]

(* ------------------------------------------------------------------ *)
(* Provider cycles. A cycle in the customer->provider digraph means
   some AS transitively pays itself for transit — a mislabeled
   relationship in practice, and the other half of the Gao-Rexford
   convergence premise. Iterative DFS with gray/black coloring; the
   path stack reconstructs the cycle for the message. *)

let provider_cycle w =
  let g = World.graph w in
  let color : (int, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 64 in
  let found = ref None in
  let rec dfs path v =
    if !found = None then
      match Hashtbl.find_opt color (Asn.to_int v) with
      | Some `Black -> ()
      | Some `Gray ->
        (* v is on the current path: slice the cycle out of it *)
        let rec cut acc = function
          | x :: rest ->
            let acc = x :: acc in
            if Asn.equal x v then acc else cut acc rest
          | [] -> acc
        in
        found := Some (cut [ v ] path)
      | None ->
        Hashtbl.replace color (Asn.to_int v) `Gray;
        List.iter (fun p -> dfs (v :: path) p) (As_graph.providers g v);
        Hashtbl.replace color (Asn.to_int v) `Black
  in
  List.iter (fun v -> dfs [] v) (As_graph.ases g);
  match !found with
  | None -> []
  | Some cycle ->
    [ Diagnostic.error ~code:c_relcycle
        ~hint:"re-examine the customer/provider labels on these edges"
        (Printf.sprintf
           "customer-provider relationships form a cycle: %s — some AS \
            transitively buys transit from itself (Gao-Rexford convergence \
            premise broken)"
           (String.concat " -> "
              (List.map Asn.to_string cycle)))
    ]

(* ------------------------------------------------------------------ *)
(* MOAS: the same prefix originated by several ASes. Legitimate in
   anycast deployments, but in a verification world it is far more
   often a typo'd originate line, so flag it. The per-prefix origin
   index keeps only the last writer; walk per-AS prefix sets instead. *)

let moas w =
  let g = World.graph w in
  let origins =
    List.fold_left
      (fun acc a ->
        List.fold_left
          (fun acc p ->
            let cur =
              Option.value (Prefix.Map.find_opt p acc) ~default:[]
            in
            Prefix.Map.add p (a :: cur) acc)
          acc
          (As_graph.prefixes_of g a))
      Prefix.Map.empty (As_graph.ases g)
  in
  Prefix.Map.fold
    (fun p ases acc ->
      match ases with
      | [] | [ _ ] -> acc
      | many ->
        let many = List.sort Asn.compare many in
        Diagnostic.warning ~code:c_moas
          ~hint:
            "if this is intentional anycast, ignore; otherwise fix the \
             originate lines"
          (Printf.sprintf "prefix %s is originated by %d ASes: %s (MOAS)"
             (Prefix.to_string p) (List.length many)
             (String.concat ", "
                (List.map Asn.to_string many)))
        :: acc)
    origins []
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Cross-experiment conflicts over a batch of specs. Labels prefer the
   spec's file name, falling back to its experiment id. *)

let spec_label file (s : Spec.t) =
  match file with Some f -> f | None -> s.Spec.id

let announced (s : Spec.t) =
  List.filter_map
    (fun ev ->
      match ev.Spec.ev_kind with
      | Spec.Announce _ -> Some ev.Spec.ev_prefix
      | Spec.Withdraw -> None)
    s.Spec.events

let spec_conflicts specs =
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let out = ref [] in
  let emit d = out := d :: !out in
  for i = 0 to n - 1 do
    let file_i, si = specs.(i) in
    let li = spec_label file_i si in
    let pfx_i =
      List.sort_uniq Prefix.compare (si.Spec.prefixes @ announced si)
    in
    for j = i + 1 to n - 1 do
      let file_j, sj = specs.(j) in
      let lj = spec_label file_j sj in
      (* Overlapping address space: both experiments' routers would
         fight over the same routes on the shared muxes. *)
      let pfx_j =
        List.sort_uniq Prefix.compare (sj.Spec.prefixes @ announced sj)
      in
      let clash =
        List.find_map
          (fun p ->
            List.find_map
              (fun q -> if Prefix.overlaps p q then Some (p, q) else None)
              pfx_j)
          pfx_i
      in
      (match clash with
      | Some (p, q) ->
        emit
          (Diagnostic.error ?file:file_i ~code:c_overlap
             ~hint:"allocate disjoint prefixes to concurrent experiments"
             (Printf.sprintf
                "experiment %s uses %s which overlaps %s used by \
                 experiment %s"
                li (Prefix.to_string p) (Prefix.to_string q) lj))
      | None -> ());
      (* Shared origin ASN: both would open the mux BGP session as the
         same AS — the sessions collide. *)
      List.iter
        (fun a ->
          if List.exists (Asn.equal a) sj.Spec.asns then
            emit
              (Diagnostic.error ?file:file_i ~code:c_asn
                 ~hint:
                   "allocate a distinct origin ASN to each concurrent \
                    experiment"
                 (Printf.sprintf
                    "experiments %s and %s both originate as %s: their \
                     mux BGP sessions collide"
                    li lj (Asn.to_string a))))
        si.Spec.asns
    done;
    (* Poisoning another live experiment's ASN withdraws its routes
       from the poisoned AS's viewpoint — sabotage, even if vetted. *)
    List.iter
      (fun ev ->
        match ev.Spec.ev_kind with
        | Spec.Withdraw -> ()
        | Spec.Announce path ->
          List.iter
            (fun a ->
              for j = 0 to n - 1 do
                if j <> i then begin
                  let file_j, sj = specs.(j) in
                  if List.exists (Asn.equal a) sj.Spec.asns then
                    emit
                      (Diagnostic.warning ?file:file_i
                         ~line:ev.Spec.ev_line ~code:c_poison
                         ~hint:
                           "coordinate with the other experiment or poison \
                            a different ASN"
                         (Printf.sprintf
                            "experiment %s poisons %s, which is \
                             allocated to experiment %s"
                            li (Asn.to_string a)
                            (spec_label file_j sj)))
                end
              done)
            path)
      si.Spec.events
  done;
  List.rev !out
