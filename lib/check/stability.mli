(** Stability analysis: does the world satisfy the Gao–Rexford
    convergence conditions?

    BGP converges on any topology when (a) the provider digraph is
    acyclic (checked by {!Graph_checks}) and (b) every AS strictly
    prefers customer-learned routes over peer/provider-learned ones.
    These passes flag violations of (b):

    - [STAB-PREF] (warning): a session where a non-customer's routes
      are imported at or above the AS's customer local-pref level.
    - [STAB-WHEEL] (error): a strongly connected component (>= 2 ASes)
      of such risky sessions — the skeleton of a dispute wheel
      (Griffin–Shepherd–Wilfong), the structure that lets BGP
      oscillate forever.

    With the class-default preferences ({!World.default_local_pref})
    nothing fires; only explicit [local-pref] overrides (or
    {!World.set_import_policy}) create risky edges. *)

open Peering_net

val codes : string list
(** Diagnostic codes this module can emit. *)

val risky_edges :
  World.t -> (Asn.t * Asn.t * Peering_topo.Relationship.t * int * int) list
(** [(v, u, rel, pref, floor)]: [v] imports from non-customer [u]
    (relationship [rel]) at local-pref [pref >= floor], where [floor]
    is the lowest preference [v] gives any customer session. Ascending
    by [(v, u)]. *)

val prefer_non_customer : World.t -> Diagnostic.t list
(** The [STAB-PREF] pass. *)

val wheels : World.t -> Diagnostic.t list
(** The [STAB-WHEEL] pass: Tarjan SCC over the risky digraph. *)
