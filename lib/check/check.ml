open Peering_router

let config_registry : Config.t Registry.t = Registry.create ()

let cross_config_registry : (string option * Config.t) list Registry.t =
  Registry.create ()

let policy_registry : Policy_checks.input Registry.t = Registry.create ()
let spec_registry : Spec.t Registry.t = Registry.create ()
let world_registry : World.t Registry.t = Registry.create ()

let cross_spec_registry : (string option * Spec.t) list Registry.t =
  Registry.create ()

let () =
  let r = Registry.register config_registry in
  r ~name:"no-bgp" ~about:"configuration has a router bgp block"
    Config_checks.no_bgp;
  r ~name:"rtmap-undef" ~about:"neighbors reference defined route-maps"
    Config_checks.undefined_route_maps;
  r ~name:"rtmap-unused" ~about:"every route-map is attached somewhere"
    Config_checks.unused_route_maps;
  r ~name:"rtmap-shadow" ~about:"route-map entries are reachable"
    Config_checks.shadowed_map_entries;
  r ~name:"pfxlist-undef" ~about:"matches reference defined prefix-lists"
    Config_checks.undefined_prefix_lists;
  r ~name:"pfxlist-unused" ~about:"every prefix-list is matched somewhere"
    Config_checks.unused_prefix_lists;
  r ~name:"pfxlist-shadow" ~about:"prefix-list rules are reachable"
    Config_checks.shadowed_prefix_rules;
  r ~name:"pfxlist-bounds" ~about:"ge/le windows are satisfiable"
    Config_checks.impossible_bounds;
  r ~name:"net-dup" ~about:"networks are declared once"
    Config_checks.duplicate_networks;
  r ~name:"nbr-nopolicy" ~about:"neighbors have policy attached"
    Config_checks.neighbors_without_policy;
  r ~name:"timers" ~about:"BGP timers are not degenerate"
    Config_checks.degenerate_timers;
  Registry.register cross_config_registry ~name:"sessions"
    ~about:"paired configs agree on remote-as and addresses"
    Config_checks.sessions;
  let p = Registry.register policy_registry in
  p ~name:"unsat" ~about:"entry conditions are satisfiable"
    Policy_checks.unsatisfiable_entries;
  p ~name:"dead" ~about:"entries are not shadowed by earlier catch-alls"
    Policy_checks.dead_entries;
  p ~name:"leak" ~about:"no permit-all exports towards providers/peers"
    Policy_checks.export_leaks;
  let s = Registry.register spec_registry in
  s ~name:"hijack" ~about:"announced prefixes are inside the allocation"
    Experiment_checks.hijacks;
  s ~name:"poison" ~about:"path suffixes respect poisoning approval"
    (fun spec -> Experiment_checks.poisonings spec);
  s ~name:"dampen" ~about:"the schedule does not trip RFC 2439 dampening"
    (fun spec -> Experiment_checks.dampening spec);
  let w = Registry.register world_registry in
  w ~name:"graph-partition" ~about:"the topology is connected"
    Graph_checks.partition;
  w ~name:"graph-relcycle" ~about:"customer-provider relations are acyclic"
    Graph_checks.provider_cycle;
  w ~name:"graph-moas" ~about:"each prefix has a single origin"
    Graph_checks.moas;
  w ~name:"leak-edges" ~about:"no export may violate Gao-Rexford discipline"
    Leak_analysis.edges;
  w ~name:"leak-reach"
    ~about:"blast radius of each leak-prone edge (abstract fixpoint)"
    Leak_analysis.reach;
  w ~name:"stab-pref" ~about:"customer routes are strictly preferred"
    Stability.prefer_non_customer;
  w ~name:"stab-wheel" ~about:"no dispute wheel among risky sessions"
    Stability.wheels;
  Registry.register cross_spec_registry ~name:"conflicts"
    ~about:"concurrent experiments do not collide"
    Graph_checks.spec_conflicts

let stamp file diags =
  match file with
  | None -> diags
  | Some f -> List.map (Diagnostic.with_file f) diags

let check_config ?file cfg =
  Diagnostic.sort (stamp file (Registry.run config_registry cfg))

let check_configs configs =
  let per =
    List.concat_map
      (fun (file, cfg) -> stamp file (Registry.run config_registry cfg))
      configs
  in
  let cross = Registry.run cross_config_registry configs in
  Diagnostic.sort (per @ cross)

let check_policy ?name ?relationship policy =
  Diagnostic.sort
    (Registry.run policy_registry
       (Policy_checks.input ?name ?relationship policy))

let check_spec ?file spec =
  Diagnostic.sort (stamp file (Registry.run spec_registry spec))

let check_experiment experiment events =
  check_spec (Spec.of_experiment experiment events)

let check_specs specs =
  let per =
    List.concat_map
      (fun (file, spec) -> stamp file (Registry.run spec_registry spec))
      specs
  in
  Diagnostic.sort (per @ Registry.run cross_spec_registry specs)

let check_world w =
  let topo = Registry.run world_registry w in
  let specs = World.specs w in
  let per_spec =
    List.concat_map
      (fun (file, spec) -> stamp file (Registry.run spec_registry spec))
      specs
  in
  let cross = Registry.run cross_spec_registry specs in
  Diagnostic.sort (topo @ per_spec @ cross)

let codes =
  [ ("RTR-NOBGP", Diagnostic.Error, "no router bgp block");
    ("RTMAP-UNDEF", Diagnostic.Error, "reference to an undefined route-map");
    ("RTMAP-UNUSED", Diagnostic.Warning, "route-map defined but never used");
    ("RTMAP-SHADOW", Diagnostic.Warning, "unreachable route-map entry");
    ( "PFXLIST-UNDEF",
      Diagnostic.Error,
      "reference to an undefined prefix-list" );
    ( "PFXLIST-UNUSED",
      Diagnostic.Warning,
      "prefix-list defined but never used" );
    ("PFXLIST-SHADOW", Diagnostic.Warning, "unreachable prefix-list rule");
    ( "PFXLIST-BOUNDS",
      Diagnostic.Error,
      "ge/le bounds that can never match" );
    ("NET-DUP", Diagnostic.Warning, "network declared twice");
    ( "NBR-NOPOLICY",
      Diagnostic.Warning,
      "neighbor without route-maps in either direction" );
    ( "TIMER-DEGEN",
      Diagnostic.Error,
      "hold time below the keepalive interval, or zero connect-retry" );
    ( "SESSION-MISMATCH",
      Diagnostic.Error,
      "paired configs disagree on remote-as or addresses" );
    ( "POLICY-UNSAT",
      Diagnostic.Warning,
      "policy entry with unsatisfiable conditions" );
    ( "POLICY-DEAD",
      Diagnostic.Warning,
      "policy entry shadowed by an earlier catch-all" );
    ( "POLICY-LEAK",
      Diagnostic.Error,
      "permit-all export towards a provider or peer (route leak)" );
    ( "EXP-HIJACK",
      Diagnostic.Error,
      "announcement outside the experiment's allocation" );
    ( "EXP-POISON",
      Diagnostic.Error,
      "public ASN in path suffix without poisoning approval" );
    ( "EXP-DAMPEN",
      Diagnostic.Error,
      "schedule would trip RFC 2439 route-flap dampening" );
    ( "GRAPH-PARTITION",
      Diagnostic.Warning,
      "topology splits into several connected components" );
    ( "GRAPH-RELCYCLE",
      Diagnostic.Error,
      "cycle in the customer-provider relationship digraph" );
    ("GRAPH-MOAS", Diagnostic.Warning, "prefix originated by several ASes");
    ( "LEAK-EDGE",
      Diagnostic.Error,
      "edge may export beyond Gao-Rexford discipline (route leak)" );
    ( "LEAK-REACH",
      Diagnostic.Warning,
      "blast radius of a leak-prone edge (static fixpoint)" );
    ( "STAB-PREF",
      Diagnostic.Warning,
      "non-customer session imported at or above customer local-pref" );
    ( "STAB-WHEEL",
      Diagnostic.Error,
      "dispute wheel: cycle of prefer-non-customer sessions" );
    ( "XEXP-OVERLAP",
      Diagnostic.Error,
      "two experiments' prefixes overlap" );
    ("XEXP-ASN", Diagnostic.Error, "two experiments share an origin ASN");
    ( "XEXP-POISON",
      Diagnostic.Warning,
      "experiment poisons an ASN allocated to another experiment" );
    ("PARSE", Diagnostic.Error, "file failed to parse")
  ]
