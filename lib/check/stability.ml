open Peering_net
open Peering_topo

let c_pref = "STAB-PREF"
let c_wheel = "STAB-WHEEL"
let codes = [ c_pref; c_wheel ]

(* Gao–Rexford's stability condition: every AS strictly prefers
   customer routes over peer/provider routes (plus no provider
   cycles, checked by Graph_checks). A session whose import
   preference can reach the AS's customer level breaks the premise;
   a cycle of such sessions is the skeleton of a dispute wheel
   (Griffin–Shepherd–Wilfong): each member may prefer the route
   through the next member over its own customer/direct route, which
   is the configuration that lets BGP oscillate forever. *)

let lp w ~at ~from =
  match World.local_pref w ~at ~from with Some n -> n | None -> min_int

(* The lowest preference [v] gives any customer session — a
   non-customer session at or above it may displace customer routes.
   With no customers, the class default stands in. *)
let customer_floor w v =
  let g = World.graph w in
  match As_graph.customers g v with
  | [] -> World.default_local_pref Relationship.Customer
  | cs ->
    List.fold_left (fun acc c -> min acc (lp w ~at:v ~from:c)) max_int cs

(* Risky directed edges v -> u: u is v's peer or provider and v may
   prefer u's routes at customer level. Ascending (v, u). *)
let risky_edges w =
  let g = World.graph w in
  List.concat_map
    (fun v ->
      let floor = customer_floor w v in
      List.filter_map
        (fun (u, rel) ->
          match rel with
          | Relationship.Customer -> None
          | Relationship.Peer | Relationship.Provider ->
            let pref = lp w ~at:v ~from:u in
            if pref >= floor then Some (v, u, rel, pref, floor) else None)
        (As_graph.neighbors g v))
    (As_graph.ases g)

let prefer_non_customer w =
  List.map
    (fun (v, u, rel, pref, floor) ->
      Diagnostic.warning ~code:c_pref
        ~hint:
          (Printf.sprintf
             "lower the session's local-pref below %d so customer routes \
              always win"
             floor)
        (Printf.sprintf
           "%s imports from its %s %s at local-pref %d, at or above \
            its customer level %d: non-customer routes can displace \
            customer routes (Gao-Rexford stability premise broken)"
           (Asn.to_string v)
           (Relationship.to_string rel)
           (Asn.to_string u) pref floor))
    (risky_edges w)

(* ------------------------------------------------------------------ *)
(* Iterative Tarjan SCC over the risky digraph. *)

let sccs nodes succ =
  let index : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let low : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let on_stack : (int, bool) Hashtbl.t = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let key = Asn.to_int in
  let visit v =
    Hashtbl.replace index (key v) !counter;
    Hashtbl.replace low (key v) !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack (key v) true
  in
  List.iter
    (fun root ->
      if not (Hashtbl.mem index (key root)) then begin
        visit root;
        let call = ref [ (root, ref (succ root)) ] in
        while !call <> [] do
          match !call with
          | [] -> ()
          | (v, rest) :: tail -> (
            match !rest with
            | n :: ns ->
              rest := ns;
              if not (Hashtbl.mem index (key n)) then begin
                visit n;
                call := (n, ref (succ n)) :: !call
              end
              else if
                Option.value
                  (Hashtbl.find_opt on_stack (key n))
                  ~default:false
              then
                Hashtbl.replace low (key v)
                  (min (Hashtbl.find low (key v)) (Hashtbl.find index (key n)))
            | [] ->
              call := tail;
              (match tail with
              | (p, _) :: _ ->
                Hashtbl.replace low (key p)
                  (min (Hashtbl.find low (key p)) (Hashtbl.find low (key v)))
              | [] -> ());
              if Hashtbl.find low (key v) = Hashtbl.find index (key v) then begin
                let rec pop acc =
                  match !stack with
                  | x :: rest ->
                    stack := rest;
                    Hashtbl.replace on_stack (key x) false;
                    let acc = x :: acc in
                    if Asn.equal x v then acc else pop acc
                  | [] -> acc
                in
                out := pop [] :: !out
              end)
        done
      end)
    nodes;
  List.rev !out

let wheels w =
  let edges = risky_edges w in
  let succ_tbl : (int, Asn.t list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, u, _, _, _) ->
      let cur = Option.value (Hashtbl.find_opt succ_tbl (Asn.to_int v)) ~default:[] in
      Hashtbl.replace succ_tbl (Asn.to_int v) (cur @ [ u ]))
    edges;
  let nodes =
    List.sort_uniq Asn.compare (List.map (fun (v, _, _, _, _) -> v) edges)
  in
  let succ v =
    Option.value (Hashtbl.find_opt succ_tbl (Asn.to_int v)) ~default:[]
  in
  sccs nodes succ
  |> List.filter_map (fun comp ->
         if List.length comp < 2 then None
         else Some (List.sort Asn.compare comp))
  |> List.sort (fun a b -> Asn.compare (List.hd a) (List.hd b))
  |> List.map (fun members ->
         Diagnostic.error ~code:c_wheel
           ~hint:
             "restore strict prefer-customer import preferences somewhere \
              on the cycle"
           (Printf.sprintf
              "potential dispute wheel: %s each may prefer a \
               non-customer route via the next — BGP can oscillate \
               (no Gao-Rexford convergence guarantee)"
              (String.concat ", " (List.map Asn.to_string members))))
