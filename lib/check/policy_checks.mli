(** Static analysis over compiled {!Peering_bgp.Policy} values.

    Codes emitted here:
    - [POLICY-UNSAT] (warning): an entry's condition set is
      unsatisfiable (e.g. [All [c; Not c]], disjoint prefix ranges) so
      the entry can never fire
    - [POLICY-DEAD] (warning): an entry is shadowed by an earlier
      catch-all (or identical) entry
    - [POLICY-LEAK] (error): a permit-all export policy on a session
      towards a provider or peer — a Gao-Rexford valley that would
      leak provider/peer-learned routes *)

open Peering_bgp
open Peering_topo

type input = {
  pol_name : string option;  (** for messages, e.g. the route-map name *)
  pol_relationship : Relationship.t option;
      (** our relationship to the session's remote AS, if known: the
          remote is our [Customer], [Peer] or [Provider] *)
  policy : Policy.t;
}

val input :
  ?name:string -> ?relationship:Relationship.t -> Policy.t -> input

val cond_unsat : Policy.cond -> bool
(** Conservative: [true] only if the condition provably matches no
    route. *)

val cond_taut : Policy.cond -> bool
(** Conservative: [true] only if the condition provably matches every
    route. *)

val unsatisfiable_entries : input -> Diagnostic.t list
val dead_entries : input -> Diagnostic.t list
val export_leaks : input -> Diagnostic.t list
