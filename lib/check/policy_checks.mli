(** Static analysis over compiled {!Peering_bgp.Policy} values.

    Codes emitted here:
    - [POLICY-UNSAT] (warning): an entry's condition set is
      unsatisfiable (e.g. [All [c; Not c]], disjoint prefix ranges) so
      the entry can never fire
    - [POLICY-DEAD] (warning): an entry is shadowed by an earlier
      catch-all (or identical) entry
    - [POLICY-LEAK] (error): a permit-all export policy on a session
      towards a provider or peer — a Gao-Rexford valley that would
      leak provider/peer-learned routes *)

open Peering_net
open Peering_bgp
open Peering_topo

type af = V4 | V6
(** Address family of the routes a policy is vetted against. The
    family bounds the prefix lengths a ge/le window can match: 32 for
    IPv4, 128 for the MP-BGP IPv6 routes of {!Peering_bgp.Mp}. *)

val max_prefix_len : af -> int
(** 32 for {!V4}, 128 for {!V6}. *)

val codes : string list
(** Diagnostic codes this module can emit. *)

type input = {
  pol_name : string option;  (** for messages, e.g. the route-map name *)
  pol_relationship : Relationship.t option;
      (** our relationship to the session's remote AS, if known: the
          remote is our [Customer], [Peer] or [Provider] *)
  pol_af : af;  (** address family the policy applies to *)
  policy : Policy.t;
}

val input :
  ?name:string -> ?relationship:Relationship.t -> ?af:af -> Policy.t -> input
(** [af] defaults to {!V4}. *)

val triple_window : ?af:af -> Prefix.t * int * int -> int * int
(** The inclusive [lo, hi] range of route-prefix lengths a prefix-list
    [(p, ge, le)] triple can match, clamped to the family's maximum;
    empty when [lo > hi]. *)

val exact_in_triple : ?af:af -> Prefix.t -> Prefix.t * int * int -> bool
(** Does the triple match a route carrying exactly this prefix? *)

val cond_unsat : ?af:af -> Policy.cond -> bool
(** Conservative: [true] only if the condition provably matches no
    route. [af] defaults to {!V4}. *)

val cond_taut : ?af:af -> Policy.cond -> bool
(** Conservative: [true] only if the condition provably matches every
    route. [af] defaults to {!V4}. *)

val conds_unsat : ?af:af -> Policy.cond list -> bool
(** The conjunction of the conditions is unsatisfiable. *)

val conds_taut : ?af:af -> Policy.cond list -> bool
(** Every condition in the conjunction is a tautology. *)

val permits_all : ?af:af -> Policy.t -> bool
(** The policy provably permits every route: after dropping
    unsatisfiable entries, the first entry is a tautological
    [Permit]. *)

val unsatisfiable_entries : input -> Diagnostic.t list
val dead_entries : input -> Diagnostic.t list
val export_leaks : input -> Diagnostic.t list
