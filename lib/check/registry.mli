(** A pluggable registry of analyzer passes.

    A pass is a named function from an input (a parsed config, a
    compiled policy, an experiment spec, ...) to a list of
    diagnostics. Registries keep passes in registration order;
    registering a name twice replaces the earlier pass in place, so
    downstream users can override a built-in pass without disturbing
    the run order. *)

type 'a t

val create : unit -> 'a t

val register :
  'a t -> name:string -> about:string -> ('a -> Diagnostic.t list) -> unit
(** Add (or replace) a pass. [about] is a one-line description used in
    listings. *)

val passes : 'a t -> (string * string) list
(** [(name, about)] in run order. *)

val run :
  ?only:string list -> ?exclude:string list -> 'a t -> 'a -> Diagnostic.t list
(** Run every registered pass over the input and concatenate the
    diagnostics. [only] restricts to the named passes; [exclude] skips
    the named passes. *)
