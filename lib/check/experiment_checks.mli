(** Static vetting of experiment specs against the runtime safety rules
    of {!Peering_core.Safety} — the same faults the mux would refuse at
    run time, caught before the experiment starts.

    Codes emitted here:
    - [EXP-HIJACK] (error): an announced prefix falls outside the
      experiment's allocation (origin hijack)
    - [EXP-POISON] (error): a path suffix contains a public ASN but the
      experiment has no poisoning approval
    - [EXP-DAMPEN] (error): the announce/withdraw schedule would trip
      RFC 2439 route-flap dampening, so later announcements would be
      refused *)

open Peering_net
open Peering_bgp

val codes : string list
(** Diagnostic codes this module can emit. *)

val default_peering_asn : Asn.t
(** AS 47065, the testbed's mux ASN ({!Peering_core.Testbed}). *)

val hijacks : Spec.t -> Diagnostic.t list

val poisonings : ?peering_asn:Asn.t -> Spec.t -> Diagnostic.t list
(** Private ASNs, allocated ASNs and [peering_asn] are always allowed
    in a path suffix; any other ASN requires [may_poison]. *)

val dampening : ?params:Dampening.params -> Spec.t -> Diagnostic.t list
(** Replays the schedule through an RFC 2439 penalty model (withdrawals
    flap, exactly as {!Peering_core.Safety.note_withdraw} records them)
    and flags announcements that would arrive while suppressed. *)
