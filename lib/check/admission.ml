module Scheduler = Peering_core.Scheduler
module Experiment = Peering_core.Experiment

let issues_of_diagnostics diags =
  List.filter_map
    (fun (d : Diagnostic.t) ->
      let sev =
        match d.Diagnostic.severity with
        | Diagnostic.Error -> Some `Error
        | Diagnostic.Warning -> Some `Warning
        | Diagnostic.Info -> None
      in
      Option.map
        (fun issue_severity ->
          { Scheduler.issue_code = d.Diagnostic.code;
            issue_severity;
            issue_message = d.Diagnostic.message
          })
        sev)
    diags

(* A candidate's declared poison targets become synthetic announce
   events (path suffix = the targets) on its first allocated prefix,
   so the EXP-POISON and XEXP-POISON passes see exactly what the
   tenant plans to put on the wire. *)
let spec_of_candidate (c : Scheduler.candidate) =
  let events =
    match
      (c.Scheduler.cand_poison_targets, c.Scheduler.cand_experiment.Experiment.prefixes)
    with
    | [], _ | _, [] -> []
    | targets, prefix :: _ ->
      [ { Spec.ev_time = 0.0;
          ev_line = 0;
          ev_prefix = prefix;
          ev_kind = Spec.Announce targets
        }
      ]
  in
  ( Some c.Scheduler.cand_tenant,
    Spec.of_experiment c.Scheduler.cand_experiment events )

let vet candidates =
  issues_of_diagnostics
    (Check.check_specs (List.map spec_of_candidate candidates))
