(* The `peering` command-line tool: poke at the testbed from a shell.

     dune exec bin/peering_cli.exe -- <command> [options]

   Commands:
     world      generate a synthetic Internet and print its shape
     amsix      build the AMS-IX fabric and print the membership census
     table1     print the paper's testbed-capability matrix
     demo       run a one-shot announce/withdraw experiment
     emulate    emulate a Topology Zoo backbone and converge it
     config     parse a Quagga-style configuration file and report
     check      statically analyze configs and experiment specs
     stats      run an instrumented scenario and dump the metrics
     monitor    stream BMP from every mux into the monitoring station *)

open Cmdliner
open Peering_net
module Gen = Peering_topo.Gen
module As_graph = Peering_topo.As_graph
module Customer_cone = Peering_topo.Customer_cone
module Topology_zoo = Peering_topo.Topology_zoo
module Fabric = Peering_ixp.Fabric
module Amsix = Peering_ixp.Amsix
module Peering_policy = Peering_ixp.Peering_policy
module Rng = Peering_sim.Rng
module Engine = Peering_sim.Engine
module Mininext = Peering_emu.Mininext
module Forwarder = Peering_dataplane.Forwarder
open Peering_core

let seed_arg =
  let doc = "Deterministic seed for world generation." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc =
    "World scale: 'tiny' (~70 ASes), 'small' (~3.4K ASes) or 'paper' \
     (~46K ASes)."
  in
  Arg.(value & opt string "small" & info [ "scale" ] ~docv:"SCALE" ~doc)

let params_of ~seed ~scale =
  match scale with
  | "paper" -> { Gen.paper_scale_params with Gen.seed }
  | "small" -> { Gen.default_params with Gen.seed }
  | "tiny" ->
    { Gen.seed;
      Gen.n_tier1 = 4;
      Gen.n_large_transit = 6;
      Gen.n_small_transit = 12;
      Gen.n_stub = 40;
      Gen.n_content = 6;
      Gen.target_prefixes = 150
    }
  | s -> invalid_arg (Printf.sprintf "unknown scale %S (tiny|small|paper)" s)

(* ------------------------------------------------------------------ *)

let world_cmd =
  let run seed scale =
    let w = Gen.generate (params_of ~seed ~scale) in
    let g = w.Gen.graph in
    Printf.printf "ASes:       %d\n" (As_graph.n_ases g);
    Printf.printf "  tier-1:   %d\n" (List.length w.Gen.tier1);
    Printf.printf "  large:    %d\n" (List.length w.Gen.large_transit);
    Printf.printf "  small:    %d\n" (List.length w.Gen.small_transit);
    Printf.printf "  stubs:    %d\n" (List.length w.Gen.stubs);
    Printf.printf "  content:  %d\n" (List.length w.Gen.content);
    Printf.printf "edges:      %d\n" (As_graph.n_edges g);
    Printf.printf "prefixes:   %d\n" (As_graph.n_prefixes g);
    Printf.printf "top-10 by customer cone:\n";
    List.iteri
      (fun i (asn, size) ->
        if i < 10 then
          let n = As_graph.node_exn g asn in
          Printf.printf "  %2d. %-10s %-14s cone=%d\n" (i + 1)
            (Asn.to_string asn)
            (As_graph.kind_to_string n.As_graph.kind)
            size)
      (Customer_cone.rank_all g)
  in
  Cmd.v (Cmd.info "world" ~doc:"Generate a synthetic Internet and describe it")
    Term.(const run $ seed_arg $ scale_arg)

let amsix_cmd =
  let run seed scale =
    let w = Gen.generate (params_of ~seed ~scale) in
    let fabric = Amsix.build ~rng:(Rng.create seed) w in
    Printf.printf "AMS-IX: %d members, %d on route servers\n"
      (Fabric.n_members fabric)
      (List.length (Fabric.route_server_users fabric));
    List.iter
      (fun (policy, n) ->
        Printf.printf "  %-14s %d\n" (Peering_policy.to_string policy) n)
      (Fabric.policy_census fabric);
    let countries = Amsix.member_countries fabric w in
    Printf.printf "member countries: %d\n" (Country.Set.cardinal countries)
  in
  Cmd.v (Cmd.info "amsix" ~doc:"Build the calibrated AMS-IX fabric")
    Term.(const run $ seed_arg $ scale_arg)

let table1_cmd =
  let run () =
    print_string (Capability.render ());
    Printf.printf "\nPEERING meets all goals: %b\n" (Capability.peering_meets_all ())
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print the testbed capability matrix (Table 1)")
    Term.(const run $ const ())

let demo_cmd =
  let run seed =
    let params = { Testbed.default_params with Testbed.seed } in
    let t = Testbed.build ~params () in
    let e =
      match
        Testbed.new_experiment t ~id:"cli-demo" ~owner:"cli"
          ~description:"command line demonstration announcement" ()
      with
      | Ok e -> e
      | Error m -> failwith m
    in
    let client = Client.create ~id:"cli" ~experiment:e () in
    Testbed.connect_client t client
      ~sites:(List.map Testbed.site_name (Testbed.sites t));
    let p = List.hd e.Experiment.prefixes in
    ignore (Client.announce client p);
    Printf.printf "announced %s from %d sites: reachable from %d ASes\n"
      (Prefix.to_string p)
      (List.length (Testbed.sites t))
      (Testbed.reach_count t p);
    Client.withdraw client p;
    Printf.printf "withdrawn: %d ASes\n" (Testbed.reach_count t p)
  in
  Cmd.v (Cmd.info "demo" ~doc:"One-shot announce/withdraw round trip")
    Term.(const run $ seed_arg)

let emulate_cmd =
  let topo_arg =
    let doc = "Backbone to emulate: 'he' (Hurricane Electric) or 'abilene'." in
    Arg.(value & opt string "he" & info [ "topology" ] ~docv:"NAME" ~doc)
  in
  let run topo =
    let zoo =
      match topo with
      | "he" -> Topology_zoo.hurricane_electric
      | "abilene" -> Topology_zoo.abilene
      | s -> invalid_arg (Printf.sprintf "unknown topology %S" s)
    in
    let engine = Engine.create () in
    let fwd = Forwarder.create engine in
    let emu = Mininext.of_topology engine fwd ~asn:(Asn.of_int 6939) zoo in
    Printf.printf "emulating %s (%d PoPs, %d links)\n" zoo.Topology_zoo.name
      (Topology_zoo.n_pops zoo) (Topology_zoo.n_links zoo);
    Mininext.start emu;
    Engine.run ~until:120.0 engine;
    List.iteri
      (fun i pop ->
        Mininext.originate_at emu (Mininext.pop_name pop)
          (Prefix.make (Ipv4.of_octets 184 164 (224 + (i mod 32)) 0) 24))
      (Mininext.pops emu);
    Engine.run_for engine 120.0;
    List.iter
      (fun pop ->
        Printf.printf "  %-14s %3d routes\n" (Mininext.pop_name pop)
          (Mininext.routes_at emu (Mininext.pop_name pop)))
      (Mininext.pops emu);
    Printf.printf "modelled memory: %.2f GB\n"
      (float_of_int (Mininext.container_model_bytes emu) /. 1073741824.0)
  in
  Cmd.v (Cmd.info "emulate" ~doc:"Emulate a Topology Zoo backbone")
    Term.(const run $ topo_arg)

let config_cmd =
  let file_arg =
    let doc = "Quagga-style configuration file to parse." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    match Peering_router.Config.parse text with
    | Error e ->
      Printf.eprintf "parse error: %s\n" e;
      exit 1
    | Ok c ->
      (match Peering_router.Config.bgp c with
      | Some bgp ->
        Printf.printf "router bgp %s: %d networks, %d neighbors\n"
          (Asn.to_string bgp.Peering_router.Config.asn)
          (List.length bgp.Peering_router.Config.networks)
          (List.length bgp.Peering_router.Config.neighbors)
      | None -> print_endline "no router bgp block");
      List.iter
        (fun name ->
          match Peering_router.Config.compile_route_map c name with
          | Ok _ -> Printf.printf "route-map %s: compiles\n" name
          | Error e -> Printf.printf "route-map %s: ERROR %s\n" name e)
        (Peering_router.Config.route_map_names c)
  in
  Cmd.v (Cmd.info "config" ~doc:"Parse and check a router configuration")
    Term.(const run $ file_arg)

(* Shared by [check --json] and [verify --json]: one diagnostic as a
   JSON object with a fixed key set, [null] standing in for missing
   fields, streamed through the canonical writer so two runs over the
   same inputs are byte-identical. *)
let diag_json d =
  let module Json = Peering_obs.Json in
  let module Diagnostic = Peering_check.Diagnostic in
  let opt_str = function None -> Json.Null | Some s -> Json.String s in
  let opt_int = function None -> Json.Null | Some n -> Json.Int n in
  Json.Obj
    [ ("file", opt_str d.Diagnostic.file);
      ("line", opt_int d.Diagnostic.line);
      ( "severity",
        Json.String (Diagnostic.severity_to_string d.Diagnostic.severity) );
      ("code", Json.String d.Diagnostic.code);
      ("message", Json.String d.Diagnostic.message);
      ("hint", opt_str d.Diagnostic.hint)
    ]

let stream_report ~schema ~extra diags =
  let module Json = Peering_obs.Json in
  let module Diagnostic = Peering_check.Diagnostic in
  let w = Json.Writer.to_channel ~indent:2 stdout in
  Json.Writer.begin_obj w;
  Json.Writer.key w "schema";
  Json.Writer.value w (Json.String schema);
  List.iter
    (fun (k, v) ->
      Json.Writer.key w k;
      Json.Writer.value w v)
    extra;
  Json.Writer.key w "diagnostics";
  Json.Writer.begin_arr w;
  List.iter (fun d -> Json.Writer.value w (diag_json d)) diags;
  Json.Writer.end_arr w;
  Json.Writer.key w "summary";
  Json.Writer.value w
    (Json.Obj
       [ ("errors", Json.Int (Diagnostic.count Diagnostic.Error diags));
         ("warnings", Json.Int (Diagnostic.count Diagnostic.Warning diags));
         ("infos", Json.Int (Diagnostic.count Diagnostic.Info diags))
       ]);
  Json.Writer.end_obj w;
  Json.Writer.close w;
  print_newline ()

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let check_cmd =
  let files_arg =
    let doc =
      "Files to analyze. Files ending in .exp are parsed as experiment \
       specs; everything else as Quagga-style router configurations. \
       Configurations are also checked against each other (session \
       consistency), and specs against each other (prefix overlap, ASN \
       collisions, cross-experiment poisoning)."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let codes_arg =
    let doc = "List the diagnostic codes and exit." in
    Arg.(value & flag & info [ "codes" ] ~doc)
  in
  let json_arg =
    let doc =
      "Emit the report as a JSON document (byte-identical across runs \
       over the same inputs)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let module Check = Peering_check.Check in
  let module Diagnostic = Peering_check.Diagnostic in
  let module Json = Peering_obs.Json in
  let run codes json files =
    if codes then begin
      List.iter
        (fun (code, sev, about) ->
          Printf.printf "%-16s %-8s %s\n" code
            (Diagnostic.severity_to_string sev)
            about)
        Check.codes;
      exit 0
    end;
    if files = [] then begin
      prerr_endline "check: no files given (try --codes)";
      exit 2
    end;
    let parse_failures = ref [] in
    let configs = ref [] and specs = ref [] in
    List.iter
      (fun file ->
        let text = read_file file in
        if Filename.check_suffix file ".exp" then
          match Peering_check.Spec.parse text with
          | Ok s -> specs := (Some file, s) :: !specs
          | Error e ->
            parse_failures :=
              Diagnostic.error ~file ~code:"PARSE" e :: !parse_failures
        else
          match Peering_router.Config.parse text with
          | Ok c -> configs := (Some file, c) :: !configs
          | Error e ->
            parse_failures :=
              Diagnostic.error ~file ~code:"PARSE" e :: !parse_failures)
      files;
    let diags =
      List.rev !parse_failures
      @ Check.check_configs (List.rev !configs)
      @ Check.check_specs (List.rev !specs)
    in
    let diags = Diagnostic.sort diags in
    let errors = Diagnostic.count Diagnostic.Error diags in
    if json then
      stream_report ~schema:"peering-check/1"
        ~extra:[ ("files", Json.Int (List.length files)) ]
        diags
    else begin
      List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
      let warnings = Diagnostic.count Diagnostic.Warning diags in
      Printf.printf "%d file%s checked: %d error%s, %d warning%s\n"
        (List.length files)
        (if List.length files = 1 then "" else "s")
        errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
    end;
    exit (if errors > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze router configurations and experiment specs \
          (rcc-style); exit 1 if any error-severity diagnostic fires")
    Term.(const run $ codes_arg $ json_arg $ files_arg)

let verify_cmd =
  let files_arg =
    let doc =
      "Exactly one .world topology file plus any number of .exp \
       experiment specs to verify against it."
    in
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the report as a JSON document (byte-identical across runs \
       over the same inputs)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let module Check = Peering_check.Check in
  let module World = Peering_check.World in
  let module Diagnostic = Peering_check.Diagnostic in
  let module Json = Peering_obs.Json in
  let module As_graph = Peering_topo.As_graph in
  let run json files =
    let worlds, exps =
      List.partition (fun f -> Filename.check_suffix f ".world") files
    in
    let world_file =
      match worlds with
      | [ f ] -> f
      | [] ->
        prerr_endline "verify: expected a .world file";
        exit 2
      | _ ->
        prerr_endline "verify: expected exactly one .world file";
        exit 2
    in
    let bad = List.filter (fun f -> not (Filename.check_suffix f ".exp")) exps in
    if bad <> [] then begin
      Printf.eprintf "verify: not a .world or .exp file: %s\n"
        (String.concat ", " bad);
      exit 2
    end;
    let w =
      match World.parse (read_file world_file) with
      | Ok w -> w
      | Error e ->
        Printf.eprintf "%s: %s\n" world_file e;
        exit 2
    in
    let spec_failures = ref [] in
    List.iter
      (fun file ->
        match Peering_check.Spec.parse (read_file file) with
        | Ok s -> World.add_spec ~file w s
        | Error e ->
          spec_failures :=
            Diagnostic.error ~file ~code:"PARSE" e :: !spec_failures)
      exps;
    let diags =
      Diagnostic.sort (List.rev !spec_failures @ Check.check_world w)
    in
    let g = World.graph w in
    let errors = Diagnostic.count Diagnostic.Error diags in
    if json then
      stream_report ~schema:"peering-verify/1"
        ~extra:
          [ ("world", Json.String world_file);
            ( "shape",
              Json.Obj
                [ ("ases", Json.Int (As_graph.n_ases g));
                  ("edges", Json.Int (As_graph.n_edges g));
                  ("prefixes", Json.Int (As_graph.n_prefixes g));
                  ("specs", Json.Int (List.length (World.specs w)))
                ] )
          ]
        diags
    else begin
      Printf.printf "world %s: %d ASes, %d edges, %d prefixes, %d specs\n"
        world_file (As_graph.n_ases g) (As_graph.n_edges g)
        (As_graph.n_prefixes g)
        (List.length (World.specs w));
      List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
      let warnings = Diagnostic.count Diagnostic.Warning diags in
      Printf.printf "%d error%s, %d warning%s\n" errors
        (if errors = 1 then "" else "s")
        warnings
        (if warnings = 1 then "" else "s")
    end;
    exit (if errors > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Semantically verify a .world topology (static leak \
          reachability, Gao-Rexford stability, structural checks) and \
          any experiment specs against it; exit 1 if any error-severity \
          diagnostic fires")
    Term.(const run $ json_arg $ files_arg)

(* ------------------------------------------------------------------ *)
(* The seeded end-to-end scenario behind [stats] and [trace]: an
   experiment announcement through controller/safety/mux-export, a wire
   BGP session, an IXP route-server pass and a dataplane packet, all on
   one deterministic engine. The chosen announcement, the route-server
   redistribution of its prefix and the tunnel packet it makes
   deliverable run under one root span, so with span collection on the
   whole story lands in a single causal tree. *)

module Scenario = struct
  module Metrics = Peering_obs.Metrics
  module Span = Peering_obs.Span
  module Sink = Peering_obs.Sink
  module Trace = Peering_sim.Trace
  module Router = Peering_router.Router
  module Route_server = Peering_ixp.Route_server
  module Tunnel = Peering_dataplane.Tunnel
  module Fib = Peering_dataplane.Fib
  module Packet = Peering_dataplane.Packet

  (* A four-AS world with one injected leak, so the [stats] snapshot
     also exercises the static verifier's check.* metrics. *)
  let verified_world () =
    let w =
      Peering_check.World.parse_exn
        "as 10 tier1\n\
         as 20 small-transit\n\
         as 30 small-transit\n\
         as 40 stub\n\
         edge 20 provider 10\n\
         edge 30 provider 10\n\
         edge 20 peer 30\n\
         edge 40 provider 20\n\
         originate 30 198.51.100.0/24\n\
         originate 40 203.0.113.0/24\n\
         leak 20 10\n"
    in
    ignore (Peering_check.Check.check_world w)

  let run ?(record_spans = false) ~seed ~domains () =
    Metrics.reset ();
    Span.reset ();
    if record_spans then Sink.start_flight_recorder ()
    else Sink.stop_flight_recorder ();
    verified_world ();
    let trace = Trace.create () in
    (* Scenario 1: the quickstart experiment — controller, safety
       filter (one accepted announce, one blocked hijack, one
       withdrawal), route servers, propagation. *)
    let params = { Testbed.default_params with Testbed.seed; domains } in
    let t = Testbed.build ~params () in
    let engine = Testbed.engine t in
    Trace.attach trace ~clock:(fun () -> Engine.now engine);
    let experiment =
      match
        Testbed.new_experiment t ~id:"stats" ~owner:"cli"
          ~description:"instrumented scenario for the stats subcommand" ()
      with
      | Ok e -> e
      | Error m -> failwith m
    in
    let client = Client.create ~id:"stats-client" ~experiment () in
    Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
    let prefix = List.hd experiment.Experiment.prefixes in
    (* Scenario 3 and 4 props, built up front so the announcement's
       root span below can cover their causally-linked activity: an
       IXP route server redistributing the experiment prefix (one
       community-filtered delivery), and a tunnel carrying a packet. *)
    let rs = Route_server.create () in
    List.iter (fun m -> Route_server.connect rs (Asn.of_int m)) [ 10; 20; 30 ];
    let fwd = Forwarder.create engine in
    Forwarder.add_node fwd "client";
    Forwarder.add_node fwd "mux";
    let tun = Tunnel.establish fwd engine ~a:"client" ~b:"mux" () in
    Tunnel.route_via tun ~at:"client" (Prefix.of_string_exn "172.16.0.0/12");
    Forwarder.set_route fwd "mux" (Prefix.of_string_exn "172.16.0.0/12")
      Fib.Local;
    Span.with_span
      ~time:(fun () -> Engine.now engine)
      ~attrs:[ ("prefix", Prefix.to_string prefix) ]
      "experiment.announce"
      (fun () ->
        ignore (Client.announce client prefix);
        let rs_route =
          Peering_bgp.Route.make prefix
            (Peering_bgp.Attrs.make
               ~as_path:(Peering_bgp.As_path.of_asns [ Asn.of_int 10 ])
               ~communities:[ Peering_bgp.Community.make 0 20 ]
               ~next_hop:(Ipv4.of_octets 192 0 2 1) ())
        in
        ignore (Route_server.announce rs ~from:(Asn.of_int 10) rs_route);
        Forwarder.inject fwd ~at:"client"
          (Packet.make ~src:(Ipv4.of_octets 10 1 0 1)
             ~dst:(Ipv4.of_octets 172 16 1 1) ~size:500 ()));
    ignore (Client.announce client (Prefix.of_string_exn "8.8.8.0/24"));
    Client.withdraw client prefix;
    ignore (Route_server.withdraw rs ~from:(Asn.of_int 10) prefix);
    (* Scenario 2: a wire BGP session between two software routers —
       FSM transitions, OPEN/KEEPALIVE/UPDATE bytes, decision runs. *)
    let a1 = Ipv4.of_octets 10 0 0 1 and a2 = Ipv4.of_octets 10 0 0 2 in
    let r1 = Router.create engine ~asn:(Asn.of_int 65001) ~router_id:a1 () in
    let r2 = Router.create engine ~asn:(Asn.of_int 65002) ~router_id:a2 () in
    Router.originate r1 (Prefix.of_string_exn "10.1.0.0/16");
    Router.originate r2 (Prefix.of_string_exn "10.2.0.0/16");
    let _session = Router.connect engine (r1, a1) (r2, a2) in
    Engine.run_for engine 30.0;
    Engine.run_for engine 1.0;
    Trace.detach ();
    if record_spans then Sink.stop_flight_recorder ();
    (trace, prefix)
end

let stats_cmd =
  let json_arg =
    let doc = "Emit the snapshot as a JSON document instead of a table." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains for the valley-free propagation engine (default: \
       runtime-recommended). The route tables — and the \
       topo.propagation.* metrics — are identical for every value; only \
       wall time changes."
    in
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)
  in
  let events_arg =
    let doc =
      "Also dump every retained trace event to $(docv) as a JSON array, \
       streamed row by row (one object per event: time, level, \
       subsystem, causal span ids, rendered message)."
    in
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)
  in
  let module Json = Peering_obs.Json in
  let module Span = Peering_obs.Span in
  let module Trace = Peering_sim.Trace in
  let module Obs_report = Peering_measure.Obs_report in
  let dump_events trace file =
    let oc = open_out file in
    let w = Json.Writer.to_channel ~indent:2 oc in
    Json.Writer.begin_arr w;
    List.iter
      (fun (e : Trace.event) ->
        Json.Writer.value w
          (Json.Obj
             [ ("time", Json.Float e.Trace.time);
               ( "level",
                 Json.String (Peering_obs.Event.level_to_string e.Trace.level)
               );
               ("subsystem", Json.String e.Trace.subsystem);
               ( "trace",
                 match e.Trace.span with
                 | None -> Json.Null
                 | Some c -> Json.Int c.Span.trace );
               ( "span",
                 match e.Trace.span with
                 | None -> Json.Null
                 | Some c -> Json.Int c.Span.span );
               ("message", Json.String (Trace.message e))
             ]))
      (Trace.events trace);
    Json.Writer.end_arr w;
    Json.Writer.close w;
    close_out oc
  in
  let run seed domains json events_file =
    let trace, _prefix = Scenario.run ~seed ~domains () in
    Option.iter (dump_events trace) events_file;
    if json then
      let doc =
        Json.Obj
          [ ("schema", Json.String "peering-stats/1");
            ("seed", Json.Int seed);
            ( "drops",
              Json.Obj
                [ ( "trace_buffer",
                    Json.Int
                      (Peering_obs.Metrics.counter_value "sim.trace.dropped")
                  );
                  ( "flight_recorder",
                    Json.Int
                      (Peering_obs.Metrics.counter_value "obs.flight.dropped")
                  )
                ] );
            ("metrics", Obs_report.to_json ());
            ( "trace",
              Json.Obj
                (List.map
                   (fun (subsystem, n) -> (subsystem, Json.Int n))
                   (Trace.count_by_subsystem trace)) )
          ]
      in
      print_endline (Json.to_string ~indent:2 doc)
    else begin
      Printf.printf "trace events by subsystem (%d total, %d dropped):\n"
        (Trace.count trace) (Trace.dropped trace);
      List.iter
        (fun (subsystem, n) -> Printf.printf "  %-24s %d\n" subsystem n)
        (Trace.count_by_subsystem trace);
      Printf.printf
        "capacity drops: trace-buffer %d, flight-recorder %d\n"
        (Peering_obs.Metrics.counter_value "sim.trace.dropped")
        (Peering_obs.Metrics.counter_value "obs.flight.dropped");
      print_newline ();
      print_string (Obs_report.render ~include_volatile:true ())
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an instrumented scenario (experiment lifecycle + a wire BGP \
          session) and print every metric the testbed recorded")
    Term.(const run $ seed_arg $ domains_arg $ json_arg $ events_arg)

let trace_cmd =
  let json_arg =
    let doc =
      "Emit the causal tree as a JSON document (byte-identical across \
       identically seeded runs)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let module Json = Peering_obs.Json in
  let module Span = Peering_obs.Span in
  let module Sink = Peering_obs.Sink in
  let module Trace = Peering_sim.Trace in
  let run seed json =
    let trace, prefix = Scenario.run ~record_spans:true ~seed ~domains:None () in
    let spans = Sink.flight_spans () in
    let by_id = Hashtbl.create 64 in
    let child_tbl = Hashtbl.create 64 in
    List.iter
      (fun (sp : Span.completed) ->
        Hashtbl.replace by_id sp.Span.ctx.Span.span sp;
        match sp.Span.ctx.Span.parent with
        | None -> ()
        | Some p ->
          Hashtbl.replace child_tbl p
            (sp :: Option.value (Hashtbl.find_opt child_tbl p) ~default:[]))
      spans;
    (* Span ids are minted sequentially, so sorting children by id
       recovers causal order deterministically. *)
    let children sp =
      List.sort
        (fun (a : Span.completed) (b : Span.completed) ->
          compare a.Span.ctx.Span.span b.Span.ctx.Span.span)
        (Option.value
           (Hashtbl.find_opt child_tbl sp.Span.ctx.Span.span)
           ~default:[])
    in
    let ev_tbl = Hashtbl.create 64 in
    List.iter
      (fun (e : Trace.event) ->
        match e.Trace.span with
        | None -> ()
        | Some c ->
          Hashtbl.replace ev_tbl c.Span.span
            (e :: Option.value (Hashtbl.find_opt ev_tbl c.Span.span) ~default:[]))
      (Trace.events trace);
    let events_of sp =
      List.rev
        (Option.value (Hashtbl.find_opt ev_tbl sp.Span.ctx.Span.span)
           ~default:[])
    in
    let root =
      match
        List.find_opt
          (fun (sp : Span.completed) ->
            sp.Span.name = "experiment.announce"
            && List.mem_assoc "prefix" sp.Span.attrs
            && List.assoc "prefix" sp.Span.attrs = Prefix.to_string prefix)
          spans
      with
      | Some r -> r
      | None ->
        prerr_endline "trace: no span recorded for the scenario announcement";
        exit 1
    in
    (* Critical path: the chain from the root to the descendant whose
       span ends latest (ties go to the earliest-minted span). *)
    let rec latest_leaf best sp =
      let best =
        if sp.Span.ended > best.Span.ended then sp else best
      in
      List.fold_left latest_leaf best (children sp)
    in
    let tip = latest_leaf root root in
    let rec path_to sp acc =
      let acc = sp :: acc in
      match sp.Span.ctx.Span.parent with
      | None -> acc
      | Some p -> (
        match Hashtbl.find_opt by_id p with
        | Some parent -> path_to parent acc
        | None -> acc)
    in
    let critical = path_to tip [] in
    let tree_size =
      let rec count sp = 1 + List.fold_left (fun n c -> n + count c) 0 (children sp) in
      count root
    in
    if json then begin
      let attrs_json attrs =
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs)
      in
      let event_json (e : Trace.event) =
        Json.Obj
          [ ("time", Json.Float e.Trace.time);
            ( "level",
              Json.String (Peering_obs.Event.level_to_string e.Trace.level) );
            ("subsystem", Json.String e.Trace.subsystem);
            ("message", Json.String (Trace.message e))
          ]
      in
      let rec span_json (sp : Span.completed) =
        Json.Obj
          [ ("name", Json.String sp.Span.name);
            ("span", Json.Int sp.Span.ctx.Span.span);
            ("start", Json.Float sp.Span.started);
            ("end", Json.Float sp.Span.ended);
            ("attrs", attrs_json sp.Span.attrs);
            ("events", Json.List (List.map event_json (events_of sp)));
            ("children", Json.List (List.map span_json (children sp)))
          ]
      in
      let doc =
        Json.Obj
          [ ("schema", Json.String "peering-trace/1");
            ("seed", Json.Int seed);
            ("prefix", Json.String (Prefix.to_string prefix));
            ("spans_recorded", Json.Int (List.length spans));
            ("spans_dropped", Json.Int (Sink.flight_dropped ()));
            ("tree_spans", Json.Int tree_size);
            ("tree", span_json root);
            ( "critical_path",
              Json.List
                (List.map
                   (fun (sp : Span.completed) ->
                     Json.Obj
                       [ ("name", Json.String sp.Span.name);
                         ("span", Json.Int sp.Span.ctx.Span.span);
                         ("start", Json.Float sp.Span.started);
                         ("end", Json.Float sp.Span.ended)
                       ])
                   critical) )
          ]
      in
      print_endline (Json.to_string ~indent:2 doc)
    end
    else begin
      Printf.printf "causal trace for announcement of %s (seed %d)\n"
        (Prefix.to_string prefix) seed;
      Printf.printf "%d spans in this tree (%d recorded, %d dropped)\n\n"
        tree_size (List.length spans) (Sink.flight_dropped ());
      let attrs_str attrs =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "  %s=%s" k v) attrs)
      in
      let rec print_span indent (sp : Span.completed) =
        Printf.printf "%s%s  [%.3f, %.3f]%s\n" indent sp.Span.name
          sp.Span.started sp.Span.ended
          (attrs_str sp.Span.attrs);
        List.iter
          (fun (e : Trace.event) ->
            Printf.printf "%s  * [%.3f] %s\n" indent e.Trace.time
              (Trace.message e))
          (events_of sp);
        List.iter (print_span (indent ^ "    ")) (children sp)
      in
      print_span "" root;
      Printf.printf "\ncritical path (%d spans, ends t=%.3f):\n"
        (List.length critical) tip.Span.ended;
      Printf.printf "  %s\n"
        (String.concat " -> "
           (List.map (fun (sp : Span.completed) -> sp.Span.name) critical))
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the seeded end-to-end scenario with causal span collection \
          on and render the announcement's span tree (safety verdict, mux \
          export, wire UPDATEs, route-server fan-out, tunnel forward) plus \
          its critical path")
    Term.(const run $ seed_arg $ json_arg)

let chaos_cmd =
  let json_arg =
    let doc = "Emit the chaos report as a JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let list_arg =
    let doc = "List available scenarios and campaign drills, then exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let scenario_arg =
    let doc =
      "Run a single scenario (micro drill) or campaign drill by name; see \
       --list."
    in
    Arg.(
      value & opt (some string) None & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let campaign_arg =
    let doc =
      "Run the testbed-scale compound campaign (correlated faults, recovery \
       SLOs, blast-radius accounting) instead of the micro scenarios."
    in
    Arg.(value & flag & info [ "campaign" ] ~doc)
  in
  let module Metrics = Peering_obs.Metrics in
  let module Json = Peering_obs.Json in
  let module Chaos = Peering_fault.Chaos in
  let module Campaign = Peering_fault.Campaign in
  let print_micro ~seed outcomes json =
    if json then
      print_endline
        (Json.to_string ~indent:2 (Chaos.to_json ~seed outcomes))
    else begin
      Printf.printf "%-10s %-16s %-12s %10s %6s  %s\n" "scenario" "class"
        "reconverged" "recovery_s" "lost" "detail";
      List.iter
        (fun (o : Chaos.outcome) ->
          Printf.printf "%-10s %-16s %-12b %10.2f %6d  %s\n" o.Chaos.scenario
            o.Chaos.fault_class o.Chaos.reconverged o.Chaos.recovery_s
            o.Chaos.routes_lost o.Chaos.detail)
        outcomes;
      let stuck =
        List.filter (fun (o : Chaos.outcome) -> not o.Chaos.reconverged) outcomes
      in
      let lost =
        List.fold_left
          (fun acc (o : Chaos.outcome) -> acc + o.Chaos.routes_lost)
          0 outcomes
      in
      Printf.printf
        "\n%d/%d scenarios reconverged; %d route%s lost overall\n"
        (List.length outcomes - List.length stuck)
        (List.length outcomes) lost
        (if lost = 1 then "" else "s");
      if stuck <> [] then exit 1
    end
  in
  let print_campaign (report : Campaign.report) json =
    if json then
      print_endline (Json.to_string ~indent:2 (Campaign.to_json report))
    else begin
      Printf.printf "%-12s %-12s %-12s %10s %6s  %s\n" "drill" "class"
        "reconverged" "recovery_s" "lost" "detail";
      List.iter
        (fun (o : Campaign.outcome) ->
          Printf.printf "%-12s %-12s %-12b %10.2f %6d  %s\n" o.Campaign.drill
            o.Campaign.slo_class o.Campaign.reconverged o.Campaign.recovery_s
            o.Campaign.routes_lost o.Campaign.detail;
          if o.Campaign.tenant_reaches <> [] then begin
            let restored =
              List.for_all
                (fun (_, base, final) -> final = base)
                o.Campaign.tenant_reaches
            in
            Printf.printf "%14s tenants: %d scheduled, reach restored: %b\n"
              "" (List.length o.Campaign.tenant_reaches) restored
          end;
          let b = o.Campaign.blast in
          Printf.printf "%14s blast: sites [%s]; %d trace spans; %s\n" ""
            (String.concat ", " b.Campaign.impacted_sites)
            b.Campaign.trace_spans
            (String.concat "; "
               (List.map
                  (fun (d : Campaign.reach_dip) ->
                    Printf.sprintf "%s dipped %d->%d for %.1fs"
                      d.Campaign.dip_prefix d.Campaign.baseline_reach
                      d.Campaign.min_reach
                      (d.Campaign.dip_until -. d.Campaign.dip_from))
                  b.Campaign.reach_dips)))
        report.Campaign.outcomes;
      if report.Campaign.slos <> [] then begin
        Printf.printf "\n%-12s %10s %10s %8s  %s\n" "slo class" "p99_s"
          "budget_s" "samples" "met";
        List.iter
          (fun (v : Campaign.slo_verdict) ->
            Printf.printf "%-12s %10.2f %10.2f %8d  %b\n"
              v.Campaign.verdict_class v.Campaign.p99_s v.Campaign.budget_s
              v.Campaign.samples v.Campaign.met)
          report.Campaign.slos
      end;
      if report.Campaign.sweep <> [] then begin
        Printf.printf "\n%-10s %-10s %-8s %8s %14s  %s\n" "half_life"
          "suppress" "reuse" "flaps" "suppressed_s" "released";
        List.iter
          (fun (r : Campaign.sweep_row) ->
            Printf.printf "%-10.0f %-10.0f %-8.0f %8d %14.1f  %b\n"
              r.Campaign.half_life r.Campaign.suppress_threshold
              r.Campaign.reuse_threshold r.Campaign.flaps_to_suppression
              r.Campaign.suppressed_s r.Campaign.released)
          report.Campaign.sweep
      end;
      Printf.printf "\nzero routes lost: %b; campaign passed: %b\n"
        report.Campaign.zero_routes_lost report.Campaign.passed;
      if not report.Campaign.passed then exit 1
    end
  in
  let run seed json list scenario campaign =
    if list then begin
      Printf.printf "micro scenarios (chaos [--scenario NAME]):\n";
      List.iter (Printf.printf "  %s\n") Chaos.scenarios;
      Printf.printf "campaign drills (chaos --campaign [--scenario NAME]):\n";
      List.iter (Printf.printf "  %s\n") Campaign.drills
    end
    else begin
      (* Reset the global registry so two same-seed invocations emit
         byte-identical documents regardless of process history. *)
      Metrics.reset ();
      match scenario with
      | Some name when List.mem name Campaign.drills ->
        print_campaign (Campaign.run ~seed ~drills:[ name ] ()) json
      | Some name when List.mem name Chaos.scenarios ->
        (* Same index-derived seed as the scenario's run_all slot, so a
           single-scenario run replays the full suite's member. *)
        let idx = ref 0 in
        List.iteri (fun i s -> if s = name then idx := i) Chaos.scenarios;
        print_micro ~seed
          [ Chaos.run_one ~seed:(seed + (101 * !idx)) name ]
          json
      | Some name ->
        Printf.eprintf "unknown scenario %S; try --list\n" name;
        exit 2
      | None ->
        if campaign then print_campaign (Campaign.run ~seed ()) json
        else print_micro ~seed (Chaos.run_all ~seed ()) json
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the fault-injection drills: micro scenarios (one per fault \
          class, each on a deterministic seeded two-router engine) or, with \
          --campaign, testbed-scale compound campaigns with correlated \
          faults, per-class recovery SLOs and blast-radius accounting")
    Term.(const run $ seed_arg $ json_arg $ list_arg $ scenario_arg
          $ campaign_arg)

let sched_cmd =
  let json_arg =
    let doc = "Emit the schedule as a peering-sched/1 JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let tenants_arg =
    let doc = "Number of tenant proposals to submit." in
    Arg.(value & opt int 16 & info [ "tenants" ] ~docv:"N" ~doc)
  in
  let module Metrics = Peering_obs.Metrics in
  let module Json = Peering_obs.Json in
  let run seed json n_tenants =
    (* Reset the global registry so two same-seed invocations emit
       byte-identical documents regardless of process history. *)
    Metrics.reset ();
    let params = { Testbed.default_params with Testbed.seed } in
    let t = Testbed.build ~params () in
    let rng = Rng.create (seed + 7919) in
    let sched =
      Scheduler.create ~vet:Peering_check.Admission.vet ~quota:4
        ~extra_supply:
          [ Prefix.of_string_exn "184.164.192.0/19";
            Prefix.of_string_exn "184.164.128.0/18"
          ]
        t
    in
    let site_names = List.map Testbed.site_name (Testbed.sites t) in
    let tenant_sites = Hashtbl.create 16 in
    let verdicts =
      List.init n_tenants (fun i ->
          let tenant = Printf.sprintf "tenant-%02d" i in
          let sites =
            if Rng.bernoulli rng 0.5 then []
            else [ List.nth site_names (Rng.int rng (List.length site_names)) ]
          in
          Hashtbl.replace tenant_sites tenant sites;
          let poison_targets =
            (* a few tenants probe the admission checks: poisoning a
               live tenant's origin must be rejected *)
            if i mod 5 <> 4 then []
            else
              match Scheduler.tenants sched with
              | prior :: _ -> (
                match Scheduler.client sched prior with
                | Some c -> (Client.experiment c).Experiment.private_asns
                | None -> [])
              | [] -> []
          in
          let p =
            Scheduler.proposal ~n_prefixes:(1 + Rng.int rng 2)
              ~may_poison:(poison_targets <> [])
              ~poison_targets ~sites tenant
          in
          (tenant, Scheduler.admit sched p))
    in
    (* every admitted tenant announces its lease; a few churn once to
       exercise the fair-share batcher *)
    List.iter
      (fun tenant ->
        List.iter
          (fun p -> ignore (Scheduler.request_announce sched ~tenant p))
          (Scheduler.leased_prefixes sched tenant))
      (Scheduler.tenants sched);
    (* churn a single site only: a full-fanout withdraw charges one
       dampening flap per connected mux, and the safety filter would
       (correctly) suppress the immediate re-announcement *)
    List.iteri
      (fun i tenant ->
        if i mod 3 = 0 then begin
          match Scheduler.leased_prefixes sched tenant with
          | p :: _ ->
            let site =
              match Hashtbl.find_opt tenant_sites tenant with
              | Some (s :: _) -> s
              | Some [] | None -> List.hd site_names
            in
            ignore (Scheduler.request_withdraw sched ~tenant ~sites:[ site ] p);
            ignore
              (Scheduler.request_announce sched ~tenant ~sites:[ site ] p)
          | [] -> ()
        end)
      (Scheduler.tenants sched);
    ignore (Scheduler.pump sched);
    let violations = Scheduler.isolation_violations sched in
    if json then
      print_endline (Json.to_string ~indent:2 (Scheduler.to_json sched))
    else begin
      Printf.printf "%-12s %-10s %8s  %s\n" "tenant" "verdict" "reach"
        "leases";
      List.iter
        (fun (tenant, verdict) ->
          match verdict with
          | Scheduler.Admitted _ when Scheduler.is_running sched tenant ->
            let leases = Scheduler.leased_prefixes sched tenant in
            let reach =
              match leases with
              | p :: _ -> Testbed.reach_count t p
              | [] -> 0
            in
            Printf.printf "%-12s %-10s %8d  %s\n" tenant "admitted" reach
              (String.concat " " (List.map Prefix.to_string leases))
          | Scheduler.Admitted _ ->
            Printf.printf "%-12s %-10s %8s  -\n" tenant "expired" "-"
          | Scheduler.Rejected issues ->
            Printf.printf "%-12s %-10s %8s  %s\n" tenant "rejected" "-"
              (String.concat ", "
                 (List.map (fun i -> i.Scheduler.issue_code) issues)))
        verdicts;
      Printf.printf
        "\n%d/%d admitted; %d rounds, %d ops applied; isolation violations: \
         %d\n"
        (List.length (Scheduler.tenants sched))
        n_tenants (Scheduler.rounds_run sched) (Scheduler.ops_applied sched)
        violations
    end;
    if violations > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:
         "Run the multi-tenant experiment scheduler on the default testbed: \
          admission-controlled proposals, prefix leases from the pool, \
          fair-share update batching and the isolation oracle. Exits 1 if \
          any isolation violation is detected.")
    Term.(const run $ seed_arg $ json_arg $ tenants_arg)

let monitor_cmd =
  let json_arg =
    let doc =
      "Emit the health report as a JSON document (byte-identical across \
       identically seeded runs)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let module Metrics = Peering_obs.Metrics in
  let module Json = Peering_obs.Json in
  let module Window = Peering_obs.Window in
  let module Monitor = Peering_measure.Monitor in
  let module Collector = Peering_measure.Collector in
  let module Campaign = Peering_fault.Campaign in
  (* A deterministic scenario that exercises the whole telemetry
     plane: every mux streams BMP to one station; routes are fed, one
     mux crashes and recovers, and each detector sees exactly one
     incident (a MOAS, an out-of-cone leak, a flap storm, a
     reachability dip from the crash). *)
  let run seed json =
    Metrics.reset ();
    let params = { Testbed.default_params with Testbed.seed } in
    let t = Testbed.build ~params () in
    let engine = Testbed.engine t in
    let collector = Collector.create () in
    let mon = Monitor.create ~collector () in
    List.iter
      (fun site ->
        let srv = Testbed.site_server site in
        Server.set_bmp_sink srv
          (Some (Monitor.attach mon ~mux:(Server.name srv))))
      (Testbed.sites t);
    let fed =
      List.fold_left
        (fun acc site ->
          acc
          + Testbed.feed_peer_routes t ~site:(Testbed.site_name site)
              ~max_per_peer:20 ())
        0 (Testbed.sites t)
    in
    Engine.run_for engine 1.0;
    (* Arm the detectors, then stage one incident per kind. *)
    let site1 = List.hd (Testbed.sites t) in
    let mux1 = Testbed.site_name site1 in
    let srv1 = Testbed.site_server site1 in
    let p1, p2 =
      match Testbed.peers_at t mux1 with
      | a :: b :: _ -> (a, b)
      | _ -> failwith "monitor: site has fewer than two peers"
    in
    let moas_pfx = Prefix.of_string_exn "203.0.113.0/24" in
    let leak_pfx = Prefix.of_string_exn "198.51.100.0/24" in
    let flap_pfx = Prefix.of_string_exn "192.0.2.0/24" in
    let dip_pfx = Prefix.of_string_exn "100.66.0.0/24" in
    Monitor.watch_moas mon moas_pfx ~origin:(Asn.of_int 65010);
    Monitor.allow_export mon ~mux:mux1 ~peer:p1 (fun pfx ->
        Prefix.compare pfx leak_pfx <> 0);
    Monitor.watch_flaps mon ~window_s:60.0 ~limit:6 flap_pfx;
    Monitor.watch_reach mon dip_pfx ~floor:2;
    (* MOAS: the legitimate origin, then a second origin. *)
    Server.learn_route srv1 ~peer:p1 ~path:[ p1; Asn.of_int 65010 ] moas_pfx;
    Engine.run_for engine 0.5;
    Server.learn_route srv1 ~peer:p2 ~path:[ p2; Asn.of_int 65666 ] moas_pfx;
    (* Leak: p1 exports a prefix outside its registered cone. *)
    Server.learn_route srv1 ~peer:p1 ~path:[ p1; Asn.of_int 65020 ] leak_pfx;
    (* Flap churn: four announce/withdraw cycles inside the window. *)
    for _ = 1 to 4 do
      Engine.run_for engine 0.5;
      Server.learn_route srv1 ~peer:p2 ~path:[ p2; Asn.of_int 65030 ] flap_pfx;
      Engine.run_for engine 0.5;
      Server.withdraw_learned srv1 ~peer:p2 flap_pfx
    done;
    (* Reachability: two tables hold the prefix (arming the floor),
       then the mux crashes and both vanish at once. *)
    Server.learn_route srv1 ~peer:p1 ~path:[ p1; Asn.of_int 65040 ] dip_pfx;
    Server.learn_route srv1 ~peer:p2 ~path:[ p2; Asn.of_int 65040 ] dip_pfx;
    Engine.run_for engine 1.0;
    Server.crash srv1;
    Engine.run_for engine 5.0;
    Server.restart srv1;
    ignore (Testbed.feed_peer_routes t ~site:mux1 ~max_per_peer:20 ());
    Engine.run_for engine 1.0;
    (* Stats Reports for the reported-vs-reconstructed cross-check. *)
    List.iter
      (fun site -> Server.emit_bmp_stats (Testbed.site_server site))
      (Testbed.sites t);
    (* Reconstruction check: live RIB digest vs the station's. *)
    let mux_rows =
      List.map
        (fun site ->
          let srv = Testbed.site_server site in
          let name = Server.name srv in
          let live = Server.rib_digest srv in
          let rebuilt = Monitor.rib_digest mon ~mux:name in
          let stats_ok =
            List.for_all
              (fun (asn, bindings) ->
                match
                  Monitor.reported_routes mon ~mux:name
                    ~peer:(Asn.of_int asn)
                with
                | Some n -> n = List.length bindings
                | None -> false)
              (Monitor.adj_rib_dump mon ~mux:name)
          in
          ( name,
            Monitor.mux_up mon ~mux:name,
            Monitor.route_count mon ~mux:name,
            stats_ok,
            live = rebuilt ))
        (Testbed.sites t)
    in
    (* Windowed health: ingest rate over the last minute, SLO verdicts
       for mux recovery (chaos campaign budget) and feed cadence. *)
    let series = Monitor.series mon in
    let rate = Window.Series.rate ~horizon_s:60.0 series in
    let downtime_samples =
      List.concat_map
        (fun (r : Metrics.row) ->
          if r.Metrics.name = "core.server.downtime_s" then
            match r.Metrics.value with
            | Metrics.Histogram_v { samples; _ } -> samples
            | _ -> []
          else [])
        (Metrics.snapshot ~include_volatile:true ())
    in
    let recovery_budget =
      match
        List.find_opt
          (fun s -> s.Campaign.slo_class = "compound")
          Campaign.default_slos
      with
      | Some s -> s.Campaign.p99_budget_s
      | None -> 90.0
    in
    let gaps =
      let rec go acc = function
        | (t1, _) :: ((t2, _) :: _ as rest) -> go ((t2 -. t1) :: acc) rest
        | _ -> List.rev acc
      in
      go [] (Window.Series.to_list series)
    in
    let slos =
      [ Window.Slo.evaluate ~name:"mux_recovery" ~budget_s:recovery_budget
          (Window.Quantiles.of_list downtime_samples);
        Window.Slo.evaluate ~name:"feed_gap" ~budget_s:5.0
          (Window.Quantiles.of_list gaps)
      ]
    in
    let alerts = Monitor.alerts mon in
    if json then begin
      let doc =
        Json.Obj
          [ ("schema", Json.String "peering-monitor/1");
            ("seed", Json.Int seed);
            ( "ingest",
              Json.Obj
                [ ("messages", Json.Int (Monitor.messages mon));
                  ("bytes", Json.Int (Monitor.bytes_ingested mon));
                  ("parse_errors", Json.Int (Monitor.parse_errors mon));
                  ("routes_fed", Json.Int fed);
                  ("rate_per_s", Json.Float rate)
                ] );
            ( "muxes",
              Json.List
                (List.map
                   (fun (name, up, routes, stats_ok, digest_match) ->
                     Json.Obj
                       [ ("name", Json.String name);
                         ("up", Json.Bool up);
                         ("routes", Json.Int routes);
                         ("stats_ok", Json.Bool stats_ok);
                         ("digest_match", Json.Bool digest_match)
                       ])
                   mux_rows) );
            ( "alerts",
              Json.List
                (List.map
                   (fun (a : Monitor.alert) ->
                     Json.Obj
                       [ ("time", Json.Float a.Monitor.a_time);
                         ( "kind",
                           Json.String
                             (Peering_obs.Event.alert_kind_to_string
                                a.Monitor.a_kind) );
                         ("mux", Json.String a.Monitor.a_mux);
                         ( "prefix",
                           Json.String (Prefix.to_string a.Monitor.a_prefix)
                         );
                         ("detail", Json.String a.Monitor.a_detail)
                       ])
                   alerts) );
            ( "slos",
              Json.List
                (List.map
                   (fun (v : Window.Slo.verdict) ->
                     Json.Obj
                       [ ("name", Json.String v.Window.Slo.slo_name);
                         ("budget_s", Json.Float v.Window.Slo.budget_s);
                         ("p99_s", Json.Float v.Window.Slo.p99_s);
                         ("samples", Json.Int v.Window.Slo.samples);
                         ("burn", Json.Float v.Window.Slo.burn);
                         ("met", Json.Bool v.Window.Slo.met)
                       ])
                   slos) )
          ]
      in
      print_endline (Json.to_string ~indent:2 doc)
    end
    else begin
      Printf.printf
        "ingest: %d BMP messages (%d bytes) from %d muxes, %d parse \
         errors, %.2f msg/s over the last 60s\n"
        (Monitor.messages mon)
        (Monitor.bytes_ingested mon)
        (List.length (Monitor.muxes mon))
        (Monitor.parse_errors mon)
        rate;
      Printf.printf "\n%-16s %-5s %7s %9s  %s\n" "mux" "up" "routes"
        "stats-ok" "reconstruction";
      List.iter
        (fun (name, up, routes, stats_ok, digest_match) ->
          Printf.printf "%-16s %-5b %7d %9b  %s\n" name up routes stats_ok
            (if digest_match then "byte-identical" else "DIVERGED"))
        mux_rows;
      Printf.printf "\nalerts (%d):\n" (List.length alerts);
      List.iter
        (fun (a : Monitor.alert) ->
          Printf.printf "  t=%-8.2f %-16s %-14s %-18s %s\n" a.Monitor.a_time
            (Peering_obs.Event.alert_kind_to_string a.Monitor.a_kind)
            a.Monitor.a_mux
            (Prefix.to_string a.Monitor.a_prefix)
            a.Monitor.a_detail)
        alerts;
      Printf.printf "\n%-14s %10s %10s %8s %8s  %s\n" "slo" "p99_s"
        "budget_s" "samples" "burn" "met";
      List.iter
        (fun (v : Window.Slo.verdict) ->
          Printf.printf "%-14s %10.3f %10.3f %8d %8.3f  %b\n"
            v.Window.Slo.slo_name v.Window.Slo.p99_s v.Window.Slo.budget_s
            v.Window.Slo.samples v.Window.Slo.burn v.Window.Slo.met)
        slos
    end;
    if List.exists (fun (_, _, _, _, m) -> not m) mux_rows then exit 1
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run the live telemetry plane on a seeded testbed: every mux \
          exports BMP (RFC 7854) to one monitoring station, which rebuilds \
          the Adj-RIBs-In byte-identically, runs the anomaly detectors \
          (MOAS, out-of-cone leak, flap churn, reachability dip) and \
          reports windowed health with SLO burn rates. Exits 1 if any \
          reconstruction diverges.")
    Term.(const run $ seed_arg $ json_arg)

let portal_cmd =
  let run seed =
    let params = { Testbed.default_params with Testbed.seed } in
    let t = Testbed.build ~params () in
    let portal = Portal.create t in
    (match
       Portal.register portal ~username:"demo" ~email:"demo@example.edu"
         ~affiliation:"Example University"
     with
    | Ok () -> print_endline "account demo: approved"
    | Error e -> Printf.printf "account demo: %s\n" e);
    (match
       Portal.submit portal ~username:"demo" ~id:"cli-portal"
         ~description:
           "demonstration proposal exercising the provisioning pipeline"
         ()
     with
    | Ok () -> ()
    | Error e -> failwith e);
    List.iter
      (fun (id, outcome) ->
        match outcome with
        | Ok _ -> Printf.printf "proposal %s: approved by the board\n" id
        | Error e -> Printf.printf "proposal %s: %s\n" id e)
      (Portal.run_board portal);
    match Portal.provision portal ~experiment_id:"cli-portal" with
    | Ok kit ->
      Printf.printf "\n--- generated client configuration ---\n%s"
        kit.Portal.client_config;
      Printf.printf "--- tunnel endpoints ---\n";
      List.iter
        (fun (site, addr) ->
          Printf.printf "  %-14s %s\n" site (Ipv4.to_string addr))
        kit.Portal.tunnel_endpoints
    | Error e -> Printf.printf "provisioning failed: %s\n" e
  in
  Cmd.v
    (Cmd.info "portal"
       ~doc:"Walk the account/vetting/provisioning pipeline end to end")
    Term.(const run $ seed_arg)

(* ------------------------------------------------------------------ *)
(* MRT ingest: dump seeded worlds as RouteViews-style files, inspect
   them, and replay them into a mux-style table. *)

module Mrt = Peering_measure.Mrt

let write_file_bytes path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let read_file_bytes path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let mrt_file_arg =
  let doc = "MRT file to read." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let mrt_dump_cmd =
  let out_arg =
    let doc = "Output file for the dump." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let peers_arg =
    let doc = "Collector peers in the index table." in
    Arg.(value & opt int 8 & info [ "peers" ] ~docv:"N" ~doc)
  in
  let updates_arg =
    let doc = "Append a BGP4MP update stream after the RIB records." in
    Arg.(value & flag & info [ "updates" ] ~doc)
  in
  let limit_arg =
    let doc = "Cap the update stream at N prefixes." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~docv:"N" ~doc)
  in
  let run seed scale out peers updates limit =
    let w = Gen.generate (params_of ~seed ~scale) in
    let records = Mrt.table_of_world ~seed ~peers w in
    let records =
      if updates then records @ Mrt.updates_of_world ~seed ?limit w
      else records
    in
    let bytes = Mrt.encode records in
    write_file_bytes out bytes;
    (match Mrt.summarize bytes with
    | Ok s -> Format.printf "%a@." Mrt.pp_summary s
    | Error e -> failwith (Mrt.error_to_string e));
    Format.printf "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Generate an MRT (RFC 6396) TABLE_DUMP_V2 RIB dump of a seeded \
          world, optionally followed by a BGP4MP update stream. Same seed, \
          same bytes.")
    Term.(
      const run $ seed_arg $ scale_arg $ out_arg $ peers_arg $ updates_arg
      $ limit_arg)

let mrt_info_cmd =
  let run file =
    match Mrt.summarize (read_file_bytes file) with
    | Ok s -> Format.printf "%a@." Mrt.pp_summary s
    | Error e ->
      Format.eprintf "error: %s@." (Mrt.error_to_string e);
      exit 1
  in
  Cmd.v
    (Cmd.info "info"
       ~doc:"Decode an MRT file and print record/peer/entry counts")
    Term.(const run $ mrt_file_arg)

let mrt_replay_cmd =
  let run file =
    let bytes = read_file_bytes file in
    match Mrt.load bytes with
    | Error e ->
      Format.eprintf "error: %s@." (Mrt.error_to_string e);
      exit 1
    | Ok l ->
      let words = Obj.reachable_words (Obj.repr l.Mrt.rib) in
      Format.printf "records            %d@." l.Mrt.records;
      Format.printf "peers              %d@." (Array.length l.Mrt.peers);
      Format.printf "v4 routes loaded   %d@." l.Mrt.routes4;
      Format.printf "v6 entries parsed  %d@." l.Mrt.entries6;
      Format.printf "updates applied    %d@." l.Mrt.updates;
      Format.printf "table prefixes     %d@."
        (Peering_bgp.Rib.prefix_count l.Mrt.rib);
      Format.printf "table routes       %d@."
        (Peering_bgp.Rib.route_count l.Mrt.rib);
      Format.printf "table heap         %.1f MB@."
        (float_of_int (words * Sys.word_size / 8) /. 1_048_576.)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay an MRT file into a mux-style table: RIB entries install \
          as per-peer Adj-RIB-In routes, BGP4MP UPDATEs apply as \
          announces/withdraws")
    Term.(const run $ mrt_file_arg)

let mrt_cmd =
  Cmd.group
    (Cmd.info "mrt"
       ~doc:
         "MRT (RFC 6396) ingest: dump seeded worlds, inspect and replay \
          RouteViews-style files")
    [ mrt_dump_cmd; mrt_info_cmd; mrt_replay_cmd ]

let () =
  let info =
    Cmd.info "peering" ~version:"1.0.0"
      ~doc:"PEERING testbed reproduction toolkit"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ world_cmd; amsix_cmd; table1_cmd; demo_cmd; emulate_cmd;
            config_cmd; check_cmd; verify_cmd; portal_cmd; stats_cmd;
            trace_cmd; chaos_cmd; sched_cmd; monitor_cmd; mrt_cmd ]))
