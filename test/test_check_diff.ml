(* Differential harness for the static leak analysis: on seeded
   generated worlds with injected Gao-Rexford-violating edges, the
   abstract verdict of [Leak_analysis.analyze] must over-approximate
   the concrete oracle ([Propagation.propagate_general] driven by the
   same world's dynamic hooks) — dynamically reachable ASes must be
   inside the static [reachable] set and dynamically polluted ASes
   inside the static [tainted] set, on every seed, every scenario:
   ZERO false negatives. False positives are allowed (the abstraction
   ignores loop suppression and best-path selection); the harness
   measures and reports that rate rather than bounding it.

   Run alone with `dune build @check-diff`; widen the sweep with
   CHECK_DIFF_SEEDS=<n> (default 10). *)

open Peering_net
open Peering_topo
open Peering_check

let n_seeds =
  match Sys.getenv_opt "CHECK_DIFF_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 10)
  | None -> 10

let sizes =
  [ ( "~100as",
      { Gen.default_params with
        Gen.n_tier1 = 3;
        n_large_transit = 5;
        n_small_transit = 12;
        n_stub = 75;
        n_content = 5;
        target_prefixes = 150
      } );
    ( "~300as",
      { Gen.default_params with
        Gen.n_tier1 = 4;
        n_large_transit = 10;
        n_small_transit = 36;
        n_stub = 230;
        n_content = 10;
        target_prefixes = 300
      } )
  ]

(* Mutable tallies for the false-positive report. *)
let fp_taint = ref 0
let total_taint = ref 0
let fp_reach = ref 0
let total_reach = ref 0
let runs = ref 0

let set_of_list l = List.fold_left (fun s a -> Asn.Set.add a s) Asn.Set.empty l

(* One differential run: dynamic oracle vs static fixpoint for one
   announcement on one prepared world. Fails the test on any false
   negative; accumulates false-positive tallies. *)
let differential name w ann =
  incr runs;
  let g = World.graph w in
  let dyn =
    Propagation.propagate_general ~leak:(World.dynamic_leak w)
      ~export_filter:(World.dynamic_export w)
      ~import_filter:(World.dynamic_import w) g [ ann ]
  in
  let dyn_reach = set_of_list (Propagation.reachable dyn) in
  let dyn_poll = set_of_list (Propagation.polluted g dyn) in
  let static = Leak_analysis.analyze w ann in
  let missing_reach = Asn.Set.diff dyn_reach static.Leak_analysis.reachable in
  let missing_poll = Asn.Set.diff dyn_poll static.Leak_analysis.tainted in
  if not (Asn.Set.is_empty missing_reach) then
    Alcotest.failf "%s: FALSE NEGATIVE (reach): dynamic-only ASes %s" name
      (String.concat ", "
         (List.map Asn.to_string (Asn.Set.elements missing_reach)));
  if not (Asn.Set.is_empty missing_poll) then
    Alcotest.failf "%s: FALSE NEGATIVE (taint): dynamic-only ASes %s" name
      (String.concat ", "
         (List.map Asn.to_string (Asn.Set.elements missing_poll)));
  total_taint := !total_taint + Asn.Set.cardinal static.Leak_analysis.tainted;
  fp_taint :=
    !fp_taint
    + Asn.Set.cardinal (Asn.Set.diff static.Leak_analysis.tainted dyn_poll);
  total_reach :=
    !total_reach + Asn.Set.cardinal static.Leak_analysis.reachable;
  fp_reach :=
    !fp_reach
    + Asn.Set.cardinal (Asn.Set.diff static.Leak_analysis.reachable dyn_reach)

(* A stub (with a prefix) that is NOT the leaker and NOT inside the
   leaker's customer cone, so the leaked route genuinely crosses the
   violating edge. *)
let pick_origin world leaker =
  let g = world.Gen.graph in
  let cone = Customer_cone.cone g leaker in
  List.find_opt
    (fun a ->
      (not (Asn.equal a leaker))
      && (not (Asn.Set.mem a cone))
      && As_graph.prefixes_of g a <> [])
    world.Gen.stubs

(* A stub with at least two providers makes the most interesting
   leaker: it learns provider/peer routes and re-exports them up. *)
let pick_leaker world =
  let g = world.Gen.graph in
  List.find_opt
    (fun a -> List.length (As_graph.providers g a) >= 2)
    world.Gen.stubs

let leak_everything w leaker =
  let g = World.graph w in
  List.iter
    (fun (v, rel) ->
      match rel with
      | Relationship.Provider | Relationship.Peer ->
        World.inject_leak w ~from:leaker ~to_:v
      | Relationship.Customer -> ())
    (As_graph.neighbors g leaker)

let announcement_for g origin =
  match As_graph.prefixes_of g origin with
  | p :: _ -> Propagation.announce origin p
  | [] -> Alcotest.fail "origin without prefixes"

let scenario_single seed world =
  match pick_leaker world with
  | None -> ()
  | Some leaker -> (
    match pick_origin world leaker with
    | None -> ()
    | Some origin ->
      let w = World.of_graph world.Gen.graph in
      leak_everything w leaker;
      differential
        (Printf.sprintf "single-leak seed=%d" seed)
        w
        (announcement_for world.Gen.graph origin))

let scenario_multi seed world =
  let g = world.Gen.graph in
  let leakers =
    List.filteri
      (fun i _ -> i < 3)
      (List.filter
         (fun a -> List.length (As_graph.providers g a) >= 2)
         world.Gen.stubs)
  in
  match leakers with
  | [] -> ()
  | first :: _ -> (
    match pick_origin world first with
    | None -> ()
    | Some origin ->
      let w = World.of_graph g in
      List.iter (leak_everything w) leakers;
      differential
        (Printf.sprintf "multi-leak seed=%d" seed)
        w (announcement_for g origin))

(* Tier-1s protect each other with Peerlock: static blocking may only
   use must-information, which is exactly what this scenario probes —
   a sound analysis still must not report fewer ASes than the dynamic
   run reaches with the same Peerlock filters active. *)
let scenario_peerlock seed world =
  match pick_leaker world with
  | None -> ()
  | Some leaker -> (
    match pick_origin world leaker with
    | None -> ()
    | Some origin ->
      let w = World.of_graph world.Gen.graph in
      leak_everything w leaker;
      List.iter
        (fun t1 ->
          List.iter
            (fun other ->
              if not (Asn.equal t1 other) then
                World.add_peerlock w ~at:t1 ~protect:other)
            world.Gen.tier1)
        world.Gen.tier1;
      differential
        (Printf.sprintf "peerlock seed=%d" seed)
        w
        (announcement_for world.Gen.graph origin))

let scenario_peerlock_lite seed world =
  match pick_leaker world with
  | None -> ()
  | Some leaker -> (
    match pick_origin world leaker with
    | None -> ()
    | Some origin ->
      let w = World.of_graph world.Gen.graph in
      leak_everything w leaker;
      List.iter (World.add_peerlock_lite w) world.Gen.large_transit;
      differential
        (Printf.sprintf "peerlock-lite seed=%d" seed)
        w
        (announcement_for world.Gen.graph origin))

(* Windowed leaks: the same injected edges, but half the leaker's
   violating edges only admit the origin's exact prefix and the other
   half a window that does NOT cover it — the dynamic export filter
   and the static [admits] must agree on both. *)
let scenario_windowed seed world =
  match pick_leaker world with
  | None -> ()
  | Some leaker -> (
    match pick_origin world leaker with
    | None -> ()
    | Some origin ->
      let g = world.Gen.graph in
      let p =
        match As_graph.prefixes_of g origin with
        | p :: _ -> p
        | [] -> Alcotest.fail "origin without prefixes"
      in
      let w = World.of_graph g in
      leak_everything w leaker;
      let flip = ref false in
      List.iter
        (fun (v, rel) ->
          match rel with
          | Relationship.Provider | Relationship.Peer ->
            flip := not !flip;
            let window =
              if !flip then (p, Prefix.len p, Prefix.len p)
              else (Prefix.of_string_exn "203.0.113.0/24", 24, 32)
            in
            World.add_export_window w ~from:leaker ~to_:v window
          | Relationship.Customer -> ())
        (As_graph.neighbors g leaker);
      differential
        (Printf.sprintf "windowed seed=%d" seed)
        w (Propagation.announce origin p))

(* With no overrides at all, the general engine must agree exactly
   with the sequential three-phase oracle, and the static analysis
   must report nothing tainted. *)
let scenario_no_leak seed world =
  let g = world.Gen.graph in
  match
    List.find_opt (fun a -> As_graph.prefixes_of g a <> []) world.Gen.stubs
  with
  | None -> ()
  | Some origin ->
    let ann = announcement_for g origin in
    let general = Propagation.propagate_general g [ ann ] in
    let seq = Propagation.propagate_seq g [ ann ] in
    Alcotest.(check bool)
      (Printf.sprintf "general = seq on leak-free world (seed %d)" seed)
      true
      (Propagation.table general = Propagation.table seq);
    Alcotest.(check (list int))
      (Printf.sprintf "nothing polluted without leaks (seed %d)" seed)
      []
      (List.map Asn.to_int (Propagation.polluted g general));
    let w = World.of_graph g in
    let static = Leak_analysis.analyze w ann in
    Alcotest.(check int)
      (Printf.sprintf "nothing tainted without leaks (seed %d)" seed)
      0
      (Asn.Set.cardinal static.Leak_analysis.tainted)

let scenarios =
  [ ("no-leak", scenario_no_leak);
    ("single-leak", scenario_single);
    ("multi-leak", scenario_multi);
    ("peerlock", scenario_peerlock);
    ("peerlock-lite", scenario_peerlock_lite);
    ("windowed", scenario_windowed)
  ]

let sweep size_name params (scenario_name, scenario) () =
  for seed = 1 to n_seeds do
    let world = Gen.generate { params with Gen.seed } in
    scenario seed world
  done;
  ignore size_name;
  ignore scenario_name

let () =
  Printf.printf
    "check-diff: %d seeds per scenario per size (CHECK_DIFF_SEEDS to widen)\n"
    n_seeds;
  let result =
    try
      Alcotest.run ~and_exit:false "check_diff"
        (List.map
           (fun (size_name, params) ->
             ( size_name,
               List.map
                 (fun ((scenario_name, _) as sc) ->
                   Alcotest.test_case scenario_name `Quick
                     (sweep size_name params sc))
                 scenarios ))
           sizes);
      true
    with _ -> false
  in
  if !total_taint > 0 then
    Printf.printf
      "check-diff: %d differential runs; taint false-positive rate %d/%d \
       (%.1f%%), reach false-positive rate %d/%d (%.1f%%), zero false \
       negatives\n"
      !runs !fp_taint !total_taint
      (100.0 *. float_of_int !fp_taint /. float_of_int !total_taint)
      !fp_reach !total_reach
      (100.0 *. float_of_int !fp_reach /. float_of_int !total_reach);
  exit (if result then 0 else 1)
