open Peering_net
open Peering_bgp
open Peering_check
module Config = Peering_router.Config
module Relationship = Peering_topo.Relationship
module Engine = Peering_sim.Engine

let check = Alcotest.check
let tc = Alcotest.test_case
let pfx = Prefix.of_string_exn

let codes_of diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags
let fired code diags = List.mem code (codes_of diags)

let check_text text = Check.check_config (Config.parse_exn text)

let assert_fires name code text =
  check Alcotest.bool name true (fired code (check_text text))

let assert_quiet name code text =
  check Alcotest.bool name false (fired code (check_text text))

(* A configuration none of the passes should complain about. *)
let clean_config =
  {|
router bgp 64600
 bgp router-id 100.65.0.2
 network 184.164.224.0/24
 neighbor 100.65.0.1 remote-as 47065
 neighbor 100.65.0.1 route-map IMPORT in
 neighbor 100.65.0.1 route-map EXPORT out
ip prefix-list OURS seq 5 permit 184.164.224.0/19 le 24
route-map EXPORT permit 10
 match ip address prefix-list OURS
 set as-path prepend 64600 2
route-map EXPORT deny 20
route-map IMPORT permit 10
|}

(* ------------------------------------------------------------------ *)
(* Diagnostic & registry plumbing *)

let test_diagnostic_render () =
  let d =
    Diagnostic.error ~file:"r.conf" ~line:3 ~hint:"fix it" ~code:"X-TEST"
      "something broke"
  in
  check Alcotest.string "rendering" "r.conf:3: error: [X-TEST] something broke\n  hint: fix it"
    (Diagnostic.to_string d);
  check Alcotest.bool "has_errors" true (Diagnostic.has_errors [ d ]);
  check Alcotest.bool "warning is not an error" false
    (Diagnostic.has_errors [ Diagnostic.warning ~code:"Y" "meh" ]);
  let sorted =
    Diagnostic.sort
      [ Diagnostic.warning ~file:"b" ~line:1 ~code:"B" "late";
        Diagnostic.error ~file:"a" ~line:9 ~code:"A" "early"
      ]
  in
  check Alcotest.(list string) "sorted by file" [ "A"; "B" ] (codes_of sorted)

let test_registry_pluggable () =
  let reg : int Registry.t = Registry.create () in
  Registry.register reg ~name:"evens" ~about:"flag even inputs" (fun n ->
      if n mod 2 = 0 then [ Diagnostic.warning ~code:"EVEN" "even" ] else []);
  Registry.register reg ~name:"bigs" ~about:"flag big inputs" (fun n ->
      if n > 10 then [ Diagnostic.error ~code:"BIG" "big" ] else []);
  check Alcotest.(list string) "both passes run" [ "EVEN"; "BIG" ]
    (codes_of (Registry.run reg 12));
  check Alcotest.(list string) "only" [ "BIG" ]
    (codes_of (Registry.run ~only:[ "bigs" ] reg 12));
  check Alcotest.(list string) "exclude" [ "EVEN" ]
    (codes_of (Registry.run ~exclude:[ "bigs" ] reg 12));
  (* re-registering a name replaces the pass in place *)
  Registry.register reg ~name:"evens" ~about:"flag odds instead" (fun n ->
      if n mod 2 = 1 then [ Diagnostic.warning ~code:"ODD" "odd" ] else []);
  check Alcotest.(list string) "override keeps order" [ "ODD" ]
    (codes_of (Registry.run reg 9));
  check Alcotest.int "no duplicate registration" 2
    (List.length (Registry.passes reg))

let test_codes_catalog () =
  let codes = List.map (fun (c, _, _) -> c) Check.codes in
  check Alcotest.bool "at least 10 distinct codes" true
    (List.length (List.sort_uniq String.compare codes) >= 10);
  check Alcotest.int "no duplicates" (List.length codes)
    (List.length (List.sort_uniq String.compare codes))

(* ------------------------------------------------------------------ *)
(* Config passes *)

let test_clean_config_quiet () =
  check Alcotest.(list string) "no diagnostics" []
    (codes_of (check_text clean_config))

let test_clean_config_instantiates () =
  (* The analyzer's contract: a config with no error-severity
     diagnostics instantiates and applies its policies without error. *)
  let c = Config.parse_exn clean_config in
  check Alcotest.bool "no errors" false
    (Diagnostic.has_errors (Check.check_config c));
  let e = Engine.create () in
  match Config.instantiate e c with
  | Error err -> Alcotest.fail err
  | Ok r ->
    (* wire the configured neighbor before attaching its policies *)
    let mux =
      Peering_router.Router.create e ~asn:(Asn.of_int 47065)
        ~router_id:(Ipv4.of_string_exn "100.65.0.1") ()
    in
    ignore
      (Peering_router.Router.connect e
         (r, Ipv4.of_string_exn "100.65.0.2")
         (mux, Ipv4.of_string_exn "100.65.0.1"));
    (match Config.apply_neighbor_policies c r with
    | Ok () -> ()
    | Error err -> Alcotest.fail err)

let test_no_bgp () =
  assert_fires "prefix-list-only file" "RTR-NOBGP"
    "ip prefix-list X seq 5 permit 10.0.0.0/8";
  assert_quiet "clean" "RTR-NOBGP" clean_config

let test_rtmap_undef () =
  assert_fires "missing map" "RTMAP-UNDEF"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 route-map NOPE out";
  assert_quiet "clean" "RTMAP-UNDEF" clean_config

let test_rtmap_unused () =
  assert_fires "dangling map" "RTMAP-UNUSED"
    "router bgp 1\nroute-map ORPHAN permit 10";
  assert_quiet "clean" "RTMAP-UNUSED" clean_config

let test_rtmap_shadow () =
  assert_fires "catch-all shadows" "RTMAP-SHADOW"
    {|router bgp 1
 neighbor 10.0.0.1 remote-as 2
 neighbor 10.0.0.1 route-map M out
route-map M permit 10
route-map M permit 20
 match community 1:100
|};
  (* a guarded entry followed by a catch-all deny is the idiomatic
     allow-list shape and must not be flagged *)
  assert_quiet "guard then deny-all" "RTMAP-SHADOW" clean_config

let test_pfxlist_undef () =
  assert_fires "ghost prefix-list" "PFXLIST-UNDEF"
    {|router bgp 1
 neighbor 10.0.0.1 remote-as 2
 neighbor 10.0.0.1 route-map M out
route-map M permit 10
 match ip address prefix-list GHOST
|};
  assert_quiet "clean" "PFXLIST-UNDEF" clean_config

let test_pfxlist_unused () =
  assert_fires "dangling prefix-list" "PFXLIST-UNUSED"
    "router bgp 1\nip prefix-list ORPHAN seq 5 permit 10.0.0.0/8";
  assert_quiet "clean" "PFXLIST-UNUSED" clean_config

let pl_config rules =
  Printf.sprintf
    {|router bgp 1
 neighbor 10.0.0.1 remote-as 2
 neighbor 10.0.0.1 route-map M out
route-map M permit 10
 match ip address prefix-list PL
%s|}
    rules

let test_pfxlist_shadow () =
  assert_fires "broad rule shadows specific" "PFXLIST-SHADOW"
    (pl_config
       "ip prefix-list PL seq 5 permit 10.0.0.0/8 le 24\n\
        ip prefix-list PL seq 10 deny 10.1.0.0/16 le 20");
  assert_quiet "specific before broad" "PFXLIST-SHADOW"
    (pl_config
       "ip prefix-list PL seq 5 deny 10.1.0.0/16 le 20\n\
        ip prefix-list PL seq 10 permit 10.0.0.0/8 le 24")

let test_pfxlist_bounds () =
  assert_fires "ge greater than le" "PFXLIST-BOUNDS"
    (pl_config "ip prefix-list PL seq 5 permit 10.0.0.0/8 ge 24 le 16");
  assert_fires "le below prefix length" "PFXLIST-BOUNDS"
    (pl_config "ip prefix-list PL seq 5 permit 10.0.0.0/16 le 8");
  (* 'ge' without 'le' opens the window up to /32 (Quagga default) and
     is satisfiable *)
  assert_quiet "ge alone" "PFXLIST-BOUNDS"
    (pl_config "ip prefix-list PL seq 5 permit 10.0.0.0/8 ge 24")

let test_net_dup () =
  assert_fires "duplicate network" "NET-DUP"
    "router bgp 1\n network 10.0.0.0/16\n network 10.0.0.0/16";
  assert_quiet "distinct networks" "NET-DUP"
    "router bgp 1\n network 10.0.0.0/16\n network 10.1.0.0/16\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 route-map M out\nroute-map M permit 10"

let test_nbr_nopolicy () =
  assert_fires "bare neighbor" "NBR-NOPOLICY"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2";
  assert_quiet "clean" "NBR-NOPOLICY" clean_config

let test_timer_degen () =
  assert_fires "hold below keepalive" "TIMER-DEGEN"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 timers 30 10";
  assert_fires "zero connect-retry" "TIMER-DEGEN"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 timers connect 0";
  (* hold time 0 disables the hold timer (RFC 4271) and is legitimate *)
  assert_quiet "hold disabled" "TIMER-DEGEN"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 timers 30 0";
  assert_quiet "sane timers" "TIMER-DEGEN"
    "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 timers 30 90\n neighbor 10.0.0.1 timers connect 5";
  assert_quiet "clean" "TIMER-DEGEN" clean_config

let mutual_a =
  {|router bgp 64600
 bgp router-id 100.65.0.2
 neighbor 100.65.0.1 remote-as 47065
 neighbor 100.65.0.1 route-map M in
 neighbor 100.65.0.1 route-map M out
route-map M permit 10
|}

let mutual_b =
  {|router bgp 47065
 bgp router-id 100.65.0.1
 neighbor 100.65.0.2 remote-as 64600
 neighbor 100.65.0.2 route-map M in
 neighbor 100.65.0.2 route-map M out
route-map M permit 10
|}

let test_session_mismatch () =
  let run texts =
    Check.check_configs
      (List.mapi
         (fun i t -> (Some (Printf.sprintf "r%d.conf" i), Config.parse_exn t))
         texts)
  in
  check Alcotest.bool "mutual pair is consistent" false
    (fired "SESSION-MISMATCH" (run [ mutual_a; mutual_b ]));
  (* half-open: B knows nothing about A *)
  let b_deaf =
    "router bgp 47065\n bgp router-id 100.65.0.1\n neighbor 10.9.9.9 \
     remote-as 65000\n neighbor 10.9.9.9 route-map M in\n neighbor 10.9.9.9 \
     route-map M out\nroute-map M permit 10"
  in
  check Alcotest.bool "half-open session" true
    (fired "SESSION-MISMATCH" (run [ mutual_a; b_deaf ]));
  (* address disagreement: A points the session at an address that is
     not B's router-id *)
  let a_wrong_addr =
    "router bgp 64600\n bgp router-id 100.65.0.2\n neighbor 100.65.9.9 \
     remote-as 47065\n neighbor 100.65.9.9 route-map M in\n neighbor \
     100.65.9.9 route-map M out\nroute-map M permit 10"
  in
  check Alcotest.bool "address mismatch" true
    (fired "SESSION-MISMATCH" (run [ a_wrong_addr; mutual_b ]))

(* ------------------------------------------------------------------ *)
(* Policy passes *)

let entry seq decision conds =
  { Policy.seq; decision; conds; actions = [] }

let test_policy_unsat () =
  let c = Policy.Has_community (Community.make 1 100) in
  let contradictory =
    Policy.of_entries
      [ entry 10 Policy.Permit [ Policy.All [ c; Policy.Not c ] ];
        entry 20 Policy.Permit []
      ]
  in
  check Alcotest.bool "All [c; Not c]" true
    (fired "POLICY-UNSAT" (Check.check_policy contradictory));
  let disjoint =
    Policy.of_entries
      [ entry 10 Policy.Permit
          [ Policy.Prefix_in [ (pfx "10.0.0.0/8", 8, 24) ];
            Policy.Prefix_in [ (pfx "192.168.0.0/16", 16, 24) ]
          ];
        entry 20 Policy.Permit []
      ]
  in
  check Alcotest.bool "disjoint prefix ranges" true
    (fired "POLICY-UNSAT" (Check.check_policy disjoint));
  let empty_window =
    Policy.of_entries
      [ entry 10 Policy.Permit [ Policy.Prefix_in [ (pfx "10.0.0.0/8", 24, 16) ] ];
        entry 20 Policy.Permit []
      ]
  in
  check Alcotest.bool "empty length window" true
    (fired "POLICY-UNSAT" (Check.check_policy empty_window));
  let fine =
    Policy.of_entries
      [ entry 10 Policy.Permit
          [ Policy.Prefix_in [ (pfx "10.0.0.0/8", 8, 24) ];
            Policy.Prefix_in [ (pfx "10.1.0.0/16", 16, 24) ]
          ];
        entry 20 Policy.Deny []
      ]
  in
  check Alcotest.bool "overlapping ranges are fine" false
    (fired "POLICY-UNSAT" (Check.check_policy fine))

let test_policy_dead () =
  let dead =
    Policy.of_entries
      [ entry 10 Policy.Permit [];
        entry 20 Policy.Deny [ Policy.Has_private_asn ]
      ]
  in
  check Alcotest.bool "entry after catch-all" true
    (fired "POLICY-DEAD" (Check.check_policy dead));
  let alive =
    Policy.of_entries
      [ entry 10 Policy.Deny [ Policy.Has_private_asn ];
        entry 20 Policy.Permit []
      ]
  in
  check Alcotest.bool "guard then catch-all" false
    (fired "POLICY-DEAD" (Check.check_policy alive))

let test_policy_leak () =
  let leak rel = Check.check_policy ~relationship:rel Policy.permit_all in
  check Alcotest.bool "permit-all to provider" true
    (fired "POLICY-LEAK" (leak Relationship.Provider));
  check Alcotest.bool "permit-all to peer" true
    (fired "POLICY-LEAK" (leak Relationship.Peer));
  check Alcotest.bool "permit-all to customer is fine" false
    (fired "POLICY-LEAK" (leak Relationship.Customer));
  let guarded =
    Policy.of_entries
      [ entry 10 Policy.Permit
          [ Policy.Prefix_in [ (pfx "184.164.224.0/19", 19, 24) ] ];
        entry 20 Policy.Deny []
      ]
  in
  check Alcotest.bool "guarded export to provider is fine" false
    (fired "POLICY-LEAK" (Check.check_policy ~relationship:Relationship.Provider guarded));
  (* leak severity is error *)
  check Alcotest.bool "leak is an error" true
    (Diagnostic.has_errors (leak Relationship.Provider))

(* ------------------------------------------------------------------ *)
(* Experiment spec passes *)

let spec_text =
  {|# a well-behaved experiment
experiment anycast-demo
prefix 184.164.224.0/24
asn 64512
announce 184.164.224.0/24 at 0 path 64512
withdraw 184.164.224.0/24 at 3600
announce 184.164.224.0/24 at 7200
|}

let test_spec_parse () =
  let s = Spec.parse_exn spec_text in
  check Alcotest.string "id" "anycast-demo" s.Spec.id;
  check Alcotest.(list string) "allocation" [ "184.164.224.0/24" ]
    (List.map Prefix.to_string s.Spec.prefixes);
  check Alcotest.(list int) "asns" [ 64512 ]
    (List.map Asn.to_int s.Spec.asns);
  check Alcotest.bool "no poison vetting" false s.Spec.may_poison;
  check Alcotest.int "events" 3 (List.length s.Spec.events);
  (match s.Spec.events with
  | { Spec.ev_time; ev_line; ev_kind = Spec.Announce [ a ]; _ } :: _ ->
    check (Alcotest.float 0.0) "time" 0.0 ev_time;
    check Alcotest.int "line" 5 ev_line;
    check Alcotest.int "path" 64512 (Asn.to_int a)
  | _ -> Alcotest.fail "first event shape");
  let bad t = match Spec.parse t with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "missing experiment stmt" true (bad "prefix 10.0.0.0/8");
  check Alcotest.bool "bad time" true
    (bad "experiment x\nannounce 10.0.0.0/8 at soon");
  check Alcotest.bool "missing at" true
    (bad "experiment x\nannounce 10.0.0.0/8");
  check Alcotest.bool "unknown statement" true (bad "experiment x\nfrobnicate");
  check Alcotest.bool "clean spec is quiet" true
    (Check.check_spec s = [])

let test_exp_hijack () =
  let hijack =
    Spec.parse_exn
      "experiment evil\nprefix 184.164.224.0/24\nannounce 8.8.8.0/24 at 0"
  in
  check Alcotest.bool "foreign prefix" true
    (fired "EXP-HIJACK" (Check.check_spec hijack));
  let sub =
    Spec.parse_exn
      "experiment fine\nprefix 184.164.224.0/24\nannounce 184.164.224.128/25 at 0"
  in
  check Alcotest.bool "subprefix of allocation" false
    (fired "EXP-HIJACK" (Check.check_spec sub))

let test_exp_poison () =
  let poison =
    Spec.parse_exn
      "experiment sneaky\nprefix 184.164.224.0/24\n\
       announce 184.164.224.0/24 at 0 path 3356"
  in
  check Alcotest.bool "public ASN unvetted" true
    (fired "EXP-POISON" (Check.check_spec poison));
  let vetted =
    Spec.parse_exn
      "experiment lifeguard\nprefix 184.164.224.0/24\nmay-poison\n\
       announce 184.164.224.0/24 at 0 path 3356"
  in
  check Alcotest.bool "vetted poisoning" false
    (fired "EXP-POISON" (Check.check_spec vetted));
  let own =
    Spec.parse_exn
      "experiment own\nprefix 184.164.224.0/24\nasn 61574\n\
       announce 184.164.224.0/24 at 0 path 61574 64512 47065"
  in
  check Alcotest.bool "own, private and mux ASNs allowed" false
    (fired "EXP-POISON" (Check.check_spec own))

let test_exp_dampen () =
  let flappy =
    Spec.parse_exn
      {|experiment flappy
prefix 184.164.224.0/24
announce 184.164.224.0/24 at 0
withdraw 184.164.224.0/24 at 1
announce 184.164.224.0/24 at 1.5
withdraw 184.164.224.0/24 at 2
announce 184.164.224.0/24 at 2.2
withdraw 184.164.224.0/24 at 2.5
announce 184.164.224.0/24 at 3
|}
  in
  let diags = Check.check_spec flappy in
  check Alcotest.bool "rapid flapping trips dampening" true
    (fired "EXP-DAMPEN" diags);
  check Alcotest.int "only the suppressed announcement is flagged" 1
    (List.length (List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.code = "EXP-DAMPEN") diags));
  let calm =
    Spec.parse_exn
      {|experiment calm
prefix 184.164.224.0/24
announce 184.164.224.0/24 at 0
withdraw 184.164.224.0/24 at 3600
announce 184.164.224.0/24 at 7200
withdraw 184.164.224.0/24 at 10800
|}
  in
  check Alcotest.bool "spaced beacon schedule is fine" false
    (fired "EXP-DAMPEN" (Check.check_spec calm))

(* ------------------------------------------------------------------ *)
(* Address-family threading in the policy condition algebra *)

let test_af_windows () =
  (* IPv4 clamps length windows at /32; IPv6 at /128. The hardcoded
     `min le 32` this replaces silently emptied v6-style windows. *)
  let t = (pfx "10.0.0.0/8", 8, 64) in
  check Alcotest.(pair int int) "v4 clamps to 32" (8, 32)
    (Policy_checks.triple_window t);
  check Alcotest.(pair int int) "v6 keeps 64" (8, 64)
    (Policy_checks.triple_window ~af:Policy_checks.V6 t);
  check Alcotest.int "max_prefix_len v4" 32
    (Policy_checks.max_prefix_len Policy_checks.V4);
  check Alcotest.int "max_prefix_len v6" 128
    (Policy_checks.max_prefix_len Policy_checks.V6)

let test_af_taut_unsat () =
  let any32 = Policy.Prefix_in [ (pfx "0.0.0.0/0", 0, 32) ] in
  let any128 = Policy.Prefix_in [ (pfx "0.0.0.0/0", 0, 128) ] in
  check Alcotest.bool "0/0 le 32 is taut under v4" true
    (Policy_checks.cond_taut any32);
  check Alcotest.bool "0/0 le 32 is NOT taut under v6" false
    (Policy_checks.cond_taut ~af:Policy_checks.V6 any32);
  check Alcotest.bool "0/0 le 128 is taut under v6" true
    (Policy_checks.cond_taut ~af:Policy_checks.V6 any128);
  (* a window beyond /32 is empty for v4 but satisfiable for v6 *)
  let deep = Policy.Prefix_in [ (pfx "10.0.0.0/8", 48, 64) ] in
  check Alcotest.bool "ge 48 unsat under v4" true
    (Policy_checks.cond_unsat deep);
  check Alcotest.bool "ge 48 satisfiable under v6" false
    (Policy_checks.cond_unsat ~af:Policy_checks.V6 deep);
  (* the af default keeps the old per-file behaviour *)
  let i =
    Policy_checks.input ~af:Policy_checks.V6
      (Policy.of_entries
         [ entry 10 Policy.Permit [ deep ]; entry 20 Policy.Permit [] ])
  in
  check Alcotest.bool "V6 input accepts a deep window" false
    (fired "POLICY-UNSAT" (Registry.run Check.policy_registry i))

(* ------------------------------------------------------------------ *)
(* World parsing and the semantic passes *)

module World = Peering_check.World

let leaky_world_text =
  {|as 10 tier1
as 20 small-transit
as 30 small-transit
as 40 stub
edge 20 provider 10
edge 30 provider 10
edge 20 peer 30
edge 40 provider 20
originate 30 198.51.100.0/24
originate 40 203.0.113.0/24
leak 20 10
|}

let test_world_parse () =
  let w = World.parse_exn leaky_world_text in
  let g = World.graph w in
  check Alcotest.int "ases" 4 (Peering_topo.As_graph.n_ases g);
  check Alcotest.int "edges" 4 (Peering_topo.As_graph.n_edges g);
  check Alcotest.int "prefixes" 2 (Peering_topo.As_graph.n_prefixes g);
  check Alcotest.bool "leak edge is Any_class" true
    ((World.export_at w (Asn.of_int 20) (Asn.of_int 10)).World.classes
    = World.Any_class);
  check Alcotest.bool "other edges default" true
    (World.export_at w (Asn.of_int 30) (Asn.of_int 10) = World.default_export);
  let bad t = match World.parse t with Error _ -> true | Ok _ -> false in
  check Alcotest.bool "undeclared AS in edge" true (bad "edge 1 peer 2");
  check Alcotest.bool "duplicate AS" true (bad "as 1\nas 1");
  check Alcotest.bool "duplicate edge" true
    (bad "as 1\nas 2\nedge 1 peer 2\nedge 2 peer 1");
  check Alcotest.bool "unknown kind" true (bad "as 1 mega-transit");
  check Alcotest.bool "leak needs an edge" true (bad "as 1\nas 2\nleak 1 2");
  check Alcotest.bool "unknown statement" true (bad "frobnicate")

let test_world_local_pref () =
  let w = World.parse_exn leaky_world_text in
  check Alcotest.(option int) "customer default" (Some 300)
    (World.local_pref w ~at:(Asn.of_int 10) ~from:(Asn.of_int 20));
  check Alcotest.(option int) "peer default" (Some 200)
    (World.local_pref w ~at:(Asn.of_int 20) ~from:(Asn.of_int 30));
  check Alcotest.(option int) "provider default" (Some 100)
    (World.local_pref w ~at:(Asn.of_int 20) ~from:(Asn.of_int 10));
  check Alcotest.(option int) "not adjacent" None
    (World.local_pref w ~at:(Asn.of_int 40) ~from:(Asn.of_int 10));
  World.set_local_pref w ~at:(Asn.of_int 20) ~from:(Asn.of_int 10) 350;
  check Alcotest.(option int) "override" (Some 350)
    (World.local_pref w ~at:(Asn.of_int 20) ~from:(Asn.of_int 10))

let test_abstract_of_policy () =
  let guarded =
    Policy.of_entries
      [ entry 10 Policy.Permit
          [ Policy.Prefix_in [ (pfx "184.164.224.0/19", 19, 24) ] ];
        entry 20 Policy.Deny []
      ]
  in
  (match World.abstract_of_policy guarded with
  | { World.classes = World.Any_class; prefixes = World.Windows [ w ] } ->
    check Alcotest.bool "window kept" true (w = (pfx "184.164.224.0/19", 19, 24))
  | _ -> Alcotest.fail "guarded policy should lower to one window");
  (match World.abstract_of_policy Policy.permit_all with
  | { World.classes = World.Any_class; prefixes = World.Any_prefix } -> ()
  | _ -> Alcotest.fail "permit-all lowers to Any_prefix");
  let deny_all = Policy.of_entries [ entry 10 Policy.Deny [] ] in
  match World.abstract_of_policy deny_all with
  | { World.prefixes = World.No_prefix; _ } -> ()
  | _ -> Alcotest.fail "deny-all lowers to No_prefix"

let test_leak_analysis () =
  let w = World.parse_exn leaky_world_text in
  let ann =
    Peering_topo.Propagation.announce (Asn.of_int 30) (pfx "198.51.100.0/24")
  in
  let v = Leak_analysis.analyze w ann in
  check Alcotest.(list int) "everyone may hold the route"
    [ 10; 20; 30; 40 ]
    (List.map Asn.to_int (Asn.Set.elements v.Leak_analysis.reachable));
  (* the leaked route crosses 20 -> 10 and then re-descends everywhere *)
  check Alcotest.(list int) "taint reaches the whole world"
    [ 10; 20; 30; 40 ]
    (List.map Asn.to_int (Asn.Set.elements v.Leak_analysis.tainted));
  check Alcotest.bool "fixpoint terminates with work done" true
    (v.Leak_analysis.iterations > 0);
  (* without the leak nothing is tainted *)
  let clean =
    World.parse_exn
      (String.concat "\n"
         (List.filter
            (fun l -> not (String.length l >= 4 && String.sub l 0 4 = "leak"))
            (String.split_on_char '\n' leaky_world_text)))
  in
  let v' = Leak_analysis.analyze clean ann in
  check Alcotest.int "no taint without leak" 0
    (Asn.Set.cardinal v'.Leak_analysis.tainted);
  check Alcotest.(list string) "LEAK codes fire on the leaky world"
    [ "LEAK-EDGE"; "LEAK-REACH" ]
    (List.sort_uniq String.compare (codes_of (Check.check_world w)));
  check Alcotest.(list string) "clean world is quiet" []
    (codes_of (Check.check_world clean))

let test_leak_peerlock () =
  (* Peerlock at the receiving provider: 10 protects 30, and the
     leaked path 30 -> 20 -> 10 always carries 30 (must-information),
     so the static analysis can soundly block the leak at 10. *)
  let w = World.parse_exn leaky_world_text in
  World.add_peerlock w ~at:(Asn.of_int 10) ~protect:(Asn.of_int 30);
  let ann =
    Peering_topo.Propagation.announce (Asn.of_int 30) (pfx "198.51.100.0/24")
  in
  let v = Leak_analysis.analyze w ann in
  check Alcotest.bool "peerlock blocks the taint at 10" false
    (Asn.Set.mem (Asn.of_int 10) v.Leak_analysis.tainted)

let test_stability () =
  let w = World.parse_exn leaky_world_text in
  check Alcotest.int "default prefs: no risky edges" 0
    (List.length (Stability.risky_edges w));
  (* one risky session: 20 imports its provider at customer level *)
  World.set_local_pref w ~at:(Asn.of_int 20) ~from:(Asn.of_int 10) 300;
  (match Stability.risky_edges w with
  | [ (v, u, rel, pref, floor) ] ->
    check Alcotest.int "risky at" 20 (Asn.to_int v);
    check Alcotest.int "risky from" 10 (Asn.to_int u);
    check Alcotest.bool "provider session" true (rel = Relationship.Provider);
    check Alcotest.(pair int int) "pref vs floor" (300, 300) (pref, floor)
  | l -> Alcotest.failf "expected one risky edge, got %d" (List.length l));
  check Alcotest.bool "STAB-PREF fires" true
    (fired "STAB-PREF" (Check.check_world w));
  check Alcotest.bool "no wheel from one edge" false
    (fired "STAB-WHEEL" (Check.check_world w));
  (* a peer triangle of customer-level imports is a dispute wheel *)
  let tri =
    World.parse_exn
      "as 1\nas 2\nas 3\nedge 1 peer 2\nedge 2 peer 3\nedge 3 peer 1\n\
       local-pref 1 2 300\nlocal-pref 2 3 300\nlocal-pref 3 1 300"
  in
  check Alcotest.bool "STAB-WHEEL fires on the triangle" true
    (fired "STAB-WHEEL" (Check.check_world tri));
  check Alcotest.int "three risky sessions" 3
    (List.length (Stability.risky_edges tri))

let test_graph_structure () =
  let split = World.parse_exn "as 1\nas 2\nas 3\nedge 1 peer 2" in
  check Alcotest.bool "partition fires" true
    (fired "GRAPH-PARTITION" (Check.check_world split));
  let cyc =
    World.parse_exn
      "as 1\nas 2\nas 3\nedge 1 provider 2\nedge 2 provider 3\nedge 3 provider 1"
  in
  check Alcotest.bool "relationship cycle fires" true
    (fired "GRAPH-RELCYCLE" (Check.check_world cyc));
  let moas =
    World.parse_exn
      "as 1\nas 2\nedge 1 peer 2\noriginate 1 10.0.0.0/8\noriginate 2 10.0.0.0/8"
  in
  check Alcotest.bool "MOAS fires" true
    (fired "GRAPH-MOAS" (Check.check_world moas))

let test_spec_conflicts () =
  let a =
    Spec.parse_exn
      "experiment a\nprefix 184.164.224.0/24\nasn 64512\nasn 64513\n\
       announce 184.164.224.0/24 at 0"
  in
  let b =
    Spec.parse_exn
      "experiment b\nprefix 184.164.224.128/25\nasn 64512\nmay-poison\n\
       announce 184.164.224.128/25 at 0 path 64513"
  in
  let diags = Check.check_specs [ (None, a); (None, b) ] in
  check Alcotest.bool "overlap" true (fired "XEXP-OVERLAP" diags);
  check Alcotest.bool "shared asn" true (fired "XEXP-ASN" diags);
  check Alcotest.bool "cross poison" true (fired "XEXP-POISON" diags);
  let c =
    Spec.parse_exn
      "experiment c\nprefix 184.164.230.0/24\nasn 64600\n\
       announce 184.164.230.0/24 at 0"
  in
  check Alcotest.(list string) "disjoint specs are quiet" []
    (codes_of (Check.check_specs [ (None, a); (None, c) ]))

(* ------------------------------------------------------------------ *)
(* Catalog integrity: the per-module code lists and the published
   catalog must stay in lockstep, and every catalog code must be
   demonstrated by a fixture under test/fixtures. *)

let module_codes =
  Peering_check.Config_checks.codes
  @ Policy_checks.codes
  @ Peering_check.Experiment_checks.codes
  @ Peering_check.Graph_checks.codes
  @ Leak_analysis.codes
  @ Stability.codes
  @ [ "PARSE" ]

let test_catalog_drift () =
  let catalog = List.map (fun (c, _, _) -> c) Check.codes in
  let sorted l = List.sort String.compare l in
  check Alcotest.int "no duplicate catalog entries"
    (List.length catalog)
    (List.length (List.sort_uniq String.compare catalog));
  check Alcotest.int "no duplicate module codes"
    (List.length module_codes)
    (List.length (List.sort_uniq String.compare module_codes));
  check Alcotest.(list string) "catalog = union of module code lists"
    (sorted module_codes) (sorted catalog)

let read_fixture file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let test_fixture_coverage () =
  (* cwd is test/ under `dune runtest`, the project root under
     `dune exec` — accept either *)
  let dir =
    if Sys.file_exists "fixtures/bad" then "fixtures/bad"
    else "test/fixtures/bad"
  in
  let files =
    Sys.readdir dir |> Array.to_list |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  let fired_codes = ref [] in
  let note diags =
    fired_codes := codes_of diags @ !fired_codes
  in
  let configs = ref [] and specs = ref [] in
  List.iter
    (fun file ->
      let text = read_fixture file in
      if Filename.check_suffix file ".exp" then
        match Spec.parse text with
        | Ok s -> specs := (Some file, s) :: !specs
        | Error _ -> fired_codes := "PARSE" :: !fired_codes
      else if Filename.check_suffix file ".world" then
        match World.parse text with
        | Ok w -> note (Check.check_world w)
        | Error _ -> fired_codes := "PARSE" :: !fired_codes
      else
        match Config.parse text with
        | Ok c ->
          configs := (Some file, c) :: !configs;
          (* compiled route-maps double as policy-pass fixtures,
             vetted as exports towards a provider *)
          List.iter
            (fun name ->
              match Config.compile_route_map c name with
              | Ok p ->
                note
                  (Check.check_policy ~name
                     ~relationship:Relationship.Provider p)
              | Error _ -> ())
            (Config.route_map_names c)
        | Error _ -> fired_codes := "PARSE" :: !fired_codes)
    files;
  note (Check.check_configs (List.rev !configs));
  note (Check.check_specs (List.rev !specs));
  let seen = List.sort_uniq String.compare !fired_codes in
  let missing =
    List.filter
      (fun (code, _, _) -> not (List.mem code seen))
      Check.codes
  in
  check Alcotest.(list string) "every catalog code has a fixture" []
    (List.map (fun (c, _, _) -> c) missing)

let test_check_experiment () =
  (* the programmatic path: vet an Experiment.t plus a schedule *)
  let exp =
    Peering_core.Experiment.make ~id:"prog" ~owner:"o"
      ~description:"a programmatic experiment used by the analyzer tests" ()
  in
  exp.Peering_core.Experiment.prefixes <- [ pfx "184.164.230.0/24" ];
  let ev time prefix kind =
    { Spec.ev_time = time; ev_line = 0; ev_prefix = prefix; ev_kind = kind }
  in
  let bad =
    Check.check_experiment exp [ ev 0.0 (pfx "8.8.8.0/24") (Spec.Announce []) ]
  in
  check Alcotest.bool "hijack caught programmatically" true
    (fired "EXP-HIJACK" bad);
  let good =
    Check.check_experiment exp
      [ ev 0.0 (pfx "184.164.230.0/24") (Spec.Announce []) ]
  in
  check Alcotest.(list string) "clean programmatic schedule" []
    (codes_of good)

let () =
  Alcotest.run "check"
    [ ( "plumbing",
        [ tc "diagnostic rendering" `Quick test_diagnostic_render;
          tc "registry pluggable" `Quick test_registry_pluggable;
          tc "codes catalog" `Quick test_codes_catalog
        ] );
      ( "config",
        [ tc "clean config quiet" `Quick test_clean_config_quiet;
          tc "clean config instantiates" `Quick test_clean_config_instantiates;
          tc "RTR-NOBGP" `Quick test_no_bgp;
          tc "RTMAP-UNDEF" `Quick test_rtmap_undef;
          tc "RTMAP-UNUSED" `Quick test_rtmap_unused;
          tc "RTMAP-SHADOW" `Quick test_rtmap_shadow;
          tc "PFXLIST-UNDEF" `Quick test_pfxlist_undef;
          tc "PFXLIST-UNUSED" `Quick test_pfxlist_unused;
          tc "PFXLIST-SHADOW" `Quick test_pfxlist_shadow;
          tc "PFXLIST-BOUNDS" `Quick test_pfxlist_bounds;
          tc "NET-DUP" `Quick test_net_dup;
          tc "NBR-NOPOLICY" `Quick test_nbr_nopolicy;
          tc "TIMER-DEGEN" `Quick test_timer_degen;
          tc "SESSION-MISMATCH" `Quick test_session_mismatch
        ] );
      ( "policy",
        [ tc "POLICY-UNSAT" `Quick test_policy_unsat;
          tc "POLICY-DEAD" `Quick test_policy_dead;
          tc "POLICY-LEAK" `Quick test_policy_leak
        ] );
      ( "experiment",
        [ tc "spec parse" `Quick test_spec_parse;
          tc "EXP-HIJACK" `Quick test_exp_hijack;
          tc "EXP-POISON" `Quick test_exp_poison;
          tc "EXP-DAMPEN" `Quick test_exp_dampen;
          tc "programmatic experiment" `Quick test_check_experiment
        ] );
      ( "address-family",
        [ tc "length windows clamp per family" `Quick test_af_windows;
          tc "taut/unsat respect the family" `Quick test_af_taut_unsat
        ] );
      ( "world",
        [ tc "parser" `Quick test_world_parse;
          tc "local-pref defaults" `Quick test_world_local_pref;
          tc "policy lowering" `Quick test_abstract_of_policy;
          tc "leak fixpoint" `Quick test_leak_analysis;
          tc "peerlock blocks taint" `Quick test_leak_peerlock;
          tc "stability" `Quick test_stability;
          tc "graph structure" `Quick test_graph_structure;
          tc "cross-spec conflicts" `Quick test_spec_conflicts
        ] );
      ( "catalog",
        [ tc "no drift vs module code lists" `Quick test_catalog_drift;
          tc "every code has a fixture" `Quick test_fixture_coverage
        ] )
    ]
