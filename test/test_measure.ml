open Peering_net
open Peering_measure
module Rng = Peering_sim.Rng
module Gen = Peering_topo.Gen

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Dns *)

let test_dns_basic () =
  let d = Dns.create () in
  Dns.add_a d "www.example.com" (ip "93.184.216.34");
  Dns.add_a d "www.example.com" (ip "93.184.216.35");
  Dns.add_a d "WWW.EXAMPLE.COM" (ip "93.184.216.34") (* duplicate, other case *);
  check Alcotest.int "two records" 2 (List.length (Dns.resolve d "www.example.com"));
  check Alcotest.(option string) "first" (Some "93.184.216.34")
    (Option.map Ipv4.to_string (Dns.resolve_one d "www.Example.Com"));
  check Alcotest.(list string) "unknown" []
    (List.map Ipv4.to_string (Dns.resolve d "nope.example"));
  check Alcotest.int "records" 2 (Dns.n_records d)

(* ------------------------------------------------------------------ *)
(* Webworkload *)

let world =
  lazy
    (Gen.generate
       { Gen.default_params with
         Gen.n_stub = 800;
         n_small_transit = 80;
         target_prefixes = 6000
       })

let workload =
  lazy
    (let rng = Rng.create 123 in
     Webworkload.generate
       ~params:
         { Webworkload.n_sites = 100;
           mean_resources = 50.0;
           n_resource_fqdns = 800;
           cdn_share = 0.45;
           site_cdn_share = 0.3
         }
       ~rng (Lazy.force world))

let test_workload_shape () =
  let wl = Lazy.force workload in
  check Alcotest.int "sites" 100 (List.length wl.Webworkload.sites);
  let total = Webworkload.total_resources wl in
  check Alcotest.bool "resources scale with mean" true
    (total > 2000 && total < 12_000);
  let fqdns = Webworkload.distinct_resource_fqdns wl in
  check Alcotest.bool "fqdns below pool size" true (List.length fqdns <= 800);
  check Alcotest.bool "fqdn reuse happens" true (List.length fqdns < total)

let test_workload_resolvable () =
  let wl = Lazy.force workload in
  (* every site and every resource FQDN resolves, and its address
     belongs to a prefix originated by its hosting AS *)
  let g = (Lazy.force world).Gen.graph in
  List.iter
    (fun (s : Webworkload.site) ->
      match Dns.resolve_one wl.Webworkload.dns s.Webworkload.fqdn with
      | None -> Alcotest.failf "site %s unresolvable" s.Webworkload.fqdn
      | Some a -> (
        match Webworkload.hosting_asn wl s.Webworkload.fqdn with
        | None -> Alcotest.fail "no hosting AS"
        | Some h ->
          let inside =
            List.exists
              (fun p -> Prefix.mem a p)
              (Peering_topo.As_graph.prefixes_of g h)
          in
          check Alcotest.bool "address inside hosting AS" true inside))
    wl.Webworkload.sites

let test_workload_cdn_concentration () =
  let wl = Lazy.force workload in
  let w = Lazy.force world in
  let content = Asn.Set.of_list w.Gen.content in
  let fqdns = Webworkload.distinct_resource_fqdns wl in
  let on_cdn =
    List.length
      (List.filter
         (fun f ->
           match Webworkload.hosting_asn wl f with
           | Some h -> Asn.Set.mem h content
           | None -> false)
         fqdns)
  in
  let frac = float_of_int on_cdn /. float_of_int (List.length fqdns) in
  check Alcotest.bool "cdn share near parameter" true
    (frac > 0.3 && frac < 0.6)

(* ------------------------------------------------------------------ *)
(* Collector *)

let test_collector () =
  let c = Collector.create () in
  let p = pfx "184.164.224.0/24" in
  Collector.record c ~time:1.0 ~peer:(asn 3356) ~prefix:p
    ~path:[ asn 3356; asn 47065 ] Collector.Announce;
  Collector.record c ~time:2.0 ~peer:(asn 3356) ~prefix:(pfx "10.0.0.0/8")
    ~path:[ asn 3356 ] Collector.Announce;
  Collector.record c ~time:3.0 ~peer:(asn 3356) ~prefix:p ~path:[]
    Collector.Withdraw;
  check Alcotest.int "entries" 3 (Collector.n_entries c);
  check Alcotest.int "per prefix" 2 (Collector.churn c p);
  check Alcotest.bool "withdrawn: no last path" true (Collector.last_path c p = None);
  Collector.record c ~time:4.0 ~peer:(asn 3356) ~prefix:p
    ~path:[ asn 3356; asn 47065 ] Collector.Announce;
  check Alcotest.(option (list int)) "last path" (Some [ 3356; 47065 ])
    (Option.map (List.map Asn.to_int) (Collector.last_path c p))

(* ------------------------------------------------------------------ *)
(* Reachability *)

let test_reachability_cones () =
  (* tiny world: provider 1 with customers 2,3; 3 has customer 4.
     Peering with 3 yields routes to 3's cone {3,4} only. *)
  let open Peering_topo in
  let g = As_graph.create () in
  List.iter (fun a -> As_graph.add_as g (asn a)) [ 1; 2; 3; 4 ];
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 2);
  As_graph.add_edge g (asn 1) Relationship.Customer (asn 3);
  As_graph.add_edge g (asn 3) Relationship.Customer (asn 4);
  As_graph.originate g (asn 2) (pfx "10.2.0.0/16");
  As_graph.originate g (asn 3) (pfx "10.3.0.0/16");
  As_graph.originate g (asn 4) (pfx "10.4.0.0/16");
  let world =
    { Gen.graph = g;
      tier1 = [ asn 1 ];
      large_transit = [];
      small_transit = [ asn 3 ];
      stubs = [ asn 2; asn 4 ];
      content = []
    }
  in
  let t = Reachability.peer_routes world ~peers:[ asn 3 ] in
  check Alcotest.int "cone prefixes" 2 (Reachability.n_prefixes t);
  check Alcotest.bool "covers customer" true
    (Reachability.covers_addr t (ip "10.4.1.1"));
  check Alcotest.bool "not sibling" false
    (Reachability.covers_addr t (ip "10.2.1.1"));
  check Alcotest.bool "covers prefix" true
    (Reachability.covers_prefix t (pfx "10.3.0.0/16"));
  check Alcotest.int "top-2 membership" 1
    (Reachability.peers_in_top world ~peers:[ asn 3; asn 4 ] 2);
  let per_peer = Reachability.routes_per_peer world ~peers:[ asn 3; asn 4 ] in
  check Alcotest.(list (pair int int)) "descending route counts"
    [ (3, 2); (4, 1) ]
    (List.map (fun (a, n) -> (Asn.to_int a, n)) per_peer)

let test_reachability_fraction () =
  let w = Lazy.force world in
  (* peering with every tier-1 covers (almost) the whole Internet *)
  let t = Reachability.peer_routes w ~peers:w.Gen.tier1 in
  let frac = Reachability.fraction_of_internet t w in
  check Alcotest.bool "tier1 cones cover most" true (frac > 0.9);
  (* peering with a handful of stubs covers almost nothing *)
  let stubs = List.filteri (fun i _ -> i < 5) w.Gen.stubs in
  let t2 = Reachability.peer_routes w ~peers:stubs in
  check Alcotest.bool "stub cones tiny" true
    (Reachability.fraction_of_internet t2 w < 0.02)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basics () =
  let l = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check Alcotest.(float 1e-9) "mean" 3.0 (Stats.mean l);
  check Alcotest.(float 1e-9) "median" 3.0 (Stats.median l);
  check Alcotest.(float 1e-9) "p0" 1.0 (Stats.percentile 0.0 l);
  check Alcotest.(float 1e-9) "p100" 5.0 (Stats.percentile 100.0 l);
  check Alcotest.(float 1e-9) "p25 interpolates" 2.0 (Stats.percentile 25.0 l);
  check Alcotest.(float 1e-6) "stddev" (sqrt 2.0) (Stats.stddev l);
  check Alcotest.(float 1e-9) "mean empty" 0.0 (Stats.mean []);
  check Alcotest.bool "summary mentions n" true
    (String.length (Stats.summary l) > 0)

let test_stats_histogram () =
  let l = [ 0.0; 0.1; 0.2; 5.0; 9.9; 10.0 ] in
  let h = Stats.histogram ~bins:2 l in
  check Alcotest.int "two bins" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "all samples binned" 6 total;
  match h with
  | [ (_, _, c1); (_, _, c2) ] ->
    (* bins are [0,5) and [5,10]: 5.0 lands in the upper bin *)
    check Alcotest.int "low bin" 3 c1;
    check Alcotest.int "high bin" 3 c2
  | _ -> Alcotest.fail "bin shape"

let test_stats_cdf () =
  let pts = Stats.cdf_points [ 3.0; 1.0; 2.0; 2.0 ] in
  check
    Alcotest.(list (pair (float 1e-9) (float 1e-9)))
    "cdf"
    [ (1.0, 0.25); (2.0, 0.75); (3.0, 1.0) ]
    pts

let test_stats_edges () =
  (* single sample: every percentile is that sample *)
  check Alcotest.(float 1e-9) "single p0" 7.0 (Stats.percentile 0.0 [ 7.0 ]);
  check Alcotest.(float 1e-9) "single p50" 7.0 (Stats.percentile 50.0 [ 7.0 ]);
  check Alcotest.(float 1e-9) "single p100" 7.0
    (Stats.percentile 100.0 [ 7.0 ]);
  (match Stats.percentile 50.0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample accepted");
  (match Stats.percentile 100.5 [ 1.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p > 100 accepted");
  (match Stats.percentile (-1.0) [ 1.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p < 0 accepted");
  (* constant samples: the degenerate (zero-width) range still bins
     every sample and keeps the moments sane *)
  let h = Stats.histogram ~bins:3 [ 4.0; 4.0; 4.0 ] in
  check Alcotest.int "constant samples all binned" 3
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 h);
  check Alcotest.(float 1e-9) "constant median" 4.0
    (Stats.median [ 4.0; 4.0; 4.0 ]);
  check Alcotest.(float 1e-9) "constant stddev" 0.0
    (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check Alcotest.(float 1e-9) "constant p90" 4.0
    (Stats.percentile 90.0 [ 4.0; 4.0; 4.0 ])

(* ------------------------------------------------------------------ *)
(* Mrt *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

(* The checked-in fixture is `mrt dump --scale tiny --seed 7 --updates`;
   these counts pin both the generator and the decoder. A failure here
   means the wire format or the seeded generators changed shape —
   regenerate the fixture (see EXPERIMENTS.md) only if that was
   intentional. *)
let test_mrt_golden_fixture () =
  let dump = read_file "fixtures/table.mrt" in
  check Alcotest.int "bytes" 35351 (Bytes.length dump);
  match Mrt.summarize dump with
  | Error e -> Alcotest.failf "summarize: %s" (Mrt.error_to_string e)
  | Ok s ->
    check Alcotest.int "records" 364 s.Mrt.n_records;
    check Alcotest.int "peer index tables" 1 s.Mrt.n_peer_index;
    check Alcotest.int "peers" 8 s.Mrt.n_peers;
    check Alcotest.int "rib v4" 174 s.Mrt.n_rib4;
    check Alcotest.int "rib v6" 4 s.Mrt.n_rib6;
    check Alcotest.int "bgp4mp" 185 s.Mrt.n_bgp4mp;
    check Alcotest.int "entries" 356 s.Mrt.n_entries

let test_mrt_golden_replay () =
  let dump = read_file "fixtures/table.mrt" in
  match Mrt.load dump with
  | Error e -> Alcotest.failf "load: %s" (Mrt.error_to_string e)
  | Ok l ->
    check Alcotest.int "records" 364 l.Mrt.records;
    check Alcotest.int "v4 routes" 348 l.Mrt.routes4;
    check Alcotest.int "v6 entries" 8 l.Mrt.entries6;
    check Alcotest.int "updates" 185 l.Mrt.updates;
    check Alcotest.int "table prefixes" 174
      (Peering_bgp.Rib.prefix_count l.Mrt.rib);
    check Alcotest.int "table routes" 511
      (Peering_bgp.Rib.route_count l.Mrt.rib)

let test_mrt_roundtrip_fixture () =
  let dump = read_file "fixtures/table.mrt" in
  match Mrt.read_all dump with
  | Error e -> Alcotest.failf "read_all: %s" (Mrt.error_to_string e)
  | Ok records ->
    check Alcotest.bool "re-encode is identity" true
      (Bytes.equal dump (Mrt.encode records))

(* Strictness: a record whose body does not parse exactly to the
   header's length, or that runs past the buffer, is rejected. *)
let test_mrt_malformed () =
  let dump = read_file "fixtures/table.mrt" in
  (match Mrt.decode (Bytes.sub dump 0 11) ~pos:0 with
  | Error Mrt.Truncated -> ()
  | Error e -> Alcotest.failf "short header: %s" (Mrt.error_to_string e)
  | Ok _ -> Alcotest.fail "short header decoded");
  (match Mrt.decode (Bytes.sub dump 0 20) ~pos:0 with
  | Error Mrt.Truncated -> ()
  | Error e -> Alcotest.failf "short body: %s" (Mrt.error_to_string e)
  | Ok _ -> Alcotest.fail "short body decoded");
  (* An unsupported record type (a complete, zero-length TABLE_DUMP
     record) is a Bad_record, not a crash. *)
  let c = Bytes.make 12 '\x00' in
  Bytes.set c 5 '\x0c' (* type 12, legacy TABLE_DUMP *);
  match Mrt.decode c ~pos:0 with
  | Error (Mrt.Bad_record _) -> ()
  | Error e -> Alcotest.failf "bad type: %s" (Mrt.error_to_string e)
  | Ok _ -> Alcotest.fail "unsupported type decoded"

let test_mrt_synthetic_stream () =
  let peers = Mrt.make_peers ~n:20 in
  check Alcotest.int "peer count" 20 (Array.length peers);
  let buf = Buffer.create 4096 in
  Mrt.iter_synthetic_rib ~peers ~n_prefixes:50 (fun r ->
      Mrt.encode_record buf r);
  let dump = Buffer.to_bytes buf in
  match Mrt.summarize dump with
  | Error e -> Alcotest.failf "summarize: %s" (Mrt.error_to_string e)
  | Ok s ->
    check Alcotest.int "records" 51 s.Mrt.n_records;
    check Alcotest.int "rib v4" 50 s.Mrt.n_rib4;
    check Alcotest.int "peers" 20 s.Mrt.n_peers

(* ------------------------------------------------------------------ *)
(* Monitor: BMP ingest, reassembly, reconstruction *)

module Bmp = Peering_bgp.Bmp
module Attrs = Peering_bgp.Attrs
module As_path = Peering_bgp.As_path
module Message = Peering_bgp.Message
module Capability = Peering_bgp.Capability

let bmp_hdr ?(time = 1.0) a =
  Bmp.make_peer_header ~addr:(ip "100.65.0.1") ~asn:a ~time ()

let bmp_attrs () =
  Attrs.make
    ~as_path:(As_path.of_asns [ asn 3356; asn 65010 ])
    ~next_hop:(ip "100.65.0.1") ()

let bmp_announce ?time peer p =
  Bmp.Route_monitoring
    { peer = bmp_hdr ?time peer;
      update =
        { Message.withdrawn = [];
          attrs = Some (bmp_attrs ());
          nlri = [ (0, p) ]
        }
    }

let bmp_withdraw ?time peer p =
  Bmp.Route_monitoring
    { peer = bmp_hdr ?time peer;
      update = { Message.withdrawn = [ (0, p) ]; attrs = None; nlri = [] }
    }

let bmp_open a =
  { Message.version = 4;
    asn = a;
    hold_time = 90;
    router_id = ip "10.0.0.1";
    capabilities = [ Capability.Four_octet_asn (Asn.to_int a) ]
  }

let bmp_peer_up ?time a =
  Bmp.Peer_up
    { peer = bmp_hdr ?time a;
      local_addr = ip "100.65.0.254";
      local_port = 179;
      remote_port = 40000;
      sent_open = bmp_open (asn 47065);
      recv_open = bmp_open a
    }

(* The same stream fed at every chunk size — including byte-at-a-time —
   reassembles to the same message count, zero residue and the same
   reconstructed RIB digest. *)
let test_monitor_fragmentation () =
  let peer = asn 65010 in
  let stream =
    Bmp.encode_all
      [ Bmp.Initiation { info = [ (2, "mux0") ] };
        bmp_peer_up peer;
        bmp_announce ~time:1.0 peer (pfx "184.164.224.0/24");
        bmp_announce ~time:2.0 peer (pfx "184.164.225.0/24");
        bmp_announce ~time:3.0 peer (pfx "184.164.226.0/24");
        Bmp.Stats_report
          { peer = bmp_hdr ~time:4.0 peer;
            stats =
              [ { Bmp.stat_type = Bmp.stat_routes_adj_rib_in; stat_value = 3 } ]
          }
      ]
  in
  let ingest chunk =
    let mon = Monitor.create () in
    let pos = ref 0 in
    while !pos < Bytes.length stream do
      let n = min chunk (Bytes.length stream - !pos) in
      Monitor.feed mon ~mux:"mux0" (Bytes.sub stream !pos n);
      pos := !pos + n
    done;
    mon
  in
  let reference = ingest (Bytes.length stream) in
  let want = Monitor.rib_digest reference ~mux:"mux0" in
  for chunk = 1 to Bytes.length stream do
    let mon = ingest chunk in
    check Alcotest.int "messages" 6 (Monitor.messages mon);
    check Alcotest.int "no parse errors" 0 (Monitor.parse_errors mon);
    check Alcotest.int "no residue" 0 (Monitor.buffered mon ~mux:"mux0");
    check Alcotest.int "routes" 3 (Monitor.route_count mon ~mux:"mux0");
    check Alcotest.string "digest invariant under fragmentation" want
      (Monitor.rib_digest mon ~mux:"mux0")
  done;
  check Alcotest.(list string) "muxes" [ "mux0" ] (Monitor.muxes reference);
  check Alcotest.(option int) "stats report landed" (Some 3)
    (Monitor.reported_routes reference ~mux:"mux0" ~peer)

(* Peer Down clears exactly that peer's table; other peers keep
   theirs.  A Termination clears the whole mux. *)
let test_monitor_peer_down () =
  let mon = Monitor.create () in
  let a = asn 100 and b = asn 200 in
  let send m = Monitor.feed mon ~mux:"m" (Bmp.encode m) in
  send (bmp_peer_up a);
  send (bmp_peer_up b);
  send (bmp_announce ~time:1.0 a (pfx "184.164.224.0/24"));
  send (bmp_announce ~time:1.5 a (pfx "184.164.225.0/24"));
  send (bmp_announce ~time:2.0 b (pfx "184.164.226.0/24"));
  check Alcotest.int "both tables filled" 3 (Monitor.route_count mon ~mux:"m");
  check Alcotest.bool "peer a up" true (Monitor.peer_up mon ~mux:"m" ~peer:a);
  send (Bmp.Peer_down { peer = bmp_hdr ~time:3.0 a; reason = 2 });
  check Alcotest.bool "peer a down" false (Monitor.peer_up mon ~mux:"m" ~peer:a);
  check Alcotest.bool "peer a table cleared" true
    (Prefix.Map.is_empty (Monitor.adj_rib mon ~mux:"m" ~peer:a));
  check Alcotest.int "peer b unaffected" 1
    (Prefix.Map.cardinal (Monitor.adj_rib mon ~mux:"m" ~peer:b));
  check Alcotest.bool "mux still up" true (Monitor.mux_up mon ~mux:"m");
  send (Bmp.Termination { info = [] });
  check Alcotest.bool "mux down" false (Monitor.mux_up mon ~mux:"m");
  check Alcotest.int "all tables cleared" 0 (Monitor.route_count mon ~mux:"m")

(* Route Monitoring messages also fill the collector archive, and a
   garbled frame is counted + resynced away without poisoning later
   valid frames. *)
let test_monitor_collector_and_resync () =
  let c = Collector.create () in
  let mon = Monitor.create ~collector:c () in
  let peer = asn 65010 and p = pfx "184.164.224.0/24" in
  Monitor.feed mon ~mux:"m" (Bmp.encode (bmp_announce ~time:1.0 peer p));
  Monitor.feed mon ~mux:"m" (Bmp.encode (bmp_withdraw ~time:2.0 peer p));
  (match Collector.entries c with
  | [ e1; e2 ] ->
    check Alcotest.bool "announce entry" true (e1.Collector.kind = Collector.Announce);
    check Alcotest.(list int) "announce path" [ 3356; 65010 ]
      (List.map Asn.to_int e1.Collector.path);
    check Alcotest.bool "withdraw entry" true (e2.Collector.kind = Collector.Withdraw);
    check Alcotest.bool "prefix" true (Prefix.compare e2.Collector.prefix p = 0)
  | l -> Alcotest.failf "expected 2 collector entries, got %d" (List.length l));
  (* a frame with a bad version byte is dropped and counted *)
  let bad = Bmp.encode (bmp_announce ~time:3.0 peer p) in
  Bytes.set bad 0 '\x09';
  Monitor.feed mon ~mux:"m" bad;
  check Alcotest.int "parse error counted" 1 (Monitor.parse_errors mon);
  (* ... and the feed recovers on the next valid frame *)
  Monitor.feed mon ~mux:"m" (Bmp.encode (bmp_announce ~time:4.0 peer p));
  check Alcotest.int "feed resynced" 1 (Prefix.Map.cardinal (Monitor.adj_rib mon ~mux:"m" ~peer));
  check Alcotest.int "no residue" 0 (Monitor.buffered mon ~mux:"m")

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 30) (float_bound_exclusive 1000.0))
              (pair (int_bound 100) (int_bound 100)))
    (fun (l, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile (float_of_int lo) l
      <= Stats.percentile (float_of_int hi) l +. 1e-9)

let () =
  Alcotest.run "measure"
    [ ("dns", [ tc "basic" `Quick test_dns_basic ]);
      ( "webworkload",
        [ tc "shape" `Quick test_workload_shape;
          tc "resolvable" `Quick test_workload_resolvable;
          tc "cdn concentration" `Quick test_workload_cdn_concentration
        ] );
      ("collector", [ tc "log" `Quick test_collector ]);
      ( "reachability",
        [ tc "cones" `Quick test_reachability_cones;
          tc "fraction" `Quick test_reachability_fraction
        ] );
      ( "mrt",
        [ tc "golden fixture" `Quick test_mrt_golden_fixture;
          tc "golden replay" `Quick test_mrt_golden_replay;
          tc "fixture roundtrip" `Quick test_mrt_roundtrip_fixture;
          tc "malformed records" `Quick test_mrt_malformed;
          tc "synthetic stream" `Quick test_mrt_synthetic_stream
        ] );
      ( "monitor",
        [ tc "fragmentation" `Quick test_monitor_fragmentation;
          tc "peer down clears" `Quick test_monitor_peer_down;
          tc "collector + resync" `Quick test_monitor_collector_and_resync
        ] );
      ( "stats",
        [ tc "basics" `Quick test_stats_basics;
          tc "histogram" `Quick test_stats_histogram;
          tc "cdf" `Quick test_stats_cdf;
          tc "edge cases" `Quick test_stats_edges;
          QCheck_alcotest.to_alcotest prop_percentile_monotone
        ] )
    ]
