open Peering_sim

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let draw seed = List.init 20 (fun _ -> Rng.int (Rng.create seed) 1000) in
  (* same seed, same stream *)
  let a = Rng.create 99 and b = Rng.create 99 in
  let sa = List.init 50 (fun _ -> Rng.int a 1_000_000) in
  let sb = List.init 50 (fun _ -> Rng.int b 1_000_000) in
  check Alcotest.(list int) "same seed same stream" sa sb;
  check Alcotest.bool "different seeds differ" true (draw 1 <> draw 2)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v;
    let w = Rng.int_in rng 5 9 in
    if w < 5 || w > 9 then Alcotest.failf "int_in out of bounds: %d" w;
    let f = Rng.float rng 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let test_rng_split_independent () =
  let rng = Rng.create 5 in
  let child = Rng.split rng in
  let a = List.init 10 (fun _ -> Rng.int child 1000) in
  (* drawing from the parent must not change the child's past *)
  let rng2 = Rng.create 5 in
  let child2 = Rng.split rng2 in
  ignore (Rng.int rng2 1000);
  let b = List.init 10 (fun _ -> Rng.int child2 1000) in
  check Alcotest.(list int) "split streams reproducible" a b

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_zipf () =
  let rng = Rng.create 13 in
  let sampler = Rng.zipf_sampler ~n:100 ~s:1.2 in
  let counts = Array.make 101 0 in
  for _ = 1 to 10_000 do
    let r = sampler rng in
    if r < 1 || r > 100 then Alcotest.failf "zipf out of range: %d" r;
    counts.(r) <- counts.(r) + 1
  done;
  (* rank 1 must dominate rank 50 under a Zipf law *)
  check Alcotest.bool "head heavier than tail" true (counts.(1) > counts.(50) * 5)

let test_rng_bernoulli () =
  let rng = Rng.create 17 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. 10_000.0 in
  check Alcotest.bool "p in [0.27, 0.33]" true (p > 0.27 && p < 0.33)

let test_rng_sample () =
  let rng = Rng.create 19 in
  let l = List.init 20 Fun.id in
  let s = Rng.sample rng 5 l in
  check Alcotest.int "size" 5 (List.length s);
  check Alcotest.int "distinct" 5 (List.length (List.sort_uniq Int.compare s));
  check Alcotest.int "oversample capped" 20
    (List.length (Rng.sample rng 50 l))

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let pop () = match Event_queue.pop q with Some (_, x) -> x | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  check Alcotest.(list string) "order" [ "a"; "b"; "c" ]
    [ first; second; third ];
  check Alcotest.bool "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1.0 i
  done;
  let out = ref [] in
  for _ = 1 to 10 do
    match Event_queue.pop q with
    | Some (_, x) -> out := x :: !out
    | None -> ()
  done;
  check Alcotest.(list int) "fifo on equal time" (List.init 10 Fun.id)
    (List.rev !out)

let test_queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 999 do
    Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) i
  done;
  let rec drain last n =
    match Event_queue.pop q with
    | None -> n
    | Some (t, _) ->
      if t < last then Alcotest.failf "out of order: %f after %f" t last;
      drain t (n + 1)
  in
  check Alcotest.int "all drained in order" 1000 (drain neg_infinity 0)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_clock () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := (2, Engine.now e) :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := (1, Engine.now e) :: !log);
  Engine.run e;
  check Alcotest.(list (pair int (float 1e-9))) "clock advances"
    [ (1, 1.0); (2, 2.0) ]
    (List.rev !log)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref 0.0 in
  Engine.schedule e ~delay:1.0 (fun () ->
      Engine.schedule e ~delay:0.5 (fun () -> fired := Engine.now e));
  Engine.run e;
  check Alcotest.(float 1e-9) "nested event time" 1.5 !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  Engine.run ~until:5.0 e;
  check Alcotest.int "only first five" 5 !count;
  check Alcotest.int "rest still queued" 5 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "all" 10 !count

let test_engine_run_for () =
  let e = Engine.create () in
  Engine.run_for e 3.0;
  check Alcotest.(float 1e-9) "clock moved" 3.0 (Engine.now e);
  Engine.run_for e 2.0;
  check Alcotest.(float 1e-9) "again" 5.0 (Engine.now e)

let test_engine_past_rejected () =
  let e = Engine.create () in
  Engine.run_for e 5.0;
  (match Engine.schedule_at e ~time:1.0 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "scheduling in the past accepted");
  match Engine.schedule e ~delay:(-1.0) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative delay accepted"

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec reschedule () =
    incr count;
    Engine.schedule e ~delay:1.0 reschedule
  in
  Engine.schedule e ~delay:1.0 reschedule;
  (* a self-rescheduling event would run forever; max_events bounds it *)
  Engine.run ~max_events:25 e;
  check Alcotest.int "bounded" 25 !count

let test_rng_distributions () =
  let rng = Rng.create 23 in
  (* exponential: mean close to parameter *)
  let samples = List.init 5000 (fun _ -> Rng.exponential rng ~mean:10.0) in
  let mean = List.fold_left ( +. ) 0.0 samples /. 5000.0 in
  check Alcotest.bool "exponential mean" true (mean > 9.0 && mean < 11.0);
  check Alcotest.bool "exponential nonneg" true
    (List.for_all (fun x -> x >= 0.0) samples);
  (* pareto: no sample below scale, heavy tail exists *)
  let ps = List.init 5000 (fun _ -> Rng.pareto rng ~shape:1.5 ~scale:2.0) in
  check Alcotest.bool "pareto floor" true (List.for_all (fun x -> x >= 2.0) ps);
  check Alcotest.bool "pareto tail" true (List.exists (fun x -> x > 20.0) ps)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_roundtrip () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~level:Trace.Info ~subsystem:"bgp" "session up";
  Trace.record tr ~time:2.0 ~level:Trace.Warn ~subsystem:"safety" "hijack blocked";
  check Alcotest.int "count" 2 (Trace.count tr);
  check Alcotest.int "filter subsystem" 1
    (List.length (Trace.find tr ~subsystem:"bgp" ()));
  check Alcotest.int "filter contains" 1
    (List.length (Trace.find tr ~contains:"hijack" ()));
  check Alcotest.int "filter both" 0
    (List.length (Trace.find tr ~subsystem:"bgp" ~contains:"hijack" ()))

let test_trace_capacity () =
  let tr = Trace.create ~capacity:10 () in
  for i = 1 to 25 do
    Trace.record tr ~time:(float_of_int i) ~level:Trace.Debug ~subsystem:"x"
      (string_of_int i)
  done;
  check Alcotest.int "bounded" 10 (Trace.count tr);
  check Alcotest.int "dropped" 15 (Trace.dropped tr);
  match Trace.events tr with
  | e :: _ -> check Alcotest.string "oldest retained" "16" (Trace.message e)
  | [] -> Alcotest.fail "no events"

let () =
  Alcotest.run "sim"
    [ ( "rng",
        [ tc "determinism" `Quick test_rng_determinism;
          tc "bounds" `Quick test_rng_bounds;
          tc "split" `Quick test_rng_split_independent;
          tc "shuffle" `Quick test_rng_shuffle_permutation;
          tc "zipf" `Quick test_rng_zipf;
          tc "bernoulli" `Quick test_rng_bernoulli;
          tc "sample" `Quick test_rng_sample
        ] );
      ( "event-queue",
        [ tc "order" `Quick test_queue_order;
          tc "fifo ties" `Quick test_queue_fifo_ties;
          tc "interleaved" `Quick test_queue_interleaved
        ] );
      ( "engine",
        [ tc "clock" `Quick test_engine_clock;
          tc "nested" `Quick test_engine_nested_schedule;
          tc "until" `Quick test_engine_until;
          tc "run_for" `Quick test_engine_run_for;
          tc "past rejected" `Quick test_engine_past_rejected;
          tc "max events" `Quick test_engine_max_events;
          tc "distributions" `Quick test_rng_distributions
        ] );
      ( "trace",
        [ tc "roundtrip" `Quick test_trace_roundtrip;
          tc "capacity" `Quick test_trace_capacity
        ] )
    ]
