(* Acceptance harness for the compound chaos campaign (ISSUE 8): on
   every seed, every drill of the canonical campaign must reconverge
   with zero routes lost, meet its per-class p99 recovery SLO, and
   produce a byte-identical report — blast-radius accounting included —
   when replayed with the same seed. A single-drill rerun must also
   reproduce the full campaign's outcome for that drill exactly, since
   drill seeds derive from canonical positions, not run order.

   Run alone with `dune build @chaos-campaign`; widen the sweep with
   CHAOS_CAMPAIGN_SEEDS=<n> (default 3). *)

module Campaign = Peering_fault.Campaign
module Metrics = Peering_obs.Metrics
module Json = Peering_obs.Json

let n_seeds =
  match Sys.getenv_opt "CHAOS_CAMPAIGN_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 3)
  | None -> 3

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "  FAIL %s\n" label
  end

let run_report seed =
  Metrics.reset ();
  let r = Campaign.run ~seed () in
  (r, Json.to_string ~indent:2 (Campaign.to_json r))

let exercise seed =
  Printf.printf "seed %d:\n" seed;
  let r, json1 = run_report seed in
  let label fmt = Printf.ksprintf (fun s -> Printf.sprintf "[%d] %s" seed s) fmt in
  check (label "every declared drill ran")
    (List.map (fun (o : Campaign.outcome) -> o.Campaign.drill) r.Campaign.outcomes
    = Campaign.drills);
  List.iter
    (fun (o : Campaign.outcome) ->
      check (label "%s reconverged" o.Campaign.drill) o.Campaign.reconverged;
      check
        (label "%s zero routes lost" o.Campaign.drill)
        (o.Campaign.routes_lost = 0);
      check
        (label "%s finite recovery" o.Campaign.drill)
        (Float.is_finite o.Campaign.recovery_s))
    r.Campaign.outcomes;
  List.iter
    (fun (v : Campaign.slo_verdict) ->
      check
        (label "SLO %s: p99 %.2fs within %.0fs" v.Campaign.verdict_class
           v.Campaign.p99_s v.Campaign.budget_s)
        v.Campaign.met)
    r.Campaign.slos;
  check (label "zero routes lost overall") r.Campaign.zero_routes_lost;
  check (label "campaign passed") r.Campaign.passed;
  (* The multi-tenant drill fires the compound plan under >= 20
     concurrent scheduler-admitted experiments; every tenant must end
     the drill with its per-prefix reach exactly at its own baseline
     (per-tenant zero routes lost), and its p99 recovery SLO class
     must have been judged. *)
  (let mt =
     List.find
       (fun (o : Campaign.outcome) -> o.Campaign.drill = "multi_tenant")
       r.Campaign.outcomes
   in
   check
     (label "multi_tenant ran >= 20 scheduled experiments")
     (List.length mt.Campaign.tenant_reaches >= 20);
   List.iter
     (fun (tenant, base, final) ->
       check
         (label "multi_tenant %s reach restored (%d -> %d)" tenant base final)
         (final = base && base > 0))
     mt.Campaign.tenant_reaches;
   check
     (label "multi_tenant recovery SLO judged")
     (List.exists
        (fun (v : Campaign.slo_verdict) ->
          v.Campaign.verdict_class = "multi_tenant")
        r.Campaign.slos));
  (* Same seed, byte-identical report — blast radii and all. *)
  let _, json2 = run_report seed in
  check (label "same-seed report byte-identical") (String.equal json1 json2);
  (* A single-drill rerun replays the exact world the full campaign
     used for that drill: outcomes must match structurally (compare,
     not (=), so a NaN recovery can never hide a mismatch). *)
  let full_cascade =
    List.find
      (fun (o : Campaign.outcome) -> o.Campaign.drill = "cascade")
      r.Campaign.outcomes
  in
  Metrics.reset ();
  let sub = Campaign.run ~seed ~drills:[ "cascade" ] () in
  let solo =
    match sub.Campaign.outcomes with
    | [ o ] -> o
    | _ -> failwith "subset campaign should run exactly one drill"
  in
  check (label "single-drill rerun reproduces the campaign outcome")
    (compare solo full_cascade = 0);
  Printf.printf "  %d drills ok, %d SLO classes ok\n"
    (List.length r.Campaign.outcomes)
    (List.length r.Campaign.slos)

let () =
  Printf.printf
    "chaos-campaign: %d seeds (CHAOS_CAMPAIGN_SEEDS to widen)\n" n_seeds;
  for i = 0 to n_seeds - 1 do
    exercise (42 + (7 * i))
  done;
  if !failures > 0 then begin
    Printf.printf "chaos-campaign: %d FAILURES\n" !failures;
    exit 1
  end;
  Printf.printf "chaos-campaign: all checks passed\n"
