(* The observability layer: JSON emitter/parser, the metrics registry,
   the typed event sink, and end-to-end snapshot determinism. *)

open Peering_obs
module Engine = Peering_sim.Engine
module Trace = Peering_sim.Trace
module Obs_report = Peering_measure.Obs_report
open Peering_core

let check = Alcotest.check
let tc = Alcotest.test_case

(* ------------------------------------------------------------------ *)
(* Json *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("null", Json.Null);
        ("bool", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 2.5);
        ("big", Json.Float 1.0e300);
        ("string", Json.String "line\nbreak \"quoted\" \t tab");
        ("unicode", Json.String "caf\xc3\xa9");
        ( "list",
          Json.List [ Json.Int 1; Json.List []; Json.Obj []; Json.String "" ]
        )
      ]
  in
  check Alcotest.bool "compact roundtrip" true (Json.equal doc (roundtrip doc));
  (match Json.of_string (Json.to_string ~indent:2 doc) with
  | Ok v -> check Alcotest.bool "indented roundtrip" true (Json.equal doc v)
  | Error e -> Alcotest.failf "indented reparse failed: %s" e);
  (* non-finite floats serialize as null rather than invalid JSON *)
  check Alcotest.string "nan is null" "null" (Json.to_string (Json.Float nan));
  check Alcotest.string "inf is null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  let fails s =
    match Json.of_string s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  fails "";
  fails "{";
  fails "[1, 2,]";
  fails "{\"a\": 1,}";
  fails "\"unterminated";
  fails "nul";
  fails "1.2.3";
  fails "{\"a\" 1}";
  fails "[1] trailing";
  (* escapes parse back to the original characters *)
  match Json.of_string "\"a\\u0041\\n\\\"\"" with
  | Ok (Json.String s) -> check Alcotest.string "escapes" "aA\n\"" s
  | Ok _ | Error _ -> Alcotest.fail "escape parse"

(* Truncation at every byte, deep nesting, and non-ASCII payloads:
   the parser must return [Error] (or a correct value), never raise. *)
let test_json_edge_cases () =
  let full = "{\"k\": [1, -2.5, \"caf\xc3\xa9\", {\"nested\": null}], \"t\": true}" in
  (match Json.of_string full with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "full doc rejected: %s" e);
  for len = 0 to String.length full - 1 do
    match Json.of_string (String.sub full 0 len) with
    | Ok v ->
      Alcotest.failf "truncation at %d accepted as %s" len (Json.to_string v)
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "truncation at %d raised %s" len (Printexc.to_string e)
  done;
  (* deep nesting parses back structurally (no stack surprises) *)
  let depth = 500 in
  let deep =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "7"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  (match Json.of_string deep with
  | Ok v ->
    let rec unwrap n = function
      | Json.List [ inner ] -> unwrap (n + 1) inner
      | Json.Int 7 -> check Alcotest.int "nesting depth" depth n
      | _ -> Alcotest.fail "deep nesting shape"
    in
    unwrap 0 v
  | Error e -> Alcotest.failf "deep nesting rejected: %s" e);
  (* an unterminated deep prefix must error, not raise *)
  (match Json.of_string (String.concat "" (List.init depth (fun _ -> "["))) with
  | Ok _ -> Alcotest.fail "accepted unterminated nesting"
  | Error _ -> ());
  (* non-ASCII strings: raw UTF-8 passes through byte-exactly, and
     \u escapes for multi-byte code points decode to UTF-8 *)
  let cyrillic = "\xd0\xbf\xd1\x80\xd0\xb8\xd0\xb2\xd0\xb5\xd1\x82" in
  (match Json.of_string (Json.to_string (Json.String cyrillic)) with
  | Ok (Json.String s) -> check Alcotest.string "utf-8 roundtrip" cyrillic s
  | Ok _ | Error _ -> Alcotest.fail "utf-8 roundtrip");
  match Json.of_string "\"\\u00e9\"" with
  | Ok (Json.String s) -> check Alcotest.string "latin escape" "\xc3\xa9" s
  | Ok _ | Error _ -> Alcotest.fail "latin escape parse"

let test_json_accessors () =
  match Json.of_string "{\"rows\": [{\"n\": 3}], \"name\": \"e1\"}" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok doc ->
    (match Json.member "name" doc with
    | Some (Json.String s) -> check Alcotest.string "member" "e1" s
    | _ -> Alcotest.fail "name member");
    (match Json.member "rows" doc with
    | Some rows -> (
      match Json.to_list rows with
      | [ row ] ->
        check Alcotest.(option (float 1e-9)) "number" (Some 3.0)
          (Option.bind (Json.member "n" row) Json.number_value)
      | _ -> Alcotest.fail "rows shape")
    | None -> Alcotest.fail "rows member")

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"test counter" "t.count" in
  Metrics.Counter.inc c;
  Metrics.Counter.add c 4;
  check Alcotest.int "counter" 5 (Metrics.Counter.value c);
  (* registration is memoised: same name, same instrument *)
  let c' = Metrics.counter ~registry:r ~help:"test counter" "t.count" in
  Metrics.Counter.inc c';
  check Alcotest.int "memoised" 6 (Metrics.Counter.value c);
  let g = Metrics.gauge ~registry:r ~help:"test gauge" "t.gauge" in
  Metrics.Gauge.set g 3.0;
  Metrics.Gauge.set g 1.0;
  check Alcotest.(float 1e-9) "gauge level" 1.0 (Metrics.Gauge.value g);
  check Alcotest.(float 1e-9) "gauge hwm" 3.0 (Metrics.Gauge.hwm g);
  (* a name cannot change kind *)
  match Metrics.gauge ~registry:r ~help:"oops" "t.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch accepted"

let test_metrics_histogram_cap () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~registry:r ~sample_cap:5 ~help:"capped" "t.hist"
  in
  for i = 1 to 8 do
    Metrics.Histogram.observe h (float_of_int i)
  done;
  check Alcotest.int "count keeps accumulating" 8 (Metrics.Histogram.count h);
  check Alcotest.(float 1e-9) "sum keeps accumulating" 36.0
    (Metrics.Histogram.sum h);
  check Alcotest.int "samples capped" 5
    (List.length (Metrics.Histogram.samples h));
  check Alcotest.int "dropped accounted" 3 (Metrics.Histogram.dropped h)

let test_metrics_reset_and_snapshot () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"c" "b.count" in
  let g = Metrics.gauge ~registry:r ~help:"g" "a.gauge" in
  let v = Metrics.counter ~registry:r ~volatile:true ~help:"v" "c.volatile" in
  Metrics.Counter.inc c;
  Metrics.Gauge.set g 2.0;
  Metrics.Counter.inc v;
  (* snapshot is sorted by name and hides volatile rows by default *)
  let names rows = List.map Metrics.row_name rows in
  check
    Alcotest.(list string)
    "sorted, volatile hidden" [ "a.gauge"; "b.count" ]
    (names (Metrics.snapshot ~registry:r ()));
  check
    Alcotest.(list string)
    "volatile on demand"
    [ "a.gauge"; "b.count"; "c.volatile" ]
    (names (Metrics.snapshot ~include_volatile:true ~registry:r ()));
  (* reset zeroes in place; instruments already held stay live *)
  Metrics.reset ~registry:r ();
  check Alcotest.int "counter zeroed" 0 (Metrics.Counter.value c);
  check Alcotest.(float 1e-9) "hwm zeroed" 0.0 (Metrics.Gauge.hwm g);
  Metrics.Counter.inc c;
  check Alcotest.int "instrument survives reset" 1 (Metrics.Counter.value c);
  check Alcotest.int "counter_value reads registry" 1
    (Metrics.counter_value ~registry:r "b.count");
  check Alcotest.int "unregistered reads zero" 0
    (Metrics.counter_value ~registry:r "no.such.metric")

(* ------------------------------------------------------------------ *)
(* Labeled metrics: duplicate keys, the label-set family cache, and
   the hot-path cost of an increment *)

let test_duplicate_label_keys () =
  let r = Metrics.create () in
  Alcotest.check_raises "adjacent duplicates rejected"
    (Invalid_argument "Metrics: duplicate label key \"site\" in label set")
    (fun () ->
      ignore
        (Metrics.counter ~registry:r
           ~labels:[ ("site", "ams"); ("site", "gru") ]
           ~help:"dup" "dup.count"));
  (* Detection happens after canonical sorting, so non-adjacent
     duplicates are caught too. *)
  Alcotest.check_raises "non-adjacent duplicates rejected"
    (Invalid_argument "Metrics: duplicate label key \"a\" in label set")
    (fun () ->
      ignore
        (Metrics.counter ~registry:r
           ~labels:[ ("a", "1"); ("b", "2"); ("a", "3") ]
           ~help:"dup" "dup2.count"))

let test_family_cache () =
  let r = Metrics.create () in
  let fam = Metrics.Family.counter ~registry:r ~help:"f" "fam.count" in
  let a = Metrics.Family.get fam [ ("site", "ams"); ("kind", "x") ] in
  let b = Metrics.Family.get fam [ ("kind", "x"); ("site", "ams") ] in
  check Alcotest.bool "same label set, same instrument" true (a == b);
  let c = Metrics.Family.get fam [ ("site", "gru"); ("kind", "x") ] in
  check Alcotest.bool "distinct label set, distinct instrument" true
    (not (a == c));
  Metrics.Counter.inc a;
  Metrics.Counter.add b 2;
  check Alcotest.int "both handles hit one counter" 3
    (Metrics.counter_value ~registry:r
       ~labels:[ ("kind", "x"); ("site", "ams") ]
       "fam.count")

let test_family_hot_path_allocation () =
  let r = Metrics.create () in
  let fam = Metrics.Family.counter ~registry:r ~help:"f" "hot.count" in
  let c = Metrics.Family.get fam [ ("site", "ams") ] in
  for _ = 1 to 100 do
    Metrics.Counter.inc c
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Metrics.Counter.inc c
  done;
  let after = Gc.minor_words () in
  (* Gc.minor_words itself boxes its float result, so allow a few
     words of slack — far below one word per increment. *)
  check Alcotest.bool "increment hot path is allocation-free" true
    (after -. before < 64.0);
  check Alcotest.int "increments landed" 10_100
    (Metrics.counter_value ~registry:r ~labels:[ ("site", "ams") ] "hot.count")

(* ------------------------------------------------------------------ *)
(* Causal spans: contexts, the flight recorder, ambient stamping,
   propagation across the engine's event queue *)

let test_span_contexts () =
  Span.reset ();
  Sink.start_flight_recorder ();
  let root = Span.start ~time:0.0 "root" in
  let child =
    Span.with_current
      (Some (Span.context root))
      (fun () -> Span.start ~time:0.5 "child")
  in
  let rc = Span.context root and cc = Span.context child in
  check Alcotest.int "a root starts its own trace" rc.Span.trace rc.Span.span;
  check Alcotest.(option int) "root has no parent" None rc.Span.parent;
  check Alcotest.int "child inherits the trace" rc.Span.trace cc.Span.trace;
  check Alcotest.(option int) "child parented on ambient"
    (Some rc.Span.span) cc.Span.parent;
  Span.finish child ~time:1.0;
  Span.finish root ~time:2.0 ~attrs:[ ("done", "yes") ];
  (match Sink.flight_spans () with
  | [ c; r ] ->
    check Alcotest.string "finish order" "child" c.Span.name;
    check Alcotest.string "root finished last" "root" r.Span.name;
    check Alcotest.(float 1e-9) "duration recorded" 2.0 r.Span.ended;
    check Alcotest.bool "finish-time attrs merged" true
      (List.mem_assoc "done" r.Span.attrs)
  | _ -> Alcotest.fail "flight recorder shape");
  Sink.stop_flight_recorder ();
  Sink.clear_flight_recorder ()

let test_flight_recorder_drops () =
  Span.reset ();
  Sink.start_flight_recorder ~capacity:2 ();
  List.iter
    (fun name ->
      let sp = Span.start ~time:0.0 name in
      Span.finish sp ~time:1.0;
      (* finishing again is a no-op, not a duplicate record *)
      Span.finish sp ~time:9.0)
    [ "a"; "b"; "c" ];
  check Alcotest.int "capacity bound holds" 2 (Sink.flight_count ());
  check Alcotest.int "drop accounted" 1 (Sink.flight_dropped ());
  (match Sink.flight_spans () with
  | [ b; c ] ->
    check Alcotest.string "oldest dropped" "b" b.Span.name;
    check Alcotest.string "newest kept" "c" c.Span.name;
    check Alcotest.(float 1e-9) "idempotent finish kept first end time" 1.0
      c.Span.ended
  | _ -> Alcotest.fail "flight recorder shape");
  Sink.stop_flight_recorder ();
  Sink.clear_flight_recorder ()

let test_emit_ambient_stamp () =
  Span.reset ();
  Span.set_enabled true;
  let tr = Trace.create () in
  Trace.attach tr ~clock:(fun () -> 0.0);
  let sp = Span.start ~time:0.0 "ambient" in
  Span.with_current
    (Some (Span.context sp))
    (fun () -> Sink.emit ~subsystem:"t" (Event.Ad_hoc "stamped"));
  Sink.emit ~subsystem:"t" (Event.Ad_hoc "unstamped");
  Span.finish sp ~time:1.0;
  Trace.detach ();
  Span.set_enabled false;
  match Trace.events tr with
  | [ a; b ] ->
    (match a.Trace.span with
    | Some c ->
      check Alcotest.int "stamped with the ambient span"
        (Span.context sp).Span.span c.Span.span
    | None -> Alcotest.fail "event missing its span stamp");
    check Alcotest.bool "no ambient, no stamp" true (b.Trace.span = None)
  | _ -> Alcotest.fail "event shape"

let test_engine_span_capture () =
  Span.reset ();
  Span.set_enabled true;
  let engine = Engine.create () in
  let seen = ref None in
  let sp = Span.start ~time:0.0 "cause" in
  Span.with_current
    (Some (Span.context sp))
    (fun () ->
      Engine.schedule engine ~delay:1.0 (fun () -> seen := Span.current ()));
  Span.finish sp ~time:0.0;
  Engine.schedule engine ~delay:2.0 (fun () -> ());
  Engine.run_for engine 5.0;
  Span.set_enabled false;
  match !seen with
  | Some c ->
    check Alcotest.int "callback ran under the scheduling span"
      (Span.context sp).Span.span c.Span.span
  | None -> Alcotest.fail "span context not carried across the event queue"

(* Two identically seeded runs must mint identical span trees — ids,
   names, parents, times and attributes. *)
let span_fingerprint () =
  Metrics.reset ();
  Span.reset ();
  Sink.start_flight_recorder ();
  let params =
    { Testbed.default_params with
      Testbed.world =
        { Peering_topo.Gen.default_params with
          Peering_topo.Gen.n_stub = 900;
          n_small_transit = 80;
          target_prefixes = 4000
        };
      university_sites = [ ("gatech01", 2) ]
    }
  in
  let t = Testbed.build ~params () in
  let experiment =
    match Testbed.new_experiment t ~id:"det" ~owner:"test" () with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"det-client" ~experiment () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let prefix = List.hd experiment.Experiment.prefixes in
  ignore (Client.announce client prefix);
  Client.withdraw client prefix;
  Sink.stop_flight_recorder ();
  let fp =
    String.concat "\n"
      (List.map
         (fun (sp : Span.completed) ->
           Printf.sprintf "%d/%d/%s %s [%g,%g] %s" sp.Span.ctx.Span.trace
             sp.Span.ctx.Span.span
             (match sp.Span.ctx.Span.parent with
             | None -> "-"
             | Some p -> string_of_int p)
             sp.Span.name sp.Span.started sp.Span.ended
             (String.concat ","
                (List.map (fun (k, v) -> k ^ "=" ^ v) sp.Span.attrs)))
         (Sink.flight_spans ()))
  in
  Sink.clear_flight_recorder ();
  fp

let test_span_tree_determinism () =
  let a = span_fingerprint () in
  let b = span_fingerprint () in
  check Alcotest.string "identical span trees" a b;
  check Alcotest.bool "non-trivial" true (String.length a > 0)

(* ------------------------------------------------------------------ *)
(* Events through the sink into a trace *)

let test_sink_trace () =
  let tr = Trace.create () in
  Trace.attach tr ~clock:(fun () -> 42.0);
  Sink.emit ~subsystem:"test"
    (Event.Session_transition
       { peer = "65001"; from_state = "OpenConfirm"; to_state = "Established" });
  Sink.emit ~time:1.5 ~level:Event.Warn ~subsystem:"test.safety"
    (Event.Safety_verdict
       { client = "c1";
         prefix = Peering_net.Prefix.of_string_exn "8.8.8.0/24";
         verdict = Event.Rejected "hijack"
       });
  Trace.detach ();
  Sink.emit ~subsystem:"test" (Event.Ad_hoc "after detach: dropped");
  check Alcotest.int "two events captured" 2 (Trace.count tr);
  (match Trace.events tr with
  | [ a; b ] ->
    check Alcotest.(float 1e-9) "clock fallback" 42.0 a.Trace.time;
    check Alcotest.(float 1e-9) "explicit time" 1.5 b.Trace.time;
    (match a.Trace.ev with
    | Event.Session_transition { to_state; _ } ->
      check Alcotest.string "typed payload" "Established" to_state
    | _ -> Alcotest.fail "wrong event payload");
    check Alcotest.bool "rendered message mentions verdict" true
      (Trace.find tr ~contains:"hijack" () <> [])
  | _ -> Alcotest.fail "event shape");
  check Alcotest.int "count_by_subsystem" 2
    (List.length (Trace.count_by_subsystem tr))

(* ------------------------------------------------------------------ *)
(* Determinism: identical seeded runs produce identical snapshots *)

let run_scenario () =
  Metrics.reset ();
  let params =
    { Testbed.default_params with
      Testbed.world =
        { Peering_topo.Gen.default_params with
          Peering_topo.Gen.n_stub = 900;
          n_small_transit = 80;
          target_prefixes = 4000
        };
      university_sites = [ ("gatech01", 2) ]
    }
  in
  let t = Testbed.build ~params () in
  let experiment =
    match Testbed.new_experiment t ~id:"det" ~owner:"test" () with
    | Ok e -> e
    | Error m -> failwith m
  in
  let client = Client.create ~id:"det-client" ~experiment () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let prefix = List.hd experiment.Experiment.prefixes in
  ignore (Client.announce client prefix);
  Client.withdraw client prefix;
  Json.to_string ~indent:2 (Obs_report.to_json ())

let test_snapshot_determinism () =
  let a = run_scenario () in
  let b = run_scenario () in
  check Alcotest.string "identical snapshot JSON" a b;
  (* and the snapshot is real: the scenario moved the counters *)
  check Alcotest.bool "non-trivial" true
    (Metrics.counter_value "core.safety.accepted" > 0)

(* ------------------------------------------------------------------ *)
(* Obs_report rendering *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let test_obs_report () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"c" "x.count" in
  let h = Metrics.histogram ~registry:r ~help:"h" "x.hist" in
  Metrics.Counter.add c 7;
  List.iter (Metrics.Histogram.observe h) [ 1.0; 2.0; 3.0 ];
  let txt = Obs_report.render ~registry:r () in
  check Alcotest.bool "text mentions counter" true (contains txt "x.count");
  let json = Obs_report.to_json ~registry:r () in
  (match Json.member "x.count" json with
  | Some (Json.Int 7) -> ()
  | _ -> Alcotest.fail "counter json");
  match Json.member "x.hist" json with
  | Some hist ->
    check Alcotest.(option (float 1e-9)) "p50" (Some 2.0)
      (Option.bind (Json.member "p50" hist) Json.number_value)
  | None -> Alcotest.fail "hist json"

(* ------------------------------------------------------------------ *)
(* Window: the ring-buffer series and the sliding-window quantiles *)

let test_window_series () =
  let s = Window.Series.create ~capacity:4 () in
  for i = 0 to 9 do
    Window.Series.push s ~time:(float_of_int i) 1.0
  done;
  check Alcotest.int "ring bound holds" 4 (Window.Series.length s);
  check Alcotest.int "evictions accounted" 6 (Window.Series.dropped s);
  check Alcotest.int "total counts everything" 10 (Window.Series.total s);
  (match Window.Series.last s with
  | Some (9.0, 1.0) -> ()
  | _ -> Alcotest.fail "last sample");
  check Alcotest.(float 1e-9) "span covers the retained tail" 3.0
    (Window.Series.span_s s);
  (* 4 samples retained over the 60s horizon ending at t=9 *)
  check Alcotest.(float 1e-9) "rate" (4.0 /. 60.0)
    (Window.Series.rate ~horizon_s:60.0 s);
  (* floor is exclusive: a 1.5s horizon from t=9 keeps t=8 and t=9 *)
  check Alcotest.int "window slice" 2
    (List.length (Window.Series.window s ~horizon_s:1.5))

let test_window_quantiles () =
  let q = Window.Quantiles.of_list [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  check Alcotest.int "count" 5 (Window.Quantiles.count q);
  check Alcotest.(float 1e-9) "min" 1.0 (Window.Quantiles.quantile q 0.0);
  check Alcotest.(float 1e-9) "median" 3.0 (Window.Quantiles.quantile q 0.5);
  check Alcotest.(float 1e-9) "max" 5.0 (Window.Quantiles.quantile q 1.0);
  check Alcotest.bool "empty quantile is nan" true
    (Float.is_nan (Window.Quantiles.quantile Window.Quantiles.empty 0.5));
  let v =
    Window.Slo.evaluate ~name:"x" ~budget_s:10.0
      (Window.Quantiles.of_list [ 1.0; 2.0 ])
  in
  check Alcotest.bool "slo met under budget" true v.Window.Slo.met;
  check Alcotest.(float 1e-9) "burn = p99/budget" 0.2 v.Window.Slo.burn;
  (* no samples: vacuously met, burn 0 (not nan) *)
  let v0 =
    Window.Slo.evaluate ~name:"x" ~budget_s:10.0 Window.Quantiles.empty
  in
  check Alcotest.bool "vacuous slo met" true v0.Window.Slo.met;
  check Alcotest.(float 1e-9) "vacuous burn" 0.0 v0.Window.Slo.burn

let qgen_samples =
  QCheck.(list_of_size Gen.(0 -- 40) (float_bound_inclusive 1e6))

(* Law: the quantile function is monotone in q. *)
let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantiles: monotone in q" ~count:200
    QCheck.(
      pair qgen_samples
        (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (xs, (qa, qb)) ->
      QCheck.assume (xs <> []);
      let q = Window.Quantiles.of_list xs in
      let lo = Float.min qa qb and hi = Float.max qa qb in
      Window.Quantiles.quantile q lo <= Window.Quantiles.quantile q hi)

(* Law: merge is associative (and commutative) on the canonical
   sorted-list form, so sharding a window over feeds and merging in
   any order reports identical quantiles. *)
let quantiles_repr q =
  (Window.Quantiles.count q, Window.Quantiles.to_sorted_list q)

let prop_merge_associative =
  QCheck.Test.make ~name:"quantiles: merge associative" ~count:200
    QCheck.(triple qgen_samples qgen_samples qgen_samples)
    (fun (a, b, c) ->
      let qa = Window.Quantiles.of_list a
      and qb = Window.Quantiles.of_list b
      and qc = Window.Quantiles.of_list c in
      let open Window.Quantiles in
      quantiles_repr (merge (merge qa qb) qc)
      = quantiles_repr (merge qa (merge qb qc))
      && quantiles_repr (merge qa qb) = quantiles_repr (merge qb qa))

(* Law: adding a sample to the window never shrinks any quantile below
   the old minimum nor above the new maximum, and count grows by 1. *)
let prop_quantile_add_bounds =
  QCheck.Test.make ~name:"quantiles: add stays bounded" ~count:200
    QCheck.(pair qgen_samples (float_bound_inclusive 1e6))
    (fun (xs, x) ->
      QCheck.assume (xs <> []);
      let q = Window.Quantiles.of_list xs in
      let q' = Window.Quantiles.add x q in
      Window.Quantiles.count q' = Window.Quantiles.count q + 1
      && Window.Quantiles.min_value q' <= Window.Quantiles.min_value q
      && Window.Quantiles.max_value q' >= Window.Quantiles.max_value q)

(* ------------------------------------------------------------------ *)
(* Capacity drops must surface as metric rows (the `stats` subcommand
   prints exactly these), not just as per-buffer counters. *)

let test_drop_rows () =
  Metrics.reset ();
  (* trace buffer: capacity 2, five events -> three drops *)
  let tr = Trace.create ~capacity:2 () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) ~level:Event.Info ~subsystem:"t"
      (Printf.sprintf "ev %d" i)
  done;
  check Alcotest.int "trace buffer dropped" 3 (Trace.dropped tr);
  check Alcotest.int "sim.trace.dropped row" 3
    (Metrics.counter_value "sim.trace.dropped");
  (* flight recorder: capacity 1, two spans -> one drop *)
  Span.reset ();
  Sink.start_flight_recorder ~capacity:1 ();
  List.iter
    (fun name ->
      let sp = Span.start ~time:0.0 name in
      Span.finish sp ~time:1.0)
    [ "a"; "b" ];
  Sink.stop_flight_recorder ();
  Sink.clear_flight_recorder ();
  check Alcotest.int "obs.flight.dropped row" 1
    (Metrics.counter_value "obs.flight.dropped");
  let txt = Obs_report.render ~include_volatile:true () in
  check Alcotest.bool "stats text carries the trace drop row" true
    (contains txt "sim.trace.dropped");
  check Alcotest.bool "stats text carries the flight drop row" true
    (contains txt "obs.flight.dropped")

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ tc "roundtrip" `Quick test_json_roundtrip;
          tc "parse errors" `Quick test_json_parse_errors;
          tc "edge cases" `Quick test_json_edge_cases;
          tc "accessors" `Quick test_json_accessors
        ] );
      ( "metrics",
        [ tc "basics" `Quick test_metrics_basics;
          tc "histogram cap" `Quick test_metrics_histogram_cap;
          tc "reset and snapshot" `Quick test_metrics_reset_and_snapshot;
          tc "duplicate label keys" `Quick test_duplicate_label_keys;
          tc "family cache" `Quick test_family_cache;
          tc "hot-path allocation" `Quick test_family_hot_path_allocation
        ] );
      ( "spans",
        [ tc "contexts" `Quick test_span_contexts;
          tc "flight recorder drops" `Quick test_flight_recorder_drops;
          tc "ambient stamping" `Quick test_emit_ambient_stamp;
          tc "engine capture" `Quick test_engine_span_capture;
          tc "tree determinism" `Slow test_span_tree_determinism
        ] );
      ("events", [ tc "sink to trace" `Quick test_sink_trace ]);
      ( "window",
        [ tc "series ring" `Quick test_window_series;
          tc "quantiles + slo" `Quick test_window_quantiles;
          QCheck_alcotest.to_alcotest prop_quantile_monotone;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_quantile_add_bounds
        ] );
      ( "report",
        [ tc "render and json" `Quick test_obs_report;
          tc "drop rows" `Quick test_drop_rows;
          tc "determinism" `Slow test_snapshot_determinism
        ] )
    ]
