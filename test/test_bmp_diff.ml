(* @bmp-diff: byte-identity harness for the live BMP telemetry plane.

   Every scenario wires each mux's BMP feed (Server.set_bmp_sink) into
   one Peering_measure.Monitor station and then demands that the
   station's reconstructed Adj-RIB-In is *byte-identical* — equal
   Marshal digests over the canonical dump — to the live mux table:

   1. Plain propagation: seeded reduced testbeds, peer routes fed at
      every site, plus a crash/restart cycle (Peer Down/Termination,
      re-Initiation, refeed). Also cross-checks every Stats Report
      against the reconstructed table's cardinality, and the
      bgp.session.state{peer,site} gauge against Monitor.peer_up
      across the crash.
   2. Scheduler churn: tenants admitted, announcing, pumped and
      evicted while the feeds run; the mirror must not drift.
   3. Chaos drills: >= 2 campaign drills (compound, fate_group) with a
      station attached inside the drill via Campaign.run_drill
      ~on_world; after recovery every mux's digest must match.
   4. Detector precision: clean runs (scenarios 1-3, with detectors
      armed on invariants that hold) raise zero alerts, and each
      injected MOAS / out-of-cone leak / flap storm / reachability dip
      raises its alert exactly once, dedup included.

   Widen the sweep with BMP_DIFF_SEEDS=<n> (default 5). *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen
module Engine = Peering_sim.Engine
module Monitor = Peering_measure.Monitor
module Campaign = Peering_fault.Campaign
module Metrics = Peering_obs.Metrics
module Event = Peering_obs.Event

let n_seeds =
  match Sys.getenv_opt "BMP_DIFF_SEEDS" with
  | None -> 5
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> invalid_arg "BMP_DIFF_SEEDS must be a positive integer")

let seeds = List.init n_seeds (fun i -> i + 1)
let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* ~100 ASes: enough peers per site for real tables, fast enough to
   rebuild per seed. The chaos scenario uses the campaign's own full
   default world instead. *)
let world seed =
  { Gen.seed;
    n_tier1 = 3;
    n_large_transit = 5;
    n_small_transit = 12;
    n_stub = 75;
    n_content = 5;
    target_prefixes = 150
  }

let params seed =
  { Testbed.default_params with
    Testbed.world = world seed;
    seed;
    university_sites = [ ("gatech01", 2); ("usc01", 2) ];
    with_amsix = false;
    with_phoenix = false;
    bilateral_requests = false
  }

let attach mon tb =
  List.iter
    (fun site ->
      let srv = Testbed.site_server site in
      Server.set_bmp_sink srv
        (Some (Monitor.attach mon ~mux:(Server.name srv))))
    (Testbed.sites tb)

let check_digests ~ctx mon tb =
  List.iter
    (fun site ->
      let srv = Testbed.site_server site in
      let name = Server.name srv in
      let live = Server.rib_digest srv in
      let rebuilt = Monitor.rib_digest mon ~mux:name in
      if live <> rebuilt then
        fail "%s: mux %s reconstruction diverged (live %s, rebuilt %s)" ctx
          name live rebuilt;
      if Monitor.buffered mon ~mux:name <> 0 then
        fail "%s: mux %s left %d bytes buffered mid-frame" ctx name
          (Monitor.buffered mon ~mux:name))
    (Testbed.sites tb)

let check_clean ~ctx mon =
  (match Monitor.alerts mon with
  | [] -> ()
  | a :: _ ->
    fail "%s: false-positive alert [%s] at %s: %s" ctx
      (Event.alert_kind_to_string a.Monitor.a_kind)
      (Prefix.to_string a.Monitor.a_prefix)
      a.Monitor.a_detail);
  if Monitor.parse_errors mon <> 0 then
    fail "%s: %d parse errors on a clean feed" ctx (Monitor.parse_errors mon)

(* Arm every detector on invariants that hold in an undisturbed run,
   so "zero alerts" actually exercises the detectors. *)
let arm_benign mon tb =
  Monitor.watch_moas mon
    (Prefix.of_string_exn "203.0.113.0/24")
    ~origin:(Asn.of_int 64999);
  Monitor.watch_flaps mon ~window_s:30.0 ~limit:1000
    (Prefix.of_string_exn "192.0.2.0/24");
  List.iter
    (fun site ->
      let name = Testbed.site_name site in
      List.iter
        (fun peer -> Monitor.allow_export mon ~mux:name ~peer (fun _ -> true))
        (Testbed.peers_at tb name))
    (Testbed.sites tb)

let gauge_value name labels =
  List.find_map
    (fun (r : Metrics.row) ->
      if
        r.Metrics.name = name
        && List.sort compare r.Metrics.labels = List.sort compare labels
      then
        match r.Metrics.value with
        | Metrics.Gauge_v { value; _ } -> Some value
        | _ -> None
      else None)
    (Metrics.snapshot ~include_volatile:true ())

let session_gauge srv peer =
  gauge_value "bgp.session.state"
    [ ("peer", Asn.to_string peer); ("site", Server.name srv) ]

(* ------------------------------------------------------------------ *)
(* Scenario 1: plain propagation + a crash/restart cycle *)

let feed_all tb =
  List.fold_left
    (fun acc site ->
      acc
      + Testbed.feed_peer_routes tb ~site:(Testbed.site_name site)
          ~max_per_peer:25 ())
    0 (Testbed.sites tb)

let check_stats_reports ~ctx mon tb =
  List.iter
    (fun site ->
      let name = Testbed.site_name site in
      List.iter
        (fun (asn, bindings) ->
          match Monitor.reported_routes mon ~mux:name ~peer:(Asn.of_int asn) with
          | None -> fail "%s: mux %s peer %d never sent a Stats Report" ctx name asn
          | Some n when n <> List.length bindings ->
            fail "%s: mux %s peer %d reports %d routes, station holds %d" ctx
              name asn n (List.length bindings)
          | Some _ -> ())
        (Monitor.adj_rib_dump mon ~mux:name))
    (Testbed.sites tb)

let scenario_propagation seed =
  Metrics.reset ();
  let ctx = Printf.sprintf "seed %d propagation" seed in
  let tb = Testbed.build ~params:(params seed) () in
  let engine = Testbed.engine tb in
  let mon = Monitor.create () in
  attach mon tb;
  arm_benign mon tb;
  let fed = feed_all tb in
  if fed = 0 then fail "%s: no routes fed" ctx;
  Engine.run_for engine 1.0;
  check_digests ~ctx mon tb;
  (* Crash one mux: Peer Down per peer + Termination must empty the
     mirror exactly like the live table, and the session gauge must
     agree with the station's notion of session state. *)
  let site = List.hd (Testbed.sites tb) in
  let srv = Testbed.site_server site in
  let name = Server.name srv in
  let peer = List.hd (Testbed.peers_at tb name) in
  (match session_gauge srv peer with
  | Some 5.0 -> ()
  | v -> fail "%s: gauge says %s before crash" ctx
           (match v with Some f -> string_of_float f | None -> "absent"));
  if not (Monitor.peer_up mon ~mux:name ~peer) then
    fail "%s: station missed Peer Up for %s" ctx (Asn.to_string peer);
  Server.crash srv;
  (match session_gauge srv peer with
  | Some 0.0 -> ()
  | _ -> fail "%s: gauge did not drop to 0 on crash" ctx);
  if Monitor.peer_up mon ~mux:name ~peer then
    fail "%s: station missed Peer Down for %s" ctx (Asn.to_string peer);
  if Monitor.mux_up mon ~mux:name then
    fail "%s: station missed the Termination" ctx;
  Engine.run_for engine 2.0;
  Server.restart srv;
  if not (Monitor.mux_up mon ~mux:name && Monitor.peer_up mon ~mux:name ~peer)
  then fail "%s: station missed the re-Initiation / Peer Up" ctx;
  (match session_gauge srv peer with
  | Some 5.0 -> ()
  | _ -> fail "%s: gauge did not return to 5 on restart" ctx);
  ignore (Testbed.feed_peer_routes tb ~site:name ~max_per_peer:25 ());
  Engine.run_for engine 1.0;
  check_digests ~ctx mon tb;
  (* Stats Reports against the reconstruction. *)
  List.iter
    (fun site -> Server.emit_bmp_stats (Testbed.site_server site))
    (Testbed.sites tb);
  check_stats_reports ~ctx mon tb;
  check_clean ~ctx mon

(* ------------------------------------------------------------------ *)
(* Scenario 2: scheduler admit/evict churn under a live feed *)

let scenario_scheduler seed =
  Metrics.reset ();
  let ctx = Printf.sprintf "seed %d scheduler" seed in
  let tb = Testbed.build ~params:(params seed) () in
  let engine = Testbed.engine tb in
  let mon = Monitor.create () in
  attach mon tb;
  arm_benign mon tb;
  ignore (feed_all tb);
  let sched =
    Scheduler.create ~vet:Peering_check.Admission.vet ~quota:3
      ~round_interval:0.5
      ~extra_supply:[ Prefix.of_string_exn "184.164.192.0/19" ]
      tb
  in
  for i = 0 to 5 do
    ignore
      (Scheduler.admit sched
         (Scheduler.proposal ~n_prefixes:1 ~sites:[]
            (Printf.sprintf "tenant-%02d" i)))
  done;
  List.iter
    (fun tenant ->
      List.iter
        (fun p ->
          match Scheduler.request_announce sched ~tenant p with
          | Ok () -> ()
          | Error e -> fail "%s: %s announce refused: %s" ctx tenant e)
        (Scheduler.leased_prefixes sched tenant))
    (Scheduler.tenants sched);
  ignore (Scheduler.pump sched);
  Engine.run_for engine 1.0;
  (* Feeds keep flowing while a tenant is evicted mid-run. *)
  ignore (feed_all tb);
  (match Scheduler.tenants sched with
  | victim :: _ ->
    ignore (Scheduler.evict sched ~tenant:victim ~reason:"bmp-diff churn")
  | [] -> fail "%s: no tenants admitted" ctx);
  ignore (Scheduler.pump sched);
  Engine.run_for engine 1.0;
  ignore (feed_all tb);
  Engine.run_for engine 1.0;
  check_digests ~ctx mon tb;
  check_clean ~ctx mon

(* ------------------------------------------------------------------ *)
(* Scenario 3: chaos drills with the station attached inside *)

let scenario_drill seed drill =
  Metrics.reset ();
  let ctx = Printf.sprintf "seed %d drill %s" seed drill in
  let captured = ref None in
  let mon = Monitor.create () in
  let outcome, _ =
    Campaign.run_drill
      ~on_world:(fun tb ->
        attach mon tb;
        arm_benign mon tb;
        captured := Some tb)
      ~seed drill
  in
  if not outcome.Campaign.reconverged then
    fail "%s: drill did not reconverge" ctx;
  match !captured with
  | None -> fail "%s: on_world never ran" ctx
  | Some tb ->
    check_digests ~ctx mon tb;
    check_clean ~ctx mon

(* ------------------------------------------------------------------ *)
(* Scenario 4: every injected anomaly raises exactly once *)

let count_kind mon kind =
  List.length
    (List.filter (fun a -> a.Monitor.a_kind = kind) (Monitor.alerts mon))

let scenario_detectors seed =
  Metrics.reset ();
  let ctx = Printf.sprintf "seed %d detectors" seed in
  let tb = Testbed.build ~params:(params seed) () in
  let engine = Testbed.engine tb in
  let mon = Monitor.create () in
  attach mon tb;
  ignore (feed_all tb);
  let site = List.hd (Testbed.sites tb) in
  let name = Testbed.site_name site in
  let srv = Testbed.site_server site in
  let p1, p2 =
    match Testbed.peers_at tb name with
    | a :: b :: _ -> (a, b)
    | _ -> (fail "%s: fewer than two peers" ctx : Asn.t * Asn.t)
  in
  let moas = Prefix.of_string_exn "203.0.113.0/24" in
  let leak = Prefix.of_string_exn "198.51.100.0/24" in
  let flap = Prefix.of_string_exn "192.0.2.0/24" in
  let dip = Prefix.of_string_exn "100.66.0.0/24" in
  Monitor.watch_moas mon moas ~origin:(Asn.of_int 65010);
  Monitor.allow_export mon ~mux:name ~peer:p1 (fun p ->
      Prefix.compare p leak <> 0);
  Monitor.watch_flaps mon ~window_s:60.0 ~limit:4 flap;
  Monitor.watch_reach mon dip ~floor:2;
  (* MOAS: injected twice, alerted once (dedup). *)
  Server.learn_route srv ~peer:p1 ~path:[ p1; Asn.of_int 65010 ] moas;
  Server.learn_route srv ~peer:p2 ~path:[ p2; Asn.of_int 65666 ] moas;
  Server.learn_route srv ~peer:p2 ~path:[ p2; Asn.of_int 65666 ] moas;
  (* Leak: outside p1's registered cone, twice. *)
  Server.learn_route srv ~peer:p1 ~path:[ p1; Asn.of_int 65020 ] leak;
  Server.learn_route srv ~peer:p1 ~path:[ p1; Asn.of_int 65020 ] leak;
  (* Flap storm: far past the limit, still one alert. *)
  for _ = 1 to 4 do
    Engine.run_for engine 0.25;
    Server.learn_route srv ~peer:p2 ~path:[ p2; Asn.of_int 65030 ] flap;
    Engine.run_for engine 0.25;
    Server.withdraw_learned srv ~peer:p2 flap
  done;
  (* Reach dip: two tables arm the floor, a crash breaches it. *)
  Server.learn_route srv ~peer:p1 ~path:[ p1; Asn.of_int 65040 ] dip;
  Server.learn_route srv ~peer:p2 ~path:[ p2; Asn.of_int 65040 ] dip;
  Engine.run_for engine 0.5;
  Server.crash srv;
  Engine.run_for engine 1.0;
  Server.restart srv;
  ignore (Testbed.feed_peer_routes tb ~site:name ~max_per_peer:25 ());
  Engine.run_for engine 0.5;
  List.iter
    (fun (kind, label) ->
      match count_kind mon kind with
      | 1 -> ()
      | n -> fail "%s: %s raised %d times, want exactly 1" ctx label n)
    [ (Event.Moas, "MOAS");
      (Event.Out_of_cone_leak, "out-of-cone leak");
      (Event.Flap_churn, "flap churn");
      (Event.Reach_dip, "reach dip")
    ];
  check_digests ~ctx mon tb

(* ------------------------------------------------------------------ *)

let () =
  List.iter
    (fun seed ->
      scenario_propagation seed;
      scenario_scheduler seed;
      scenario_detectors seed)
    seeds;
  (* Drills build the campaign's full default world; two drill classes
     per seed as the acceptance gate demands. *)
  List.iter
    (fun seed ->
      scenario_drill seed "compound";
      scenario_drill (seed + 50) "fate_group")
    seeds;
  Printf.printf
    "bmp-diff: %d seeds x (propagation + scheduler churn + detectors) + %d \
     drill runs: reconstruction byte-identical, alerts exact\n"
    n_seeds (2 * n_seeds)
