(* Self-hosting gate for the analyzer: runs every pass over the repo's
   own config fixtures, example experiment specs and verification
   worlds. Any diagnostic at all fails the build — a finding here is a
   regression either in the fixture or in the analyzer itself (false
   positive).

   Specs are checked both individually and as a batch (cross-spec
   conflicts); every .world gets all given specs attached, so
   check_world also exercises the per-world spec passes. *)

open Peering_check

let read file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "check_selfhost: no files given";
    exit 2
  end;
  let configs = ref [] and specs = ref [] and worlds = ref [] in
  let parse_fail file e =
    Printf.eprintf "check_selfhost: %s: parse error: %s\n" file e;
    exit 2
  in
  List.iter
    (fun file ->
      let text = read file in
      if Filename.check_suffix file ".exp" then
        match Spec.parse text with
        | Ok s -> specs := (Some file, s) :: !specs
        | Error e -> parse_fail file e
      else if Filename.check_suffix file ".world" then
        match World.parse text with
        | Ok w -> worlds := (file, w) :: !worlds
        | Error e -> parse_fail file e
      else
        match Peering_router.Config.parse text with
        | Ok c -> configs := (Some file, c) :: !configs
        | Error e -> parse_fail file e)
    files;
  let specs = List.rev !specs in
  let world_diags =
    List.concat_map
      (fun (file, w) ->
        List.iter (fun (f, s) -> World.add_spec ?file:f w s) specs;
        List.map (Diagnostic.with_file file) (Check.check_world w))
      (List.rev !worlds)
  in
  let diags =
    Check.check_configs (List.rev !configs)
    @ Check.check_specs specs
    @ world_diags
  in
  List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf
      "check_selfhost: %d diagnostic(s) on supposedly-clean fixtures\n"
      (List.length diags);
    exit 1
  end;
  Printf.printf "check_selfhost: %d file(s) clean\n" (List.length files)
