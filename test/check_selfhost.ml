(* Self-hosting gate for the analyzer: runs every pass over the repo's
   own config fixtures and example experiment specs. Any diagnostic at
   all fails the build — a finding here is a regression either in the
   fixture or in the analyzer itself (false positive). *)

open Peering_check

let read file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "check_selfhost: no files given";
    exit 2
  end;
  let configs = ref [] and specs = ref [] in
  List.iter
    (fun file ->
      let text = read file in
      if Filename.check_suffix file ".exp" then
        match Spec.parse text with
        | Ok s -> specs := (file, s) :: !specs
        | Error e ->
          Printf.eprintf "check_selfhost: %s: parse error: %s\n" file e;
          exit 2
      else
        match Peering_router.Config.parse text with
        | Ok c -> configs := (Some file, c) :: !configs
        | Error e ->
          Printf.eprintf "check_selfhost: %s: parse error: %s\n" file e;
          exit 2)
    files;
  let diags =
    Check.check_configs (List.rev !configs)
    @ List.concat_map
        (fun (file, s) -> Check.check_spec ~file s)
        (List.rev !specs)
  in
  List.iter (fun d -> print_endline (Diagnostic.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf
      "check_selfhost: %d diagnostic(s) on supposedly-clean fixtures\n"
      (List.length diags);
    exit 1
  end;
  Printf.printf "check_selfhost: %d file(s) clean\n" (List.length files)
