(* @sched-isolation: seeded property harness for the multi-tenant
   scheduler.

   For every seed the harness builds a reduced-size testbed, admits a
   randomized batch of tenant proposals in a seed-dependent order, and
   checks the scheduler's three isolation guarantees:

   1. No two admitted experiments ever hold overlapping prefixes, and
      the scheduler's own runtime oracle agrees
      ([isolation_violations = 0]).
   2. Withdrawing (evicting) one tenant never changes any other
      tenant's per-prefix reach, measured against the propagation
      oracle ([Testbed.reach_count]).
   3. Admission verdicts and the full schedule are byte-identical
      across two same-seed runs: the decision log and the
      [peering-sched/1] JSON document are compared byte for byte.

   Widen the sweep with SCHED_SEEDS=<n> (default 10). *)

open Peering_net
open Peering_core
module Gen = Peering_topo.Gen

let n_seeds =
  match Sys.getenv_opt "SCHED_SEEDS" with
  | None -> 10
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None -> invalid_arg "SCHED_SEEDS must be a positive integer")

let seeds = List.init n_seeds (fun i -> i + 1)

(* ~100 ASes: enough topology for distinct catchments, fast enough to
   rebuild for every seed (twice, for the byte-identity oracle). *)
let world seed =
  { Gen.seed;
    n_tier1 = 3;
    n_large_transit = 5;
    n_small_transit = 12;
    n_stub = 75;
    n_content = 5;
    target_prefixes = 150
  }

let params seed =
  { Testbed.default_params with
    Testbed.world = world seed;
    seed;
    university_sites = [ ("gatech01", 2); ("usc01", 2) ];
    with_amsix = false;
    with_phoenix = false;
    bilateral_requests = false
  }

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

(* ------------------------------------------------------------------ *)
(* One scenario: a deterministic function of the seed.

   Builds the testbed, admits [n_tenants] randomized proposals
   (some deliberately conflicting: duplicate ids, cross-tenant poison
   targets), lets every admitted tenant announce its lease, runs the
   engine, and returns the scheduler plus the testbed for oracle
   checks. *)

let n_tenants = 14

let run_scenario seed =
  let tb = Testbed.build ~params:(params seed) () in
  let rng = Random.State.make [| 0x5ced; seed |] in
  let sched =
    Scheduler.create ~vet:Peering_check.Admission.vet
      ~quota:(2 + Random.State.int rng 3)
      ~round_interval:0.5
      ~extra_supply:[ Prefix.of_string_exn "184.164.192.0/19" ]
      tb
  in
  let site_names = List.map Testbed.site_name (Testbed.sites tb) in
  let pick_sites () =
    match Random.State.int rng 3 with
    | 0 -> []  (* all sites *)
    | _ ->
      [ List.nth site_names (Random.State.int rng (List.length site_names)) ]
  in
  (* Random admission order over a fixed tenant population. *)
  let order = Array.init n_tenants (fun i -> i) in
  for i = n_tenants - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  Array.iter
    (fun i ->
      let tenant = Printf.sprintf "tenant-%02d" i in
      let poison_targets =
        (* every third tenant declares poison targets; some of them
           target a previously admitted tenant's private origin (must
           be rejected), the rest poison a harmless public ASN with
           board approval (admitted). *)
        if i mod 3 <> 0 then []
        else
          match Scheduler.tenants sched with
          | prior :: _ when Random.State.bool rng -> (
            match Scheduler.client sched prior with
            | Some c -> (Client.experiment c).Experiment.private_asns
            | None -> [])
          | _ -> [ Asn.of_int 3356 ]
      in
      let p =
        Scheduler.proposal
          ~n_prefixes:(1 + Random.State.int rng 2)
          ~may_poison:(poison_targets <> [])
          ~poison_targets ~sites:(pick_sites ()) tenant
      in
      (* duplicate-id probes ride along; both verdicts land in the log *)
      ignore (Scheduler.admit sched p);
      if Random.State.int rng 4 = 0 then ignore (Scheduler.admit sched p))
    order;
  (* every admitted tenant announces its whole lease *)
  List.iter
    (fun tenant ->
      List.iter
        (fun p ->
          match Scheduler.request_announce sched ~tenant p with
          | Ok () -> ()
          | Error e -> fail "seed %d: %s announce refused: %s" seed tenant e)
        (Scheduler.leased_prefixes sched tenant))
    (Scheduler.tenants sched);
  ignore (Scheduler.pump sched);
  (tb, sched)

(* ------------------------------------------------------------------ *)
(* Oracle 1: pairwise lease disjointness *)

let check_no_overlap seed sched =
  let leases =
    List.concat_map
      (fun t ->
        List.map (fun p -> (t, p)) (Scheduler.leased_prefixes sched t))
      (Scheduler.tenants sched)
  in
  List.iter
    (fun (t1, p1) ->
      List.iter
        (fun (t2, p2) ->
          if t1 <> t2 && Prefix.overlaps p1 p2 then
            fail "seed %d: leases overlap: %s holds %s, %s holds %s" seed t1
              (Prefix.to_string p1) t2 (Prefix.to_string p2))
        leases)
    leases;
  (match Scheduler.isolation_violations sched with
  | 0 -> ()
  | n -> fail "seed %d: scheduler reports %d isolation violations" seed n);
  List.length leases

(* Oracle 2: evicting one tenant leaves every other tenant's
   per-prefix reach untouched, and zeroes its own. *)

let check_eviction_isolation seed tb sched =
  match Scheduler.tenants sched with
  | [] | [ _ ] -> ()
  | victim :: others ->
    let reach_of t =
      List.map (fun p -> (p, Testbed.reach_count tb p))
        (Scheduler.leased_prefixes sched t)
    in
    let before = List.map (fun t -> (t, reach_of t)) others in
    let victim_leases = Scheduler.leased_prefixes sched victim in
    if not (Scheduler.evict sched ~tenant:victim ~reason:"isolation drill")
    then fail "seed %d: evicting %s failed" seed victim;
    List.iter
      (fun p ->
        let r = Testbed.reach_count tb p in
        if r <> 0 then
          fail "seed %d: %s evicted but %s still reaches %d ASes" seed victim
            (Prefix.to_string p) r)
      victim_leases;
    List.iter
      (fun (t, reaches) ->
        List.iter
          (fun (p, r0) ->
            let r1 = Testbed.reach_count tb p in
            if r1 <> r0 then
              fail
                "seed %d: evicting %s changed %s's reach for %s (%d -> %d)"
                seed victim t (Prefix.to_string p) r0 r1)
          reaches)
      before

(* Oracle 3: the decision log and the JSON schedule are byte-identical
   across two same-seed runs. *)

let snapshot sched =
  String.concat "\n" (Scheduler.log sched)
  ^ "\n---\n"
  ^ Peering_obs.Json.to_string ~indent:2 (Scheduler.to_json sched)

let () =
  Printf.printf
    "sched-isolation: %d seeds x %d tenants (set SCHED_SEEDS to widen)\n%!"
    n_seeds n_tenants;
  List.iter
    (fun seed ->
      Peering_obs.Metrics.reset ();
      let tb, sched = run_scenario seed in
      let admitted = List.length (Scheduler.tenants sched) in
      if admitted < 2 then
        fail "seed %d: only %d tenants admitted; scenario too weak" seed
          admitted;
      let leases = check_no_overlap seed sched in
      check_eviction_isolation seed tb sched;
      ignore (Scheduler.pump sched);
      let snap_a = snapshot sched in
      (* replay: same seed, fresh world — must be byte-identical up to
         the point where the first run diverges into the eviction
         drill, so replay the drill too. *)
      Peering_obs.Metrics.reset ();
      let tb2, sched2 = run_scenario seed in
      check_eviction_isolation seed tb2 sched2;
      ignore (Scheduler.pump sched2);
      let snap_b = snapshot sched2 in
      if not (String.equal snap_a snap_b) then begin
        prerr_endline "--- run A ---";
        prerr_endline snap_a;
        prerr_endline "--- run B ---";
        prerr_endline snap_b;
        fail "seed %d: same-seed schedules differ" seed
      end;
      Printf.printf
        "  seed %2d: %2d admitted, %2d leases, eviction isolated, replay \
         byte-identical\n%!"
        seed admitted leases)
    seeds;
  Printf.printf "sched-isolation: all %d seeds passed\n%!" n_seeds
