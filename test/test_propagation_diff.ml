(* Differential harness for the parallel propagation engine.

   [Propagation.propagate] (round-synchronized, domain-sharded) must
   produce a route table byte-identical to the sequential reference
   [Propagation.propagate_seq] — route by route: path, learned_over,
   ann_index — for every seed, world size and domain count, including
   runs exercising [?deny], [?export_to], [~down], multi-origin anycast
   and path poisoning. The seed sweep widens without code changes via
   PROPAGATION_DIFF_SEEDS=<n> (default 10 seeds). *)

open Peering_net
open Peering_topo

let check = Alcotest.check
let tc = Alcotest.test_case

let n_seeds =
  match Sys.getenv_opt "PROPAGATION_DIFF_SEEDS" with
  | None -> 10
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | Some _ | None ->
      invalid_arg "PROPAGATION_DIFF_SEEDS must be a positive integer")

let seeds = List.init n_seeds (fun i -> i + 1)
let domain_counts = [ 1; 2; 4; 8 ]

(* Three world sizes: ~100, ~900 and ~3000 ASes. *)
let sizes =
  [ ( "~100as",
      { Gen.seed = 0;
        n_tier1 = 3;
        n_large_transit = 5;
        n_small_transit = 12;
        n_stub = 75;
        n_content = 5;
        target_prefixes = 150
      } );
    ( "~900as",
      { Gen.seed = 0;
        n_tier1 = 6;
        n_large_transit = 20;
        n_small_transit = 100;
        n_stub = 750;
        n_content = 24;
        target_prefixes = 400
      } );
    ( "~3000as",
      { Gen.seed = 0;
        n_tier1 = 10;
        n_large_transit = 30;
        n_small_transit = 240;
        n_stub = 2670;
        n_content = 50;
        target_prefixes = 600
      } )
  ]

let route_str (rt : Propagation.route) =
  Printf.sprintf "{over=%s; path=[%s]; ann=%d}"
    (match rt.Propagation.learned_over with
    | None -> "origin"
    | Some r -> Relationship.to_string r)
    (String.concat " " (List.map Asn.to_string rt.Propagation.path))
    rt.Propagation.ann_index

(* Full-table equality, with the first diverging ASN in the failure. *)
let check_tables ~what seq par =
  let ts = Propagation.table seq and tp = Propagation.table par in
  let rec cmp = function
    | [], [] -> ()
    | (a, ra) :: _, [] ->
      Alcotest.failf "%s: %s=%s only in sequential table" what
        (Asn.to_string a) (route_str ra)
    | [], (a, ra) :: _ ->
      Alcotest.failf "%s: %s=%s only in parallel table" what
        (Asn.to_string a) (route_str ra)
    | (a, ra) :: rest_a, (b, rb) :: rest_b ->
      if not (Asn.equal a b) then
        Alcotest.failf "%s: holder sets diverge at %s vs %s" what
          (Asn.to_string a) (Asn.to_string b)
      else if ra <> rb then
        Alcotest.failf "%s: %s selected %s sequentially but %s in parallel"
          what (Asn.to_string a) (route_str ra) (route_str rb)
      else cmp (rest_a, rest_b)
  in
  cmp (ts, tp)

(* The announcement workloads differentially tested per world. Each is
   [name, deny, down, announcements]. *)
let scenarios (w : Gen.world) =
  let g = w.Gen.graph in
  let origin = List.hd w.Gen.stubs in
  let p = List.hd (As_graph.prefixes_of g origin) in
  let content = List.hd w.Gen.content in
  let transit1 = List.nth w.Gen.small_transit 1 in
  let transit3 = List.nth w.Gen.small_transit 3 in
  let deny_some asn (_ : Propagation.announcement) = Asn.to_int asn mod 7 = 3 in
  let first_provider = List.hd (As_graph.providers g origin) in
  [ ("plain", None, Asn.Set.empty, [ Propagation.announce origin p ]);
    ("deny", Some deny_some, Asn.Set.empty, [ Propagation.announce origin p ]);
    ( "export-to",
      None,
      Asn.Set.empty,
      [ Propagation.announce ~export_to:(Asn.Set.singleton first_provider)
          origin p
      ] );
    ( "down",
      None,
      Asn.Set.singleton transit1,
      [ Propagation.announce origin p ] );
    ( "anycast",
      None,
      Asn.Set.empty,
      [ Propagation.announce origin p; Propagation.announce content p ] );
    ( "poison",
      None,
      Asn.Set.empty,
      [ Propagation.announce ~path_suffix:[ transit3 ] origin p ] );
    ( "deny+export-to+down",
      Some deny_some,
      Asn.Set.singleton transit1,
      [ Propagation.announce ~export_to:(Asn.Set.of_list (As_graph.providers g origin))
          origin p
      ] )
  ]

let diff_one_world params seed =
  let w = Gen.generate { params with Gen.seed } in
  let g = w.Gen.graph in
  List.iter
    (fun (name, deny, down, anns) ->
      let seq = Propagation.propagate_seq ?deny ~down g anns in
      List.iter
        (fun domains ->
          let par = Propagation.propagate ?deny ~down ~domains g anns in
          check_tables
            ~what:(Printf.sprintf "seed %d %s domains=%d" seed name domains)
            seq par)
        domain_counts)
    (scenarios w)

let test_differential params () =
  List.iter (fun seed -> diff_one_world params seed) seeds

(* ------------------------------------------------------------------ *)
(* Structural properties of every adopted table: valley-freeness,
   loop-freeness, origin-termination, catchment accounting, sorted
   accessor output. *)

(* Walking the full path from the selecting AS toward the origin, a
   provider or peer edge must never follow a peer or customer edge —
   Gao–Rexford's no-valley, at-most-one-peak rule. Unlabelled adjacent
   pairs come from poisoned suffixes and end the walk. *)
let valley_free g full_path =
  let rec rels acc = function
    | a :: (b :: _ as rest) -> (
      match As_graph.relationship g a b with
      | Some r -> rels (r :: acc) rest
      | None -> List.rev acc)
    | _ -> List.rev acc
  in
  (* Walking self -> origin the only legal shape is
     Provider* Peer? Customer*. *)
  let rec ok descended = function
    | [] -> true
    | Relationship.Provider :: rest -> (not descended) && ok false rest
    | Relationship.Peer :: rest -> (not descended) && ok true rest
    | Relationship.Customer :: rest -> ok true rest
  in
  ok false (rels [] full_path)

let loop_free full_path =
  let sorted = List.sort Asn.compare full_path in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> (not (Asn.equal a b)) && no_dup rest
    | _ -> true
  in
  no_dup sorted

let rec is_sorted = function
  | a :: (b :: _ as rest) -> Asn.compare a b < 0 && is_sorted rest
  | _ -> true

let check_table_properties ~what g anns r =
  let anns = Array.of_list anns in
  List.iter
    (fun (asn, (rt : Propagation.route)) ->
      let fp = asn :: rt.Propagation.path in
      let ann = anns.(rt.Propagation.ann_index) in
      let suffix_len = List.length ann.Propagation.path_suffix in
      (* Valley-freeness holds for the propagated portion only; the
         poisoned suffix is fake hops past the origin. *)
      let propagated =
        List.filteri (fun i _ -> i < List.length fp - suffix_len) fp
      in
      if not (valley_free g propagated) then
        Alcotest.failf "%s: valley in path at %s: %s" what (Asn.to_string asn)
          (route_str rt);
      if not (loop_free fp) then
        Alcotest.failf "%s: loop in path at %s: %s" what (Asn.to_string asn)
          (route_str rt);
      (* The path must end at the announcement's origin followed by its
         poisoned suffix (if any). *)
      let expected_tail =
        ann.Propagation.origin :: ann.Propagation.path_suffix
      in
      let tail =
        let n = List.length fp in
        List.filteri (fun i _ -> i >= n - suffix_len - 1) fp
      in
      if tail <> expected_tail then
        Alcotest.failf "%s: path at %s does not end at its origin: %s" what
          (Asn.to_string asn) (route_str rt))
    (Propagation.table r);
  let catchment_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Propagation.catchment r)
  in
  check Alcotest.int
    (Printf.sprintf "%s: catchment sums to reachable_count" what)
    (Propagation.reachable_count r)
    catchment_total;
  if not (is_sorted (Propagation.reachable r)) then
    Alcotest.failf "%s: reachable not sorted" what

let test_properties () =
  let params = List.assoc "~900as" sizes in
  List.iter
    (fun seed ->
      let w = Gen.generate { params with Gen.seed } in
      let g = w.Gen.graph in
      List.iter
        (fun (name, deny, down, anns) ->
          let r = Propagation.propagate ?deny ~down g anns in
          check_table_properties
            ~what:(Printf.sprintf "seed %d %s" seed name)
            g anns r;
          let via = List.hd w.Gen.large_transit in
          if not (is_sorted (Propagation.routes_via r via)) then
            Alcotest.failf "seed %d %s: routes_via not sorted" seed name)
        (scenarios w))
    seeds

(* ------------------------------------------------------------------ *)
(* Determinism regression: the sequential engine's queue visit order is
   a function of the inputs alone (queues are seeded in sorted ASN
   order, not Hashtbl.iter order), so two identical runs produce
   identical visit traces. *)

let test_visit_trace_deterministic () =
  let params = List.assoc "~900as" sizes in
  let w = Gen.generate { params with Gen.seed = 42 } in
  let g = w.Gen.graph in
  let origin = List.hd w.Gen.stubs in
  let p = List.hd (As_graph.prefixes_of g origin) in
  let anns =
    [ Propagation.announce origin p;
      Propagation.announce (List.hd w.Gen.content) p
    ]
  in
  let trace () =
    let visits = ref [] in
    let r =
      Propagation.propagate_seq ~visit:(fun a -> visits := a :: !visits) g anns
    in
    (List.rev !visits, r)
  in
  let t1, r1 = trace () in
  let t2, r2 = trace () in
  check Alcotest.bool "trace non-empty" true (t1 <> []);
  check
    Alcotest.(list int)
    "identical visit traces"
    (List.map Asn.to_int t1) (List.map Asn.to_int t2);
  check_tables ~what:"same-input reruns" r1 r2

(* ------------------------------------------------------------------ *)
(* Relationship truth tables and the total-order laws of the merge
   comparator: the parallel engine's stable merge is deterministic
   only because [better] is a strict total order. *)

let all_rels = [ Relationship.Customer; Relationship.Provider; Relationship.Peer ]

let test_invert_truth_table () =
  check Alcotest.bool "invert customer" true
    (Relationship.invert Relationship.Customer = Relationship.Provider);
  check Alcotest.bool "invert provider" true
    (Relationship.invert Relationship.Provider = Relationship.Customer);
  check Alcotest.bool "invert peer" true
    (Relationship.invert Relationship.Peer = Relationship.Peer);
  List.iter
    (fun r ->
      check Alcotest.bool "invert involutive" true
        (Relationship.invert (Relationship.invert r) = r))
    all_rels

let test_exports_to_truth_table () =
  let expect learned_from to_rel =
    match (learned_from, to_rel) with
    (* own routes and customer routes export everywhere *)
    | None, _ | Some Relationship.Customer, _ -> true
    (* peer and provider routes export only to customers *)
    | (Some Relationship.Peer | Some Relationship.Provider), to_rel ->
      to_rel = Relationship.Customer
  in
  List.iter
    (fun learned_from ->
      List.iter
        (fun to_rel ->
          check Alcotest.bool
            (Printf.sprintf "exports_to %s -> %s"
               (match learned_from with
               | None -> "origin"
               | Some r -> Relationship.to_string r)
               (Relationship.to_string to_rel))
            (expect learned_from to_rel)
            (Relationship.exports_to ~learned_from to_rel))
        all_rels)
    (None :: List.map Option.some all_rels)

let test_class_pref () =
  check Alcotest.int "origin" 3 (Propagation.class_pref None);
  check Alcotest.int "customer" 2
    (Propagation.class_pref (Some Relationship.Customer));
  check Alcotest.int "peer" 1 (Propagation.class_pref (Some Relationship.Peer));
  check Alcotest.int "provider" 0
    (Propagation.class_pref (Some Relationship.Provider))

let route_arb =
  QCheck.make
    ~print:(fun r -> route_str r)
    QCheck.Gen.(
      map3
        (fun cls path idx ->
          { Propagation.learned_over = cls;
            path = List.map Asn.of_int path;
            ann_index = idx
          })
        (oneofl (None :: List.map Option.some all_rels))
        (list_size (int_range 0 4) (int_range 1 30))
        (int_range 0 3))

(* The sort key [better] compares on: full route content. Equal keys
   mean the routes are indistinguishable to the comparator, so the
   totality law is stated modulo the key. *)
let key (r : Propagation.route) =
  ( Propagation.class_pref r.Propagation.learned_over,
    List.map Asn.to_int r.Propagation.path,
    r.Propagation.ann_index )

let prop_better_irreflexive =
  QCheck.Test.make ~name:"better is irreflexive" ~count:200 route_arb
    (fun r -> not (Propagation.better r r))

let prop_better_antisymmetric =
  QCheck.Test.make ~name:"better is antisymmetric" ~count:500
    (QCheck.pair route_arb route_arb)
    (fun (a, b) -> not (Propagation.better a b && Propagation.better b a))

let prop_better_total =
  QCheck.Test.make ~name:"better is total on distinct keys" ~count:500
    (QCheck.pair route_arb route_arb)
    (fun (a, b) ->
      key a = key b || Propagation.better a b || Propagation.better b a)

let prop_better_transitive =
  QCheck.Test.make ~name:"better is transitive" ~count:1000
    (QCheck.triple route_arb route_arb route_arb)
    (fun (a, b, c) ->
      (not (Propagation.better a b && Propagation.better b c))
      || Propagation.better a c)

(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "propagation-diff: %d seeds x %d domain counts (set \
                 PROPAGATION_DIFF_SEEDS to widen)\n%!"
    n_seeds
    (List.length domain_counts);
  Alcotest.run "propagation-diff"
    [ ( "differential",
        List.map
          (fun (label, params) ->
            tc (Printf.sprintf "parallel = sequential (%s)" label) `Quick
              (test_differential params))
          sizes );
      ( "properties",
        [ tc "valley-free, loop-free, origin-terminated, accounted" `Quick
            test_properties
        ] );
      ( "determinism",
        [ tc "visit trace identical across reruns" `Quick
            test_visit_trace_deterministic
        ] );
      ( "order-laws",
        [ tc "invert truth table" `Quick test_invert_truth_table;
          tc "exports_to truth table" `Quick test_exports_to_truth_table;
          tc "class_pref values" `Quick test_class_pref;
          QCheck_alcotest.to_alcotest prop_better_irreflexive;
          QCheck_alcotest.to_alcotest prop_better_antisymmetric;
          QCheck_alcotest.to_alcotest prop_better_total;
          QCheck_alcotest.to_alcotest prop_better_transitive
        ] )
    ]
