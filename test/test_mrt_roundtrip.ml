(* Differential harness for the wire codec rework and the MRT dump
   round trip.

   Two invariants, on every seed:

   1. Round trip: a dump generated from a seeded world — RIB table plus
      BGP4MP update stream — re-encodes byte-for-byte after decoding
      (the writer is canonical, so decode ∘ encode = id on our own
      output).

   2. Cursor ≡ eager: [Wire.decode] (the zero-copy view path) and
      [Wire.decode_eager] (the retained linear reference) return the
      same message and the same [error] value on every corpus frame —
      including truncations at every offset, corrupted marker/length/
      type header bytes, attribute-length overruns, and seeded random
      byte flips.

   Run alone with `dune build @mrt-roundtrip`; widen the sweep with
   MRT_ROUNDTRIP_SEEDS=<n> (default 5). *)

open Peering_bgp
module Gen = Peering_topo.Gen
module Mrt = Peering_measure.Mrt

let n_seeds =
  match Sys.getenv_opt "MRT_ROUNDTRIP_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 5)
  | None -> 5

let sizes =
  [ ( "tiny",
      { Gen.default_params with
        Gen.n_tier1 = 4;
        n_large_transit = 6;
        n_small_transit = 12;
        n_stub = 40;
        n_content = 6;
        target_prefixes = 150
      } );
    ( "small",
      { Gen.default_params with
        Gen.n_tier1 = 4;
        n_large_transit = 8;
        n_small_transit = 20;
        n_stub = 90;
        n_content = 8;
        target_prefixes = 300
      } )
  ]

let dump_of ~seed params =
  let world = Gen.generate { params with Gen.seed } in
  Mrt.encode
    (Mrt.table_of_world ~seed world @ Mrt.updates_of_world ~seed world)

(* ------------------------------------------------------------------ *)
(* Invariant 1: dump → parse → re-dump is the identity. *)

let roundtrip_identity () =
  for seed = 1 to n_seeds do
    List.iter
      (fun (size, params) ->
        let bytes1 = dump_of ~seed params in
        match Mrt.read_all bytes1 with
        | Error e ->
          Alcotest.failf "%s seed=%d: own dump failed to parse: %s" size seed
            (Mrt.error_to_string e)
        | Ok records ->
          let bytes2 = Mrt.encode records in
          if not (Bytes.equal bytes1 bytes2) then
            Alcotest.failf
              "%s seed=%d: re-encoded dump differs (%d vs %d bytes)" size
              seed (Bytes.length bytes1) (Bytes.length bytes2))
      sizes
  done

(* ------------------------------------------------------------------ *)
(* Invariant 2: cursor and eager agree, message and error alike. *)

let show = function
  | Ok (m, n) -> Format.asprintf "Ok(%a, %d)" Message.pp m n
  | Error e -> Printf.sprintf "Error(%s)" (Wire.error_to_string e)

(* Message.t and Wire.error are plain data, so structural equality is
   the right comparison. *)
let agree name opts buf ~pos =
  let cursor = Wire.decode opts buf ~pos in
  let eager = Wire.decode_eager opts buf ~pos in
  if cursor <> eager then
    Alcotest.failf "%s: cursor %s / eager %s" name (show cursor) (show eager)

(* Every frame in the dump's BGP4MP stream, with the session options
   its subtype implies. *)
let corpus_of_dump bytes =
  match Mrt.read_all bytes with
  | Error e -> Alcotest.failf "corpus dump unreadable: %s" (Mrt.error_to_string e)
  | Ok records ->
    List.filter_map
      (fun t ->
        match t.Mrt.record with
        | Mrt.Bgp4mp { as4; payload; _ } ->
          Some ({ Wire.four_octet_asn = as4; add_path = false }, payload)
        | _ -> None)
      records

(* Handcrafted frames covering the message kinds and attribute shapes
   the synthetic worlds do not produce. *)
let handcrafted =
  let open Message in
  let pfx s = Peering_net.Prefix.of_string_exn s in
  let asn = Peering_net.Asn.of_int in
  let ip = Peering_net.Ipv4.of_int in
  let attrs =
    Attrs.make ~origin:Attrs.EGP
      ~as_path:(As_path.of_asns [ asn 65001; asn 65002 ])
      ~med:42 ~local_pref:200 ~atomic_aggregate:true
      ~aggregator:(asn 65001, ip 0x0A000001)
      ~communities:[ Community.make 65001 100; Community.make 65001 200 ]
      ~next_hop:(ip 0x0A000002) ()
  in
  let two = Wire.default_opts in
  let four = { Wire.four_octet_asn = true; add_path = false } in
  let addpath = { Wire.four_octet_asn = true; add_path = true } in
  [ (two, Keepalive);
    (two, Notification { code = 6; subcode = 2; reason = "shutdown" });
    ( two,
      Open
        { version = 4;
          asn = asn 65010;
          hold_time = 90;
          router_id = ip 0x0A0A0A0A;
          capabilities = []
        } );
    (two, update_of_announce (pfx "203.0.113.0/24") attrs);
    (four, update_of_announce (pfx "203.0.113.0/24") attrs);
    (addpath, update_of_announce ~path_id:7 (pfx "203.0.113.0/24") attrs);
    (two, update_of_withdraw (pfx "198.51.100.0/24"));
    ( two,
      Update
        { withdrawn = [ (0, pfx "198.51.100.0/24") ];
          attrs = Some attrs;
          nlri = [ (0, pfx "203.0.113.0/24") ]
        } )
  ]
  |> List.map (fun (opts, m) -> (opts, Wire.encode opts m))

let full_corpus () =
  let dump = dump_of ~seed:1 (List.assoc "tiny" sizes) in
  handcrafted @ corpus_of_dump dump

(* Intact frames: both paths must succeed identically. *)
let corpus_intact () =
  List.iteri
    (fun i (opts, b) -> agree (Printf.sprintf "frame %d" i) opts b ~pos:0)
    (full_corpus ())

(* Truncation at every prefix length of every frame. *)
let corpus_truncated () =
  List.iteri
    (fun i (opts, b) ->
      for len = 0 to Bytes.length b - 1 do
        agree
          (Printf.sprintf "frame %d cut at %d" i len)
          opts (Bytes.sub b 0 len) ~pos:0
      done)
    (full_corpus ())

(* Every header byte corrupted in turn: marker bytes (0..15) break the
   marker, length bytes (16..17) produce out-of-range or lying lengths,
   the type byte (18) an unknown type. *)
let corpus_bad_header () =
  List.iteri
    (fun i (opts, b) ->
      for off = 0 to 18 do
        let c = Bytes.copy b in
        Bytes.set c off (Char.chr (Char.code (Bytes.get c off) lxor 0xFF));
        agree (Printf.sprintf "frame %d header^%d" i off) opts c ~pos:0
      done)
    (full_corpus ())

(* Attribute-length overruns: bump the total-attributes length and each
   per-attribute length byte of an UPDATE so sections overrun their
   enclosing window. *)
let corpus_attr_overrun () =
  let opts = Wire.default_opts in
  let pfx s = Peering_net.Prefix.of_string_exn s in
  let attrs =
    Attrs.make
      ~as_path:(As_path.of_asns [ Peering_net.Asn.of_int 65001 ])
      ~next_hop:(Peering_net.Ipv4.of_int 0x0A000002)
      ()
  in
  let b = Wire.encode opts (Message.update_of_announce (pfx "10.1.0.0/16") attrs) in
  (* Body layout: wlen(2) = 0, then alen(2), then attribute TLVs. *)
  for delta = 1 to 4 do
    let c = Bytes.copy b in
    let alen = (Char.code (Bytes.get c 21) lsl 8) lor Char.code (Bytes.get c 22) in
    let alen' = alen + delta in
    Bytes.set c 21 (Char.chr (alen' lsr 8));
    Bytes.set c 22 (Char.chr (alen' land 0xFF));
    agree (Printf.sprintf "attrs-len +%d" delta) opts c ~pos:0
  done;
  (* Each attribute TLV's length byte (flags, code, len): overrun it. *)
  let alen = (Char.code (Bytes.get b 21) lsl 8) lor Char.code (Bytes.get b 22) in
  let pos = ref 23 in
  while !pos < 23 + alen do
    let len_off = !pos + 2 in
    let len = Char.code (Bytes.get b len_off) in
    let c = Bytes.copy b in
    Bytes.set c len_off (Char.chr (min 255 (len + 7)));
    agree (Printf.sprintf "attr at %d len+7" !pos) opts c ~pos:0;
    pos := len_off + 1 + len
  done

(* Seeded random byte flips over the whole corpus — whatever the flip
   produces, the two paths must tell the same story. *)
let corpus_random_flips () =
  let rng = Random.State.make [| 0x6d7274 |] in
  List.iteri
    (fun i (opts, b) ->
      for trial = 0 to 19 do
        let c = Bytes.copy b in
        let flips = 1 + Random.State.int rng 3 in
        for _ = 1 to flips do
          let off = Random.State.int rng (Bytes.length c) in
          Bytes.set c off (Char.chr (Random.State.int rng 256))
        done;
        agree (Printf.sprintf "frame %d flip trial %d" i trial) opts c ~pos:0
      done)
    (full_corpus ())

(* Seeded dumps should also agree frame-by-frame across seeds, not just
   the fixed corpus seed. *)
let sweep_seeds () =
  for seed = 1 to n_seeds do
    List.iter
      (fun (size, params) ->
        let dump = dump_of ~seed params in
        List.iteri
          (fun i (opts, b) ->
            agree (Printf.sprintf "%s seed=%d frame %d" size seed i) opts b
              ~pos:0)
          (corpus_of_dump dump))
      sizes
  done

(* ------------------------------------------------------------------ *)
(* BMP corruption corpus: the telemetry framing follows the same
   dual-decoder discipline, so [Bmp.decode] and [Bmp.decode_eager]
   must agree — message and [Bmp.error] alike — on every intact,
   truncated and corrupted frame. *)

let bmp_show = function
  | Ok (m, n) -> Printf.sprintf "Ok(%s, %d)" (Bmp.msg_type_name (Bmp.msg_type m)) n
  | Error e -> Printf.sprintf "Error(%s)" (Bmp.error_to_string e)

let bmp_agree name buf ~pos =
  let cursor = Bmp.decode buf ~pos in
  let eager = Bmp.decode_eager buf ~pos in
  if cursor <> eager then
    Alcotest.failf "%s: cursor %s / eager %s" name (bmp_show cursor)
      (bmp_show eager)

let bmp_corpus =
  let pfx s = Peering_net.Prefix.of_string_exn s in
  let asn = Peering_net.Asn.of_int in
  let ip = Peering_net.Ipv4.of_int in
  let peer =
    Bmp.make_peer_header ~addr:(ip 0x64410001) ~asn:(asn 65010)
      ~time:12.345678 ()
  in
  let attrs =
    Attrs.make
      ~as_path:(As_path.of_asns [ asn 3356; asn 65010 ])
      ~communities:[ Community.make 65010 100 ]
      ~next_hop:(ip 0x64410001) ()
  in
  let open_msg a =
    { Message.version = 4;
      asn = a;
      hold_time = 90;
      router_id = ip 0x0A0A0A0A;
      capabilities = [ Capability.Four_octet_asn (Peering_net.Asn.to_int a) ]
    }
  in
  List.map Bmp.encode
    [ Bmp.Route_monitoring
        { peer;
          update =
            { Message.withdrawn = [ (0, pfx "198.51.100.0/24") ];
              attrs = Some attrs;
              nlri = [ (0, pfx "184.164.224.0/24") ]
            }
        };
      Bmp.Stats_report
        { peer;
          stats =
            [ { Bmp.stat_type = 0; stat_value = 7 };
              { Bmp.stat_type = Bmp.stat_routes_adj_rib_in;
                stat_value = 123_456_789_000
              }
            ]
        };
      Bmp.Peer_down { peer; reason = 2 };
      Bmp.Peer_up
        { peer;
          local_addr = ip 0x644100FE;
          local_port = 179;
          remote_port = 40000;
          sent_open = open_msg (asn 47065);
          recv_open = open_msg (asn 65010)
        };
      Bmp.Initiation { info = [ (2, "amsterdam01"); (1, "peering mux") ] };
      Bmp.Termination { info = [ (0, "bye") ] }
    ]

let bmp_intact () =
  List.iteri
    (fun i b -> bmp_agree (Printf.sprintf "bmp frame %d" i) b ~pos:0)
    bmp_corpus

let bmp_truncated () =
  List.iteri
    (fun i b ->
      for len = 0 to Bytes.length b - 1 do
        bmp_agree
          (Printf.sprintf "bmp frame %d cut at %d" i len)
          (Bytes.sub b 0 len) ~pos:0
      done)
    bmp_corpus

(* The 6-byte common header (version, length, type) and — on
   peer-scoped frames — the whole 42-byte per-peer header, each byte
   corrupted in turn. *)
let bmp_bad_headers () =
  List.iteri
    (fun i b ->
      let span = min (Bytes.length b - 1) (6 + 42 - 1) in
      for off = 0 to span do
        let c = Bytes.copy b in
        Bytes.set c off (Char.chr (Char.code (Bytes.get c off) lxor 0xFF));
        bmp_agree (Printf.sprintf "bmp frame %d header^%d" i off) c ~pos:0
      done)
    bmp_corpus

let bmp_random_flips () =
  let rng = Random.State.make [| 0x626d70 |] in
  List.iteri
    (fun i b ->
      for trial = 0 to 19 do
        let c = Bytes.copy b in
        let flips = 1 + Random.State.int rng 3 in
        for _ = 1 to flips do
          let off = Random.State.int rng (Bytes.length c) in
          Bytes.set c off (Char.chr (Random.State.int rng 256))
        done;
        bmp_agree (Printf.sprintf "bmp frame %d flip trial %d" i trial) c
          ~pos:0
      done)
    bmp_corpus

let () =
  Printf.printf
    "mrt-roundtrip: %d seeds per size (MRT_ROUNDTRIP_SEEDS to widen)\n"
    n_seeds;
  Alcotest.run "mrt_roundtrip"
    [ ( "roundtrip",
        [ Alcotest.test_case "dump-parse-redump identity" `Quick
            roundtrip_identity
        ] );
      ( "cursor-vs-eager",
        [ Alcotest.test_case "intact frames" `Quick corpus_intact;
          Alcotest.test_case "truncated at every offset" `Quick
            corpus_truncated;
          Alcotest.test_case "corrupt header bytes" `Quick corpus_bad_header;
          Alcotest.test_case "attribute length overruns" `Quick
            corpus_attr_overrun;
          Alcotest.test_case "random byte flips" `Quick corpus_random_flips;
          Alcotest.test_case "seeded update streams" `Quick sweep_seeds
        ] );
      ( "bmp-cursor-vs-eager",
        [ Alcotest.test_case "intact frames" `Quick bmp_intact;
          Alcotest.test_case "truncated at every offset" `Quick bmp_truncated;
          Alcotest.test_case "corrupt common + peer headers" `Quick
            bmp_bad_headers;
          Alcotest.test_case "random byte flips" `Quick bmp_random_flips
        ] )
    ]
