(* Fault injection, graceful degradation and the chaos harness:
   deterministic plans, RFC 4724 retention, reconnect backoff, the
   dampening x flap interaction, and the streaming JSON writer. *)

open Peering_net
module Engine = Peering_sim.Engine
module Metrics = Peering_obs.Metrics
module Json = Peering_obs.Json
module Plan = Peering_fault.Plan
module Injector = Peering_fault.Injector
module Chaos = Peering_fault.Chaos
module Router = Peering_router.Router
module Session = Peering_bgp.Session
module Fsm = Peering_bgp.Fsm
module Forwarder = Peering_dataplane.Forwarder
module Tunnel = Peering_dataplane.Tunnel

let tc = Alcotest.test_case

let wait_until engine pred ~timeout =
  let deadline = Engine.now engine +. timeout in
  let rec go () =
    if pred () then true
    else if Engine.now engine >= deadline then false
    else begin
      Engine.run_for engine 0.25;
      go ()
    end
  in
  go ()

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_plan_sorts () =
  let plan =
    Plan.of_steps
      [ { Plan.at = 5.0; fault = Plan.Session_reset { link = "l" } };
        { Plan.at = 1.0; fault = Plan.Partition { link = "l"; duration = 2.0 } }
      ]
  in
  Alcotest.(check (list (float 0.0)))
    "steps sorted by time" [ 1.0; 5.0 ]
    (List.map (fun (s : Plan.step) -> s.at) plan)

let test_plan_validation () =
  Alcotest.(check bool) "negative time rejected" true
    (raises_invalid (fun () ->
         Plan.of_steps
           [ { Plan.at = -1.0; fault = Plan.Session_reset { link = "l" } } ]));
  Alcotest.(check bool) "loss rate above 1 rejected" true
    (raises_invalid (fun () -> Plan.lossy ~loss:1.5 ()));
  Alcotest.(check bool) "negative duplicate rate rejected" true
    (raises_invalid (fun () -> Plan.lossy ~duplicate:(-0.1) ()))

let test_fault_classes () =
  let classes =
    List.map Plan.fault_class
      [ Plan.Impair { link = "l"; profile = Plan.pristine; duration = 1.0 };
        Plan.Partition { link = "l"; duration = 1.0 };
        Plan.Session_reset { link = "l" };
        Plan.Mux_crash { mux = "m"; downtime = 1.0 };
        Plan.Tunnel_blackhole { tunnel = "t"; duration = 1.0 }
      ]
  in
  Alcotest.(check (list string))
    "class tags"
    [ "impair"; "partition"; "session_reset"; "mux_crash"; "tunnel_blackhole" ]
    classes

let test_injector_unknown_target () =
  let engine = Engine.create ~seed:1 () in
  let inj = Injector.create engine in
  Alcotest.(check bool) "unknown link rejected" true
    (raises_invalid (fun () ->
         Injector.apply inj (Plan.Session_reset { link = "nope" })))

(* Static validation: a plan is vetted against the injector's registry
   before arming, so typos and malformed windows fail fast. *)
let test_plan_validate_issues () =
  let targets = { Plan.links = [ "l" ]; muxes = [ "m" ]; tunnels = [ "t" ] } in
  let step at fault = { Plan.at; fault } in
  let clean =
    Plan.of_steps
      [ step 0.0 (Plan.Partition { link = "l"; duration = 5.0 });
        step 10.0 (Plan.Mux_crash { mux = "m"; downtime = 2.0 })
      ]
  in
  Alcotest.(check int) "clean plan has no issues" 0
    (List.length (Plan.validate ~targets clean));
  let typo =
    Plan.of_steps [ step 0.0 (Plan.Session_reset { link = "nope" }) ]
  in
  Alcotest.(check int) "unknown target is an error" 1
    (List.length (Plan.errors (Plan.validate ~targets typo)));
  Alcotest.(check int) "no registry means no target check" 0
    (List.length (Plan.validate typo));
  let hot = { Plan.pristine with Plan.loss = 1.5 } in
  let bad_rate =
    Plan.of_steps
      [ step 1.0 (Plan.Impair { link = "l"; profile = hot; duration = 1.0 }) ]
  in
  Alcotest.(check bool) "rate outside [0,1] is an error" true
    (Plan.errors (Plan.validate ~targets bad_rate) <> []);
  let zero_window =
    Plan.of_steps
      [ step 0.0 (Plan.Partition { link = "l"; duration = 0.0 }) ]
  in
  Alcotest.(check bool) "non-positive duration is an error" true
    (Plan.errors (Plan.validate ~targets zero_window) <> []);
  let nested =
    Plan.of_steps
      [ step 0.0
          (Plan.Fate_group
             { group = "outer";
               faults =
                 [ Plan.Fate_group
                     { group = "inner";
                       faults = [ Plan.Session_reset { link = "l" } ]
                     }
                 ]
             })
      ]
  in
  Alcotest.(check bool) "nested fate group is an error" true
    (Plan.errors (Plan.validate ~targets nested) <> []);
  let empty =
    Plan.of_steps [ step 0.0 (Plan.Fate_group { group = "g"; faults = [] }) ]
  in
  Alcotest.(check bool) "empty fate group is an error" true
    (Plan.errors (Plan.validate ~targets empty) <> [])

let test_plan_validate_overlap_warning () =
  let targets = { Plan.links = [ "l" ]; muxes = []; tunnels = [ "t" ] } in
  let step at fault = { Plan.at; fault } in
  let overlap =
    Plan.of_steps
      [ step 0.0 (Plan.Partition { link = "l"; duration = 10.0 });
        step 5.0 (Plan.Partition { link = "l"; duration = 10.0 })
      ]
  in
  let issues = Plan.validate ~targets overlap in
  Alcotest.(check bool) "overlapping windows warned" true
    (List.exists (fun (i : Plan.issue) -> i.severity = Plan.Warning) issues);
  Alcotest.(check int) "but they are not errors" 0
    (List.length (Plan.errors issues));
  (* Disjoint windows and different targets stay silent. *)
  let disjoint =
    Plan.of_steps
      [ step 0.0 (Plan.Partition { link = "l"; duration = 4.0 });
        step 5.0 (Plan.Partition { link = "l"; duration = 4.0 });
        step 2.0 (Plan.Tunnel_blackhole { tunnel = "t"; duration = 10.0 })
      ]
  in
  Alcotest.(check int) "disjoint windows are clean" 0
    (List.length (Plan.validate ~targets disjoint))

(* ------------------------------------------------------------------ *)
(* A two-router world for the direct recovery tests. *)

let addr1 = Ipv4.of_octets 192 168 9 1
let addr2 = Ipv4.of_octets 192 168 9 2

let make_pair ~seed ?graceful_restart ~n_prefixes () =
  let engine = Engine.create ~seed () in
  let mk asn router_id =
    Router.create engine ~asn:(Asn.of_int asn) ~router_id ~hold_time:90
      ?graceful_restart ()
  in
  let r1 = mk 65001 addr1 and r2 = mk 65002 addr2 in
  for i = 0 to n_prefixes - 1 do
    Router.originate r1 (Prefix.make (Ipv4.of_octets 10 0 i 0) 24);
    Router.originate r2 (Prefix.make (Ipv4.of_octets 10 1 i 0) 24)
  done;
  let session =
    Router.connect engine ~auto_restart:true (r1, addr1) (r2, addr2)
  in
  (engine, r1, r2, session)

let converged r1 r2 session ~full =
  Session.established session
  && Router.table_size r1 = full
  && Router.table_size r2 = full

let test_graceful_restart_retention () =
  let n = 4 in
  let full = 2 * n in
  let engine, r1, r2, session =
    make_pair ~seed:3 ~graceful_restart:60 ~n_prefixes:n ()
  in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:60.0);
  let marked0 = Metrics.counter_value "bgp.rib.stale_marked" in
  let swept0 = Metrics.counter_value "bgp.rib.stale_swept" in
  Session.reset session ~reason:"test transport loss";
  Engine.run_for engine 0.01;
  (* RFC 4724 helper behaviour: the peer's routes are marked stale and
     retained, not dropped, while the session is down. *)
  Alcotest.(check bool) "routes marked stale" true
    (Metrics.counter_value "bgp.rib.stale_marked" > marked0);
  Alcotest.(check int) "r1 retains the full table" full (Router.table_size r1);
  Alcotest.(check int) "r2 retains the full table" full (Router.table_size r2);
  Alcotest.(check bool) "session re-establishes" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:300.0);
  (* Past the post-resync deferral the stale marks are swept; nothing
     was re-announced differently, so the table is unchanged. *)
  Engine.run_for engine 65.0;
  Alcotest.(check bool) "stale marks swept" true
    (Metrics.counter_value "bgp.rib.stale_swept" >= swept0);
  Alcotest.(check int) "no leaked routes" full (Router.table_size r1)

let test_no_gr_drops_routes () =
  let n = 4 in
  let full = 2 * n in
  let engine, r1, r2, session = make_pair ~seed:4 ~n_prefixes:n () in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:60.0);
  Session.reset session ~reason:"test transport loss";
  Engine.run_for engine 0.01;
  (* Without the capability the peer's routes go away immediately. *)
  Alcotest.(check int) "r1 drops the peer's routes" n (Router.table_size r1);
  Alcotest.(check bool) "still re-establishes" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:300.0)

let test_backoff_reconnects () =
  let n = 2 in
  let full = 2 * n in
  let engine, r1, r2, session = make_pair ~seed:5 ~n_prefixes:n () in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:60.0);
  for i = 1 to 3 do
    Session.reset session ~reason:(Printf.sprintf "flap %d" i);
    Alcotest.(check bool)
      (Printf.sprintf "re-established after flap %d" i)
      true
      (wait_until engine
         (fun () -> converged r1 r2 session ~full)
         ~timeout:600.0)
  done;
  Alcotest.(check bool) "established at least 4 times" true
    (Fsm.established_count (Session.a session).Session.fsm >= 4)

let test_corrupt_frames_counted () =
  let n = 2 in
  let full = 2 * n in
  let engine, r1, r2, session = make_pair ~seed:6 ~n_prefixes:n () in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:60.0);
  let errs0 = Metrics.counter_value "bgp.wire.decode_errors" in
  Session.set_fault_hook session (Some (fun _ -> Some Session.Corrupt));
  Engine.run_for engine 40.0;
  Session.set_fault_hook session None;
  (* Corrupting the marker makes Wire.decode fail deterministically;
     every such frame lands in the decode-error counter. *)
  Alcotest.(check bool) "decode errors counted" true
    (Metrics.counter_value "bgp.wire.decode_errors" > errs0);
  Alcotest.(check bool) "recovers once frames are clean" true
    (wait_until engine (fun () -> converged r1 r2 session ~full) ~timeout:600.0)

(* ------------------------------------------------------------------ *)
(* Generation-guarded window expiry and fate groups. *)

(* Two overlapping blackhole windows on one tunnel: the superseded
   window's expiry must not clear the blackhole early; only the
   newest window's expiry does. *)
let test_overlapping_blackhole_windows () =
  let engine = Engine.create ~seed:8 () in
  let fwd = Forwarder.create engine in
  Forwarder.add_node fwd "a";
  Forwarder.add_node fwd "b";
  let tun = Tunnel.establish fwd engine ~a:"a" ~b:"b" () in
  let inj = Injector.create engine in
  Injector.add_tunnel inj ~name:"t" tun;
  Injector.apply inj (Plan.Tunnel_blackhole { tunnel = "t"; duration = 10.0 });
  Alcotest.(check bool) "blackholed immediately" true (Tunnel.blackholed tun);
  Engine.run_for engine 5.0;
  Injector.apply inj (Plan.Tunnel_blackhole { tunnel = "t"; duration = 10.0 });
  Engine.run_for engine 6.0;
  (* Virtual time 11: the first window's expiry has fired and must
     have been ignored — the second window owns the tunnel until 15. *)
  Alcotest.(check bool) "superseded expiry ignored" true
    (Tunnel.blackholed tun);
  Engine.run_for engine 5.0;
  Alcotest.(check bool) "owning window clears the blackhole" false
    (Tunnel.blackholed tun)

(* The link-impairment analogue, stretched across a mux-crash-style
   outage: the second partition window keeps dropping messages after
   the first window's (superseded) expiry fires. *)
let test_overlapping_partition_windows () =
  let engine = Engine.create ~seed:31 () in
  let mk asn router_id =
    Router.create engine ~asn:(Asn.of_int asn) ~router_id ~hold_time:9 ()
  in
  let a1 = Ipv4.of_octets 192 168 11 1 and a2 = Ipv4.of_octets 192 168 11 2 in
  let r1 = mk 65011 a1 and r2 = mk 65012 a2 in
  Router.originate r1 (Prefix.make (Ipv4.of_octets 10 11 0 0) 24);
  Router.originate r2 (Prefix.make (Ipv4.of_octets 10 12 0 0) 24);
  let session = Router.connect engine ~auto_restart:true (r1, a1) (r2, a2) in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full:2) ~timeout:60.0);
  let inj = Injector.create engine in
  Injector.add_link inj ~name:"l" session;
  Injector.apply inj (Plan.Partition { link = "l"; duration = 10.0 });
  Engine.run_for engine 5.0;
  Injector.apply inj (Plan.Partition { link = "l"; duration = 10.0 });
  Engine.run_for engine 6.0;
  (* Past the superseded expiry: the newer window must still be
     dropping whatever the FSMs (now reconnecting) try to send. *)
  let d0 = Metrics.counter_value "fault.msg_dropped" in
  Engine.run_for engine 3.5;
  Alcotest.(check bool) "later window still drops after superseded expiry" true
    (Metrics.counter_value "fault.msg_dropped" > d0);
  Alcotest.(check bool) "recovers once the owning window expires" true
    (wait_until engine
       (fun () -> converged r1 r2 session ~full:2)
       ~timeout:600.0)

let test_fate_group_application () =
  let engine, r1, r2, session = make_pair ~seed:21 ~n_prefixes:2 () in
  Alcotest.(check bool) "initial convergence" true
    (wait_until engine (fun () -> converged r1 r2 session ~full:4) ~timeout:60.0);
  let fwd = Forwarder.create engine in
  Forwarder.add_node fwd "a";
  Forwarder.add_node fwd "b";
  let tun = Tunnel.establish fwd engine ~a:"a" ~b:"b" () in
  let inj = Injector.create engine in
  Injector.add_link inj ~name:"z-link" session;
  Injector.add_tunnel inj ~name:"tun0" tun;
  (* The registry accessor feeds Plan.validate. *)
  let tgts = Injector.targets inj in
  Alcotest.(check (list string)) "links registered" [ "z-link" ] tgts.Plan.links;
  Alcotest.(check (list string)) "tunnels registered" [ "tun0" ]
    tgts.Plan.tunnels;
  Alcotest.(check (list string)) "no muxes here" [] tgts.Plan.muxes;
  let groups0 = Metrics.counter_value "fault.fate_groups" in
  let resets0 = Metrics.counter_value "fault.session_resets" in
  Injector.apply inj
    (Plan.Fate_group
       { group = "conduit";
         faults =
           [ Plan.Session_reset { link = "z-link" };
             Plan.Tunnel_blackhole { tunnel = "tun0"; duration = 3.0 }
           ]
       });
  (* Both members fired at the same instant, and the group counted. *)
  Alcotest.(check bool) "fate group counted" true
    (Metrics.counter_value "fault.fate_groups" > groups0);
  Alcotest.(check bool) "member reset applied" true
    (Metrics.counter_value "fault.session_resets" > resets0);
  Alcotest.(check bool) "member blackhole applied" true (Tunnel.blackholed tun);
  Alcotest.(check bool) "nested group refused" true
    (raises_invalid (fun () ->
         Injector.apply inj
           (Plan.Fate_group
              { group = "outer";
                faults = [ Plan.Fate_group { group = "inner"; faults = [] } ]
              })));
  Engine.run_for engine 4.0;
  Alcotest.(check bool) "blackhole expires" false (Tunnel.blackholed tun);
  Alcotest.(check bool) "session recovers from the reset" true
    (wait_until engine (fun () -> converged r1 r2 session ~full:4) ~timeout:600.0)

(* ------------------------------------------------------------------ *)
(* The dampening x flap interaction (RFC 2439 under a seeded flap
   plan), asserted through the bgp.dampening.* counters. *)

let test_dampening_flap_interaction () =
  let flaps0 = Metrics.counter_value "bgp.dampening.flaps" in
  let supp0 = Metrics.counter_value "bgp.dampening.suppressions" in
  let reuse0 = Metrics.counter_value "bgp.dampening.reuses" in
  let o = Chaos.run_one ~seed:13 "flap" in
  Alcotest.(check string) "classified as flap" "flap" o.Chaos.fault_class;
  Alcotest.(check bool) "flap scenario reconverges" true o.Chaos.reconverged;
  Alcotest.(check int) "no routes lost" 0 o.Chaos.routes_lost;
  (* The default parameters need three flaps before the penalty crosses
     the suppress threshold (two decay to just under 2000). *)
  Alcotest.(check bool) "at least three flaps counted" true
    (Metrics.counter_value "bgp.dampening.flaps" - flaps0 >= 3);
  Alcotest.(check bool) "the route was suppressed" true
    (Metrics.counter_value "bgp.dampening.suppressions" - supp0 >= 1);
  Alcotest.(check bool) "and released for reuse" true
    (Metrics.counter_value "bgp.dampening.reuses" - reuse0 >= 1)

(* ------------------------------------------------------------------ *)
(* Chaos determinism and the acceptance criteria. *)

let run_chaos seed =
  Metrics.reset ();
  let outcomes = Chaos.run_all ~seed () in
  (outcomes, Json.to_string ~indent:2 (Chaos.to_json ~seed outcomes))

let test_chaos_deterministic () =
  let o1, j1 = run_chaos 11 in
  let _, j2 = run_chaos 11 in
  Alcotest.(check string) "same seed, byte-identical report" j1 j2;
  Alcotest.(check (list string))
    "every declared scenario ran" Chaos.scenarios
    (List.map (fun o -> o.Chaos.scenario) o1);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (o.Chaos.scenario ^ " reconverged")
        true o.Chaos.reconverged;
      Alcotest.(check int) (o.Chaos.scenario ^ " routes lost") 0
        o.Chaos.routes_lost;
      Alcotest.(check bool)
        (o.Chaos.scenario ^ " recovery latency is finite")
        true
        (Float.is_finite o.Chaos.recovery_s))
    o1

(* ------------------------------------------------------------------ *)
(* The streaming JSON writer must be byte-identical to the tree
   emitter, compact and pretty. *)

let sample_tree =
  Json.Obj
    [ ("schema", Json.String "writer-test/1");
      ( "rows",
        Json.List
          [ Json.Obj
              [ ("label", Json.String "a \"quoted\" label");
                ("n", Json.Int 3);
                ("x", Json.Float 1.5)
              ];
            Json.Obj [ ("label", Json.String "second"); ("ok", Json.Bool true) ]
          ] );
      ("empty_obj", Json.Obj []);
      ("empty_list", Json.List []);
      ("nothing", Json.Null);
      ( "nested",
        Json.List [ Json.List [ Json.Int 1; Json.Int 2 ]; Json.List [] ] )
    ]

let stream_sample indent =
  let b = Buffer.create 256 in
  let w = Json.Writer.to_buffer ?indent b in
  Json.Writer.begin_obj w;
  Json.Writer.key w "schema";
  Json.Writer.value w (Json.String "writer-test/1");
  Json.Writer.key w "rows";
  Json.Writer.begin_arr w;
  Json.Writer.value w
    (Json.Obj
       [ ("label", Json.String "a \"quoted\" label");
         ("n", Json.Int 3);
         ("x", Json.Float 1.5)
       ]);
  (* The second row is itself streamed member by member. *)
  Json.Writer.begin_obj w;
  Json.Writer.key w "label";
  Json.Writer.value w (Json.String "second");
  Json.Writer.key w "ok";
  Json.Writer.value w (Json.Bool true);
  Json.Writer.end_obj w;
  Json.Writer.end_arr w;
  Json.Writer.key w "empty_obj";
  Json.Writer.begin_obj w;
  Json.Writer.end_obj w;
  Json.Writer.key w "empty_list";
  Json.Writer.begin_arr w;
  Json.Writer.end_arr w;
  Json.Writer.key w "nothing";
  Json.Writer.value w Json.Null;
  Json.Writer.key w "nested";
  Json.Writer.begin_arr w;
  Json.Writer.value w (Json.List [ Json.Int 1; Json.Int 2 ]);
  Json.Writer.begin_arr w;
  Json.Writer.end_arr w;
  Json.Writer.end_arr w;
  Json.Writer.end_obj w;
  Json.Writer.close w;
  Buffer.contents b

let test_writer_compact () =
  Alcotest.(check string) "compact bytes" (Json.to_string sample_tree)
    (stream_sample None)

let test_writer_indented () =
  Alcotest.(check string) "pretty bytes"
    (Json.to_string ~indent:2 sample_tree)
    (stream_sample (Some 2))

let test_writer_misuse () =
  Alcotest.(check bool) "key outside an object" true
    (raises_invalid (fun () ->
         let w = Json.Writer.to_buffer (Buffer.create 16) in
         Json.Writer.key w "k"));
  Alcotest.(check bool) "value in an object without a key" true
    (raises_invalid (fun () ->
         let w = Json.Writer.to_buffer (Buffer.create 16) in
         Json.Writer.begin_obj w;
         Json.Writer.value w Json.Null));
  Alcotest.(check bool) "close with open containers" true
    (raises_invalid (fun () ->
         let w = Json.Writer.to_buffer (Buffer.create 16) in
         Json.Writer.begin_arr w;
         Json.Writer.close w))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ tc "sorts steps" `Quick test_plan_sorts;
          tc "validates" `Quick test_plan_validation;
          tc "fault classes" `Quick test_fault_classes;
          tc "unknown target" `Quick test_injector_unknown_target;
          tc "static validation issues" `Quick test_plan_validate_issues;
          tc "overlap warnings" `Quick test_plan_validate_overlap_warning
        ] );
      ( "injector",
        [ tc "overlapping blackhole windows" `Quick
            test_overlapping_blackhole_windows;
          tc "overlapping partition windows" `Slow
            test_overlapping_partition_windows;
          tc "fate group application" `Slow test_fate_group_application
        ] );
      ( "recovery",
        [ tc "graceful restart retention" `Quick test_graceful_restart_retention;
          tc "no GR drops routes" `Quick test_no_gr_drops_routes;
          tc "backoff reconnects" `Quick test_backoff_reconnects;
          tc "corrupt frames counted" `Quick test_corrupt_frames_counted
        ] );
      ( "dampening",
        [ tc "flap plan suppresses and releases" `Slow
            test_dampening_flap_interaction
        ] );
      ("chaos", [ tc "deterministic full drill" `Slow test_chaos_deterministic ]);
      ( "json writer",
        [ tc "compact" `Quick test_writer_compact;
          tc "indented" `Quick test_writer_indented;
          tc "misuse" `Quick test_writer_misuse
        ] )
    ]
