open Peering_net
open Peering_core
module Engine = Peering_sim.Engine
module Gen = Peering_topo.Gen

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Experiment + Controller *)

let test_controller_vetting () =
  let e = Engine.create () in
  let ctl =
    Controller.create e ~supply:[ pfx "184.164.224.0/19" ] ()
  in
  (* too-short description rejected *)
  (match Controller.propose ctl ~id:"x" ~owner:"eve" ~description:"short" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vetting passed a junk proposal");
  (* good proposal approved with resources *)
  match
    Controller.propose ctl ~id:"lifeguard" ~owner:"ethan"
      ~description:"reroute around persistent interdomain failures"
      ~n_prefixes:2 ~n_private_asns:2 ()
  with
  | Error err -> Alcotest.fail err
  | Ok exp ->
    check Alcotest.int "prefixes allocated" 2
      (List.length exp.Experiment.prefixes);
    check Alcotest.int "asns allocated" 2
      (List.length exp.Experiment.private_asns);
    check Alcotest.bool "asns private" true
      (List.for_all Asn.is_private exp.Experiment.private_asns);
    check Alcotest.bool "approved" true
      (exp.Experiment.status = Experiment.Approved);
    (* duplicate id rejected *)
    (match
       Controller.propose ctl ~id:"lifeguard" ~owner:"other"
         ~description:"a second experiment with the same identifier" ()
     with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "duplicate id accepted");
    Controller.activate ctl exp;
    check Alcotest.bool "active" true (Experiment.is_active exp);
    check Alcotest.bool "owns allocation" true
      (Experiment.owns_prefix exp (List.hd exp.Experiment.prefixes));
    let before = Controller.available_blocks ctl in
    Controller.stop ctl exp;
    check Alcotest.int "blocks returned" (before + 2)
      (Controller.available_blocks ctl)

let test_controller_pool_exhaustion () =
  let e = Engine.create () in
  let ctl =
    Controller.create e ~supply:[ pfx "184.164.224.0/22" ]
      ~max_prefixes_per_experiment:4 ()
  in
  (* /22 = 4 blocks of /24 *)
  (match
     Controller.propose ctl ~id:"big" ~owner:"o"
       ~description:"an experiment requesting the whole address pool"
       ~n_prefixes:4 ()
   with
  | Ok _ -> ()
  | Error err -> Alcotest.fail err);
  match
    Controller.propose ctl ~id:"late" ~owner:"o"
      ~description:"another experiment arriving after pool exhaustion" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "allocated from empty pool"

let test_controller_scheduling () =
  let e = Engine.create () in
  let ctl = Controller.create e ~supply:[ pfx "184.164.224.0/22" ] () in
  let fired = ref None and notified = ref None in
  Controller.schedule_announcement ctl ~at:100.0
    ~action:(fun () -> fired := Some (Engine.now e))
    ~notify:(fun t -> notified := Some t)
    ();
  check Alcotest.int "pending" 1 (Controller.scheduled_count ctl);
  Engine.run ~until:50.0 e;
  check Alcotest.bool "not yet" true (!fired = None);
  Engine.run ~until:200.0 e;
  check Alcotest.(option (float 1e-9)) "fired on time" (Some 100.0) !fired;
  check Alcotest.(option (float 1e-9)) "researcher notified" (Some 100.0)
    !notified;
  check Alcotest.int "drained" 0 (Controller.scheduled_count ctl)

let test_controller_donation () =
  let e = Engine.create () in
  let ctl = Controller.create e ~supply:[ pfx "184.164.224.0/24" ] () in
  check Alcotest.int "one block" 1 (Controller.available_blocks ctl);
  Controller.donate_supply ctl (pfx "198.51.100.0/23");
  check Alcotest.int "donated blocks" 3 (Controller.available_blocks ctl);
  check Alcotest.bool "owns donation" true
    (Controller.owns ctl (pfx "198.51.100.0/24"))

(* ------------------------------------------------------------------ *)
(* Safety *)

let active_experiment () =
  let exp =
    Experiment.make ~id:"e1" ~owner:"o"
      ~description:"a perfectly legitimate routing experiment" ()
  in
  exp.Experiment.prefixes <- [ pfx "184.164.224.0/24" ];
  exp.Experiment.private_asns <- [ asn 64512 ];
  exp.Experiment.status <- Experiment.Active;
  exp

let mk_safety () =
  Safety.create ~peering_asn:(asn 47065)
    ~owns:(fun p -> Prefix.subsumes (pfx "184.164.224.0/19") p)
    ()

let test_safety_hijack_blocked () =
  let s = mk_safety () in
  let exp = active_experiment () in
  (* announcing google's prefix is a hijack *)
  match
    Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
      ~prefix:(pfx "8.8.8.0/24") ~path_suffix:[]
  with
  | Error Safety.Prefix_not_owned -> ()
  | Error e -> Alcotest.failf "wrong reason: %s" (Safety.reason_to_string e)
  | Ok () -> Alcotest.fail "hijack permitted"

let test_safety_isolation () =
  let s = mk_safety () in
  let exp = active_experiment () in
  (* PEERING space, but not this experiment's block *)
  (match
     Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
       ~prefix:(pfx "184.164.225.0/24") ~path_suffix:[]
   with
  | Error Safety.Prefix_not_allocated -> ()
  | _ -> Alcotest.fail "cross-experiment announcement permitted");
  (* two clients, same prefix: second blocked *)
  (match
     Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
       ~prefix:(pfx "184.164.224.0/24") ~path_suffix:[]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "legit blocked: %s" (Safety.reason_to_string e));
  match
    Safety.check_announce s ~now:10.0 ~client:"c2" ~experiment:exp
      ~prefix:(pfx "184.164.224.0/24") ~path_suffix:[]
  with
  | Error Safety.Announced_by_other_experiment -> ()
  | _ -> Alcotest.fail "duplicate announcement permitted"

let test_safety_inactive () =
  let s = mk_safety () in
  let exp = active_experiment () in
  exp.Experiment.status <- Experiment.Stopped;
  match
    Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
      ~prefix:(pfx "184.164.224.0/24") ~path_suffix:[]
  with
  | Error Safety.Experiment_not_active -> ()
  | _ -> Alcotest.fail "stopped experiment announced"

let test_safety_poisoning_permission () =
  let s = mk_safety () in
  let exp = active_experiment () in
  (* public ASN in suffix without poison rights: rejected *)
  (match
     Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
       ~prefix:(pfx "184.164.224.0/24") ~path_suffix:[ asn 3356 ]
   with
  | Error (Safety.Poisoning_not_permitted _) -> ()
  | _ -> Alcotest.fail "unvetted poisoning permitted");
  (* private suffix fine, and stripped on sanitize *)
  (match
     Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp
       ~prefix:(pfx "184.164.224.0/24") ~path_suffix:[ asn 64512 ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "private suffix blocked: %s" (Safety.reason_to_string e));
  check Alcotest.(list int) "private stripped" []
    (List.map Asn.to_int (Safety.sanitize_suffix s exp [ asn 64512 ]));
  (* vetted poisoning passes and survives sanitize *)
  let exp2 =
    Experiment.make ~id:"e2" ~owner:"o"
      ~description:"a lifeguard style failure avoidance experiment"
      ~may_poison:true ()
  in
  exp2.Experiment.prefixes <- [ pfx "184.164.225.0/24" ];
  exp2.Experiment.status <- Experiment.Active;
  (match
     Safety.check_announce s ~now:0.0 ~client:"c9" ~experiment:exp2
       ~prefix:(pfx "184.164.225.0/24") ~path_suffix:[ asn 3356 ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "vetted poisoning blocked: %s" (Safety.reason_to_string e));
  check Alcotest.(list int) "poison survives" [ 3356 ]
    (List.map Asn.to_int (Safety.sanitize_suffix s exp2 [ asn 3356 ]))

let test_safety_dampening () =
  let s = mk_safety () in
  let exp = active_experiment () in
  let p = pfx "184.164.224.0/24" in
  let announce now =
    Safety.check_announce s ~now ~client:"flappy" ~experiment:exp ~prefix:p
      ~path_suffix:[]
  in
  (match announce 0.0 with Ok () -> () | Error _ -> Alcotest.fail "first");
  Safety.note_withdraw s ~now:1.0 ~client:"flappy" ~prefix:p;
  (match announce 1.5 with Ok () -> () | Error _ -> Alcotest.fail "second");
  Safety.note_withdraw s ~now:2.0 ~client:"flappy" ~prefix:p;
  (match announce 2.2 with Ok () -> () | Error _ -> Alcotest.fail "third");
  Safety.note_withdraw s ~now:2.5 ~client:"flappy" ~prefix:p;
  (* three rapid withdrawals => penalty ~3000 > suppress threshold *)
  match announce 3.0 with
  | Error (Safety.Dampened until) ->
    check Alcotest.bool "reuse in future" true (until > 3.0);
    check Alcotest.bool "suppressed_until agrees" true
      (Safety.suppressed_until s ~now:3.0 ~client:"flappy" p <> None)
  | _ -> Alcotest.fail "flapping client not dampened"

let test_safety_dampened_while_registered () =
  (* check_announce ordering: the registration conflict is reported
     before dampening, and dampening never blocks the registrant. *)
  let s = mk_safety () in
  let exp = active_experiment () in
  let p = pfx "184.164.224.0/24" in
  let announce client now =
    Safety.check_announce s ~now ~client ~experiment:exp ~prefix:p
      ~path_suffix:[]
  in
  (match announce "c1" 0.0 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "c1 blocked: %s" (Safety.reason_to_string e));
  (* c2 flaps its own dampening state; c1's registration is untouched *)
  Safety.note_withdraw s ~now:1.0 ~client:"c2" ~prefix:p;
  Safety.note_withdraw s ~now:1.5 ~client:"c2" ~prefix:p;
  Safety.note_withdraw s ~now:2.0 ~client:"c2" ~prefix:p;
  check Alcotest.(option string) "c1 still registered" (Some "c1")
    (Safety.announced_by s p);
  check Alcotest.bool "c2 is suppressed" true
    (Safety.suppressed_until s ~now:2.5 ~client:"c2" p <> None);
  (* c2 is both dampened and conflicting; the conflict must win *)
  (match announce "c2" 2.5 with
  | Error Safety.Announced_by_other_experiment -> ()
  | Error e -> Alcotest.failf "wrong reason: %s" (Safety.reason_to_string e)
  | Ok () -> Alcotest.fail "conflicting announcement permitted");
  (* the registrant itself carries no penalty and may re-announce *)
  match announce "c1" 2.5 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "registrant blocked: %s" (Safety.reason_to_string e)

let test_safety_announce_after_release () =
  (* release frees the registration without counting as a flap, but
     keeps the dampening history accumulated by earlier withdrawals. *)
  let s = mk_safety () in
  let exp = active_experiment () in
  let p = pfx "184.164.224.0/24" in
  let announce client now =
    Safety.check_announce s ~now ~client ~experiment:exp ~prefix:p
      ~path_suffix:[]
  in
  (match announce "c1" 0.0 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "c1 blocked: %s" (Safety.reason_to_string e));
  check Alcotest.bool "first release succeeds" true
    (Safety.release s ~client:"c1" ~prefix:p = Safety.Released);
  check Alcotest.(option string) "released" None (Safety.announced_by s p);
  (* releasing is not a flap: an immediate re-announce is fine *)
  (match announce "c1" 0.1 with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "re-announce after release blocked: %s"
      (Safety.reason_to_string e));
  ignore (Safety.release s ~client:"c1" ~prefix:p);
  (* another client may claim the prefix once it is released *)
  (match announce "c2" 1.0 with
  | Ok () -> ()
  | Error e ->
    Alcotest.failf "c2 blocked after release: %s" (Safety.reason_to_string e));
  (* but release does not launder dampening history: flap, release,
     and the penalty still suppresses the next announcement *)
  Safety.note_withdraw s ~now:1.5 ~client:"c2" ~prefix:p;
  (match announce "c2" 1.6 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "second: %s" (Safety.reason_to_string e));
  Safety.note_withdraw s ~now:2.0 ~client:"c2" ~prefix:p;
  (match announce "c2" 2.1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "third: %s" (Safety.reason_to_string e));
  Safety.note_withdraw s ~now:2.4 ~client:"c2" ~prefix:p;
  ignore (Safety.release s ~client:"c2" ~prefix:p);
  match announce "c2" 2.5 with
  | Error (Safety.Dampened until) ->
    check Alcotest.bool "reuse in future" true (until > 2.5)
  | _ -> Alcotest.fail "dampening history survived release"

(* ------------------------------------------------------------------ *)
(* Capability (Table 1) *)

let test_capability_claims () =
  check Alcotest.bool "PEERING meets all goals" true
    (Capability.peering_meets_all ());
  check Alcotest.int "no pair of other systems covers all" 0
    (List.length (Capability.combinations_covering_all ()));
  (* spot-check cells against the paper *)
  check Alcotest.bool "TP interdomain" true
    (Capability.support Capability.Transit_portal Capability.Interdomain
     = Capability.Full);
  check Alcotest.bool "beacons limited interdomain" true
    (Capability.support Capability.Beacons Capability.Interdomain
     = Capability.Limited);
  check Alcotest.bool "mininet no rich conn" true
    (Capability.support Capability.Mininet Capability.Rich_connectivity
     = Capability.None_);
  check Alcotest.bool "render mentions all testbeds" true
    (List.for_all
       (fun t ->
         let abbrev = Capability.testbed_abbrev t in
         let rendered = Capability.render () in
         let len_r = String.length rendered and len_a = String.length abbrev in
         let rec find i =
           i + len_a <= len_r
           && (String.sub rendered i len_a = abbrev || find (i + 1))
         in
         find 0)
       Capability.testbeds)

(* ------------------------------------------------------------------ *)
(* Testbed integration *)

let small_world =
  { Gen.default_params with
    Gen.n_tier1 = 5;
    n_large_transit = 12;
    n_small_transit = 80;
    n_stub = 900;
    n_content = 15;
    target_prefixes = 4000
  }

let small_params =
  { Testbed.default_params with
    Testbed.world = small_world;
    university_sites = [ ("gatech01", 2) ]
  }

let build () = Testbed.build ~params:small_params ()

let testbed = lazy (build ())

let test_testbed_build () =
  let t = Lazy.force testbed in
  let names = List.map Testbed.site_name (Testbed.sites t) in
  check Alcotest.(list string) "sites"
    [ "amsterdam01"; "gatech01"; "phoenix01" ]
    (List.sort String.compare names);
  (* AMS-IX yields hundreds of peers *)
  let ams_peers = Testbed.peers_at t "amsterdam01" in
  check Alcotest.bool "hundreds of peers" true (List.length ams_peers >= 554);
  check Alcotest.int "university providers" 2
    (List.length (Testbed.peers_at t "gatech01"))

let test_testbed_announce_reaches_internet () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"reach" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-reach" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
  let p = List.hd exp.Experiment.prefixes in
  let outcomes = Client.announce client p in
  List.iter
    (fun (site, r) ->
      match r with
      | Ok () -> ()
      | Error reason ->
        Alcotest.failf "%s rejected: %s" site (Safety.reason_to_string reason))
    outcomes;
  let reach = Testbed.reach_count t p in
  let total = Peering_topo.As_graph.n_ases (Testbed.graph t) in
  check Alcotest.bool "most of the Internet reaches the prefix" true
    (reach > total / 2);
  (* path from a random stub ends at PEERING *)
  let w = Testbed.world t in
  let stub = List.nth w.Gen.stubs 10 in
  (match Testbed.path_from t stub p with
  | Some path ->
    check Alcotest.int "path terminates at AS 47065" 47065
      (Asn.to_int (List.nth path (List.length path - 1)))
  | None -> Alcotest.fail "stub cannot reach the prefix");
  (* collector saw the export *)
  check Alcotest.bool "collector recorded" true
    (Peering_measure.Collector.n_entries (Testbed.collector t) > 0);
  Client.withdraw client p;
  check Alcotest.int "withdrawn: unreachable" 0 (Testbed.reach_count t p)

let test_testbed_selective_announcement () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"selective" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-sel" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  (* announce to every AMS peer *)
  ignore (Client.announce client p);
  let full = Testbed.reach_count t p in
  Client.withdraw client p;
  (* announce to just three peers *)
  let three =
    List.filteri (fun i _ -> i < 3) (Testbed.peers_at t "amsterdam01")
  in
  ignore (Client.announce client ~peers:three p);
  let limited = Testbed.reach_count t p in
  check Alcotest.bool "selective reaches fewer ASes" true (limited < full);
  check Alcotest.bool "but still propagates" true (limited > 0);
  Client.withdraw client p

let test_testbed_hijack_contained () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"attacker" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-evil" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  (* try to hijack a real prefix of the simulated Internet *)
  let w = Testbed.world t in
  let victim_prefix =
    List.hd
      (Peering_topo.As_graph.prefixes_of (Testbed.graph t)
         (List.hd w.Gen.stubs))
  in
  (match Client.announce client victim_prefix with
  | [ (_, Error Safety.Prefix_not_owned) ] -> ()
  | _ -> Alcotest.fail "hijack not contained");
  (* the Internet never saw it *)
  check Alcotest.int "no propagation" 0 (Testbed.reach_count t victim_prefix)

let test_testbed_anycast_catchment () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"anycast" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-any" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01"; "gatech01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  (* every AS with a route enters through some site *)
  let w = Testbed.world t in
  let sites =
    List.filter_map
      (fun stub -> Testbed.ingress_site t ~from_asn:stub p)
      (List.filteri (fun i _ -> i < 200) w.Gen.stubs)
  in
  check Alcotest.bool "catchment observed" true (List.length sites > 100);
  let distinct = List.sort_uniq String.compare sites in
  check Alcotest.bool "traffic splits across sites" true
    (List.length distinct >= 2);
  Client.withdraw client p

let test_testbed_failure_avoidance () =
  (* LIFEGUARD-style: a transit AS fails; announcements still reach via
     other paths after reroute. *)
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"lifeguard-it" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-lg" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "gatech01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  let before = Testbed.reach_count t p in
  (* kill one of the university providers *)
  let provider = List.hd (Testbed.peers_at t "gatech01") in
  Testbed.set_down t provider true;
  let after = Testbed.reach_count t p in
  check Alcotest.bool "connectivity survives via second provider" true
    (after > 0);
  check Alcotest.bool "failure shrinks or keeps reach" true (after <= before);
  Testbed.set_down t provider false;
  check Alcotest.int "recovery" before (Testbed.reach_count t p);
  Client.withdraw client p

let test_testbed_moas_hijack_study () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"moas" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-moas" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  let legit = Testbed.reach_count t p in
  (* an attacker in the wild announces our prefix *)
  let w = Testbed.world t in
  let attacker = List.nth w.Gen.small_transit 5 in
  Testbed.inject_external t ~origin:attacker p;
  (match Testbed.result_for t p with
  | None -> Alcotest.fail "no result"
  | Some r ->
    let catchment = Peering_topo.Propagation.catchment r in
    check Alcotest.int "two origins compete" 2 (List.length catchment));
  (* some ASes are captured by the attacker *)
  let captured =
    List.length
      (List.filter
         (fun stub -> Testbed.ingress_site t ~from_asn:stub p = None)
         (List.filteri (fun i _ -> i < 200) (Testbed.world t).Gen.stubs))
  in
  check Alcotest.bool "hijack diverts some ASes" true (captured > 0);
  Testbed.retract_external t ~origin:attacker p;
  check Alcotest.int "retraction restores" legit (Testbed.reach_count t p);
  Client.withdraw client p

let test_testbed_client_receives_routes () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"rx" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-rx" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "gatech01" ];
  let fed = Testbed.feed_peer_routes t ~site:"gatech01" ~max_per_peer:50 () in
  check Alcotest.bool "routes fed" true (fed > 0);
  check Alcotest.bool "client rib populated" true (Client.route_count client > 0);
  (* candidates carry per-peer multiplicity: same prefix can arrive
     from both providers *)
  let multi =
    Peering_bgp.Rib.fold_best
      (fun prefix _ acc ->
        max acc (List.length (Client.candidates client prefix)))
      (Client.rib client) 0
  in
  check Alcotest.bool "client sees per-peer routes" true (multi >= 1)

let test_server_session_stats () =
  let t = Lazy.force testbed in
  let server = Testbed.site_server (Testbed.site_exn t "amsterdam01") in
  let stats = Server.session_stats server in
  check Alcotest.bool "per-peer mode default" true
    (stats.Server.mode = Server.Per_peer_sessions);
  check Alcotest.int "peer sessions = peers" stats.Server.n_peers
    stats.Server.peer_sessions;
  check Alcotest.int "client sessions = clients x peers"
    (stats.Server.n_clients * stats.Server.n_peers)
    stats.Server.client_sessions

let test_client_ignore_peer () =
  let t = Lazy.force testbed in
  let exp =
    match Testbed.new_experiment t ~id:"ignore" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-ign" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "gatech01" ];
  ignore (Testbed.feed_peer_routes t ~site:"gatech01" ~max_per_peer:50 ());
  let before = Client.route_count client in
  let peer = List.hd (Testbed.peers_at t "gatech01") in
  Client.ignore_peer client ~server:"gatech01" ~peer;
  check Alcotest.bool "ignored peer's routes dropped" true
    (Client.route_count client < before)

(* ------------------------------------------------------------------ *)
(* Portal *)

let test_portal_accounts () =
  let t = Lazy.force testbed in
  let portal = Portal.create t in
  (match Portal.register portal ~username:"alice" ~email:"a@usc.edu"
           ~affiliation:"USC" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Portal.register portal ~username:"alice" ~email:"x@y.edu"
           ~affiliation:"other" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate username accepted");
  (* no affiliation, non-.edu address: held *)
  (match Portal.register portal ~username:"anon" ~email:"x@example.com"
           ~affiliation:"  " with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "anonymous account auto-approved");
  check Alcotest.bool "approved" true
    (match Portal.account portal "alice" with
    | Some a -> a.Portal.approved
    | None -> false)

let test_portal_board () =
  let t = Lazy.force testbed in
  let portal = Portal.create t in
  (match Portal.register portal ~username:"bob" ~email:"b@gatech.edu"
           ~affiliation:"Georgia Tech" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a good proposal and a bad one (unjustified poisoning) *)
  (match
     Portal.submit portal ~username:"bob" ~id:"portal-good"
       ~description:
         "measure interdomain route convergence with controlled announcements"
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Portal.submit portal ~username:"bob" ~id:"portal-bad"
       ~description:"a generic study that wants dangerous capabilities"
       ~wants_poison:true ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "two pending" 2 (List.length (Portal.pending portal));
  let outcomes = Portal.run_board portal in
  check Alcotest.int "queue drained" 0 (List.length (Portal.pending portal));
  (match List.assoc "portal-good" outcomes with
  | Ok e ->
    check Alcotest.bool "provisioned active" true (Experiment.is_active e)
  | Error e -> Alcotest.failf "good proposal rejected: %s" e);
  (match List.assoc "portal-bad" outcomes with
  | Error reason ->
    check Alcotest.bool "mentions poisoning" true
      (String.length reason > 0)
  | Ok _ -> Alcotest.fail "unjustified poisoning approved");
  (* a justified poisoning proposal passes the safety reviewer *)
  (match
     Portal.submit portal ~username:"bob" ~id:"portal-poison"
       ~description:
         "LIFEGUARD-style rerouting using BGP poisoning to avoid failures"
       ~wants_poison:true ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match List.assoc "portal-poison" (Portal.run_board portal) with
  | Ok e -> check Alcotest.bool "may poison" true e.Experiment.may_poison
  | Error e -> Alcotest.failf "justified poisoning rejected: %s" e

let test_portal_provisioning () =
  let t = Lazy.force testbed in
  let portal = Portal.create t in
  (match Portal.register portal ~username:"carol" ~email:"c@ufmg.br"
           ~affiliation:"UFMG" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Portal.submit portal ~username:"carol" ~id:"portal-prov"
       ~description:"anycast catchment measurements from all PEERING sites"
       ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Portal.run_board portal with
  | [ (_, Ok _) ] -> ()
  | _ -> Alcotest.fail "provisioning failed");
  match Portal.provision portal ~experiment_id:"portal-prov" with
  | Error e -> Alcotest.fail e
  | Ok kit ->
    check Alcotest.int "one endpoint per site" 3 (List.length kit.Portal.sites);
    (* the generated config parses and compiles with our own tools *)
    let parsed = Peering_router.Config.parse_exn kit.Portal.client_config in
    (match Peering_router.Config.bgp parsed with
    | Some bgp ->
      check Alcotest.int "asn 47065" 47065
        (Asn.to_int bgp.Peering_router.Config.asn);
      check Alcotest.int "neighbors = sites" 3
        (List.length bgp.Peering_router.Config.neighbors);
      check Alcotest.int "networks = prefixes" 1
        (List.length bgp.Peering_router.Config.networks)
    | None -> Alcotest.fail "no bgp block in generated config");
    (match Peering_router.Config.compile_route_map parsed "EXPORT" with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "generated route-map: %s" e)

(* ------------------------------------------------------------------ *)
(* Remote peering + IPv6 allocation *)

let test_remote_peering () =
  let params =
    { Testbed.default_params with
      Testbed.world = small_world;
      university_sites = [];
      with_phoenix = false
    }
  in
  let t = Testbed.build ~params () in
  let before = List.length (Testbed.peers_at t "amsterdam01") in
  let fabric = Testbed.add_remote_ixp t ~via:"amsterdam01" ~name:"DE-CIX" () in
  let after = List.length (Testbed.peers_at t "amsterdam01") in
  check Alcotest.bool "peers grew" true (after > before);
  check Alcotest.bool "no more than fabric RS users" true
    (after - before
    <= List.length (Peering_ixp.Fabric.route_server_users fabric));
  (* an announcement now also reaches the remote peers directly *)
  let exp =
    match Testbed.new_experiment t ~id:"remote" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-remote" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  check Alcotest.bool "reaches internet" true (Testbed.reach_count t p > 0)

let test_route_server_to_mux_integration () =
  (* Control-plane path the AMS-IX deployment uses: members announce to
     the IXP route server; the server's deliveries feed the PEERING
     mux, which relays per-peer routes to clients. *)
  let e = Engine.create () in
  let safety =
    Safety.create ~peering_asn:(asn 47065) ~owns:(fun _ -> true) ()
  in
  let server =
    Server.create e ~name:"ams" ~asn:(asn 47065) ~safety
      ~export:(fun _ -> ()) ()
  in
  let rs = Peering_ixp.Route_server.create () in
  let members = [ asn 100; asn 200; asn 300 ] in
  List.iter
    (fun m ->
      Peering_ixp.Route_server.connect rs m;
      Server.add_peer server ~kind:Server.Route_server_peer m)
    members;
  Peering_ixp.Route_server.connect rs (asn 47065);
  let exp =
    Experiment.make ~id:"rs-int" ~owner:"o"
      ~description:"route server to mux integration exercise" ()
  in
  exp.Experiment.status <- Experiment.Active;
  let client = Client.create ~id:"rs-client" ~experiment:exp () in
  Client.connect client server;
  (* member 100 announces through the route server *)
  let route =
    Peering_bgp.Route.make
      (pfx "10.100.0.0/16")
      (Peering_bgp.Attrs.make
         ~as_path:(Peering_bgp.As_path.of_asns [ asn 100 ])
         ~next_hop:(Ipv4.of_octets 192 0 2 100)
         ())
  in
  let deliveries =
    Peering_ixp.Route_server.announce rs ~from:(asn 100) route
  in
  (* the server hears the RS delivery addressed to PEERING *)
  List.iter
    (fun (to_member, (r : Peering_bgp.Route.t)) ->
      if Asn.equal to_member (asn 47065) then
        Server.learn_route server ~peer:(asn 100)
          ~path:
            (List.map Fun.id
               (Peering_bgp.As_path.to_asns r.Peering_bgp.Route.attrs.Peering_bgp.Attrs.as_path))
          r.Peering_bgp.Route.prefix)
    deliveries;
  check Alcotest.int "client sees the member route" 1
    (Client.route_count client);
  match Client.best client (pfx "10.100.0.0/16") with
  | Some r ->
    check Alcotest.(option int) "origin preserved" (Some 100)
      (Option.map Asn.to_int (Peering_bgp.Route.origin_asn r))
  | None -> Alcotest.fail "route missing"

let test_monitoring () =
  let params =
    { Testbed.default_params with
      Testbed.world = small_world;
      university_sites = [ ("gatech01", 2) ];
      with_phoenix = false
    }
  in
  let t = Testbed.build ~params () in
  let exp =
    match Testbed.new_experiment t ~id:"monitor" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-mon" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  let col = Testbed.collector t in
  Peering_measure.Collector.clear col;
  Testbed.start_monitoring t ~interval:60.0 ~rounds:3 ();
  Engine.run ~until:500.0 (Testbed.engine t);
  check Alcotest.int "three rounds" 3 (Testbed.monitoring_rounds_completed t);
  (* 16 vantages x 3 rounds x 1 prefix *)
  check Alcotest.int "measurements recorded" 48
    (Peering_measure.Collector.n_entries col);
  (* measurement paths end at PEERING *)
  match Peering_measure.Collector.entries col with
  | e :: _ ->
    check Alcotest.int "path reaches PEERING" 47065
      (Asn.to_int (List.nth e.Peering_measure.Collector.path
                     (List.length e.Peering_measure.Collector.path - 1)))
  | [] -> Alcotest.fail "no entries"

let test_sdx_policy_composition () =
  let e = Engine.create () in
  let fwd = Peering_dataplane.Forwarder.create e in
  let open Peering_dataplane in
  (* Three participants around the fabric. *)
  List.iter (Forwarder.add_node fwd) [ "pA"; "pB"; "pC" ];
  let sdx = Sdx.create e fwd ~name:"test-ix" () in
  Sdx.attach_participant sdx ~asn:(asn 100) ~node:"pA";
  Sdx.attach_participant sdx ~asn:(asn 200) ~node:"pB";
  Sdx.attach_participant sdx ~asn:(asn 300) ~node:"pC";
  (* both B and C can reach the content prefix; C announced first *)
  Sdx.announce sdx ~from:(asn 300) (pfx "198.51.100.0/24");
  Sdx.announce sdx ~from:(asn 200) (pfx "198.51.100.0/24");
  (* A prefers B for web traffic *)
  Sdx.set_policy sdx ~asn:(asn 100)
    [ { Sdx.description = "web-via-B";
        matches =
          { Packet_program.match_any with
            Packet_program.dst_in = Some (pfx "198.51.100.0/24");
            dport = Some 80
          };
        action = Sdx.Forward_to (asn 200)
      };
      (* a bogus rule: D never announced anything covering this *)
      { Sdx.description = "impossible";
        matches =
          { Packet_program.match_any with
            Packet_program.dst_in = Some (pfx "203.0.113.0/24")
          };
        action = Sdx.Forward_to (asn 300)
      }
    ];
  (match Sdx.compile sdx with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  check Alcotest.int "reachability check rejected the bogus rule" 1
    (List.length (Sdx.rejected_rules sdx));
  (* traffic from A enters the fabric from A's edge node: port 80 goes
     to B (policy), port 443 to C (BGP) *)
  Forwarder.set_route fwd "pA" (pfx "198.51.100.0/24")
    (Fib.Via (Sdx.fabric_node sdx));
  let inject dport =
    Forwarder.inject fwd ~at:"pA"
      (Packet.make
         ~src:(Ipv4.of_octets 10 0 100 1)
         ~dst:(Ipv4.of_octets 198 51 100 80)
         ~proto:(Packet.Tcp { sport = 9999; dport })
         ())
  in
  inject 80;
  inject 443;
  Engine.run ~until:2.0 e;
  check Alcotest.int "port 80 delivered via B" 1 (Sdx.delivered_to sdx (asn 200));
  check Alcotest.int "port 443 followed BGP to C" 1
    (Sdx.delivered_to sdx (asn 300));
  check Alcotest.int "A got nothing" 0 (Sdx.delivered_to sdx (asn 100))

let test_atlas_probes () =
  let t = Lazy.force testbed in
  let w = Testbed.world t in
  let atlas =
    Peering_measure.Atlas.deploy ~rng:(Peering_sim.Rng.create 9) ~world:w
      ~n:50
  in
  check Alcotest.int "50 probes" 50 (Peering_measure.Atlas.n_probes atlas);
  let distinct =
    List.sort_uniq Asn.compare
      (List.map
         (fun p -> p.Peering_measure.Atlas.host_asn)
         (Peering_measure.Atlas.probes atlas))
  in
  check Alcotest.int "distinct hosts" 50 (List.length distinct);
  (* measure toward an announced PEERING prefix *)
  let exp =
    match Testbed.new_experiment t ~id:"atlas" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-atlas" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  let oracle asn = Testbed.path_from t asn p in
  let reach = Peering_measure.Atlas.reachability atlas ~path_of:oracle in
  check Alcotest.bool "most probes reach" true (reach > 0.9);
  let rtts = List.filter_map snd (Peering_measure.Atlas.ping atlas ~path_of:oracle) in
  check Alcotest.bool "rtts positive" true (List.for_all (fun r -> r > 0.0) rtts);
  (* a traceroute ends at PEERING *)
  (match
     Peering_measure.Atlas.traceroute atlas ~path_of:oracle
       (List.hd (Peering_measure.Atlas.probes atlas))
   with
  | Some path ->
    check Alcotest.int "terminates at PEERING" 47065
      (Asn.to_int (List.nth path (List.length path - 1)))
  | None -> Alcotest.fail "probe unreachable");
  Client.withdraw client p;
  check Alcotest.(float 1e-9) "withdrawal visible to probes" 0.0
    (Peering_measure.Atlas.reachability atlas ~path_of:oracle)

let test_rov_containment () =
  let params =
    { Testbed.default_params with
      Testbed.world = small_world;
      university_sites = [];
      with_phoenix = false
    }
  in
  let t = Testbed.build ~params () in
  let exp =
    match Testbed.new_experiment t ~id:"rov-test" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-rov" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  ignore (Client.announce client p);
  let attacker = List.nth (Testbed.world t).Gen.small_transit 3 in
  Testbed.inject_external t ~origin:attacker p;
  let hijacked adopters =
    Testbed.set_rov t
      ~roas:
        (Peering_bgp.Rpki.add_roa Peering_bgp.Rpki.empty ~prefix:p
           Testbed.peering_asn)
      ~adopters;
    match Testbed.result_for t p with
    | None -> -1
    | Some r ->
      List.length
        (List.filter
           (fun a ->
             (not (Asn.equal a attacker))
             && Testbed.ingress_site t ~from_asn:a p = None)
           (Peering_topo.Propagation.reachable r))
  in
  let without = hijacked Asn.Set.empty in
  let all = Asn.Set.of_list (Peering_topo.As_graph.ases (Testbed.graph t)) in
  let with_full = hijacked all in
  check Alcotest.bool "hijack succeeds without ROV" true (without > 0);
  check Alcotest.int "universal ROV kills the hijack" 0 with_full;
  Testbed.clear_rov t;
  Testbed.retract_external t ~origin:attacker p

let test_beacon_schedule () =
  let params =
    { Testbed.default_params with
      Testbed.world = small_world;
      university_sites = [];
      with_phoenix = false
    }
  in
  let t = Testbed.build ~params () in
  let exp =
    match Testbed.new_experiment t ~id:"beacon" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client = Client.create ~id:"c-beacon" ~experiment:exp () in
  Testbed.connect_client t client ~sites:[ "amsterdam01" ];
  let p = List.hd exp.Experiment.prefixes in
  (* A classic well-spaced beacon: never dampened. *)
  let b = Beacon.start t client ~prefix:p ~period:1800.0 ~rounds:3 () in
  Engine.run ~until:(1800.0 *. 8.0) (Testbed.engine t);
  check Alcotest.int "all transitions executed" 6 (Beacon.transitions_executed b);
  check Alcotest.int "never suppressed" 0 (Beacon.suppressed b);
  (* strict alternation announce/withdraw at the period spacing *)
  let rec alternates expect = function
    | [] -> true
    | (_, kind) :: rest -> kind = expect
      && alternates (if expect = `Announce then `Withdraw else `Announce) rest
  in
  check Alcotest.bool "alternation" true (alternates `Announce (Beacon.events b));
  check Alcotest.int "prefix quiescent at the end" 0 (Testbed.reach_count t p);
  (* An abusive fast beacon trips dampening. *)
  let exp2 =
    match Testbed.new_experiment t ~id:"beacon-fast" () with
    | Ok e -> e
    | Error e -> Alcotest.fail e
  in
  let client2 = Client.create ~id:"c-beacon2" ~experiment:exp2 () in
  Testbed.connect_client t client2 ~sites:[ "amsterdam01" ];
  let p2 = List.hd exp2.Experiment.prefixes in
  let b2 = Beacon.start t client2 ~prefix:p2 ~period:30.0 ~rounds:6 () in
  Engine.run ~until:(1800.0 *. 8.0 +. 500.0) (Testbed.engine t);
  check Alcotest.bool "fast beacon suppressed" true (Beacon.suppressed b2 > 0)

let test_controller_v6 () =
  let e = Engine.create () in
  let ctl = Controller.create e ~supply:[ pfx "184.164.224.0/19" ] () in
  match
    Controller.propose ctl ~id:"v6" ~owner:"o"
      ~description:"dual stack experiment over PEERING v6 space"
      ~n_v6_prefixes:2 ()
  with
  | Error err -> Alcotest.fail err
  | Ok exp ->
    check Alcotest.int "two v6 blocks" 2
      (List.length exp.Experiment.v6_prefixes);
    List.iter
      (fun p ->
        check Alcotest.int "/48" 48 (Prefix6.len p);
        check Alcotest.bool "inside supply" true
          (Prefix6.subsumes (Prefix6.of_string_exn "2804:269c::/32") p))
      exp.Experiment.v6_prefixes;
    check Alcotest.bool "ownership test" true
      (Experiment.owns_v6_prefix exp
         (Prefix6.of_string_exn "2804:269c::/56"));
    let first = List.hd exp.Experiment.v6_prefixes in
    Controller.activate ctl exp;
    Controller.stop ctl exp;
    (* freed block is reused by the next experiment *)
    (match
       Controller.propose ctl ~id:"v6b" ~owner:"o"
         ~description:"a second v6 experiment reusing freed blocks"
         ~n_v6_prefixes:1 ()
     with
    | Ok exp2 ->
      check Alcotest.bool "block reused" true
        (Prefix6.equal first (List.hd exp2.Experiment.v6_prefixes))
    | Error err -> Alcotest.fail err)

(* ------------------------------------------------------------------ *)
(* Safety.release outcomes (ISSUE 9 regression): releases are
   claim-keyed per (client, prefix); double releases and releases of
   unclaimed prefixes must be explicit no-ops, and a foreign claim
   must survive a release attempt by the wrong client. *)

let test_safety_release_outcomes () =
  let s = mk_safety () in
  let exp = active_experiment () in
  let p = pfx "184.164.224.0/24" in
  (* release of a prefix nobody ever claimed *)
  check Alcotest.bool "release of unclaimed is Not_claimed" true
    (Safety.release s ~client:"c1" ~prefix:p = Safety.Not_claimed);
  (match
     Safety.check_announce s ~now:0.0 ~client:"c1" ~experiment:exp ~prefix:p
       ~path_suffix:[]
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "announce blocked: %s" (Safety.reason_to_string e));
  (* the wrong client cannot release someone else's claim ... *)
  (match Safety.release s ~client:"intruder" ~prefix:p with
  | Safety.Claimed_by_other owner ->
    check Alcotest.string "claim names the owner" "c1" owner
  | Safety.Released | Safety.Not_claimed ->
    Alcotest.fail "wrong client's release was not refused");
  (* ... and the registration survives the attempt *)
  check Alcotest.(option string) "registration intact" (Some "c1")
    (Safety.announced_by s p);
  (* the claim holder releases; a second release is a double release *)
  check Alcotest.bool "owner release succeeds" true
    (Safety.release s ~client:"c1" ~prefix:p = Safety.Released);
  check Alcotest.bool "double release is Not_claimed" true
    (Safety.release s ~client:"c1" ~prefix:p = Safety.Not_claimed);
  check Alcotest.(option string) "registry empty" None (Safety.announced_by s p)

(* ------------------------------------------------------------------ *)
(* Scheduler: fair-share batcher laws (QCheck) *)

(* Random workloads: a quota and a per-tenant demand vector. *)
let gen_batcher_case =
  QCheck.Gen.(
    pair (int_range 1 5) (list_size (int_range 1 6) (int_range 0 25)))

let arb_batcher_case =
  QCheck.make
    ~print:(fun (q, ds) ->
      Printf.sprintf "quota=%d demands=[%s]" q
        (String.concat ";" (List.map string_of_int ds)))
    gen_batcher_case

(* Deficit-round-robin fairness: after r rounds every tenant has been
   granted exactly [min demand (r * quota)] slots, so two tenants that
   both still have queued work never differ by more than one round's
   quota — and FIFO order within a tenant is preserved. *)
let prop_batcher_fair_share =
  QCheck.Test.make ~name:"batcher fair share and FIFO" ~count:200
    arb_batcher_case (fun (quota, demands) ->
      let b = Scheduler.Batcher.create ~quota in
      List.iteri
        (fun i d ->
          for s = 0 to d - 1 do
            Scheduler.Batcher.enqueue b ~tenant:(Printf.sprintf "t%02d" i) (i, s)
          done)
        demands;
      let rounds = Scheduler.Batcher.drain_all b in
      let n = List.length demands in
      let demand = Array.of_list demands in
      let granted = Array.make n 0 in
      let next_seq = Array.make n 0 in
      let ok = ref true in
      List.iteri
        (fun r_idx round ->
          let r = r_idx + 1 in
          List.iter
            (fun (tenant, ops) ->
              let i = int_of_string (String.sub tenant 1 2) in
              if List.length ops > quota then ok := false;
              List.iter
                (fun (ti, seq) ->
                  (* FIFO within the tenant: sequence numbers in order *)
                  if ti <> i || seq <> next_seq.(i) then ok := false;
                  next_seq.(i) <- next_seq.(i) + 1;
                  granted.(i) <- granted.(i) + 1)
                ops)
            round;
          (* exact fair share at every round boundary *)
          for i = 0 to n - 1 do
            if granted.(i) <> min demand.(i) (r * quota) then ok := false
          done;
          (* the satellite's law as stated: tenants with remaining
             demand never deviate by more than one batch *)
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              if granted.(i) < demand.(i) && granted.(j) < demand.(j) then
                if abs (granted.(i) - granted.(j)) > quota then ok := false
            done
          done)
        rounds;
      (* everything drains, nothing is invented *)
      for i = 0 to n - 1 do
        if granted.(i) <> demand.(i) then ok := false
      done;
      !ok && Scheduler.Batcher.pending b = 0)

(* FIFO must also survive enqueues interleaved with draining. *)
let test_batcher_interleaved_fifo () =
  let b = Scheduler.Batcher.create ~quota:2 in
  List.iter (fun s -> Scheduler.Batcher.enqueue b ~tenant:"a" s) [ 0; 1; 2 ];
  Scheduler.Batcher.enqueue b ~tenant:"b" 100;
  let r1 = Scheduler.Batcher.drain_round b in
  check
    Alcotest.(list (pair string (list int)))
    "round 1 grants quota per tenant, first-seen order"
    [ ("a", [ 0; 1 ]); ("b", [ 100 ]) ]
    r1;
  List.iter (fun s -> Scheduler.Batcher.enqueue b ~tenant:"a" s) [ 3; 4 ];
  Scheduler.Batcher.enqueue b ~tenant:"b" 101;
  let rest = List.concat (Scheduler.Batcher.drain_all b) in
  check
    Alcotest.(list int)
    "tenant a drains FIFO across interleaved enqueues"
    [ 2; 3; 4 ]
    (List.concat_map (fun (t, ops) -> if t = "a" then ops else []) rest);
  check
    Alcotest.(list int)
    "tenant b drains FIFO" [ 101 ]
    (List.concat_map (fun (t, ops) -> if t = "b" then ops else []) rest)

(* ------------------------------------------------------------------ *)
(* Scheduler: admission control, leases, isolation *)

let sched_proposal = Scheduler.proposal

let admit_ok sched p =
  match Scheduler.admit sched p with
  | Scheduler.Admitted _ -> ()
  | Scheduler.Rejected issues ->
    Alcotest.failf "%s rejected: %s" p.Scheduler.p_tenant
      (String.concat "; "
         (List.map (fun i -> i.Scheduler.issue_message) issues))

let rejected_with sched p code =
  match Scheduler.admit sched p with
  | Scheduler.Admitted _ ->
    Alcotest.failf "%s admitted; expected %s" p.Scheduler.p_tenant code
  | Scheduler.Rejected issues ->
    check Alcotest.bool
      (Printf.sprintf "%s rejected with %s" p.Scheduler.p_tenant code)
      true
      (List.exists (fun i -> i.Scheduler.issue_code = code) issues)

let test_sched_admission () =
  let t = build () in
  let sched =
    Scheduler.create ~vet:Peering_check.Admission.vet ~quota:2
      ~round_interval:0.5 t
  in
  admit_ok sched (sched_proposal "ten-a");
  admit_ok sched (sched_proposal "ten-b");
  check Alcotest.(list string) "both running" [ "ten-a"; "ten-b" ]
    (Scheduler.tenants sched);
  (* duplicate tenant id *)
  rejected_with sched (sched_proposal "ten-a") "SCHED-DUP";
  (* poisoning another live tenant's origin ASN is sabotage *)
  let a_asns =
    match Scheduler.client sched "ten-a" with
    | Some c -> (Client.experiment c).Experiment.private_asns
    | None -> Alcotest.fail "ten-a has no client"
  in
  rejected_with sched
    (sched_proposal ~may_poison:true ~poison_targets:a_asns "ten-c")
    "SCHED-XPOISON";
  (* public poison targets without board approval *)
  rejected_with sched
    (sched_proposal ~poison_targets:[ asn 3356 ] "ten-d")
    "SCHED-POISON";
  (* rejected proposals must leave no allocation behind *)
  let ctl = Testbed.controller t in
  let before = Controller.available_blocks ctl in
  rejected_with sched (sched_proposal "ten-a") "SCHED-DUP";
  check Alcotest.int "no allocation leaked by rejection" before
    (Controller.available_blocks ctl);
  (* announce through the batcher; requests outside the lease refused *)
  let pa = List.hd (Scheduler.leased_prefixes sched "ten-a") in
  (match Scheduler.request_announce sched ~tenant:"ten-a" pa with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Scheduler.request_announce sched ~tenant:"ten-b" pa with
  | Ok () -> Alcotest.fail "announce outside lease accepted"
  | Error _ -> ());
  (match Scheduler.request_announce sched ~tenant:"missing" pa with
  | Ok () -> Alcotest.fail "announce for unknown tenant accepted"
  | Error _ -> ());
  ignore (Scheduler.pump sched);
  check Alcotest.bool "announced prefix reaches the world" true
    (Testbed.reach_count t pa > 0);
  check Alcotest.int "no isolation violations" 0
    (Scheduler.isolation_violations sched);
  (* eviction returns the lease to the pool and withdraws the routes *)
  let before = Controller.available_blocks ctl in
  check Alcotest.bool "evict" true
    (Scheduler.evict sched ~tenant:"ten-a" ~reason:"test revocation");
  check Alcotest.bool "evicted tenant gone" false
    (Scheduler.is_running sched "ten-a");
  check Alcotest.int "lease returned to pool" (before + 1)
    (Controller.available_blocks ctl);
  check Alcotest.int "withdrawn on eviction" 0 (Testbed.reach_count t pa);
  check Alcotest.(option string) "safety claim released" None
    (Safety.announced_by (Testbed.safety t) pa)

let test_sched_lease_expiry () =
  let t = build () in
  let eng = Testbed.engine t in
  let sched = Scheduler.create ~quota:4 ~round_interval:0.5 t in
  admit_ok sched (sched_proposal ~lease_s:20.0 "short-lease");
  admit_ok sched (sched_proposal ~lease_s:20.0 "renewed");
  let p = List.hd (Scheduler.leased_prefixes sched "short-lease") in
  (match Scheduler.request_announce sched ~tenant:"short-lease" p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Engine.run_for eng 5.0;
  check Alcotest.bool "announced via engine-scheduled round" true
    (Testbed.reach_count t p > 0);
  (* a renewal pushes the second tenant past the first's expiry *)
  (match Scheduler.renew sched ~tenant:"renewed" ~lease_s:60.0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Engine.run_for eng 20.0;  (* past t=20, before t=65 *)
  check Alcotest.bool "expired lease evicts the tenant" false
    (Scheduler.is_running sched "short-lease");
  check Alcotest.bool "renewed tenant survives its old expiry" true
    (Scheduler.is_running sched "renewed");
  check Alcotest.int "expired tenant's routes withdrawn" 0
    (Testbed.reach_count t p);
  Engine.run_for eng 50.0;
  check Alcotest.bool "renewed lease expires too" false
    (Scheduler.is_running sched "renewed")

let test_sched_policy_composition () =
  let t = build () in
  let sched = Scheduler.create t in
  admit_ok sched (sched_proposal ~sites:[ "gatech01" ] "pol-a");
  admit_ok sched (sched_proposal "pol-b");
  let pa = List.hd (Scheduler.leased_prefixes sched "pol-a") in
  let pb = List.hd (Scheduler.leased_prefixes sched "pol-b") in
  (* in-scope policy on a connected site composes fine *)
  (match
     Scheduler.set_policy sched ~tenant:"pol-a"
       [ { Scheduler.pol_dst = pa;
           pol_action = Scheduler.Deliver_via "gatech01"
         }
       ]
   with
  | Ok () -> ()
  | Error issues ->
    Alcotest.failf "in-scope policy rejected: %s"
      (String.concat "; "
         (List.map (fun i -> i.Scheduler.issue_message) issues)));
  check Alcotest.int "policy installed" 1
    (List.length (Scheduler.policy sched "pol-a"));
  let rejected_policy rules code =
    match Scheduler.set_policy sched ~tenant:"pol-a" rules with
    | Ok () -> Alcotest.failf "policy accepted; expected %s" code
    | Error issues ->
      check Alcotest.bool code true
        (List.exists (fun i -> i.Scheduler.issue_code = code) issues)
  in
  (* matching another tenant's lease violates isolation *)
  rejected_policy
    [ { Scheduler.pol_dst = pb; pol_action = Scheduler.Drop_traffic } ]
    "SCHED-POLICY-ISOLATION";
  (* matching outside PEERING space entirely is out of scope *)
  rejected_policy
    [ { Scheduler.pol_dst = pfx "10.10.0.0/24";
        pol_action = Scheduler.Drop_traffic
      }
    ]
    "SCHED-POLICY-SCOPE";
  (* delivering via a site the tenant is not connected to *)
  rejected_policy
    [ { Scheduler.pol_dst = pa;
        pol_action = Scheduler.Deliver_via "amsterdam01"
      }
    ]
    "SCHED-POLICY-SITE";
  (* rejection installs nothing: the old policy survives *)
  check Alcotest.int "rejected policy not installed" 1
    (List.length (Scheduler.policy sched "pol-a"))

let () =
  Alcotest.run "core"
    [ ( "controller",
        [ tc "vetting" `Quick test_controller_vetting;
          tc "pool exhaustion" `Quick test_controller_pool_exhaustion;
          tc "scheduling" `Quick test_controller_scheduling;
          tc "donation" `Quick test_controller_donation
        ] );
      ( "safety",
        [ tc "hijack blocked" `Quick test_safety_hijack_blocked;
          tc "isolation" `Quick test_safety_isolation;
          tc "inactive" `Quick test_safety_inactive;
          tc "poisoning permission" `Quick test_safety_poisoning_permission;
          tc "dampening" `Quick test_safety_dampening;
          tc "dampened while registered" `Quick
            test_safety_dampened_while_registered;
          tc "announce after release" `Quick test_safety_announce_after_release;
          tc "release outcomes" `Quick test_safety_release_outcomes
        ] );
      ( "scheduler",
        [ QCheck_alcotest.to_alcotest prop_batcher_fair_share;
          tc "batcher interleaved FIFO" `Quick test_batcher_interleaved_fifo;
          tc "admission" `Quick test_sched_admission;
          tc "lease expiry" `Quick test_sched_lease_expiry;
          tc "policy composition" `Quick test_sched_policy_composition
        ] );
      ("capability", [ tc "table 1 claims" `Quick test_capability_claims ]);
      ( "testbed",
        [ tc "build" `Quick test_testbed_build;
          tc "announce reaches internet" `Quick test_testbed_announce_reaches_internet;
          tc "selective announcement" `Quick test_testbed_selective_announcement;
          tc "hijack contained" `Quick test_testbed_hijack_contained;
          tc "anycast catchment" `Quick test_testbed_anycast_catchment;
          tc "failure avoidance" `Quick test_testbed_failure_avoidance;
          tc "MOAS hijack study" `Quick test_testbed_moas_hijack_study;
          tc "client receives routes" `Quick test_testbed_client_receives_routes;
          tc "session stats" `Quick test_server_session_stats;
          tc "ignore peer" `Quick test_client_ignore_peer
        ] );
      ( "portal",
        [ tc "accounts" `Quick test_portal_accounts;
          tc "advisory board" `Quick test_portal_board;
          tc "provisioning" `Quick test_portal_provisioning
        ] );
      ( "extensions",
        [ tc "remote peering" `Quick test_remote_peering;
          tc "route server to mux" `Quick test_route_server_to_mux_integration;
          tc "monitoring" `Quick test_monitoring;
          tc "beacon" `Quick test_beacon_schedule;
          tc "sdx policy composition" `Quick test_sdx_policy_composition;
          tc "atlas probes" `Quick test_atlas_probes;
          tc "rov containment" `Quick test_rov_containment;
          tc "ipv6 allocation" `Quick test_controller_v6
        ] )
    ]
