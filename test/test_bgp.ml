open Peering_net
open Peering_bgp

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* As_path *)

let test_path_prepend () =
  let p = As_path.of_asns [ asn 2; asn 3 ] in
  let p = As_path.prepend (asn 1) p in
  check Alcotest.(list int) "prepend extends seq" [ 1; 2; 3 ]
    (List.map Asn.to_int (As_path.to_asns p));
  check Alcotest.int "length" 3 (As_path.length p);
  let p5 = As_path.prepend_n (asn 9) 3 p in
  check Alcotest.int "prepend_n" 6 (As_path.length p5);
  check Alcotest.(option int) "neighbor" (Some 9)
    (Option.map Asn.to_int (As_path.neighbor_asn p5));
  check Alcotest.(option int) "origin" (Some 3)
    (Option.map Asn.to_int (As_path.origin_asn p5))

let test_path_set_length () =
  let p = [ As_path.Seq [ asn 1; asn 2 ]; As_path.Set [ asn 3; asn 4; asn 5 ] ] in
  check Alcotest.int "set counts one" 3 (As_path.length p);
  check Alcotest.bool "mem in set" true (As_path.mem (asn 4) p);
  check Alcotest.bool "not mem" false (As_path.mem (asn 9) p)

let test_path_strip_private () =
  let p = As_path.of_asns [ asn 47065; asn 64512; asn 65000; asn 3356 ] in
  let stripped = As_path.strip_private p in
  check Alcotest.(list int) "private gone" [ 47065; 3356 ]
    (List.map Asn.to_int (As_path.to_asns stripped));
  (* all-private segment disappears entirely *)
  let q = [ As_path.Seq [ asn 64512; asn 64513 ] ] in
  check Alcotest.bool "empty after strip" true (As_path.strip_private q = [])

let test_path_aggregate () =
  let p = As_path.of_asns [ asn 1; asn 2; asn 3 ] in
  let q = As_path.of_asns [ asn 1; asn 2; asn 4 ] in
  match As_path.aggregate p q with
  | [ As_path.Seq common; As_path.Set tail ] ->
    check Alcotest.(list int) "common" [ 1; 2 ] (List.map Asn.to_int common);
    check Alcotest.(list int) "tail set" [ 3; 4 ] (List.map Asn.to_int tail)
  | _ -> Alcotest.fail "unexpected aggregate shape"

(* ------------------------------------------------------------------ *)
(* Community *)

let test_community_parts () =
  let c = Community.make 47065 1001 in
  check Alcotest.int "asn part" 47065 (Community.asn_part c);
  check Alcotest.int "value part" 1001 (Community.value_part c);
  check Alcotest.string "to_string" "47065:1001" (Community.to_string c);
  check Alcotest.bool "of_string" true
    (Community.of_string "47065:1001" = Some c)

let test_community_well_known () =
  check Alcotest.string "no-export" "no-export"
    (Community.to_string Community.no_export);
  check Alcotest.bool "well known" true
    (Community.is_well_known Community.no_advertise)

let test_community_sets () =
  let a = Community.make 1 1 and b = Community.make 1 2 in
  let l = Community.add b (Community.add a (Community.add b [])) in
  check Alcotest.int "no duplicates" 2 (List.length l);
  check Alcotest.bool "mem" true (Community.mem a l);
  let l = Community.remove a l in
  check Alcotest.bool "removed" false (Community.mem a l)

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let sample_attrs =
  Attrs.make ~origin:Attrs.IGP
    ~as_path:(As_path.of_asns [ asn 47065; asn 3356; asn 15169 ])
    ~med:50 ~local_pref:120
    ~communities:[ Community.make 47065 100; Community.no_export ]
    ~aggregator:(asn 47065, ip "184.164.224.1")
    ~next_hop:(ip "192.0.2.1") ()

let roundtrip opts msg =
  Wire.decode_exn opts (Wire.encode opts msg)

let test_wire_keepalive () =
  let opts = Wire.default_opts in
  match roundtrip opts Message.Keepalive with
  | Message.Keepalive -> ()
  | _ -> Alcotest.fail "keepalive roundtrip"

let test_wire_open () =
  let opts = Wire.default_opts in
  let o =
    { Message.version = 4;
      asn = asn 47065;
      hold_time = 90;
      router_id = ip "10.0.0.1";
      capabilities =
        [ Capability.Four_octet_asn 47065;
          Capability.Route_refresh;
          Capability.Add_path Capability.Send_receive;
          Capability.Graceful_restart 120
        ]
    }
  in
  match roundtrip opts (Message.Open o) with
  | Message.Open o' ->
    check Alcotest.int "asn" 47065 (Asn.to_int o'.Message.asn);
    check Alcotest.int "hold" 90 o'.Message.hold_time;
    check Alcotest.int "caps" 4 (List.length o'.Message.capabilities);
    check Alcotest.bool "add-path negotiable" true
      (Capability.negotiated_add_path o.Message.capabilities
         o'.Message.capabilities)
  | _ -> Alcotest.fail "open roundtrip"

let test_wire_open_4byte_asn () =
  (* An ASN above 65535 must ride in the capability, with AS_TRANS in
     the fixed field. *)
  let opts = Wire.default_opts in
  let o =
    { Message.version = 4;
      asn = asn 200000;
      hold_time = 30;
      router_id = ip "1.1.1.1";
      capabilities = [ Capability.Four_octet_asn 200000 ]
    }
  in
  match roundtrip opts (Message.Open o) with
  | Message.Open o' -> check Alcotest.int "4-byte asn recovered" 200000
      (Asn.to_int o'.Message.asn)
  | _ -> Alcotest.fail "roundtrip"

let test_wire_update () =
  List.iter
    (fun opts ->
      let u =
        { Message.withdrawn = [ (0, pfx "10.11.0.0/16") ];
          attrs = Some sample_attrs;
          nlri = [ (0, pfx "184.164.224.0/24"); (0, pfx "184.164.225.0/24") ]
        }
      in
      match roundtrip opts (Message.Update u) with
      | Message.Update u' ->
        check Alcotest.int "withdrawn" 1 (List.length u'.Message.withdrawn);
        check Alcotest.int "nlri" 2 (List.length u'.Message.nlri);
        let a = Option.get u'.Message.attrs in
        check Alcotest.bool "attrs equal" true (Attrs.equal sample_attrs a)
      | _ -> Alcotest.fail "update roundtrip")
    [ { Wire.four_octet_asn = false; add_path = false };
      { Wire.four_octet_asn = true; add_path = false } ]

let test_wire_update_add_path () =
  let opts = { Wire.four_octet_asn = true; add_path = true } in
  let u =
    { Message.withdrawn = [ (7, pfx "10.0.0.0/8") ];
      attrs = Some sample_attrs;
      nlri = [ (42, pfx "184.164.224.0/24") ]
    }
  in
  match roundtrip opts (Message.Update u) with
  | Message.Update u' ->
    check Alcotest.(list (pair int string)) "path ids survive"
      [ (42, "184.164.224.0/24") ]
      (List.map (fun (i, p) -> (i, Prefix.to_string p)) u'.Message.nlri);
    check Alcotest.(list int) "withdraw path id" [ 7 ]
      (List.map fst u'.Message.withdrawn)
  | _ -> Alcotest.fail "add-path roundtrip"

let test_wire_notification () =
  let n = { Message.code = 6; subcode = 0; reason = "administrative reset" } in
  match roundtrip Wire.default_opts (Message.Notification n) with
  | Message.Notification n' ->
    check Alcotest.string "reason" "administrative reset" n'.Message.reason;
    check Alcotest.int "code" 6 n'.Message.code
  | _ -> Alcotest.fail "notification roundtrip"

let test_wire_truncated () =
  let b = Wire.encode Wire.default_opts Message.Keepalive in
  let short = Bytes.sub b 0 (Bytes.length b - 1) in
  match Wire.decode Wire.default_opts short ~pos:0 with
  | Error Wire.Truncated -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)
  | Ok _ -> Alcotest.fail "decoded truncated message"

let test_wire_bad_marker () =
  let b = Wire.encode Wire.default_opts Message.Keepalive in
  Bytes.set b 3 '\x00';
  match Wire.decode Wire.default_opts b ~pos:0 with
  | Error Wire.Bad_marker -> ()
  | _ -> Alcotest.fail "accepted bad marker"

(* Cursor vs eager: both decode paths must return the same message or
   the same error on the classic corruption cases. The wide sweep lives
   in the @mrt-roundtrip harness; these pin the named cases. *)
let both_agree name opts buf expect =
  let cursor = Wire.decode opts buf ~pos:0 in
  let eager = Wire.decode_eager opts buf ~pos:0 in
  (match (cursor, eager) with
  | Error c, Error e when c = e -> ()
  | Ok (mc, nc), Ok (me, ne) when mc = me && nc = ne -> ()
  | _ -> Alcotest.failf "%s: cursor and eager disagree" name);
  match (expect, cursor) with
  | None, Ok _ -> ()
  | Some want, Error got when want = got -> ()
  | Some want, _ ->
    Alcotest.failf "%s: expected %s, got %s" name
      (Wire.error_to_string want)
      (match cursor with
      | Ok _ -> "Ok"
      | Error e -> Wire.error_to_string e)
  | None, Error e ->
    Alcotest.failf "%s: expected Ok, got %s" name (Wire.error_to_string e)

let test_wire_cursor_eager_errors () =
  let opts = Wire.default_opts in
  let upd =
    Wire.encode opts (Message.update_of_announce (pfx "10.1.0.0/16") sample_attrs)
  in
  both_agree "intact" opts upd None;
  (* Truncated header: fewer than 19 bytes. *)
  both_agree "truncated header" opts (Bytes.sub upd 0 12) (Some Wire.Truncated);
  (* Bad marker byte. *)
  let bad = Bytes.copy upd in
  Bytes.set bad 7 '\x42';
  both_agree "bad marker" opts bad (Some Wire.Bad_marker);
  (* Attribute length overrun: total-attrs length past the body. *)
  let bad = Bytes.copy upd in
  Bytes.set bad 22 (Char.chr (Char.code (Bytes.get bad 22) + 4));
  both_agree "attrs length overrun" opts bad (Some Wire.Truncated);
  (* Per-attribute length overrun: first TLV's length runs past the
     attribute section. *)
  let bad = Bytes.copy upd in
  Bytes.set bad 25 (Char.chr 200);
  (match (Wire.decode opts bad ~pos:0, Wire.decode_eager opts bad ~pos:0) with
  | Error c, Error e when c = e -> ()
  | _ -> Alcotest.fail "attr TLV overrun: decoders disagree");
  (* Truncation at every offset of the UPDATE agrees. *)
  for len = 0 to Bytes.length upd - 1 do
    let cut = Bytes.sub upd 0 len in
    match (Wire.decode opts cut ~pos:0, Wire.decode_eager opts cut ~pos:0) with
    | Error c, Error e when c = e -> ()
    | Ok _, Ok _ -> Alcotest.failf "cut at %d decoded" len
    | _ -> Alcotest.failf "cut at %d: decoders disagree" len
  done

let test_wire_update_view_lazy () =
  let opts = Wire.default_opts in
  let u =
    { Message.withdrawn = [ (0, pfx "10.11.0.0/16") ];
      attrs = Some sample_attrs;
      nlri = [ (0, pfx "184.164.224.0/24") ]
    }
  in
  let b = Wire.encode opts (Message.Update u) in
  match Wire.view opts b ~pos:0 with
  | Error e -> Alcotest.failf "view: %s" (Wire.error_to_string e)
  | Ok (Wire.Update_v v, n) ->
    check Alcotest.int "consumed" (Bytes.length b) n;
    (* Sections decode independently and repeatably. *)
    (match Wire.Update_view.nlri v with
    | Ok [ (0, p) ] ->
      check Alcotest.string "nlri" "184.164.224.0/24" (Prefix.to_string p)
    | _ -> Alcotest.fail "nlri");
    (match Wire.Update_view.withdrawn v with
    | Ok [ (0, p) ] ->
      check Alcotest.string "withdrawn" "10.11.0.0/16" (Prefix.to_string p)
    | _ -> Alcotest.fail "withdrawn");
    (match Wire.Update_view.attrs v with
    | Ok (Some a) ->
      check Alcotest.bool "attrs equal" true (Attrs.equal sample_attrs a)
    | _ -> Alcotest.fail "attrs");
    (* attr_raw finds a TLV body without a full attribute parse:
       ORIGIN (code 1) is one byte, IGP = 0. *)
    (match Wire.Update_view.attr_raw v ~code:1 with
    | Ok (Some body) ->
      check Alcotest.int "origin len" 1 (Bytes.length body);
      check Alcotest.int "origin IGP" 0 (Char.code (Bytes.get body 0))
    | _ -> Alcotest.fail "attr_raw origin");
    (match Wire.Update_view.attr_raw v ~code:14 with
    | Ok None -> ()
    | _ -> Alcotest.fail "attr_raw absent code");
    (* And the forced view equals the eager decode. *)
    (match (Wire.to_message (Wire.Update_v v), Wire.decode_eager opts b ~pos:0) with
    | Ok m, Ok (m', _) when m = m' -> ()
    | _ -> Alcotest.fail "to_message vs eager")
  | Ok _ -> Alcotest.fail "not an update view"

(* A view on a frame with a valid header but corrupt body succeeds;
   the error surfaces, identically to eager, only when forced. *)
let test_wire_view_defers_body_errors () =
  let opts = Wire.default_opts in
  let b =
    Wire.encode opts (Message.update_of_announce (pfx "10.1.0.0/16") sample_attrs)
  in
  Bytes.set b 25 (Char.chr 200) (* first TLV length overruns *);
  match Wire.view opts b ~pos:0 with
  | Error e -> Alcotest.failf "view should defer: %s" (Wire.error_to_string e)
  | Ok (v, _) -> (
    match (Wire.to_message v, Wire.decode_eager opts b ~pos:0) with
    | Error c, Error e when c = e -> ()
    | _ -> Alcotest.fail "deferred error differs from eager")

let test_wire_encode_attrs_next_hop () =
  let opts = { Wire.four_octet_asn = true; add_path = false } in
  let with_nh = Wire.encode_attrs opts sample_attrs in
  let without = Wire.encode_attrs ~with_next_hop:false opts sample_attrs in
  check Alcotest.bool "omitting NEXT_HOP shrinks the section" true
    (Bytes.length without < Bytes.length with_nh);
  (* Round trip through the bare-section decoder. *)
  (match Wire.decode_attrs opts (Wire.Cursor.of_bytes with_nh) with
  | Ok (Some a) -> check Alcotest.bool "full section" true
      (Attrs.equal sample_attrs a)
  | _ -> Alcotest.fail "decode_attrs with next hop");
  (* Without NEXT_HOP the strict decoder rejects ... *)
  (match Wire.decode_attrs opts (Wire.Cursor.of_bytes without) with
  | Error (Wire.Bad_attribute _) -> ()
  | _ -> Alcotest.fail "strict decode accepted missing NEXT_HOP");
  (* ... and the MRT-mode decoder substitutes 0.0.0.0. *)
  match Wire.decode_attrs ~require_next_hop:false opts
          (Wire.Cursor.of_bytes without)
  with
  | Ok (Some a) ->
    check Alcotest.string "placeholder next hop" "0.0.0.0"
      (Ipv4.to_string a.Attrs.next_hop);
    check Alcotest.bool "rest of attrs survive" true
      (Attrs.equal sample_attrs { a with Attrs.next_hop = sample_attrs.Attrs.next_hop })
  | _ -> Alcotest.fail "lenient decode failed"

let test_wire_stream () =
  (* Multiple messages back to back decode sequentially. *)
  let opts = Wire.default_opts in
  let m1 = Wire.encode opts Message.Keepalive in
  let m2 = Wire.encode opts (Message.update_of_withdraw (pfx "10.0.0.0/8")) in
  let buf = Bytes.cat m1 m2 in
  match Wire.decode opts buf ~pos:0 with
  | Ok (Message.Keepalive, n) -> (
    match Wire.decode opts buf ~pos:n with
    | Ok (Message.Update u, n') ->
      check Alcotest.int "consumed all" (Bytes.length buf) n';
      check Alcotest.int "withdraw count" 1 (List.length u.Message.withdrawn)
    | _ -> Alcotest.fail "second message")
  | _ -> Alcotest.fail "first message"

(* QCheck: random updates roundtrip. *)
let gen_asn = QCheck.Gen.map asn (QCheck.Gen.int_range 1 70000)

let gen_prefix =
  QCheck.Gen.(
    let* len = int_range 8 32 in
    let* a = int_range 0 0xFFFFFF in
    return (Prefix.make (Ipv4.of_int (a * 256)) len))

let gen_attrs =
  QCheck.Gen.(
    let* path_len = int_range 1 6 in
    let* asns = list_repeat path_len gen_asn in
    let* med = opt (int_range 0 1000) in
    let* lp = opt (int_range 0 500) in
    let* n_comm = int_range 0 4 in
    let* comms =
      list_repeat n_comm
        (let* a = int_range 0 0xFFFF in
         let* v = int_range 0 0xFFFF in
         return (Community.make a v))
    in
    let* nh = int_range 1 0xFFFFFF in
    return
      (Attrs.make ~as_path:(As_path.of_asns asns) ?med ?local_pref:lp
         ~communities:comms ~next_hop:(Ipv4.of_int nh) ()))

let gen_update =
  QCheck.Gen.(
    let* n_w = int_range 0 3 in
    let* withdrawn = list_repeat n_w gen_prefix in
    let* n_n = int_range 0 3 in
    let* nlri = list_repeat n_n gen_prefix in
    let* attrs = gen_attrs in
    let dedup l =
      List.sort_uniq Prefix.compare l |> List.map (fun p -> (0, p))
    in
    let nlri = dedup nlri in
    return
      { Message.withdrawn = dedup withdrawn;
        attrs = (if nlri = [] then None else Some attrs);
        nlri
      })

let prop_update_roundtrip =
  QCheck.Test.make ~name:"wire update roundtrip" ~count:300
    (QCheck.make gen_update) (fun u ->
      let opts = { Wire.four_octet_asn = true; add_path = false } in
      match roundtrip opts (Message.Update u) with
      | Message.Update u' ->
        u'.Message.withdrawn = u.Message.withdrawn
        && u'.Message.nlri = u.Message.nlri
        && (match (u.Message.attrs, u'.Message.attrs) with
           | None, None -> true
           | Some a, Some b -> Attrs.equal a b
           | _ -> false)
      | _ -> false)

(* Fuzz: arbitrary bytes must decode to an error, never raise. *)
let prop_decode_never_raises =
  QCheck.Test.make ~name:"wire decode total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s ->
      match
        Wire.decode Wire.default_opts (Bytes.of_string s) ~pos:0
      with
      | Ok _ | Error _ -> true)

let prop_decode_corrupted_valid =
  QCheck.Test.make ~name:"wire decode total on corrupted messages" ~count:300
    QCheck.(pair (int_bound 100) (int_bound 255))
    (fun (pos_seed, byte) ->
      let u =
        { Message.withdrawn = [ (0, pfx "10.0.0.0/8") ];
          attrs = Some sample_attrs;
          nlri = [ (0, pfx "184.164.224.0/24") ]
        }
      in
      let b = Wire.encode Wire.default_opts (Message.Update u) in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match Wire.decode Wire.default_opts b ~pos:0 with
      | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* MP-BGP (RFC 4760, IPv6) *)

let v6 = Prefix6.of_string_exn

let test_mp_reach_roundtrip () =
  let opts = { Wire.four_octet_asn = true; add_path = false } in
  let u =
    Mp.announce ~attrs:sample_attrs
      ~next_hop:(Ipv6.of_string_exn "2804:269c::1")
      [ v6 "2804:269c:100::/48"; v6 "2001:db8::/32"; v6 "::/0";
        v6 "2804:269c::1/128" ]
  in
  match Mp.decode opts (Mp.encode opts u) with
  | Ok (Mp.Reach r) ->
    check Alcotest.string "next hop" "2804:269c::1"
      (Ipv6.to_string r.Mp.next_hop);
    check Alcotest.(list string) "nlri"
      [ "2804:269c:100::/48"; "2001:db8::/32"; "::/0"; "2804:269c::1/128" ]
      (List.map Prefix6.to_string r.Mp.nlri);
    check Alcotest.bool "shared attrs preserved" true
      (Attrs.equal sample_attrs
         (Attrs.with_next_hop sample_attrs.Attrs.next_hop r.Mp.attrs))
  | Ok (Mp.Unreach _) -> Alcotest.fail "decoded as unreach"
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let test_mp_unreach_roundtrip () =
  let opts = Wire.default_opts in
  let u = Mp.withdraw [ v6 "2804:269c:100::/48"; v6 "2001:db8:1::/64" ] in
  match Mp.decode opts (Mp.encode opts u) with
  | Ok (Mp.Unreach ps) ->
    check Alcotest.(list string) "withdrawn"
      [ "2804:269c:100::/48"; "2001:db8:1::/64" ]
      (List.map Prefix6.to_string ps)
  | Ok (Mp.Reach _) -> Alcotest.fail "decoded as reach"
  | Error e -> Alcotest.failf "decode failed: %s" (Wire.error_to_string e)

let test_mp_transparent_to_v4_speakers () =
  (* A v4-only speaker must parse the same bytes as a valid (if
     NLRI-free) UPDATE — the incremental-deployment property. *)
  let opts = Wire.default_opts in
  let bytes =
    Mp.encode opts
      (Mp.announce ~attrs:sample_attrs
         ~next_hop:(Ipv6.of_string_exn "2804:269c::1")
         [ v6 "2804:269c:100::/48" ])
  in
  match Wire.decode opts bytes ~pos:0 with
  | Ok (Message.Update u, consumed) ->
    check Alcotest.int "whole message" (Bytes.length bytes) consumed;
    check Alcotest.int "no v4 nlri" 0 (List.length u.Message.nlri);
    check Alcotest.bool "v4 attrs visible" true (u.Message.attrs <> None)
  | _ -> Alcotest.fail "v4 decoder choked on MP update"

let test_mp_no_attribute_error () =
  let opts = Wire.default_opts in
  let plain = Wire.encode opts (Message.update_of_withdraw (pfx "10.0.0.0/8")) in
  match Mp.decode opts plain with
  | Error (Wire.Bad_attribute _) -> ()
  | Ok _ -> Alcotest.fail "found MP attribute in a plain update"
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.error_to_string e)

let prop_mp_roundtrip =
  (* NLRI bounded so the message stays within the 4096-byte limit *)
  QCheck.Test.make ~name:"mp-bgp v6 roundtrip" ~count:200
    QCheck.(
      pair (pair int64 int64)
        (list_of_size (QCheck.Gen.int_range 0 40)
           (pair (pair int64 int64) (int_bound 128))))
    (fun ((nh_hi, nh_lo), raw) ->
      let nlri =
        List.map
          (fun ((hi, lo), len) -> Prefix6.make (Ipv6.make hi lo) len)
          raw
      in
      let opts = Wire.default_opts in
      let u = Mp.announce ~next_hop:(Ipv6.make nh_hi nh_lo) nlri in
      match Mp.decode opts (Mp.encode opts u) with
      | Ok (Mp.Reach r) ->
        List.length r.Mp.nlri = List.length nlri
        && List.for_all2 Prefix6.equal r.Mp.nlri nlri
        && Ipv6.equal r.Mp.next_hop (Ipv6.make nh_hi nh_lo)
      | Ok (Mp.Unreach _) | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Update_group *)

let test_update_group_shares_attrs () =
  let a1 = sample_attrs in
  let a2 = Attrs.with_local_pref (Some 7) sample_attrs in
  let announcements =
    [ (pfx "10.0.0.0/24", a1); (pfx "10.0.1.0/24", a1); (pfx "10.0.2.0/24", a2);
      (pfx "10.0.3.0/24", a1) ]
  in
  let groups = Update_group.group announcements in
  check Alcotest.int "two messages" 2 (List.length groups);
  let total_nlri =
    List.fold_left (fun acc u -> acc + List.length u.Message.nlri) 0 groups
  in
  check Alcotest.int "all prefixes present" 4 total_nlri;
  (* each message must encode within the RFC limit *)
  List.iter
    (fun u ->
      let b = Wire.encode Wire.default_opts (Message.Update u) in
      check Alcotest.bool "fits" true (Bytes.length b <= 4096))
    groups

let test_update_group_splits_large () =
  let attrs = sample_attrs in
  let announcements =
    List.init 2000 (fun i ->
        (Prefix.make (Ipv4.of_octets 10 (i / 256) (i mod 256) 0) 24, attrs))
  in
  let groups = Update_group.group announcements in
  check Alcotest.bool "split into several" true (List.length groups > 1);
  List.iter
    (fun u ->
      let b = Wire.encode Wire.default_opts (Message.Update u) in
      check Alcotest.bool "fits 4096" true (Bytes.length b <= 4096);
      (* and they decode back *)
      match Wire.decode Wire.default_opts b ~pos:0 with
      | Ok (Message.Update u', _) ->
        check Alcotest.int "nlri preserved" (List.length u.Message.nlri)
          (List.length u'.Message.nlri)
      | _ -> Alcotest.fail "re-decode failed")
    groups;
  let total =
    List.fold_left (fun acc u -> acc + List.length u.Message.nlri) 0 groups
  in
  check Alcotest.int "no prefix lost" 2000 total;
  check Alcotest.int "message_count agrees" (List.length groups)
    (Update_group.message_count announcements)

let test_update_group_withdrawals () =
  let prefixes =
    List.init 1500 (fun i ->
        Prefix.make (Ipv4.of_octets 10 (i / 256) (i mod 256) 0) 24)
  in
  let groups = Update_group.group_withdrawals prefixes in
  check Alcotest.bool "split" true (List.length groups >= 2);
  let total =
    List.fold_left
      (fun acc u -> acc + List.length u.Message.withdrawn)
      0 groups
  in
  check Alcotest.int "all withdrawn" 1500 total

(* ------------------------------------------------------------------ *)
(* Decision process *)

let src ?(ebgp = true) ?(rid = "10.0.0.9") a =
  { Route.peer_asn = asn a;
    peer_addr = ip "10.0.0.9";
    peer_router_id = ip rid;
    ebgp
  }

let route ?source ?med ?local_pref ?(origin = Attrs.IGP) ~path p =
  Route.make ?source
    (pfx p)
    (Attrs.make ~origin ~as_path:(As_path.of_asns (List.map asn path))
       ?med ?local_pref ~next_hop:(ip "10.0.0.9") ())

let test_decision_local_pref () =
  let a = route ~source:(src 1) ~local_pref:200 ~path:[ 1; 2; 3 ] "10.0.0.0/8" in
  let b = route ~source:(src 4) ~local_pref:100 ~path:[ 4 ] "10.0.0.0/8" in
  check Alcotest.bool "higher lp wins despite longer path" true
    (Decision.compare a b < 0)

let test_decision_path_length () =
  let a = route ~source:(src 1) ~path:[ 1; 2 ] "10.0.0.0/8" in
  let b = route ~source:(src 4) ~path:[ 4; 5; 6 ] "10.0.0.0/8" in
  check Alcotest.bool "shorter wins" true (Decision.compare a b < 0);
  check Alcotest.(option bool) "best" (Some true)
    (Option.map (Route.equal a) (Decision.best [ b; a ]))

let test_decision_origin () =
  let a = route ~source:(src 1) ~origin:Attrs.IGP ~path:[ 1; 2 ] "10.0.0.0/8" in
  let b =
    route ~source:(src 4) ~origin:Attrs.INCOMPLETE ~path:[ 4; 5 ] "10.0.0.0/8"
  in
  check Alcotest.bool "IGP beats incomplete" true (Decision.compare a b < 0)

let test_decision_med_same_neighbor () =
  let a = route ~source:(src 1) ~med:10 ~path:[ 7; 2 ] "10.0.0.0/8" in
  let b = route ~source:(src 1) ~med:20 ~path:[ 7; 3 ] "10.0.0.0/8" in
  check Alcotest.bool "lower MED wins (same neighbor)" true
    (Decision.compare a b < 0);
  (* different neighbor AS: MED not compared; falls to router id tie *)
  let c = route ~source:(src ~rid:"10.0.0.1" 1) ~med:99 ~path:[ 8; 2 ] "10.0.0.0/8" in
  let d = route ~source:(src ~rid:"10.0.0.2" 1) ~med:1 ~path:[ 9; 3 ] "10.0.0.0/8" in
  check Alcotest.bool "MED ignored across neighbors" true
    (Decision.compare c d < 0)

let test_decision_ebgp_over_ibgp () =
  let a = route ~source:(src ~ebgp:true 1) ~path:[ 1; 2 ] "10.0.0.0/8" in
  let b = route ~source:(src ~ebgp:false 1) ~path:[ 1; 2 ] "10.0.0.0/8" in
  check Alcotest.bool "eBGP wins" true (Decision.compare a b < 0)

let test_decision_local_wins () =
  let local = route ~path:[] "10.0.0.0/8" in
  let learned = route ~source:(src 1) ~local_pref:5000 ~path:[ 1 ] "10.0.0.0/8" in
  check Alcotest.bool "local origin beats learned" true
    (Decision.compare local learned < 0)

let prop_decision_total_on_distinct =
  QCheck.Test.make ~name:"decision antisymmetric" ~count:200
    (QCheck.make
       QCheck.Gen.(
         let* a = gen_attrs in
         let* b = gen_attrs in
         return (a, b)))
    (fun (attrs_a, attrs_b) ->
      let p = pfx "10.0.0.0/8" in
      let a = Route.make ~source:(src 11) p attrs_a in
      let b = Route.make ~source:(src ~rid:"10.0.0.10" 12) p attrs_b in
      let ab = Decision.compare a b and ba = Decision.compare b a in
      (ab < 0 && ba > 0) || (ab > 0 && ba < 0) || (ab = 0 && ba = 0))

(* ------------------------------------------------------------------ *)
(* Rib *)

let test_rib_basic () =
  let rib = Rib.create () in
  let p = pfx "10.0.0.0/8" in
  let r1 = route ~source:(src 1) ~path:[ 1; 2; 3 ] "10.0.0.0/8" in
  (match Rib.announce rib ~peer:"p1" r1 with
  | Some c ->
    check Alcotest.bool "newly best" true (c.Rib.previous = None);
    check Alcotest.bool "current set" true (c.Rib.current <> None)
  | None -> Alcotest.fail "expected change");
  (* worse route: no change *)
  let r2 = route ~source:(src 4) ~path:[ 4; 5; 6; 7 ] "10.0.0.0/8" in
  check Alcotest.bool "worse: no change" true
    (Rib.announce rib ~peer:"p2" r2 = None);
  check Alcotest.int "candidates" 2 (List.length (Rib.candidates rib p));
  (* better route: change *)
  let r3 = route ~source:(src 8) ~path:[ 8 ] "10.0.0.0/8" in
  (match Rib.announce rib ~peer:"p3" r3 with
  | Some c -> check Alcotest.bool "better becomes best" true
      (match c.Rib.current with
      | Some cur -> Route.equal cur r3
      | None -> false)
  | None -> Alcotest.fail "expected change");
  (* withdraw best: falls back *)
  (match Rib.withdraw rib ~peer:"p3" p with
  | Some c ->
    check Alcotest.bool "fallback to r1" true
      (match c.Rib.current with
      | Some cur -> Route.equal cur r1
      | None -> false)
  | None -> Alcotest.fail "expected change on withdraw");
  check Alcotest.int "prefixes" 1 (Rib.prefix_count rib);
  check Alcotest.int "routes" 2 (Rib.route_count rib)

let test_rib_drop_peer () =
  let rib = Rib.create () in
  for i = 0 to 2 do
    ignore
      (Rib.announce rib ~peer:"flaky"
         (route ~source:(src 1) ~path:[ 1; 2 ]
            (Printf.sprintf "10.%d.0.0/16" i)))
  done;
  ignore
    (Rib.announce rib ~peer:"stable"
       (route ~source:(src 9) ~path:[ 9; 2 ] "10.3.0.0/16"));
  let changes = Rib.drop_peer rib ~peer:"flaky" in
  check Alcotest.int "changes for lost prefixes" 3 (List.length changes);
  check Alcotest.bool "all transitions to None" true
    (List.for_all (fun c -> c.Rib.current = None) changes);
  check Alcotest.int "one prefix survives" 1 (Rib.prefix_count rib);
  check Alcotest.(list string) "peers" [ "stable" ] (Rib.peers rib)

let test_rib_lpm () =
  let rib = Rib.create () in
  ignore
    (Rib.announce rib ~peer:"a"
       (route ~source:(src 1) ~path:[ 1 ] "10.0.0.0/8"));
  ignore
    (Rib.announce rib ~peer:"a"
       (route ~source:(src 1) ~path:[ 1; 2 ] "10.1.0.0/16"));
  match Rib.lookup rib (ip "10.1.2.3") with
  | Some r ->
    check Alcotest.string "most specific" "10.1.0.0/16"
      (Prefix.to_string r.Route.prefix)
  | None -> Alcotest.fail "no route"

let test_rib_add_path () =
  (* two routes same peer, distinct path ids coexist *)
  let rib = Rib.create () in
  let r1 =
    Route.make ~source:(src 1) ~path_id:1 (pfx "10.0.0.0/8")
      (Attrs.make ~as_path:(As_path.of_asns [ asn 1; asn 2 ])
         ~next_hop:(ip "10.0.0.9") ())
  in
  let r2 =
    Route.make ~source:(src 1) ~path_id:2 (pfx "10.0.0.0/8")
      (Attrs.make ~as_path:(As_path.of_asns [ asn 1; asn 3; asn 4 ])
         ~next_hop:(ip "10.0.0.9") ())
  in
  ignore (Rib.announce rib ~peer:"mux" r1);
  ignore (Rib.announce rib ~peer:"mux" r2);
  check Alcotest.int "both retained" 2
    (List.length (Rib.candidates rib (pfx "10.0.0.0/8")));
  ignore (Rib.withdraw rib ~peer:"mux" ~path_id:1 (pfx "10.0.0.0/8"));
  check Alcotest.int "one left" 1
    (List.length (Rib.candidates rib (pfx "10.0.0.0/8")))

(* ------------------------------------------------------------------ *)
(* Policy *)

let test_policy_prefix_filter () =
  let map =
    Policy.of_entries
      [ { Policy.seq = 10;
          decision = Policy.Permit;
          conds = [ Policy.Prefix_in [ (pfx "184.164.224.0/19", 19, 24) ] ];
          actions = []
        } ]
  in
  let inside = route ~source:(src 1) ~path:[ 1 ] "184.164.230.0/24" in
  let outside = route ~source:(src 1) ~path:[ 1 ] "8.8.8.0/24" in
  let too_long =
    route ~source:(src 1) ~path:[ 1 ] "184.164.230.128/25"
  in
  check Alcotest.bool "inside permitted" true (Policy.apply map inside <> None);
  check Alcotest.bool "outside denied" true (Policy.apply map outside = None);
  check Alcotest.bool "le bound enforced" true (Policy.apply map too_long = None)

let test_policy_actions () =
  let map =
    Policy.of_entries
      [ { Policy.seq = 10;
          decision = Policy.Permit;
          conds = [];
          actions =
            [ Policy.Set_local_pref 250;
              Policy.Add_community (Community.make 47065 666);
              Policy.Prepend (asn 47065, 2)
            ]
        } ]
  in
  let r = route ~source:(src 1) ~path:[ 1; 2 ] "10.0.0.0/8" in
  match Policy.apply map r with
  | Some r' ->
    check Alcotest.(option int) "lp set" (Some 250)
      r'.Route.attrs.Attrs.local_pref;
    check Alcotest.bool "community added" true
      (Attrs.has_community (Community.make 47065 666) r'.Route.attrs);
    check Alcotest.int "prepended" 4
      (As_path.length r'.Route.attrs.Attrs.as_path)
  | None -> Alcotest.fail "denied"

let test_policy_first_match_wins () =
  let map =
    Policy.of_entries
      [ { Policy.seq = 20;
          decision = Policy.Permit;
          conds = [];
          actions = [ Policy.Set_local_pref 1 ]
        };
        { Policy.seq = 10;
          decision = Policy.Deny;
          conds = [ Policy.Originated_by (asn 666) ];
          actions = []
        }
      ]
  in
  let bad = route ~source:(src 1) ~path:[ 1; 666 ] "10.0.0.0/8" in
  let good = route ~source:(src 1) ~path:[ 1; 2 ] "10.0.0.0/8" in
  check Alcotest.bool "seq 10 denies origin 666" true
    (Policy.apply map bad = None);
  check Alcotest.bool "seq 20 permits rest" true (Policy.apply map good <> None)

let test_policy_default_deny () =
  let map =
    Policy.of_entries
      [ { Policy.seq = 10;
          decision = Policy.Permit;
          conds = [ Policy.Has_community Community.no_export ];
          actions = []
        } ]
  in
  let r = route ~source:(src 1) ~path:[ 1 ] "10.0.0.0/8" in
  check Alcotest.bool "unmatched denied" true (Policy.apply map r = None)

let test_policy_conds () =
  let r = route ~source:(src 1) ~path:[ 1; 64512; 3356 ] "10.0.0.0/8" in
  check Alcotest.bool "path contains" true
    (Policy.eval_cond (Policy.Path_contains (asn 3356)) r);
  check Alcotest.bool "has private" true
    (Policy.eval_cond Policy.Has_private_asn r);
  check Alcotest.bool "neighbor" true
    (Policy.eval_cond (Policy.Neighbor_is (asn 1)) r);
  check Alcotest.bool "not" false
    (Policy.eval_cond (Policy.Not (Policy.Neighbor_is (asn 1))) r);
  check Alcotest.bool "all/any" true
    (Policy.eval_cond
       (Policy.All
          [ Policy.Path_length_le 3;
            Policy.Any [ Policy.Originated_by (asn 3356); Policy.Has_community Community.no_export ]
          ])
       r)

(* ------------------------------------------------------------------ *)
(* Rpki *)

let roa_table =
  Rpki.empty
  |> (fun t -> Rpki.add_roa t ~prefix:(pfx "184.164.224.0/19") ~max_length:24 (asn 47065))
  |> fun t -> Rpki.add_roa t ~prefix:(pfx "10.0.0.0/8") (asn 100)

let test_rpki_valid () =
  check Alcotest.bool "authorised origin, allowed length" true
    (Rpki.validate roa_table ~prefix:(pfx "184.164.230.0/24")
       ~origin:(Some (asn 47065))
    = Rpki.Valid);
  check Alcotest.bool "exact prefix" true
    (Rpki.validate roa_table ~prefix:(pfx "10.0.0.0/8") ~origin:(Some (asn 100))
    = Rpki.Valid)

let test_rpki_invalid () =
  (* wrong origin *)
  check Alcotest.bool "wrong origin" true
    (Rpki.validate roa_table ~prefix:(pfx "184.164.230.0/24")
       ~origin:(Some (asn 666))
    = Rpki.Invalid);
  (* too specific: ROA for /8 has max_length 8 *)
  check Alcotest.bool "too specific" true
    (Rpki.validate roa_table ~prefix:(pfx "10.1.0.0/16")
       ~origin:(Some (asn 100))
    = Rpki.Invalid);
  (* AS_SET origin never valid when covered *)
  check Alcotest.bool "no origin" true
    (Rpki.validate roa_table ~prefix:(pfx "10.0.0.0/8") ~origin:None
    = Rpki.Invalid)

let test_rpki_not_found () =
  check Alcotest.bool "uncovered space" true
    (Rpki.validate roa_table ~prefix:(pfx "192.0.2.0/24")
       ~origin:(Some (asn 1))
    = Rpki.Not_found);
  check Alcotest.int "roa count" 2 (Rpki.roa_count roa_table)

let test_rpki_multiple_roas () =
  (* MOAS: two ROAs for one prefix — either origin is valid *)
  let t =
    Rpki.add_roa roa_table ~prefix:(pfx "10.0.0.0/8") (asn 200)
  in
  check Alcotest.bool "first origin" true
    (Rpki.validate t ~prefix:(pfx "10.0.0.0/8") ~origin:(Some (asn 100))
    = Rpki.Valid);
  check Alcotest.bool "second origin" true
    (Rpki.validate t ~prefix:(pfx "10.0.0.0/8") ~origin:(Some (asn 200))
    = Rpki.Valid);
  check Alcotest.int "two ROAs cover 10/8" 2
    (List.length (Rpki.covering t (pfx "10.0.0.0/8")));
  check Alcotest.int "one ROA covers the /24" 1
    (List.length (Rpki.covering t (pfx "184.164.224.0/24")))

let test_rpki_validate_route () =
  let r =
    Route.make
      (pfx "184.164.224.0/24")
      (Attrs.make
         ~as_path:(As_path.of_asns [ asn 3356; asn 47065 ])
         ~next_hop:(ip "10.0.0.1") ())
  in
  check Alcotest.bool "route valid" true
    (Rpki.validate_route roa_table r = Rpki.Valid)

(* ------------------------------------------------------------------ *)
(* Dampening *)

let test_dampening_suppression () =
  let d = Dampening.create () in
  let p = pfx "184.164.224.0/24" in
  Dampening.flap d ~now:0.0 ~peer:"c" p;
  check Alcotest.bool "one flap not suppressed" false
    (Dampening.is_suppressed d ~now:0.0 ~peer:"c" p);
  Dampening.flap d ~now:1.0 ~peer:"c" p;
  Dampening.flap d ~now:2.0 ~peer:"c" p;
  check Alcotest.bool "three rapid flaps suppressed" true
    (Dampening.is_suppressed d ~now:2.0 ~peer:"c" p);
  (* penalty decays: after several half-lives it is reusable *)
  check Alcotest.bool "reused after decay" false
    (Dampening.is_suppressed d ~now:(2.0 +. 4.0 *. 900.0) ~peer:"c" p)

let test_dampening_decay_monotonic () =
  let d = Dampening.create () in
  let p = pfx "184.164.224.0/24" in
  Dampening.flap d ~now:0.0 ~peer:"c" p;
  let p1 = Dampening.penalty d ~now:100.0 ~peer:"c" p in
  let p2 = Dampening.penalty d ~now:500.0 ~peer:"c" p in
  let p3 = Dampening.penalty d ~now:2000.0 ~peer:"c" p in
  check Alcotest.bool "monotone decay" true (p1 > p2 && p2 > p3);
  (* half life: penalty halves in 900 s *)
  let ph = Dampening.penalty d ~now:900.0 ~peer:"c" p in
  check Alcotest.bool "half life" true (abs_float (ph -. 500.0) < 1.0)

let test_dampening_reuse_time () =
  let d = Dampening.create () in
  let p = pfx "184.164.224.0/24" in
  List.iter (fun t -> Dampening.flap d ~now:t ~peer:"c" p) [ 0.0; 1.0; 2.0 ];
  match Dampening.reuse_time d ~now:2.0 ~peer:"c" p with
  | Some t ->
    check Alcotest.bool "reuse in the future" true (t > 2.0);
    check Alcotest.bool "not suppressed at reuse time" false
      (Dampening.is_suppressed d ~now:(t +. 1.0) ~peer:"c" p)
  | None -> Alcotest.fail "expected reuse time"

let test_dampening_isolated_keys () =
  let d = Dampening.create () in
  let p = pfx "184.164.224.0/24" in
  List.iter (fun t -> Dampening.flap d ~now:t ~peer:"flappy" p)
    [ 0.0; 0.5; 1.0 ];
  check Alcotest.bool "other client unaffected" false
    (Dampening.is_suppressed d ~now:1.0 ~peer:"calm" p);
  check Alcotest.int "one suppressed" 1 (Dampening.suppressed_count d ~now:1.0)

(* ------------------------------------------------------------------ *)
(* FSM + Session *)

let test_session_establishment () =
  let engine = Peering_sim.Engine.create () in
  let cfg_a = Fsm.default_config ~local_asn:(asn 47065) ~router_id:(ip "10.0.0.1") in
  let cfg_b = Fsm.default_config ~local_asn:(asn 3356) ~router_id:(ip "10.0.0.2") in
  let s =
    Session.create engine ~a:(cfg_a, ip "10.0.0.1") ~b:(cfg_b, ip "10.0.0.2") ()
  in
  Session.start s;
  check Alcotest.bool "not yet" false (Session.established s);
  Peering_sim.Engine.run ~until:5.0 engine;
  check Alcotest.bool "established" true (Session.established s);
  check Alcotest.bool "bytes crossed" true (Session.bytes_on_wire s > 0)

let test_session_update_delivery () =
  let engine = Peering_sim.Engine.create () in
  let got = ref [] in
  let cfg_a = Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1") in
  let cfg_b = Fsm.default_config ~local_asn:(asn 2) ~router_id:(ip "10.0.0.2") in
  let s =
    Session.create engine
      ~a:(cfg_a, ip "10.0.0.1")
      ~b:(cfg_b, ip "10.0.0.2")
      ~on_update_b:(fun u -> got := u :: !got)
      ()
  in
  Session.start s;
  Peering_sim.Engine.run ~until:5.0 engine;
  let attrs =
    Attrs.make ~as_path:(As_path.of_asns [ asn 1 ]) ~next_hop:(ip "10.0.0.1") ()
  in
  Session.send_from_a s (Message.update_of_announce (pfx "184.164.224.0/24") attrs);
  Peering_sim.Engine.run ~until:10.0 engine;
  check Alcotest.int "update received" 1 (List.length !got)

let test_session_hold_timer () =
  let engine = Peering_sim.Engine.create () in
  let closed = ref None in
  let cfg_a =
    { (Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1")) with
      Fsm.hold_time = 9
    }
  in
  let cfg_b =
    { (Fsm.default_config ~local_asn:(asn 2) ~router_id:(ip "10.0.0.2")) with
      Fsm.hold_time = 9
    }
  in
  let s =
    Session.create engine
      ~a:(cfg_a, ip "10.0.0.1")
      ~b:(cfg_b, ip "10.0.0.2")
      ~on_close_b:(fun reason -> closed := Some reason)
      ()
  in
  Session.start s;
  Peering_sim.Engine.run ~until:2.0 engine;
  check Alcotest.bool "up" true (Session.established s);
  (* keepalives flow; session stays up across many hold periods *)
  Peering_sim.Engine.run ~until:100.0 engine;
  check Alcotest.bool "still up with keepalives" true (Session.established s);
  check Alcotest.bool "no close" true (!closed = None)

let test_session_drop () =
  let engine = Peering_sim.Engine.create () in
  let closed_b = ref None in
  let cfg_a = Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1") in
  let cfg_b = Fsm.default_config ~local_asn:(asn 2) ~router_id:(ip "10.0.0.2") in
  let s =
    Session.create engine
      ~a:(cfg_a, ip "10.0.0.1")
      ~b:(cfg_b, ip "10.0.0.2")
      ~on_close_b:(fun r -> closed_b := Some r)
      ()
  in
  Session.start s;
  Peering_sim.Engine.run ~until:2.0 engine;
  Session.drop s ~reason:"maintenance";
  Peering_sim.Engine.run ~until:4.0 engine;
  check Alcotest.bool "b saw close" true (!closed_b <> None);
  check Alcotest.bool "a idle" true (Fsm.state (Session.a s).Session.fsm = Fsm.Idle)

let test_session_add_path_negotiation () =
  (* both sides offer ADD-PATH: negotiated opts carry it, and updates
     with non-zero path ids survive the wire *)
  let engine = Peering_sim.Engine.create () in
  let caps a =
    [ Capability.Four_octet_asn a; Capability.Add_path Capability.Send_receive ]
  in
  let cfg_a =
    { (Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1")) with
      Fsm.capabilities = caps 1
    }
  in
  let cfg_b =
    { (Fsm.default_config ~local_asn:(asn 2) ~router_id:(ip "10.0.0.2")) with
      Fsm.capabilities = caps 2
    }
  in
  let got = ref [] in
  let s =
    Session.create engine
      ~a:(cfg_a, ip "10.0.0.1")
      ~b:(cfg_b, ip "10.0.0.2")
      ~on_update_b:(fun u -> got := u :: !got)
      ()
  in
  Session.start s;
  Peering_sim.Engine.run ~until:5.0 engine;
  (match Fsm.negotiated (Session.a s).Session.fsm with
  | Some opts -> check Alcotest.bool "add-path negotiated" true opts.Wire.add_path
  | None -> Alcotest.fail "no negotiated options");
  Session.send_from_a s
    (Message.update_of_announce ~path_id:9 (pfx "184.164.224.0/24")
       (Attrs.make ~as_path:(As_path.of_asns [ asn 1 ])
          ~next_hop:(ip "10.0.0.1") ()));
  Peering_sim.Engine.run ~until:10.0 engine;
  match !got with
  | [ u ] ->
    check Alcotest.(list int) "path id crossed the wire" [ 9 ]
      (List.map fst u.Message.nlri)
  | _ -> Alcotest.fail "update not delivered"

let test_session_one_sided_add_path () =
  (* only one side offers ADD-PATH: must NOT be negotiated *)
  let engine = Peering_sim.Engine.create () in
  let cfg_a =
    { (Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1")) with
      Fsm.capabilities =
        [ Capability.Four_octet_asn 1;
          Capability.Add_path Capability.Send_receive
        ]
    }
  in
  let cfg_b = Fsm.default_config ~local_asn:(asn 2) ~router_id:(ip "10.0.0.2") in
  let s =
    Session.create engine ~a:(cfg_a, ip "10.0.0.1") ~b:(cfg_b, ip "10.0.0.2") ()
  in
  Session.start s;
  Peering_sim.Engine.run ~until:5.0 engine;
  match Fsm.negotiated (Session.a s).Session.fsm with
  | Some opts ->
    check Alcotest.bool "not negotiated one-sided" false opts.Wire.add_path
  | None -> Alcotest.fail "session did not establish"

let test_fsm_rejects_bad_version () =
  let engine = Peering_sim.Engine.create () in
  let closed = ref false in
  let cfg = Fsm.default_config ~local_asn:(asn 1) ~router_id:(ip "10.0.0.1") in
  let fsm =
    Fsm.create engine cfg
      { Fsm.send = (fun _ -> ());
        on_established = (fun _ -> ());
        on_update = (fun _ -> ());
        on_close = (fun _ -> closed := true)
      }
  in
  Fsm.start fsm;
  Fsm.handle fsm
    (Message.Open
       { Message.version = 3;
         asn = asn 2;
         hold_time = 90;
         router_id = ip "10.0.0.2";
         capabilities = []
       });
  check Alcotest.bool "closed on bad version" true !closed;
  check Alcotest.bool "idle" true (Fsm.state fsm = Fsm.Idle)

(* ------------------------------------------------------------------ *)
(* BMP (RFC 7854) *)

let bmp_peer =
  Bmp.make_peer_header ~addr:(ip "100.65.0.1") ~asn:(asn 65010)
    ~bgp_id:(ip "10.10.0.1") ~time:12.345678 ()

let bmp_corpus =
  [ Bmp.Route_monitoring
      { peer = bmp_peer;
        update =
          { Message.withdrawn = [ (0, pfx "203.0.113.0/24") ];
            attrs = Some sample_attrs;
            nlri = [ (0, pfx "184.164.224.0/24"); (0, pfx "184.164.225.0/24") ]
          }
      };
    Bmp.Stats_report
      { peer = bmp_peer;
        stats =
          [ { Bmp.stat_type = 0; stat_value = 3 };
            { Bmp.stat_type = Bmp.stat_routes_adj_rib_in;
              stat_value = 1_000_000_007
            }
          ]
      };
    Bmp.Peer_down { peer = bmp_peer; reason = 2 };
    Bmp.Peer_up
      { peer = bmp_peer;
        local_addr = ip "100.65.0.254";
        local_port = 179;
        remote_port = 42123;
        sent_open =
          { Message.version = 4;
            asn = asn 47065;
            hold_time = 90;
            router_id = ip "10.10.0.254";
            capabilities = [ Capability.Four_octet_asn 47065 ]
          };
        recv_open =
          { Message.version = 4;
            asn = asn 65010;
            hold_time = 180;
            router_id = ip "10.10.0.1";
            capabilities =
              [ Capability.Four_octet_asn 65010; Capability.Route_refresh ]
          }
      };
    Bmp.Initiation { info = [ (2, "amsterdam01"); (1, "peering mux") ] };
    Bmp.Termination { info = [ (0, "shutting down") ] }
  ]

(* Every message type: encode → decode returns the message, consumes
   exactly the frame, re-encodes byte-identically — and the eager
   reference decoder agrees on all of it. *)
let test_bmp_roundtrip () =
  List.iter
    (fun msg ->
      let b = Bmp.encode msg in
      let name = Bmp.msg_type_name (Bmp.msg_type msg) in
      match (Bmp.decode b ~pos:0, Bmp.decode_eager b ~pos:0) with
      | Ok (m, n), Ok (m', n') ->
        check Alcotest.int (name ^ ": consumed") (Bytes.length b) n;
        check Alcotest.int (name ^ ": eager consumed") n n';
        check Alcotest.bool (name ^ ": decoders agree") true (m = m');
        check Alcotest.int (name ^ ": type preserved") (Bmp.msg_type msg)
          (Bmp.msg_type m);
        check Alcotest.bool (name ^ ": re-encode byte-identical") true
          (Bytes.equal b (Bmp.encode m))
      | _ -> Alcotest.failf "%s: decode failed" name)
    bmp_corpus;
  (* encode_all frames a feed fragment that decodes back in order *)
  let feed = Bmp.encode_all bmp_corpus in
  let rec drain pos acc =
    if pos >= Bytes.length feed then List.rev acc
    else
      match Bmp.decode feed ~pos with
      | Ok (m, n) -> drain n (m :: acc)
      | Error e -> Alcotest.failf "feed: %s" (Bmp.error_to_string e)
  in
  check
    Alcotest.(list int)
    "feed preserves order" [ 0; 1; 2; 3; 4; 5 ]
    (List.map Bmp.msg_type (drain 0 []))

let test_bmp_canon_time () =
  List.iter
    (fun t ->
      let c = Bmp.canon_time t in
      check (Alcotest.float 1e-12) "idempotent" c (Bmp.canon_time c);
      check (Alcotest.float 1e-12) "header timestamp is canonical" c
        (Bmp.time (Bmp.make_peer_header ~addr:(ip "10.0.0.1") ~asn:(asn 1) ~time:t ()));
      check Alcotest.bool "within a microsecond" true (Float.abs (c -. t) < 1e-6))
    [ 0.0; 12.345678; 1e6 +. 0.9999995; 3.0000004 ];
  (* peer_of picks out the header on peer-scoped messages only *)
  check Alcotest.bool "peer_of route_monitoring" true
    (Bmp.peer_of (List.hd bmp_corpus) = Some bmp_peer);
  check Alcotest.bool "peer_of initiation" true
    (Bmp.peer_of (Bmp.Initiation { info = [] }) = None)

(* Truncations and single-byte corruptions of valid frames: both
   decoders must return the same verdict — identical messages or the
   identical [error] — and never raise. *)
let prop_bmp_cursor_eager_agree =
  QCheck.Test.make ~name:"bmp: cursor = eager on corrupted frames" ~count:500
    QCheck.(triple (int_bound 5) (int_bound 300) (int_bound 255))
    (fun (which, pos_seed, byte) ->
      let b = Bytes.copy (Bmp.encode (List.nth bmp_corpus which)) in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos (Char.chr byte);
      match (Bmp.decode b ~pos:0, Bmp.decode_eager b ~pos:0) with
      | Ok (m, n), Ok (m', n') -> m = m' && n = n'
      | Error e, Error e' -> e = e'
      | _ -> false)

let prop_bmp_truncation_agree =
  QCheck.Test.make ~name:"bmp: cursor = eager on truncations" ~count:300
    QCheck.(pair (int_bound 5) (int_bound 300))
    (fun (which, len_seed) ->
      let full = Bmp.encode (List.nth bmp_corpus which) in
      let len = len_seed mod Bytes.length full in
      let b = Bytes.sub full 0 len in
      match (Bmp.decode b ~pos:0, Bmp.decode_eager b ~pos:0) with
      | Error Bmp.Truncated, Error Bmp.Truncated -> true
      | Error e, Error e' -> e = e'
      | _ -> false)

let prop_bmp_garbage_total =
  QCheck.Test.make ~name:"bmp: decode total on garbage" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 120))
    (fun s ->
      let b = Bytes.of_string s in
      match (Bmp.decode b ~pos:0, Bmp.decode_eager b ~pos:0) with
      | Ok (m, n), Ok (m', n') -> m = m' && n = n'
      | Error e, Error e' -> e = e'
      | _ -> false)

let () =
  Alcotest.run "bgp"
    [ ( "as-path",
        [ tc "prepend" `Quick test_path_prepend;
          tc "set length" `Quick test_path_set_length;
          tc "strip private" `Quick test_path_strip_private;
          tc "aggregate" `Quick test_path_aggregate
        ] );
      ( "community",
        [ tc "parts" `Quick test_community_parts;
          tc "well-known" `Quick test_community_well_known;
          tc "set ops" `Quick test_community_sets
        ] );
      ( "wire",
        [ tc "keepalive" `Quick test_wire_keepalive;
          tc "open" `Quick test_wire_open;
          tc "open 4-byte asn" `Quick test_wire_open_4byte_asn;
          tc "update" `Quick test_wire_update;
          tc "update add-path" `Quick test_wire_update_add_path;
          tc "notification" `Quick test_wire_notification;
          tc "truncated" `Quick test_wire_truncated;
          tc "bad marker" `Quick test_wire_bad_marker;
          tc "stream" `Quick test_wire_stream;
          tc "cursor = eager on errors" `Quick test_wire_cursor_eager_errors;
          tc "lazy update view" `Quick test_wire_update_view_lazy;
          tc "view defers body errors" `Quick test_wire_view_defers_body_errors;
          tc "encode_attrs next-hop modes" `Quick
            test_wire_encode_attrs_next_hop;
          QCheck_alcotest.to_alcotest prop_update_roundtrip;
          QCheck_alcotest.to_alcotest prop_decode_never_raises;
          QCheck_alcotest.to_alcotest prop_decode_corrupted_valid
        ] );
      ( "mp-bgp",
        [ tc "reach roundtrip" `Quick test_mp_reach_roundtrip;
          tc "unreach roundtrip" `Quick test_mp_unreach_roundtrip;
          tc "transparent to v4" `Quick test_mp_transparent_to_v4_speakers;
          tc "plain update rejected" `Quick test_mp_no_attribute_error;
          QCheck_alcotest.to_alcotest prop_mp_roundtrip
        ] );
      ( "update-group",
        [ tc "shares attrs" `Quick test_update_group_shares_attrs;
          tc "splits large" `Quick test_update_group_splits_large;
          tc "withdrawals" `Quick test_update_group_withdrawals
        ] );
      ( "decision",
        [ tc "local-pref" `Quick test_decision_local_pref;
          tc "path length" `Quick test_decision_path_length;
          tc "origin" `Quick test_decision_origin;
          tc "med" `Quick test_decision_med_same_neighbor;
          tc "ebgp over ibgp" `Quick test_decision_ebgp_over_ibgp;
          tc "local wins" `Quick test_decision_local_wins;
          QCheck_alcotest.to_alcotest prop_decision_total_on_distinct
        ] );
      ( "rib",
        [ tc "basic" `Quick test_rib_basic;
          tc "drop peer" `Quick test_rib_drop_peer;
          tc "lpm" `Quick test_rib_lpm;
          tc "add-path" `Quick test_rib_add_path
        ] );
      ( "policy",
        [ tc "prefix filter" `Quick test_policy_prefix_filter;
          tc "actions" `Quick test_policy_actions;
          tc "first match" `Quick test_policy_first_match_wins;
          tc "default deny" `Quick test_policy_default_deny;
          tc "conditions" `Quick test_policy_conds
        ] );
      ( "rpki",
        [ tc "valid" `Quick test_rpki_valid;
          tc "invalid" `Quick test_rpki_invalid;
          tc "not found" `Quick test_rpki_not_found;
          tc "multiple roas" `Quick test_rpki_multiple_roas;
          tc "validate route" `Quick test_rpki_validate_route
        ] );
      ( "dampening",
        [ tc "suppression" `Quick test_dampening_suppression;
          tc "decay" `Quick test_dampening_decay_monotonic;
          tc "reuse time" `Quick test_dampening_reuse_time;
          tc "isolation" `Quick test_dampening_isolated_keys
        ] );
      ( "fsm+session",
        [ tc "establishment" `Quick test_session_establishment;
          tc "update delivery" `Quick test_session_update_delivery;
          tc "keepalives sustain" `Quick test_session_hold_timer;
          tc "drop" `Quick test_session_drop;
          tc "add-path negotiation" `Quick test_session_add_path_negotiation;
          tc "one-sided add-path" `Quick test_session_one_sided_add_path;
          tc "bad version" `Quick test_fsm_rejects_bad_version
        ] );
      ( "bmp",
        [ tc "roundtrip" `Quick test_bmp_roundtrip;
          tc "canon time + peer_of" `Quick test_bmp_canon_time;
          QCheck_alcotest.to_alcotest prop_bmp_cursor_eager_agree;
          QCheck_alcotest.to_alcotest prop_bmp_truncation_agree;
          QCheck_alcotest.to_alcotest prop_bmp_garbage_total
        ] )
    ]
