(* Documentation linter for interface files.

   The build environment has no odoc, so `dune build @doc` alone cannot
   gate documentation quality; this tool is attached to the @doc alias
   (and to runtest) instead. It requires every top-level [val] and
   [type] in the given .mli files to carry an adjacent odoc comment —
   either a [(** … *)] in the lines of the declaration itself / right
   after it, or one ending on the line directly above — and rejects
   files whose comment delimiters do not balance (a malformed or
   unterminated doc comment). *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let ends_with suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else if String.sub s i m = sub then true
    else go (i + 1)
  in
  go 0

let count_occurrences s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* Top-level items that must be documented. Module blocks are skipped:
   their members are indented and carry their own docs. *)
let is_item line =
  starts_with "val " line || starts_with "type " line
  || starts_with "exception " line

let is_blank line = String.trim line = ""

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      Array.of_list (List.rev acc)
  in
  go []

let lint file =
  let lines = read_lines file in
  let n = Array.length lines in
  let text = String.concat "\n" (Array.to_list lines) in
  let failures = ref [] in
  if count_occurrences text "(*" <> count_occurrences text "*)" then
    failures := (1, "unbalanced comment delimiters") :: !failures;
  for i = 0 to n - 1 do
    if is_item lines.(i) then begin
      (* The declaration block: this line plus following lines up to a
         blank line or the next item. A doc comment inside it (typical
         repo style puts the comment right after the signature) counts. *)
      let rec block_documented j =
        if j >= n || is_blank lines.(j) then false
        else if j > i && is_item lines.(j) then false
        else if contains lines.(j) "(**" then true
        else block_documented (j + 1)
      in
      (* Or a doc comment ending on the nearest non-blank line above. *)
      let rec doc_above j =
        if j < 0 then false
        else if is_blank lines.(j) then doc_above (j - 1)
        else ends_with "*)" (String.trim lines.(j))
      in
      if not (block_documented i || doc_above (i - 1)) then
        failures :=
          ( i + 1,
            Printf.sprintf "undocumented: %s"
              (String.trim lines.(i)) )
          :: !failures
    end
  done;
  List.rev !failures

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "doc_lint: no .mli files given";
    exit 2
  end;
  let bad = ref 0 in
  List.iter
    (fun file ->
      List.iter
        (fun (line, msg) ->
          incr bad;
          Printf.eprintf "%s:%d: %s\n" file line msg)
        (lint file))
    files;
  if !bad > 0 then begin
    Printf.eprintf "doc_lint: %d failure%s in %d file%s\n" !bad
      (if !bad = 1 then "" else "s")
      (List.length files)
      (if List.length files = 1 then "" else "s");
    exit 1
  end
  else
    Printf.printf "doc_lint: %d file%s clean\n" (List.length files)
      (if List.length files = 1 then "" else "s")
