open Peering_net
open Peering_bgp
open Peering_router
module Engine = Peering_sim.Engine

let check = Alcotest.check
let tc = Alcotest.test_case
let asn = Asn.of_int
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

let mk engine a rid = Router.create engine ~asn:(asn a) ~router_id:(ip rid) ()

(* ------------------------------------------------------------------ *)
(* Router *)

let test_two_routers_exchange () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" in
  Router.originate r1 (pfx "10.1.0.0/16");
  ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
  Engine.run ~until:5.0 e;
  (match Router.best_route r2 (pfx "10.1.0.0/16") with
  | Some r ->
    check Alcotest.(list int) "path has AS 1" [ 1 ]
      (List.map Asn.to_int (As_path.to_asns r.Route.attrs.Attrs.as_path));
    check Alcotest.string "next hop rewritten" "10.0.0.1"
      (Ipv4.to_string r.Route.attrs.Attrs.next_hop)
  | None -> Alcotest.fail "route not learned");
  (* origination after establishment also propagates *)
  Router.originate r2 (pfx "10.2.0.0/16");
  Engine.run ~until:10.0 e;
  check Alcotest.bool "reverse direction" true
    (Router.best_route r1 (pfx "10.2.0.0/16") <> None)

let test_chain_propagation () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" and r3 = mk e 3 "10.0.0.3" in
  ignore (Router.connect e (r1, ip "10.0.12.1") (r2, ip "10.0.12.2"));
  ignore (Router.connect e (r2, ip "10.0.23.2") (r3, ip "10.0.23.3"));
  Engine.run ~until:5.0 e;
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run ~until:10.0 e;
  match Router.best_route r3 (pfx "10.1.0.0/16") with
  | Some r ->
    check Alcotest.(list int) "two-hop path" [ 2; 1 ]
      (List.map Asn.to_int (As_path.to_asns r.Route.attrs.Attrs.as_path))
  | None -> Alcotest.fail "route did not traverse the chain"

let test_loop_prevention () =
  (* triangle of eBGP routers: routes must not loop *)
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" and r3 = mk e 3 "10.0.0.3" in
  ignore (Router.connect e (r1, ip "10.0.12.1") (r2, ip "10.0.12.2"));
  ignore (Router.connect e (r2, ip "10.0.23.2") (r3, ip "10.0.23.3"));
  ignore (Router.connect e (r3, ip "10.0.31.3") (r1, ip "10.0.31.1"));
  Engine.run ~until:5.0 e;
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run ~until:20.0 e;
  (* r1 must not learn its own prefix back *)
  match Router.best_route r1 (pfx "10.1.0.0/16") with
  | Some r -> check Alcotest.bool "kept local" true (r.Route.source = None)
  | None -> Alcotest.fail "lost own route"

let test_withdraw_propagates () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" in
  ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
  Engine.run ~until:5.0 e;
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run ~until:10.0 e;
  check Alcotest.bool "learned" true (Router.best_route r2 (pfx "10.1.0.0/16") <> None);
  Router.withdraw_network r1 (pfx "10.1.0.0/16");
  Engine.run ~until:15.0 e;
  check Alcotest.bool "withdrawn" true (Router.best_route r2 (pfx "10.1.0.0/16") = None)

let test_export_policy_filtering () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" in
  ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
  Engine.run ~until:5.0 e;
  (* r1 refuses to export 10.2/16 *)
  Router.set_export_policy r1 (ip "10.0.0.2")
    (Policy.of_entries
       [ { Policy.seq = 5;
           decision = Policy.Deny;
           conds = [ Policy.Prefix_exact [ pfx "10.2.0.0/16" ] ];
           actions = []
         };
         { Policy.seq = 10; decision = Policy.Permit; conds = []; actions = [] }
       ]);
  Router.originate r1 (pfx "10.1.0.0/16");
  Router.originate r1 (pfx "10.2.0.0/16");
  Engine.run ~until:10.0 e;
  check Alcotest.bool "permitted prefix flows" true
    (Router.best_route r2 (pfx "10.1.0.0/16") <> None);
  check Alcotest.bool "denied prefix filtered" true
    (Router.best_route r2 (pfx "10.2.0.0/16") = None);
  check Alcotest.(list string) "adj-out reflects filter" [ "10.1.0.0/16" ]
    (List.map Prefix.to_string (Router.advertised_to r1 (ip "10.0.0.2")))

let test_no_export_community () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" and r3 = mk e 3 "10.0.0.3" in
  ignore (Router.connect e (r1, ip "10.0.12.1") (r2, ip "10.0.12.2"));
  ignore (Router.connect e (r2, ip "10.0.23.2") (r3, ip "10.0.23.3"));
  Engine.run ~until:5.0 e;
  Router.originate r1 ~communities:[ Community.no_export ] (pfx "10.1.0.0/16");
  Engine.run ~until:10.0 e;
  check Alcotest.bool "neighbor hears it" false
    (Router.best_route r2 (pfx "10.1.0.0/16") <> None
     && false (* r1->r2 is eBGP: no-export blocks even the first hop *));
  check Alcotest.bool "not beyond" true
    (Router.best_route r3 (pfx "10.1.0.0/16") = None)

let test_ibgp_no_reexport () =
  (* three iBGP routers in a line: r3 must NOT learn r1's route through
     r2 (full-mesh rule). *)
  let e = Engine.create () in
  let r1 = mk e 10 "10.0.0.1" and r2 = mk e 10 "10.0.0.2" and r3 = mk e 10 "10.0.0.3" in
  ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
  ignore (Router.connect e (r2, ip "10.0.0.2") (r3, ip "10.0.0.3"));
  Engine.run ~until:5.0 e;
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run ~until:10.0 e;
  check Alcotest.bool "direct iBGP neighbor learns" true
    (Router.best_route r2 (pfx "10.1.0.0/16") <> None);
  check Alcotest.bool "not re-exported over iBGP" true
    (Router.best_route r3 (pfx "10.1.0.0/16") = None)

let test_session_teardown_flushes () =
  let e = Engine.create () in
  let r1 = mk e 1 "10.0.0.1" and r2 = mk e 2 "10.0.0.2" in
  let s = Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2") in
  Engine.run ~until:5.0 e;
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run ~until:10.0 e;
  Session.drop s ~reason:"test";
  Engine.run ~until:15.0 e;
  check Alcotest.bool "routes flushed on close" true
    (Router.best_route r2 (pfx "10.1.0.0/16") = None)

let test_mrai_batches () =
  (* MRAI coalesces repeated changes to the same prefix inside the
     window: a flapping prefix produces far fewer messages *)
  let run mrai =
    let e = Engine.create () in
    let r1 =
      Router.create e ~asn:(asn 1) ~router_id:(ip "10.0.0.1") ~mrai ()
    in
    let r2 = mk e 2 "10.0.0.2" in
    ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
    Engine.run ~until:5.0 e;
    for _ = 1 to 15 do
      Router.originate r1 (pfx "10.1.0.0/16");
      Engine.run_for e 0.2;
      Router.withdraw_network r1 (pfx "10.1.0.0/16");
      Engine.run_for e 0.2
    done;
    Router.originate r1 (pfx "10.1.0.0/16");
    Engine.run_for e 120.0;
    (Router.table_size r2, Router.updates_sent r1)
  in
  let table_plain, sent_plain = run 0.0 in
  let table_mrai, sent_mrai = run 10.0 in
  check Alcotest.int "final state without MRAI" 1 table_plain;
  check Alcotest.int "final state with MRAI" 1 table_mrai;
  check Alcotest.bool "MRAI coalesces the churn" true
    (sent_mrai * 3 < sent_plain)

let test_mrai_withdraw_not_lost () =
  let e = Engine.create () in
  let r1 = Router.create e ~asn:(asn 1) ~router_id:(ip "10.0.0.1") ~mrai:5.0 () in
  let r2 = mk e 2 "10.0.0.2" in
  ignore (Router.connect e (r1, ip "10.0.0.1") (r2, ip "10.0.0.2"));
  Engine.run ~until:5.0 e;
  (* announce + withdraw inside one MRAI window: final state wins *)
  Router.originate r1 (pfx "10.1.0.0/16");
  Engine.run_for e 0.5;
  Router.withdraw_network r1 (pfx "10.1.0.0/16");
  Engine.run_for e 60.0;
  check Alcotest.bool "peer converges to withdrawn" true
    (Router.best_route r2 (pfx "10.1.0.0/16") = None)

(* ------------------------------------------------------------------ *)
(* Memory (Fig. 2 machinery) *)

let test_memory_model_linear () =
  let m peers prefixes =
    Memory.model_bytes ~peers ~prefixes_per_peer:prefixes ()
  in
  (* linear in prefixes *)
  let base = m 5 0 in
  let d1 = m 5 10_000 - base and d2 = m 5 20_000 - base in
  check Alcotest.int "linearity" (2 * d1) d2;
  (* more peers cost more *)
  check Alcotest.bool "peer slope" true (m 20 100_000 > m 5 100_000);
  (* Internet-scale table with 20 peers lands in the GB range the
     paper's figure shows *)
  let internet = m 20 500_000 in
  check Alcotest.bool "500K/20p order of magnitude" true
    (internet > 1_000_000_000 && internet < 4_000_000_000)

let test_memory_measured_grows () =
  let r1 = Memory.fill_rib ~peers:2 ~prefixes_per_peer:200 in
  let r2 = Memory.fill_rib ~peers:2 ~prefixes_per_peer:2000 in
  let r3 = Memory.fill_rib ~peers:8 ~prefixes_per_peer:2000 in
  let w1 = Memory.measured_words r1
  and w2 = Memory.measured_words r2
  and w3 = Memory.measured_words r3 in
  check Alcotest.bool "grows with prefixes" true (w2 > 5 * w1);
  check Alcotest.bool "grows with peers" true (w3 > 2 * w2);
  check Alcotest.int "rib content" 2000 (Rib.prefix_count r2);
  check Alcotest.int "adj-in routes" 16_000 (Rib.route_count r3)

(* ------------------------------------------------------------------ *)
(* Config *)

let sample_config =
  {|
! PEERING client configuration
router bgp 47065
 bgp router-id 184.164.224.1
 network 184.164.224.0/24
 neighbor 100.65.0.1 remote-as 2914
 neighbor 100.65.0.1 route-map EXPORT out
 neighbor 100.65.0.2 remote-as 3356
ip prefix-list OURS seq 5 permit 184.164.224.0/19 le 24
route-map EXPORT permit 10
 match ip address prefix-list OURS
 set as-path prepend 47065 2
 set community 47065:1000
route-map EXPORT deny 20
|}

let test_config_parse () =
  let c = Config.parse_exn sample_config in
  match Config.bgp c with
  | None -> Alcotest.fail "no bgp block"
  | Some bgp ->
    check Alcotest.int "asn" 47065 (Asn.to_int bgp.Config.asn);
    check Alcotest.(option string) "router id" (Some "184.164.224.1")
      (Option.map Ipv4.to_string bgp.Config.router_id);
    check Alcotest.(list string) "networks" [ "184.164.224.0/24" ]
      (List.map Prefix.to_string bgp.Config.networks);
    check Alcotest.int "neighbors" 2 (List.length bgp.Config.neighbors);
    let n1 = List.hd bgp.Config.neighbors in
    check Alcotest.int "remote-as" 2914 (Asn.to_int n1.Config.remote_as);
    check Alcotest.(option string) "route-map out" (Some "EXPORT")
      n1.Config.route_map_out;
    check Alcotest.(list string) "route maps" [ "EXPORT" ]
      (Config.route_map_names c)

let test_config_compile_route_map () =
  let c = Config.parse_exn sample_config in
  match Config.compile_route_map c "EXPORT" with
  | Error e -> Alcotest.fail e
  | Ok policy ->
    let inside =
      Route.make
        (pfx "184.164.224.0/24")
        (Attrs.make ~as_path:(As_path.of_asns [ asn 47065 ])
           ~next_hop:(ip "10.0.0.1") ())
    in
    (match Policy.apply policy inside with
    | Some r ->
      check Alcotest.int "prepended twice" 3
        (As_path.length r.Route.attrs.Attrs.as_path);
      check Alcotest.bool "community set" true
        (Attrs.has_community (Community.make 47065 1000) r.Route.attrs)
    | None -> Alcotest.fail "inside prefix denied");
    let outside =
      Route.make (pfx "8.8.8.0/24")
        (Attrs.make ~as_path:(As_path.of_asns [ asn 1 ])
           ~next_hop:(ip "10.0.0.1") ())
    in
    check Alcotest.bool "outside denied" true (Policy.apply policy outside = None)

let test_config_errors () =
  let bad l =
    match Config.parse l with Error _ -> true | Ok _ -> false
  in
  check Alcotest.bool "garbage" true (bad "nonsense here");
  check Alcotest.bool "bad prefix" true
    (bad "router bgp 1\n network 1.2.3.4/99");
  check Alcotest.bool "route-map on undeclared neighbor" true
    (bad "router bgp 1\n neighbor 10.0.0.1 route-map X in");
  check Alcotest.bool "undefined route map reference" true
    (match
       Config.compile_route_map
         (Config.parse_exn "router bgp 1")
         "NOPE"
     with
    | Error _ -> true
    | Ok _ -> false)

let test_config_parse_errors () =
  let err text =
    match Config.parse text with
    | Error e -> e
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
  in
  check Alcotest.string "duplicate neighbor" "line 3: duplicate neighbor"
    (err
       "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 \
        remote-as 3");
  check Alcotest.string "duplicate route-map seq"
    "line 2: duplicate route-map sequence"
    (err "route-map X permit 10\nroute-map X deny 10");
  check Alcotest.string "bad ge/le options" "line 1: bad prefix-list options"
    (err "ip prefix-list X seq 5 permit 10.0.0.0/8 ge");
  check Alcotest.string "unknown ge/le keyword"
    "line 1: bad prefix-list options"
    (err "ip prefix-list X seq 5 permit 10.0.0.0/8 upto 24");
  check Alcotest.string "unknown top-level statement"
    "line 1: unknown top-level statement" (err "frobnicate the bits");
  check Alcotest.string "unknown bgp statement"
    "line 2: unknown statement in router bgp block"
    (err "router bgp 1\n synchronization");
  check Alcotest.string "unknown route-map statement"
    "line 2: unknown statement in route-map block"
    (err "route-map X permit 10\n set weight 100");
  check Alcotest.string "second bgp block" "line 2: second router bgp block"
    (err "router bgp 1\nrouter bgp 2");
  check Alcotest.string "bad route-map action"
    "line 1: route-map action must be permit|deny"
    (err "route-map X allow 10");
  check Alcotest.string "bad direction"
    "line 3: route-map direction must be in|out"
    (err
       "router bgp 1\n neighbor 10.0.0.1 remote-as 2\n neighbor 10.0.0.1 \
        route-map X both")

let mk_route communities =
  let attrs =
    List.fold_left
      (fun a c -> Attrs.add_community c a)
      (Attrs.make ~as_path:(As_path.of_asns [ asn 1 ]) ~next_hop:(ip "10.0.0.1") ())
      communities
  in
  Route.make (pfx "184.164.224.0/24") attrs

let test_config_set_community_semantics () =
  let compile text =
    match Config.compile_route_map (Config.parse_exn text) "SET" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let old_c = Community.make 1 100 and new_c = Community.make 65000 1 in
  (* non-additive: replaces the community list *)
  let replace = compile "route-map SET permit 10\n set community 65000:1" in
  (match Policy.apply replace (mk_route [ old_c ]) with
  | Some r ->
    check Alcotest.bool "new community present" true
      (Attrs.has_community new_c r.Route.attrs);
    check Alcotest.bool "old community replaced" false
      (Attrs.has_community old_c r.Route.attrs)
  | None -> Alcotest.fail "replace: denied");
  (* additive: appends to the community list *)
  let additive =
    compile "route-map SET permit 10\n set community 65000:1 additive"
  in
  match Policy.apply additive (mk_route [ old_c ]) with
  | Some r ->
    check Alcotest.bool "new community added" true
      (Attrs.has_community new_c r.Route.attrs);
    check Alcotest.bool "old community kept" true
      (Attrs.has_community old_c r.Route.attrs)
  | None -> Alcotest.fail "additive: denied"

let test_config_instantiate () =
  let e = Engine.create () in
  let c = Config.parse_exn sample_config in
  match Config.instantiate e c with
  | Error err -> Alcotest.fail err
  | Ok r ->
    check Alcotest.int "asn" 47065 (Asn.to_int (Router.asn r));
    check Alcotest.(list string) "originated" [ "184.164.224.0/24" ]
      (List.map Prefix.to_string (Router.networks r))

let () =
  Alcotest.run "router"
    [ ( "router",
        [ tc "exchange" `Quick test_two_routers_exchange;
          tc "chain" `Quick test_chain_propagation;
          tc "loop prevention" `Quick test_loop_prevention;
          tc "withdraw" `Quick test_withdraw_propagates;
          tc "export policy" `Quick test_export_policy_filtering;
          tc "no-export" `Quick test_no_export_community;
          tc "ibgp no re-export" `Quick test_ibgp_no_reexport;
          tc "teardown flush" `Quick test_session_teardown_flushes;
          tc "mrai batches" `Quick test_mrai_batches;
          tc "mrai withdraw" `Quick test_mrai_withdraw_not_lost
        ] );
      ( "memory",
        [ tc "model linear" `Quick test_memory_model_linear;
          tc "measured grows" `Quick test_memory_measured_grows
        ] );
      ( "config",
        [ tc "parse" `Quick test_config_parse;
          tc "compile route-map" `Quick test_config_compile_route_map;
          tc "errors" `Quick test_config_errors;
          tc "parse error paths" `Quick test_config_parse_errors;
          tc "set community semantics" `Quick test_config_set_community_semantics;
          tc "instantiate" `Quick test_config_instantiate
        ] )
    ]
