open Peering_net
open Peering_dataplane
module Engine = Peering_sim.Engine

let check = Alcotest.check
let tc = Alcotest.test_case
let ip = Ipv4.of_string_exn
let pfx = Prefix.of_string_exn

(* ------------------------------------------------------------------ *)
(* Fib *)

let test_fib_lpm () =
  let fib =
    Fib.empty
    |> Fib.add (pfx "0.0.0.0/0") (Fib.Via "gw")
    |> Fib.add (pfx "10.0.0.0/8") (Fib.Via "a")
    |> Fib.add (pfx "10.1.0.0/16") Fib.Local
    |> Fib.add (pfx "10.2.0.0/16") Fib.Blackhole
  in
  check Alcotest.bool "local" true (Fib.lookup (ip "10.1.2.3") fib = Some Fib.Local);
  check Alcotest.bool "via a" true (Fib.lookup (ip "10.9.0.1") fib = Some (Fib.Via "a"));
  check Alcotest.bool "blackhole" true
    (Fib.lookup (ip "10.2.0.1") fib = Some Fib.Blackhole);
  check Alcotest.bool "default" true
    (Fib.lookup (ip "8.8.8.8") fib = Some (Fib.Via "gw"));
  check Alcotest.int "cardinal" 4 (Fib.cardinal fib)

(* ------------------------------------------------------------------ *)
(* Forwarder *)

(* A -- B -- C line; C owns 10.3.0.0/16. *)
let line () =
  let e = Engine.create () in
  let f = Forwarder.create e in
  List.iter (Forwarder.add_node f) [ "A"; "B"; "C" ];
  Forwarder.add_address f "A" (ip "10.1.0.1");
  Forwarder.add_address f "B" (ip "10.2.0.1");
  Forwarder.add_address f "C" (ip "10.3.0.1");
  (* routes toward C *)
  Forwarder.set_route f "A" (pfx "10.3.0.0/16") (Fib.Via "B");
  Forwarder.set_route f "B" (pfx "10.3.0.0/16") (Fib.Via "C");
  Forwarder.set_route f "C" (pfx "10.3.0.0/16") Fib.Local;
  (* routes back toward A *)
  Forwarder.set_route f "C" (pfx "10.1.0.0/16") (Fib.Via "B");
  Forwarder.set_route f "B" (pfx "10.1.0.0/16") (Fib.Via "A");
  Forwarder.set_route f "A" (pfx "10.1.0.0/16") Fib.Local;
  (e, f)

let test_forwarding_delivery () =
  let e, f = line () in
  let got = ref [] in
  Forwarder.on_deliver f "C" (fun p -> got := p :: !got);
  let pkt = Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.99") () in
  Forwarder.inject f ~at:"A" pkt;
  Engine.run ~until:1.0 e;
  check Alcotest.int "delivered" 1 (List.length !got);
  check Alcotest.int "stat" 1 (Forwarder.delivered f);
  check Alcotest.int "hops" 2 (Forwarder.hops_forwarded f);
  (* TTL decremented by the one transit router (B); the source host
     and the local delivery do not decrement *)
  match !got with
  | [ p ] -> check Alcotest.int "ttl" 63 p.Packet.ttl
  | _ -> Alcotest.fail "?"

let test_no_route_drop () =
  let e, f = line () in
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "99.0.0.1") ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "dropped" 1 (Forwarder.dropped_no_route f);
  check Alcotest.int "not delivered" 0 (Forwarder.delivered f)

let test_ttl_expiry_generates_icmp () =
  let e, f = line () in
  let icmp = ref [] in
  Forwarder.on_deliver f "A" (fun p -> icmp := p :: !icmp);
  (* TTL 1: dies at B after one hop (decremented to 0) *)
  let pkt = Packet.make ~ttl:1 ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.99") () in
  Forwarder.inject f ~at:"A" pkt;
  Engine.run ~until:1.0 e;
  check Alcotest.int "ttl drop counted" 1 (Forwarder.dropped_ttl f);
  match !icmp with
  | [ p ] -> (
    check Alcotest.string "icmp from A's view of B" "10.2.0.1"
      (Ipv4.to_string p.Packet.src);
    match p.Packet.proto with
    | Packet.Icmp (Packet.Ttl_exceeded { original_id; _ }) ->
      check Alcotest.int "quotes original" pkt.Packet.id original_id
    | _ -> Alcotest.fail "not ttl-exceeded")
  | _ -> Alcotest.fail "no ICMP received"

let test_ingress_filter () =
  let e, f = line () in
  Forwarder.set_ingress_filter f "B"
    (Filter.anti_spoof ~allowed:[ pfx "10.1.0.0/16" ]);
  (* legitimate source passes *)
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1") ());
  (* spoofed source dropped at B *)
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "66.66.66.66") ~dst:(ip "10.3.0.1") ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "one delivered" 1 (Forwarder.delivered f);
  check Alcotest.int "one filtered" 1 (Forwarder.dropped_filtered f)

let test_blackhole () =
  let e, f = line () in
  Forwarder.set_route f "B" (pfx "10.3.0.0/16") Fib.Blackhole;
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1") ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "swallowed" 1 (Forwarder.dropped_blackhole f)

let test_forwarding_loop_dies_by_ttl () =
  (* two nodes pointing at each other: the packet must die by TTL, not
     hang the engine *)
  let e = Engine.create () in
  let f = Forwarder.create e in
  Forwarder.add_node f "X";
  Forwarder.add_node f "Y";
  Forwarder.set_route f "X" (pfx "10.0.0.0/8") (Fib.Via "Y");
  Forwarder.set_route f "Y" (pfx "10.0.0.0/8") (Fib.Via "X");
  Forwarder.inject f ~at:"X"
    (Packet.make ~ttl:16 ~src:(ip "192.0.2.1") ~dst:(ip "10.0.0.1") ());
  Engine.run ~until:10.0 e;
  check Alcotest.int "loop terminated by ttl" 1 (Forwarder.dropped_ttl f);
  check Alcotest.bool "bounded hops" true (Forwarder.hops_forwarded f <= 16)

(* ------------------------------------------------------------------ *)
(* Tunnel *)

let test_tunnel_carries () =
  let e, f = line () in
  (* tunnel A <-> C bypassing B's tables *)
  let tun = Tunnel.establish f e ~a:"A" ~b:"C" () in
  Tunnel.route_via tun ~at:"A" (pfx "172.16.0.0/12");
  Forwarder.set_route f "C" (pfx "172.16.0.0/12") Fib.Local;
  let got = ref 0 in
  Forwarder.on_deliver f "C" (fun _ -> incr got);
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "172.16.1.1") ~size:500 ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "delivered through tunnel" 1 !got;
  check Alcotest.int "bytes accounted" 500 (Tunnel.bytes_carried tun);
  check Alcotest.int "packets" 1 (Tunnel.packets_carried tun)

let test_tunnel_teardown () =
  let e, f = line () in
  let tun = Tunnel.establish f e ~a:"A" ~b:"C" () in
  Tunnel.route_via tun ~at:"A" (pfx "172.16.0.0/12");
  Tunnel.tear_down tun;
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "172.16.1.1") ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "nothing carried" 0 (Tunnel.packets_carried tun);
  check Alcotest.bool "down" false (Tunnel.is_up tun)

(* ------------------------------------------------------------------ *)
(* Filter rate limiter *)

let test_rate_limiter () =
  let e = Engine.create () in
  let rl = Filter.rate_limiter e ~rate_bytes_per_s:1000.0 ~burst_bytes:1000.0 in
  let pkt = Packet.make ~size:400 ~src:(ip "1.1.1.1") ~dst:(ip "2.2.2.2") () in
  check Alcotest.bool "1st" true (Filter.rate_allow rl pkt);
  check Alcotest.bool "2nd" true (Filter.rate_allow rl pkt);
  check Alcotest.bool "3rd exceeds burst" false (Filter.rate_allow rl pkt);
  (* tokens refill with virtual time *)
  Engine.run_for e 1.0;
  check Alcotest.bool "refilled" true (Filter.rate_allow rl pkt)

let test_experiment_traffic_only () =
  let f = Filter.experiment_traffic_only ~experiment:[ pfx "184.164.224.0/24" ] in
  check Alcotest.bool "to experiment" true
    (f (Packet.make ~src:(ip "8.8.8.8") ~dst:(ip "184.164.224.9") ()));
  check Alcotest.bool "from experiment" true
    (f (Packet.make ~src:(ip "184.164.224.9") ~dst:(ip "8.8.8.8") ()));
  check Alcotest.bool "transit refused" false
    (f (Packet.make ~src:(ip "8.8.8.8") ~dst:(ip "9.9.9.9") ()))

(* ------------------------------------------------------------------ *)
(* Traceroute *)

let test_traceroute_path () =
  let e, f = line () in
  let r = Traceroute.run f e ~src_node:"A" ~target:(ip "10.3.0.1") () in
  check Alcotest.bool "reached" true r.Traceroute.reached;
  check Alcotest.(list string) "hops"
    [ "10.2.0.1"; "10.3.0.1" ]
    (List.map Ipv4.to_string (Traceroute.path_addresses r))

let test_traceroute_unreachable () =
  let e, f = line () in
  let r =
    Traceroute.run f e ~src_node:"A" ~target:(ip "99.0.0.1") ~max_ttl:4 ()
  in
  check Alcotest.bool "not reached" false r.Traceroute.reached;
  check Alcotest.int "all stars" 4
    (List.length
       (List.filter (fun h -> h.Traceroute.responder = None) r.Traceroute.hops))

(* ------------------------------------------------------------------ *)
(* Packet_program (the §3 packet-processing API) *)

let pp_rule name spec action = { Packet_program.name; spec; action }

let test_program_drop_allow () =
  let e, f = line () in
  let prog =
    Packet_program.compile e
      [ pp_rule "block-net"
          { Packet_program.match_any with
            Packet_program.src_in = Some (pfx "66.0.0.0/8")
          }
          Packet_program.Drop;
        pp_rule "rest" Packet_program.match_any Packet_program.Allow
      ]
  in
  Packet_program.install prog f "B";
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "66.1.2.3") ~dst:(ip "10.3.0.1") ());
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1") ());
  Engine.run ~until:1.0 e;
  check Alcotest.int "one delivered" 1 (Forwarder.delivered f);
  check Alcotest.int "block rule hit" 1 (Packet_program.hits prog "block-net");
  check Alcotest.int "allow rule hit" 1 (Packet_program.hits prog "rest");
  check Alcotest.int "drops counted" 1 (Packet_program.dropped prog)

let test_program_rewrite () =
  let e, f = line () in
  (* at B, traffic to 10.3.0.1 port 443 is redirected to 10.1.0.1 *)
  Forwarder.set_route f "B" (pfx "10.1.0.0/16") (Fib.Via "A");
  let prog =
    Packet_program.compile e
      [ pp_rule "redirect"
          { Packet_program.match_any with
            Packet_program.dst_in = Some (pfx "10.3.0.0/16");
            dport = Some 443
          }
          (Packet_program.Rewrite_dst (ip "10.1.0.1"));
        pp_rule "rest" Packet_program.match_any Packet_program.Allow
      ]
  in
  Packet_program.install prog f "B";
  let got_a = ref 0 and got_c = ref 0 in
  Forwarder.on_deliver f "A" (fun _ -> incr got_a);
  Forwarder.on_deliver f "C" (fun _ -> incr got_c);
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1")
       ~proto:(Packet.Tcp { sport = 1; dport = 443 }) ());
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1")
       ~proto:(Packet.Tcp { sport = 1; dport = 80 }) ());
  Engine.run ~until:2.0 e;
  check Alcotest.int "443 redirected back to A" 1 !got_a;
  check Alcotest.int "80 went to C" 1 !got_c;
  check Alcotest.int "rewrites counted" 1 (Packet_program.rewritten prog)

let test_program_divert_and_mirror () =
  let e, f = line () in
  Forwarder.add_node f "monitor";
  Forwarder.set_route f "monitor" (pfx "0.0.0.0/0") Fib.Local;
  let seen = ref 0 in
  Forwarder.on_deliver f "monitor" (fun _ -> incr seen);
  let prog =
    Packet_program.compile e
      [ pp_rule "mirror-udp"
          { Packet_program.match_any with Packet_program.proto = Some `Udp }
          (Packet_program.Mirror "monitor")
      ]
  in
  Packet_program.install prog f "B";
  let delivered = ref 0 in
  Forwarder.on_deliver f "C" (fun _ -> incr delivered);
  Forwarder.inject f ~at:"A"
    (Packet.make ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1") ());
  Engine.run ~until:2.0 e;
  check Alcotest.int "original delivered" 1 !delivered;
  check Alcotest.int "copy at monitor" 1 !seen

let test_program_rate_limit () =
  let e, f = line () in
  let prog =
    Packet_program.compile e
      [ pp_rule "limit" Packet_program.match_any
          (Packet_program.Rate_limit
             { Packet_program.bytes_per_s = 64.0; burst = 128.0 })
      ]
  in
  Packet_program.install prog f "B";
  for _ = 1 to 5 do
    Forwarder.inject f ~at:"A"
      (Packet.make ~size:64 ~src:(ip "10.1.0.1") ~dst:(ip "10.3.0.1") ())
  done;
  Engine.run ~until:0.5 e;
  (* burst admits 2 packets of 64B; the rest drop *)
  check Alcotest.int "burst enforced" 2 (Forwarder.delivered f);
  check Alcotest.int "drops" 3 (Packet_program.dropped prog)

let () =
  Alcotest.run "dataplane"
    [ ("fib", [ tc "lpm" `Quick test_fib_lpm ]);
      ( "forwarder",
        [ tc "delivery" `Quick test_forwarding_delivery;
          tc "no route" `Quick test_no_route_drop;
          tc "ttl icmp" `Quick test_ttl_expiry_generates_icmp;
          tc "ingress filter" `Quick test_ingress_filter;
          tc "blackhole" `Quick test_blackhole;
          tc "loop dies by ttl" `Quick test_forwarding_loop_dies_by_ttl
        ] );
      ( "tunnel",
        [ tc "carries" `Quick test_tunnel_carries;
          tc "teardown" `Quick test_tunnel_teardown
        ] );
      ( "filter",
        [ tc "rate limiter" `Quick test_rate_limiter;
          tc "experiment-only" `Quick test_experiment_traffic_only
        ] );
      ( "traceroute",
        [ tc "path" `Quick test_traceroute_path;
          tc "unreachable" `Quick test_traceroute_unreachable
        ] );
      ( "packet-program",
        [ tc "drop/allow" `Quick test_program_drop_allow;
          tc "rewrite" `Quick test_program_rewrite;
          tc "divert+mirror" `Quick test_program_divert_and_mirror;
          tc "rate limit" `Quick test_program_rate_limit
        ] )
    ]
